package libra_test

import (
	"fmt"
	"time"

	"libra"
)

// The canonical use: one C-Libra flow over an emulated 24 Mbps path.
func ExampleNew() {
	net := libra.NewNetwork(libra.NetworkConfig{
		Capacity:    libra.ConstantMbps(24),
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 150_000,
		Seed:        1,
	})
	flow := net.AddFlow(libra.New(libra.WithCubic(), libra.WithSeed(2)), 0, 0)
	net.Run(20 * time.Second)
	fmt.Printf("utilised more than 80%%: %v\n", net.Utilization(20*time.Second) > 0.8)
	fmt.Printf("flow stayed loss-bounded: %v\n", flow.Stats.LossRate() < 0.2)
	// Output:
	// utilised more than 80%: true
	// flow stayed loss-bounded: true
}

// Application preferences are utility options (Sec. 5.2 of the paper).
func ExampleWithUtility() {
	d := libra.DefaultUtility()
	th := libra.ThroughputOriented(2) // Th-2
	la := libra.LatencyOriented(2)    // La-2
	// Same observation (50 Mbps, slight delay growth, no loss):
	fmt.Printf("Th-2 ranks it higher than default:  %v\n", th.Value(50, 0.01, 0) > d.Value(50, 0.01, 0))
	fmt.Printf("La-2 ranks it lower than default:   %v\n", la.Value(50, 0.01, 0) < d.Value(50, 0.01, 0))
	// Output:
	// Th-2 ranks it higher than default:  true
	// La-2 ranks it lower than default:   true
}

// Every baseline the paper compares against is constructible by name.
func ExampleBaseline() {
	cubic := libra.Baseline("cubic", 1)
	orca := libra.Baseline("orca", 1)
	fmt.Println(cubic.Name(), orca.Name())
	// Output: cubic orca
}

// The experiment registry regenerates the paper's tables and figures.
func ExampleExperiments() {
	ids := map[string]bool{}
	for _, e := range libra.Experiments() {
		ids[e.ID] = true
	}
	fmt.Println(ids["fig1"], ids["tab6"], ids["fig18"])
	// Output: true true true
}
