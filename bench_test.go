// Benchmarks: one testing.B benchmark per paper table/figure, each
// running the corresponding experiment from internal/exp in quick mode.
// `go test -bench=. -benchmem` therefore regenerates (reduced-scale
// versions of) every artifact in the paper's evaluation; cmd/libra-bench
// runs the full-scale versions.
package libra

import (
	"sync"
	"testing"
	"time"

	"libra/internal/exp"
	"libra/internal/rlcc"
)

// benchAgents is trained once and shared by every benchmark so that the
// per-benchmark cost reflects the experiment, not agent training.
var (
	benchAgentsOnce sync.Once
	benchAgents     *exp.AgentSet
)

func runExp(b *testing.B, id string) {
	b.Helper()
	benchAgentsOnce.Do(func() {
		benchAgents = exp.TrainAgentSet(exp.TrainSpec{
			Seed: 1, Episodes: 30, EpisodeLen: 6 * time.Second,
			Env: rlcc.LaptopEnvRange(),
		})
	})
	e, ok := exp.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc := exp.NewRunContext(int64(i + 1))
		rc.Quick = true
		rc.Agents = benchAgents
		rep := e.Run(rc)
		if len(rep.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkFig1Adaptability(b *testing.B)       { runExp(b, "fig1") }
func BenchmarkFig2aStepScenario(b *testing.B)      { runExp(b, "fig2a") }
func BenchmarkFig2bUtilizationCDF(b *testing.B)    { runExp(b, "fig2b") }
func BenchmarkFig2cOverhead(b *testing.B)          { runExp(b, "fig2c") }
func BenchmarkFig5StateSpaces(b *testing.B)        { runExp(b, "fig5") }
func BenchmarkTab2StateAblation(b *testing.B)      { runExp(b, "tab2") }
func BenchmarkFig6ActionSpaces(b *testing.B)       { runExp(b, "fig6") }
func BenchmarkTab3LossTerm(b *testing.B)           { runExp(b, "tab3") }
func BenchmarkTab4DeltaReward(b *testing.B)        { runExp(b, "tab4") }
func BenchmarkFig7TraceSweep(b *testing.B)         { runExp(b, "fig7") }
func BenchmarkFig8CapacityTracking(b *testing.B)   { runExp(b, "fig8") }
func BenchmarkFig9BufferSweep(b *testing.B)        { runExp(b, "fig9") }
func BenchmarkFig10LossSweep(b *testing.B)         { runExp(b, "fig10") }
func BenchmarkFig11Flexibility(b *testing.B)       { runExp(b, "fig11") }
func BenchmarkFig12OverheadSweep(b *testing.B)     { runExp(b, "fig12") }
func BenchmarkFig13InterFairness(b *testing.B)     { runExp(b, "fig13") }
func BenchmarkFig14IntraFairness(b *testing.B)     { runExp(b, "fig14") }
func BenchmarkFig15Convergence(b *testing.B)       { runExp(b, "fig15") }
func BenchmarkTab6Safety(b *testing.B)             { runExp(b, "tab6") }
func BenchmarkFig16WAN(b *testing.B)               { runExp(b, "fig16") }
func BenchmarkFig17DecisionFractions(b *testing.B) { runExp(b, "fig17") }
func BenchmarkFig18IdealComparison(b *testing.B)   { runExp(b, "fig18") }
func BenchmarkFig19Sensitivity(b *testing.B)       { runExp(b, "fig19") }
func BenchmarkTab7Threshold(b *testing.B)          { runExp(b, "tab7") }

// Extension experiments (design-choice ablations and the Sec. 7
// discussion scenarios).
func BenchmarkAblOrder(b *testing.B)       { runExp(b, "abl-order") }
func BenchmarkAblClassics(b *testing.B)    { runExp(b, "abl-classics") }
func BenchmarkSec7Networks(b *testing.B)   { runExp(b, "sec7-networks") }
func BenchmarkSec7Datacenter(b *testing.B) { runExp(b, "sec7-datacenter") }
func BenchmarkAppMix(b *testing.B)         { runExp(b, "app-mix") }
func BenchmarkAQM(b *testing.B)            { runExp(b, "aqm") }
