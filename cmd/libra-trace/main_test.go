package main

import (
	"strings"
	"testing"
)

// inspectTrace used to index tr.Rates[0] unconditionally, which panicked
// on traces that parse but yield no samples. Empty and comment-only
// inputs must produce a clear error instead.
func TestInspectEmptyTrace(t *testing.T) {
	for _, tc := range []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"headers-only", "# mahimahi link trace\n# generated 2026-08-05\n\n"},
		{"blank-lines", "\n\n\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("inspectTrace panicked: %v", r)
				}
			}()
			var out strings.Builder
			err := inspectTrace(strings.NewReader(tc.input), tc.name+".mahi", &out)
			if err == nil {
				t.Fatalf("want error for %s trace, got output:\n%s", tc.name, out.String())
			}
			if !strings.Contains(err.Error(), tc.name+".mahi") {
				t.Errorf("error should name the file: %v", err)
			}
		})
	}
}

func TestInspectValidTrace(t *testing.T) {
	// Three delivery opportunities inside 100 ms bins at 0, 100, 250 ms.
	in := "# comment\n0\n100\n250\n"
	var out strings.Builder
	if err := inspectTrace(strings.NewReader(in), "ok.mahi", &out); err != nil {
		t.Fatalf("inspectTrace: %v", err)
	}
	got := out.String()
	for _, want := range []string{"duration:", "samples:", "mean:", "min/max:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
