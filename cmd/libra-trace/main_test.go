package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"libra/internal/analyze"
	"libra/internal/cc"
	_ "libra/internal/core" // registers the c-libra controller
	"libra/internal/netem"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

// inspectTrace used to index tr.Rates[0] unconditionally, which panicked
// on traces that parse but yield no samples. Empty and comment-only
// inputs must produce a clear error instead.
func TestInspectEmptyTrace(t *testing.T) {
	for _, tc := range []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"headers-only", "# mahimahi link trace\n# generated 2026-08-05\n\n"},
		{"blank-lines", "\n\n\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("inspectTrace panicked: %v", r)
				}
			}()
			var out strings.Builder
			err := inspectTrace(strings.NewReader(tc.input), tc.name+".mahi", &out)
			if err == nil {
				t.Fatalf("want error for %s trace, got output:\n%s", tc.name, out.String())
			}
			if !strings.Contains(err.Error(), tc.name+".mahi") {
				t.Errorf("error should name the file: %v", err)
			}
		})
	}
}

// writeEventFiles records n short two-flow c-libra runs (distinct
// seeds) as JSONL event streams and returns their paths.
func writeEventFiles(t *testing.T, n int) []string {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, n)
	for i := range paths {
		path := filepath.Join(dir, "run"+string(rune('a'+i))+".jsonl")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		rec := telemetry.NewRecorder(f)
		net := netem.New(netem.Config{
			Capacity:    trace.Constant(trace.Mbps(16)),
			MinRTT:      30 * time.Millisecond,
			BufferBytes: 60_000,
			Seed:        int64(11 + i),
			Tracer:      rec,
		})
		for fl := 0; fl < 2; fl++ {
			ctrl, err := cc.New("c-libra", cc.Config{Seed: int64(5 + i*2 + fl)})
			if err != nil {
				t.Fatal(err)
			}
			ctrl.(telemetry.Traceable).SetTracer(rec, fl)
			net.AddFlow(ctrl, 0, 0)
		}
		net.Run(4 * time.Second)
		if err := rec.Close(); err != nil { // also closes the file
			t.Fatal(err)
		}
		paths[i] = path
	}
	return paths
}

// TestAnalyzeParallelDeterminism is the end-to-end contract of the
// analyze subcommand: on real simulator traces, the text and JSON
// reports are byte-identical at -parallel 1 vs 4 and across two runs
// at the same worker count.
func TestAnalyzeParallelDeterminism(t *testing.T) {
	paths := writeEventFiles(t, 4)
	cfg := analyze.Config{Window: time.Second}

	render := func(workers int) (string, string) {
		t.Helper()
		rep, err := analyzeFiles(paths, cfg, workers)
		if err != nil {
			t.Fatalf("analyzeFiles(workers=%d): %v", workers, err)
		}
		var txt, js bytes.Buffer
		if err := rep.WriteText(&txt); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return txt.String(), js.String()
	}

	txt1, js1 := render(1)
	txt4, js4 := render(4)
	if txt1 != txt4 {
		t.Errorf("text report differs between -parallel 1 and 4:\n--- 1 ---\n%s\n--- 4 ---\n%s", txt1, txt4)
	}
	if js1 != js4 {
		t.Error("JSON report differs between -parallel 1 and 4")
	}
	txtAgain, jsAgain := render(4)
	if txtAgain != txt4 || jsAgain != js4 {
		t.Error("report differs across two identical runs")
	}

	// The report must actually cover the runs: both flow ids, cycles
	// decided, winner shares summing to 1, and rate quantiles present.
	var rep analyze.Report
	if err := json.Unmarshal([]byte(js1), &rep); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if len(rep.Flows) != 2 {
		t.Fatalf("report covers %d flows, want 2", len(rep.Flows))
	}
	for _, fr := range rep.Flows {
		if fr.Cycles == 0 || fr.Decided == 0 {
			t.Errorf("flow %d has cycles=%d decided=%d, want > 0", fr.ID, fr.Cycles, fr.Decided)
		}
		var share float64
		for _, ws := range fr.Winners {
			share += ws.Share
		}
		if share < 0.999 || share > 1.001 {
			t.Errorf("flow %d winner shares sum to %v, want 1", fr.ID, share)
		}
		if fr.RateMbps.N == 0 || fr.Decomp.Cycles == 0 {
			t.Errorf("flow %d missing rate quantiles (n=%d) or utility decomposition (cycles=%d)",
				fr.ID, fr.RateMbps.N, fr.Decomp.Cycles)
		}
	}
	if !strings.Contains(txt1, "fairness (2 flows") {
		t.Errorf("text report missing fairness section:\n%s", txt1)
	}
}

func TestInspectValidTrace(t *testing.T) {
	// Three delivery opportunities inside 100 ms bins at 0, 100, 250 ms.
	in := "# comment\n0\n100\n250\n"
	var out strings.Builder
	if err := inspectTrace(strings.NewReader(in), "ok.mahi", &out); err != nil {
		t.Fatalf("inspectTrace: %v", err)
	}
	got := out.String()
	for _, want := range []string{"duration:", "samples:", "mean:", "min/max:", "p50/p95/p99:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
