// Command libra-trace generates and inspects capacity traces —
// including Mahimahi-format import/export so workloads can be
// exchanged with the emulator the paper used — and analyzes JSONL
// telemetry event streams recorded with -trace-out.
//
// Usage:
//
//	libra-trace -gen lte:driving -dur 60s -o driving.mahi
//	libra-trace -inspect driving.mahi
//	libra-trace -inspect 'a.mahi,b.mahi,c.mahi' -parallel 4
//	libra-trace analyze events.jsonl
//	libra-trace analyze -json -parallel 4 run1.jsonl run2.jsonl
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"libra/internal/analyze"
	"libra/internal/cliutil"
	"libra/internal/stats"
	"libra/internal/sweep"
	"libra/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		runAnalyze(os.Args[2:])
		return
	}
	var (
		gen      = flag.String("gen", "", "generate: lte:stationary|walking|driving|tour, const:<Mbps>, step:<P,L1,L2,..>")
		dur      = flag.Duration("dur", 60*time.Second, "trace duration")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (Mahimahi format; default stdout)")
		inspect  = flag.String("inspect", "", "parse Mahimahi traces (comma-separated) and print statistics")
		parallel = cliutil.ParallelFlag()
	)
	flag.Parse()

	switch {
	case *inspect != "":
		// Inspect every file concurrently; outputs are buffered per file
		// and printed in argument order, so the report is identical at
		// any -parallel setting.
		paths := strings.Split(*inspect, ",")
		type result struct {
			out []byte
			err error
		}
		results := sweep.Map(sweep.Workers(*parallel), len(paths), func(i int) result {
			path := strings.TrimSpace(paths[i])
			f, err := os.Open(path)
			if err != nil {
				return result{err: err}
			}
			defer f.Close()
			var buf bytes.Buffer
			if len(paths) > 1 {
				fmt.Fprintf(&buf, "%s:\n", path)
			}
			if err := inspectTrace(f, path, &buf); err != nil {
				return result{err: err}
			}
			return result{out: buf.Bytes()}
		})
		for _, r := range results {
			if r.err != nil {
				fatal(r.err)
			}
			os.Stdout.Write(r.out)
		}
	case *gen != "":
		var tr trace.Trace
		switch *gen {
		case "lte:stationary":
			tr = trace.NewLTE(trace.LTEStationary, *dur, *seed)
		case "lte:walking":
			tr = trace.NewLTE(trace.LTEWalking, *dur, *seed)
		case "lte:driving":
			tr = trace.NewLTE(trace.LTEDriving, *dur, *seed)
		case "lte:tour":
			tr = trace.NewDrivingTour(*dur, *seed)
		default:
			var mbps float64
			if n, _ := fmt.Sscanf(*gen, "const:%g", &mbps); n == 1 {
				tr = trace.Constant(trace.Mbps(mbps))
				break
			}
			if payload, ok := strings.CutPrefix(*gen, "step:"); ok {
				st, err := trace.ParseStep(payload)
				if err != nil {
					fatal(err)
				}
				tr = st
				break
			}
			fatal(fmt.Errorf("unknown generator %q", *gen))
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := trace.WriteMahimahi(w, tr, *dur); err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Printf("wrote %s (%s, mean %.2f Mbps)\n", *out, *dur,
				trace.ToMbps(trace.MeanRate(tr, *dur, 100*time.Millisecond)))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runAnalyze is the `libra-trace analyze` subcommand: run every JSONL
// event stream through the streaming analytics engine — files in
// parallel — and merge the per-file analyses in argument order, so
// the report is byte-identical at any -parallel setting.
func runAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the machine-readable JSON report instead of text")
	window := fs.Duration("window", time.Second, "Jain fairness window width")
	parallel := fs.Int("parallel", 0, "per-file analysis worker count (0 = GOMAXPROCS)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: libra-trace analyze [-json] [-window 1s] [-parallel N] <events.jsonl>...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		fatal(errors.New("analyze: no trace files given (record one with libra-sim/libra-bench -trace-out)"))
	}

	rep, err := analyzeFiles(paths, analyze.Config{Window: *window}, *parallel)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

// analyzeFiles analyzes every file on `workers` workers and merges the
// per-file analyses in argument order.
func analyzeFiles(paths []string, cfg analyze.Config, workers int) (*analyze.Report, error) {
	type result struct {
		a   *analyze.Analyzer
		err error
	}
	results := sweep.Map(sweep.Workers(workers), len(paths), func(i int) result {
		f, err := os.Open(paths[i])
		if err != nil {
			return result{err: err}
		}
		defer f.Close()
		a, err := analyze.ReadStream(f, cfg)
		if err != nil {
			return result{err: fmt.Errorf("%s: %w", paths[i], err)}
		}
		a.Finalize()
		return result{a: a}
	})
	total := analyze.New(cfg)
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		total.Merge(r.a)
	}
	return total.Report(), nil
}

// inspectTrace parses a Mahimahi trace from r and writes its summary
// statistics to w. A trace with no rate samples (empty file, or headers
// and comments only) is a clear error rather than a panic.
func inspectTrace(r io.Reader, name string, w io.Writer) error {
	tr, err := trace.ParseMahimahi(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if len(tr.Rates) == 0 {
		return fmt.Errorf("%s: trace has no delivery opportunities (empty or comment-only file)", name)
	}
	lo, hi := tr.Rates[0], tr.Rates[0]
	sk := stats.NewSketch(0)
	for _, r := range tr.Rates {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
		sk.Add(trace.ToMbps(r))
	}
	_, err = fmt.Fprintf(w, "duration: %s\nsamples:  %d @ %s\nmean:     %.2f Mbps\nmin/max:  %.2f / %.2f Mbps\np50/p95/p99: %.2f / %.2f / %.2f Mbps\n",
		tr.Duration(), len(tr.Rates), tr.Interval,
		trace.ToMbps(tr.Mean()), trace.ToMbps(lo), trace.ToMbps(hi),
		sk.Quantile(0.50), sk.Quantile(0.95), sk.Quantile(0.99))
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
