// Command libra-trace generates and inspects capacity traces,
// including Mahimahi-format import/export so workloads can be exchanged
// with the emulator the paper used.
//
// Usage:
//
//	libra-trace -gen lte:driving -dur 60s -o driving.mahi
//	libra-trace -inspect driving.mahi
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"libra/internal/trace"
)

func main() {
	var (
		gen     = flag.String("gen", "", "generate: lte:stationary|walking|driving|tour, const:<Mbps>, step:<P,L1,L2,..>")
		dur     = flag.Duration("dur", 60*time.Second, "trace duration")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (Mahimahi format; default stdout)")
		inspect = flag.String("inspect", "", "parse a Mahimahi trace and print statistics")
	)
	flag.Parse()

	switch {
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := inspectTrace(f, *inspect, os.Stdout); err != nil {
			fatal(err)
		}
	case *gen != "":
		var tr trace.Trace
		switch *gen {
		case "lte:stationary":
			tr = trace.NewLTE(trace.LTEStationary, *dur, *seed)
		case "lte:walking":
			tr = trace.NewLTE(trace.LTEWalking, *dur, *seed)
		case "lte:driving":
			tr = trace.NewLTE(trace.LTEDriving, *dur, *seed)
		case "lte:tour":
			tr = trace.NewDrivingTour(*dur, *seed)
		default:
			var mbps float64
			if n, _ := fmt.Sscanf(*gen, "const:%g", &mbps); n == 1 {
				tr = trace.Constant(trace.Mbps(mbps))
				break
			}
			if payload, ok := strings.CutPrefix(*gen, "step:"); ok {
				st, err := trace.ParseStep(payload)
				if err != nil {
					fatal(err)
				}
				tr = st
				break
			}
			fatal(fmt.Errorf("unknown generator %q", *gen))
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := trace.WriteMahimahi(w, tr, *dur); err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Printf("wrote %s (%s, mean %.2f Mbps)\n", *out, *dur,
				trace.ToMbps(trace.MeanRate(tr, *dur, 100*time.Millisecond)))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// inspectTrace parses a Mahimahi trace from r and writes its summary
// statistics to w. A trace with no rate samples (empty file, or headers
// and comments only) is a clear error rather than a panic.
func inspectTrace(r io.Reader, name string, w io.Writer) error {
	tr, err := trace.ParseMahimahi(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if len(tr.Rates) == 0 {
		return fmt.Errorf("%s: trace has no delivery opportunities (empty or comment-only file)", name)
	}
	lo, hi := tr.Rates[0], tr.Rates[0]
	for _, r := range tr.Rates {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	_, err = fmt.Fprintf(w, "duration: %s\nsamples:  %d @ %s\nmean:     %.2f Mbps\nmin/max:  %.2f / %.2f Mbps\n",
		tr.Duration(), len(tr.Rates), tr.Interval,
		trace.ToMbps(tr.Mean()), trace.ToMbps(lo), trace.ToMbps(hi))
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
