// Command libra-trace generates and inspects capacity traces —
// including Mahimahi-format import/export so workloads can be
// exchanged with the emulator the paper used — and analyzes JSONL
// telemetry event streams recorded with -trace-out.
//
// Usage:
//
//	libra-trace -gen lte:driving -dur 60s -o driving.mahi
//	libra-trace -inspect driving.mahi
//	libra-trace -inspect 'a.mahi,b.mahi,c.mahi' -parallel 4
//	libra-trace -validate 'run1.jsonl,run2.jsonl' -parallel 4
//	libra-trace analyze events.jsonl
//	libra-trace analyze -json -parallel 4 run1.jsonl run2.jsonl
//	libra-trace analyze -flight-out dumps/ events.jsonl
//	libra-trace analyze -slo 'bulk:mean_thr_mbps>=5' events.jsonl
//	libra-trace spans -o trace.json events.jsonl
//	libra-trace timeline -o series.json events.jsonl
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"libra/internal/analyze"
	"libra/internal/cliutil"
	"libra/internal/stats"
	"libra/internal/sweep"
	"libra/internal/telemetry"
	"libra/internal/telemetry/spans"
	"libra/internal/trace"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "analyze":
			runAnalyze(os.Args[2:])
			return
		case "spans":
			runSpans(os.Args[2:])
			return
		case "timeline":
			runTimeline(os.Args[2:])
			return
		}
	}
	var (
		gen      = flag.String("gen", "", "generate: lte:stationary|walking|driving|tour, const:<Mbps>, step:<P,L1,L2,..>")
		dur      = flag.Duration("dur", 60*time.Second, "trace duration")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (Mahimahi format; default stdout)")
		inspect  = flag.String("inspect", "", "parse Mahimahi traces (comma-separated) and print statistics")
		validate = flag.String("validate", "", "validate JSONL event streams (comma-separated) against the telemetry schema")
		parallel = cliutil.ParallelFlag()
	)
	flag.Parse()

	switch {
	case *validate != "":
		// Validate every stream concurrently; reports are printed in
		// argument order so the output is identical at any -parallel
		// setting. Errors name the offending file and line.
		paths := strings.Split(*validate, ",")
		type result struct {
			events int64
			err    error
		}
		results := sweep.Map(sweep.Workers(*parallel), len(paths), func(i int) result {
			path := strings.TrimSpace(paths[i])
			f, err := os.Open(path)
			if err != nil {
				return result{err: err}
			}
			defer f.Close()
			n, err := telemetry.ValidateStream(f, path)
			return result{events: n, err: err}
		})
		bad := false
		for i, r := range results {
			if r.err != nil {
				bad = true
				fmt.Fprintln(os.Stderr, r.err)
				continue
			}
			fmt.Printf("%s: %d events ok (schema v%d)\n",
				strings.TrimSpace(paths[i]), r.events, telemetry.SchemaVersion)
		}
		if bad {
			os.Exit(1)
		}
	case *inspect != "":
		// Inspect every file concurrently; outputs are buffered per file
		// and printed in argument order, so the report is identical at
		// any -parallel setting.
		paths := strings.Split(*inspect, ",")
		type result struct {
			out []byte
			err error
		}
		results := sweep.Map(sweep.Workers(*parallel), len(paths), func(i int) result {
			path := strings.TrimSpace(paths[i])
			f, err := os.Open(path)
			if err != nil {
				return result{err: err}
			}
			defer f.Close()
			var buf bytes.Buffer
			if len(paths) > 1 {
				fmt.Fprintf(&buf, "%s:\n", path)
			}
			if err := inspectTrace(f, path, &buf); err != nil {
				return result{err: err}
			}
			return result{out: buf.Bytes()}
		})
		for _, r := range results {
			if r.err != nil {
				fatal(r.err)
			}
			os.Stdout.Write(r.out)
		}
	case *gen != "":
		var tr trace.Trace
		switch *gen {
		case "lte:stationary":
			tr = trace.NewLTE(trace.LTEStationary, *dur, *seed)
		case "lte:walking":
			tr = trace.NewLTE(trace.LTEWalking, *dur, *seed)
		case "lte:driving":
			tr = trace.NewLTE(trace.LTEDriving, *dur, *seed)
		case "lte:tour":
			tr = trace.NewDrivingTour(*dur, *seed)
		default:
			var mbps float64
			if n, _ := fmt.Sscanf(*gen, "const:%g", &mbps); n == 1 {
				tr = trace.Constant(trace.Mbps(mbps))
				break
			}
			if payload, ok := strings.CutPrefix(*gen, "step:"); ok {
				st, err := trace.ParseStep(payload)
				if err != nil {
					fatal(err)
				}
				tr = st
				break
			}
			fatal(fmt.Errorf("unknown generator %q", *gen))
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := trace.WriteMahimahi(w, tr, *dur); err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Printf("wrote %s (%s, mean %.2f Mbps)\n", *out, *dur,
				trace.ToMbps(trace.MeanRate(tr, *dur, 100*time.Millisecond)))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runSpans is the `libra-trace spans` subcommand: convert one or more
// JSONL event streams into a single Chrome trace-event JSON file that
// Perfetto (ui.perfetto.dev) and chrome://tracing load directly. Files
// are fed to the builder in argument order; each run boundary (time
// going backwards, as in a -reps sweep or concatenated files) becomes
// its own process in the trace.
func runSpans(args []string) {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	out := fs.String("o", "", "output file (Chrome trace-event JSON; default stdout)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: libra-trace spans [-o trace.json] <events.jsonl>...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		fatal(errors.New("spans: no trace files given (record one with libra-sim/libra-bench -trace-out, or use a flight-recorder dump)"))
	}

	b := spans.NewBuilder()
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		dec := telemetry.NewDecoder(f)
		for {
			e, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				fatal(fmt.Errorf("%s: %w", path, err))
			}
			b.Add(&e)
		}
		f.Close()
	}
	b.Finish()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := b.WriteTo(w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Printf("wrote %d trace events (%d runs) to %s — open at ui.perfetto.dev\n",
			b.Events(), b.Runs(), *out)
	}
}

// runTimeline is the `libra-trace timeline` subcommand: reconstruct
// the downsampled time-series snapshot offline from recorded JSONL
// event streams. Buckets key on virtual event time, files are
// collected in parallel and merged in argument order, so the output is
// byte-identical to a live run's -timeseries-out at any -parallel
// setting.
func runTimeline(args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	bucket := fs.Duration("bucket", telemetry.DefaultTSBucket, "base bucket width")
	capacity := fs.Int("buckets", telemetry.DefaultTSCapacity, "per-series bucket capacity (downsamples 2x when exceeded)")
	parallel := fs.Int("parallel", 0, "per-file collection worker count (0 = GOMAXPROCS)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: libra-trace timeline [-o series.json] [-bucket 100ms] [-buckets 512] [-parallel N] <events.jsonl>...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		fatal(errors.New("timeline: no trace files given (record one with libra-sim/libra-bench -trace-out)"))
	}

	type result struct {
		ts  *telemetry.TSCollector
		err error
	}
	results := sweep.Map(sweep.Workers(*parallel), len(paths), func(i int) result {
		f, err := os.Open(paths[i])
		if err != nil {
			return result{err: err}
		}
		defer f.Close()
		ts := telemetry.NewTSCollector(*bucket, *capacity)
		dec := telemetry.NewDecoder(f)
		for {
			e, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return result{err: fmt.Errorf("%s: %w", paths[i], err)}
			}
			ts.Emit(&e)
		}
		return result{ts: ts}
	})
	total := telemetry.NewTSCollector(*bucket, *capacity)
	for _, r := range results {
		if r.err != nil {
			fatal(r.err)
		}
		total.Merge(r.ts)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := total.WriteJSON(w); err != nil {
		fatal(err)
	}
}

// runAnalyze is the `libra-trace analyze` subcommand: run every JSONL
// event stream through the streaming analytics engine — files in
// parallel — and merge the per-file analyses in argument order, so
// the report is byte-identical at any -parallel setting.
func runAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the machine-readable JSON report instead of text")
	window := fs.Duration("window", time.Second, "Jain fairness window width")
	parallel := fs.Int("parallel", 0, "per-file analysis worker count (0 = GOMAXPROCS)")
	flightOut := fs.String("flight-out", "", "replay the streams through a flight recorder, dumping anomaly snapshots into this directory")
	sloSpec := fs.String("slo", "", "comma-separated SLO specs, e.g. 'bulk:mean_thr_mbps>=5,low-latency:p95_rtt_ms<=100' (empty = profile defaults)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: libra-trace analyze [-json] [-window 1s] [-parallel N] [-flight-out dir] [-slo specs] <events.jsonl>...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		fatal(errors.New("analyze: no trace files given (record one with libra-sim/libra-bench -trace-out)"))
	}
	slos, err := analyze.ParseSLOs(*sloSpec)
	if err != nil {
		fatal(err)
	}

	rep, err := analyzeFiles(paths, analyze.Config{Window: *window, SLOs: slos}, *parallel)
	if err != nil {
		fatal(err)
	}
	if *flightOut != "" {
		if err := replayFlight(paths, *flightOut); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

// replayFlight re-reads the streams sequentially in argument order and
// feeds them through a flight recorder plus the anomaly tap, cutting
// after-the-fact dumps for every detector firing — the offline twin of
// a live run's -flight-out. Sequential replay keeps the dump files
// deterministic regardless of the analyze -parallel setting.
func replayFlight(paths []string, dir string) error {
	fl, closeFlight, err := cliutil.OpenFlight(dir, nil)
	if err != nil {
		return err
	}
	tap := telemetry.Multi(cliutil.FlightTap(fl), cliutil.AnomalyTap(fl))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		dec := telemetry.NewDecoder(f)
		for {
			e, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return fmt.Errorf("%s: %w", path, err)
			}
			tap.Emit(&e)
		}
		f.Close()
	}
	return closeFlight()
}

// analyzeFiles analyzes every file on `workers` workers and merges the
// per-file analyses in argument order.
func analyzeFiles(paths []string, cfg analyze.Config, workers int) (*analyze.Report, error) {
	type result struct {
		a   *analyze.Analyzer
		err error
	}
	results := sweep.Map(sweep.Workers(workers), len(paths), func(i int) result {
		f, err := os.Open(paths[i])
		if err != nil {
			return result{err: err}
		}
		defer f.Close()
		a, err := analyze.ReadStream(f, cfg)
		if err != nil {
			return result{err: fmt.Errorf("%s: %w", paths[i], err)}
		}
		a.Finalize()
		return result{a: a}
	})
	total := analyze.New(cfg)
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		total.Merge(r.a)
	}
	return total.Report(), nil
}

// inspectTrace parses a Mahimahi trace from r and writes its summary
// statistics to w. A trace with no rate samples (empty file, or headers
// and comments only) is a clear error rather than a panic.
func inspectTrace(r io.Reader, name string, w io.Writer) error {
	tr, err := trace.ParseMahimahi(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if len(tr.Rates) == 0 {
		return fmt.Errorf("%s: trace has no delivery opportunities (empty or comment-only file)", name)
	}
	lo, hi := tr.Rates[0], tr.Rates[0]
	sk := stats.NewSketch(0)
	for _, r := range tr.Rates {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
		sk.Add(trace.ToMbps(r))
	}
	_, err = fmt.Fprintf(w, "duration: %s\nsamples:  %d @ %s\nmean:     %.2f Mbps\nmin/max:  %.2f / %.2f Mbps\np50/p95/p99: %.2f / %.2f / %.2f Mbps\n",
		tr.Duration(), len(tr.Rates), tr.Interval,
		trace.ToMbps(tr.Mean()), trace.ToMbps(lo), trace.ToMbps(hi),
		sk.Quantile(0.50), sk.Quantile(0.95), sk.Quantile(0.99))
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
