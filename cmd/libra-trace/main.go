// Command libra-trace generates and inspects capacity traces,
// including Mahimahi-format import/export so workloads can be exchanged
// with the emulator the paper used.
//
// Usage:
//
//	libra-trace -gen lte:driving -dur 60s -o driving.mahi
//	libra-trace -inspect driving.mahi
//	libra-trace -inspect 'a.mahi,b.mahi,c.mahi' -parallel 4
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"libra/internal/cliutil"
	"libra/internal/sweep"
	"libra/internal/trace"
)

func main() {
	var (
		gen      = flag.String("gen", "", "generate: lte:stationary|walking|driving|tour, const:<Mbps>, step:<P,L1,L2,..>")
		dur      = flag.Duration("dur", 60*time.Second, "trace duration")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (Mahimahi format; default stdout)")
		inspect  = flag.String("inspect", "", "parse Mahimahi traces (comma-separated) and print statistics")
		parallel = cliutil.ParallelFlag()
	)
	flag.Parse()

	switch {
	case *inspect != "":
		// Inspect every file concurrently; outputs are buffered per file
		// and printed in argument order, so the report is identical at
		// any -parallel setting.
		paths := strings.Split(*inspect, ",")
		type result struct {
			out []byte
			err error
		}
		results := sweep.Map(sweep.Workers(*parallel), len(paths), func(i int) result {
			path := strings.TrimSpace(paths[i])
			f, err := os.Open(path)
			if err != nil {
				return result{err: err}
			}
			defer f.Close()
			var buf bytes.Buffer
			if len(paths) > 1 {
				fmt.Fprintf(&buf, "%s:\n", path)
			}
			if err := inspectTrace(f, path, &buf); err != nil {
				return result{err: err}
			}
			return result{out: buf.Bytes()}
		})
		for _, r := range results {
			if r.err != nil {
				fatal(r.err)
			}
			os.Stdout.Write(r.out)
		}
	case *gen != "":
		var tr trace.Trace
		switch *gen {
		case "lte:stationary":
			tr = trace.NewLTE(trace.LTEStationary, *dur, *seed)
		case "lte:walking":
			tr = trace.NewLTE(trace.LTEWalking, *dur, *seed)
		case "lte:driving":
			tr = trace.NewLTE(trace.LTEDriving, *dur, *seed)
		case "lte:tour":
			tr = trace.NewDrivingTour(*dur, *seed)
		default:
			var mbps float64
			if n, _ := fmt.Sscanf(*gen, "const:%g", &mbps); n == 1 {
				tr = trace.Constant(trace.Mbps(mbps))
				break
			}
			if payload, ok := strings.CutPrefix(*gen, "step:"); ok {
				st, err := trace.ParseStep(payload)
				if err != nil {
					fatal(err)
				}
				tr = st
				break
			}
			fatal(fmt.Errorf("unknown generator %q", *gen))
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := trace.WriteMahimahi(w, tr, *dur); err != nil {
			fatal(err)
		}
		if *out != "" {
			fmt.Printf("wrote %s (%s, mean %.2f Mbps)\n", *out, *dur,
				trace.ToMbps(trace.MeanRate(tr, *dur, 100*time.Millisecond)))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// inspectTrace parses a Mahimahi trace from r and writes its summary
// statistics to w. A trace with no rate samples (empty file, or headers
// and comments only) is a clear error rather than a panic.
func inspectTrace(r io.Reader, name string, w io.Writer) error {
	tr, err := trace.ParseMahimahi(r)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if len(tr.Rates) == 0 {
		return fmt.Errorf("%s: trace has no delivery opportunities (empty or comment-only file)", name)
	}
	lo, hi := tr.Rates[0], tr.Rates[0]
	for _, r := range tr.Rates {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	_, err = fmt.Fprintf(w, "duration: %s\nsamples:  %d @ %s\nmean:     %.2f Mbps\nmin/max:  %.2f / %.2f Mbps\n",
		tr.Duration(), len(tr.Rates), tr.Interval,
		trace.ToMbps(tr.Mean()), trace.ToMbps(lo), trace.ToMbps(hi))
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
