// Command libra-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	libra-bench -list
//	libra-bench -run fig1,fig7 [-quick] [-seed 1] [-models dir] [-parallel 8]
//	libra-bench -all -quick
//
// Each experiment prints the rows/series the corresponding paper
// artifact plots; EXPERIMENTS.md records the paper-vs-measured
// comparison. Reports are byte-identical at any -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"libra/internal/cliutil"
	"libra/internal/exp"
	"libra/internal/netem/faults"
	"libra/internal/telemetry"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		run        = flag.String("run", "", "comma-separated experiment IDs")
		all        = flag.Bool("all", false, "run every experiment")
		quick      = flag.Bool("quick", false, "reduced durations/repeats")
		seed       = flag.Int64("seed", 1, "random seed")
		models     = flag.String("models", "", "directory of trained models (from libra-train)")
		faultSpec  = flag.String("fault", "", "apply a fault plan to every run: a preset name ("+strings.Join(faults.PresetNames(), "|")+") or a JSON plan file")
		topoArg    = flag.String("topo", "", "run every experiment over a multi-hop topology: a preset name ("+strings.Join(exp.TopoPresetNames(), "|")+") or a JSON topology file")
		traceOut   = flag.String("trace-out", "", "write a JSONL telemetry event stream of every run to this file")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot to this file after the runs")
		metricsFmt = flag.String("metrics-format", "auto", "metrics snapshot format: auto|json|prom")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address")
		httpAddr   = flag.String("http", "", "serve the live flow dashboard (plus pprof and /metrics) on this address")
		parallel   = cliutil.ParallelFlag()
		flightOut  = cliutil.FlightFlag()
		tsOut      = cliutil.TimeSeriesFlag()
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n         paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		for _, e := range exp.All() {
			ids = append(ids, e.ID)
		}
	case *run != "":
		ids = strings.Split(*run, ",")
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -list, -all, or -run ids")
		os.Exit(2)
	}

	plan, err := faults.Load(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	topo, err := exp.LoadTopo(*topoArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	tracer, closeTracer, err := cliutil.OpenTracer(*traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rc := exp.NewRunContext(*seed)
	rc.Quick = *quick
	rc.Workers = *parallel
	rc.FaultPlan = plan
	rc.Topo = topo
	rc.Tracer = tracer
	if *models != "" {
		set, err := exp.LoadAgentSet(*models, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "load models: %v\n", err)
			os.Exit(1)
		}
		rc.Agents = set
	}
	rc.WithDefaults()

	flight, closeFlight, err := cliutil.OpenFlight(*flightOut, rc.Metrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Order matters: the flight recorder precedes the anomaly tap so a
	// detector-triggered dump already holds the event that tripped it.
	rc.Tracer = telemetry.Multi(rc.Tracer, cliutil.FlightTap(flight), cliutil.AnomalyTap(flight))
	// The time-series collector taps the same stream whenever anything
	// consumes it: a snapshot file, the debug server, or the dashboard.
	var ts *telemetry.TSCollector
	if *tsOut != "" || *pprofAddr != "" || *httpAddr != "" {
		ts = telemetry.NewTSCollector(0, 0)
		rc.Tracer = telemetry.Multi(rc.Tracer, ts)
	}
	health, stopHealth := cliutil.StartHealth(rc.Metrics)
	rc.Health = health

	cliutil.StartPprof(*pprofAddr, rc.Metrics, ts)
	if live := cliutil.StartDashboard(*httpAddr, rc.Metrics, ts, topo); live != nil {
		rc.Tracer = telemetry.Multi(rc.Tracer, live)
		rc.Live = live
		fmt.Printf("live dashboard: http://%s/\n", *httpAddr)
	}

	for _, id := range ids {
		e, ok := exp.Get(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		// Experiment boundaries land in the stream as global markers so
		// `libra-trace spans` can label which runs belong to which figure.
		rc.EmitSpan(0, -1, "experiment:"+e.ID, true)
		rep := e.Run(rc)
		rc.EmitSpan(0, -1, "experiment:"+e.ID, false)
		fmt.Print(rep.String())
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}

	if err := closeTracer(); err != nil {
		fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
		os.Exit(1)
	}
	if err := closeFlight(); err != nil {
		fmt.Fprintf(os.Stderr, "flight-out: %v\n", err)
		os.Exit(1)
	}
	stopHealth()
	if ts != nil {
		ts.ExportProm(rc.Metrics)
	}
	if err := cliutil.WriteTimeSeries(ts, *tsOut); err != nil {
		fmt.Fprintf(os.Stderr, "timeseries-out: %v\n", err)
		os.Exit(1)
	}
	if err := cliutil.WriteMetrics(rc.Metrics, *metricsOut, *metricsFmt); err != nil {
		fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
		os.Exit(1)
	}
}
