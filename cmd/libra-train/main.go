// Command libra-train trains the PPO policies used by the
// learning-based CCAs (Libra's RL component, Orca, Aurora, Mod-RL) on
// randomized emulated networks, reporting the learning curves and
// saving the actor networks for libra-bench -models.
//
// Usage:
//
//	libra-train -out models/ [-episodes 600] [-eplen 20s] [-paper] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"libra/internal/cc"
	"libra/internal/cliutil"
	"libra/internal/exp"
	"libra/internal/rlcc"
	"libra/internal/telemetry"
)

func main() {
	var (
		out        = flag.String("out", "models", "output directory for trained models")
		episodes   = flag.Int("episodes", 0, "training episodes per agent (0 = spec default)")
		epLen      = flag.Duration("eplen", 0, "simulated seconds per episode (0 = spec default)")
		paper      = flag.Bool("paper", false, "use the paper's full training ranges (slower)")
		seed       = flag.Int64("seed", 1, "random seed")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot to this file after training")
		metricsFmt = flag.String("metrics-format", "auto", "metrics snapshot format: auto|json|prom")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address")
		parallel   = cliutil.ParallelFlag()
		flightOut  = cliutil.FlightFlag()
		tsOut      = cliutil.TimeSeriesFlag()
	)
	flag.Parse()

	rc := exp.NewRunContext(*seed)
	rc.Workers = *parallel
	rc.WithDefaults()
	flight, closeFlight, err := cliutil.OpenFlight(*flightOut, rc.Metrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Order matters: the flight recorder precedes the anomaly tap so a
	// detector-triggered dump already holds the event that tripped it.
	tap := telemetry.Multi(cliutil.FlightTap(flight), cliutil.AnomalyTap(flight))
	// The time-series collector taps the same stream whenever anything
	// consumes it: a snapshot file or the debug server.
	var ts *telemetry.TSCollector
	if *tsOut != "" || *pprofAddr != "" {
		ts = telemetry.NewTSCollector(0, 0)
		tap = telemetry.Multi(tap, ts)
	}
	health, stopHealth := cliutil.StartHealth(rc.Metrics)
	rc.Health = health
	cliutil.StartPprof(*pprofAddr, rc.Metrics, ts)

	spec := exp.QuickTrainSpec(*seed)
	if *paper {
		spec = exp.FullTrainSpec(*seed)
	}
	spec.Workers = rc.Workers
	if *episodes > 0 {
		spec.Episodes = *episodes
	}
	if *epLen > 0 {
		spec.EpisodeLen = *epLen
	}

	fmt.Printf("training 4 agents: %d episodes x %s each (env: %.0f-%.0f Mbps, %s-%s RTT, loss up to %.0f%%)\n",
		spec.Episodes, spec.EpisodeLen,
		spec.Env.CapacityMbps[0], spec.Env.CapacityMbps[1],
		spec.Env.RTT[0], spec.Env.RTT[1], spec.Env.LossRate[1]*100)

	// One demonstration learning curve (Libra's RL component), then the
	// full agent set for persistence.
	fmt.Println("-- libra-rl learning curve --")
	start := time.Now()
	rlcc.Train(rlcc.TrainConfig{
		Episodes:   spec.Episodes / 4,
		EpisodeLen: spec.EpisodeLen,
		Env:        &spec.Env,
		Ctrl:       rlcc.LibraRLConfig(baseCfg(*seed)),
		Seed:       spec.Seed,
		Tracer:     tap,
		Health:     health,
		OnEpisode: func(i int, reward float64) {
			if (i+1)%10 == 0 || i == 0 {
				fmt.Printf("  episode %4d  reward %8.2f\n", i+1, reward)
			}
		},
	})
	fmt.Printf("  done in %.1fs\n", time.Since(start).Seconds())

	fmt.Println("training the 4-agent set for persistence...")
	set := exp.TrainAgentSet(spec)
	if err := set.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "save: %v\n", err)
		os.Exit(1)
	}
	// Round-trip check: a model directory that cannot be loaded back
	// through the validated loader is worse than no directory at all,
	// so fail loudly now rather than at the consumer's first -models run.
	if _, err := exp.LoadAgentSet(*out, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "saved models fail to reload: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("saved models to %s (use: libra-bench -models %s)\n", *out, *out)

	if err := closeFlight(); err != nil {
		fmt.Fprintf(os.Stderr, "flight-out: %v\n", err)
		os.Exit(1)
	}
	stopHealth()
	if ts != nil {
		ts.ExportProm(rc.Metrics)
	}
	if err := cliutil.WriteTimeSeries(ts, *tsOut); err != nil {
		fmt.Fprintf(os.Stderr, "timeseries-out: %v\n", err)
		os.Exit(1)
	}
	if err := cliutil.WriteMetrics(rc.Metrics, *metricsOut, *metricsFmt); err != nil {
		fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
		os.Exit(1)
	}
}

func baseCfg(seed int64) cc.Config { return cc.Config{Seed: seed} }
