// Command libra-lab is the adversarial robustness laboratory: it
// searches for the network conditions that break a congestion
// controller, replays discovered worst cases with full forensics, and
// runs round-robin robustness tournaments across controllers.
//
// Usage:
//
//	libra-lab search -cca cubic -budget 64 -o worst-cubic.json
//	libra-lab search -cca bbr -json -flight-out dumps/
//	libra-lab replay -spec worst-cubic.json -cca bbr
//	libra-lab tournament -cca cubic,bbr,reno -budget 32
//	libra-lab tournament -cca all -json -specs-dir worst/
//
// Everything is deterministic: the same seed and flags produce
// byte-identical output at any -parallel count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"libra/internal/cliutil"
	"libra/internal/exp"
	"libra/internal/lab"
	"libra/internal/telemetry"
	"libra/internal/utility"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "search":
		runSearch(os.Args[2:])
	case "tournament":
		runTournament(os.Args[2:])
	case "replay":
		runReplay(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "libra-lab: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  libra-lab search     -cca <name> [-budget N] [-seed N] [-dur 4s] [-o spec.json] [-json]
  libra-lab replay     -spec worst.json [-cca <other>] [-json]
  libra-lab tournament -cca <a,b,..|all> [-budget N] [-seed N] [-dur 4s] [-json] [-specs-dir dir]

shared flags: -parallel N, -trace-out f.jsonl, -metrics-out f, -metrics-format auto|json|prom,
              -flight-out dir, -pprof addr, -timeseries-out f.json`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// obsFlags registers the observability flags shared by every
// subcommand and wires them into a RunContext, mirroring libra-sim.
type obsFlags struct {
	parallel   *int
	traceOut   *string
	metricsOut *string
	metricsFmt *string
	flightOut  *string
	pprofAddr  *string
	tsOut      *string
}

func addObs(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		parallel:   fs.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS)"),
		traceOut:   fs.String("trace-out", "", "write a JSONL telemetry event stream to this file"),
		metricsOut: fs.String("metrics-out", "", "write a metrics snapshot to this file after the run"),
		metricsFmt: fs.String("metrics-format", "auto", "metrics snapshot format: auto|json|prom"),
		flightOut:  fs.String("flight-out", "", "directory for flight-recorder dumps on detected anomalies (empty = off)"),
		pprofAddr:  fs.String("pprof", "", "serve net/http/pprof and /metrics on this address"),
		tsOut:      fs.String("timeseries-out", "", "write the downsampled time-series snapshot (JSON) to this file after the run"),
	}
}

// rig builds the run context: tracer + flight recorder + anomaly tap
// (in that order, so dumps hold their triggering event) + health
// sampler. The returned teardown flushes everything; call it once at
// the end of the subcommand.
func (o *obsFlags) rig(seed int64) (*exp.RunContext, func()) {
	tracer, closeTracer, err := cliutil.OpenTracer(*o.traceOut)
	if err != nil {
		fatal(err)
	}
	rc := exp.NewRunContext(seed)
	rc.Workers = *o.parallel
	rc.WithDefaults()
	flight, closeFlight, err := cliutil.OpenFlight(*o.flightOut, rc.Metrics)
	if err != nil {
		fatal(err)
	}
	rc.Tracer = telemetry.Multi(tracer, cliutil.FlightTap(flight), cliutil.AnomalyTap(flight))
	// The time-series collector taps the same stream whenever anything
	// consumes it: a snapshot file or the debug server.
	var ts *telemetry.TSCollector
	if *o.tsOut != "" || *o.pprofAddr != "" {
		ts = telemetry.NewTSCollector(0, 0)
		rc.Tracer = telemetry.Multi(rc.Tracer, ts)
	}
	health, stopHealth := cliutil.StartHealth(rc.Metrics)
	rc.Health = health
	cliutil.StartPprof(*o.pprofAddr, rc.Metrics, ts)
	return rc, func() {
		if err := closeTracer(); err != nil {
			fatal(fmt.Errorf("trace-out: %w", err))
		}
		if err := closeFlight(); err != nil {
			fatal(fmt.Errorf("flight-out: %w", err))
		}
		stopHealth()
		if ts != nil {
			ts.ExportProm(rc.Metrics)
		}
		if err := cliutil.WriteTimeSeries(ts, *o.tsOut); err != nil {
			fatal(fmt.Errorf("timeseries-out: %w", err))
		}
		if err := cliutil.WriteMetrics(rc.Metrics, *o.metricsOut, *o.metricsFmt); err != nil {
			fatal(fmt.Errorf("metrics-out: %w", err))
		}
	}
}

func runSearch(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	cca := fs.String("cca", "", "target controller to break (required)")
	budget := fs.Int("budget", 64, "evaluation budget")
	seed := fs.Int64("seed", 1, "search seed")
	dur := fs.Duration("dur", 4*time.Second, "simulated length of each evaluation")
	out := fs.String("o", "", "write the discovered worst case as a replayable spec file")
	jsonOut := fs.Bool("json", false, "emit the full machine-readable search result")
	obs := addObs(fs)
	fs.Parse(args)
	if *cca == "" {
		fs.Usage()
		fatal(fmt.Errorf("search: -cca is required (one of %s)", strings.Join(exp.KnownCCAs(), ", ")))
	}

	rc, teardown := obs.rig(*seed)
	sr, err := lab.Search(rc, lab.SearchConfig{
		Target: *cca, Seed: *seed, Budget: *budget, DurS: dur.Seconds(),
	})
	if err != nil {
		fatal(err)
	}
	// Replay the discovery at top level with the lab_worst_case marker:
	// with -flight-out set this cuts the forensic dump for the find.
	lab.Replay(rc, sr.Best.Spec, utility.Default(), true)

	if *out != "" {
		if err := sr.Best.Spec.WriteFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("worst case written to %s\n", *out)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, sr); err != nil {
			fatal(err)
		}
	} else {
		worst := sr.Presets[0]
		for _, o := range sr.Presets[1:] {
			if o.Score < worst.Score {
				worst = o
			}
		}
		fmt.Printf("target %s: baseline %.3f, worst preset %s %.3f\n",
			sr.Target, sr.Baseline.Score, sr.WorstPreset, worst.Score)
		fmt.Printf("discovered %.3f after %d evals / %d rounds (%+.3f vs worst preset)\n",
			sr.Best.Score, sr.Evals, sr.Rounds, sr.Best.Score-worst.Score)
		sp := sr.Best.Spec
		fmt.Printf("worst case: cap %.1f Mbps (dip %.2f every %.1fs), rtt %.0f ms, cross %d, %d anomalies\n",
			sp.CapMbps, sp.DipFrac, sp.PeriodS, sp.RTTMs, sp.Cross, sr.Best.Anomalies)
	}
	teardown()
}

func runReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	specPath := fs.String("spec", "", "worst-case spec file to replay (required)")
	cca := fs.String("cca", "", "override the spec's target controller")
	jsonOut := fs.Bool("json", false, "emit the machine-readable outcome")
	obs := addObs(fs)
	fs.Parse(args)
	if *specPath == "" {
		fs.Usage()
		fatal(fmt.Errorf("replay: -spec is required"))
	}
	sp, err := lab.ReadSpecFile(*specPath)
	if err != nil {
		fatal(err)
	}
	if *cca != "" {
		sp.Target = *cca
		if err := sp.Validate(); err != nil {
			fatal(err)
		}
	}

	rc, teardown := obs.rig(sp.Seed)
	out := lab.Replay(rc, sp, utility.Default(), true)
	if *jsonOut {
		if err := writeJSON(os.Stdout, out); err != nil {
			fatal(err)
		}
	} else {
		status := "ok"
		if out.Failed {
			status = "FAILED"
		}
		fmt.Printf("%s vs %s (seed %d): score %.3f [%s]\n",
			sp.Target, sp.Name(), sp.Seed, out.Score, status)
		fmt.Printf("thr %.2f Mbps, delay %.1f ms, loss %.3f%%, %d anomalies\n",
			out.ThrMbps, out.DelayMs, out.LossRate*100, out.Anomalies)
	}
	teardown()
}

func runTournament(args []string) {
	fs := flag.NewFlagSet("tournament", flag.ExitOnError)
	ccas := fs.String("cca", "all", `contestants, comma-separated ("all" = every registered CCA)`)
	budget := fs.Int("budget", 32, "per-CCA adversarial search budget")
	seed := fs.Int64("seed", 1, "tournament seed")
	dur := fs.Duration("dur", 4*time.Second, "simulated length of each evaluation")
	jsonOut := fs.Bool("json", false, "emit the machine-readable leaderboard (includes worst-case specs)")
	out := fs.String("o", "", "also write the JSON leaderboard to this file")
	specsDir := fs.String("specs-dir", "", "write each contestant's worst-case spec into this directory")
	obs := addObs(fs)
	fs.Parse(args)

	var contestants []string
	if *ccas == "all" {
		contestants = exp.KnownCCAs()
	} else {
		for _, c := range strings.Split(*ccas, ",") {
			if c = strings.TrimSpace(c); c != "" {
				contestants = append(contestants, c)
			}
		}
	}

	rc, teardown := obs.rig(*seed)
	lb, err := lab.Tournament(rc, lab.TournamentConfig{
		CCAs: contestants, Seed: *seed, Budget: *budget, DurS: dur.Seconds(),
	})
	if err != nil {
		fatal(err)
	}

	if *specsDir != "" {
		if err := os.MkdirAll(*specsDir, 0o755); err != nil {
			fatal(err)
		}
		for _, w := range lb.Worsts {
			name := strings.TrimPrefix(w.Label, "worst:")
			if err := w.WriteFile(filepath.Join(*specsDir, "worst-"+name+".json")); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("%d worst-case specs written to %s\n", len(lb.Worsts), *specsDir)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := lb.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		err = lb.WriteJSON(os.Stdout)
	} else {
		err = lb.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	teardown()
}

func writeJSON(w *os.File, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
