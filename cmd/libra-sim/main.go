// Command libra-sim runs one or more congestion controllers over a
// configurable emulated path and prints per-second throughput/delay.
//
// Usage:
//
//	libra-sim -cca c-libra,cubic -capacity 48 -rtt 40ms -dur 30s
//	libra-sim -cca b-libra -trace lte:driving -loss 0.01
//	libra-sim -cca c-libra -trace lte:walking -trace-out events.jsonl \
//	          -metrics-out metrics.prom -pprof localhost:6060
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"libra/internal/cliutil"
	"libra/internal/exp"
	"libra/internal/netem"
	"libra/internal/netem/faults"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

func main() {
	var (
		ccas       = flag.String("cca", "c-libra", "comma-separated controllers sharing the bottleneck")
		capMbps    = flag.Float64("capacity", 48, "link capacity in Mbps (ignored with -trace)")
		traceSpec  = flag.String("trace", "", "capacity trace: lte:stationary|walking|driving|tour, or step:P,L1,L2,...")
		rtt        = flag.Duration("rtt", 40*time.Millisecond, "minimum RTT")
		buffer     = flag.Int("buffer", 150000, "droptail buffer in bytes")
		loss       = flag.Float64("loss", 0, "iid stochastic loss probability")
		dur        = flag.Duration("dur", 30*time.Second, "simulated duration")
		seed       = flag.Int64("seed", 1, "random seed")
		faultSpec  = flag.String("fault", "", "fault plan: a preset name ("+strings.Join(faults.PresetNames(), "|")+") or a JSON plan file")
		traceOut   = flag.String("trace-out", "", "write a JSONL telemetry event stream to this file")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot to this file after the run")
		metricsFmt = flag.String("metrics-format", "auto", "metrics snapshot format: auto|json|prom")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address")
	)
	flag.Parse()

	capacity, err := buildTrace(*traceSpec, *capMbps, *dur, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	plan, err := faults.Load(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var inj netem.FaultInjector
	if !plan.Empty() {
		fi, err := faults.New(plan, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		inj = fi
	}

	cliutil.StartPprof(*pprofAddr, exp.MetricsRegistry())
	tracer, closeTracer, err := cliutil.OpenTracer(*traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	n := netem.New(netem.Config{
		Capacity:     capacity,
		MinRTT:       *rtt,
		BufferBytes:  *buffer,
		LossRate:     *loss,
		Faults:       inj,
		Seed:         *seed,
		RecordSeries: true,
		SeriesBucket: time.Second,
		Tracer:       tracer,
	})
	names := strings.Split(*ccas, ",")
	flows := make([]*netem.Flow, len(names))
	for i, name := range names {
		mk, err := exp.MakerFor(strings.TrimSpace(name), nil, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ctrl := mk(*seed + int64(i)*31)
		if tb, ok := ctrl.(telemetry.Traceable); ok && telemetry.Enabled(tracer) {
			tb.SetTracer(tracer, i)
		}
		flows[i] = n.AddFlow(ctrl, 0, 0)
	}
	n.Run(*dur)
	exp.ObserveLink(n, *dur)

	fmt.Printf("%-6s %-9s", "t(s)", "cap(Mbps)")
	for _, name := range names {
		fmt.Printf("  %-18s", name+" thr/delay")
	}
	fmt.Println()
	for t := 0; t < int(*dur/time.Second); t++ {
		at := time.Duration(t) * time.Second
		fmt.Printf("%-6d %-9.1f", t, trace.ToMbps(capacity.RateAt(at)))
		for _, f := range flows {
			fmt.Printf("  %6.2f / %-6.0fms ", trace.ToMbps(f.Stats.Throughput.Rate(t)), f.Stats.Delay.Mean(t))
		}
		fmt.Println()
	}
	fmt.Println()
	for i, f := range flows {
		m := exp.Observe(n, f, *dur)
		fmt.Printf("%-10s avg %.2f Mbps, avg RTT %v, loss %.3f%%\n",
			names[i], m.ThrMbps, f.Stats.AvgRTT().Round(time.Millisecond), m.LossRate*100)
	}
	fmt.Printf("link utilisation: %.3f\n", n.Utilization(*dur))
	ds := n.Link().DropStats()
	if ds.Total() > 0 {
		fmt.Printf("drops: %d tail, %d channel, %d aqm, %d blackout, %d burst (%d bytes)\n",
			ds.Tail, ds.Channel, ds.AQM, ds.Blackout, ds.Burst, ds.Bytes)
	}

	if err := closeTracer(); err != nil {
		fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
		os.Exit(1)
	}
	if err := cliutil.WriteMetrics(exp.MetricsRegistry(), *metricsOut, *metricsFmt); err != nil {
		fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
		os.Exit(1)
	}
}

func buildTrace(spec string, capMbps float64, d time.Duration, seed int64) (trace.Trace, error) {
	if spec == "" {
		return trace.Constant(trace.Mbps(capMbps)), nil
	}
	parts := strings.SplitN(spec, ":", 2)
	switch parts[0] {
	case "lte":
		kind := "stationary"
		if len(parts) > 1 {
			kind = parts[1]
		}
		switch kind {
		case "stationary":
			return trace.NewLTE(trace.LTEStationary, d, seed), nil
		case "walking":
			return trace.NewLTE(trace.LTEWalking, d, seed), nil
		case "driving":
			return trace.NewLTE(trace.LTEDriving, d, seed), nil
		case "tour":
			return trace.NewDrivingTour(d, seed), nil
		}
		return nil, fmt.Errorf("unknown lte scenario %q", kind)
	case "step":
		if len(parts) < 2 {
			return nil, fmt.Errorf("step trace needs step:periodSec,L1,L2,...")
		}
		return trace.ParseStep(parts[1])
	}
	return nil, fmt.Errorf("unknown trace spec %q", spec)
}
