// Command libra-sim runs one or more congestion controllers over a
// configurable emulated path and prints per-second throughput/delay.
//
// Usage:
//
//	libra-sim -cca c-libra,cubic -capacity 48 -rtt 40ms -dur 30s
//	libra-sim -cca b-libra -trace lte:driving -loss 0.01
//	libra-sim -cca c-libra -trace lte:walking -trace-out events.jsonl \
//	          -metrics-out metrics.prom -pprof localhost:6060
//	libra-sim -cca c-libra -reps 8 -parallel 4   # seed sweep
//	libra-sim -cca cubic -topo parking-lot       # multi-hop topology
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"libra/internal/cliutil"
	"libra/internal/exp"
	"libra/internal/netem"
	"libra/internal/netem/faults"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

func main() {
	var (
		ccas       = flag.String("cca", "c-libra", "comma-separated controllers sharing the bottleneck")
		capMbps    = flag.Float64("capacity", 48, "link capacity in Mbps (ignored with -trace)")
		traceSpec  = flag.String("trace", "", "capacity trace: lte:stationary|walking|driving|tour, or step:P,L1,L2,...")
		rtt        = flag.Duration("rtt", 40*time.Millisecond, "minimum RTT")
		buffer     = flag.Int("buffer", 150000, "droptail buffer in bytes")
		loss       = flag.Float64("loss", 0, "iid stochastic loss probability")
		dur        = flag.Duration("dur", 30*time.Second, "simulated duration")
		seed       = flag.Int64("seed", 1, "random seed")
		reps       = flag.Int("reps", 1, "repeat the run this many times with derived seeds")
		faultSpec  = flag.String("fault", "", "fault plan: a preset name ("+strings.Join(faults.PresetNames(), "|")+") or a JSON plan file")
		topoArg    = flag.String("topo", "", "multi-hop topology: a preset name ("+strings.Join(exp.TopoPresetNames(), "|")+") or a JSON topology file; overrides -capacity/-trace/-rtt/-buffer/-loss")
		profSpec   = flag.String("profiles", "", "comma-separated utility profiles ("+strings.Join(exp.ProfileNames(), "|")+"); one flow per profile, overrides -cca")
		traceOut   = flag.String("trace-out", "", "write a JSONL telemetry event stream to this file")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot to this file after the run")
		metricsFmt = flag.String("metrics-format", "auto", "metrics snapshot format: auto|json|prom")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address")
		httpAddr   = flag.String("http", "", "serve the live flow dashboard (plus pprof and /metrics) on this address")
		parallel   = cliutil.ParallelFlag()
		flightOut  = cliutil.FlightFlag()
		tsOut      = cliutil.TimeSeriesFlag()
	)
	flag.Parse()

	plan, err := faults.Load(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	topo, err := exp.LoadTopo(*topoArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	tracer, closeTracer, err := cliutil.OpenTracer(*traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rc := exp.NewRunContext(*seed)
	rc.Workers = *parallel
	rc.WithDefaults()
	flight, closeFlight, err := cliutil.OpenFlight(*flightOut, rc.Metrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Order matters: the flight recorder precedes the anomaly tap so a
	// detector-triggered dump already holds the event that tripped it.
	rc.Tracer = telemetry.Multi(tracer, cliutil.FlightTap(flight), cliutil.AnomalyTap(flight))
	// The time-series collector taps the same stream whenever anything
	// consumes it: a snapshot file, the debug server, or the dashboard.
	var ts *telemetry.TSCollector
	if *tsOut != "" || *pprofAddr != "" || *httpAddr != "" {
		ts = telemetry.NewTSCollector(0, 0)
		rc.Tracer = telemetry.Multi(rc.Tracer, ts)
	}
	health, stopHealth := cliutil.StartHealth(rc.Metrics)
	rc.Health = health
	cliutil.StartPprof(*pprofAddr, rc.Metrics, ts)
	if live := cliutil.StartDashboard(*httpAddr, rc.Metrics, ts, topo); live != nil {
		rc.Tracer = telemetry.Multi(rc.Tracer, live)
		rc.Live = live
		fmt.Printf("live dashboard: http://%s/\n", *httpAddr)
	}

	profs, err := exp.ParseProfiles(*profSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var names, profNames []string
	if len(profs) > 0 {
		for _, p := range profs {
			if _, err := p.Maker(nil); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			names = append(names, p.Name)
			profNames = append(profNames, p.Name)
		}
	} else {
		names = strings.Split(*ccas, ",")
		for i, name := range names {
			names[i] = strings.TrimSpace(name)
			if _, err := exp.MakerFor(names[i], nil, nil); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}
	// makerAt resolves flow i's controller factory: the profile's
	// (utility-parameterised) maker with -profiles, else the plain CCA.
	makerAt := func(i int) exp.Maker {
		if len(profs) > 0 {
			mk, _ := profs[i].Maker(nil)
			return mk
		}
		mk, _ := exp.MakerFor(names[i], nil, nil)
		return mk
	}

	// One rep = one emulated run; its capacity trace, fault schedule and
	// controllers all derive from the rep's seed so a -reps sweep explores
	// genuinely different channels.
	type flowSummary struct {
		thrMbps, lossRate float64
		rtt               time.Duration
	}
	type repResult struct {
		flows []flowSummary
		util  float64
		drops netem.DropStats
		topo  *netem.Topology
	}
	// runTopo drives all controllers down the topology's main route via
	// the experiment harness (cross traffic and ACK paths come from the
	// spec) and reports per-hop drop/utilization attribution.
	runTopo := func(jc *exp.RunContext, verbose bool) repResult {
		name := topo.Name
		if name == "" {
			name = *topoArg
		}
		mks := make([]exp.Maker, len(names))
		for i := range names {
			mks[i] = makerAt(i)
		}
		s := exp.Scenario{Name: "topo:" + name, Duration: *dur, Faults: plan, Topo: topo, Profiles: profNames}
		ms := jc.RunFlows(s, mks, nil, time.Second)
		var res repResult
		for _, m := range ms {
			if m.Failed {
				fmt.Fprintln(os.Stderr, m.Err)
				os.Exit(1)
			}
			res.flows = append(res.flows, flowSummary{
				thrMbps: m.ThrMbps, lossRate: m.LossRate, rtt: m.Flow.Stats.AvgRTT(),
			})
		}
		res.util = ms[0].Util
		res.topo = ms[0].Topo
		if verbose {
			fmt.Printf("%-6s", "t(s)")
			for _, nm := range names {
				fmt.Printf("  %-18s", nm+" thr/delay")
			}
			fmt.Println()
			for t := 0; t < int(*dur/time.Second); t++ {
				fmt.Printf("%-6d", t)
				for _, m := range ms {
					fmt.Printf("  %6.2f / %-6.0fms ", trace.ToMbps(m.Flow.Stats.Throughput.Rate(t)), m.Flow.Stats.Delay.Mean(t))
				}
				fmt.Println()
			}
			fmt.Println()
		}
		return res
	}
	runOnce := func(jc *exp.RunContext, verbose bool) repResult {
		if topo != nil {
			return runTopo(jc, verbose)
		}
		capacity, err := buildTrace(*traceSpec, *capMbps, *dur, jc.Seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var inj netem.FaultInjector
		if !plan.Empty() {
			fi, err := faults.New(plan, jc.Seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			inj = fi
		}
		n := netem.New(netem.Config{
			Capacity:     capacity,
			MinRTT:       *rtt,
			BufferBytes:  *buffer,
			LossRate:     *loss,
			Faults:       inj,
			Seed:         jc.Seed,
			RecordSeries: true,
			SeriesBucket: time.Second,
			Tracer:       jc.Tracer,
			Health:       jc.Health,
		})
		scenario := *traceSpec
		if scenario == "" {
			scenario = fmt.Sprintf("wired-%gMbps", *capMbps)
		}
		jc.EmitSpan(0, -1, "scenario:"+scenario, true)
		flows := make([]*netem.Flow, len(names))
		ctrlNames := make([]string, len(names))
		for i := range names {
			ctrl := makerAt(i)(jc.Seed + int64(i)*31)
			ctrlNames[i] = ctrl.Name()
			jc.EmitSpan(0, i, "flow:"+ctrlNames[i], true)
			jc.AttachTracer(ctrl, i)
			if i < len(profNames) {
				jc.EmitProfile(0, i, profNames[i])
			}
			flows[i] = n.AddFlow(ctrl, 0, 0)
		}
		n.Run(*dur)
		for i := range flows {
			jc.EmitSpan(dur.Nanoseconds(), i, "flow:"+ctrlNames[i], false)
		}
		jc.EmitSpan(dur.Nanoseconds(), -1, "scenario:"+scenario, false)
		jc.ObserveLink(n, *dur)

		if verbose {
			fmt.Printf("%-6s %-9s", "t(s)", "cap(Mbps)")
			for _, name := range names {
				fmt.Printf("  %-18s", name+" thr/delay")
			}
			fmt.Println()
			for t := 0; t < int(*dur/time.Second); t++ {
				at := time.Duration(t) * time.Second
				fmt.Printf("%-6d %-9.1f", t, trace.ToMbps(capacity.RateAt(at)))
				for _, f := range flows {
					fmt.Printf("  %6.2f / %-6.0fms ", trace.ToMbps(f.Stats.Throughput.Rate(t)), f.Stats.Delay.Mean(t))
				}
				fmt.Println()
			}
			fmt.Println()
		}

		res := repResult{util: n.Utilization(*dur), drops: n.Link().DropStats()}
		for _, f := range flows {
			m := jc.Observe(n, f, *dur)
			res.flows = append(res.flows, flowSummary{
				thrMbps: m.ThrMbps, lossRate: m.LossRate, rtt: f.Stats.AvgRTT(),
			})
		}
		return res
	}

	if *reps <= 1 {
		res := runOnce(rc, true)
		for i, fs := range res.flows {
			fmt.Printf("%-10s avg %.2f Mbps, avg RTT %v, loss %.3f%%\n",
				names[i], fs.thrMbps, fs.rtt.Round(time.Millisecond), fs.lossRate*100)
		}
		fmt.Printf("link utilisation: %.3f\n", res.util)
		if res.topo != nil {
			fmt.Println("per-link:")
			for _, l := range res.topo.Links() {
				ds := l.DropStats()
				fmt.Printf("  %-8s util %.3f  drops: %d tail, %d channel, %d aqm, %d blackout, %d burst (%d bytes, %d marked)\n",
					l.Label(), res.topo.LinkUtilization(l, *dur),
					ds.Tail, ds.Channel, ds.AQM, ds.Blackout, ds.Burst, ds.Bytes, ds.Marked)
			}
		} else if ds := res.drops; ds.Total() > 0 {
			fmt.Printf("drops: %d tail, %d channel, %d aqm, %d blackout, %d burst (%d bytes)\n",
				ds.Tail, ds.Channel, ds.AQM, ds.Blackout, ds.Burst, ds.Bytes)
		}
	} else {
		results := exp.Sweep(rc, *reps, func(jc *exp.RunContext, _ int) repResult {
			return runOnce(jc, false)
		})
		fmt.Printf("%-6s %-9s", "rep", "util")
		for _, name := range names {
			fmt.Printf("  %-22s", name+" thr/rtt/loss")
		}
		fmt.Println()
		for r, res := range results {
			fmt.Printf("%-6d %-9.3f", r, res.util)
			for _, fs := range res.flows {
				fmt.Printf("  %6.2f / %5v / %.3f%%", fs.thrMbps, fs.rtt.Round(time.Millisecond), fs.lossRate*100)
			}
			fmt.Println()
		}
	}

	if err := closeTracer(); err != nil {
		fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
		os.Exit(1)
	}
	if err := closeFlight(); err != nil {
		fmt.Fprintf(os.Stderr, "flight-out: %v\n", err)
		os.Exit(1)
	}
	stopHealth()
	if ts != nil {
		ts.ExportProm(rc.Metrics)
	}
	if err := cliutil.WriteTimeSeries(ts, *tsOut); err != nil {
		fmt.Fprintf(os.Stderr, "timeseries-out: %v\n", err)
		os.Exit(1)
	}
	if err := cliutil.WriteMetrics(rc.Metrics, *metricsOut, *metricsFmt); err != nil {
		fmt.Fprintf(os.Stderr, "metrics-out: %v\n", err)
		os.Exit(1)
	}
}

func buildTrace(spec string, capMbps float64, d time.Duration, seed int64) (trace.Trace, error) {
	if spec == "" {
		return trace.Constant(trace.Mbps(capMbps)), nil
	}
	parts := strings.SplitN(spec, ":", 2)
	switch parts[0] {
	case "lte":
		kind := "stationary"
		if len(parts) > 1 {
			kind = parts[1]
		}
		switch kind {
		case "stationary":
			return trace.NewLTE(trace.LTEStationary, d, seed), nil
		case "walking":
			return trace.NewLTE(trace.LTEWalking, d, seed), nil
		case "driving":
			return trace.NewLTE(trace.LTEDriving, d, seed), nil
		case "tour":
			return trace.NewDrivingTour(d, seed), nil
		}
		return nil, fmt.Errorf("unknown lte scenario %q", kind)
	case "step":
		if len(parts) < 2 {
			return nil, fmt.Errorf("step trace needs step:periodSec,L1,L2,...")
		}
		return trace.ParseStep(parts[1])
	}
	return nil, fmt.Errorf("unknown trace spec %q", spec)
}
