// Cloudgaming: a delay-sensitive workload (VR/AR, cloud gaming — the
// paper's latency-critical class) over a cellular link. The La-2
// utility keeps queueing delay low where CUBIC bufferbloats; we report
// the fraction of "frames" (RTT samples) within a 100 ms budget.
package main

import (
	"fmt"
	"time"

	"libra"
)

const (
	dur    = 30 * time.Second
	budget = 100.0 // ms round-trip budget for an interactive frame
)

func run(label string, mk func() libra.Controller) {
	net := libra.NewNetwork(libra.NetworkConfig{
		Capacity:     libra.LTE("walking", dur, 11),
		MinRTT:       30 * time.Millisecond,
		BufferBytes:  300_000, // deep cellular buffer: bufferbloat risk
		Seed:         3,
		RecordSeries: true,
		SeriesBucket: time.Second,
	})
	flow := net.AddFlow(mk(), 0, 0)
	net.Run(dur)

	// Fraction of seconds whose mean RTT met the interactivity budget.
	met, total := 0, 0
	for t := 0; t < int(dur/time.Second); t++ {
		d := flow.Stats.Delay.Mean(t)
		if d == 0 {
			continue
		}
		total++
		if d <= budget {
			met++
		}
	}
	fmt.Printf("%-16s %5.1f Mbps  avg RTT %-6v  %3.0f%% of seconds within %v ms budget\n",
		label, libra.ToMbps(flow.Stats.AvgThroughput()),
		flow.Stats.AvgRTT().Round(time.Millisecond),
		100*float64(met)/float64(total), budget)
}

func main() {
	fmt.Println("interactive streaming over a walking LTE channel (deep 300 KB buffer)")
	fmt.Println("training Libra's RL component (~40 episodes)...")
	trained := libra.TrainLibraAgent(2, 40, 8*time.Second)
	fmt.Println()
	run("libra (La-2)", func() libra.Controller {
		return libra.New(libra.WithCubic(), libra.WithSeed(5), trained,
			libra.WithUtility(libra.LatencyOriented(2)))
	})
	run("libra (default)", func() libra.Controller {
		return libra.New(libra.WithCubic(), libra.WithSeed(5), trained)
	})
	run("cubic", func() libra.Controller { return libra.Baseline("cubic", 5) })
	run("bbr", func() libra.Controller { return libra.Baseline("bbr", 5) })
	fmt.Println("\nThe latency-oriented utility biases Libra's per-cycle argmax towards")
	fmt.Println("lower-queueing candidates, trading a little throughput for delay.")
}
