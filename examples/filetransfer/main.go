// Filetransfer: a throughput-oriented workload (cloud-storage
// replication / software download, the paper's motivating bulk class).
// A Libra sender with the Th-2 utility competes for a WAN-like path and
// is compared against the default preference and plain CUBIC: the
// throughput-oriented utility should finish the transfer first.
package main

import (
	"fmt"
	"time"

	"libra"
)

const (
	fileMB = 200.0
	dur    = 40 * time.Second
)

func run(label string, mk func() libra.Controller) {
	net := libra.NewNetwork(libra.NetworkConfig{
		Capacity:    libra.ConstantMbps(60),
		MinRTT:      60 * time.Millisecond,
		BufferBytes: 450_000,
		LossRate:    0.003, // light WAN loss
		Seed:        7,
	})
	flow := net.AddFlow(mk(), 0, 0)
	net.Run(dur)

	doneMB := float64(flow.Stats.AckedBytes) / 1e6
	eta := "not finished"
	if doneMB >= fileMB {
		// First moment the cumulative delivery passed the file size.
		secs := fileMB / doneMB * dur.Seconds()
		eta = fmt.Sprintf("~%.1fs", secs)
	}
	fmt.Printf("%-16s %6.1f MB delivered (%5.1f Mbps avg, RTT %v)  %s for %.0f MB\n",
		label, doneMB, libra.ToMbps(flow.Stats.AvgThroughput()),
		flow.Stats.AvgRTT().Round(time.Millisecond), eta, fileMB)
}

func main() {
	fmt.Printf("bulk transfer of %.0f MB over a 60 Mbps / 60 ms / 0.3%%-loss path\n\n", fileMB)
	// Offline-train the RL component briefly (the paper trains its PPO
	// agent offline before deployment; a few seconds suffice here).
	fmt.Println("training Libra's RL component (~40 episodes)...")
	trained := libra.TrainLibraAgent(1, 40, 8*time.Second)
	fmt.Println()
	run("libra (Th-2)", func() libra.Controller {
		return libra.New(libra.WithCubic(), libra.WithSeed(1), trained,
			libra.WithUtility(libra.ThroughputOriented(2)))
	})
	run("libra (default)", func() libra.Controller {
		return libra.New(libra.WithCubic(), libra.WithSeed(1), trained)
	})
	run("cubic", func() libra.Controller { return libra.Baseline("cubic", 1) })
	fmt.Println("\nThe throughput-oriented utility trades queueing delay for rate;")
	fmt.Println("under stochastic loss Libra also dodges CUBIC's spurious backoffs.")
}
