// Quickstart: run one Libra (C-Libra) flow over a step-changing link —
// the paper's Fig. 2(a) scenario — and watch it track the capacity.
package main

import (
	"fmt"
	"time"

	"libra"
)

func main() {
	const dur = 40 * time.Second

	// The step scenario: capacity changes every 10 seconds.
	capacity := libra.StepMbps(10*time.Second, 20, 5, 15, 10)

	net := libra.NewNetwork(libra.NetworkConfig{
		Capacity:     capacity,
		MinRTT:       80 * time.Millisecond,
		BufferBytes:  150_000,
		Seed:         1,
		RecordSeries: true,
		SeriesBucket: time.Second,
	})

	sender := libra.New(libra.WithCubic(), libra.WithSeed(2), libra.WithCycleLog())
	flow := net.AddFlow(sender, 0, 0)
	net.Run(dur)

	fmt.Println("t(s)  capacity  libra(Mbps)")
	for t := 0; t < int(dur/time.Second); t += 2 {
		at := time.Duration(t) * time.Second
		fmt.Printf("%-5d %-9.1f %.1f\n", t,
			libra.ToMbps(capacity.RateAt(at)),
			libra.ToMbps(flow.Stats.Throughput.Rate(t)))
	}

	tel := sender.Telemetry()
	fmt.Printf("\navg throughput: %.1f Mbps, avg RTT: %v, loss: %.2f%%\n",
		libra.ToMbps(flow.Stats.AvgThroughput()),
		flow.Stats.AvgRTT().Round(time.Millisecond),
		flow.Stats.LossRate()*100)
	fmt.Printf("control cycles: %d (x_prev won %.0f%%, x_cl %.0f%%, x_rl %.0f%%)\n",
		tel.Cycles, tel.Fraction(0)*100, tel.Fraction(1)*100, tel.Fraction(2)*100)
}
