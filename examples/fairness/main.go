// Fairness: three Libra flows enter a shared 48 Mbps bottleneck five
// seconds apart (the paper's Fig. 15 setup) and converge to an even
// split — the convergence/fairness property of Theorem 4.1.
package main

import (
	"fmt"
	"time"

	"libra"
)

func main() {
	const dur = 45 * time.Second
	net := libra.NewNetwork(libra.NetworkConfig{
		Capacity:     libra.ConstantMbps(48),
		MinRTT:       100 * time.Millisecond,
		BufferBytes:  600_000, // 1 BDP
		Seed:         2,
		RecordSeries: true,
		SeriesBucket: time.Second,
	})

	fmt.Println("training Libra's RL component (~60 episodes)...")
	trained := libra.TrainLibraAgent(4, 60, 8*time.Second)

	var flows []*libra.Flow
	for i := 0; i < 3; i++ {
		s := libra.New(libra.WithCubic(), libra.WithSeed(int64(10+i)), trained)
		flows = append(flows, net.AddFlow(s, time.Duration(i)*5*time.Second, 0))
	}
	net.Run(dur)

	fmt.Println("t(s)  flow1  flow2  flow3   (Mbps; flows enter at 0s, 5s, 10s)")
	for t := 0; t < int(dur/time.Second); t += 3 {
		fmt.Printf("%-5d", t)
		for _, f := range flows {
			fmt.Printf(" %6.1f", libra.ToMbps(f.Stats.Throughput.Rate(t)))
		}
		fmt.Println()
	}

	// Jain's fairness index over the window after all flows are up.
	var thr [3]float64
	for i, f := range flows {
		for t := 20; t < int(dur/time.Second); t++ {
			thr[i] += f.Stats.Throughput.Rate(t)
		}
	}
	sum := thr[0] + thr[1] + thr[2]
	sq := thr[0]*thr[0] + thr[1]*thr[1] + thr[2]*thr[2]
	jain := sum * sum / (3 * sq)
	fmt.Printf("\nJain's fairness index over t=20s..%ds: %.3f (1.0 = perfectly fair)\n",
		int(dur/time.Second), jain)
}
