// Package libra is the public API of this repository: a from-scratch Go
// reproduction of "A Unified Congestion Control Framework for Diverse
// Application Preferences and Network Conditions" (CoNEXT 2021).
//
// Libra combines a classic congestion-control algorithm (CUBIC or BBR)
// with a PPO-trained reinforcement-learning agent under a three-stage
// utility-driven control cycle: explore the network with the classic
// CCA while the RL agent proposes a backup rate, evaluate both
// candidate rates (lower first), then exploit the previous winner while
// the evaluation feedback drains back, and finally adopt the candidate
// with the highest utility.
//
// Quick start:
//
//	sender := libra.New(libra.WithCubic())
//	net := libra.NewNetwork(libra.NetworkConfig{
//	    Capacity: libra.ConstantMbps(48),
//	    MinRTT:   40 * time.Millisecond,
//	})
//	flow := net.AddFlow(sender, 0, 0)
//	net.Run(30 * time.Second)
//	fmt.Println(flow.Stats.AvgThroughput())
//
// The package also exposes every baseline CCA the paper compares
// against (Controller), the trace generators behind its workloads, and
// the experiment registry that regenerates each of its tables and
// figures (Experiments / RunExperiment).
package libra

import (
	"time"

	"libra/internal/cc"
	"libra/internal/core"
	"libra/internal/exp"
	"libra/internal/netem"
	"libra/internal/rlcc"
	"libra/internal/trace"
	"libra/internal/utility"
)

// Sender is a Libra congestion controller (the paper's Alg. 1).
type Sender = core.Libra

// Controller is the interface every congestion-control algorithm in
// this repository implements.
type Controller = cc.Controller

// Utility scores a monitor interval; it encodes the application
// preference (Eq. 1).
type Utility = utility.Func

// Option customises a Libra sender.
type Option func(*core.Config)

// WithCubic selects CUBIC as the classic component (C-Libra, default).
func WithCubic() Option {
	return func(c *core.Config) {
		c.Classic = core.NewCubicAdapter(c.CC)
		c.Name = "c-libra"
	}
}

// WithBBR selects BBR as the classic component (B-Libra).
func WithBBR() Option {
	return func(c *core.Config) {
		c.Classic = core.NewBBRAdapter(c.CC)
		c.Name = "b-libra"
	}
}

// WithUtility installs a custom utility function.
func WithUtility(u Utility) Option {
	return func(c *core.Config) { c.Util = u }
}

// WithSeed seeds the sender's stochastic components.
func WithSeed(seed int64) Option {
	return func(c *core.Config) { c.CC.Seed = seed }
}

// WithCycleLog enables per-control-cycle telemetry (Sender.CycleLog).
func WithCycleLog() Option {
	return func(c *core.Config) { c.RecordCycles = true }
}

// New builds a Libra sender. With no options it is C-Libra with the
// paper's default parameters (th1 = 0.3x, EI = 0.5 RTT, Eq. 1 utility
// with t=0.9, alpha=1, beta=900, gamma=11.35).
func New(opts ...Option) *Sender {
	cfg := core.Config{CC: cc.Config{}.WithDefaults()}
	for _, o := range opts {
		o(&cfg)
	}
	return core.New(cfg)
}

// Preference utilities (Sec. 5.2). Level 1 doubles and level 2 triples
// the corresponding weight relative to the default.

// DefaultUtility returns the paper's Eq. 1 with default weights.
func DefaultUtility() Utility { return utility.Default() }

// ThroughputOriented returns the Th-1 (level 1) or Th-2 (level 2)
// preference.
func ThroughputOriented(level int) Utility {
	if level >= 2 {
		return utility.Throughput2()
	}
	return utility.Throughput1()
}

// LatencyOriented returns the La-1 (level 1) or La-2 (level 2)
// preference.
func LatencyOriented(level int) Utility {
	if level >= 2 {
		return utility.Latency2()
	}
	return utility.Latency1()
}

// NetworkConfig describes an emulated single-bottleneck path — the
// two-node/one-link degenerate case of netem's multi-hop Topology.
type NetworkConfig = netem.Config

// Network is the packet-level network emulation.
type Network = netem.Network

// Flow is one sender attached to a Network.
type Flow = netem.Flow

// NewNetwork builds an emulated network.
func NewNetwork(cfg NetworkConfig) *Network { return netem.New(cfg) }

// Trace is a time-varying capacity model.
type Trace = trace.Trace

// ConstantMbps returns a fixed-capacity trace.
func ConstantMbps(mbps float64) Trace { return trace.Constant(trace.Mbps(mbps)) }

// StepMbps returns a trace cycling through the levels, holding each for
// period (the paper's step scenario).
func StepMbps(period time.Duration, levelsMbps ...float64) Trace {
	levels := make([]float64, len(levelsMbps))
	for i, m := range levelsMbps {
		levels[i] = trace.Mbps(m)
	}
	return &trace.Step{Period: period, Levels: levels}
}

// LTE returns a synthetic cellular trace. Scenario is "stationary",
// "walking", or "driving".
func LTE(scenario string, d time.Duration, seed int64) Trace {
	sc := trace.LTEStationary
	switch scenario {
	case "walking":
		sc = trace.LTEWalking
	case "driving":
		sc = trace.LTEDriving
	}
	return trace.NewLTE(sc, d, seed)
}

// Mbps converts megabits/second to the bytes/second unit used
// throughout the API; ToMbps converts back.
func Mbps(v float64) float64   { return trace.Mbps(v) }
func ToMbps(v float64) float64 { return trace.ToMbps(v) }

// Baseline constructs one of the comparison CCAs by name: cubic, bbr,
// reno, vegas, copa, sprout, vivace, proteus, remy, indigo, aurora,
// orca, mod-rl, westwood, illinois, dctcp, or the Libra variants
// c-libra, b-libra, cl-libra, w-libra, i-libra, d-libra (see
// Baselines for the authoritative list). Unknown names return nil.
func Baseline(name string, seed int64) Controller {
	mk, err := exp.MakerFor(name, nil, nil)
	if err != nil {
		return nil
	}
	return mk(seed)
}

// Baselines lists the available comparison CCAs.
func Baselines() []string { return append([]string(nil), exp.CCASet...) }

// TrainLibraAgent trains the RL component on randomized emulated
// networks (the paper's offline training step) and returns a sender
// option installing it.
func TrainLibraAgent(seed int64, episodes int, episodeLen time.Duration) Option {
	res := rlcc.Train(rlcc.TrainConfig{
		Episodes:   episodes,
		EpisodeLen: episodeLen,
		Ctrl:       rlcc.LibraRLConfig(cc.Config{Seed: seed}),
		Seed:       seed,
	})
	return func(c *core.Config) {
		rlCfg := rlcc.LibraRLConfig(c.CC)
		rlCfg.Agent = res.Agent
		rlCfg.Norm = res.Norm
		c.RL = rlcc.New("libra-rl", rlCfg)
	}
}

// Experiment is one reproducible paper artifact (a table or figure).
type Experiment = exp.Experiment

// Experiments lists every registered paper experiment.
func Experiments() []Experiment { return exp.All() }

// RunExperiment regenerates one paper table/figure and returns its
// textual report. Quick mode shrinks durations for CI-scale runs.
func RunExperiment(id string, quick bool, seed int64) (string, bool) {
	e, ok := exp.Get(id)
	if !ok {
		return "", false
	}
	rc := exp.NewRunContext(seed)
	rc.Quick = quick
	return e.Run(rc).String(), true
}
