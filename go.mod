module libra

go 1.22
