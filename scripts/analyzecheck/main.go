// Command analyzecheck is the CI gate for the trace→analytics
// pipeline: it reads a `libra-trace analyze -json` report on stdin
// and exits non-zero unless the report parses, carries events, and
// covers flows 0..n-1 with every flow completing control cycles.
//
// Usage (see scripts/check.sh and `make analyze`):
//
//	libra-sim -cca c-libra,c-libra -dur 5s -trace-out ev.jsonl
//	libra-trace analyze -json ev.jsonl | go run ./scripts/analyzecheck -flows 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"libra/internal/analyze"
)

func main() {
	flows := flag.Int("flows", 2, "number of flows the report must cover (ids 0..n-1)")
	flag.Parse()

	var rep analyze.Report
	dec := json.NewDecoder(os.Stdin)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		fatal(fmt.Errorf("report does not parse: %w", err))
	}
	if rep.Events == 0 {
		fatal(fmt.Errorf("report carries no events"))
	}
	if len(rep.Flows) != *flows {
		fatal(fmt.Errorf("report covers %d flows, want %d", len(rep.Flows), *flows))
	}
	for i, f := range rep.Flows {
		if f.ID != i {
			fatal(fmt.Errorf("flow at index %d has id %d, want contiguous ids 0..%d", i, f.ID, *flows-1))
		}
		if f.Cycles == 0 || f.Decided == 0 {
			fatal(fmt.Errorf("flow %d completed no control cycles (cycles=%d decided=%d)", f.ID, f.Cycles, f.Decided))
		}
		if f.RateMbps.N == 0 {
			fatal(fmt.Errorf("flow %d has no rate samples", f.ID))
		}
	}
	fmt.Printf("analyzecheck: ok — %d events, %d flows, all with completed cycles\n", rep.Events, len(rep.Flows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyzecheck:", err)
	os.Exit(1)
}
