#!/bin/sh
# Full pre-merge gate: vet, build, race-detector test sweep, and the
# no-op tracer overhead budget (<2 ns/op, 0 allocs/op). Equivalent to
# `make check` for environments without make.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
# Fault-injection paths again under the race detector with full (non
# -short) sweeps, then a short fuzz pass over the two external-input
# parsers (the Mahimahi trace reader and the FaultPlan JSON decoder).
go test -race -count=1 ./internal/netem/faults/ ./internal/integration/
# The parallel sweep paths (worker pool, per-job contexts, registry
# merge) once more under the race detector, then the timed serial-vs-
# parallel suite, recorded into BENCH_sweep.json for the perf trajectory.
go test -race -count=1 ./internal/exp/ ./internal/sweep/
BENCH_SWEEP=1 go test ./internal/exp/ -run TestBenchSweep -count=1 -v
go test -run=NONE -fuzz=FuzzParseMahimahi -fuzztime=10s ./internal/trace/
go test -run=NONE -fuzz=FuzzParsePlan -fuzztime=10s ./internal/netem/faults/
go test -run=NONE -fuzz=FuzzPlanMutate -fuzztime=10s ./internal/netem/faults/
go test -run=NONE -fuzz=FuzzParseTopo -fuzztime=10s ./internal/exp/
TELEMETRY_BENCH_GUARD=1 go test ./internal/telemetry/ -run TestNopTracerBudget -count=1 -v
ANALYZE_BENCH_GUARD=1 go test ./internal/analyze/ -run TestFeedBudget -count=1 -v
# Event-engine hot path: 0 allocs/event + ns/event budget on the pooled
# callback path, then record engine events/sec and netem packets/sec
# into BENCH_core.json for the perf trajectory (baseline preserved).
CORE_BENCH_GUARD=1 go test ./internal/sim/ -run TestEngineBudget -count=1 -v
CORE_BENCH=1 CORE_BENCH_GUARD=1 go test ./internal/netem/ -run TestBenchCore -count=1 -v
# Flight-recorder hot path: the always-on ring append must stay 0
# allocs and <= 50 ns/event; the measurement is recorded as the
# "flight" block of BENCH_core.json.
FLIGHT_BENCH_GUARD=1 go test ./internal/telemetry/ -run TestFlightEmitBudget -count=1 -v
# Time-series collector hot path: the per-event downsampling feed must
# stay 0 allocs in steady state and <= 50 ns/event; the measurement is
# recorded as the "timeseries" block of BENCH_core.json.
TIMESERIES_BENCH_GUARD=1 go test ./internal/telemetry/ -run TestTimeSeriesBudget -count=1 -v
# Agent-inference hot path: per-flow PPO.Act baseline vs the batched
# evaluation path (one actor GEMM per cohort + seeded noise) at batch
# 1/16/256, recorded into BENCH_nn.json with the >=4x inferences/sec
# floor at batch 256 and the zero-alloc invariant armed.
NN_BENCH=1 NN_BENCH_GUARD=1 go test ./internal/rl/ -run TestBenchNN -count=1 -v
# Multi-hop hot path: hop traversals/sec and allocs/packet over a
# 3-hop chain, recorded as the "topo" block of BENCH_core.json with
# the <1 alloc/packet bound and throughput floor armed.
TOPO_BENCH=1 TOPO_BENCH_GUARD=1 go test ./internal/netem/ -run TestBenchTopo -count=1 -v
# Trace→analytics smoke: record a short two-flow run with -trace-out,
# validate the stream against the event schema, pipe it through
# `libra-trace analyze -json`, and assert the report parses and covers
# every flow with completed control cycles.
tmp=$(mktemp -d)
go run ./cmd/libra-sim -cca c-libra,c-libra -capacity 24 -dur 5s -seed 7 -trace-out "$tmp/events.jsonl" >/dev/null
go run ./cmd/libra-trace -validate "$tmp/events.jsonl"
go run ./cmd/libra-trace analyze -json "$tmp/events.jsonl" | go run ./scripts/analyzecheck -flows 2
rm -rf "$tmp"
# Robustness-lab smoke (tiny budgets, 2 CCAs): adversarial search, a
# replay of the discovered spec with a forensic flight dump, and a
# deterministic tournament leaderboard. Then record the lab's
# scenarios/sec into BENCH_lab.json with the throughput floor armed.
tmp=$(mktemp -d)
go run ./cmd/libra-lab search -cca cubic -budget 16 -dur 3s -seed 7 -o "$tmp/worst.json" -flight-out "$tmp/dumps"
go run ./cmd/libra-lab replay -spec "$tmp/worst.json"
go run ./cmd/libra-lab tournament -cca cubic,bbr -budget 14 -dur 3s -seed 7
rm -rf "$tmp"
LAB_BENCH=1 LAB_BENCH_GUARD=1 go test ./internal/lab/ -run TestBenchLab -count=1 -v
