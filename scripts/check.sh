#!/bin/sh
# Full pre-merge gate: vet, build, race-detector test sweep, and the
# no-op tracer overhead budget (<2 ns/op, 0 allocs/op). Equivalent to
# `make check` for environments without make.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
TELEMETRY_BENCH_GUARD=1 go test ./internal/telemetry/ -run TestNopTracerBudget -count=1 -v
