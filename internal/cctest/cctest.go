// Package cctest provides shared harness helpers for exercising
// congestion controllers against the netem emulator in unit tests.
package cctest

import (
	"time"

	"libra/internal/cc"
	"libra/internal/netem"
	"libra/internal/trace"
)

// Scenario describes a single-bottleneck test run.
type Scenario struct {
	Capacity trace.Trace
	MinRTT   time.Duration
	Buffer   int
	Loss     float64
	Duration time.Duration
	Seed     int64
}

// Defaults fills zero fields with a standard 48 Mbps / 40 ms / 1 BDP /
// 30 s configuration.
func (s Scenario) Defaults() Scenario {
	if s.Capacity == nil {
		s.Capacity = trace.Constant(trace.Mbps(48))
	}
	if s.MinRTT == 0 {
		s.MinRTT = 40 * time.Millisecond
	}
	if s.Buffer == 0 {
		s.Buffer = int(trace.MeanRate(s.Capacity, time.Second, 10*time.Millisecond) * s.MinRTT.Seconds())
		if s.Buffer < 30000 {
			s.Buffer = 30000
		}
	}
	if s.Duration == 0 {
		s.Duration = 30 * time.Second
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Result summarises one flow's run.
type Result struct {
	Utilization float64
	Throughput  float64 // bytes/sec
	AvgRTT      time.Duration
	MinRTT      time.Duration
	LossRate    float64
	Flow        *netem.Flow
	Net         *netem.Network
}

// RunSingle drives one controller over the scenario and returns its
// aggregate result.
func RunSingle(s Scenario, ctrl cc.Controller) Result {
	s = s.Defaults()
	n := netem.New(netem.Config{
		Capacity:    s.Capacity,
		MinRTT:      s.MinRTT,
		BufferBytes: s.Buffer,
		LossRate:    s.Loss,
		Seed:        s.Seed,
	})
	f := n.AddFlow(ctrl, 0, 0)
	n.Run(s.Duration)
	return Result{
		Utilization: n.Utilization(s.Duration),
		Throughput:  f.Stats.AvgThroughput(),
		AvgRTT:      f.Stats.AvgRTT(),
		MinRTT:      f.Stats.MinRTT,
		LossRate:    f.Stats.LossRate(),
		Flow:        f,
		Net:         n,
	}
}

// RunPair drives two controllers sharing the bottleneck, the second
// starting at stagger, and returns both results.
func RunPair(s Scenario, a, b cc.Controller, stagger time.Duration) (Result, Result) {
	s = s.Defaults()
	n := netem.New(netem.Config{
		Capacity:    s.Capacity,
		MinRTT:      s.MinRTT,
		BufferBytes: s.Buffer,
		LossRate:    s.Loss,
		Seed:        s.Seed,
	})
	fa := n.AddFlow(a, 0, 0)
	fb := n.AddFlow(b, stagger, 0)
	n.Run(s.Duration)
	ra := Result{Throughput: fa.Stats.AvgThroughput(), AvgRTT: fa.Stats.AvgRTT(), LossRate: fa.Stats.LossRate(), Flow: fa, Net: n}
	rb := Result{Throughput: fb.Stats.AvgThroughput(), AvgRTT: fb.Stats.AvgRTT(), LossRate: fb.Stats.LossRate(), Flow: fb, Net: n}
	ra.Utilization = n.Utilization(s.Duration)
	rb.Utilization = ra.Utilization
	return ra, rb
}
