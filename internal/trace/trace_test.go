package trace

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMbpsRoundTrip(t *testing.T) {
	if got := Mbps(48); got != 6e6 {
		t.Fatalf("Mbps(48)=%v, want 6e6 bytes/sec", got)
	}
	if got := ToMbps(Mbps(12.5)); math.Abs(got-12.5) > 1e-9 {
		t.Fatalf("round trip: %v", got)
	}
}

func TestConstant(t *testing.T) {
	c := Constant(Mbps(24))
	for _, at := range []time.Duration{0, time.Second, time.Hour} {
		if c.RateAt(at) != Mbps(24) {
			t.Fatalf("constant rate changed at %v", at)
		}
	}
	if c.Duration() != 0 {
		t.Fatal("constant trace should report zero duration")
	}
}

func TestStepCyclesLevels(t *testing.T) {
	s := &Step{Period: 10 * time.Second, Levels: []float64{Mbps(5), Mbps(20), Mbps(10)}}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, Mbps(5)},
		{9 * time.Second, Mbps(5)},
		{10 * time.Second, Mbps(20)},
		{25 * time.Second, Mbps(10)},
		{30 * time.Second, Mbps(5)}, // wrapped
	}
	for _, c := range cases {
		if got := s.RateAt(c.at); got != c.want {
			t.Errorf("step at %v = %v, want %v", c.at, ToMbps(got), ToMbps(c.want))
		}
	}
	if s.Duration() != 30*time.Second {
		t.Fatalf("step duration %v", s.Duration())
	}
}

func TestStepEmpty(t *testing.T) {
	s := &Step{}
	if s.RateAt(time.Second) != 0 || s.Duration() != 0 {
		t.Fatal("empty step trace should be zero")
	}
}

func TestPiecewiseLookup(t *testing.T) {
	p := &Piecewise{
		Points: []Point{{0, Mbps(10)}, {5 * time.Second, Mbps(30)}, {8 * time.Second, Mbps(20)}},
		End:    10 * time.Second,
	}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, Mbps(10)},
		{4 * time.Second, Mbps(10)},
		{5 * time.Second, Mbps(30)},
		{7 * time.Second, Mbps(30)},
		{9 * time.Second, Mbps(20)},
		{11 * time.Second, Mbps(10)}, // looped
	}
	for _, c := range cases {
		if got := p.RateAt(c.at); got != c.want {
			t.Errorf("piecewise at %v = %v, want %v", c.at, ToMbps(got), ToMbps(c.want))
		}
	}
}

// Property: piecewise binary-search lookup agrees with a linear scan.
func TestQuickPiecewiseMatchesLinearScan(t *testing.T) {
	f := func(raw []uint8, probe uint16) bool {
		if len(raw) == 0 {
			return true
		}
		p := &Piecewise{}
		at := time.Duration(0)
		for i, r := range raw {
			at += time.Duration(r) * time.Millisecond
			p.Points = append(p.Points, Point{At: at, Rate: float64(i + 1)})
		}
		tprobe := time.Duration(probe) * time.Millisecond
		// Linear scan reference.
		want := p.Points[0].Rate
		for _, pt := range p.Points {
			if pt.At <= tprobe {
				want = pt.Rate
			}
		}
		return p.RateAt(tprobe) == want
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestLTETraceProperties(t *testing.T) {
	for _, sc := range []LTEScenario{LTEStationary, LTEWalking, LTEDriving} {
		tr := NewLTE(sc, 60*time.Second, 1)
		if tr.Duration() != 60*time.Second {
			t.Fatalf("%v duration %v", sc, tr.Duration())
		}
		for i, r := range tr.Rates {
			if r < 0 || r > Mbps(40) {
				t.Fatalf("%v sample %d out of [0,40Mbps]: %v", sc, i, ToMbps(r))
			}
		}
		if m := ToMbps(tr.Mean()); m < 2 || m > 35 {
			t.Fatalf("%v mean %.1fMbps outside plausible range", sc, m)
		}
	}
}

func TestLTEVolatilityOrdering(t *testing.T) {
	vol := func(sc LTEScenario) float64 {
		tr := NewLTE(sc, 120*time.Second, 3)
		mean := tr.Mean()
		var ss float64
		for _, r := range tr.Rates {
			d := r - mean
			ss += d * d
		}
		return math.Sqrt(ss/float64(len(tr.Rates))) / mean // coefficient of variation
	}
	s, w, d := vol(LTEStationary), vol(LTEWalking), vol(LTEDriving)
	if !(s < w && w < d) {
		t.Fatalf("volatility should increase stationary<walking<driving: %v %v %v", s, w, d)
	}
}

func TestLTEDeterministicBySeed(t *testing.T) {
	a := NewLTE(LTEDriving, 30*time.Second, 9)
	b := NewLTE(LTEDriving, 30*time.Second, 9)
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Fatal("same seed produced different trace")
		}
	}
	c := NewLTE(LTEDriving, 30*time.Second, 10)
	same := true
	for i := range a.Rates {
		if a.Rates[i] != c.Rates[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical trace")
	}
}

func TestDrivingTourRegimes(t *testing.T) {
	tr := NewDrivingTour(40*time.Second, 5)
	// Tunnel regime (45%..55% of tour) should be much slower than highway
	// (20%..45%).
	avg := func(lo, hi float64) float64 {
		n := len(tr.Rates)
		var sum float64
		cnt := 0
		for i := int(lo * float64(n)); i < int(hi*float64(n)); i++ {
			sum += tr.Rates[i]
			cnt++
		}
		return sum / float64(cnt)
	}
	if highway, tunnel := avg(0.25, 0.45), avg(0.47, 0.53); tunnel > highway/2 {
		t.Fatalf("tunnel (%v) not clearly slower than highway (%v)", ToMbps(tunnel), ToMbps(highway))
	}
}

func TestMeanRate(t *testing.T) {
	s := &Step{Period: time.Second, Levels: []float64{Mbps(10), Mbps(30)}}
	got := MeanRate(s, 2*time.Second, 10*time.Millisecond)
	if math.Abs(got-Mbps(20)) > Mbps(0.5) {
		t.Fatalf("mean rate %v, want ~20Mbps", ToMbps(got))
	}
}

func TestMahimahiRoundTrip(t *testing.T) {
	orig := &Step{Period: time.Second, Levels: []float64{Mbps(12), Mbps(24)}}
	var buf bytes.Buffer
	if err := WriteMahimahi(&buf, orig, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseMahimahi(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Mean rate should survive the round trip within quantisation error.
	if got, want := parsed.Mean(), Mbps(18); math.Abs(got-want) > Mbps(1.5) {
		t.Fatalf("round-trip mean %v, want ~18Mbps", ToMbps(got))
	}
}

func TestParseMahimahiErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":   "12\nxyz\n",
		"negative":  "-5\n",
		"empty":     "# only a comment\n\n",
		"wordsline": "12 13\n",
	}
	for name, in := range cases {
		if _, err := ParseMahimahi(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestParseMahimahiUnsorted(t *testing.T) {
	tr, err := ParseMahimahi(strings.NewReader("300\n100\n200\n100\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration() <= 0 {
		t.Fatal("parsed trace has no duration")
	}
}

func TestWriteMahimahiNeedsDuration(t *testing.T) {
	if err := WriteMahimahi(&bytes.Buffer{}, Constant(Mbps(10)), 0); err == nil {
		t.Fatal("expected error for time-invariant trace without duration")
	}
}

func TestSampledScale(t *testing.T) {
	s := &Sampled{Interval: time.Second, Rates: []float64{1, 2, 3}}
	d := s.Scale(2)
	if d.Rates[2] != 6 || s.Rates[2] != 3 {
		t.Fatal("scale should copy, not mutate")
	}
}

func TestParseStep(t *testing.T) {
	st, err := ParseStep("10,24,48")
	if err != nil {
		t.Fatal(err)
	}
	if st.Period != 10*time.Second || len(st.Levels) != 2 {
		t.Fatalf("parsed %+v", st)
	}
	if st.RateAt(15*time.Second) != Mbps(48) {
		t.Fatalf("second level not honoured: %v", st.RateAt(15*time.Second))
	}
	for _, bad := range []string{"", "10", "0,24", "-5,24", "10,-3", "x,24", "10,y"} {
		if _, err := ParseStep(bad); err == nil {
			t.Errorf("ParseStep(%q) accepted invalid input", bad)
		}
	}
}
