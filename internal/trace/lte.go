package trace

import (
	"math"
	"math/rand"
	"time"
)

// LTEScenario selects one of the synthetic cellular trace generators.
// The three scenarios mirror the paper's LTE#1..LTE#3 traces (stationary,
// walking, driving) collected by Pantheon and DeepCC. We substitute
// seeded stochastic processes whose mean, variance, and fade behaviour
// match the published TMobile LTE ranges (0..40 Mbps): capacity follows a
// mean-reverting (Ornstein-Uhlenbeck-like) process with scenario-specific
// volatility plus occasional deep fades for the mobile scenarios.
type LTEScenario int

// Scenario constants, ordered by increasing channel volatility.
const (
	LTEStationary LTEScenario = iota
	LTEWalking
	LTEDriving
)

// String names the scenario for experiment logs.
func (s LTEScenario) String() string {
	switch s {
	case LTEStationary:
		return "lte-stationary"
	case LTEWalking:
		return "lte-walking"
	case LTEDriving:
		return "lte-driving"
	}
	return "lte-unknown"
}

type lteParams struct {
	meanMbps  float64 // long-run mean
	reversion float64 // pull towards mean per step (0..1)
	volMbps   float64 // per-step Gaussian volatility
	fadeProb  float64 // probability per step of entering a deep fade
	fadeMbps  float64 // capacity during a fade
	fadeSteps int     // fade length in steps
	maxMbps   float64
}

func (s LTEScenario) params() lteParams {
	switch s {
	case LTEStationary:
		return lteParams{meanMbps: 24, reversion: 0.08, volMbps: 1.2, fadeProb: 0, fadeMbps: 0, fadeSteps: 0, maxMbps: 40}
	case LTEWalking:
		return lteParams{meanMbps: 18, reversion: 0.10, volMbps: 2.5, fadeProb: 0.004, fadeMbps: 3, fadeSteps: 8, maxMbps: 40}
	default: // LTEDriving
		return lteParams{meanMbps: 14, reversion: 0.14, volMbps: 4.5, fadeProb: 0.012, fadeMbps: 1, fadeSteps: 12, maxMbps: 40}
	}
}

// NewLTE generates a synthetic LTE capacity trace for the scenario,
// sampled every 100 ms for the given duration, using the given seed.
func NewLTE(s LTEScenario, d time.Duration, seed int64) *Sampled {
	const step = 100 * time.Millisecond
	p := s.params()
	rng := rand.New(rand.NewSource(seed))
	n := int(d / step)
	if n < 1 {
		n = 1
	}
	rates := make([]float64, n)
	cur := p.meanMbps
	fade := 0
	for i := 0; i < n; i++ {
		if fade > 0 {
			fade--
			rates[i] = Mbps(p.fadeMbps)
			continue
		}
		if p.fadeProb > 0 && rng.Float64() < p.fadeProb {
			fade = p.fadeSteps
			rates[i] = Mbps(p.fadeMbps)
			continue
		}
		cur += p.reversion*(p.meanMbps-cur) + rng.NormFloat64()*p.volMbps
		cur = math.Max(0.5, math.Min(p.maxMbps, cur))
		rates[i] = Mbps(cur)
	}
	return &Sampled{Interval: step, Rates: rates}
}

// NewDrivingTour generates the user-movement trace of Fig. 8: a driving
// LTE channel whose mean capacity ramps through distinct regimes (urban,
// highway, tunnel fade, suburban), so that capacity-tracking behaviour is
// visible in a short run.
func NewDrivingTour(d time.Duration, seed int64) *Sampled {
	const step = 100 * time.Millisecond
	rng := rand.New(rand.NewSource(seed))
	n := int(d / step)
	if n < 1 {
		n = 1
	}
	rates := make([]float64, n)
	// Regime means as a fraction of the tour.
	regime := func(frac float64) float64 {
		switch {
		case frac < 0.2:
			return 10 // urban
		case frac < 0.45:
			return 28 // highway
		case frac < 0.55:
			return 2 // tunnel
		case frac < 0.8:
			return 20 // suburban
		default:
			return 8 // arrival
		}
	}
	cur := regime(0)
	for i := 0; i < n; i++ {
		mean := regime(float64(i) / float64(n))
		cur += 0.25*(mean-cur) + rng.NormFloat64()*1.5
		cur = math.Max(0.5, math.Min(40, cur))
		rates[i] = Mbps(cur)
	}
	return &Sampled{Interval: step, Rates: rates}
}
