package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseMahimahi checks the trace parser never panics or allocates
// unboundedly on arbitrary input, and that accepted traces are sane.
func FuzzParseMahimahi(f *testing.F) {
	f.Add("0\n1\n2\n3\n")
	f.Add("# comment\n\n100\n100\n100\n250\n")
	f.Add("5\n5\n5\n5\n5\n5\n5\n5\n")
	f.Add("1000\n0\n500\n")         // unsorted
	f.Add("-1\n")                   // negative timestamp
	f.Add("86400001\n")             // beyond the horizon
	f.Add("12abc\n")                // malformed integer
	f.Add("9223372036854775807\n")  // would overflow the bin array
	f.Add("")                       // empty trace
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ParseMahimahi(strings.NewReader(in))
		if err != nil {
			return
		}
		if tr.Interval <= 0 || len(tr.Rates) == 0 {
			t.Fatalf("accepted trace is degenerate: %+v", tr)
		}
		for i, r := range tr.Rates {
			if r < 0 {
				t.Fatalf("negative rate %v at bin %d", r, i)
			}
		}
		// Short accepted traces must survive a write/parse round trip
		// (long ones are skipped only to keep fuzz iterations fast).
		if len(tr.Rates) <= 100 {
			var buf bytes.Buffer
			if err := WriteMahimahi(&buf, tr, tr.Duration()); err != nil {
				t.Fatalf("round-trip write: %v", err)
			}
		}
	})
}
