package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// mahimahiMTU is the packet size one Mahimahi delivery opportunity
// represents (one full-size Ethernet frame).
const mahimahiMTU = 1500

// maxTraceMs bounds the horizon a Mahimahi trace may cover (24 simulated
// hours). A single absurd timestamp would otherwise size the bin array
// from attacker-controlled input.
const maxTraceMs = 24 * 60 * 60 * 1000

// ParseMahimahi reads a Mahimahi link trace: one integer per line, each
// the millisecond timestamp of a delivery opportunity for one 1500-byte
// packet. The result is a Sampled trace binned at 100 ms granularity.
// Blank lines and lines starting with '#' are ignored.
func ParseMahimahi(r io.Reader) (*Sampled, error) {
	sc := bufio.NewScanner(r)
	var stamps []int64
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		ms, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("mahimahi trace line %d: %w", line, err)
		}
		if ms < 0 {
			return nil, fmt.Errorf("mahimahi trace line %d: negative timestamp %d", line, ms)
		}
		if ms > maxTraceMs {
			return nil, fmt.Errorf("mahimahi trace line %d: timestamp %d ms beyond the %d ms horizon", line, ms, int64(maxTraceMs))
		}
		stamps = append(stamps, ms)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(stamps) == 0 {
		return nil, fmt.Errorf("mahimahi trace: no delivery opportunities")
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i] < stamps[j] })

	const binMs = 100
	last := stamps[len(stamps)-1]
	nBins := int(last/binMs) + 1
	counts := make([]int, nBins)
	for _, ms := range stamps {
		counts[int(ms/binMs)]++
	}
	rates := make([]float64, nBins)
	for i, c := range counts {
		rates[i] = float64(c*mahimahiMTU) / (float64(binMs) / 1000)
	}
	return &Sampled{Interval: binMs * time.Millisecond, Rates: rates}, nil
}

// WriteMahimahi emits one period of tr in Mahimahi link-trace format at
// millisecond granularity. For time-invariant traces, d controls the
// emitted length; for periodic traces d defaults to one period when zero.
func WriteMahimahi(w io.Writer, tr Trace, d time.Duration) error {
	if d <= 0 {
		d = tr.Duration()
		if d <= 0 {
			return fmt.Errorf("mahimahi: duration required for time-invariant trace")
		}
	}
	bw := bufio.NewWriter(w)
	// Accumulate fractional delivery opportunities per millisecond.
	var credit float64
	for ms := int64(0); ms < int64(d/time.Millisecond); ms++ {
		rate := tr.RateAt(time.Duration(ms) * time.Millisecond)
		credit += rate / 1000 / mahimahiMTU
		for credit >= 1 {
			credit--
			if _, err := fmt.Fprintln(bw, ms); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
