// Package trace models time-varying bottleneck capacity.
//
// A Trace maps virtual time to the instantaneous capacity of a link in
// bytes per second. Traces are the workload generators behind every
// experiment in the paper: constant wired links, the step scenario of
// Fig. 2(a), and the synthetic LTE traces standing in for the Pantheon /
// DeepCC cellular measurements (see DESIGN.md for the substitution note).
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Trace reports link capacity over virtual time.
type Trace interface {
	// RateAt returns the capacity in bytes per second at time t. Traces of
	// finite length loop: RateAt(t) == RateAt(t mod Duration()).
	RateAt(t time.Duration) float64
	// Duration returns the length of one period of the trace, or 0 if the
	// trace is time-invariant.
	Duration() time.Duration
}

// Mbps converts megabits per second to bytes per second.
func Mbps(v float64) float64 { return v * 1e6 / 8 }

// ToMbps converts bytes per second to megabits per second.
func ToMbps(v float64) float64 { return v * 8 / 1e6 }

// Constant is a fixed-capacity trace.
type Constant float64

// RateAt implements Trace.
func (c Constant) RateAt(time.Duration) float64 { return float64(c) }

// Duration implements Trace.
func (c Constant) Duration() time.Duration { return 0 }

// String describes the trace for experiment logs.
func (c Constant) String() string { return fmt.Sprintf("const %.1fMbps", ToMbps(float64(c))) }

// Step cycles through Levels, holding each for Period. It reproduces the
// paper's step-scenario whose available capacity changes every 10 seconds.
type Step struct {
	Period time.Duration
	Levels []float64 // bytes/sec
}

// RateAt implements Trace.
func (s *Step) RateAt(t time.Duration) float64 {
	if len(s.Levels) == 0 || s.Period <= 0 {
		return 0
	}
	i := int(t/s.Period) % len(s.Levels)
	if i < 0 {
		i = 0
	}
	return s.Levels[i]
}

// Duration implements Trace.
func (s *Step) Duration() time.Duration {
	return s.Period * time.Duration(len(s.Levels))
}

// ParseStep builds a Step trace from the CLI payload
// "periodSec,MbpsL1,MbpsL2,...". Both libra-sim (-trace step:...) and
// libra-trace (-gen step:...) accept this form.
func ParseStep(payload string) (*Step, error) {
	fields := strings.Split(payload, ",")
	if len(fields) < 2 {
		return nil, fmt.Errorf("step trace needs periodSec,L1,L2,...")
	}
	var period float64
	if _, err := fmt.Sscanf(fields[0], "%g", &period); err != nil {
		return nil, fmt.Errorf("bad step period %q", fields[0])
	}
	if period <= 0 {
		return nil, fmt.Errorf("step period must be positive, got %g", period)
	}
	levels := make([]float64, 0, len(fields)-1)
	for _, f := range fields[1:] {
		var m float64
		if _, err := fmt.Sscanf(f, "%g", &m); err != nil {
			return nil, fmt.Errorf("bad step level %q", f)
		}
		if m < 0 {
			return nil, fmt.Errorf("step level must be non-negative, got %g", m)
		}
		levels = append(levels, Mbps(m))
	}
	return &Step{Period: time.Duration(period * float64(time.Second)), Levels: levels}, nil
}

// Piecewise holds capacity constant between breakpoints. Points must be
// sorted by time; the rate before the first point is the first point's
// rate. The trace loops after End.
type Piecewise struct {
	Points []Point
	End    time.Duration
}

// Point is one breakpoint of a piecewise-constant trace.
type Point struct {
	At   time.Duration
	Rate float64 // bytes/sec
}

// RateAt implements Trace.
func (p *Piecewise) RateAt(t time.Duration) float64 {
	if len(p.Points) == 0 {
		return 0
	}
	if p.End > 0 {
		t %= p.End
	}
	// Binary search for the last point at or before t.
	lo, hi := 0, len(p.Points)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.Points[mid].At <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return p.Points[0].Rate
	}
	return p.Points[lo-1].Rate
}

// Duration implements Trace.
func (p *Piecewise) Duration() time.Duration { return p.End }

// Sampled holds capacity samples at a fixed interval, interpreted as a
// step function. It is the representation used by the synthetic LTE
// generators and by Mahimahi-format traces.
type Sampled struct {
	Interval time.Duration
	Rates    []float64 // bytes/sec, one per interval
}

// RateAt implements Trace.
func (s *Sampled) RateAt(t time.Duration) float64 {
	if len(s.Rates) == 0 || s.Interval <= 0 {
		return 0
	}
	i := int(t/s.Interval) % len(s.Rates)
	if i < 0 {
		i = 0
	}
	return s.Rates[i]
}

// Duration implements Trace.
func (s *Sampled) Duration() time.Duration {
	return s.Interval * time.Duration(len(s.Rates))
}

// Mean returns the average rate of one period in bytes/sec.
func (s *Sampled) Mean() float64 {
	if len(s.Rates) == 0 {
		return 0
	}
	var sum float64
	for _, r := range s.Rates {
		sum += r
	}
	return sum / float64(len(s.Rates))
}

// Scale returns a copy of the trace with every rate multiplied by k.
func (s *Sampled) Scale(k float64) *Sampled {
	out := &Sampled{Interval: s.Interval, Rates: make([]float64, len(s.Rates))}
	for i, r := range s.Rates {
		out.Rates[i] = r * k
	}
	return out
}

// MeanRate returns the average capacity of tr over [0, d] sampled at the
// given granularity. It is the denominator of every link-utilisation
// metric in the experiment harness.
func MeanRate(tr Trace, d, granularity time.Duration) float64 {
	if granularity <= 0 {
		granularity = 10 * time.Millisecond
	}
	var sum float64
	n := 0
	for t := time.Duration(0); t < d; t += granularity {
		sum += tr.RateAt(t)
		n++
	}
	if n == 0 {
		return tr.RateAt(0)
	}
	return sum / float64(n)
}
