// Package core implements Libra, the paper's primary contribution: a
// unified congestion-control framework combining a classic CCA with an
// RL-based CCA under a three-stage (exploration / evaluation /
// exploitation) utility-driven control cycle (Sec. 3-4, Alg. 1).
package core

import (
	"time"

	"libra/internal/cc"
	"libra/internal/cc/bbr"
	"libra/internal/cc/cubic"
)

// Classic adapts a classic CCA for integration into Libra's control
// cycle (Sec. 4.3): Libra must be able to re-centre the algorithm at
// the winning base rate each cycle and read its current rate decision,
// unifying window-based and rate-based schemes.
type Classic interface {
	cc.Controller
	// SeedRate re-centres the algorithm's operating point at rate
	// (bytes/sec) given the smoothed RTT.
	SeedRate(rate float64, srtt time.Duration, now time.Duration)
	// CurrentRate reports the algorithm's instantaneous rate decision
	// x_cl in bytes/sec.
	CurrentRate(srtt time.Duration) float64
	// StageRTTs returns the exploration and exploitation stage lengths
	// in estimated RTTs (CUBIC: 1 and 1; BBR: 3 and 3 — Sec. 4.3/5).
	StageRTTs() (explore, exploit int)
}

// CubicAdapter integrates CUBIC: a window-based scheme whose rate is
// cwnd/srtt. The exploration stage is one RTT.
type CubicAdapter struct {
	*cubic.Cubic
	srtt time.Duration
}

// NewCubicAdapter wraps a fresh CUBIC instance.
func NewCubicAdapter(cfg cc.Config) *CubicAdapter {
	return &CubicAdapter{Cubic: cubic.New(cfg)}
}

// OnAck tracks the smoothed RTT alongside CUBIC's own processing.
func (a *CubicAdapter) OnAck(ack *cc.Ack) {
	a.srtt = ack.SRTT
	a.Cubic.OnAck(ack)
}

// SeedRate implements Classic: cwnd = rate * srtt, resuming growth from
// the cubic plateau. Libra skips the call entirely when the classic
// candidate won the cycle, so CUBIC's epoch clock keeps advancing and
// probing accelerates naturally — the "almost no modifications"
// integration of Sec. 4.3.
func (a *CubicAdapter) SeedRate(rate float64, srtt, _ time.Duration) {
	if srtt <= 0 {
		srtt = 100 * time.Millisecond
	}
	a.Cubic.SetWindow(rate * srtt.Seconds())
}

// CurrentRate implements Classic: cwnd / srtt.
func (a *CubicAdapter) CurrentRate(srtt time.Duration) float64 {
	if srtt <= 0 {
		srtt = a.srtt
	}
	if srtt <= 0 {
		srtt = 100 * time.Millisecond
	}
	return a.Cubic.Window() / srtt.Seconds()
}

// StageRTTs implements Classic: one RTT each (Sec. 5 setup).
func (a *CubicAdapter) StageRTTs() (int, int) { return 1, 1 }

// WindowSetter is any window-based classic CCA that allows its
// congestion window to be overridden (Westwood, Illinois, ...).
type WindowSetter interface {
	cc.Controller
	SetWindow(bytes float64)
}

// WindowAdapter integrates an arbitrary window-based classic CCA into
// Libra: cwnd/srtt is the rate decision and seeding sets cwnd directly.
// This realises the paper's Sec. 7 claim that the CUBIC parameter
// settings "can be extended to a wide range of classic CCAs (e.g.,
// Westwood, Illinois)".
type WindowAdapter struct {
	WindowSetter
	srtt time.Duration
}

// NewWindowAdapter wraps a window-based classic CCA.
func NewWindowAdapter(c WindowSetter) *WindowAdapter {
	return &WindowAdapter{WindowSetter: c}
}

// OnAck tracks the smoothed RTT alongside the algorithm's own logic.
func (a *WindowAdapter) OnAck(ack *cc.Ack) {
	a.srtt = ack.SRTT
	a.WindowSetter.OnAck(ack)
}

// SeedRate implements Classic.
func (a *WindowAdapter) SeedRate(rate float64, srtt, _ time.Duration) {
	if srtt <= 0 {
		srtt = 100 * time.Millisecond
	}
	a.SetWindow(rate * srtt.Seconds())
}

// CurrentRate implements Classic.
func (a *WindowAdapter) CurrentRate(srtt time.Duration) float64 {
	if srtt <= 0 {
		srtt = a.srtt
	}
	if srtt <= 0 {
		srtt = 100 * time.Millisecond
	}
	return a.Window() / srtt.Seconds()
}

// StageRTTs implements Classic: the CUBIC settings (1 RTT each).
func (a *WindowAdapter) StageRTTs() (int, int) { return 1, 1 }

// BBRAdapter integrates BBR: Libra inherits the first three RTTs of
// BBR's probing cycle (gains 1.25, 0.75, 1) as its exploration stage.
type BBRAdapter struct {
	*bbr.BBR
}

// NewBBRAdapter wraps a fresh BBR instance.
func NewBBRAdapter(cfg cc.Config) *BBRAdapter {
	return &BBRAdapter{BBR: bbr.New(cfg)}
}

// SeedRate implements Classic: re-centre BBR's bandwidth model and
// restart its probe cycle. Two exceptions keep BBR's own machinery
// intact: during STARTUP an upward seed is skipped so the exponential
// ramp (gain 2/ln2) survives Libra's first cycles, and seeds within
// [0.5x, 2x] of BBR's estimate are ignored so the windowed max-BW
// filter — the mechanism BBR uses to defend its share against
// loss-based competitors — is not truncated every control cycle.
func (a *BBRAdapter) SeedRate(rate float64, _, now time.Duration) {
	bw := a.BBR.BW()
	if a.BBR.State() == "STARTUP" && rate >= bw {
		return
	}
	if bw > 0 && rate > 0.5*bw && rate < 2*bw {
		return
	}
	a.BBR.SeedRate(rate, now)
}

// CurrentRate implements Classic: BBR's instantaneous pacing rate
// (gain-multiplied, so the th1=0.3 threshold covers the ±0.25 probing
// swing as the paper prescribes).
func (a *BBRAdapter) CurrentRate(time.Duration) float64 { return a.BBR.Rate() }

// StageRTTs implements Classic: 3 RTTs each (Sec. 5 setup).
func (a *BBRAdapter) StageRTTs() (int, int) { return 3, 3 }
