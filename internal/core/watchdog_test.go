package core

import (
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/rlcc"
)

// silentCycle ticks the controller (with zero ACKs) until one more
// control cycle completes, returning the clock it advanced to.
func silentCycle(t *testing.T, l *Libra, now time.Duration) time.Duration {
	t.Helper()
	start := l.Telemetry().Cycles
	for i := 0; i < 400 && l.Telemetry().Cycles == start; i++ {
		now += 50 * time.Millisecond
		l.OnTick(now)
	}
	if l.Telemetry().Cycles == start {
		t.Fatal("cycle never completed")
	}
	return now
}

func ack(now time.Duration) *cc.Ack {
	return &cc.Ack{Now: now, RTT: 40 * time.Millisecond, SRTT: 40 * time.Millisecond,
		MinRTT: 40 * time.Millisecond, Acked: 1500}
}

// TestNoAckExplorationKeepsPreviousXRl pins the paper's Sec. 3 rule:
// an exploration stage without any ACK leaves the RL candidate at its
// previous rate (the RL component repeats its decision without
// feedback).
func TestNoAckExplorationKeepsPreviousXRl(t *testing.T) {
	l := New(Config{CC: cc.Config{Seed: 21}})
	l.OnTick(0)
	prev := l.rl.Rate()
	now := time.Duration(0)
	for i := 0; i < 100 && l.Stage() == StageExplore; i++ {
		now += 10 * time.Millisecond
		l.OnTick(now)
	}
	if l.Stage() == StageExplore {
		t.Fatal("exploration never ended")
	}
	if l.xRl != prev {
		t.Fatalf("x_rl moved without feedback: %v -> %v", prev, l.xRl)
	}
}

// TestNoAckCycleReusesXPrev pins the other Sec. 3 rule: the first
// fully silent cycle repeats the base rate unchanged (the watchdog only
// escalates beyond it).
func TestNoAckCycleReusesXPrev(t *testing.T) {
	l := New(Config{CC: cc.Config{Seed: 22}, RecordCycles: true})
	l.OnTick(0)
	base := l.BaseRate()
	now := silentCycle(t, l, 0) // startup cycle: watchdog not yet armed
	silentCycle(t, l, now)      // first armed silent cycle
	if l.Telemetry().Skipped < 2 {
		t.Fatalf("silent cycles should be skipped, got %d", l.Telemetry().Skipped)
	}
	if l.BaseRate() != base {
		t.Fatalf("first silent cycles must keep x_prev: %v -> %v", base, l.BaseRate())
	}
	if l.Outage() {
		t.Fatal("outage must not latch after a single armed silent cycle")
	}
}

// TestWatchdogDecaysDuringOutage checks the escalation beyond the
// paper's rule: from the second consecutive silent cycle the base rate
// halves each cycle, floored at MinRate, and the outage flag latches.
func TestWatchdogDecaysDuringOutage(t *testing.T) {
	l := New(Config{CC: cc.Config{Seed: 23}})
	l.OnTick(0)
	base := l.BaseRate()
	now := silentCycle(t, l, 0) // startup (not armed)
	now = silentCycle(t, l, now) // noAckCycles=1: keep
	now = silentCycle(t, l, now) // noAckCycles=2: decay
	if !l.Outage() {
		t.Fatal("outage should latch after two armed silent cycles")
	}
	if got := l.BaseRate(); got > base/2+1 {
		t.Fatalf("base rate should have halved: %v -> %v", base, got)
	}
	// Decay must floor at MinRate, not collapse to zero.
	for i := 0; i < 40; i++ {
		now = silentCycle(t, l, now)
	}
	min := l.cfg.CC.MinRate
	if got := l.BaseRate(); got != min {
		t.Fatalf("decay floor: got %v want MinRate %v", got, min)
	}
}

// TestOutageRecoveryRestartsCycle checks clean re-entry: the first ACK
// after an outage clears the watchdog, discards stale baselines, and
// restarts the control cycle at the ACK instant.
func TestOutageRecoveryRestartsCycle(t *testing.T) {
	l := New(Config{CC: cc.Config{Seed: 24}, RecordCycles: true})
	l.OnTick(0)
	now := silentCycle(t, l, 0)
	now = silentCycle(t, l, now)
	now = silentCycle(t, l, now)
	if !l.Outage() {
		t.Fatal("outage should have latched")
	}
	l.baseGrad, l.baseLoss = 5, 0.05 // stale pre-outage baselines
	decayed := l.BaseRate()
	now += 20 * time.Millisecond
	l.OnAck(ack(now))
	if l.Outage() {
		t.Fatal("ACK must clear the outage")
	}
	if l.Stage() != StageExplore || l.cycleStart != now {
		t.Fatalf("recovery must restart the cycle at the ACK: stage %v start %v now %v",
			l.Stage(), l.cycleStart, now)
	}
	if l.baseGrad != 0 || l.baseLoss != 0 {
		t.Fatal("stale baselines must be discarded on recovery")
	}
	if l.BaseRate() != decayed {
		t.Fatalf("recovery must resume from the decayed base rate: %v -> %v", decayed, l.BaseRate())
	}
	if l.noAckCycles != 0 {
		t.Fatal("watchdog counter must reset on recovery")
	}
}

// TestPoisonedRLRateFallsBack checks the inference guard at the
// explore/eval boundary: a non-positive (or non-finite) RL rate is
// replaced by the classic candidate instead of entering the
// candidate comparison.
func TestPoisonedRLRateFallsBack(t *testing.T) {
	// A negative MinRate disarms the clamp so the degenerate rate
	// actually reaches the controller, as a NaN escaping a custom
	// reward or action map would in production.
	poisoned := rlcc.New("libra-rl", rlcc.LibraRLConfig(cc.Config{Seed: 25, MinRate: -1e12}))
	l := New(Config{CC: cc.Config{Seed: 25}, RL: poisoned})
	l.OnTick(0)
	poisoned.SetRate(-5)
	now := time.Duration(0)
	for i := 0; i < 200 && l.Stage() == StageExplore; i++ {
		now += 10 * time.Millisecond
		l.OnTick(now)
	}
	if l.Stage() == StageExplore {
		t.Fatal("exploration never ended")
	}
	if l.xRl != l.xCl {
		t.Fatalf("poisoned x_rl must fall back to x_cl: xRl=%v xCl=%v", l.xRl, l.xCl)
	}
	if l.xRl <= 0 {
		t.Fatalf("x_rl must stay positive, got %v", l.xRl)
	}
}
