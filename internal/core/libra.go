package core

import (
	"math"
	"time"

	"libra/internal/cc"
	"libra/internal/cc/dctcp"
	"libra/internal/cc/illinois"
	"libra/internal/cc/westwood"
	"libra/internal/rlcc"
	"libra/internal/telemetry"
	"libra/internal/utility"
)

// Stage identifies where in the control cycle the sender is.
type Stage int

// The three stages of Fig. 3 (evaluation split into its two EIs).
const (
	StageExplore Stage = iota
	StageEvalFirst
	StageEvalSecond
	StageExploit
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageExplore:
		return "explore"
	case StageEvalFirst:
		return "eval-1"
	case StageEvalSecond:
		return "eval-2"
	default:
		return "exploit"
	}
}

// Candidate identifies the origin of a rate decision (Fig. 17).
type Candidate int

// Candidates compared at the end of each control cycle.
const (
	CandPrev Candidate = iota
	CandClassic
	CandRL
)

// String names the candidate.
func (c Candidate) String() string {
	switch c {
	case CandPrev:
		return "x_prev"
	case CandClassic:
		return "x_cl"
	default:
		return "x_rl"
	}
}

// Interval tags for send-time attribution.
const (
	tagExplore = iota
	tagEvalFirst
	tagEvalSecond
	tagExploit
)

// Config parameterises a Libra sender.
type Config struct {
	CC cc.Config
	// Classic is the underlying classic CCA adapter (default CUBIC).
	Classic Classic
	// RL is the learning-based component (default LibraRLConfig with
	// CC's seed). It must be rate-based.
	RL *rlcc.Controller
	// Util scores monitor intervals (default utility.Default()).
	Util utility.Func
	// ThresholdFrac is th1 as a fraction of the base rate (default 0.3).
	ThresholdFrac float64
	// EIRTTs is the evaluation-interval length in estimated RTTs
	// (default 0.5).
	EIRTTs float64
	// ExploreRTTs / ExploitRTTs override the classic CCA's stage
	// durations when non-zero.
	ExploreRTTs, ExploitRTTs int
	// NoClassic builds Clean-Slate Libra: the framework with only the
	// RL candidate (plus x_prev).
	NoClassic bool
	// HigherRateFirst inverts the evaluation ordering — an ablation
	// switch that demonstrates the side effect of Fig. 4 (the paper's
	// "lower rate first" principle); never enable in production.
	HigherRateFirst bool
	// RecordCycles retains a per-cycle log (Fig. 17 / Fig. 18).
	RecordCycles bool
	// Tracer receives control-cycle events (stage transitions, early
	// exits, per-cycle candidate utilities and the argmax decision,
	// no-ACK fallbacks). Nil or disabled costs one predictable branch
	// on the hot path; SetTracer can rewire after construction.
	Tracer telemetry.Tracer
	// TraceID is the flow ID stamped on emitted events.
	TraceID int
	// Name overrides the reported controller name.
	Name string
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	c.CC = c.CC.WithDefaults()
	if c.Classic == nil && !c.NoClassic {
		c.Classic = NewCubicAdapter(c.CC)
	}
	if c.RL == nil {
		c.RL = rlcc.New("libra-rl", rlcc.LibraRLConfig(c.CC))
	}
	if c.Util == nil {
		c.Util = utility.Default()
	}
	if c.ThresholdFrac == 0 {
		c.ThresholdFrac = 0.3
	}
	if c.EIRTTs == 0 {
		c.EIRTTs = 0.5
	}
	if c.ExploreRTTs == 0 || c.ExploitRTTs == 0 {
		ex, xp := 1, 1
		if c.Classic != nil {
			ex, xp = c.Classic.StageRTTs()
		}
		if c.ExploreRTTs == 0 {
			c.ExploreRTTs = ex
		}
		if c.ExploitRTTs == 0 {
			c.ExploitRTTs = xp
		}
	}
	if c.Name == "" {
		if c.NoClassic {
			c.Name = "cl-libra"
		} else {
			c.Name = "libra"
		}
	}
	return c
}

// CycleRecord logs the outcome of one control cycle.
type CycleRecord struct {
	Start, End       time.Duration
	UPrev, UCl, URl  float64
	HavePrev, HaveCl bool
	HaveRl           bool
	Winner           Candidate
	XPrev            float64 // base rate chosen for the next cycle
	Skipped          bool    // no-feedback rule applied
}

// Telemetry aggregates per-cycle outcomes (Fig. 17).
type Telemetry struct {
	Cycles  int
	Wins    [3]int // indexed by Candidate
	Skipped int
}

// Fraction returns the fraction of decided cycles won by c.
func (t Telemetry) Fraction(c Candidate) float64 {
	decided := t.Cycles - t.Skipped
	if decided <= 0 {
		return 0
	}
	return float64(t.Wins[c]) / float64(decided)
}

// Libra is the combined controller (Alg. 1). It implements
// cc.Controller, cc.Ticker and cc.Stopper.
type Libra struct {
	cfg     Config
	classic Classic
	rl      *rlcc.Controller
	util    utility.Func

	stage      Stage
	stageEnd   time.Duration
	exploreMin time.Duration // earliest instant the th1 early exit may fire
	cycleStart time.Duration
	started    bool

	xPrev, xCl, xRl float64
	evalLowIsCl     bool
	rate            float64

	srtt, minRTT time.Duration

	dm       cc.DeferredMonitor
	finBuf   []cc.TaggedInterval
	gathered [4]cc.IntervalStats
	haveTag  [4]bool
	nextRLMI time.Duration

	lastWinner Candidate

	// baseGrad and baseLoss are the latency gradient and loss rate
	// measured while steadily sending at x_prev (the exploitation
	// stage). Candidates are charged only for growth/loss *beyond*
	// these baselines, so queueing and drops inflicted by competing
	// flows or by stochastic channel loss — which hit every candidate
	// alike — do not masquerade as self-inflicted side effects (Fig. 4's
	// principle). This is what lets Libra hold its share against CUBIC
	// (Fig. 13) and retain utilisation under random loss (Remark 3 /
	// Fig. 10). baseLoss is capped so genuinely excessive loss is
	// always charged.
	baseGrad float64
	baseLoss float64

	// No-ACK watchdog (Sec. 3 hardening). lastAckAt timestamps the most
	// recent ACK; noAckCycles counts consecutive cycles that ended
	// without one. The first silent cycle repeats x_prev (the paper's
	// rule); beyond that the link is presumed down: outage latches and
	// every further silent cycle halves the probe rate so a restored
	// path is not slammed at a stale base rate.
	lastAckAt   time.Duration
	noAckCycles int
	outage      bool

	tel    Telemetry
	cycles []CycleRecord

	tracer   telemetry.Tracer
	traceID  int
	traceOn  bool            // cached Enabled(); keeps the hot path branch-cheap
	spanOpen bool            // a cycle span has begun and not yet ended
	evBuf    telemetry.Event // reused so enabled-path emits stay alloc-free
}

// New constructs a Libra sender.
func New(cfg Config) *Libra {
	cfg = cfg.WithDefaults()
	l := &Libra{
		cfg:     cfg,
		classic: cfg.Classic,
		rl:      cfg.RL,
		util:    cfg.Util,
		xPrev:   cfg.CC.InitialRate,
		rate:    cfg.CC.InitialRate,
	}
	l.SetTracer(cfg.Tracer, cfg.TraceID)
	return l
}

// SetTracer wires (or rewires) the telemetry sink; id becomes the Flow
// field of emitted events. The RL component shares the tracer.
// Implements telemetry.Traceable.
func (l *Libra) SetTracer(t telemetry.Tracer, id int) {
	l.tracer = t
	l.traceID = id
	l.traceOn = telemetry.Enabled(t)
	l.rl.SetTracer(t, id)
}

func init() {
	cc.Register("c-libra", func(base cc.Config) cc.Controller {
		return New(Config{CC: base, Classic: NewCubicAdapter(base), Name: "c-libra"})
	})
	cc.Register("b-libra", func(base cc.Config) cc.Controller {
		return New(Config{CC: base, Classic: NewBBRAdapter(base), Name: "b-libra"})
	})
	cc.Register("cl-libra", func(base cc.Config) cc.Controller {
		return New(Config{CC: base, NoClassic: true})
	})
	cc.Register("w-libra", func(base cc.Config) cc.Controller {
		return New(Config{CC: base, Classic: NewWindowAdapter(westwood.New(base)), Name: "w-libra"})
	})
	cc.Register("i-libra", func(base cc.Config) cc.Controller {
		return New(Config{CC: base, Classic: NewWindowAdapter(illinois.New(base)), Name: "i-libra"})
	})
	cc.Register("d-libra", func(base cc.Config) cc.Controller {
		return New(Config{CC: base, Classic: NewWindowAdapter(dctcp.New(base)), Name: "d-libra"})
	})
	cc.Register("mod-rl", func(base cc.Config) cc.Controller {
		u := utility.Default()
		cfg := rlcc.LibraRLConfig(base)
		cfg.RewardFunc = u.Value
		return rlcc.New("mod-rl", cfg)
	})
}

// Name implements cc.Controller.
func (l *Libra) Name() string { return l.cfg.Name }

// RL exposes the learning-based component.
func (l *Libra) RL() *rlcc.Controller { return l.rl }

// Stage reports the current control-cycle stage.
func (l *Libra) Stage() Stage { return l.stage }

// BaseRate returns the current base sending rate x_prev.
func (l *Libra) BaseRate() float64 { return l.xPrev }

// Telemetry returns the per-cycle win counters.
func (l *Libra) Telemetry() Telemetry { return l.tel }

// CycleLog returns the recorded cycles (empty unless RecordCycles).
func (l *Libra) CycleLog() []CycleRecord { return l.cycles }

// OnAck implements cc.Controller.
func (l *Libra) OnAck(a *cc.Ack) {
	l.srtt = a.SRTT
	l.minRTT = a.MinRTT
	if l.outage {
		l.recoverFromOutage(a.Now)
	}
	l.lastAckAt = a.Now
	l.dm.OnAck(a)
	l.rl.OnAck(a) // cheap running-signal updates; inference is gated
	if l.classic != nil {
		l.classic.OnAck(a)
	}
	if l.stage == StageExplore {
		if l.classic != nil {
			l.rate = l.cfg.CC.ClampRate(l.classic.CurrentRate(l.srtt))
		} else {
			l.rate = l.rl.Rate()
		}
		// Early exit: candidate divergence beyond th1 (Alg. 1 line 10).
		// The check only arms once exploration has run for at least half
		// its budget: competitor-induced SRTT jitter would otherwise
		// trip the threshold on the first ACK of every cycle, so the
		// classic CCA never gets to move and no candidate ever proposes
		// a higher rate.
		if l.classic != nil && a.Now >= l.exploreMin {
			xcl := l.classic.CurrentRate(l.srtt)
			xrl := l.rl.Rate()
			if math.Abs(xcl-xrl) >= l.cfg.ThresholdFrac*l.xPrev {
				if l.traceOn {
					l.evBuf = telemetry.Event{T: int64(a.Now), Type: telemetry.TypeEarlyExit,
						Flow: l.traceID, XPrev: l.xPrev, XCl: xcl, XRl: xrl}
					l.tracer.Emit(&l.evBuf)
				}
				l.advance(a.Now)
			}
		}
	}
}

// OnLoss implements cc.Controller.
func (l *Libra) OnLoss(ls *cc.Loss) {
	l.dm.OnLoss(ls)
	l.rl.OnLoss(ls)
	if l.classic != nil {
		l.classic.OnLoss(ls)
	}
	if l.stage == StageExplore && l.classic != nil {
		l.rate = l.cfg.CC.ClampRate(l.classic.CurrentRate(l.srtt))
	}
}

// rttEst returns the RTT estimate used for stage durations.
func (l *Libra) rttEst() time.Duration {
	if l.srtt > 0 {
		return l.srtt
	}
	return 100 * time.Millisecond
}

// OnTick implements cc.Ticker: a fine-grained clock that drives stage
// deadlines and the RL component's monitor intervals.
func (l *Libra) OnTick(now time.Duration) time.Duration {
	if !l.started {
		l.started = true
		l.startCycle(now)
	}
	if l.stage == StageExplore && now >= l.nextRLMI {
		l.rl.OnTick(now)
		l.nextRLMI = now + l.rttEst()
		if l.classic == nil {
			l.rate = l.rl.Rate()
		}
	}
	for now >= l.stageEnd {
		l.advance(now)
	}
	dt := l.rttEst() / 4
	if dt < time.Millisecond {
		dt = time.Millisecond
	}
	if dt > 50*time.Millisecond {
		dt = 50 * time.Millisecond
	}
	return dt
}

// startCycle begins a new exploration stage from the base rate x_prev.
func (l *Libra) startCycle(now time.Duration) {
	l.stage = StageExplore
	l.cycleStart = now
	rtt := l.rttEst()
	if l.classic != nil {
		// When the classic candidate won, its internal state already
		// embodies x_prev; re-seeding would reset its probing epoch.
		if l.lastWinner != CandClassic {
			l.classic.SeedRate(l.xPrev, rtt, now)
		}
		l.rate = l.cfg.CC.ClampRate(l.classic.CurrentRate(rtt))
	} else {
		l.rate = l.xPrev
	}
	l.rl.SetRate(l.xPrev)
	l.rl.OnTick(now) // open a fresh RL monitor interval
	l.nextRLMI = now + rtt
	l.dm.Boundary(now, l.xPrev, tagExplore)
	l.stageEnd = now + time.Duration(l.cfg.ExploreRTTs)*rtt
	l.exploreMin = now + time.Duration(l.cfg.ExploreRTTs)*rtt/2
	for i := range l.haveTag {
		l.haveTag[i] = false
	}
	if l.traceOn {
		// An abandoned cycle (outage recovery restarts mid-cycle) is
		// closed before the new span begins, so B/E events stay paired.
		l.emitCycleSpan(now, false)
		l.emitCycleSpan(now, true)
		l.emitStage(now)
	}
}

// emitStage records entry into the current stage at the applied rate.
func (l *Libra) emitStage(now time.Duration) {
	l.evBuf = telemetry.Event{T: int64(now), Type: telemetry.TypeStage, Flow: l.traceID,
		Stage: l.stage.String(), Rate: l.rate, XPrev: l.xPrev}
	l.tracer.Emit(&l.evBuf)
}

// emitCycleSpan records a control-cycle span boundary. Begins carry
// the base rate the cycle starts from; an end without a matching begin
// is suppressed, so callers may close defensively.
func (l *Libra) emitCycleSpan(now time.Duration, begin bool) {
	if begin {
		l.spanOpen = true
		l.evBuf = telemetry.Event{T: int64(now), Type: telemetry.TypeSpan, Flow: l.traceID,
			Reason: telemetry.SpanBegin, Name: "cycle", XPrev: l.xPrev}
	} else {
		if !l.spanOpen {
			return
		}
		l.spanOpen = false
		l.evBuf = telemetry.Event{T: int64(now), Type: telemetry.TypeSpan, Flow: l.traceID,
			Reason: telemetry.SpanEnd, Name: "cycle"}
	}
	l.tracer.Emit(&l.evBuf)
}

// eiLen returns the evaluation-interval duration for a candidate rate:
// the configured fraction of an RTT, floored so the interval carries at
// least a handful of packets (meaningful loss/throughput estimates at
// low rates), capped to stay responsive.
func (l *Libra) eiLen(rate float64) time.Duration {
	rtt := l.rttEst()
	ei := time.Duration(l.cfg.EIRTTs * float64(rtt))
	if rate > 0 {
		need := time.Duration(float64(4*l.cfg.CC.MSS) / rate * float64(time.Second))
		if need > ei {
			ei = need
		}
	}
	if maxEI := 250 * time.Millisecond; ei > maxEI {
		ei = maxEI
	}
	return ei
}

// advance moves to the next stage.
func (l *Libra) advance(now time.Duration) {
	rtt := l.rttEst()
	switch l.stage {
	case StageExplore:
		if l.classic != nil {
			l.xCl = l.cfg.CC.ClampRate(l.classic.CurrentRate(rtt))
		}
		l.xRl = l.rl.Rate()
		if math.IsNaN(l.xRl) || math.IsInf(l.xRl, 0) || l.xRl <= 0 {
			// Inference guard: a poisoned RL rate falls back to the
			// classic arm (or the base rate when there is none) instead
			// of contaminating the candidate comparison.
			if l.classic != nil {
				l.xRl = l.xCl
			} else {
				l.xRl = l.xPrev
			}
		}
		if l.cfg.NoClassic {
			// CL-Libra: single candidate EI.
			l.stage = StageEvalSecond
			l.rate = l.xRl
			l.evalLowIsCl = false
			l.dm.Boundary(now, l.xRl, tagEvalSecond)
			l.stageEnd = now + l.eiLen(l.rate)
			if l.traceOn {
				l.emitStage(now)
			}
			return
		}
		// Lower rate first (Sec. 4.1, Fig. 4).
		l.evalLowIsCl = l.xCl <= l.xRl
		if l.cfg.HigherRateFirst {
			l.evalLowIsCl = !l.evalLowIsCl // ablation: invert the order
		}
		l.stage = StageEvalFirst
		if l.evalLowIsCl {
			l.rate = l.xCl
		} else {
			l.rate = l.xRl
		}
		l.dm.Boundary(now, l.rate, tagEvalFirst)
		l.stageEnd = now + l.eiLen(l.rate)
		if l.traceOn {
			l.emitStage(now)
		}
	case StageEvalFirst:
		l.stage = StageEvalSecond
		if l.evalLowIsCl {
			l.rate = l.xRl
		} else {
			l.rate = l.xCl
		}
		l.dm.Boundary(now, l.rate, tagEvalSecond)
		l.stageEnd = now + l.eiLen(l.rate)
		if l.traceOn {
			l.emitStage(now)
		}
	case StageEvalSecond:
		l.stage = StageExploit
		l.rate = l.xPrev
		l.dm.Boundary(now, l.xPrev, tagExploit)
		l.stageEnd = now + time.Duration(l.cfg.ExploitRTTs)*rtt
		if l.traceOn {
			l.emitStage(now)
		}
	case StageExploit:
		l.decide(now)
		l.startCycle(now)
	}
}

// intervalTerms reduces an interval to the three inputs of the Eq. 1
// utility — throughput in Mbit/s, the differential latency gradient
// (candidate gradient minus the exploitation-stage baseline), and the
// differential loss rate. decide() scores them through the configured
// utility function and the decision telemetry event carries the
// winner's triple so analyzers can decompose its utility into the
// throughput / delay-penalty / loss-penalty terms.
func (l *Libra) intervalTerms(iv *cc.IntervalStats) (thrMbps, grad, loss float64) {
	loss = iv.LossRate() - l.baseLoss
	if loss < 0 {
		loss = 0
	}
	grad = iv.RTTGradient() - math.Max(0, l.baseGrad)
	thr := iv.Throughput()
	// Lemma A.4(i) denoising: an interval that completed without any
	// marginal congestion signal sustained its applied rate — score it
	// at that rate. Without this, sub-RTT sampling noise makes the
	// throughput term a lottery and the argmax drifts towards the
	// lowest candidate (whose downward reach exceeds the classic's
	// one-RTT probe), starving Libra against competing flows.
	if grad <= 1e-3 && loss <= 1e-3 && iv.RTTCount >= 2 && iv.AppliedRate > thr {
		thr = iv.AppliedRate
	}
	return thr * 8 / 1e6, grad, loss
}

// utilityOf scores an interval with the configured utility function.
func (l *Libra) utilityOf(iv *cc.IntervalStats) float64 {
	return l.util.Value(l.intervalTerms(iv))
}

// decide implements Alg. 1 lines 20-22: gather the finalized intervals
// of this cycle, compute the three utilities, and pick the next base
// rate.
func (l *Libra) decide(now time.Duration) {
	l.finBuf = l.dm.PopFinalized(now, l.rttEst(), l.finBuf[:0])
	for i := range l.finBuf {
		ti := &l.finBuf[i]
		if ti.Tag == tagExploit && ti.Stats.HasFeedback() {
			// Exploitation intervals (which finalize one cycle late)
			// refresh the steady-state baselines. The loss baseline is
			// capped at 12% so runaway self-inflicted loss can never be
			// written off as background.
			l.baseGrad = ti.Stats.RTTGradient()
			l.baseLoss = math.Min(ti.Stats.LossRate(), 0.12)
		}
		if ti.Stats.Start >= l.cycleStart && ti.Tag < len(l.haveTag) {
			l.gathered[ti.Tag] = ti.Stats
			l.haveTag[ti.Tag] = true
		}
	}
	l.tel.Cycles++

	rec := CycleRecord{Start: l.cycleStart, End: now}
	// Map the two EIs back to their candidates.
	var uCl, uRl, uPrev float64
	var haveCl, haveRl, havePrev bool
	first, second := tagEvalFirst, tagEvalSecond
	if l.haveTag[first] && l.gathered[first].HasFeedback() {
		u := l.utilityOf(&l.gathered[first])
		if l.evalLowIsCl {
			uCl, haveCl = u, true
		} else {
			uRl, haveRl = u, true
		}
	}
	if l.haveTag[second] && l.gathered[second].HasFeedback() {
		u := l.utilityOf(&l.gathered[second])
		if l.evalLowIsCl || l.cfg.NoClassic {
			uRl, haveRl = u, true
		} else {
			uCl, haveCl = u, true
		}
	}
	if l.haveTag[tagExplore] && l.gathered[tagExplore].HasFeedback() {
		uPrev, havePrev = l.utilityOf(&l.gathered[tagExplore]), true
	}

	if !havePrev && !haveCl && !haveRl {
		// No feedback anywhere: repeat the current base rate (Sec. 3).
		var reason string
		if l.lastAckAt < l.cycleStart {
			// Not a single ACK all cycle: the watchdog arms. One silent
			// cycle is the paper's fallback; from the second onwards the
			// link is treated as down and the probe rate decays.
			l.noAckCycles++
			if l.noAckCycles >= 2 {
				l.outage = true
				l.xPrev = l.cfg.CC.ClampRate(l.xPrev / 2)
				reason = "decay"
			}
		} else {
			l.noAckCycles = 0
		}
		l.tel.Skipped++
		rec.Skipped = true
		rec.XPrev = l.xPrev
		if l.cfg.RecordCycles {
			l.cycles = append(l.cycles, rec)
		}
		if l.traceOn {
			l.evBuf = telemetry.Event{T: int64(now), Type: telemetry.TypeNoAck,
				Flow: l.traceID, XPrev: l.xPrev, Reason: reason, RTT: int64(l.srtt)}
			l.tracer.Emit(&l.evBuf)
			l.emitCycleSpan(now, false)
		}
		return
	}
	l.noAckCycles = 0

	winner := CandPrev
	best := math.Inf(-1)
	if havePrev {
		best = uPrev
	}
	if haveCl && uCl > best {
		best, winner = uCl, CandClassic
	}
	if haveRl && uRl > best {
		best, winner = uRl, CandRL
	}
	switch winner {
	case CandClassic:
		l.xPrev = l.xCl
	case CandRL:
		l.xPrev = l.xRl
	case CandPrev:
		// The exploration behaviour won. Its representative rate is the
		// throughput it actually achieved — with CUBIC this is ~x_prev,
		// but BBR's gain-cycled exploration can deliver well above the
		// stale base, and adopting the measured rate is what lets
		// B-Libra inherit BBR's ramp-up.
		iv := &l.gathered[tagExplore]
		if thr := iv.Throughput(); thr > 0 && iv.Elapsed() >= l.rttEst()/2 {
			// Guard against short-interval measurement spikes: adopt at
			// most a 3x step (BBR's startup gain is 2.89).
			l.xPrev = math.Min(thr, 3*l.xPrev)
		}
	}
	l.xPrev = l.cfg.CC.ClampRate(l.xPrev)
	l.lastWinner = winner
	l.tel.Wins[winner]++

	rec.UPrev, rec.UCl, rec.URl = uPrev, uCl, uRl
	rec.HavePrev, rec.HaveCl, rec.HaveRl = havePrev, haveCl, haveRl
	rec.Winner = winner
	rec.XPrev = l.xPrev
	if l.cfg.RecordCycles {
		l.cycles = append(l.cycles, rec)
	}
	if l.traceOn {
		l.evBuf = telemetry.Event{T: int64(now), Type: telemetry.TypeDecision,
			Flow: l.traceID, Winner: winner.String(),
			XPrev: l.xPrev, XCl: l.xCl, XRl: l.xRl, RTT: int64(l.srtt)}
		if havePrev {
			l.evBuf.UPrev = uPrev
		}
		if haveCl {
			l.evBuf.UCl = uCl
		}
		if haveRl {
			l.evBuf.URl = uRl
		}
		// Attach the winner's scored triple (throughput Mbit/s,
		// differential gradient, differential loss) so the analyzer can
		// decompose its utility into the Eq. 1 terms without replaying
		// interval accounting.
		if iv := l.winnerInterval(winner); iv != nil {
			l.evBuf.Thr, l.evBuf.Grad, l.evBuf.Loss = l.intervalTerms(iv)
		}
		l.tracer.Emit(&l.evBuf)
		l.emitCycleSpan(now, false)
	}
}

// winnerInterval maps a decided candidate back to the gathered
// interval its utility was scored on (nil when that interval carried
// no feedback — possible when the winner was decided on another arm's
// absence). The EI→candidate mapping mirrors decide(): the first EI
// holds the lower-rate candidate, the second the higher (Fig. 4's
// lower-rate-first principle), and CL-Libra's single EI is always RL.
func (l *Libra) winnerInterval(w Candidate) *cc.IntervalStats {
	tag := -1
	switch w {
	case CandPrev:
		tag = tagExplore
	case CandClassic:
		if l.evalLowIsCl {
			tag = tagEvalFirst
		} else {
			tag = tagEvalSecond
		}
	case CandRL:
		if l.evalLowIsCl || l.cfg.NoClassic {
			tag = tagEvalSecond
		} else {
			tag = tagEvalFirst
		}
	}
	if tag < 0 || !l.haveTag[tag] || !l.gathered[tag].HasFeedback() {
		return nil
	}
	return &l.gathered[tag]
}

// recoverFromOutage re-enters the control cycle cleanly after a
// blackout: the watchdog state clears, the stale steady-state baselines
// (measured on the pre-outage path) are discarded, and a fresh
// exploration stage starts from the decayed base rate. Forcing
// lastWinner to CandPrev makes startCycle re-seed the classic CCA,
// whose internal state still reflects the dead link.
func (l *Libra) recoverFromOutage(now time.Duration) {
	l.outage = false
	l.noAckCycles = 0
	l.baseGrad = 0
	l.baseLoss = 0
	l.lastWinner = CandPrev
	if l.traceOn {
		l.evBuf = telemetry.Event{T: int64(now), Type: telemetry.TypeNoAck,
			Flow: l.traceID, XPrev: l.xPrev, Reason: "recover"}
		l.tracer.Emit(&l.evBuf)
	}
	l.startCycle(now)
}

// Outage reports whether the no-ACK watchdog currently presumes the
// path is down.
func (l *Libra) Outage() bool { return l.outage }

// Rate implements cc.Controller.
func (l *Libra) Rate() float64 { return l.rate }

// Window implements cc.Controller: Libra is purely rate-paced, so the
// window is a loose two-seconds-of-data cap. A tight per-stage BDP cap
// would let a low-rate evaluation interval inherit the previous stage's
// inflight and block its own packets, corrupting the measurement.
func (l *Libra) Window() float64 {
	return math.Max(2*l.rate, 4*float64(l.cfg.CC.MSS))
}

// Stop implements cc.Stopper.
func (l *Libra) Stop(now time.Duration) {
	if st, ok := interface{}(l.rl).(cc.Stopper); ok {
		st.Stop(now)
	}
}

// MemBytes estimates controller-resident memory: the RL component's
// models plus the framework's interval bookkeeping. Assumes the agent
// is owned outright; see rlcc.Controller.MemBytes for the shared-agent
// caveat.
func (l *Libra) MemBytes() int {
	return l.rl.MemBytes() + 1024
}

// OwnMemBytes is the per-flow residual beyond a possibly shared agent:
// the RL component's buffers plus ~1 KB of framework scalars.
func (l *Libra) OwnMemBytes() int { return l.rl.OwnMemBytes() + 1024 }

// SharesAgent reports whether the RL component runs on an externally
// supplied (possibly shared) agent.
func (l *Libra) SharesAgent() bool { return l.rl.SharesAgent() }
