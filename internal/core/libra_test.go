package core

import (
	"math"
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cc/westwood"
	"libra/internal/cctest"
	"libra/internal/trace"
	"libra/internal/utility"
)

func mustUtil(name string) utility.Func {
	switch name {
	case "th2":
		return utility.Throughput2()
	case "la2":
		return utility.Latency2()
	}
	panic("unknown utility " + name)
}

func TestRegistered(t *testing.T) {
	for _, n := range []string{"c-libra", "b-libra", "cl-libra", "mod-rl"} {
		if _, err := cc.New(n, cc.Config{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.ThresholdFrac != 0.3 || cfg.EIRTTs != 0.5 {
		t.Fatalf("defaults %+v", cfg)
	}
	if cfg.ExploreRTTs != 1 || cfg.ExploitRTTs != 1 {
		t.Fatal("CUBIC stages should be 1 RTT")
	}
	bcfg := Config{Classic: NewBBRAdapter(cc.Config{}.WithDefaults())}.WithDefaults()
	if bcfg.ExploreRTTs != 3 || bcfg.ExploitRTTs != 3 {
		t.Fatal("BBR stages should be 3 RTTs")
	}
}

func TestStageProgression(t *testing.T) {
	l := New(Config{CC: cc.Config{Seed: 1}})
	now := time.Duration(0)
	l.OnTick(now)
	if l.Stage() != StageExplore {
		t.Fatalf("initial stage %v", l.Stage())
	}
	// Feed ACKs and advance time; stages must cycle in order.
	seen := map[Stage]bool{StageExplore: true}
	var order []Stage
	last := l.Stage()
	for i := 0; i < 400; i++ {
		now += 10 * time.Millisecond
		l.OnAck(&cc.Ack{Now: now, RTT: 40 * time.Millisecond, SRTT: 40 * time.Millisecond,
			MinRTT: 40 * time.Millisecond, Acked: 1500})
		l.OnTick(now)
		if l.Stage() != last {
			order = append(order, l.Stage())
			last = l.Stage()
			seen[l.Stage()] = true
		}
	}
	for st := StageExplore; st <= StageExploit; st++ {
		if !seen[st] {
			t.Fatalf("stage %v never reached (order %v)", st, order)
		}
	}
	if l.Telemetry().Cycles == 0 {
		t.Fatal("no control cycles completed")
	}
}

func TestLowerRateFirstOrdering(t *testing.T) {
	l := New(Config{CC: cc.Config{Seed: 2}})
	l.started = true
	l.srtt = 40 * time.Millisecond
	l.startCycle(0)
	// Force known candidate rates, then exit exploration.
	l.xPrev = 1e6
	l.rl.SetRate(5e5) // RL lower
	l.advance(40 * time.Millisecond)
	if l.Stage() != StageEvalFirst {
		t.Fatalf("stage %v", l.Stage())
	}
	if l.evalLowIsCl && l.Rate() > l.xRl {
		t.Fatal("ordering flag inconsistent with applied rate")
	}
	if l.Rate() != math.Min(l.xCl, l.xRl) {
		t.Fatalf("first EI applies %v, want the lower of (%v, %v)", l.Rate(), l.xCl, l.xRl)
	}
	l.advance(60 * time.Millisecond)
	if l.Rate() != math.Max(l.xCl, l.xRl) {
		t.Fatalf("second EI applies %v, want the higher candidate", l.Rate())
	}
	l.advance(80 * time.Millisecond)
	if l.Stage() != StageExploit || l.Rate() != l.xPrev {
		t.Fatalf("exploitation must apply x_prev; stage %v rate %v", l.Stage(), l.Rate())
	}
}

func TestEarlyExitOnDivergence(t *testing.T) {
	l := New(Config{CC: cc.Config{Seed: 3}})
	now := time.Duration(0)
	l.OnTick(now)
	l.xPrev = 1e6
	// Make RL diverge wildly from the classic rate.
	l.rl.SetRate(1e8)
	// Before half the exploration budget, the early exit is disarmed
	// (SRTT-jitter immunity).
	now += time.Millisecond
	l.OnAck(&cc.Ack{Now: now, RTT: 40 * time.Millisecond, SRTT: 40 * time.Millisecond,
		MinRTT: 40 * time.Millisecond, Acked: 1500})
	if l.Stage() != StageExplore {
		t.Fatal("early exit must not fire before half the exploration budget")
	}
	// After the arming point it fires on the next ACK.
	now += 60 * time.Millisecond
	l.OnAck(&cc.Ack{Now: now, RTT: 40 * time.Millisecond, SRTT: 40 * time.Millisecond,
		MinRTT: 40 * time.Millisecond, Acked: 1500})
	if l.Stage() == StageExplore {
		t.Fatal("divergence beyond th1 should exit exploration early")
	}
}

func TestNoFeedbackRepeatsBaseRate(t *testing.T) {
	l := New(Config{CC: cc.Config{Seed: 4}, RecordCycles: true})
	l.OnTick(0)
	base := l.BaseRate()
	// Walk a full cycle with zero ACKs.
	now := time.Duration(0)
	for i := 0; i < 50 && l.Telemetry().Cycles == 0; i++ {
		now += 100 * time.Millisecond
		l.OnTick(now)
	}
	if l.Telemetry().Cycles == 0 {
		t.Fatal("cycle never completed")
	}
	if l.Telemetry().Skipped == 0 {
		t.Fatal("feedback-free cycle should invoke the no-ACK rule")
	}
	if l.BaseRate() != base {
		t.Fatalf("base rate changed without feedback: %v -> %v", base, l.BaseRate())
	}
	if len(l.CycleLog()) == 0 || !l.CycleLog()[0].Skipped {
		t.Fatal("cycle log should record the skip")
	}
}

func TestFillsWiredLink(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   120000,
		Duration: 40 * time.Second,
	}, New(Config{CC: cc.Config{Seed: 5}}))
	if res.Utilization < 0.75 {
		t.Fatalf("C-Libra utilization %.3f", res.Utilization)
	}
	// Libra's latency-aware utility should avoid sustained bufferbloat:
	// the full 40ms queue would double the RTT.
	if res.AvgRTT > 75*time.Millisecond {
		t.Fatalf("C-Libra avg RTT %v", res.AvgRTT)
	}
}

func TestBLibraFillsWiredLink(t *testing.T) {
	base := cc.Config{Seed: 6}.WithDefaults()
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   120000,
		Duration: 40 * time.Second,
	}, New(Config{CC: base, Classic: NewBBRAdapter(base), Name: "b-libra"}))
	if res.Utilization < 0.7 {
		t.Fatalf("B-Libra utilization %.3f", res.Utilization)
	}
}

func TestTracksStepCapacity(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: &trace.Step{Period: 10 * time.Second,
			Levels: []float64{trace.Mbps(5), trace.Mbps(20), trace.Mbps(10)}},
		MinRTT:   80 * time.Millisecond,
		Buffer:   120000,
		Duration: 30 * time.Second,
	}, New(Config{CC: cc.Config{Seed: 7}}))
	if res.Utilization < 0.6 {
		t.Fatalf("step-scenario utilization %.3f", res.Utilization)
	}
}

func TestStochasticLossResilience(t *testing.T) {
	// Remark 3: x_rl and x_prev candidates rescue Libra from CUBIC's
	// erroneous loss-triggered reductions.
	libra := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   120000,
		Loss:     0.02,
		Duration: 40 * time.Second,
		Seed:     3,
	}, New(Config{CC: cc.Config{Seed: 8}}))
	cub := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   120000,
		Loss:     0.02,
		Duration: 40 * time.Second,
		Seed:     3,
	}, NewCubicAdapter(cc.Config{Seed: 8}.WithDefaults()))
	if libra.Utilization <= cub.Utilization {
		t.Fatalf("C-Libra (%.3f) should beat CUBIC (%.3f) under stochastic loss",
			libra.Utilization, cub.Utilization)
	}
}

func TestDecisionFractionsRecorded(t *testing.T) {
	l := New(Config{CC: cc.Config{Seed: 9}, RecordCycles: true})
	cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   120000,
		Duration: 20 * time.Second,
	}, l)
	tel := l.Telemetry()
	if tel.Cycles < 10 {
		t.Fatalf("only %d cycles in 20s", tel.Cycles)
	}
	var sum float64
	for c := CandPrev; c <= CandRL; c++ {
		sum += tel.Fraction(c)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("win fractions sum to %v", sum)
	}
	if len(l.CycleLog()) != tel.Cycles {
		t.Fatalf("cycle log %d entries for %d cycles", len(l.CycleLog()), tel.Cycles)
	}
}

func TestCLLibraRunsWithoutClassic(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   120000,
		Duration: 20 * time.Second,
	}, New(Config{CC: cc.Config{Seed: 10}, NoClassic: true}))
	if res.Throughput <= 0 {
		t.Fatal("CL-Libra starved")
	}
}

func TestUtilityPreferenceChangesAggressiveness(t *testing.T) {
	run := func(u Config) float64 {
		return cctest.RunSingle(cctest.Scenario{
			Capacity: trace.Constant(trace.Mbps(24)),
			MinRTT:   40 * time.Millisecond,
			Buffer:   240000,
			Duration: 30 * time.Second,
		}, New(u)).AvgRTT.Seconds()
	}
	thr := run(Config{CC: cc.Config{Seed: 11}, Util: mustUtil("th2")})
	lat := run(Config{CC: cc.Config{Seed: 11}, Util: mustUtil("la2")})
	if lat > thr*1.05 {
		t.Fatalf("latency-oriented utility gave higher delay (%.3fs) than throughput-oriented (%.3fs)", lat, thr)
	}
}

func TestInterProtocolFairnessAvoidsStarvingCubic(t *testing.T) {
	// Remark 6: Libra must not starve CUBIC.
	a, b := cctest.RunPair(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(48)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   240000,
		Duration: 60 * time.Second,
	}, New(Config{CC: cc.Config{Seed: 12}}), NewCubicAdapter(cc.Config{Seed: 13}.WithDefaults()), 0)
	share := b.Throughput / (a.Throughput + b.Throughput)
	if share < 0.2 {
		t.Fatalf("CUBIC starved: share %.2f", share)
	}
}

func TestStageAndCandidateStrings(t *testing.T) {
	if StageExplore.String() == "" || StageExploit.String() != "exploit" {
		t.Fatal("stage names")
	}
	if CandPrev.String() != "x_prev" || CandRL.String() != "x_rl" || CandClassic.String() != "x_cl" {
		t.Fatal("candidate names")
	}
}

func TestDifferentialGradientBaseline(t *testing.T) {
	l := New(Config{CC: cc.Config{Seed: 20}})
	// With a positive baseline, a candidate whose gradient merely equals
	// the baseline is not penalised.
	l.baseGrad = 0.05
	var iv cc.IntervalStats
	iv.Reset(0)
	iv.AddAck(&cc.Ack{Now: 0, RTT: 100 * time.Millisecond, Acked: 15000})
	iv.AddAck(&cc.Ack{Now: 100 * time.Millisecond, RTT: 105 * time.Millisecond, Acked: 15000})
	iv.Close(100 * time.Millisecond)
	// Interval gradient = 0.05 == baseline -> effective gradient 0.
	withBase := l.utilityOf(&iv)
	l.baseGrad = 0
	withoutBase := l.utilityOf(&iv)
	if withBase <= withoutBase {
		t.Fatalf("baseline subtraction should remove the penalty: %v vs %v", withBase, withoutBase)
	}
}

func TestHigherRateFirstInvertsOrdering(t *testing.T) {
	l := New(Config{CC: cc.Config{Seed: 21}, HigherRateFirst: true})
	l.started = true
	l.srtt = 40 * time.Millisecond
	l.startCycle(0)
	l.xPrev = 1e6
	l.rl.SetRate(5e5)
	l.advance(40 * time.Millisecond)
	if l.Stage() != StageEvalFirst {
		t.Fatalf("stage %v", l.Stage())
	}
	if l.Rate() != math.Max(l.xCl, l.xRl) {
		t.Fatalf("ablated ordering should apply the higher rate first; got %v of (%v, %v)",
			l.Rate(), l.xCl, l.xRl)
	}
}

func TestWindowAdapterIntegration(t *testing.T) {
	base := cc.Config{Seed: 22}.WithDefaults()
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   120000,
		Duration: 30 * time.Second,
	}, New(Config{CC: base, Classic: NewWindowAdapter(westwood.New(base)), Name: "w-libra"}))
	if res.Utilization < 0.6 {
		t.Fatalf("W-Libra utilization %.3f", res.Utilization)
	}
}

func TestExploitIntervalRefreshesBaseline(t *testing.T) {
	l := New(Config{CC: cc.Config{Seed: 23}})
	cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   240000,
		Duration: 10 * time.Second,
	}, l)
	// After a steady run the baseline must be finite and small.
	if math.IsNaN(l.baseGrad) || math.Abs(l.baseGrad) > 1 {
		t.Fatalf("baseline gradient %v", l.baseGrad)
	}
}
