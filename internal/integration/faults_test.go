package integration

import (
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/core"
	"libra/internal/netem"
	"libra/internal/netem/faults"
	"libra/internal/trace"
)

// TestBlackoutThenRecovery is the headline robustness scenario: a total
// 3-second blackout mid-flow. Libra must (a) notice the silence and arm
// the no-ACK watchdog, (b) survive without panicking or stalling, and
// (c) once the link returns, restart its control cycle on the first ACK
// and reach a decided (non-skipped) cycle within two cycles of that
// restart.
func TestBlackoutThenRecovery(t *testing.T) {
	const (
		blackoutStart = 6 * time.Second
		blackoutDur   = 3 * time.Second
		restore       = blackoutStart + blackoutDur
		runFor        = 20 * time.Second
	)
	plan := &faults.Plan{Blackouts: &faults.Blackouts{
		Scheduled: []faults.Window{{Start: faults.Duration(blackoutStart), Dur: faults.Duration(blackoutDur)}},
	}}
	inj, err := faults.New(plan, 7)
	if err != nil {
		t.Fatal(err)
	}
	lb := core.New(core.Config{CC: cc.Config{Seed: 7}, RecordCycles: true})
	n := netem.New(netem.Config{
		Capacity:     trace.Constant(trace.Mbps(16)),
		MinRTT:       40 * time.Millisecond,
		BufferBytes:  100_000,
		Seed:         11,
		Faults:       inj,
		RecordSeries: true,
		SeriesBucket: time.Second,
	})
	f := n.AddFlow(lb, 0, 0)
	n.Run(runFor)

	if got := n.Link().DropStats().Blackout; got == 0 {
		t.Fatal("blackout window injected no drops")
	}
	if lb.Telemetry().Skipped == 0 {
		t.Fatal("a 3s blackout must produce skipped (no-feedback) cycles")
	}
	if lb.Outage() {
		t.Fatal("outage flag still latched at end of run")
	}

	// Recovery: the first cycle that starts after restoration is the
	// watchdog's restart (triggered by the first post-restore ACK; RTO
	// backoff from the outage can delay that ACK by a few seconds).
	cycles := lb.CycleLog()
	rec := -1
	for i, c := range cycles {
		if c.Start >= restore {
			rec = i
			break
		}
	}
	if rec < 0 {
		t.Fatalf("no control cycle after link restoration (last cycle %+v)", cycles[len(cycles)-1])
	}
	if lag := cycles[rec].Start - restore; lag > 5*time.Second {
		t.Fatalf("first post-restore cycle too late: %v after restoration", lag)
	}
	decided := false
	for i := rec; i < len(cycles) && i < rec+2; i++ {
		if !cycles[i].Skipped {
			decided = true
			break
		}
	}
	if !decided {
		t.Fatalf("no decided cycle within 2 cycles of restoration: %+v", cycles[rec:min(rec+2, len(cycles))])
	}

	// The flow must be moving real traffic again after recovery.
	thr := f.Stats.Throughput
	var tail float64
	for i := 0; i < thr.Len(); i++ {
		if time.Duration(i)*time.Second >= runFor-5*time.Second {
			tail += thr.Sum(i)
		}
	}
	if tail < 1e6/8*5 { // ≥ 1 Mbps averaged over the last 5 s
		t.Fatalf("flow effectively stalled after blackout: %.0f bytes in last 5s", tail)
	}
}

// TestHostilePlanNoStall runs every Libra variant plus the pure-RL
// baseline through the combined "hostile" preset and checks that no
// controller panics or ends the run permanently stalled.
func TestHostilePlanNoStall(t *testing.T) {
	if testing.Short() {
		t.Skip("hostile sweep skipped in -short mode")
	}
	for _, name := range []string{"c-libra", "b-libra", "cl-libra", "cubic", "bbr"} {
		t.Run(name, func(t *testing.T) {
			plan, ok := faults.Preset("hostile")
			if !ok {
				t.Fatal("hostile preset missing")
			}
			inj, err := faults.New(plan, 3)
			if err != nil {
				t.Fatal(err)
			}
			ctrl, err := cc.New(name, cc.Config{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			n := netem.New(netem.Config{
				Capacity:    trace.Constant(trace.Mbps(24)),
				MinRTT:      30 * time.Millisecond,
				BufferBytes: 120_000,
				Seed:        9,
				Faults:      inj,
			})
			f := n.AddFlow(ctrl, 0, 0)
			n.Run(15 * time.Second)
			if f.Stats.AckedBytes == 0 {
				t.Fatal("flow delivered nothing under the hostile plan")
			}
		})
	}
}

// TestFaultDeterminismEndToEnd re-runs the blackout scenario and checks
// the whole stack — injector, link, flow, controller — reproduces
// byte-identical aggregate results for the same (plan, seed) pair.
func TestFaultDeterminismEndToEnd(t *testing.T) {
	run := func() (int64, int64, uint64) {
		plan, _ := faults.Preset("hostile")
		inj, err := faults.New(plan, 21)
		if err != nil {
			t.Fatal(err)
		}
		lb := core.New(core.Config{CC: cc.Config{Seed: 4}})
		n := netem.New(netem.Config{
			Capacity:    trace.Constant(trace.Mbps(12)),
			MinRTT:      50 * time.Millisecond,
			BufferBytes: 80_000,
			Seed:        6,
			Faults:      inj,
		})
		f := n.AddFlow(lb, 0, 0)
		n.Run(10 * time.Second)
		return f.Stats.AckedBytes, n.Link().DeliveredBytes(), uint64(n.Link().DropStats().Total())
	}
	a1, d1, x1 := run()
	a2, d2, x2 := run()
	if a1 != a2 || d1 != d2 || x1 != x2 {
		t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)", a1, d1, x1, a2, d2, x2)
	}
}
