package integration

import (
	"bytes"
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/netem"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

// traceRun drives one controller over an emulated path with a JSONL
// recorder attached to both the network and the controller, then
// decodes the event stream back.
func traceRun(t *testing.T, name string, cap trace.Trace, buffer int, d time.Duration) []telemetry.Event {
	t.Helper()
	var buf bytes.Buffer
	rec := telemetry.NewRecorder(&buf)
	n := netem.New(netem.Config{
		Capacity:    cap,
		MinRTT:      30 * time.Millisecond,
		BufferBytes: buffer,
		Seed:        11,
		Tracer:      rec,
	})
	ctrl, err := cc.New(name, cc.Config{Seed: 5})
	if err != nil {
		t.Fatalf("cc.New(%s): %v", name, err)
	}
	if tb, ok := ctrl.(telemetry.Traceable); ok {
		tb.SetTracer(rec, 0)
	}
	n.AddFlow(ctrl, 0, 0)
	n.Run(d)
	if err := rec.Close(); err != nil {
		t.Fatalf("recorder close: %v", err)
	}
	evs, err := telemetry.ReadAll(&buf)
	if err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("trace produced no events")
	}
	return evs
}

// TestCycleEventProperties: the per-cycle event stream from a Libra run
// is monotonic in time, and balanced — every cycle opens with an
// explore stage entry and closes with exactly one decision or no-ACK
// fallback, so the counts differ by at most the one unfinished cycle.
func TestCycleEventProperties(t *testing.T) {
	evs := traceRun(t, "c-libra", trace.Constant(trace.Mbps(24)), 150_000, 20*time.Second)

	var explores, closes, stages int
	last := int64(-1)
	for i := range evs {
		e := &evs[i]
		if e.T < last {
			t.Fatalf("event %d went back in time: %d after %d (%+v)", i, e.T, last, *e)
		}
		last = e.T
		switch e.Type {
		case telemetry.TypeStage:
			stages++
			if e.Stage == "explore" {
				explores++
			}
		case telemetry.TypeDecision, telemetry.TypeNoAck:
			closes++
			if e.Type == telemetry.TypeDecision && e.Winner == "" {
				t.Errorf("decision event without winner: %+v", *e)
			}
		}
	}
	if explores == 0 {
		t.Fatal("no explore stage events")
	}
	if stages < 3*explores/2 {
		t.Errorf("expected eval/exploit stage entries between explores: %d stages for %d explores", stages, explores)
	}
	// The run ends mid-cycle at most once: explores == closes or closes+1.
	if explores != closes && explores != closes+1 {
		t.Errorf("unbalanced cycles: %d explore entries vs %d decisions+fallbacks", explores, closes)
	}
}

// TestNetemEventProperties: a deliberately tiny buffer forces tail
// drops; the stream must carry enqueue events, tail-drop events with
// sensible queue depths, and periodic link-level queue samples.
func TestNetemEventProperties(t *testing.T) {
	evs := traceRun(t, "cubic", trace.Constant(trace.Mbps(12)), 20_000, 10*time.Second)

	var enq, tailDrops, samples int
	var lastSample int64 = -1
	for i := range evs {
		e := &evs[i]
		switch e.Type {
		case telemetry.TypeEnqueue:
			enq++
			if e.Bytes <= 0 || e.Queue < e.Bytes {
				t.Fatalf("enqueue with bad sizes: %+v", *e)
			}
		case telemetry.TypeDrop:
			if e.Reason == telemetry.ReasonTail {
				tailDrops++
			}
			if e.Reason == "" {
				t.Errorf("drop without reason: %+v", *e)
			}
		case telemetry.TypeQueue:
			samples++
			if e.Flow != -1 {
				t.Errorf("queue sample should carry flow -1: %+v", *e)
			}
			if lastSample >= 0 && e.T-lastSample != int64(100*time.Millisecond) {
				t.Errorf("queue samples not 100ms apart: %d then %d", lastSample, e.T)
			}
			lastSample = e.T
		}
	}
	if enq == 0 {
		t.Error("no enqueue events")
	}
	if tailDrops == 0 {
		t.Error("20 KB buffer at 12 Mbps should tail-drop, but no tail drops recorded")
	}
	if want := int(10*time.Second/(100*time.Millisecond)) - 1; samples < want {
		t.Errorf("want >= %d queue samples over 10s, got %d", want, samples)
	}
}

// TestEndToEndLTETrace mirrors the CLI contract: a 30s LTE run with
// c-libra must yield a decodable JSONL stream containing stage
// transitions, candidate decisions, and queue/drop events.
func TestEndToEndLTETrace(t *testing.T) {
	if testing.Short() {
		t.Skip("30s emulation")
	}
	d := 30 * time.Second
	evs := traceRun(t, "c-libra", trace.NewLTE(trace.LTEDriving, d, 3), 40_000, d)

	kinds := map[telemetry.Type]int{}
	for i := range evs {
		kinds[evs[i].Type]++
	}
	for _, want := range []telemetry.Type{
		telemetry.TypeStage, telemetry.TypeDecision,
		telemetry.TypeEnqueue, telemetry.TypeQueue, telemetry.TypeDrop,
	} {
		if kinds[want] == 0 {
			t.Errorf("30s LTE trace missing %q events (have %v)", want, kinds)
		}
	}
}
