// Package integration holds cross-module invariant tests: properties
// that must hold across the emulator, the controllers, and the Libra
// framework together.
package integration

import (
	"math"
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/core"
	"libra/internal/netem"
	"libra/internal/trace"

	// Register every controller with the cc registry.
	_ "libra/internal/cc/copa"
	_ "libra/internal/cc/indigo"
	_ "libra/internal/cc/orca"
	_ "libra/internal/cc/remy"
	_ "libra/internal/cc/reno"
	_ "libra/internal/cc/sprout"
	_ "libra/internal/cc/vegas"
	_ "libra/internal/cc/vivace"
	_ "libra/internal/rlcc"
)

// makers returns one fresh controller of each family for sweep tests.
func makers() map[string]func(seed int64) cc.Controller {
	names := []string{"cubic", "bbr", "reno", "vegas", "copa", "sprout",
		"vivace", "proteus", "remy", "indigo", "aurora", "orca",
		"westwood", "illinois", "dctcp", "c-libra", "b-libra", "cl-libra"}
	out := map[string]func(seed int64) cc.Controller{}
	for _, n := range names {
		n := n
		out[n] = func(seed int64) cc.Controller {
			ctrl, err := cc.New(n, cc.Config{Seed: seed})
			if err != nil {
				panic(err)
			}
			return ctrl
		}
	}
	return out
}

// TestByteConservation: for every controller, sent = acked + lost +
// still-in-flight at the end of the run, and the link never delivers
// more than was sent.
func TestByteConservation(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			n := netem.New(netem.Config{
				Capacity:    trace.Constant(trace.Mbps(20)),
				MinRTT:      40 * time.Millisecond,
				BufferBytes: 60_000,
				LossRate:    0.01,
				Seed:        7,
			})
			f := n.AddFlow(mk(3), 0, 0)
			n.Run(8 * time.Second)
			accounted := f.Stats.AckedBytes + f.Stats.LostBytes + int64(f.InFlight())
			// ACKs still in flight at cut-off may lag: allow a small
			// slack of unresolved bytes (those become InFlight).
			slack := f.Stats.SentBytes - accounted
			if slack < 0 || slack > 200*1500 {
				t.Fatalf("conservation: sent=%d acked=%d lost=%d inflight=%d (slack %d)",
					f.Stats.SentBytes, f.Stats.AckedBytes, f.Stats.LostBytes, f.InFlight(), slack)
			}
			if n.Link().DeliveredBytes() > f.Stats.SentBytes {
				t.Fatal("link delivered more than was sent")
			}
		})
	}
}

// TestNoCCAStarvesItself: every controller must keep its flow alive on
// an easy link.
func TestNoCCAStarvesItself(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			n := netem.New(netem.Config{
				Capacity:    trace.Constant(trace.Mbps(12)),
				MinRTT:      40 * time.Millisecond,
				BufferBytes: 90_000,
				Seed:        1,
			})
			f := n.AddFlow(mk(1), 0, 0)
			n.Run(10 * time.Second)
			// Untrained RL policies ramp slowly (their trained versions
			// are exercised by the experiment harness); they must still
			// make visible progress.
			floor := 1.0
			if name == "aurora" || name == "cl-libra" {
				floor = 0.3
			}
			if trace.ToMbps(f.Stats.AvgThroughput()) < floor {
				t.Fatalf("%s achieved only %.2f Mbps on a clean 12 Mbps link",
					name, trace.ToMbps(f.Stats.AvgThroughput()))
			}
		})
	}
}

// TestRTTNeverBelowPropagation: measured RTTs must respect physics.
func TestRTTNeverBelowPropagation(t *testing.T) {
	for name, mk := range makers() {
		n := netem.New(netem.Config{
			Capacity:    trace.Constant(trace.Mbps(24)),
			MinRTT:      60 * time.Millisecond,
			BufferBytes: 150_000,
			Seed:        2,
		})
		f := n.AddFlow(mk(2), 0, 0)
		n.Run(5 * time.Second)
		if f.Stats.MinRTT < 60*time.Millisecond {
			t.Fatalf("%s observed RTT %v below propagation delay", name, f.Stats.MinRTT)
		}
	}
}

// TestDeterminismAcrossControllers: identical seeds give identical
// results for every controller, including the learning-based ones.
func TestDeterminismAcrossControllers(t *testing.T) {
	for name, mk := range makers() {
		run := func() int64 {
			n := netem.New(netem.Config{
				Capacity:    trace.NewLTE(trace.LTEWalking, 6*time.Second, 9),
				MinRTT:      30 * time.Millisecond,
				BufferBytes: 150_000,
				LossRate:    0.005,
				Seed:        5,
			})
			f := n.AddFlow(mk(11), 0, 0)
			n.Run(6 * time.Second)
			return f.Stats.AckedBytes
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("%s non-deterministic: %d vs %d", name, a, b)
		}
	}
}

// TestLibraUtilizationAcrossBufferExtremes: the headline robustness
// property — C-Libra keeps working from tiny to huge buffers.
func TestLibraUtilizationAcrossBufferExtremes(t *testing.T) {
	for _, buf := range []int{10_000, 2_000_000} {
		n := netem.New(netem.Config{
			Capacity:    trace.Constant(trace.Mbps(30)),
			MinRTT:      50 * time.Millisecond,
			BufferBytes: buf,
			Seed:        4,
		})
		l := core.New(core.Config{CC: cc.Config{Seed: 6}})
		n.AddFlow(l, 0, 0)
		n.Run(25 * time.Second)
		if u := n.Utilization(25 * time.Second); u < 0.5 {
			t.Fatalf("buffer %d: utilization %.3f", buf, u)
		}
	}
}

// TestManyFlowsShareBottleneck: eight mixed flows must all make
// progress and jointly not exceed capacity.
func TestManyFlowsShareBottleneck(t *testing.T) {
	n := netem.New(netem.Config{
		Capacity:    trace.Constant(trace.Mbps(40)),
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 300_000,
		Seed:        8,
	})
	names := []string{"cubic", "bbr", "c-libra", "copa", "reno", "westwood", "illinois", "vegas"}
	flows := make([]*netem.Flow, len(names))
	for i, nm := range names {
		ctrl, err := cc.New(nm, cc.Config{Seed: int64(20 + i)})
		if err != nil {
			t.Fatal(err)
		}
		flows[i] = n.AddFlow(ctrl, 0, 0)
	}
	n.Run(30 * time.Second)
	var total float64
	for i, f := range flows {
		thr := trace.ToMbps(f.Stats.AvgThroughput())
		total += thr
		if thr < 0.1 {
			t.Errorf("%s starved (%.2f Mbps)", names[i], thr)
		}
	}
	if total > 42 {
		t.Fatalf("aggregate %.1f Mbps exceeds 40 Mbps capacity", total)
	}
	if math.IsNaN(total) {
		t.Fatal("NaN throughput")
	}
}
