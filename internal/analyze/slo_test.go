package analyze

import (
	"bytes"
	"math"
	"testing"
	"time"

	"libra/internal/telemetry"
)

func TestParseSLO(t *testing.T) {
	valid := []struct {
		in   string
		want SLOSpec
	}{
		{"bulk:mean_thr_mbps>=5", SLOSpec{"bulk", SLOMeanThrMbps, ">=", 5}},
		{" low-latency : p95_rtt_ms <= 100 ", SLOSpec{"low-latency", SLOP95RTTMs, "<=", 100}},
		{"x:p99_rtt_ms<=1.5", SLOSpec{"x", SLOP99RTTMs, "<=", 1.5}},
		{"x:mean_rtt_ms<=30", SLOSpec{"x", SLOMeanRTTMs, "<=", 30}},
	}
	for _, c := range valid {
		got, err := ParseSLO(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseSLO(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
	}

	invalid := []string{
		"",
		"noprofile<=5",       // missing colon
		":p95_rtt_ms<=1",     // empty profile
		"p:bogus<=1",         // unknown metric
		"p:mean_thr_mbps<=5", // throughput floors use >=
		"p:p95_rtt_ms>=5",    // RTT bounds use <=
		"p:p95_rtt_ms<=abc",  // bad threshold
		"p:<=5",              // empty metric
	}
	for _, in := range invalid {
		if got, err := ParseSLO(in); err == nil {
			t.Errorf("ParseSLO(%q) = %+v, want error", in, got)
		}
	}

	specs, err := ParseSLOs(" a:p95_rtt_ms<=1, b:mean_thr_mbps>=2 ")
	if err != nil || len(specs) != 2 || specs[1].Profile != "b" {
		t.Errorf("ParseSLOs list = %+v, %v", specs, err)
	}
	if specs, err := ParseSLOs(""); err != nil || specs != nil {
		t.Errorf("ParseSLOs(\"\") = %+v, %v, want nil, nil", specs, err)
	}
	if _, err := ParseSLOs("a:p95_rtt_ms<=1,garbage"); err == nil {
		t.Error("ParseSLOs with a bad entry: want error")
	}

	// The default objectives must round-trip through their own String form.
	for _, s := range DefaultSLOs() {
		got, err := ParseSLO(s.String())
		if err != nil || got != s {
			t.Errorf("round-trip %q = %+v, %v", s.String(), got, err)
		}
	}
}

// The windowed tail checks are exceedance-fraction tests; pin the
// boundary: a window meets "p95<=X" iff at most 5% of samples exceeded.
func TestSLOViolatedBoundary(t *testing.T) {
	p95 := SLOSpec{Metric: SLOP95RTTMs, Threshold: 50}
	if p95.violated(&sloWin{n: 20, over: 1}) {
		t.Error("p95: 1/20 over (exactly 5%) must still meet")
	}
	if !p95.violated(&sloWin{n: 20, over: 2}) {
		t.Error("p95: 2/20 over must violate")
	}
	p99 := SLOSpec{Metric: SLOP99RTTMs, Threshold: 50}
	if p99.violated(&sloWin{n: 100, over: 1}) || !p99.violated(&sloWin{n: 100, over: 2}) {
		t.Error("p99 boundary: 1/100 meets, 2/100 violates")
	}
	mean := SLOSpec{Metric: SLOMeanRTTMs, Threshold: 45}
	if mean.violated(&sloWin{n: 2, sum: 90}) || !mean.violated(&sloWin{n: 2, sum: 91}) {
		t.Error("mean boundary: 45 meets, 45.5 violates")
	}
	if p95.violated(&sloWin{}) {
		t.Error("empty window must not violate")
	}
}

// sloTrace binds flow 0 to "lat" and flow 1 to "thr", then builds three
// 1 s windows with known outcomes:
//
//	window 0: flow 0 sees 20 RTTs at 40 ms (p95+mean met); flow 1
//	          enqueues 150 kB (1.2 Mbit/s, floor met)
//	window 1: flow 0 sees 18×40 ms + 2×60 ms (10% over 50 → p95
//	          violated; mean 42 still met); flow 1 enqueues 51 kB
//	          (0.408 Mbit/s, floor violated)
//	window 2: only flow 0 sends, so the floor spec counts the window
//	          against "thr"; no RTT samples → RTT windows skip it
func sloTrace(sink telemetry.Tracer) {
	ms := func(n int64) int64 { return n * int64(time.Millisecond) }
	emit := func(e telemetry.Event) { sink.Emit(&e) }
	emit(telemetry.Event{T: 1, Type: telemetry.TypeProfile, Flow: 0, Name: "lat"})
	emit(telemetry.Event{T: 2, Type: telemetry.TypeProfile, Flow: 1, Name: "thr"})
	for i := int64(0); i < 20; i++ {
		emit(telemetry.Event{T: ms(10 + i*40), Type: telemetry.TypeDecision, Flow: 0,
			Winner: "x_prev", XPrev: 2e6, UPrev: 1, RTT: ms(40)})
	}
	for i := int64(0); i < 100; i++ {
		emit(telemetry.Event{T: ms(i * 9), Type: telemetry.TypeEnqueue, Flow: 1,
			Seq: i, Bytes: 1500, Queue: 1500})
	}
	for i := int64(0); i < 20; i++ {
		rtt := ms(40)
		if i >= 18 {
			rtt = ms(60)
		}
		emit(telemetry.Event{T: ms(1010 + i*38), Type: telemetry.TypeDecision, Flow: 0,
			Winner: "x_prev", XPrev: 2e6, UPrev: 1, RTT: rtt})
	}
	for i := int64(0); i < 34; i++ {
		emit(telemetry.Event{T: ms(1000 + i*9), Type: telemetry.TypeEnqueue, Flow: 1,
			Seq: 100 + i, Bytes: 1500, Queue: 1500})
	}
	emit(telemetry.Event{T: ms(2100), Type: telemetry.TypeEnqueue, Flow: 0,
		Seq: 0, Bytes: 1500, Queue: 1500})
}

func sloTestConfig() Config {
	return Config{SLOs: []SLOSpec{
		{Profile: "lat", Metric: SLOP95RTTMs, Op: "<=", Threshold: 50},
		{Profile: "lat", Metric: SLOMeanRTTMs, Op: "<=", Threshold: 45},
		{Profile: "thr", Metric: SLOMeanThrMbps, Op: ">=", Threshold: 1},
		{Profile: "ghost", Metric: SLOP95RTTMs, Op: "<=", Threshold: 10},
	}}
}

func TestSLOAttainment(t *testing.T) {
	a := New(sloTestConfig())
	sloTrace(a)
	a.Finalize()
	r := a.Report()

	if len(r.SLOs) != 3 {
		t.Fatalf("SLO reports = %d (%+v), want 3 (ghost profile absent from stream)", len(r.SLOs), r.SLOs)
	}
	check := func(i int, windows, met int, attain, firstMs float64) {
		t.Helper()
		s := r.SLOs[i]
		if s.Windows != windows || s.Met != met {
			t.Errorf("%s: windows/met = %d/%d, want %d/%d", s.Spec, s.Windows, s.Met, windows, met)
		}
		if math.Abs(s.Attainment-attain) > 1e-9 {
			t.Errorf("%s: attainment = %v, want %v", s.Spec, s.Attainment, attain)
		}
		if s.FirstViolationMs != firstMs {
			t.Errorf("%s: first violation = %v ms, want %v", s.Spec, s.FirstViolationMs, firstMs)
		}
	}
	check(0, 2, 1, 0.5, 1000)   // p95: window 1 violates
	check(1, 2, 2, 1, -1)       // mean RTT holds everywhere
	check(2, 3, 1, 1.0/3, 1000) // floor: windows 1 and 2 violate

	if len(r.Profiles) != 2 || r.Profiles[0].Profile != "lat" || r.Profiles[1].Profile != "thr" {
		t.Fatalf("profiles = %+v, want [lat thr]", r.Profiles)
	}
	if got := r.Profiles[0].Flows; len(got) != 1 || got[0] != 0 {
		t.Errorf("lat flows = %v, want [0]", got)
	}
	// flow 1 sent 201 kB over the 2.1 s span = ~0.766 Mbit/s.
	if want := 201000 * 8.0 / 1e6 / 2.1; math.Abs(r.Profiles[1].MeanThrMbps-want) > 1e-9 {
		t.Errorf("thr mean throughput = %v, want %v", r.Profiles[1].MeanThrMbps, want)
	}
	if r.ProfileFairness == nil || r.ProfileFairness.Profiles != 2 ||
		r.ProfileFairness.Jain <= 0 || r.ProfileFairness.Jain > 1 {
		t.Errorf("profile fairness = %+v, want 2 profiles with Jain in (0,1]", r.ProfileFairness)
	}
}

// Profile binding, SLO windows, and profile fairness must all survive
// flow-disjoint sharding + merge byte-for-byte, like the rest of the
// report (the sweep engine's determinism contract).
func TestSLOMergeMatchesSinglePass(t *testing.T) {
	single := New(sloTestConfig())
	sloTrace(single)
	single.Finalize()

	shards := []*Analyzer{New(sloTestConfig()), New(sloTestConfig()), New(sloTestConfig())}
	var router shardRouter
	router.route = func(e *telemetry.Event) int {
		if e.Flow < 0 {
			return 2
		}
		return e.Flow % 2
	}
	router.shards = shards
	sloTrace(&router)
	merged := New(sloTestConfig())
	for _, s := range shards {
		s.Finalize()
		merged.Merge(s)
	}

	var a, b bytes.Buffer
	if err := single.Report().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.Report().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("merged report differs from single-pass:\n--- single ---\n%s\n--- merged ---\n%s", a.String(), b.String())
	}

	var aj, bj bytes.Buffer
	if err := single.Report().WriteJSON(&aj); err != nil {
		t.Fatal(err)
	}
	if err := merged.Report().WriteJSON(&bj); err != nil {
		t.Fatal(err)
	}
	if aj.String() != bj.String() {
		t.Fatal("merged JSON report differs from single-pass")
	}
}
