package analyze

import (
	"os"
	"testing"
	"time"

	"libra/internal/telemetry"
)

// benchEvents is one steady-state batch: the event mix a two-flow
// simulation emits per control cycle (stages, decision, enqueue,
// queue sample). Timestamps stay inside one fairness window so the
// warmed analyzer touches only existing state.
func benchEvents() []telemetry.Event {
	ms := int64(time.Millisecond)
	var evs []telemetry.Event
	for fl := 0; fl < 2; fl++ {
		rate := 1.25e6 * float64(fl+1)
		evs = append(evs,
			telemetry.Event{T: 10 * ms, Type: telemetry.TypeStage, Flow: fl, Stage: "explore", Rate: rate},
			telemetry.Event{T: 20 * ms, Type: telemetry.TypeStage, Flow: fl, Stage: "eval-1", Rate: rate},
			telemetry.Event{T: 30 * ms, Type: telemetry.TypeStage, Flow: fl, Stage: "eval-2", Rate: rate},
			telemetry.Event{T: 40 * ms, Type: telemetry.TypeStage, Flow: fl, Stage: "exploit", Rate: rate},
			telemetry.Event{
				T: 50 * ms, Type: telemetry.TypeDecision, Flow: fl, Winner: "x_cl",
				XPrev: rate, XCl: rate * 0.9, XRl: rate * 1.1,
				UPrev: 5.1, UCl: 5.3, URl: 4.9,
				RTT: 20 * ms, Thr: rate * 8 / 1e6, Grad: 0.001, Loss: 0.01,
			},
			telemetry.Event{T: 55 * ms, Type: telemetry.TypeEnqueue, Flow: fl, Bytes: 1500},
		)
	}
	evs = append(evs, telemetry.Event{T: 60 * ms, Type: telemetry.TypeQueue, Flow: -1, Queue: 30000, Rate: 2.5e6})
	return evs
}

// BenchmarkFeed measures the per-event cost of the streaming analysis
// on the steady-state event mix. TestFeedBudget enforces the numbers
// in CI.
func BenchmarkFeed(b *testing.B) {
	a := New(Config{})
	evs := benchEvents()
	for i := range evs {
		a.Emit(&evs[i]) // warm flow/window/sketch state
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Emit(&evs[i%len(evs)])
	}
}

// TestFeedBudget runs BenchmarkFeed and asserts the bounded-memory
// contract: zero steady-state allocations per event (always enforced
// — the analyzer must not retain or allocate per event), and a
// per-event time budget when ANALYZE_BENCH_GUARD is set (make
// bench-guard / scripts/check.sh run this package in isolation,
// because under a parallel `go test ./...` sweep the wall clock
// measures CPU contention, not the feed path).
func TestFeedBudget(t *testing.T) {
	res := testing.Benchmark(BenchmarkFeed)
	if res.AllocsPerOp() != 0 {
		t.Fatalf("steady-state feed allocates: %d allocs/op", res.AllocsPerOp())
	}
	if os.Getenv("ANALYZE_BENCH_GUARD") == "" {
		t.Log("ANALYZE_BENCH_GUARD unset; skipping ns/op budget (use make bench-guard)")
		return
	}
	if raceEnabled {
		t.Log("race detector active; skipping ns/op budget")
		return
	}
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	t.Logf("steady-state feed: %.1f ns/op", ns)
	if ns >= 500 {
		t.Fatalf("feed costs %.1f ns/op, budget is < 500 ns/op", ns)
	}
}
