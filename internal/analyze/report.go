package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"libra/internal/stats"
	"libra/internal/telemetry"
)

// Quantiles summarises one sketched quantity.
type Quantiles struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// QuantilesOf extracts the standard summary from a sketch.
func QuantilesOf(s *stats.Sketch) Quantiles {
	return Quantiles{
		N:    s.Count(),
		Mean: s.Mean(),
		Min:  s.Min(),
		P50:  s.Quantile(0.50),
		P95:  s.Quantile(0.95),
		P99:  s.Quantile(0.99),
		Max:  s.Max(),
	}
}

// WinnerShare is one bar of the Fig. 17 winner histogram.
type WinnerShare struct {
	Winner string  `json:"winner"`
	Wins   int64   `json:"wins"`
	Share  float64 `json:"share"` // fraction of decided cycles
}

// StageShare attributes wall-clock to one control-cycle stage.
type StageShare struct {
	Stage string  `json:"stage"`
	Ms    float64 `json:"ms"`
	Frac  float64 `json:"frac"` // of attributed stage time
}

// Decomp is the per-cycle mean Eq. 1 utility decomposition of the
// winning candidate: MeanUtility ≈ ThrTerm - DelayPenalty - LossPenalty.
type Decomp struct {
	Cycles       int64   `json:"cycles"`
	MeanUtility  float64 `json:"mean_utility"`
	ThrTerm      float64 `json:"thr_term"`
	DelayPenalty float64 `json:"delay_penalty"`
	LossPenalty  float64 `json:"loss_penalty"`
}

// FlowReport is one flow's analysis.
type FlowReport struct {
	ID             int           `json:"id"`
	Name           string        `json:"name,omitempty"`
	Events         int64         `json:"events"`
	Cycles         int64         `json:"cycles"`
	Decided        int64         `json:"decided"`
	Skipped        int64         `json:"skipped"`
	EarlyExits     int64         `json:"early_exits"`
	EarlyExitRate  float64       `json:"early_exit_rate"`
	Winners        []WinnerShare `json:"winners"`
	Stages         []StageShare  `json:"stages"`
	Decomp         Decomp        `json:"utility_decomposition"`
	RateMbps       Quantiles     `json:"rate_mbps"`
	RTTMs          Quantiles     `json:"rtt_ms"`
	CycleMs        Quantiles     `json:"cycle_ms"`
	QueueBytes     Quantiles     `json:"queue_bytes"`
	SentBytes      int64         `json:"sent_bytes"`
	Drops          int64         `json:"drops"`
	MaxNoAckStreak int64         `json:"max_no_ack_streak"`
	// Numeric anomaly counters (machine-readable companions to the
	// formatted Anomalies strings): post-blackout rate collapses,
	// utility-regression episodes, and no-ACK streak episodes. The lab's
	// tournament aggregates these per CCA.
	Collapses     int64    `json:"collapses"`
	Regressions   int64    `json:"regressions"`
	NoAckEpisodes int64    `json:"no_ack_episodes"`
	Anomalies     []string `json:"anomalies"`
}

// LinkReport aggregates the link-level events — either the whole
// trace's aggregate view (Label empty) or one labelled hop of a
// multi-hop topology.
type LinkReport struct {
	Label        string           `json:"label,omitempty"`
	QueueBytes   Quantiles        `json:"queue_bytes"`
	CapacityMbps Quantiles        `json:"capacity_mbps"`
	Drops        map[string]int64 `json:"drops"`
	DropBytes    int64            `json:"drop_bytes"`
	FaultWindows int64            `json:"fault_windows"`
	FaultPackets int64            `json:"fault_packets"`
	Blackouts    int64            `json:"blackouts"`
}

// FairnessReport is the windowed Jain index across flows.
type FairnessReport struct {
	WindowMs float64 `json:"window_ms"`
	Flows    int     `json:"flows"`
	Windows  int     `json:"windows"`
	Mean     float64 `json:"mean"`
	Min      float64 `json:"min"`
	P50      float64 `json:"p50"`
	Below90  int     `json:"below_0_9"`
}

// Report is the full machine-readable analysis.
type Report struct {
	Events int64            `json:"events"`
	ByType map[string]int64 `json:"events_by_type"`
	SpanMs float64          `json:"span_ms"` // virtual time of the last event
	Flows  []FlowReport     `json:"flows"`
	Link   LinkReport       `json:"link"`
	// Links attributes drops/queueing/faults to individual labelled
	// hops; empty for single-bottleneck traces, sorted by label.
	Links    []LinkReport   `json:"links,omitempty"`
	Fairness FairnessReport `json:"fairness"`
	// Profiles/SLOs/ProfileFairness appear when the stream bound flows
	// to utility profiles (TypeProfile events): per-profile aggregates,
	// windowed SLO attainment in config order, and the cross-profile
	// Jain index over mean throughput.
	Profiles        []ProfileReport  `json:"profiles,omitempty"`
	SLOs            []SLOReport      `json:"slos,omitempty"`
	ProfileFairness *ProfileFairness `json:"profile_fairness,omitempty"`
}

// Report snapshots the analysis into a Report. Safe to call while a
// live tap is still feeding (the snapshot is taken under the lock);
// for a completed stream call Finalize first so pending anomaly
// watches resolve.
func (a *Analyzer) Report() *Report {
	a.mu.Lock()
	defer a.mu.Unlock()

	r := &Report{
		Events: a.events,
		ByType: make(map[string]int64, len(a.byType)),
		SpanMs: float64(a.lastT) / 1e6,
		Flows:  []FlowReport{},
	}
	for t, n := range a.byType {
		r.ByType[string(t)] = n
	}

	ids := make([]int, 0, len(a.flows))
	for id := range a.flows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		r.Flows = append(r.Flows, a.flowReport(a.flows[id]))
	}

	r.Link = linkReport("", &a.link)

	labels := make([]string, 0, len(a.links))
	for label := range a.links {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		r.Links = append(r.Links, linkReport(label, a.links[label]))
	}

	r.Fairness = a.fairnessReport(ids)
	r.Profiles, r.ProfileFairness = a.profileReports()
	r.SLOs = a.sloReports()
	return r
}

// linkReport snapshots one link state.
func linkReport(label string, ls *linkState) LinkReport {
	lr := LinkReport{
		Label:        label,
		QueueBytes:   QuantilesOf(ls.queueBytes),
		CapacityMbps: QuantilesOf(ls.capMbps),
		Drops:        make(map[string]int64, len(ls.drops)),
		DropBytes:    ls.dropBytes,
		FaultWindows: ls.faultWin,
		FaultPackets: ls.faultPkt,
		Blackouts:    ls.blackouts,
	}
	for reason, n := range ls.drops {
		lr.Drops[reason] = n
	}
	return lr
}

// flowReport derives one flow's report. Callers hold a.mu.
func (a *Analyzer) flowReport(fs *flowState) FlowReport {
	fr := FlowReport{
		ID:             fs.id,
		Name:           fs.name,
		Events:         fs.events,
		Cycles:         fs.cycles,
		Decided:        fs.decided,
		Skipped:        fs.skipped,
		EarlyExits:     fs.earlyExits,
		RateMbps:       QuantilesOf(fs.rateMbps),
		RTTMs:          QuantilesOf(fs.rttMs),
		CycleMs:        QuantilesOf(fs.cycleMs),
		QueueBytes:     QuantilesOf(fs.queueBytes),
		SentBytes:      fs.sentBytes,
		Drops:          fs.drops,
		MaxNoAckStreak: fs.maxNoAckStreak,
		Collapses:      fs.collapses,
		Regressions:    fs.regressions,
		NoAckEpisodes:  fs.noAckEpisodes,
		Anomalies:      []string{},
	}
	if fs.cycles > 0 {
		fr.EarlyExitRate = float64(fs.earlyExits) / float64(fs.cycles)
	}
	for i, n := range fs.wins {
		ws := WinnerShare{Winner: winnerNames[i], Wins: n}
		if fs.decided > 0 {
			ws.Share = float64(n) / float64(fs.decided)
		}
		fr.Winners = append(fr.Winners, ws)
	}
	var totalNs int64
	for _, ns := range fs.stageNs {
		totalNs += ns
	}
	for i, ns := range fs.stageNs {
		ss := StageShare{Stage: stageNames[i], Ms: float64(ns) / 1e6}
		if totalNs > 0 {
			ss.Frac = float64(ns) / float64(totalNs)
		}
		fr.Stages = append(fr.Stages, ss)
	}
	if fs.decompCycles > 0 {
		n := float64(fs.decompCycles)
		fr.Decomp = Decomp{
			Cycles:       fs.decompCycles,
			MeanUtility:  fs.uSum / n,
			ThrTerm:      fs.thrSum / n,
			DelayPenalty: fs.delaySum / n,
			LossPenalty:  fs.lossSum / n,
		}
	}

	// Anomaly flags, in a fixed order.
	if fs.collapses > 0 {
		fr.Anomalies = append(fr.Anomalies,
			fmt.Sprintf("rate_collapse_after_blackout x%d (base rate stayed under 50%% of pre-outage level)", fs.collapses))
	}
	if fs.maxNoAckStreak >= 2 {
		fr.Anomalies = append(fr.Anomalies,
			fmt.Sprintf("no_ack_streak max %d consecutive silent cycles (%d decayed)", fs.maxNoAckStreak, fs.decays))
	}
	if fs.regressions > 0 {
		fr.Anomalies = append(fr.Anomalies,
			fmt.Sprintf("utility_regression x%d episodes (%d cycles under 25%% of the running mean)", fs.regressions, fs.regressedCycles))
	}
	return fr
}

// fairnessReport computes the windowed Jain index over every flow
// that sent data anywhere in the trace (absent flows count as zero in
// a window — a silent flow is unfairness, not a smaller denominator).
// Callers hold a.mu.
func (a *Analyzer) fairnessReport(ids []int) FairnessReport {
	fr := FairnessReport{WindowMs: float64(a.cfg.Window) / 1e6}
	senders := make([]int, 0, len(ids))
	for _, id := range ids {
		if a.flows[id].sentBytes > 0 {
			senders = append(senders, id)
		}
	}
	fr.Flows = len(senders)
	if len(senders) == 0 || len(a.wins) == 0 {
		return fr
	}
	idxs := make([]int64, 0, len(a.wins))
	for idx := range a.wins {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	alloc := make([]float64, len(senders))
	jains := make([]float64, 0, len(idxs))
	var sum float64
	min := 1.0
	for _, idx := range idxs {
		w := a.wins[idx]
		var total int64
		for i, id := range senders {
			alloc[i] = float64(w.bytes[id])
			total += w.bytes[id]
		}
		if total == 0 {
			continue
		}
		j := stats.JainIndex(alloc)
		jains = append(jains, j)
		sum += j
		if j < min {
			min = j
		}
		if j < 0.9 {
			fr.Below90++
		}
	}
	fr.Windows = len(jains)
	if len(jains) > 0 {
		fr.Mean = sum / float64(len(jains))
		fr.Min = min
		fr.P50 = stats.Percentile(jains, 50)
	}
	return fr
}

// WriteJSON writes the report as indented JSON (map keys sort, floats
// render shortest-round-trip — deterministic for identical state).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human-readable report. All values derive from
// merged counts, so the text is byte-identical at any analysis worker
// count.
func (r *Report) WriteText(w io.Writer) error {
	pf := func(format string, args ...any) {
		fmt.Fprintf(w, format, args...)
	}
	pf("trace analysis: %d events over %s\n", r.Events,
		time.Duration(r.SpanMs*1e6).Round(time.Millisecond))
	types := make([]string, 0, len(r.ByType))
	for t := range r.ByType {
		types = append(types, t)
	}
	sort.Strings(types)
	pf("events by type:")
	for _, t := range types {
		pf(" %s %d", t, r.ByType[t])
	}
	pf("\n\n")

	for _, f := range r.Flows {
		name := f.Name
		if name == "" {
			name = "?"
		}
		pf("flow %d (%s): %d events\n", f.ID, name, f.Events)
		if f.Cycles > 0 {
			pf("  cycles:    %d (%d decided, %d skipped), early exits %d (%.1f%% of cycles)\n",
				f.Cycles, f.Decided, f.Skipped, f.EarlyExits, 100*f.EarlyExitRate)
		}
		if f.Decided > 0 {
			pf("  winners:  ")
			for _, ws := range f.Winners {
				pf(" %s %d (%.1f%%)", ws.Winner, ws.Wins, 100*ws.Share)
			}
			pf("\n")
		}
		if f.Decomp.Cycles > 0 {
			pf("  utility:   mean %.3f = thr %.3f - delay %.3f - loss %.3f (Eq. 1 terms, %d cycles)\n",
				f.Decomp.MeanUtility, f.Decomp.ThrTerm, f.Decomp.DelayPenalty,
				f.Decomp.LossPenalty, f.Decomp.Cycles)
		}
		if f.Cycles > 0 {
			pf("  stages:   ")
			for _, ss := range f.Stages {
				pf(" %s %.1f%%", ss.Stage, 100*ss.Frac)
			}
			pf("\n")
		}
		if f.RateMbps.N > 0 {
			pf("  rate Mbps: p50 %.2f  p95 %.2f  p99 %.2f  (mean %.2f, n=%d)\n",
				f.RateMbps.P50, f.RateMbps.P95, f.RateMbps.P99, f.RateMbps.Mean, f.RateMbps.N)
		}
		if f.RTTMs.N > 0 {
			pf("  rtt ms:    p50 %.2f  p95 %.2f  p99 %.2f  (mean %.2f, n=%d)\n",
				f.RTTMs.P50, f.RTTMs.P95, f.RTTMs.P99, f.RTTMs.Mean, f.RTTMs.N)
		}
		if f.CycleMs.N > 0 {
			pf("  cycle ms:  p50 %.1f  p95 %.1f  p99 %.1f  (mean %.1f, n=%d)\n",
				f.CycleMs.P50, f.CycleMs.P95, f.CycleMs.P99, f.CycleMs.Mean, f.CycleMs.N)
		}
		if f.QueueBytes.N > 0 {
			pf("  queue B:   p50 %.0f  p95 %.0f  p99 %.0f  (at this flow's enqueues, n=%d)\n",
				f.QueueBytes.P50, f.QueueBytes.P95, f.QueueBytes.P99, f.QueueBytes.N)
		}
		pf("  traffic:   %d bytes sent, %d drops\n", f.SentBytes, f.Drops)
		if len(f.Anomalies) == 0 {
			pf("  anomalies: none\n")
		} else {
			pf("  anomalies:\n")
			for _, an := range f.Anomalies {
				pf("    - %s\n", an)
			}
		}
		pf("\n")
	}

	pf("link:\n")
	pf("  queue bytes:   p50 %.0f  p95 %.0f  p99 %.0f  (mean %.0f, n=%d)\n",
		r.Link.QueueBytes.P50, r.Link.QueueBytes.P95, r.Link.QueueBytes.P99,
		r.Link.QueueBytes.Mean, r.Link.QueueBytes.N)
	pf("  capacity Mbps: p50 %.2f  p95 %.2f  p99 %.2f  (mean %.2f)\n",
		r.Link.CapacityMbps.P50, r.Link.CapacityMbps.P95, r.Link.CapacityMbps.P99,
		r.Link.CapacityMbps.Mean)
	reasons := make([]string, 0, len(r.Link.Drops))
	for reason := range r.Link.Drops {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	pf("  drops:        ")
	if len(reasons) == 0 {
		pf(" none")
	}
	for _, reason := range reasons {
		pf(" %s %d", reason, r.Link.Drops[reason])
	}
	pf(" (%d bytes)\n", r.Link.DropBytes)
	if r.Link.FaultWindows > 0 || r.Link.FaultPackets > 0 {
		pf("  faults:        %d window events (%d blackouts), %d packet mutations\n",
			r.Link.FaultWindows, r.Link.Blackouts, r.Link.FaultPackets)
	}

	if len(r.Links) > 0 {
		pf("\nper-link attribution:\n")
		for _, l := range r.Links {
			pf("  %s: queue B p50 %.0f p95 %.0f  cap Mbps p50 %.2f  drops:",
				l.Label, l.QueueBytes.P50, l.QueueBytes.P95, l.CapacityMbps.P50)
			reasons := make([]string, 0, len(l.Drops))
			for reason := range l.Drops {
				reasons = append(reasons, reason)
			}
			sort.Strings(reasons)
			if len(reasons) == 0 {
				pf(" none")
			}
			for _, reason := range reasons {
				pf(" %s %d", reason, l.Drops[reason])
			}
			pf(" (%d bytes)", l.DropBytes)
			if l.FaultWindows > 0 || l.FaultPackets > 0 {
				pf("  faults: %d windows, %d packet mutations", l.FaultWindows, l.FaultPackets)
			}
			pf("\n")
		}
	}

	if r.Fairness.Flows > 1 && r.Fairness.Windows > 0 {
		pf("\nfairness (%d flows, %.0f ms windows): Jain mean %.4f  min %.4f  p50 %.4f  (<0.9 in %d/%d windows)\n",
			r.Fairness.Flows, r.Fairness.WindowMs, r.Fairness.Mean,
			r.Fairness.Min, r.Fairness.P50, r.Fairness.Below90, r.Fairness.Windows)
	}

	if len(r.Profiles) > 0 {
		pf("\nprofiles:\n")
		for _, p := range r.Profiles {
			pf("  %-12s flows %v  mean thr %.2f Mbps", p.Profile, p.Flows, p.MeanThrMbps)
			if p.RTTMs.N > 0 {
				pf("  rtt ms p50 %.2f p95 %.2f", p.RTTMs.P50, p.RTTMs.P95)
			}
			pf("\n")
		}
		if r.ProfileFairness != nil && r.ProfileFairness.Profiles > 1 {
			pf("  cross-profile Jain (mean thr): %.4f over %d profiles\n",
				r.ProfileFairness.Jain, r.ProfileFairness.Profiles)
		}
	}
	if len(r.SLOs) > 0 {
		pf("\nSLO attainment:\n")
		for _, s := range r.SLOs {
			pf("  %-36s %5.1f%%  (%d/%d windows", s.Spec.String(), 100*s.Attainment, s.Met, s.Windows)
			if s.FirstViolationMs >= 0 {
				pf(", first violation at %.0f ms)", s.FirstViolationMs)
			} else {
				pf(", never violated)")
			}
			pf("\n")
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// ExportMetrics mirrors the report's SLO attainment and cross-profile
// fairness into a metrics registry as libra_slo_* / libra_profile_*
// gauges, so Prometheus scrapes see the same numbers the report
// prints.
func (r *Report) ExportMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for _, s := range r.SLOs {
		base := fmt.Sprintf("{profile=%q,metric=%q}", s.Spec.Profile, s.Spec.Metric)
		reg.Gauge("libra_slo_attainment"+base,
			"fraction of windows meeting the SLO").Set(s.Attainment)
		reg.Gauge("libra_slo_first_violation_ms"+base,
			"start of the earliest violating window (-1 = never)").Set(s.FirstViolationMs)
	}
	for _, p := range r.Profiles {
		reg.Gauge(fmt.Sprintf("libra_profile_mean_thr_mbps{profile=%q}", p.Profile),
			"per-flow mean throughput of the profile").Set(p.MeanThrMbps)
	}
	if r.ProfileFairness != nil {
		reg.Gauge("libra_profile_jain",
			"cross-profile Jain fairness over mean throughput").Set(r.ProfileFairness.Jain)
	}
}
