package analyze

import "net/http"

// ServeLive registers the live flow dashboard on mux: GET /flows
// returns the analyzer's current Report as JSON (a consistent
// snapshot taken under the analyzer lock, so it is safe while the
// simulation is still emitting), and GET / serves a single-page HTML
// view that polls /flows.
func ServeLive(mux *http.ServeMux, a *Analyzer) {
	mux.HandleFunc("/flows", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if err := a.Report().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(livePage))
	})
}

// livePage is the self-contained dashboard: no external assets, one
// fetch("/flows") per second, rendered into tables. Winner shares and
// anomalies mirror the text report's columns.
const livePage = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>libra live flows</title>
<style>
  body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 75em; color: #222; }
  h1 { font-size: 1.3em; } h1 small { color: #888; font-weight: normal; }
  table { border-collapse: collapse; margin: 1em 0; width: 100%; }
  th, td { border: 1px solid #ddd; padding: .35em .6em; text-align: right; white-space: nowrap; }
  th { background: #f5f5f5; } td.l, th.l { text-align: left; }
  td.anom { color: #b00020; text-align: left; white-space: normal; }
  #status { color: #888; } #status.err { color: #b00020; }
  .bar { display: inline-block; height: .7em; background: #4a78c2; vertical-align: baseline; }
</style>
</head>
<body>
<h1>libra live flows <small id="status">connecting…</small></h1>
<div id="summary"></div>
<div id="health"></div>
<table id="flows"><thead><tr>
  <th class="l">flow</th><th>cycles</th><th>early exit</th>
  <th>x_prev</th><th>x_cl</th><th>x_rl</th>
  <th>rate p50/p95 Mbps</th><th>rtt p50/p95 ms</th><th>sent MB</th><th>drops</th>
  <th class="l">anomalies</th>
</tr></thead><tbody></tbody></table>
<div id="link"></div>
<script>
const fmt = (v, d=2) => v == null ? "–" : v.toFixed(d);
const pct = v => (100 * v).toFixed(1) + "%";
function winner(ws, name) {
  const w = (ws || []).find(x => x.winner === name);
  return w ? pct(w.share) : "–";
}
async function tick() {
  const status = document.getElementById("status");
  let r;
  try {
    r = await (await fetch("/flows", {cache: "no-store"})).json();
    status.textContent = r.events + " events, " + (r.span_ms / 1000).toFixed(1) + " s virtual";
    status.className = "";
  } catch (e) {
    status.textContent = "poll failed: " + e;
    status.className = "err";
    return;
  }
  const body = document.querySelector("#flows tbody");
  body.innerHTML = "";
  for (const f of r.flows || []) {
    const tr = document.createElement("tr");
    const anoms = (f.anomalies || []).join("; ");
    const cells = [
      ["l", f.id + (f.name ? " (" + f.name + ")" : "")],
      ["", f.cycles + " (" + f.skipped + " skipped)"],
      ["", pct(f.early_exit_rate)],
      ["", winner(f.winners, "x_prev")],
      ["", winner(f.winners, "x_cl")],
      ["", winner(f.winners, "x_rl")],
      ["", fmt(f.rate_mbps.p50) + " / " + fmt(f.rate_mbps.p95)],
      ["", fmt(f.rtt_ms.p50) + " / " + fmt(f.rtt_ms.p95)],
      ["", fmt(f.sent_bytes / 1e6, 1)],
      ["", f.drops],
      ["anom", anoms || "none"],
    ];
    for (const [cls, v] of cells) {
      const td = document.createElement("td");
      if (cls) td.className = cls;
      td.textContent = v;
      tr.appendChild(td);
    }
    body.appendChild(tr);
  }
  const fair = r.fairness && r.fairness.windows > 0
    ? " · Jain mean " + fmt(r.fairness.mean, 4) + " over " + r.fairness.windows + " windows"
    : "";
  document.getElementById("summary").textContent =
    (r.flows || []).length + " flows" + fair;
  const drops = Object.entries(r.link.drops || {}).map(([k, v]) => k + " " + v).join(", ");
  document.getElementById("link").textContent =
    "link: queue p95 " + fmt(r.link.queue_bytes.p95, 0) + " B · drops: " + (drops || "none");
}
async function health() {
  // Served by cliutil's debug mux when a health sampler runs; absent
  // endpoints (404 or fetch failure) just leave the line empty.
  try {
    const r = await fetch("/health", {cache: "no-store"});
    if (!r.ok) return;
    const h = await r.json();
    if (h.sim_wall_ratio === undefined) return;
    document.getElementById("health").textContent =
      "health: " + fmt(h.sim_wall_ratio, 1) + "x realtime · " +
      fmt(h.events_per_second / 1e6, 2) + " M events/s · " +
      (h.pending_timers || 0) + " pending timers · heap " +
      fmt(h.heap_bytes / 1e6, 1) + " MB · " + (h.goroutines || 0) + " goroutines";
  } catch (e) { /* no health sampler */ }
}
tick();
health();
setInterval(tick, 1000);
setInterval(health, 1000);
</script>
</body>
</html>
`
