package analyze

import "net/http"

// ServeLive registers the live flow dashboard on mux: GET /flows
// returns the analyzer's current Report as JSON (a consistent
// snapshot taken under the analyzer lock, so it is safe while the
// simulation is still emitting), and GET / serves a single-page HTML
// view that polls /flows. Non-GET methods get 405.
func ServeLive(mux *http.ServeMux, a *Analyzer) {
	mux.HandleFunc("/flows", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		if err := a.Report().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(livePage))
	})
}

// livePage is the self-contained dashboard: no external assets, one
// fetch("/flows") per second, rendered into tables, plus the topology
// weathermap fed by /topo (hidden when the server doesn't serve it).
// Pollers back off exponentially (1 s doubling to 30 s) on repeated
// fetch errors and snap back to 1 s on the first success, so an
// abandoned tab doesn't hammer a dead server. Winner shares and
// anomalies mirror the text report's columns.
const livePage = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>libra live flows</title>
<style>
  body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 75em; color: #222; }
  h1 { font-size: 1.3em; } h1 small { color: #888; font-weight: normal; }
  h2 { font-size: 1.05em; margin: 1.2em 0 .3em; }
  table { border-collapse: collapse; margin: 1em 0; width: 100%; }
  th, td { border: 1px solid #ddd; padding: .35em .6em; text-align: right; white-space: nowrap; }
  th { background: #f5f5f5; } td.l, th.l { text-align: left; }
  td.anom { color: #b00020; text-align: left; white-space: normal; }
  td.empty { color: #888; text-align: center; font-style: italic; }
  #status { color: #888; } #status.err { color: #b00020; }
  #map svg { background: #fafafa; border: 1px solid #ddd; width: 100%; height: auto; }
  .bar { display: inline-block; height: .7em; background: #4a78c2; vertical-align: baseline; }
</style>
</head>
<body>
<h1>libra live flows <small id="status">connecting…</small></h1>
<div id="summary"></div>
<div id="health"></div>
<div id="topo" style="display:none">
  <h2>topology weathermap <small style="color:#888;font-weight:normal">link color = utilization, width = queue depth</small></h2>
  <div id="map"></div>
</div>
<table id="flows"><thead><tr>
  <th class="l">flow</th><th>cycles</th><th>early exit</th>
  <th>x_prev</th><th>x_cl</th><th>x_rl</th>
  <th>rate p50/p95 Mbps</th><th>rtt p50/p95 ms</th><th>sent MB</th><th>drops</th>
  <th class="l">anomalies</th>
</tr></thead><tbody></tbody></table>
<div id="link"></div>
<script>
const fmt = (v, d=2) => v == null ? "–" : v.toFixed(d);
const pct = v => (100 * v).toFixed(1) + "%";
function winner(ws, name) {
  const w = (ws || []).find(x => x.winner === name);
  return w ? pct(w.share) : "–";
}
// poll runs fn every second, backing off (×2, capped at 30 s) while fn
// keeps throwing and resetting to 1 s on the first success.
function poll(fn) {
  let delay = 1000;
  const run = async () => {
    try { await fn(); delay = 1000; }
    catch (e) { delay = Math.min(delay * 2, 30000); }
    setTimeout(run, delay);
  };
  run();
}
function placeholder(body, msg) {
  const tr = document.createElement("tr");
  const td = document.createElement("td");
  td.className = "empty";
  td.colSpan = 11;
  td.textContent = msg;
  tr.appendChild(td);
  body.appendChild(tr);
}
async function tick() {
  const status = document.getElementById("status");
  let r;
  try {
    const resp = await fetch("/flows", {cache: "no-store"});
    if (!resp.ok) throw new Error("HTTP " + resp.status);
    r = await resp.json();
  } catch (e) {
    status.textContent = "poll failed: " + e + " (backing off)";
    status.className = "err";
    throw e;
  }
  status.textContent = r.events + " events, " + (r.span_ms / 1000).toFixed(1) + " s virtual";
  status.className = "";
  const body = document.querySelector("#flows tbody");
  body.innerHTML = "";
  if (!r.flows || !r.flows.length) {
    placeholder(body, "no data yet — waiting for the first decision events");
  }
  for (const f of r.flows || []) {
    const tr = document.createElement("tr");
    const anoms = (f.anomalies || []).join("; ");
    const cells = [
      ["l", f.id + (f.name ? " (" + f.name + ")" : "")],
      ["", f.cycles + " (" + f.skipped + " skipped)"],
      ["", pct(f.early_exit_rate)],
      ["", winner(f.winners, "x_prev")],
      ["", winner(f.winners, "x_cl")],
      ["", winner(f.winners, "x_rl")],
      ["", fmt(f.rate_mbps.p50) + " / " + fmt(f.rate_mbps.p95)],
      ["", fmt(f.rtt_ms.p50) + " / " + fmt(f.rtt_ms.p95)],
      ["", fmt(f.sent_bytes / 1e6, 1)],
      ["", f.drops],
      ["anom", anoms || "none"],
    ];
    for (const [cls, v] of cells) {
      const td = document.createElement("td");
      if (cls) td.className = cls;
      td.textContent = v;
      tr.appendChild(td);
    }
    body.appendChild(tr);
  }
  const fair = r.fairness && r.fairness.windows > 0
    ? " · Jain mean " + fmt(r.fairness.mean, 4) + " over " + r.fairness.windows + " windows"
    : "";
  document.getElementById("summary").textContent =
    (r.flows || []).length + " flows" + fair;
  const drops = Object.entries(r.link.drops || {}).map(([k, v]) => k + " " + v).join(", ");
  document.getElementById("link").textContent =
    "link: queue p95 " + fmt(r.link.queue_bytes.p95, 0) + " B · drops: " + (drops || "none");
}
async function health() {
  // Served by cliutil's debug mux when a health sampler runs; absent
  // endpoints (404) just leave the line empty.
  const r = await fetch("/health", {cache: "no-store"});
  if (!r.ok) return;
  const h = await r.json();
  if (h.sim_wall_ratio === undefined) return;
  document.getElementById("health").textContent =
    "health: " + fmt(h.sim_wall_ratio, 1) + "x realtime · " +
    fmt(h.events_per_second / 1e6, 2) + " M events/s · " +
    (h.pending_timers || 0) + " pending timers · heap " +
    fmt(h.heap_bytes / 1e6, 1) + " MB · " + (h.goroutines || 0) + " goroutines";
}
// The weathermap: nodes on an ellipse, one line per directed link,
// hue from green (idle) to red (saturated), width from queue depth.
let topoGone = false;
function esc(s) {
  return String(s).replace(/&/g, "&amp;").replace(/</g, "&lt;").replace(/>/g, "&gt;").replace(/"/g, "&quot;");
}
function drawTopo(t) {
  const W = 900, H = 320, cx = W / 2, cy = H / 2;
  const nodes = t.nodes || [];
  const posOf = {};
  nodes.forEach((n, i) => {
    const a = 2 * Math.PI * i / nodes.length - Math.PI / 2;
    posOf[n] = [cx + 0.42 * W * Math.cos(a), cy + 0.36 * H * Math.sin(a)];
  });
  let s = "";
  for (const l of t.links || []) {
    const p = posOf[l.from], q = posOf[l.to];
    if (!p || !q) continue;
    const u = Math.max(0, Math.min(1, l.utilization || 0));
    const width = 2 + Math.min(8, (l.queue_bytes || 0) / 20000);
    const hue = Math.round(120 * (1 - u));
    // Offset the line sideways so a reverse link doesn't overlap.
    const dx = q[0] - p[0], dy = q[1] - p[1], len = Math.hypot(dx, dy) || 1;
    const ox = -dy / len * 5, oy = dx / len * 5;
    const x1 = p[0] + ox, y1 = p[1] + oy, x2 = q[0] + ox, y2 = q[1] + oy;
    const tip = esc(l.label) + ": " + pct(u) + " of " + fmt(l.capacity_mbps, 1) +
      " Mbps · queue " + fmt((l.queue_bytes || 0) / 1e3, 1) + " KB · " +
      fmt(l.drops_per_s, 1) + " drops/s · " + fmt(l.marks_per_s, 1) + " CE/s";
    s += '<line x1="' + x1 + '" y1="' + y1 + '" x2="' + x2 + '" y2="' + y2 +
      '" stroke="hsl(' + hue + ',70%,45%)" stroke-width="' + width +
      '" stroke-linecap="round"><title>' + tip + "</title></line>";
    s += '<text x="' + ((x1 + x2) / 2 + ox * 2.2) + '" y="' + ((y1 + y2) / 2 + oy * 2.2) +
      '" font-size="11" fill="#555" text-anchor="middle">' +
      esc(l.label) + " " + pct(u) + "</text>";
  }
  for (const n of nodes) {
    const p = posOf[n];
    s += '<circle cx="' + p[0] + '" cy="' + p[1] + '" r="14" fill="#fff" stroke="#666" stroke-width="1.5"/>';
    s += '<text x="' + p[0] + '" y="' + (p[1] + 4) + '" font-size="11" text-anchor="middle">' + esc(n) + "</text>";
  }
  document.getElementById("map").innerHTML =
    '<svg viewBox="0 0 ' + W + " " + H + '" xmlns="http://www.w3.org/2000/svg">' + s + "</svg>";
}
async function topo() {
  if (topoGone) return;
  const r = await fetch("/topo", {cache: "no-store"});
  if (r.status === 404 || r.status === 405) { topoGone = true; return; }
  if (!r.ok) throw new Error("HTTP " + r.status);
  drawTopo(await r.json());
  document.getElementById("topo").style.display = "";
}
poll(tick);
poll(health);
poll(topo);
</script>
</body>
</html>
`
