package analyze

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"libra/internal/telemetry"
	"libra/internal/utility"
)

// synthTrace emits a deterministic two-flow trace exercising every
// event type the analyzer folds in: full control cycles with stage
// transitions, decisions with the Eq. 1 triple, an early exit, a
// no-ACK outage with decay + recover, enqueues/drops/queue samples,
// and fault windows.
func synthTrace(sink telemetry.Tracer) {
	ms := func(n int64) int64 { return n * int64(time.Millisecond) }
	emit := func(e telemetry.Event) { sink.Emit(&e) }
	util := utility.Default()
	u := func(thr, grad, loss float64) float64 { return util.Value(thr, grad, loss) }

	for cyc := int64(0); cyc < 20; cyc++ {
		for fl := 0; fl < 2; fl++ {
			base := ms(cyc*40) + int64(fl)*ms(1)
			rate := 1.25e6 * float64(fl+1) // bytes/s → 10/20 Mbit/s
			emit(telemetry.Event{T: base, Type: telemetry.TypeStage, Flow: fl, Stage: "explore", Rate: rate})
			emit(telemetry.Event{T: base + ms(10), Type: telemetry.TypeStage, Flow: fl, Stage: "eval-1", Rate: rate * 0.95})
			emit(telemetry.Event{T: base + ms(20), Type: telemetry.TypeStage, Flow: fl, Stage: "eval-2", Rate: rate * 1.05})
			if cyc == 7 && fl == 0 {
				emit(telemetry.Event{T: base + ms(25), Type: telemetry.TypeEarlyExit, Flow: fl, Reason: "th1"})
			}
			emit(telemetry.Event{T: base + ms(30), Type: telemetry.TypeStage, Flow: fl, Stage: "exploit", Rate: rate})
			thr := rate * 8 / 1e6
			winner := "x_prev"
			if cyc%3 == 0 {
				winner = "x_cl"
			} else if cyc%3 == 1 {
				winner = "x_rl"
			}
			emit(telemetry.Event{
				T: base + ms(40), Type: telemetry.TypeDecision, Flow: fl,
				Winner: winner, XPrev: rate, XCl: rate * 0.9, XRl: rate * 1.1,
				UPrev: u(thr, 0, 0), UCl: u(thr, 0, 0), URl: u(thr, 0, 0),
				RTT: ms(20 + cyc%5), Thr: thr, Grad: 0.001, Loss: 0.01,
			})
			emit(telemetry.Event{T: base + ms(5), Type: telemetry.TypeEnqueue, Flow: fl, Bytes: 1500 * (cyc + 1) * int64(fl+1)})
		}
	}
	// Outage on flow 0: blackout, three silent cycles (one decays), then
	// recovery marker; decisions afterwards stay well below the
	// pre-outage base rate so the rate-collapse watch fires.
	emit(telemetry.Event{T: ms(810), Type: telemetry.TypeFault, Flow: -1, Reason: telemetry.FaultBlackoutStart})
	for i := int64(0); i < 3; i++ {
		reason := ""
		if i == 2 {
			reason = "decay"
		}
		emit(telemetry.Event{T: ms(840 + i*40), Type: telemetry.TypeNoAck, Flow: 0, Reason: reason, XPrev: 1.25e6, RTT: ms(25)})
	}
	emit(telemetry.Event{T: ms(960), Type: telemetry.TypeFault, Flow: -1, Reason: telemetry.FaultBlackoutEnd})
	emit(telemetry.Event{T: ms(961), Type: telemetry.TypeNoAck, Flow: 0, Reason: "recover", XPrev: 1e5})
	for i := int64(0); i < 4; i++ {
		thr := 1e5 * 8 / 1e6
		emit(telemetry.Event{
			T: ms(1000 + i*40), Type: telemetry.TypeDecision, Flow: 0,
			Winner: "x_prev", XPrev: 1e5, UPrev: u(thr, 0, 0),
			RTT: ms(30), Thr: thr,
		})
	}
	// Link-level samples and drops.
	for i := int64(0); i < 10; i++ {
		emit(telemetry.Event{T: ms(i * 100), Type: telemetry.TypeQueue, Flow: -1, Queue: 3000 * (i + 1), Rate: 2.5e6})
	}
	emit(telemetry.Event{T: ms(500), Type: telemetry.TypeDrop, Flow: 1, Reason: "tail", Bytes: 1500})
	emit(telemetry.Event{T: ms(505), Type: telemetry.TypeDrop, Flow: 1, Reason: "aqm", Bytes: 1500})
	emit(telemetry.Event{T: ms(600), Type: telemetry.TypeFault, Flow: -1, Reason: telemetry.FaultReorder})
}

func analyzeSynth(t *testing.T, cfg Config) *Report {
	t.Helper()
	a := New(cfg)
	synthTrace(a)
	a.Finalize()
	return a.Report()
}

func TestAnalyzerEndToEnd(t *testing.T) {
	r := analyzeSynth(t, Config{})

	if len(r.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(r.Flows))
	}
	f0, f1 := r.Flows[0], r.Flows[1]
	if f0.ID != 0 || f1.ID != 1 {
		t.Fatalf("flow ids = %d,%d, want 0,1", f0.ID, f1.ID)
	}

	// Flow 0: 20 synthetic cycles + 3 silent + 4 post-outage decisions.
	if f0.Cycles != 27 || f0.Decided != 24 || f0.Skipped != 3 {
		t.Errorf("flow 0 cycles/decided/skipped = %d/%d/%d, want 27/24/3", f0.Cycles, f0.Decided, f0.Skipped)
	}
	if f0.EarlyExits != 1 {
		t.Errorf("flow 0 early exits = %d, want 1", f0.EarlyExits)
	}
	if f1.Cycles != 20 || f1.Decided != 20 {
		t.Errorf("flow 1 cycles/decided = %d/%d, want 20/20", f1.Cycles, f1.Decided)
	}

	// Winner shares: cycles 0..19 give 7 x_cl (cyc%3==0), 7 x_rl, 6
	// x_prev; flow 0 adds 4 post-outage x_prev wins.
	wins := map[string]int64{}
	for _, ws := range f0.Winners {
		wins[ws.Winner] = ws.Wins
	}
	if wins["x_prev"] != 10 || wins["x_cl"] != 7 || wins["x_rl"] != 7 {
		t.Errorf("flow 0 wins = %v, want x_prev 10, x_cl 7, x_rl 7", wins)
	}
	var shareSum float64
	for _, ws := range f0.Winners {
		shareSum += ws.Share
	}
	if math.Abs(shareSum-1) > 1e-9 {
		t.Errorf("winner shares sum to %v, want 1", shareSum)
	}

	// Decomposition: every decision carried the triple, and the terms
	// must reconstruct the traced utility (grad/loss clamp positive).
	if f0.Decomp.Cycles != 24 {
		t.Errorf("flow 0 decomp cycles = %d, want 24", f0.Decomp.Cycles)
	}
	if f0.Decomp.ThrTerm <= 0 || f1.Decomp.DelayPenalty <= 0 || f1.Decomp.LossPenalty <= 0 {
		t.Errorf("decomposition terms not positive: %+v / %+v", f0.Decomp, f1.Decomp)
	}
	// Synthetic utilities were computed with grad=loss=0 while the
	// triple carries grad/loss > 0, so only check the identity for the
	// reconstruction direction: thr - delay - loss vs Value(triple).
	util := utility.Default()
	want := util.Value(20, 0.001, 0.01)
	got := util.Alpha*math.Pow(20, util.T) - util.Beta*20*0.001 - util.Gamma*20*0.01
	if math.Abs(want-got) > 1e-9 {
		t.Errorf("Eq. 1 identity broken: Value=%v terms=%v", want, got)
	}

	// Stage attribution: explore/eval-1/eval-2 all 10 ms per cycle,
	// exploit 10 ms until the next cycle's explore.
	for _, ss := range f1.Stages {
		if ss.Stage == "exploit" {
			continue
		}
		if ss.Frac < 0.2 || ss.Frac > 0.35 {
			t.Errorf("stage %s frac = %v, want ~0.25", ss.Stage, ss.Frac)
		}
	}

	// Quantiles: flow 1 rates are 20 Mbit/s ±5%.
	if f1.RateMbps.P50 < 18 || f1.RateMbps.P50 > 22 {
		t.Errorf("flow 1 rate p50 = %v, want ≈20", f1.RateMbps.P50)
	}
	if f0.RTTMs.N == 0 || f0.RTTMs.P99 < f0.RTTMs.P50 {
		t.Errorf("flow 0 rtt quantiles malformed: %+v", f0.RTTMs)
	}
	if f1.CycleMs.P50 < 35 || f1.CycleMs.P50 > 45 {
		t.Errorf("flow 1 cycle p50 = %v ms, want ≈40", f1.CycleMs.P50)
	}

	// Anomalies: flow 0 had a no-ACK streak of 3, one decay, and a
	// post-outage collapse (recovered to 0.1 of 1.25 Mbytes/s base).
	if f0.MaxNoAckStreak != 3 {
		t.Errorf("flow 0 max no-ack streak = %d, want 3", f0.MaxNoAckStreak)
	}
	joined := strings.Join(f0.Anomalies, "\n")
	if !strings.Contains(joined, "rate_collapse_after_blackout") {
		t.Errorf("flow 0 anomalies missing rate collapse: %q", joined)
	}
	if !strings.Contains(joined, "no_ack_streak") {
		t.Errorf("flow 0 anomalies missing no-ack streak: %q", joined)
	}
	if len(f1.Anomalies) != 0 {
		t.Errorf("flow 1 anomalies = %q, want none", f1.Anomalies)
	}

	// Link: 10 queue samples, 2 drops by reason, 1 blackout, 1 reorder.
	if r.Link.QueueBytes.N != 10 {
		t.Errorf("queue samples = %d, want 10", r.Link.QueueBytes.N)
	}
	if r.Link.Drops["tail"] != 1 || r.Link.Drops["aqm"] != 1 {
		t.Errorf("drops = %v, want tail 1, aqm 1", r.Link.Drops)
	}
	if r.Link.Blackouts != 1 || r.Link.FaultPackets != 1 {
		t.Errorf("blackouts/faultPkts = %d/%d, want 1/1", r.Link.Blackouts, r.Link.FaultPackets)
	}
	if f1.Drops != 2 {
		t.Errorf("flow 1 drops = %d, want 2", f1.Drops)
	}

	// Fairness: flow 1 enqueued twice flow 0's bytes in each window →
	// Jain of (1,2) = 9/10.
	if r.Fairness.Flows != 2 || r.Fairness.Windows == 0 {
		t.Fatalf("fairness flows/windows = %d/%d", r.Fairness.Flows, r.Fairness.Windows)
	}
	if math.Abs(r.Fairness.Mean-0.9) > 1e-6 {
		t.Errorf("Jain mean = %v, want 0.9", r.Fairness.Mean)
	}
}

// Sharding the stream and merging must reproduce the single-pass
// report byte-for-byte (counts, sketches, windows all merge exactly;
// order-sensitive detectors are confined within shards here because
// the split respects flow boundaries per event — the contract the
// per-file parallel analyzer relies on).
func TestMergeMatchesSinglePass(t *testing.T) {
	single := New(Config{})
	synthTrace(single)
	single.Finalize()

	// Shard by interleaving events across 3 analyzers. Detector state
	// (EWMA, streaks, watches) is order-sensitive so exact equality is
	// only guaranteed for count/sketch/window state; use a collector
	// that routes whole flows to fixed shards instead: flow-disjoint
	// shards make every detector shard-local.
	shards := []*Analyzer{New(Config{}), New(Config{}), New(Config{})}
	var router shardRouter
	router.route = func(e *telemetry.Event) int {
		if e.Flow < 0 {
			return 2
		}
		return e.Flow % 2
	}
	router.shards = shards
	synthTrace(&router)
	merged := New(Config{})
	for _, s := range shards {
		s.Finalize()
		merged.Merge(s)
	}

	var a, b bytes.Buffer
	if err := single.Report().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.Report().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("merged report differs from single-pass:\n--- single ---\n%s\n--- merged ---\n%s", a.String(), b.String())
	}

	var aj, bj bytes.Buffer
	if err := single.Report().WriteJSON(&aj); err != nil {
		t.Fatal(err)
	}
	if err := merged.Report().WriteJSON(&bj); err != nil {
		t.Fatal(err)
	}
	if aj.String() != bj.String() {
		t.Fatal("merged JSON report differs from single-pass")
	}
}

type shardRouter struct {
	route  func(*telemetry.Event) int
	shards []*Analyzer
}

func (r *shardRouter) Enabled() bool           { return true }
func (r *shardRouter) Emit(e *telemetry.Event) { r.shards[r.route(e)].Emit(e) }

// ReadStream must reproduce the live-tap analysis exactly: encode the
// synthetic trace to JSONL, decode-and-analyze, compare reports.
func TestReadStreamMatchesLiveTap(t *testing.T) {
	var jsonl bytes.Buffer
	rec := telemetry.NewRecorder(&jsonl)
	synthTrace(rec)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	fromFile, err := ReadStream(bytes.NewReader(jsonl.Bytes()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	fromFile.Finalize()

	live := New(Config{})
	synthTrace(live)
	live.Finalize()

	var a, b bytes.Buffer
	if err := fromFile.Report().WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := live.Report().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("file analysis differs from live tap:\n--- file ---\n%s\n--- live ---\n%s", a.String(), b.String())
	}
}

func TestRegisterFlowNames(t *testing.T) {
	a := New(Config{})
	a.RegisterFlow(0, "c-libra")
	synthTrace(a)
	a.RegisterFlow(1, "rl-libra")
	a.Finalize()
	r := a.Report()
	if r.Flows[0].Name != "c-libra" || r.Flows[1].Name != "rl-libra" {
		t.Fatalf("names = %q/%q", r.Flows[0].Name, r.Flows[1].Name)
	}
	var txt bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "flow 0 (c-libra)") {
		t.Fatalf("text report missing flow name:\n%s", txt.String())
	}
}

func TestEmptyAnalyzer(t *testing.T) {
	a := New(Config{})
	a.Finalize()
	r := a.Report()
	if r.Events != 0 || len(r.Flows) != 0 {
		t.Fatalf("empty analyzer reported %d events, %d flows", r.Events, len(r.Flows))
	}
	var txt, js bytes.Buffer
	if err := r.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
}

// Per-link attribution: labelled link events populate Report.Links
// (sorted by label) alongside the aggregate Link view; unlabelled
// traces leave Links empty so pre-topology reports are unchanged.
func TestPerLinkAttribution(t *testing.T) {
	a := New(Config{})
	emit := func(e telemetry.Event) { a.Emit(&e) }
	emit(telemetry.Event{T: 1e6, Type: telemetry.TypeQueue, Link: "h0", Flow: -1, Queue: 1000, Rate: 12e6})
	emit(telemetry.Event{T: 2e6, Type: telemetry.TypeQueue, Link: "h1", Flow: -1, Queue: 9000, Rate: 6e6})
	emit(telemetry.Event{T: 3e6, Type: telemetry.TypeDrop, Link: "h1", Flow: 0, Seq: 7, Bytes: 1500, Reason: "tail"})
	emit(telemetry.Event{T: 4e6, Type: telemetry.TypeDrop, Link: "h1", Flow: 0, Seq: 9, Bytes: 1500, Reason: "aqm"})
	emit(telemetry.Event{T: 5e6, Type: telemetry.TypeFault, Link: "h0", Flow: -1, Reason: telemetry.FaultBlackoutStart})
	a.Finalize()
	r := a.Report()

	if len(r.Links) != 2 || r.Links[0].Label != "h0" || r.Links[1].Label != "h1" {
		t.Fatalf("Links = %+v, want h0,h1 sorted", r.Links)
	}
	h1 := r.Links[1]
	if h1.Drops["tail"] != 1 || h1.Drops["aqm"] != 1 || h1.DropBytes != 3000 {
		t.Errorf("h1 drops = %v (%d bytes), want tail 1 aqm 1 (3000 bytes)", h1.Drops, h1.DropBytes)
	}
	if r.Links[0].Blackouts != 1 || r.Links[1].Blackouts != 0 {
		t.Errorf("blackout attribution wrong: h0=%d h1=%d", r.Links[0].Blackouts, r.Links[1].Blackouts)
	}
	// The aggregate view still sees everything.
	if r.Link.Drops["tail"] != 1 || r.Link.DropBytes != 3000 || r.Link.Blackouts != 1 {
		t.Errorf("aggregate link view lost events: %+v", r.Link)
	}
	if r.Link.QueueBytes.N != 2 || r.Links[0].QueueBytes.N != 1 {
		t.Errorf("queue sample counts: aggregate %d, h0 %d", r.Link.QueueBytes.N, r.Links[0].QueueBytes.N)
	}

	// Merging a shard with overlapping and new labels adds exactly.
	b := New(Config{})
	emit2 := func(e telemetry.Event) { b.Emit(&e) }
	emit2(telemetry.Event{T: 6e6, Type: telemetry.TypeDrop, Link: "h1", Flow: 1, Bytes: 1500, Reason: "tail"})
	emit2(telemetry.Event{T: 7e6, Type: telemetry.TypeQueue, Link: "h2", Flow: -1, Queue: 50})
	b.Finalize()
	a.Merge(b)
	r = a.Report()
	if len(r.Links) != 3 || r.Links[2].Label != "h2" {
		t.Fatalf("merged Links = %d entries, want 3 with h2 last", len(r.Links))
	}
	if r.Links[1].Drops["tail"] != 2 {
		t.Errorf("merged h1 tail drops = %d, want 2", r.Links[1].Drops["tail"])
	}

	// Text report gains a per-link section only when labels exist.
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "per-link attribution:") {
		t.Error("text report missing per-link attribution section")
	}
	empty := New(Config{})
	empty.Emit(&telemetry.Event{T: 1e6, Type: telemetry.TypeQueue, Flow: -1, Queue: 10})
	var ebuf bytes.Buffer
	if err := empty.Report().WriteText(&ebuf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ebuf.String(), "per-link") {
		t.Error("unlabelled trace grew a per-link section")
	}
}
