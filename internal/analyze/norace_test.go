//go:build !race

package analyze

// raceEnabled reports that the race detector is instrumenting this
// build; timing budgets are skipped under its overhead.
const raceEnabled = false
