// Package analyze is the streaming trace-analytics engine: it
// consumes telemetry event streams — JSONL files or a live Tracer tap
// — in a single pass with bounded memory, reconstructs per-flow
// control-cycle timelines, and turns the raw firehose into the
// answers the paper's evaluation asks for: winner histograms and
// early-exit rates (Fig. 17), per-cycle utility decomposition into
// the Eq. 1 terms, stage-duration attribution, streaming rate/RTT/
// queue percentiles, windowed Jain fairness across flows, and anomaly
// flags (post-blackout rate collapse, no-ACK streaks, utility
// regressions).
//
// Memory discipline: nothing is retained per event. State is O(flows)
// sketches and counters plus O(windows × flows) fairness accumulators
// — a few KB per flow for arbitrarily long traces — and the steady-
// state feed path performs no allocation (guarded by TestFeedBudget).
//
// Determinism: analyses merge (Merge) by pure count/bucket addition
// in caller-fixed order, so a multi-file analysis produces
// byte-identical reports at any worker count, matching the sweep
// engine's contract.
package analyze

import (
	"io"
	"math"
	"sync"
	"time"

	"libra/internal/stats"
	"libra/internal/telemetry"
	"libra/internal/utility"
)

// Config parameterises an Analyzer.
type Config struct {
	// Window is the Jain-fairness window width (default 1s).
	Window time.Duration
	// Util holds the Eq. 1 constants used to decompose the winner's
	// utility into throughput / delay-penalty / loss-penalty terms
	// (default utility.Default(); must match the run's utility for the
	// decomposition to reconstruct the traced u_* values).
	Util utility.Libra
	// RecoveryWindow bounds how long after an outage ends a flow has to
	// regain half its pre-outage base rate before the rate-collapse
	// anomaly fires (default 10s).
	RecoveryWindow time.Duration
	// OnAnomaly, when set, fires the moment a detector trips: reasons
	// are the telemetry Anomaly* constants (rate_collapse,
	// no_ack_streak, utility_regression). It is invoked on the feeding
	// goroutine with the analyzer lock held, so implementations must
	// not call back into the analyzer; the CLIs wire it to the flight
	// recorder's TriggerDump.
	OnAnomaly func(flow int, t int64, reason string)
	// SLOs are the per-profile objectives evaluated per fairness
	// window. Nil selects DefaultSLOs(); an empty non-nil slice
	// disables SLO tracking. Shards being merged must share the same
	// spec list (like Window).
	SLOs []SLOSpec
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.Util == (utility.Libra{}) {
		c.Util = utility.Default()
	}
	if c.RecoveryWindow <= 0 {
		c.RecoveryWindow = 10 * time.Second
	}
	if c.SLOs == nil {
		c.SLOs = DefaultSLOs()
	}
	return c
}

// Winner indices into the per-flow win counters (mirrors
// core.Candidate's string order).
const (
	winPrev = iota
	winCl
	winRl
	nWinners
)

// winnerNames is the canonical reporting order.
var winnerNames = [nWinners]string{"x_prev", "x_cl", "x_rl"}

func winnerIndex(s string) int {
	switch s {
	case "x_prev":
		return winPrev
	case "x_cl":
		return winCl
	case "x_rl":
		return winRl
	}
	return -1
}

// Stage indices for duration attribution (mirrors core.Stage strings).
const (
	stExplore = iota
	stEvalFirst
	stEvalSecond
	stExploit
	nStages
)

var stageNames = [nStages]string{"explore", "eval-1", "eval-2", "exploit"}

func stageIndex(s string) int {
	switch s {
	case "explore":
		return stExplore
	case "eval-1":
		return stEvalFirst
	case "eval-2":
		return stEvalSecond
	case "exploit":
		return stExploit
	}
	return -1
}

// flowState is the bounded per-flow accumulator.
type flowState struct {
	id   int
	name string
	// profile is the utility-profile label bound by a TypeProfile
	// event; rttSpecs indexes the RTT-based SLO specs that apply.
	profile  string
	rttSpecs []int
	// firstLink pins the flow's ingress hop: multi-hop streams
	// re-enqueue the same packet at every hop, so send accounting and
	// fairness windows count only events on the first link the flow was
	// seen on (every hop for single-bottleneck traces, whose label is
	// empty everywhere).
	firstLink     string
	haveFirstLink bool

	events int64

	// Stage-duration attribution: each stage event closes the previous
	// stage. A final partial stage stays unattributed.
	lastStage  int // -1 before the first stage event
	lastStageT int64
	stageNs    [nStages]int64

	// Control-cycle reconstruction.
	cycleStartT    int64
	haveCycleStart bool
	cycles         int64 // decision + no_ack
	decided        int64
	skipped        int64
	earlyExits     int64
	wins           [nWinners]int64

	// Winner-utility decomposition (Eq. 1 terms), per decided cycle
	// that carried the thr/grad/loss triple.
	decompCycles                    int64
	uSum, thrSum, delaySum, lossSum float64

	// Streaming percentile sketches.
	rateMbps   *stats.Sketch // applied rate at each stage entry
	rttMs      *stats.Sketch // smoothed RTT at each cycle decision
	cycleMs    *stats.Sketch // control-cycle length
	queueBytes *stats.Sketch // occupancy after each of this flow's enqueues

	sentBytes int64
	drops     int64

	// Anomaly state. preOutageRate snapshots the base rate when a
	// no-ACK streak begins; a "recover" marker arms the recovery watch.
	noAckStreak    int64
	maxNoAckStreak int64
	noAckEpisodes  int64
	decays         int64
	lastXPrev      float64
	preOutageRate  float64
	watching       bool
	watchDeadline  int64
	recoveryMax    float64
	collapses      int64

	// Utility-regression EWMA over winner utilities.
	uEwma           float64
	ewmaInit        bool
	regressStreak   int64
	regressedCycles int64
	regressions     int64
}

// linkState aggregates the link-level (flow -1) events. The analyzer
// keeps one aggregate instance fed by every link event (the
// single-bottleneck view) plus one per labelled link in a multi-hop
// trace, so drops and queueing attribute to the hop that caused them.
type linkState struct {
	queueBytes *stats.Sketch
	capMbps    *stats.Sketch
	drops      map[string]int64
	dropBytes  int64
	faultWin   int64
	faultPkt   int64
	blackouts  int64
}

func newLinkState() linkState {
	return linkState{
		queueBytes: stats.NewSketch(0),
		capMbps:    stats.NewSketch(0),
		drops:      make(map[string]int64, 8),
	}
}

// window accumulates per-flow bytes enqueued inside one fairness
// window.
type window struct {
	bytes map[int]int64
}

// Analyzer is the engine. It implements telemetry.Tracer so it can
// tap a live event stream; Emit is mutex-guarded because the live
// dashboard reads snapshots concurrently with the (single-threaded)
// emitting simulation.
type Analyzer struct {
	mu     sync.Mutex
	cfg    Config
	events int64
	byType map[telemetry.Type]int64
	flows  map[int]*flowState
	link   linkState
	links  map[string]*linkState // per labelled link, multi-hop traces only
	wins   map[int64]*window
	slo    []map[int64]*sloWin // per RTT-based spec, by window index
	lastT  int64
}

// New returns an empty analyzer.
func New(cfg Config) *Analyzer {
	a := &Analyzer{
		cfg:    cfg.withDefaults(),
		byType: make(map[telemetry.Type]int64, 16),
		flows:  make(map[int]*flowState, 8),
		link:   newLinkState(),
		links:  make(map[string]*linkState, 4),
		wins:   make(map[int64]*window, 64),
	}
	a.slo = make([]map[int64]*sloWin, len(a.cfg.SLOs))
	for i := range a.slo {
		a.slo[i] = make(map[int64]*sloWin, 16)
	}
	return a
}

// Enabled implements telemetry.Tracer.
func (a *Analyzer) Enabled() bool { return true }

// Emit implements telemetry.Tracer: folds one event into the
// analysis. The pointee is only read during the call.
func (a *Analyzer) Emit(e *telemetry.Event) {
	a.mu.Lock()
	a.feed(e)
	a.mu.Unlock()
}

// RegisterFlow labels a flow id (e.g. with its controller name) for
// reports and the live dashboard; safe before or after the flow's
// first event.
func (a *Analyzer) RegisterFlow(id int, name string) {
	a.mu.Lock()
	a.flow(id).name = name
	a.mu.Unlock()
}

// flow returns (creating on first sight) the state for a flow id.
// Callers hold a.mu.
func (a *Analyzer) flow(id int) *flowState {
	fs, ok := a.flows[id]
	if !ok {
		fs = &flowState{
			id:         id,
			lastStage:  -1,
			rateMbps:   stats.NewSketch(0),
			rttMs:      stats.NewSketch(0),
			cycleMs:    stats.NewSketch(0),
			queueBytes: stats.NewSketch(0),
		}
		a.flows[id] = fs
	}
	return fs
}

// linkFor returns (creating on first sight) the per-label link state.
// Callers hold a.mu; label must be non-empty.
func (a *Analyzer) linkFor(label string) *linkState {
	ls, ok := a.links[label]
	if !ok {
		ls = &linkState{}
		*ls = newLinkState()
		a.links[label] = ls
	}
	return ls
}

// feed is the single-pass state update. Callers hold a.mu.
func (a *Analyzer) feed(e *telemetry.Event) {
	a.events++
	a.byType[e.Type]++
	if e.T > a.lastT {
		a.lastT = e.T
	}
	switch e.Type {
	case telemetry.TypeStage:
		fs := a.flow(e.Flow)
		fs.events++
		if si := stageIndex(e.Stage); si >= 0 {
			if fs.lastStage >= 0 && e.T >= fs.lastStageT {
				fs.stageNs[fs.lastStage] += e.T - fs.lastStageT
			}
			fs.lastStage = si
			fs.lastStageT = e.T
			if si == stExplore && !fs.haveCycleStart {
				fs.cycleStartT = e.T
				fs.haveCycleStart = true
			}
		}
		if e.Rate > 0 {
			fs.rateMbps.Add(e.Rate * 8 / 1e6)
		}
	case telemetry.TypeEarlyExit:
		fs := a.flow(e.Flow)
		fs.events++
		fs.earlyExits++
	case telemetry.TypeDecision:
		a.feedDecision(e)
	case telemetry.TypeNoAck:
		a.feedNoAck(e)
	case telemetry.TypeEnqueue:
		fs := a.flow(e.Flow)
		fs.events++
		fs.queueBytes.Add(float64(e.Queue))
		if !fs.haveFirstLink {
			fs.firstLink, fs.haveFirstLink = e.Link, true
		}
		if e.Link != fs.firstLink {
			break // downstream hop of a packet already counted
		}
		fs.sentBytes += e.Bytes
		idx := e.T / int64(a.cfg.Window)
		w, ok := a.wins[idx]
		if !ok {
			w = &window{bytes: make(map[int]int64, 4)}
			a.wins[idx] = w
		}
		w.bytes[e.Flow] += e.Bytes
	case telemetry.TypeDrop:
		a.link.drops[e.Reason]++
		a.link.dropBytes += e.Bytes
		if e.Link != "" {
			ls := a.linkFor(e.Link)
			ls.drops[e.Reason]++
			ls.dropBytes += e.Bytes
		}
		if e.Flow >= 0 {
			fs := a.flow(e.Flow)
			fs.events++
			fs.drops++
		}
	case telemetry.TypeQueue:
		a.link.queueBytes.Add(float64(e.Queue))
		if e.Rate > 0 {
			a.link.capMbps.Add(e.Rate * 8 / 1e6)
		}
		if e.Link != "" {
			ls := a.linkFor(e.Link)
			ls.queueBytes.Add(float64(e.Queue))
			if e.Rate > 0 {
				ls.capMbps.Add(e.Rate * 8 / 1e6)
			}
		}
	case telemetry.TypeFault:
		feedFault(&a.link, e.Reason)
		if e.Link != "" {
			feedFault(a.linkFor(e.Link), e.Reason)
		}
	case telemetry.TypeAction:
		fs := a.flow(e.Flow)
		fs.events++
	case telemetry.TypeProfile:
		a.bindProfile(a.flow(e.Flow), e.Name)
	}
}

// feedFault classifies one fault event into a link state's counters.
func feedFault(ls *linkState, reason string) {
	switch reason {
	case telemetry.FaultBlackoutStart:
		ls.faultWin++
		ls.blackouts++
	case telemetry.FaultBlackoutEnd, telemetry.FaultFlapStart, telemetry.FaultFlapEnd:
		ls.faultWin++
	default: // reorder / dup / spike — per-packet mutations
		ls.faultPkt++
	}
}

// feedDecision folds one end-of-cycle argmax event in.
func (a *Analyzer) feedDecision(e *telemetry.Event) {
	fs := a.flow(e.Flow)
	fs.events++
	fs.cycles++
	fs.decided++
	fs.noAckStreak = 0

	wi := winnerIndex(e.Winner)
	if wi >= 0 {
		fs.wins[wi]++
	}

	// Cycle length: decision closes the cycle; the next one starts at
	// the same instant (startCycle emits its explore stage event at the
	// decision timestamp).
	if fs.haveCycleStart && e.T >= fs.cycleStartT {
		fs.cycleMs.Add(float64(e.T-fs.cycleStartT) / 1e6)
	}
	fs.cycleStartT = e.T
	fs.haveCycleStart = true

	if e.RTT > 0 {
		fs.rttMs.Add(float64(e.RTT) / 1e6)
		a.feedSLORtt(fs, e.T, float64(e.RTT)/1e6)
	}

	// Winner utility and its Eq. 1 decomposition. The traced triple is
	// present (thr>0) for every winner scored on a real interval.
	var u float64
	switch wi {
	case winPrev:
		u = e.UPrev
	case winCl:
		u = e.UCl
	case winRl:
		u = e.URl
	}
	if e.Thr > 0 {
		fs.decompCycles++
		fs.uSum += u
		fs.thrSum += a.cfg.Util.Alpha * math.Pow(e.Thr, a.cfg.Util.T)
		fs.delaySum += a.cfg.Util.Beta * e.Thr * math.Max(0, e.Grad)
		fs.lossSum += a.cfg.Util.Gamma * e.Thr * math.Max(0, e.Loss)
	}

	// Utility-regression detector: a decided cycle whose winner
	// utility falls under a quarter of the (positive) running EWMA is
	// regressing; three consecutive regressing cycles flag one
	// regression episode.
	if !fs.ewmaInit {
		fs.uEwma, fs.ewmaInit = u, true
	} else {
		if fs.uEwma > 0 && u < 0.25*fs.uEwma {
			fs.regressedCycles++
			fs.regressStreak++
			if fs.regressStreak == 3 {
				fs.regressions++
				a.fireAnomaly(fs.id, e.T, telemetry.AnomalyRegression)
			}
		} else {
			fs.regressStreak = 0
		}
		fs.uEwma = 0.9*fs.uEwma + 0.1*u
	}

	// Post-outage recovery watch.
	fs.lastXPrev = e.XPrev
	if fs.watching {
		if e.XPrev > fs.recoveryMax {
			fs.recoveryMax = e.XPrev
		}
		if e.T >= fs.watchDeadline {
			a.closeWatch(fs, e.T)
		}
	}
}

// feedNoAck folds one no-feedback cycle (or the outage-recovery
// marker) in.
func (a *Analyzer) feedNoAck(e *telemetry.Event) {
	fs := a.flow(e.Flow)
	fs.events++
	if e.Reason == "recover" {
		// Outage ended: watch whether the base rate regains half its
		// pre-outage level within the recovery window.
		fs.noAckStreak = 0
		if fs.preOutageRate > 0 {
			fs.watching = true
			fs.watchDeadline = e.T + int64(a.cfg.RecoveryWindow)
			fs.recoveryMax = e.XPrev
		}
		return
	}
	fs.cycles++
	fs.skipped++
	if fs.noAckStreak == 0 {
		fs.preOutageRate = fs.lastXPrev
	}
	fs.noAckStreak++
	if fs.noAckStreak > fs.maxNoAckStreak {
		fs.maxNoAckStreak = fs.noAckStreak
	}
	if fs.noAckStreak == 2 {
		// Same threshold as the report flag: two consecutive silent
		// cycles is where the core watchdog starts treating the link as
		// down. Fires once per streak.
		fs.noAckEpisodes++
		a.fireAnomaly(fs.id, e.T, telemetry.AnomalyNoAckStreak)
	}
	if e.Reason == "decay" {
		fs.decays++
	}
	if fs.haveCycleStart && e.T >= fs.cycleStartT {
		fs.cycleMs.Add(float64(e.T-fs.cycleStartT) / 1e6)
	}
	fs.cycleStartT = e.T
	fs.haveCycleStart = true
	if e.RTT > 0 {
		fs.rttMs.Add(float64(e.RTT) / 1e6)
		a.feedSLORtt(fs, e.T, float64(e.RTT)/1e6)
	}
}

// closeWatch resolves a pending post-outage recovery watch. Callers
// hold a.mu; t is the trace time the watch resolved at.
func (a *Analyzer) closeWatch(fs *flowState, t int64) {
	if fs.recoveryMax < 0.5*fs.preOutageRate {
		fs.collapses++
		a.fireAnomaly(fs.id, t, telemetry.AnomalyCollapse)
	}
	fs.watching = false
}

// fireAnomaly invokes the configured anomaly callback, if any.
// Callers hold a.mu.
func (a *Analyzer) fireAnomaly(flow int, t int64, reason string) {
	if a.cfg.OnAnomaly != nil {
		a.cfg.OnAnomaly(flow, t, reason)
	}
}

// Finalize resolves state that only settles at end of stream: pending
// post-outage recovery watches are evaluated with whatever the flow
// managed before the trace ended. Call once after the last event and
// before Merge/Report; live taps may skip it (pending watches simply
// have not fired yet).
func (a *Analyzer) Finalize() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, fs := range a.flows {
		if fs.watching {
			a.closeWatch(fs, a.lastT)
		}
	}
}

// Merge folds b into a (b is left untouched but must not be feeding
// concurrently). Counts and sums add, sketches merge bucket-wise,
// fairness windows union by window index, max streaks take the max.
// Order-sensitive detector state (EWMAs, open stages, pending
// watches) does not carry across shards — Finalize each shard first.
// Merging in a fixed shard order yields byte-identical reports at any
// worker count.
func (a *Analyzer) Merge(b *Analyzer) {
	if b == nil || b == a {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()

	a.events += b.events
	for t, n := range b.byType {
		a.byType[t] += n
	}
	if b.lastT > a.lastT {
		a.lastT = b.lastT
	}
	for id, bf := range b.flows {
		af := a.flow(id)
		if af.name == "" {
			af.name = bf.name
		}
		if af.profile == "" {
			a.bindProfile(af, bf.profile)
		}
		if !af.haveFirstLink {
			af.firstLink, af.haveFirstLink = bf.firstLink, bf.haveFirstLink
		}
		af.events += bf.events
		for i := range af.stageNs {
			af.stageNs[i] += bf.stageNs[i]
		}
		af.cycles += bf.cycles
		af.decided += bf.decided
		af.skipped += bf.skipped
		af.earlyExits += bf.earlyExits
		for i := range af.wins {
			af.wins[i] += bf.wins[i]
		}
		af.decompCycles += bf.decompCycles
		af.uSum += bf.uSum
		af.thrSum += bf.thrSum
		af.delaySum += bf.delaySum
		af.lossSum += bf.lossSum
		af.rateMbps.Merge(bf.rateMbps)
		af.rttMs.Merge(bf.rttMs)
		af.cycleMs.Merge(bf.cycleMs)
		af.queueBytes.Merge(bf.queueBytes)
		af.sentBytes += bf.sentBytes
		af.drops += bf.drops
		if bf.maxNoAckStreak > af.maxNoAckStreak {
			af.maxNoAckStreak = bf.maxNoAckStreak
		}
		af.noAckEpisodes += bf.noAckEpisodes
		af.decays += bf.decays
		af.collapses += bf.collapses
		af.regressions += bf.regressions
		af.regressedCycles += bf.regressedCycles
	}
	a.link.queueBytes.Merge(b.link.queueBytes)
	a.link.capMbps.Merge(b.link.capMbps)
	for r, n := range b.link.drops {
		a.link.drops[r] += n
	}
	a.link.dropBytes += b.link.dropBytes
	a.link.faultWin += b.link.faultWin
	a.link.faultPkt += b.link.faultPkt
	a.link.blackouts += b.link.blackouts
	for label, bl := range b.links {
		al := a.linkFor(label)
		al.queueBytes.Merge(bl.queueBytes)
		al.capMbps.Merge(bl.capMbps)
		for r, n := range bl.drops {
			al.drops[r] += n
		}
		al.dropBytes += bl.dropBytes
		al.faultWin += bl.faultWin
		al.faultPkt += bl.faultPkt
		al.blackouts += bl.blackouts
	}
	for idx, bw := range b.wins {
		aw, ok := a.wins[idx]
		if !ok {
			aw = &window{bytes: make(map[int]int64, len(bw.bytes))}
			a.wins[idx] = aw
		}
		for f, n := range bw.bytes {
			aw.bytes[f] += n
		}
	}
	for si := range b.slo {
		if si >= len(a.slo) {
			break // differing configs; keep a's spec view
		}
		for idx, bw := range b.slo[si] {
			aw, ok := a.slo[si][idx]
			if !ok {
				aw = &sloWin{}
				a.slo[si][idx] = aw
			}
			aw.n += bw.n
			aw.over += bw.over
			aw.sum += bw.sum
		}
	}
}

// ReadStream decodes a JSONL event stream and feeds every event into
// a fresh analyzer (not finalized — callers analyzing a complete file
// should call Finalize).
func ReadStream(r io.Reader, cfg Config) (*Analyzer, error) {
	a := New(cfg)
	d := telemetry.NewDecoder(r)
	for {
		e, err := d.Next()
		if err == io.EOF {
			return a, nil
		}
		if err != nil {
			return a, err
		}
		a.Emit(&e)
	}
}
