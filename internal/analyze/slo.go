package analyze

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"libra/internal/stats"
)

// SLO metrics the evaluator understands. RTT metrics accumulate on the
// feed path (per-spec windowed counters, mergeable additively);
// throughput metrics evaluate at report time from the fairness
// windows' per-flow byte counts.
const (
	SLOP95RTTMs    = "p95_rtt_ms"
	SLOP99RTTMs    = "p99_rtt_ms"
	SLOMeanRTTMs   = "mean_rtt_ms"
	SLOMeanThrMbps = "mean_thr_mbps"
)

// SLOSpec is one declarative per-profile service-level objective,
// evaluated per fairness window: "did profile P keep metric M within
// threshold X in this window?". Attainment is the fraction of
// evaluated windows that met the objective.
type SLOSpec struct {
	// Profile names the utility profile the objective applies to
	// (flows bound via TypeProfile events).
	Profile string `json:"profile"`
	// Metric is one of the SLO* metric constants.
	Metric string `json:"metric"`
	// Op is "<=" (RTT metrics) or ">=" (throughput metrics).
	Op string `json:"op"`
	// Threshold is in the metric's unit (ms or Mbit/s).
	Threshold float64 `json:"threshold"`
}

// String renders the spec in the parseable form
// "profile:metric<=threshold".
func (s SLOSpec) String() string {
	return fmt.Sprintf("%s:%s%s%g", s.Profile, s.Metric, s.Op, s.Threshold)
}

// rttBased reports whether the spec accumulates RTT samples on the
// feed path.
func (s SLOSpec) rttBased() bool {
	switch s.Metric {
	case SLOP95RTTMs, SLOP99RTTMs, SLOMeanRTTMs:
		return true
	}
	return false
}

// ParseSLO parses "profile:metric<=threshold" / "profile:metric>=threshold".
func ParseSLO(spec string) (SLOSpec, error) {
	fail := func() (SLOSpec, error) {
		return SLOSpec{}, fmt.Errorf(
			"analyze: bad SLO %q (want profile:metric<=X or profile:metric>=X; metrics: %s, %s, %s, %s)",
			spec, SLOP95RTTMs, SLOP99RTTMs, SLOMeanRTTMs, SLOMeanThrMbps)
	}
	i := strings.Index(spec, ":")
	if i <= 0 {
		return fail()
	}
	out := SLOSpec{Profile: strings.TrimSpace(spec[:i])}
	rest := spec[i+1:]
	op := "<="
	j := strings.Index(rest, "<=")
	if j < 0 {
		op = ">="
		j = strings.Index(rest, ">=")
	}
	if j <= 0 {
		return fail()
	}
	out.Metric = strings.TrimSpace(rest[:j])
	out.Op = op
	v, err := strconv.ParseFloat(strings.TrimSpace(rest[j+2:]), 64)
	if err != nil {
		return fail()
	}
	out.Threshold = v
	switch out.Metric {
	case SLOP95RTTMs, SLOP99RTTMs, SLOMeanRTTMs:
		if op != "<=" {
			return fail()
		}
	case SLOMeanThrMbps:
		if op != ">=" {
			return fail()
		}
	default:
		return fail()
	}
	return out, nil
}

// ParseSLOs parses a comma-separated SLO list ("" = nil).
func ParseSLOs(specs string) ([]SLOSpec, error) {
	if strings.TrimSpace(specs) == "" {
		return nil, nil
	}
	var out []SLOSpec
	for _, s := range strings.Split(specs, ",") {
		spec, err := ParseSLO(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
	}
	return out, nil
}

// DefaultSLOs are the paper-story objectives for the preset profiles:
// latency-sensitive profiles bound tail RTT, throughput-seeking
// profiles floor their mean rate.
func DefaultSLOs() []SLOSpec {
	return []SLOSpec{
		{Profile: "low-latency", Metric: SLOP95RTTMs, Op: "<=", Threshold: 100},
		{Profile: "video-call", Metric: SLOP95RTTMs, Op: "<=", Threshold: 150},
		{Profile: "bulk", Metric: SLOMeanThrMbps, Op: ">=", Threshold: 5},
		{Profile: "background", Metric: SLOMeanThrMbps, Op: ">=", Threshold: 0.5},
	}
}

// sloWin is one spec's accumulator for one fairness window: n RTT
// samples, how many exceeded the spec threshold, and their sum. All
// three merge additively, so windowed attainment is deterministic
// under sharded analysis.
type sloWin struct {
	n    int64
	over int64
	sum  float64
}

// feedSLORtt folds one RTT sample (ms, at trace time t) into every
// RTT-based spec bound to the flow's profile. Callers hold a.mu. Flows
// without a profile carry an empty spec list, so the common path adds
// nothing.
func (a *Analyzer) feedSLORtt(fs *flowState, t int64, ms float64) {
	for _, si := range fs.rttSpecs {
		idx := t / int64(a.cfg.Window)
		w, ok := a.slo[si][idx]
		if !ok {
			w = &sloWin{}
			a.slo[si][idx] = w
		}
		w.n++
		w.sum += ms
		if ms > a.cfg.SLOs[si].Threshold {
			w.over++
		}
	}
}

// bindProfile attaches a flow to a profile label and precomputes which
// RTT-based specs apply to it. Callers hold a.mu.
func (a *Analyzer) bindProfile(fs *flowState, profile string) {
	if profile == "" || fs.profile == profile {
		return
	}
	fs.profile = profile
	fs.rttSpecs = fs.rttSpecs[:0]
	for si, spec := range a.cfg.SLOs {
		if spec.rttBased() && spec.Profile == profile {
			fs.rttSpecs = append(fs.rttSpecs, si)
		}
	}
}

// violated reports whether one accumulated window breaks the spec.
// The tail checks are exceedance-fraction tests: a window meets
// "p95 <= X" iff at most 5% of its samples exceeded X — additive under
// merge, unlike a true windowed quantile.
func (s SLOSpec) violated(w *sloWin) bool {
	if w.n == 0 {
		return false
	}
	switch s.Metric {
	case SLOP95RTTMs:
		return float64(w.over) > 0.05*float64(w.n)
	case SLOP99RTTMs:
		return float64(w.over) > 0.01*float64(w.n)
	case SLOMeanRTTMs:
		return w.sum/float64(w.n) > s.Threshold
	}
	return false
}

// ProfileReport aggregates the flows bound to one utility profile.
type ProfileReport struct {
	Profile     string    `json:"profile"`
	Flows       []int     `json:"flows"`
	MeanThrMbps float64   `json:"mean_thr_mbps"` // per-flow mean over the whole trace
	RTTMs       Quantiles `json:"rtt_ms"`
}

// SLOReport is one spec's windowed attainment.
type SLOReport struct {
	Spec       SLOSpec `json:"spec"`
	Windows    int     `json:"windows"`
	Met        int     `json:"met"`
	Attainment float64 `json:"attainment"` // met / windows
	// FirstViolationMs is the start of the earliest violating window,
	// -1 when the objective held everywhere.
	FirstViolationMs float64 `json:"first_violation_ms"`
}

// ProfileFairness is the cross-profile Jain index over per-profile
// mean throughput — the "does one preference starve another?" number.
type ProfileFairness struct {
	Profiles int     `json:"profiles"`
	Jain     float64 `json:"jain"`
}

// profileIDs groups flow IDs by profile, profiles sorted by name.
// Callers hold a.mu.
func (a *Analyzer) profileIDs() (names []string, members map[string][]int) {
	members = make(map[string][]int)
	ids := make([]int, 0, len(a.flows))
	for id := range a.flows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if p := a.flows[id].profile; p != "" {
			members[p] = append(members[p], id)
		}
	}
	for p := range members {
		names = append(names, p)
	}
	sort.Strings(names)
	return names, members
}

// profileReports summarises every profile seen in the stream, plus the
// cross-profile fairness index. Callers hold a.mu.
func (a *Analyzer) profileReports() ([]ProfileReport, *ProfileFairness) {
	names, members := a.profileIDs()
	if len(names) == 0 {
		return nil, nil
	}
	spanSec := float64(a.lastT) / 1e9
	out := make([]ProfileReport, 0, len(names))
	thrs := make([]float64, 0, len(names))
	for _, p := range names {
		pr := ProfileReport{Profile: p, Flows: members[p]}
		rtt := stats.NewSketch(0)
		var bytes int64
		for _, id := range members[p] {
			fs := a.flows[id]
			rtt.Merge(fs.rttMs)
			bytes += fs.sentBytes
		}
		pr.RTTMs = QuantilesOf(rtt)
		if spanSec > 0 && len(members[p]) > 0 {
			pr.MeanThrMbps = float64(bytes) * 8 / 1e6 / spanSec / float64(len(members[p]))
		}
		thrs = append(thrs, pr.MeanThrMbps)
		out = append(out, pr)
	}
	pf := &ProfileFairness{Profiles: len(names)}
	if len(thrs) > 1 {
		pf.Jain = stats.JainIndex(thrs)
	} else {
		pf.Jain = 1
	}
	return out, pf
}

// sloReports evaluates every configured spec whose profile appears in
// the stream, in config order. Callers hold a.mu.
func (a *Analyzer) sloReports() []SLOReport {
	_, members := a.profileIDs()
	if len(members) == 0 {
		return nil
	}
	winSec := float64(a.cfg.Window) / 1e9
	winMs := float64(a.cfg.Window) / 1e6
	var out []SLOReport
	for si, spec := range a.cfg.SLOs {
		ids := members[spec.Profile]
		if len(ids) == 0 {
			continue
		}
		sr := SLOReport{Spec: spec, FirstViolationMs: -1}
		if spec.rttBased() {
			idxs := make([]int64, 0, len(a.slo[si]))
			for idx := range a.slo[si] {
				idxs = append(idxs, idx)
			}
			sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
			for _, idx := range idxs {
				w := a.slo[si][idx]
				if w.n == 0 {
					continue
				}
				sr.Windows++
				if spec.violated(w) {
					if sr.FirstViolationMs < 0 {
						sr.FirstViolationMs = float64(idx) * winMs
					}
				} else {
					sr.Met++
				}
			}
		} else {
			// Throughput objective: per window, the profile's per-flow
			// mean enqueue rate must clear the floor. Windows with no
			// traffic anywhere are dead air (post-run tail), not
			// violations; windows where others sent and this profile
			// didn't count against it.
			idxs := make([]int64, 0, len(a.wins))
			for idx := range a.wins {
				idxs = append(idxs, idx)
			}
			sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
			for _, idx := range idxs {
				w := a.wins[idx]
				var total, mine int64
				for f, n := range w.bytes {
					total += n
					for _, id := range ids {
						if f == id {
							mine += n
							break
						}
					}
				}
				if total == 0 {
					continue
				}
				sr.Windows++
				thr := float64(mine) * 8 / 1e6 / winSec / float64(len(ids))
				if thr < spec.Threshold {
					if sr.FirstViolationMs < 0 {
						sr.FirstViolationMs = float64(idx) * winMs
					}
				} else {
					sr.Met++
				}
			}
		}
		if sr.Windows > 0 {
			sr.Attainment = float64(sr.Met) / float64(sr.Windows)
		}
		out = append(out, sr)
	}
	return out
}
