package cliutil

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"libra/internal/analyze"
	"libra/internal/exp"
	"libra/internal/telemetry"
)

// dashMux assembles the same mux StartDashboard serves, minus the
// listener, fed with a tiny deterministic event stream so every
// endpoint has data.
func dashMux(t *testing.T) *http.ServeMux {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Gauge("libra_health_sim_wall_ratio", "test").Set(12.5)
	ts := telemetry.NewTSCollector(0, 0)
	a := analyze.New(analyze.Config{})
	for _, e := range []telemetry.Event{
		{T: 1e6, Type: telemetry.TypeProfile, Flow: 0, Name: "bulk"},
		{T: 2e6, Type: telemetry.TypeEnqueue, Flow: 0, Link: "l0", Seq: 1, Bytes: 1500, Queue: 1500},
		{T: 3e6, Type: telemetry.TypeQueue, Flow: -1, Link: "l0", Queue: 1500, Rate: 6e6},
		{T: 5e6, Type: telemetry.TypeDecision, Flow: 0, Winner: "x_prev", XPrev: 6e6, UPrev: 1.1, RTT: 40e6},
	} {
		ev := e
		ts.Emit(&ev)
		a.Emit(&ev)
	}
	topo, ok := exp.TopoPreset("parking-lot")
	if !ok {
		t.Fatal("parking-lot preset missing")
	}
	mux := DebugMux(reg, ts)
	analyze.ServeLive(mux, a)
	mux.Handle("/topo", getOnly(topoHandler(ts, topo)))
	return mux
}

// TestEndpointShapes pins the JSON shape of every dashboard API: the
// fields the live page depends on must decode and be present.
func TestEndpointShapes(t *testing.T) {
	mux := dashMux(t)
	get := func(path string) map[string]any {
		t.Helper()
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, w.Code)
		}
		if ct := w.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s Content-Type = %q, want application/json", path, ct)
		}
		out := map[string]any{}
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", path, err, w.Body.String())
		}
		return out
	}

	health := get("/health")
	if health["sim_wall_ratio"] != 12.5 {
		t.Errorf("/health sim_wall_ratio = %v, want 12.5", health["sim_wall_ratio"])
	}

	flows := get("/flows")
	for _, key := range []string{"flows", "events", "span_ms", "link"} {
		if _, ok := flows[key]; !ok {
			t.Errorf("/flows missing %q:\n%v", key, flows)
		}
	}

	series := get("/timeseries")
	if _, ok := series["base_bucket_ms"]; !ok {
		t.Errorf("/timeseries missing base_bucket_ms")
	}
	names := map[string]bool{}
	for _, s := range series["series"].([]any) {
		sm := s.(map[string]any)
		names[sm["name"].(string)] = true
		for _, key := range []string{"kind", "bucket_ms", "points"} {
			if _, ok := sm[key]; !ok {
				t.Errorf("/timeseries series %v missing %q", sm["name"], key)
			}
		}
	}
	for _, want := range []string{
		`link_queue_bytes{link="l0"}`,
		`flow_rtt_ms{flow="0"}`,
		`profile_rate_mbps{profile="bulk"}`,
	} {
		if !names[want] {
			t.Errorf("/timeseries missing series %q (have %v)", want, names)
		}
	}

	topo := get("/topo")
	if topo["name"] != "parking-lot" {
		t.Errorf("/topo name = %v, want parking-lot", topo["name"])
	}
	if n := len(topo["nodes"].([]any)); n == 0 {
		t.Error("/topo has no nodes")
	}
	links := topo["links"].([]any)
	if len(links) == 0 {
		t.Fatal("/topo has no links")
	}
	for _, key := range []string{"label", "from", "to", "utilization", "queue_bytes", "capacity_mbps"} {
		if _, ok := links[0].(map[string]any)[key]; !ok {
			t.Errorf("/topo link missing %q: %v", key, links[0])
		}
	}

	// /metrics must carry the exported series gauges after a scrape.
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{`libra_ts_link_queue_bytes{link="l0"}`, `libra_ts_flow_rtt_ms{flow="0"}`} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestEndpointErrors pins the failure surface: unknown paths 404, and
// the read-only JSON endpoints reject writes with 405.
func TestEndpointErrors(t *testing.T) {
	mux := dashMux(t)
	cases := []struct {
		method, path string
		want         int
	}{
		{"GET", "/nosuch", http.StatusNotFound},
		{"GET", "/flows/extra", http.StatusNotFound},
		{"POST", "/flows", http.StatusMethodNotAllowed},
		{"POST", "/timeseries", http.StatusMethodNotAllowed},
		{"POST", "/topo", http.StatusMethodNotAllowed},
		{"POST", "/health", http.StatusMethodNotAllowed},
		{"PUT", "/metrics", http.StatusMethodNotAllowed},
		{"DELETE", "/", http.StatusMethodNotAllowed},
		{"HEAD", "/timeseries", http.StatusOK},
	}
	for _, c := range cases {
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest(c.method, c.path, nil))
		if w.Code != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, w.Code, c.want)
		}
	}

	// Without a collector, /timeseries and /topo are absent (404 from
	// the dashboard catch-all), signalling the page to hide the map.
	reg := telemetry.NewRegistry()
	bare := DebugMux(reg, nil)
	analyze.ServeLive(bare, analyze.New(analyze.Config{}))
	for _, path := range []string{"/timeseries", "/topo"} {
		w := httptest.NewRecorder()
		bare.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != http.StatusNotFound {
			t.Errorf("GET %s without a collector = %d, want 404", path, w.Code)
		}
	}
}
