package cliutil

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"libra/internal/telemetry"
)

// The debug mux must carry the explicit pprof routes and /metrics —
// and nothing registered on http.DefaultServeMux.
func TestDebugMuxRoutes(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("c_total", "a counter").Add(3)
	mux := DebugMux(reg, nil)

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w
	}

	if w := get("/debug/pprof/"); w.Code != http.StatusOK {
		t.Errorf("GET /debug/pprof/ = %d, want 200", w.Code)
	}
	if w := get("/debug/pprof/goroutine?debug=1"); w.Code != http.StatusOK {
		t.Errorf("GET /debug/pprof/goroutine = %d, want 200", w.Code)
	}
	w := get("/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", w.Code)
	}
	if !strings.Contains(w.Body.String(), "c_total 3") {
		t.Errorf("/metrics missing counter:\n%s", w.Body.String())
	}

	// Isolation both ways: a route on the default mux must not appear
	// on the debug mux.
	http.DefaultServeMux.HandleFunc("/cliutil-test-leak", func(http.ResponseWriter, *http.Request) {})
	if w := get("/cliutil-test-leak"); w.Code == http.StatusOK {
		t.Error("default-mux route leaked into the debug mux")
	}
}

// DebugMux without a registry still serves pprof but not /metrics.
func TestDebugMuxNoRegistry(t *testing.T) {
	mux := DebugMux(nil, nil)
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code == http.StatusOK {
		t.Fatalf("GET /metrics without a registry = %d, want non-200", w.Code)
	}
}
