// Package cliutil holds the observability plumbing shared by the
// cmd/ binaries: JSONL trace sinks, metrics-snapshot export, and the
// pprof + /metrics debug server.
package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strings"
	"time"

	"libra/internal/analyze"
	"libra/internal/exp"
	"libra/internal/telemetry"
)

// OpenTracer opens a JSONL event sink at path. It returns a nil tracer
// (and a no-op closer) when path is empty, so callers can pass the
// result straight into configs. The closer flushes the tail and prints
// the event count.
func OpenTracer(path string) (telemetry.Tracer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	rec := telemetry.NewRecorder(f)
	return rec, func() error {
		if err := rec.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d events to %s\n", rec.Events(), path)
		return nil
	}, nil
}

// OpenFlight builds an always-on flight recorder dumping anomaly
// snapshots into dir (created if missing); counters register into reg
// when non-nil. Empty dir returns a nil recorder and a no-op closer,
// so callers can wire the result unconditionally. The closer reports
// how many dumps were written.
func OpenFlight(dir string, reg *telemetry.Registry) (*telemetry.FlightRecorder, func() error, error) {
	if dir == "" {
		return nil, func() error { return nil }, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	fl := telemetry.NewFlightRecorder(telemetry.FlightConfig{Dir: dir, Metrics: reg})
	return fl, func() error {
		if n := fl.Dumps(); n > 0 {
			fmt.Printf("flight recorder: %d dump(s) in %s\n", n, dir)
		}
		return fl.Err()
	}, nil
}

// FlightTap converts a possibly-nil flight recorder into a value safe
// to hand telemetry.Multi (a typed-nil would defeat its nil check).
func FlightTap(fl *telemetry.FlightRecorder) telemetry.Tracer {
	if fl == nil {
		return nil
	}
	return fl
}

// AnomalyTap returns a live analyzer tap that exists only to run the
// streaming anomaly detectors (rate collapse, no-ACK streaks, utility
// regression) and trigger flight dumps when one fires; nil when fl is
// nil. Compose it AFTER the flight recorder in telemetry.Multi so the
// triggering event is already in the ring when the dump is cut. The
// detectors are purely event-driven, so dump triggers inherit the
// event stream's worker-count independence.
func AnomalyTap(fl *telemetry.FlightRecorder) telemetry.Tracer {
	if fl == nil {
		return nil
	}
	return analyze.New(analyze.Config{
		OnAnomaly: func(flow int, t int64, reason string) {
			fl.TriggerDump(flow, t, reason)
		},
	})
}

// FlightFlag registers the shared -flight-out flag.
func FlightFlag() *string {
	return flag.String("flight-out", "",
		"directory for flight-recorder dumps on detected anomalies (empty = off)")
}

// StartHealth attaches a runtime health sampler to reg and samples
// once a second until the returned stop function runs (which takes a
// final sample). The sampler is returned for RunContext.Health wiring.
func StartHealth(reg *telemetry.Registry) (*telemetry.Health, func()) {
	h := telemetry.NewHealth(reg)
	return h, h.Start(time.Second)
}

// healthHandler serves the libra_health_* gauges as a flat JSON object
// for the dashboard's health line.
func healthHandler(reg *telemetry.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		snap := reg.Snapshot()
		out := make(map[string]float64, 8)
		for name, v := range snap.Gauges {
			if strings.HasPrefix(name, "libra_health_") {
				out[strings.TrimPrefix(name, "libra_health_")] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		_ = json.NewEncoder(w).Encode(out)
	})
}

// WriteMetrics exports a registry snapshot to path. Format "auto"
// derives from the extension: .json → JSON, anything else → Prometheus
// text exposition. Empty path is a no-op.
func WriteMetrics(reg *telemetry.Registry, path, format string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "json":
		return reg.WriteJSON(f)
	case "prom":
		return reg.WritePrometheus(f)
	case "auto":
		if strings.HasSuffix(path, ".json") {
			return reg.WriteJSON(f)
		}
		return reg.WritePrometheus(f)
	}
	return fmt.Errorf("unknown metrics format %q (want auto, json or prom)", format)
}

// getOnly rejects everything but GET/HEAD with 405 so the read-only
// JSON endpoints can't be POSTed to by accident.
func getOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// DebugMux returns a dedicated mux wired with the pprof handlers and,
// when reg is non-nil, the registry at /metrics. A non-nil ts adds
// /timeseries (the full downsampled-series snapshot as JSON) and
// refreshes the libra_ts_* gauges into reg on every /metrics scrape,
// so Prometheus always sees the latest buckets. Routes are explicit
// rather than inherited from http.DefaultServeMux, so importing this
// package never leaks debug handlers into an application's default
// mux (and nothing another package hangs on the default mux leaks
// into the debug server). Callers may add their own routes — the live
// flow dashboard does — before passing the mux to Serve.
func DebugMux(reg *telemetry.Registry, ts *telemetry.TSCollector) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		metrics := reg.Handler()
		if ts != nil {
			inner := metrics
			metrics = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				ts.ExportProm(reg)
				inner.ServeHTTP(w, r)
			})
		}
		mux.Handle("/metrics", getOnly(metrics))
		mux.Handle("/health", getOnly(healthHandler(reg)))
	}
	if ts != nil {
		mux.Handle("/timeseries", getOnly(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Cache-Control", "no-store")
			if err := ts.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})))
	}
	return mux
}

// TopoLinkView is one /topo link: the spec's geometry joined with the
// collector's live stats (zero-valued until traffic reaches the link).
type TopoLinkView struct {
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	telemetry.LinkLive
}

// TopoView is the /topo JSON body the dashboard weathermap renders.
type TopoView struct {
	Name  string         `json:"name,omitempty"`
	Nodes []string       `json:"nodes"`
	Links []TopoLinkView `json:"links"`
}

// BuildTopoView joins a topology spec with the collector's live link
// stats. A nil topo synthesises the two-node single-bottleneck shape
// so runs without -topo still get a (one-link) weathermap.
func BuildTopoView(ts *telemetry.TSCollector, topo *exp.TopoSpec) TopoView {
	live := map[string]telemetry.LinkLive{}
	for _, ll := range ts.LinksLive() {
		live[ll.Label] = ll
	}
	if topo == nil {
		v := TopoView{Nodes: []string{"src", "dst"}}
		labels := make([]string, 0, len(live))
		for label := range live {
			labels = append(labels, label)
		}
		sort.Strings(labels)
		for _, label := range labels {
			v.Links = append(v.Links, TopoLinkView{From: "src", To: "dst", LinkLive: live[label]})
		}
		return v
	}
	v := TopoView{Name: topo.Name, Nodes: topo.Nodes}
	for _, l := range topo.Links {
		lv := TopoLinkView{From: l.From, To: l.To}
		if ll, ok := live[l.Label]; ok {
			lv.LinkLive = ll
		} else {
			lv.Label = l.Label
			lv.CapacityMbps = l.CapMbps
		}
		v.Links = append(v.Links, lv)
	}
	return v
}

// topoHandler serves the live topology view as JSON.
func topoHandler(ts *telemetry.TSCollector, topo *exp.TopoSpec) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(BuildTopoView(ts, topo))
	})
}

// Serve serves mux on addr in the background for the life of the
// process. Empty addr is a no-op.
func Serve(addr string, mux *http.ServeMux) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
		}
	}()
}

// StartPprof serves net/http/pprof plus reg at /metrics (and, with a
// collector, /timeseries) on addr in the background. Empty addr is a
// no-op.
func StartPprof(addr string, reg *telemetry.Registry, ts *telemetry.TSCollector) {
	Serve(addr, DebugMux(reg, ts))
}

// StartDashboard serves the live flow dashboard — /flows JSON
// snapshots and a polling HTML view at / — plus pprof and /metrics on
// addr, and returns the analyzer the caller must tap into the run's
// event stream (telemetry.Multi with any file recorder) and register
// flow names on (RunContext.Live). A non-nil ts additionally serves
// /timeseries and /topo, and the HTML view renders the topology
// weathermap from the latter (topo may be nil: single-bottleneck runs
// get a synthetic two-node view). Nil when addr is empty.
func StartDashboard(addr string, reg *telemetry.Registry, ts *telemetry.TSCollector, topo *exp.TopoSpec) *analyze.Analyzer {
	if addr == "" {
		return nil
	}
	a := analyze.New(analyze.Config{})
	mux := DebugMux(reg, ts)
	analyze.ServeLive(mux, a)
	if ts != nil {
		mux.Handle("/topo", getOnly(topoHandler(ts, topo)))
	}
	Serve(addr, mux)
	return a
}

// TimeSeriesFlag registers the shared -timeseries-out flag.
func TimeSeriesFlag() *string {
	return flag.String("timeseries-out", "",
		"write the downsampled time-series snapshot (JSON) to this file after the run")
}

// WriteTimeSeries writes ts's snapshot JSON to path. Either a nil
// collector or an empty path is a no-op, so callers can wire it
// unconditionally.
func WriteTimeSeries(ts *telemetry.TSCollector, path string) error {
	if ts == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return ts.WriteJSON(f)
}

// ParallelFlag registers the shared -parallel flag: the worker count
// for sweep-based execution. 0 (the default) means GOMAXPROCS.
func ParallelFlag() *int {
	return flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS)")
}
