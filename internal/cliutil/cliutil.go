// Package cliutil holds the observability plumbing shared by the
// cmd/ binaries: JSONL trace sinks, metrics-snapshot export, and the
// pprof + /metrics debug server.
package cliutil

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"strings"

	"libra/internal/telemetry"
)

// OpenTracer opens a JSONL event sink at path. It returns a nil tracer
// (and a no-op closer) when path is empty, so callers can pass the
// result straight into configs. The closer flushes the tail and prints
// the event count.
func OpenTracer(path string) (telemetry.Tracer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	rec := telemetry.NewRecorder(f)
	return rec, func() error {
		if err := rec.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d events to %s\n", rec.Events(), path)
		return nil
	}, nil
}

// WriteMetrics exports a registry snapshot to path. Format "auto"
// derives from the extension: .json → JSON, anything else → Prometheus
// text exposition. Empty path is a no-op.
func WriteMetrics(reg *telemetry.Registry, path, format string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "json":
		return reg.WriteJSON(f)
	case "prom":
		return reg.WritePrometheus(f)
	case "auto":
		if strings.HasSuffix(path, ".json") {
			return reg.WriteJSON(f)
		}
		return reg.WritePrometheus(f)
	}
	return fmt.Errorf("unknown metrics format %q (want auto, json or prom)", format)
}

// StartPprof serves net/http/pprof plus reg at /metrics on addr in the
// background. Empty addr is a no-op.
func StartPprof(addr string, reg *telemetry.Registry) {
	if addr == "" {
		return
	}
	http.Handle("/metrics", reg.Handler())
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
		}
	}()
}

// ParallelFlag registers the shared -parallel flag: the worker count
// for sweep-based execution. 0 (the default) means GOMAXPROCS.
func ParallelFlag() *int {
	return flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS)")
}
