// Package cliutil holds the observability plumbing shared by the
// cmd/ binaries: JSONL trace sinks, metrics-snapshot export, and the
// pprof + /metrics debug server.
package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"libra/internal/analyze"
	"libra/internal/telemetry"
)

// OpenTracer opens a JSONL event sink at path. It returns a nil tracer
// (and a no-op closer) when path is empty, so callers can pass the
// result straight into configs. The closer flushes the tail and prints
// the event count.
func OpenTracer(path string) (telemetry.Tracer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	rec := telemetry.NewRecorder(f)
	return rec, func() error {
		if err := rec.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d events to %s\n", rec.Events(), path)
		return nil
	}, nil
}

// OpenFlight builds an always-on flight recorder dumping anomaly
// snapshots into dir (created if missing); counters register into reg
// when non-nil. Empty dir returns a nil recorder and a no-op closer,
// so callers can wire the result unconditionally. The closer reports
// how many dumps were written.
func OpenFlight(dir string, reg *telemetry.Registry) (*telemetry.FlightRecorder, func() error, error) {
	if dir == "" {
		return nil, func() error { return nil }, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	fl := telemetry.NewFlightRecorder(telemetry.FlightConfig{Dir: dir, Metrics: reg})
	return fl, func() error {
		if n := fl.Dumps(); n > 0 {
			fmt.Printf("flight recorder: %d dump(s) in %s\n", n, dir)
		}
		return fl.Err()
	}, nil
}

// FlightTap converts a possibly-nil flight recorder into a value safe
// to hand telemetry.Multi (a typed-nil would defeat its nil check).
func FlightTap(fl *telemetry.FlightRecorder) telemetry.Tracer {
	if fl == nil {
		return nil
	}
	return fl
}

// AnomalyTap returns a live analyzer tap that exists only to run the
// streaming anomaly detectors (rate collapse, no-ACK streaks, utility
// regression) and trigger flight dumps when one fires; nil when fl is
// nil. Compose it AFTER the flight recorder in telemetry.Multi so the
// triggering event is already in the ring when the dump is cut. The
// detectors are purely event-driven, so dump triggers inherit the
// event stream's worker-count independence.
func AnomalyTap(fl *telemetry.FlightRecorder) telemetry.Tracer {
	if fl == nil {
		return nil
	}
	return analyze.New(analyze.Config{
		OnAnomaly: func(flow int, t int64, reason string) {
			fl.TriggerDump(flow, t, reason)
		},
	})
}

// FlightFlag registers the shared -flight-out flag.
func FlightFlag() *string {
	return flag.String("flight-out", "",
		"directory for flight-recorder dumps on detected anomalies (empty = off)")
}

// StartHealth attaches a runtime health sampler to reg and samples
// once a second until the returned stop function runs (which takes a
// final sample). The sampler is returned for RunContext.Health wiring.
func StartHealth(reg *telemetry.Registry) (*telemetry.Health, func()) {
	h := telemetry.NewHealth(reg)
	return h, h.Start(time.Second)
}

// healthHandler serves the libra_health_* gauges as a flat JSON object
// for the dashboard's health line.
func healthHandler(reg *telemetry.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		snap := reg.Snapshot()
		out := make(map[string]float64, 8)
		for name, v := range snap.Gauges {
			if strings.HasPrefix(name, "libra_health_") {
				out[strings.TrimPrefix(name, "libra_health_")] = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		_ = json.NewEncoder(w).Encode(out)
	})
}

// WriteMetrics exports a registry snapshot to path. Format "auto"
// derives from the extension: .json → JSON, anything else → Prometheus
// text exposition. Empty path is a no-op.
func WriteMetrics(reg *telemetry.Registry, path, format string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "json":
		return reg.WriteJSON(f)
	case "prom":
		return reg.WritePrometheus(f)
	case "auto":
		if strings.HasSuffix(path, ".json") {
			return reg.WriteJSON(f)
		}
		return reg.WritePrometheus(f)
	}
	return fmt.Errorf("unknown metrics format %q (want auto, json or prom)", format)
}

// DebugMux returns a dedicated mux wired with the pprof handlers and,
// when reg is non-nil, the registry at /metrics. Routes are explicit
// rather than inherited from http.DefaultServeMux, so importing this
// package never leaks debug handlers into an application's default
// mux (and nothing another package hangs on the default mux leaks
// into the debug server). Callers may add their own routes — the live
// flow dashboard does — before passing the mux to Serve.
func DebugMux(reg *telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/health", healthHandler(reg))
	}
	return mux
}

// Serve serves mux on addr in the background for the life of the
// process. Empty addr is a no-op.
func Serve(addr string, mux *http.ServeMux) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
		}
	}()
}

// StartPprof serves net/http/pprof plus reg at /metrics on addr in the
// background. Empty addr is a no-op.
func StartPprof(addr string, reg *telemetry.Registry) {
	Serve(addr, DebugMux(reg))
}

// StartDashboard serves the live flow dashboard — /flows JSON
// snapshots and a polling HTML view at / — plus pprof and /metrics on
// addr, and returns the analyzer the caller must tap into the run's
// event stream (telemetry.Multi with any file recorder) and register
// flow names on (RunContext.Live). Nil when addr is empty.
func StartDashboard(addr string, reg *telemetry.Registry) *analyze.Analyzer {
	if addr == "" {
		return nil
	}
	a := analyze.New(analyze.Config{})
	mux := DebugMux(reg)
	analyze.ServeLive(mux, a)
	Serve(addr, mux)
	return a
}

// ParallelFlag registers the shared -parallel flag: the worker count
// for sweep-based execution. 0 (the default) means GOMAXPROCS.
func ParallelFlag() *int {
	return flag.Int("parallel", 0, "sweep worker count (0 = GOMAXPROCS)")
}
