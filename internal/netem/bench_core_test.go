package netem

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/sim"
	"libra/internal/trace"
)

// benchNet builds the fixed end-to-end workload used by the core perf
// trajectory: four CBR senders overdriving a 96 Mbit/s bottleneck, so
// the run exercises enqueue, tail drop, serialization, delivery, and the
// ACK/loss paths at full packet rate.
func benchNet(seed int64) *Network {
	n := New(Config{
		Capacity:    trace.Constant(trace.Mbps(96)),
		MinRTT:      20 * time.Millisecond,
		BufferBytes: 300_000,
		Seed:        seed,
	})
	for i := 0; i < 4; i++ {
		n.AddFlow(cc.FixedRate{R: trace.Mbps(30)}, 0, 0)
	}
	return n
}

// packets processed by the bottleneck: delivered plus dropped.
func (n *Network) benchPackets() int64 {
	return n.link.DeliveredBytes()/int64(n.cfg.MSS) + n.link.DropStats().Total()
}

// BenchmarkNetemPacketsPerSec reports the end-to-end emulation rate; one
// op is one emulated packet.
func BenchmarkNetemPacketsPerSec(b *testing.B) {
	n := benchNet(7)
	b.ReportAllocs()
	b.ResetTimer()
	horizon := time.Duration(0)
	for n.benchPackets() < int64(b.N) {
		horizon += time.Second
		n.Eng.Run(horizon)
		if n.Eng.Pending() == 0 {
			b.Fatal("simulation drained unexpectedly")
		}
	}
}

// TestNetemSteadyStateAllocs asserts the zero-alloc invariant end to
// end: once the network is warm (queues sized, pools populated, inflight
// windows grown), advancing virtual time must allocate nothing — every
// per-packet event rides the engine's pooled callback path.
func TestNetemSteadyStateAllocs(t *testing.T) {
	n := benchNet(7)
	n.Eng.Run(2 * time.Second) // warm-up: steady-state every slice and pool
	horizon := 2 * time.Second
	avg := testing.AllocsPerRun(5, func() {
		horizon += 500 * time.Millisecond
		n.Eng.Run(horizon)
	})
	if avg != 0 {
		t.Errorf("steady-state netem run allocates %.1f allocs per 500ms slice, want 0", avg)
	}
	if n.benchPackets() == 0 {
		t.Fatal("workload processed no packets")
	}
}

// coreBenchNumbers is one measurement block in BENCH_core.json.
type coreBenchNumbers struct {
	Engine          string  `json:"engine"`
	EventsPerSec    float64 `json:"engine_events_per_sec"`
	NsPerEvent      float64 `json:"engine_ns_per_event"`
	AllocsPerEvent  float64 `json:"engine_allocs_per_event"`
	PacketsPerSec   float64 `json:"netem_packets_per_sec"`
	AllocsPerPacket float64 `json:"netem_allocs_per_packet"`
}

// measureEngine times scheduling + dispatching nev closure events
// through a fresh engine (the same worst-case shape the pre-rewrite
// baseline was recorded with: the whole batch resident in the heap).
func measureEngine(nev int) (evPerSec, nsPerEv, allocsPerEv float64) {
	e := sim.New(1)
	fn := func() {}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for j := 0; j < nev; j++ {
		e.At(time.Duration(j)*time.Microsecond, fn)
	}
	e.Run(time.Hour)
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	return float64(nev) / wall.Seconds(),
		float64(wall.Nanoseconds()) / float64(nev),
		float64(m1.Mallocs-m0.Mallocs) / float64(nev)
}

// measureNetem times the fixed end-to-end workload for 10 virtual
// seconds and reports packets/sec plus allocs/packet.
func measureNetem() (pktsPerSec, allocsPerPkt float64) {
	run := func() (int64, time.Duration) {
		n := benchNet(7)
		start := time.Now()
		n.Run(10 * time.Second)
		return n.benchPackets(), time.Since(start)
	}
	run() // warm-up: page in code paths
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	pkts, wall := run()
	runtime.ReadMemStats(&m1)
	return float64(pkts) / wall.Seconds(), float64(m1.Mallocs-m0.Mallocs) / float64(pkts)
}

// TestBenchCore records the core perf trajectory into BENCH_core.json:
// engine events/sec and end-to-end netem packets/sec, with allocs per
// event/packet. The baseline block (the pre-rewrite container/heap
// engine, measured on the same machine) is preserved from the existing
// file so the speedup stays anchored to the recorded before/after pair.
// Only arms under CORE_BENCH=1 (make bench-core): timing inside a
// parallel `go test ./...` sweep measures contention, not the engine.
func TestBenchCore(t *testing.T) {
	if os.Getenv("CORE_BENCH") == "" {
		t.Skip("set CORE_BENCH=1 (make bench-core) to measure and record core perf")
	}

	cur := coreBenchNumbers{Engine: "value-typed 4-ary heap, pooled callbacks"}
	cur.EventsPerSec, cur.NsPerEvent, cur.AllocsPerEvent = measureEngine(2_000_000)
	cur.PacketsPerSec, cur.AllocsPerPacket = measureNetem()

	path := os.Getenv("CORE_BENCH_OUT")
	if path == "" {
		path = "../../BENCH_core.json"
	}
	out := struct {
		Baseline       coreBenchNumbers `json:"baseline"`
		Current        coreBenchNumbers `json:"current"`
		PacketsSpeedup float64          `json:"packets_speedup"`
	}{Current: cur}
	if prev, err := os.ReadFile(path); err == nil {
		var old struct {
			Baseline coreBenchNumbers `json:"baseline"`
		}
		if json.Unmarshal(prev, &old) == nil && old.Baseline.PacketsPerSec > 0 {
			out.Baseline = old.Baseline
		}
	}
	if out.Baseline.PacketsPerSec == 0 {
		// First recording on this machine: the current numbers become the
		// baseline for future regressions.
		out.Baseline = cur
	}
	out.PacketsSpeedup = cur.PacketsPerSec / out.Baseline.PacketsPerSec

	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("engine: %.0f events/sec (%.1f ns/event, %.2f allocs/event)",
		cur.EventsPerSec, cur.NsPerEvent, cur.AllocsPerEvent)
	t.Logf("netem: %.0f packets/sec (%.2f allocs/packet), %.2fx vs baseline -> %s",
		cur.PacketsPerSec, cur.AllocsPerPacket, out.PacketsSpeedup, path)
	if os.Getenv("CORE_BENCH_GUARD") != "" && cur.AllocsPerPacket >= 1 {
		t.Errorf("netem steady path allocates %.2f allocs/packet, want < 1", cur.AllocsPerPacket)
	}
}
