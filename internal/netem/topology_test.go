package netem

import (
	"strings"
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

// collector is a test Tracer that keeps every event for inspection.
type collector struct{ evs []telemetry.Event }

func (c *collector) Enabled() bool           { return true }
func (c *collector) Emit(e *telemetry.Event) { c.evs = append(c.evs, *e) }

// eceCounter is an unresponsive CBR sender that counts CE echoes, so
// tests can observe marks surviving end to end across a route.
type eceCounter struct {
	cc.FixedRate
	ECECount int
}

func (c *eceCounter) OnAck(a *cc.Ack) {
	if a.ECE {
		c.ECECount++
	}
}

// threeHop builds the canonical parking-lot fabric: n0 -> n1 -> n2 ->
// n3 with per-hop capacities in Mbps. Returns the topology and the
// 3-hop main route.
func threeHop(t *testing.T, tracer telemetry.Tracer, mbps ...float64) (*Topology, *Route) {
	t.Helper()
	for len(mbps) < 3 {
		mbps = append(mbps, 96)
	}
	tp, err := NewTopology(TopologyConfig{
		Nodes: []string{"n0", "n1", "n2", "n3"},
		Links: []LinkSpec{
			{Label: "h0", From: "n0", To: "n1", Capacity: trace.Constant(trace.Mbps(mbps[0])), PropDelay: 5 * time.Millisecond},
			{Label: "h1", From: "n1", To: "n2", Capacity: trace.Constant(trace.Mbps(mbps[1])), PropDelay: 5 * time.Millisecond},
			{Label: "h2", From: "n2", To: "n3", Capacity: trace.Constant(trace.Mbps(mbps[2])), PropDelay: 5 * time.Millisecond},
		},
		Seed:   7,
		Tracer: tracer,
	})
	if err != nil {
		t.Fatalf("NewTopology: %v", err)
	}
	route, err := tp.AddRoute("main", []string{"h0", "h1", "h2"}, -1)
	if err != nil {
		t.Fatalf("AddRoute: %v", err)
	}
	return tp, route
}

func TestTopologyMultiHopDelivery(t *testing.T) {
	tp, route := threeHop(t, nil, 96, 96, 96)
	if got := route.AckDelay(); got != 15*time.Millisecond {
		t.Fatalf("symmetric ack delay = %v, want 15ms", got)
	}
	f := tp.AddFlowOn(route, cc.FixedRate{R: trace.Mbps(20)}, 0, 0)
	tp.Run(5 * time.Second)

	if f.Stats.AckedBytes == 0 {
		t.Fatal("no bytes acknowledged across 3 hops")
	}
	// Uncongested route: no hop drops anything, and each hop delivers
	// monotonically no more than the previous one — differing only by
	// what is still in flight when the horizon hits.
	var delivered []int64
	for _, l := range tp.Links() {
		delivered = append(delivered, l.DeliveredBytes())
		if n := l.DropStats().Total(); n != 0 {
			t.Errorf("link %s dropped %d packets on an uncongested route", l.Label(), n)
		}
	}
	const slack = 20 * 1500 // a pipeline's worth of in-flight packets
	if delivered[0] < delivered[1] || delivered[1] < delivered[2] ||
		delivered[0]-delivered[2] > slack {
		t.Errorf("per-hop delivered bytes inconsistent: %v", delivered)
	}
	// Min RTT = 3 serializations + 15 ms forward prop + 15 ms ACK.
	if f.Stats.MinRTT < 30*time.Millisecond {
		t.Errorf("min RTT %v below the 30 ms propagation floor", f.Stats.MinRTT)
	}
}

func TestTopologyBottleneckAttribution(t *testing.T) {
	var buf collector
	tp, route := threeHop(t, &buf, 96, 12, 96)
	tp.AddFlowOn(route, cc.FixedRate{R: trace.Mbps(40)}, 0, 0)
	tp.Run(3 * time.Second)

	h1 := tp.LinkByLabel("h1")
	if h1 == nil {
		t.Fatal("LinkByLabel(h1) = nil")
	}
	if h1.DropStats().Tail == 0 {
		t.Fatal("overdriven middle hop recorded no tail drops")
	}
	for _, lbl := range []string{"h0", "h2"} {
		if n := tp.LinkByLabel(lbl).DropStats().Total(); n != 0 {
			t.Errorf("non-bottleneck link %s dropped %d packets", lbl, n)
		}
	}
	if b := tp.RouteBottleneck(route, 3*time.Second); b.Label() != "h1" {
		t.Errorf("RouteBottleneck = %q, want h1", b.Label())
	}

	// Every drop event in the stream must be attributed to h1, and
	// queue samples must cover all three labels.
	var dropLinks, queueLinks map[string]bool
	dropLinks, queueLinks = map[string]bool{}, map[string]bool{}
	for _, e := range buf.evs {
		switch e.Type {
		case telemetry.TypeDrop:
			dropLinks[e.Link] = true
		case telemetry.TypeQueue:
			queueLinks[e.Link] = true
		}
	}
	if len(dropLinks) != 1 || !dropLinks["h1"] {
		t.Errorf("drop events attributed to %v, want only h1", dropLinks)
	}
	for _, lbl := range []string{"h0", "h1", "h2"} {
		if !queueLinks[lbl] {
			t.Errorf("no queue samples for link %s", lbl)
		}
	}
}

func TestTopologyValidation(t *testing.T) {
	base := func() TopologyConfig {
		return TopologyConfig{
			Nodes: []string{"a", "b", "c"},
			Links: []LinkSpec{
				{Label: "ab", From: "a", To: "b", Capacity: trace.Constant(trace.Mbps(10))},
				{Label: "bc", From: "b", To: "c", Capacity: trace.Constant(trace.Mbps(10))},
			},
			Seed: 1,
		}
	}
	cases := []struct {
		name string
		mut  func(*TopologyConfig)
		want string
	}{
		{"no label", func(c *TopologyConfig) { c.Links[0].Label = "" }, "no label"},
		{"no capacity", func(c *TopologyConfig) { c.Links[1].Capacity = nil }, "no capacity"},
		{"unknown node", func(c *TopologyConfig) { c.Links[0].To = "zz" }, "unknown node"},
		{"self loop", func(c *TopologyConfig) { c.Links[0].To = "a" }, "self-loop"},
		{"dup label", func(c *TopologyConfig) { c.Links[1].Label = "ab" }, "duplicate link label"},
		{"dup node", func(c *TopologyConfig) { c.Nodes = append(c.Nodes, "a") }, "duplicate node"},
		{"no links", func(c *TopologyConfig) { c.Links = nil }, "no links"},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		if _, err := NewTopology(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want containing %q", tc.name, err, tc.want)
		}
	}

	tp, err := NewTopology(base())
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, rc := range []struct {
		name string
		via  []string
		want string
	}{
		{"unknown link", []string{"zz"}, "unknown link"},
		{"empty", nil, "no links"},
		{"disconnected", []string{"bc", "ab"}, "breaks"},
		{"loop", []string{"ab", "bc", "ab"}, "revisits"},
	} {
		if _, err := tp.AddRoute("r", rc.via, -1); err == nil || !strings.Contains(err.Error(), rc.want) {
			t.Errorf("route %s: error = %v, want containing %q", rc.name, err, rc.want)
		}
	}
}

// TestTopoSteadyStateAllocs asserts the multi-hop zero-alloc
// invariant: once a 3-hop route is warm, advancing virtual time must
// allocate nothing — forwarding across hops rides the same pooled
// callback path as the single-bottleneck case.
func TestTopoSteadyStateAllocs(t *testing.T) {
	tp, route := threeHop(t, nil, 96, 48, 96)
	for i := 0; i < 4; i++ {
		tp.AddFlowOn(route, cc.FixedRate{R: trace.Mbps(20)}, 0, 0)
	}
	tp.Run(2 * time.Second) // warm-up: queues sized, pools populated
	horizon := 2 * time.Second
	avg := testing.AllocsPerRun(5, func() {
		horizon += 500 * time.Millisecond
		tp.Eng.Run(horizon)
	})
	if avg != 0 {
		t.Errorf("steady-state multi-hop run allocates %.1f allocs per 500ms slice, want 0", avg)
	}
}

// TestECNCoDelSameLink covers marking and AQM dropping composed on one
// link: DCTCP-style threshold marking happens at enqueue, CoDel head
// drops at dequeue, and the two interact — a packet CE-marked on a
// standing queue can still be discarded by the AQM before service, so
// marking never shields a packet from CoDel, and AQM drops never count
// as marks.
func TestECNCoDelSameLink(t *testing.T) {
	build := func(ecn int, codel bool) *Network {
		n := New(Config{
			Capacity:     trace.Constant(trace.Mbps(12)),
			MinRTT:       20 * time.Millisecond,
			BufferBytes:  300_000,
			ECNThreshold: ecn,
			CoDel:        codel,
			Seed:         11,
		})
		// Overdrive hard so a deep standing queue forms: both the
		// marking threshold and CoDel's 5 ms sojourn target are crossed.
		n.AddFlow(cc.FixedRate{R: trace.Mbps(30)}, 0, 0)
		return n
	}

	ecnOnly := build(30_000, false)
	ecnOnly.Run(5 * time.Second)
	dsE := ecnOnly.Link().DropStats()
	if dsE.Marked == 0 {
		t.Fatal("ECN-only link marked nothing over a standing queue")
	}
	if dsE.AQM != 0 {
		t.Fatalf("ECN-only link recorded %d AQM drops without CoDel", dsE.AQM)
	}

	codelOnly := build(0, true)
	codelOnly.Run(5 * time.Second)
	dsC := codelOnly.Link().DropStats()
	if dsC.AQM == 0 {
		t.Fatal("CoDel-only link head-dropped nothing over a standing queue")
	}
	if dsC.Marked != 0 {
		t.Fatalf("CoDel-only link marked %d packets without ECN", dsC.Marked)
	}

	both := build(30_000, true)
	both.Run(5 * time.Second)
	ds := both.Link().DropStats()
	if ds.Marked == 0 || ds.AQM == 0 {
		t.Fatalf("ECN+CoDel link: marked %d, AQM drops %d; want both > 0", ds.Marked, ds.AQM)
	}
	// Marking happens at enqueue, so with the same arrival process the
	// combined link cannot mark fewer packets than CoDel later drops
	// lets through — the counters are independent, not exclusive.
	delivered := both.Link().DeliveredBytes() / int64(both.Config().MSS)
	if ds.Marked <= ds.AQM {
		// With a 30 KB threshold under a CoDel-bounded queue the
		// standing queue hovers around the target; both counters must
		// still advance independently.
		t.Logf("marked %d <= aqm %d (informational)", ds.Marked, ds.AQM)
	}
	if delivered == 0 {
		t.Fatal("combined link delivered nothing")
	}
}

// TestECNCoDelMiddleHop runs the same composition on the middle hop of
// a 3-hop route and checks the marks survive to the receiver (CE is
// echoed end to end) while the edge hops stay clean.
func TestECNCoDelMiddleHop(t *testing.T) {
	tp, err := NewTopology(TopologyConfig{
		Nodes: []string{"n0", "n1", "n2", "n3"},
		Links: []LinkSpec{
			{Label: "h0", From: "n0", To: "n1", Capacity: trace.Constant(trace.Mbps(96)), PropDelay: 2 * time.Millisecond},
			{Label: "h1", From: "n1", To: "n2", Capacity: trace.Constant(trace.Mbps(12)), PropDelay: 2 * time.Millisecond,
				ECNThreshold: 30_000, CoDel: true},
			{Label: "h2", From: "n2", To: "n3", Capacity: trace.Constant(trace.Mbps(96)), PropDelay: 2 * time.Millisecond},
		},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	route, err := tp.AddRoute("main", []string{"h0", "h1", "h2"}, -1)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := &eceCounter{FixedRate: cc.FixedRate{R: trace.Mbps(30)}}
	tp.AddFlowOn(route, ctrl, 0, 0)
	tp.Run(5 * time.Second)

	h1 := tp.LinkByLabel("h1").DropStats()
	if h1.Marked == 0 || h1.AQM == 0 {
		t.Fatalf("middle hop: marked %d, AQM drops %d; want both > 0", h1.Marked, h1.AQM)
	}
	for _, lbl := range []string{"h0", "h2"} {
		ds := tp.LinkByLabel(lbl).DropStats()
		if ds.Marked != 0 || ds.Total() != 0 {
			t.Errorf("edge hop %s: marked %d, drops %d; want clean", lbl, ds.Marked, ds.Total())
		}
	}
	if ctrl.ECECount == 0 {
		t.Fatal("no CE marks echoed to the sender across the route")
	}
}
