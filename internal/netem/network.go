package netem

import (
	"time"

	"libra/internal/cc"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

// Config describes a single-bottleneck emulated path — the degenerate
// two-node/one-link topology every original paper experiment runs on.
type Config struct {
	// Capacity is the bottleneck capacity trace.
	Capacity trace.Trace
	// MinRTT is the round-trip propagation delay, split evenly between
	// the forward (post-serialization) and ACK directions.
	MinRTT time.Duration
	// BufferBytes is the droptail queue limit.
	BufferBytes int
	// LossRate is the iid stochastic loss probability.
	LossRate float64
	// ECNThreshold, when positive, enables ECN: packets enqueued while
	// the queue exceeds this many bytes are CE-marked and the mark is
	// echoed on their ACKs (DCTCP-style marking).
	ECNThreshold int
	// CoDel enables Controlled-Delay AQM at the bottleneck (RFC 8289
	// defaults: 5 ms target, 100 ms interval).
	CoDel bool
	// Faults, when non-nil, composes adversarial link dynamics onto the
	// bottleneck (see netem/faults): bursty loss, blackouts, reordering,
	// duplication, delay jitter, and capacity flaps. The injector is
	// bound to the network's engine and tracer at construction.
	Faults FaultInjector
	// MSS is the packet size (default 1500).
	MSS int
	// Seed drives all stochastic behaviour.
	Seed int64
	// RecordSeries enables per-flow throughput/delay time series with
	// the given bucket (default 100 ms when RecordSeries is set but
	// SeriesBucket is zero).
	RecordSeries bool
	SeriesBucket time.Duration
	// Tracer, when enabled, receives bottleneck telemetry: per-packet
	// enqueue/drop events (drops tagged tail/channel/aqm) and periodic
	// queue-occupancy samples.
	Tracer telemetry.Tracer
	// QueueSampleInterval is the spacing of queue-occupancy samples
	// (default 100 ms; only used when Tracer is enabled).
	QueueSampleInterval time.Duration
	// Health, when set, has the network's engine registered for runtime
	// health sampling for the lifetime of Run.
	Health *telemetry.Health
}

// Network is the single-bottleneck view of a two-node/one-link
// Topology: N senders share one droptail FIFO bottleneck and ACKs
// return on an uncongested reverse path. It exists as the degenerate
// case of the topology engine — its one link stays unlabelled, so the
// event stream, stochastic draws, and reports are identical to the
// pre-topology emulator.
type Network struct {
	*Topology
	cfg   Config
	link  *Link
	route *Route
}

// New builds a single-bottleneck network. The engine is created
// internally and owned by the underlying topology.
func New(cfg Config) *Network {
	if cfg.MSS == 0 {
		cfg.MSS = cc.DefaultMSS
	}
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = 150 * 1000
	}
	tp, err := newTopology(TopologyConfig{
		Nodes: []string{"src", "dst"},
		Links: []LinkSpec{{
			From:         "src",
			To:           "dst",
			Capacity:     cfg.Capacity,
			PropDelay:    cfg.MinRTT - cfg.MinRTT/2,
			BufferBytes:  cfg.BufferBytes,
			LossRate:     cfg.LossRate,
			ECNThreshold: cfg.ECNThreshold,
			CoDel:        cfg.CoDel,
			Faults:       cfg.Faults,
		}},
		MSS:                 cfg.MSS,
		Seed:                cfg.Seed,
		RecordSeries:        cfg.RecordSeries,
		SeriesBucket:        cfg.SeriesBucket,
		Tracer:              cfg.Tracer,
		QueueSampleInterval: cfg.QueueSampleInterval,
		Health:              cfg.Health,
	})
	if err != nil {
		panic("netem: degenerate topology rejected: " + err.Error()) // unreachable: spec is built here
	}
	route, err := tp.AddRoute("", []string{""}, cfg.MinRTT/2)
	if err != nil {
		panic("netem: degenerate route rejected: " + err.Error()) // unreachable
	}
	return &Network{Topology: tp, cfg: cfg, link: tp.links[0], route: route}
}

// Link exposes the bottleneck for queue statistics.
func (n *Network) Link() *Link { return n.link }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// AddFlow attaches a sender driven by ctrl to the bottleneck path,
// active on [start, stop). A zero stop means "until the end of the
// run".
func (n *Network) AddFlow(ctrl cc.Controller, start, stop time.Duration) *Flow {
	return n.AddFlowOn(n.route, ctrl, start, stop)
}

// Utilization returns delivered bytes at the bottleneck divided by the
// link's mean capacity over [0, d].
func (n *Network) Utilization(d time.Duration) float64 {
	mean := trace.MeanRate(n.cfg.Capacity, d, 10*time.Millisecond)
	if mean <= 0 || d <= 0 {
		return 0
	}
	return float64(n.link.DeliveredBytes()) / (mean * d.Seconds())
}
