package netem

import (
	"time"

	"libra/internal/cc"
	"libra/internal/sim"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

// Config describes the emulated path.
type Config struct {
	// Capacity is the bottleneck capacity trace.
	Capacity trace.Trace
	// MinRTT is the round-trip propagation delay, split evenly between
	// the forward (post-serialization) and ACK directions.
	MinRTT time.Duration
	// BufferBytes is the droptail queue limit.
	BufferBytes int
	// LossRate is the iid stochastic loss probability.
	LossRate float64
	// ECNThreshold, when positive, enables ECN: packets enqueued while
	// the queue exceeds this many bytes are CE-marked and the mark is
	// echoed on their ACKs (DCTCP-style marking).
	ECNThreshold int
	// CoDel enables Controlled-Delay AQM at the bottleneck (RFC 8289
	// defaults: 5 ms target, 100 ms interval).
	CoDel bool
	// Faults, when non-nil, composes adversarial link dynamics onto the
	// bottleneck (see netem/faults): bursty loss, blackouts, reordering,
	// duplication, delay jitter, and capacity flaps. The injector is
	// bound to the network's engine and tracer at construction.
	Faults FaultInjector
	// MSS is the packet size (default 1500).
	MSS int
	// Seed drives all stochastic behaviour.
	Seed int64
	// RecordSeries enables per-flow throughput/delay time series with
	// the given bucket (default 100 ms when RecordSeries is set but
	// SeriesBucket is zero).
	RecordSeries bool
	SeriesBucket time.Duration
	// Tracer, when enabled, receives bottleneck telemetry: per-packet
	// enqueue/drop events (drops tagged tail/channel/aqm) and periodic
	// queue-occupancy samples.
	Tracer telemetry.Tracer
	// QueueSampleInterval is the spacing of queue-occupancy samples
	// (default 100 ms; only used when Tracer is enabled).
	QueueSampleInterval time.Duration
	// Health, when set, has the network's engine registered for runtime
	// health sampling for the lifetime of Run.
	Health *telemetry.Health
}

// Network is a single-bottleneck emulated topology.
type Network struct {
	Eng      *sim.Engine
	cfg      Config
	link     *Link
	flows    []*Flow
	pool     packetPool
	ackDelay time.Duration
	qEvBuf   telemetry.Event // reused queue-sample event buffer

	// Queue-sampler state; the sampler re-arms itself through the
	// engine's pooled callback path.
	sampleTracer telemetry.Tracer
	sampleEvery  time.Duration
}

// New builds a network. The engine is created internally and owned by
// the network.
func New(cfg Config) *Network {
	if cfg.MSS == 0 {
		cfg.MSS = cc.DefaultMSS
	}
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = 150 * 1000
	}
	eng := sim.New(cfg.Seed)
	n := &Network{Eng: eng, cfg: cfg, ackDelay: cfg.MinRTT / 2}
	var cd *CoDel
	if cfg.CoDel {
		cd = NewCoDel()
	}
	if cfg.Faults != nil {
		t := cfg.Tracer
		if !telemetry.Enabled(t) {
			t = telemetry.Nop{}
		}
		cfg.Faults.Bind(eng, t)
	}
	n.link = newLink(eng, LinkConfig{
		CoDel:        cd,
		Capacity:     cfg.Capacity,
		PropDelay:    cfg.MinRTT - cfg.MinRTT/2,
		BufferBytes:  cfg.BufferBytes,
		LossRate:     cfg.LossRate,
		ECNThreshold: cfg.ECNThreshold,
		Faults:       cfg.Faults,
		Seed:         cfg.Seed,
	}, n.deliver, n.dropped, n.clonePacket)
	if telemetry.Enabled(cfg.Tracer) {
		n.link.SetTracer(cfg.Tracer)
		n.sampleTracer = cfg.Tracer
		n.sampleEvery = cfg.QueueSampleInterval
		if n.sampleEvery <= 0 {
			n.sampleEvery = 100 * time.Millisecond
		}
		n.sampleQueue()
	}
	return n
}

// sampleCb re-arms the periodic queue-occupancy sampler.
func sampleCb(arg any) { arg.(*Network).sampleQueue() }

// sampleQueue emits one queue-occupancy event and reschedules itself;
// the engine stops dispatching past the run horizon.
func (n *Network) sampleQueue() {
	now := n.Eng.Now()
	rate := 0.0
	if n.cfg.Capacity != nil {
		rate = n.cfg.Capacity.RateAt(now)
	}
	n.qEvBuf = telemetry.Event{T: int64(now), Type: telemetry.TypeQueue, Flow: -1,
		Queue: int64(n.link.QueuedBytes()), Rate: rate}
	n.sampleTracer.Emit(&n.qEvBuf)
	n.Eng.AfterCall(n.sampleEvery, sampleCb, n)
}

// Link exposes the bottleneck for queue statistics.
func (n *Network) Link() *Link { return n.link }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

func (n *Network) deliver(p *Packet) {
	p.Flow.onDelivered(p)
}

func (n *Network) dropped(p *Packet, _ bool) {
	n.pool.put(p)
}

// clonePacket duplicates a packet for fault-injected duplication; the
// copy is marked injected so it bypasses the injector.
func (n *Network) clonePacket(p *Packet) *Packet {
	c := n.pool.get()
	*c = *p
	c.injected = true
	return c
}

// AddFlow attaches a sender driven by ctrl, active on [start, stop).
// A zero stop means "until the end of the run".
func (n *Network) AddFlow(ctrl cc.Controller, start, stop time.Duration) *Flow {
	f := &Flow{
		ID:      len(n.flows),
		net:     n,
		ctrl:    ctrl,
		mss:     n.cfg.MSS,
		startAt: start,
		stopAt:  stop,
	}
	if n.cfg.RecordSeries {
		b := n.cfg.SeriesBucket
		if b <= 0 {
			b = 100 * time.Millisecond
		}
		f.Stats.Throughput = NewSeries(b)
		f.Stats.Delay = NewSeries(b)
	}
	n.flows = append(n.flows, f)
	n.Eng.AtCall(start, flowStartCb, f)
	if stop > 0 {
		n.Eng.AtCall(stop, flowStopCb, f)
	}
	return f
}

func flowStartCb(arg any) { arg.(*Flow).start() }
func flowStopCb(arg any)  { arg.(*Flow).stop() }

// Flows returns the attached flows in creation order.
func (n *Network) Flows() []*Flow { return n.flows }

// Run advances the simulation to time d and finalises flow statistics.
// When a Health sampler is configured, the engine is registered for the
// duration of the run so its progress counters feed the health gauges.
func (n *Network) Run(d time.Duration) {
	if n.cfg.Health != nil {
		n.cfg.Health.Register(n.Eng)
		defer n.cfg.Health.Unregister(n.Eng)
	}
	n.Eng.Run(d)
	for _, f := range n.flows {
		if f.running {
			f.stop()
		}
	}
}

// Utilization returns delivered bytes at the bottleneck divided by the
// link's mean capacity over [0, d].
func (n *Network) Utilization(d time.Duration) float64 {
	mean := trace.MeanRate(n.cfg.Capacity, d, 10*time.Millisecond)
	if mean <= 0 || d <= 0 {
		return 0
	}
	return float64(n.link.DeliveredBytes()) / (mean * d.Seconds())
}
