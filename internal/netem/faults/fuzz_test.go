package faults_test

import (
	"strings"
	"testing"

	"libra/internal/netem/faults"
)

// FuzzParsePlan checks the FaultPlan JSON decoder never panics on
// arbitrary input and that every plan it accepts builds a working
// injector.
func FuzzParsePlan(f *testing.F) {
	f.Add(`{"ge":{"p_gb":0.01,"p_bg":0.2,"loss_good":0.001,"loss_bad":0.5}}`)
	f.Add(`{"blackouts":{"scheduled":[{"start":"8s","dur":"3s"}]}}`)
	f.Add(`{"blackouts":{"mean_every":"10s","mean_dur":"600ms"}}`)
	f.Add(`{"reorder":{"prob":0.05,"delay":"40ms"},"duplicate":{"prob":0.02}}`)
	f.Add(`{"jitter":{"max":"15ms","spike_prob":0.002,"spike_dur":"200ms"}}`)
	f.Add(`{"cap_flaps":{"mean_every":"6s","mean_dur":"2s","factor":0.1}}`)
	f.Add(`{"ge":{"p_gb":2}}`)              // probability out of range
	f.Add(`{"blackouts":{}}`)               // empty section
	f.Add(`{"jitter":{"max":"-5ms"}}`)      // negative duration
	f.Add(`{"unknown_field":1}`)            // rejected by DisallowUnknownFields
	f.Add(`{"ge":{"p_gb":"not a number"}}`) // type mismatch
	f.Add(`not json at all`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, in string) {
		plan, err := faults.ParsePlan(strings.NewReader(in))
		if err != nil {
			return
		}
		// ParsePlan validates, so building an injector must succeed and
		// its first verdicts must be callable without panicking.
		inj, err := faults.New(plan, 1)
		if err != nil {
			t.Fatalf("validated plan rejected by New: %v", err)
		}
		for i := 0; i < 10; i++ {
			inj.Ingress(0, int64(i), 1500)
		}
		if s := inj.RateScale(0); s < 0 || s > 1 {
			t.Fatalf("rate scale out of range: %v", s)
		}
	})
}
