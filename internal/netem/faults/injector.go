package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"libra/internal/netem"
	"libra/internal/sim"
	"libra/internal/telemetry"
)

// Seed-mixing constants: each stochastic component draws from its own
// sub-seeded source so adding or removing one fault class never
// perturbs another class's schedule.
const (
	seedGE       int64 = 0x1e3779b97f4a7c15
	seedPkt      int64 = 0x3f58476d1ce4e5b9
	seedBlackout int64 = 0x14d049bb133111eb
	seedFlap     int64 = 0x2545f4914f6cdd1d
)

// minStochWindow floors stochastically drawn window durations so a
// degenerate exponential draw cannot produce a zero-length event.
const minStochWindow = time.Millisecond

// Injector realises a Plan as a netem.FaultInjector. Build one per
// simulation run with New; identical (Plan, seed) pairs produce
// byte-identical fault schedules.
type Injector struct {
	plan Plan

	eng     *sim.Engine
	tracer  telemetry.Tracer
	traceOn bool
	evBuf   telemetry.Event

	geBad  bool
	geRng  *rand.Rand
	pktRng *rand.Rand

	blackout *windowCheck
	flap     *windowCheck
	// Announcement streams replay the same window schedules for
	// engine-clocked telemetry; consumed by Bind.
	blackoutAnn *windowStream
	flapAnn     *windowStream

	spikeUntil time.Duration
}

// New validates plan and builds an injector whose stochastic behaviour
// is fully determined by (plan, seed). A nil or empty plan yields an
// injector that passes everything through.
func New(plan *Plan, seed int64) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{}
	if plan != nil {
		in.plan = *plan
	}
	in.geRng = rand.New(rand.NewSource(seed ^ seedGE))
	in.pktRng = rand.New(rand.NewSource(seed ^ seedPkt))
	if b := in.plan.Blackouts; b != nil {
		in.blackout = &windowCheck{ws: newWindowStream(b.Scheduled, b.MeanEvery.D(), b.MeanDur.D(),
			rand.New(rand.NewSource(seed^seedBlackout)))}
		in.blackoutAnn = newWindowStream(b.Scheduled, b.MeanEvery.D(), b.MeanDur.D(),
			rand.New(rand.NewSource(seed^seedBlackout)))
	}
	if c := in.plan.CapFlaps; c != nil {
		in.flap = &windowCheck{ws: newWindowStream(c.Scheduled, c.MeanEvery.D(), c.MeanDur.D(),
			rand.New(rand.NewSource(seed^seedFlap)))}
		in.flapAnn = newWindowStream(c.Scheduled, c.MeanEvery.D(), c.MeanDur.D(),
			rand.New(rand.NewSource(seed^seedFlap)))
	}
	return in, nil
}

// MustNew is New for callers with a statically valid plan (presets,
// tests).
func MustNew(plan *Plan, seed int64) *Injector {
	in, err := New(plan, seed)
	if err != nil {
		panic(fmt.Sprintf("faults: invalid plan: %v", err))
	}
	return in
}

// Bind implements netem.FaultInjector. When the tracer is live, the
// injector schedules fault.* window-boundary events on the engine; the
// lazy event chain stops at the run horizon.
func (in *Injector) Bind(eng *sim.Engine, tracer telemetry.Tracer) {
	in.eng = eng
	in.tracer = tracer
	in.traceOn = telemetry.Enabled(tracer)
	if !in.traceOn {
		return
	}
	if in.blackoutAnn != nil {
		in.announce(in.blackoutAnn, telemetry.FaultBlackoutStart, telemetry.FaultBlackoutEnd, 0)
	}
	if in.flapAnn != nil {
		in.announce(in.flapAnn, telemetry.FaultFlapStart, telemetry.FaultFlapEnd, in.plan.CapFlaps.Factor)
	}
}

// announcer walks one window stream, emitting start/end boundary events.
// It re-arms itself through the engine's pooled callback path, so the
// whole chain costs one allocation per stream rather than two closures
// per window.
type announcer struct {
	in                     *Injector
	ws                     *windowStream
	startReason, endReason string
	rate                   float64
	end                    time.Duration // of the window currently announced
}

func announceStartCb(arg any) {
	a := arg.(*announcer)
	a.in.emitWindow(a.startReason, a.rate)
	a.in.eng.AtCall(a.end, announceEndCb, a)
}

func announceEndCb(arg any) {
	a := arg.(*announcer)
	a.in.emitWindow(a.endReason, 0)
	a.scheduleNext()
}

// scheduleNext arms the announcer for the stream's next window, if any.
func (a *announcer) scheduleNext() {
	start, end, ok := a.ws.next()
	if !ok {
		return
	}
	a.end = end
	a.in.eng.AtCall(start, announceStartCb, a)
}

// announce starts the boundary-event chain for one window stream.
func (in *Injector) announce(ws *windowStream, startReason, endReason string, rate float64) {
	a := &announcer{in: in, ws: ws, startReason: startReason, endReason: endReason, rate: rate}
	a.scheduleNext()
}

func (in *Injector) emitWindow(reason string, rate float64) {
	in.evBuf = telemetry.Event{T: int64(in.eng.Now()), Type: telemetry.TypeFault,
		Flow: -1, Reason: reason, Rate: rate}
	in.tracer.Emit(&in.evBuf)
}

func (in *Injector) emitPacket(reason string, seq int64, extra time.Duration) {
	in.evBuf = telemetry.Event{T: int64(in.eng.Now()), Type: telemetry.TypeFault,
		Flow: -1, Reason: reason, Seq: seq, Queue: int64(extra)}
	in.tracer.Emit(&in.evBuf)
}

// Ingress implements netem.FaultInjector: the per-packet ruling at the
// bottleneck's ingress. Stages run in a fixed order — blackout, bursty
// loss, jitter, delay spike, reorder, duplicate — and each stage's
// random draws come from dedicated sources, so the composite schedule
// is reproducible.
func (in *Injector) Ingress(now time.Duration, seq int64, size int) netem.Verdict {
	if in.blackout != nil && in.blackout.active(now) {
		return netem.Verdict{Drop: true, Reason: telemetry.ReasonBlackout}
	}
	if ge := in.plan.GE; ge != nil {
		if in.geBad {
			if in.geRng.Float64() < ge.PBG {
				in.geBad = false
			}
		} else if in.geRng.Float64() < ge.PGB {
			in.geBad = true
		}
		loss := ge.LossGood
		if in.geBad {
			loss = ge.LossBad
		}
		if loss > 0 && in.geRng.Float64() < loss {
			return netem.Verdict{Drop: true, Reason: telemetry.ReasonBurst}
		}
	}
	var extra time.Duration
	if j := in.plan.Jitter; j != nil {
		if j.Max > 0 {
			extra += time.Duration(in.pktRng.Float64() * float64(j.Max))
		}
		if j.SpikeProb > 0 && in.pktRng.Float64() < j.SpikeProb {
			in.spikeUntil = now + j.SpikeDur.D()
			if in.traceOn {
				in.emitPacket(telemetry.FaultSpike, seq, j.SpikeDur.D())
			}
		}
		if now < in.spikeUntil {
			// The path is frozen: hold the packet until the spike ends,
			// emulating the burst release after a stall.
			extra += in.spikeUntil - now
		}
	}
	if r := in.plan.Reorder; r != nil && r.Prob > 0 && in.pktRng.Float64() < r.Prob {
		extra += r.Delay.D()
		if in.traceOn {
			in.emitPacket(telemetry.FaultReorder, seq, r.Delay.D())
		}
	}
	v := netem.Verdict{ExtraDelay: extra}
	if d := in.plan.Duplicate; d != nil && d.Prob > 0 && in.pktRng.Float64() < d.Prob {
		v.Duplicate = true
		if in.traceOn {
			in.emitPacket(telemetry.FaultDup, seq, 0)
		}
	}
	return v
}

// RateScale implements netem.FaultInjector: the capacity multiplier in
// force at now (Factor during flap windows, 1 otherwise).
func (in *Injector) RateScale(now time.Duration) float64 {
	if in.flap != nil && in.flap.active(now) {
		return in.plan.CapFlaps.Factor
	}
	return 1
}

// windowStream generates the merged, start-ordered sequence of fault
// windows from a scheduled list plus an optional stochastic renewal
// process (exponential inter-arrival with mean meanEvery, exponential
// duration with mean meanDur).
type windowStream struct {
	sched []Window // sorted copy
	si    int

	rng       *rand.Rand
	meanEvery time.Duration
	meanDur   time.Duration
	cursor    time.Duration // end of the last stochastic window drawn
	pending   bool
	pStart    time.Duration
	pEnd      time.Duration
}

func newWindowStream(sched []Window, meanEvery, meanDur time.Duration, rng *rand.Rand) *windowStream {
	s := make([]Window, len(sched))
	copy(s, sched)
	sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	return &windowStream{sched: s, rng: rng, meanEvery: meanEvery, meanDur: meanDur}
}

// expDraw samples an exponential with the given mean.
func expDraw(rng *rand.Rand, mean time.Duration) time.Duration {
	u := rng.Float64()
	return time.Duration(-float64(mean) * math.Log(1-u))
}

// next returns the next window by start time; ok is false once the
// stream is exhausted (only possible without a stochastic process).
func (ws *windowStream) next() (start, end time.Duration, ok bool) {
	if ws.meanEvery > 0 && !ws.pending {
		gap := expDraw(ws.rng, ws.meanEvery)
		dur := expDraw(ws.rng, ws.meanDur)
		if dur < minStochWindow {
			dur = minStochWindow
		}
		ws.pStart = ws.cursor + gap
		ws.pEnd = ws.pStart + dur
		ws.cursor = ws.pEnd
		ws.pending = true
	}
	haveSched := ws.si < len(ws.sched)
	switch {
	case haveSched && (!ws.pending || ws.sched[ws.si].Start.D() <= ws.pStart):
		w := ws.sched[ws.si]
		ws.si++
		return w.Start.D(), w.Start.D() + w.Dur.D(), true
	case ws.pending:
		ws.pending = false
		return ws.pStart, ws.pEnd, true
	default:
		return 0, 0, false
	}
}

// windowCheck answers "is a window active at now" for a monotonically
// advancing clock, pulling windows from its stream as time passes.
type windowCheck struct {
	ws         *windowStream
	start, end time.Duration
	have       bool
	done       bool
}

func (wc *windowCheck) active(now time.Duration) bool {
	for {
		if !wc.have {
			if wc.done {
				return false
			}
			s, e, ok := wc.ws.next()
			if !ok {
				wc.done = true
				return false
			}
			wc.start, wc.end = s, e
			wc.have = true
		}
		if now >= wc.end {
			wc.have = false
			continue
		}
		return now >= wc.start
	}
}
