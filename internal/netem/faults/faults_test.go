package faults_test

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/netem"
	"libra/internal/netem/faults"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

func sec(s float64) faults.Duration { return faults.Duration(s * float64(time.Second)) }

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestPresetsAllValid(t *testing.T) {
	names := faults.PresetNames()
	if len(names) < 5 {
		t.Fatalf("suspiciously few presets: %v", names)
	}
	for _, n := range names {
		p, ok := faults.Preset(n)
		if !ok || p == nil {
			t.Fatalf("preset %s missing", n)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", n, err)
		}
		if p.Empty() {
			t.Errorf("preset %s injects nothing", n)
		}
		if _, err := faults.New(p, 1); err != nil {
			t.Errorf("preset %s: New: %v", n, err)
		}
	}
}

func TestPresetReturnsCopy(t *testing.T) {
	a, _ := faults.Preset("bursty")
	a.GE.PGB = 0.99
	b, _ := faults.Preset("bursty")
	if b.GE.PGB == 0.99 {
		t.Fatal("Preset must return a fresh copy")
	}
}

func TestParsePlan(t *testing.T) {
	src := `{
		"ge": {"p_gb": 0.01, "p_bg": 0.2, "loss_good": 0, "loss_bad": 0.5},
		"blackouts": {"scheduled": [{"start": "2s", "dur": 0.5}]},
		"reorder": {"prob": 0.1, "delay": "40ms"},
		"jitter": {"max": "10ms"},
		"cap_flaps": {"mean_every": "5s", "mean_dur": "1s", "factor": 0.25}
	}`
	p, err := faults.ParsePlan(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Blackouts.Scheduled[0].Start.D() != 2*time.Second {
		t.Fatalf("duration string: got %v", p.Blackouts.Scheduled[0].Start.D())
	}
	if p.Blackouts.Scheduled[0].Dur.D() != 500*time.Millisecond {
		t.Fatalf("numeric seconds: got %v", p.Blackouts.Scheduled[0].Dur.D())
	}
	if p.Reorder.Delay.D() != 40*time.Millisecond || p.CapFlaps.Factor != 0.25 {
		t.Fatalf("parsed plan mismatch: %+v", p)
	}
}

func TestParsePlanRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":     `{"bogus": 1}`,
		"bad probability":   `{"ge": {"p_gb": 1.5, "p_bg": 0.1, "loss_bad": 0.5}}`,
		"negative duration": `{"reorder": {"prob": 0.1, "delay": "-5ms"}}`,
		"bad duration":      `{"reorder": {"prob": 0.1, "delay": "squid"}}`,
		"factor >= 1":       `{"cap_flaps": {"mean_every": "5s", "mean_dur": "1s", "factor": 1.0}}`,
		"half stochastic":   `{"blackouts": {"mean_every": "5s"}}`,
		"empty section":     `{"blackouts": {}}`,
		"zero-dur window":   `{"blackouts": {"scheduled": [{"start": "1s", "dur": "0s"}]}}`,
	}
	for name, src := range cases {
		if _, err := faults.ParsePlan(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %s", name, src)
		}
	}
}

func TestLoadSpec(t *testing.T) {
	if p, err := faults.Load("bursty"); err != nil || p.GE == nil {
		t.Fatalf("preset load: %v %+v", err, p)
	}
	if p, err := faults.Load(""); err != nil || p != nil {
		t.Fatalf("empty spec should be a nil plan, got %v %v", p, err)
	}
	_, err := faults.Load("definitely-not-a-preset")
	if err == nil {
		t.Fatal("unknown preset must error")
	}
	if !strings.Contains(err.Error(), "bursty") {
		t.Fatalf("error should list presets: %v", err)
	}
	dir := t.TempDir() + "/plan.json"
	if err := writeFile(dir, `{"duplicate": {"prob": 0.5}}`); err != nil {
		t.Fatal(err)
	}
	if p, err := faults.Load(dir); err != nil || p.Duplicate == nil {
		t.Fatalf("file load: %v %+v", err, p)
	}
}

// scheduleLog replays a fixed synthetic packet sequence through an
// injector and serialises every ruling — the byte-identical view of
// the fault schedule.
func scheduleLog(in *faults.Injector, packets int) []byte {
	var buf bytes.Buffer
	now := time.Duration(0)
	for i := 0; i < packets; i++ {
		now += 500 * time.Microsecond
		v := in.Ingress(now, int64(i), 1500)
		fmt.Fprintf(&buf, "%d %v %q %v %d\n", i, v.Drop, v.Reason, v.Duplicate, v.ExtraDelay)
	}
	for s := time.Duration(0); s < 30*time.Second; s += 10 * time.Millisecond {
		fmt.Fprintf(&buf, "%v\n", in.RateScale(s))
	}
	return buf.Bytes()
}

func TestDeterministicSchedule(t *testing.T) {
	plan, _ := faults.Preset("hostile")
	a := faults.MustNew(plan, 42)
	b := faults.MustNew(plan, 42)
	la, lb := scheduleLog(a, 20000), scheduleLog(b, 20000)
	if !bytes.Equal(la, lb) {
		t.Fatal("identical (plan, seed) must yield byte-identical schedules")
	}
	c := faults.MustNew(plan, 43)
	if bytes.Equal(la, scheduleLog(c, 20000)) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestDeterministicSimulation(t *testing.T) {
	run := func() (int64, netem.DropStats) {
		plan, _ := faults.Preset("hostile")
		n := netem.New(netem.Config{
			Capacity:    trace.Constant(trace.Mbps(24)),
			MinRTT:      40 * time.Millisecond,
			BufferBytes: 150_000,
			Faults:      faults.MustNew(plan, 7),
			Seed:        7,
		})
		n.AddFlow(&cc.FixedRate{R: trace.Mbps(12)}, 0, 0)
		n.Run(20 * time.Second)
		return n.Link().DeliveredBytes(), n.Link().DropStats()
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("whole-sim determinism: %d/%+v vs %d/%+v", d1, s1, d2, s2)
	}
}

func TestGilbertElliottLoss(t *testing.T) {
	plan := &faults.Plan{GE: &faults.GilbertElliott{PGB: 0.01, PBG: 0.125, LossGood: 0, LossBad: 0.5}}
	in := faults.MustNew(plan, 9)
	drops, runs, runLen := 0, 0, 0
	inRun := false
	const N = 50000
	for i := 0; i < N; i++ {
		v := in.Ingress(time.Duration(i)*time.Millisecond, int64(i), 1500)
		if v.Drop {
			if v.Reason != telemetry.ReasonBurst {
				t.Fatalf("GE drop reason %q", v.Reason)
			}
			drops++
			if !inRun {
				runs++
				inRun = true
			}
			runLen++
		} else {
			inRun = false
		}
	}
	// Stationary bad-state probability is PGB/(PGB+PBG) ≈ 7.4%, so the
	// long-run loss rate is ≈ 3.7%.
	rate := float64(drops) / N
	if rate < 0.015 || rate > 0.08 {
		t.Fatalf("GE loss rate %.4f outside plausible band", rate)
	}
	// Burstiness: mean drop-run length must exceed the iid expectation
	// (≈ 1/(1-rate) ≈ 1.04) by a clear margin.
	if mean := float64(runLen) / float64(runs); mean < 1.3 {
		t.Fatalf("GE drops not bursty: mean run %.2f", mean)
	}
}

func TestBlackoutWindows(t *testing.T) {
	plan := &faults.Plan{Blackouts: &faults.Blackouts{Scheduled: []faults.Window{
		{Start: sec(1), Dur: sec(1)},
		{Start: sec(4), Dur: sec(0.5)},
	}}}
	in := faults.MustNew(plan, 1)
	cases := []struct {
		at   time.Duration
		drop bool
	}{
		{500 * time.Millisecond, false},
		{1100 * time.Millisecond, true},
		{1900 * time.Millisecond, true},
		{2100 * time.Millisecond, false},
		{4200 * time.Millisecond, true},
		{4600 * time.Millisecond, false},
	}
	for i, c := range cases {
		v := in.Ingress(c.at, int64(i), 1500)
		if v.Drop != c.drop {
			t.Errorf("at %v: drop=%v want %v", c.at, v.Drop, c.drop)
		}
		if v.Drop && v.Reason != telemetry.ReasonBlackout {
			t.Errorf("at %v: reason %q", c.at, v.Reason)
		}
	}
}

func TestCapFlapRateScale(t *testing.T) {
	plan := &faults.Plan{CapFlaps: &faults.CapFlaps{
		Scheduled: []faults.Window{{Start: sec(2), Dur: sec(1)}}, Factor: 0.1}}
	in := faults.MustNew(plan, 1)
	if got := in.RateScale(1 * time.Second); got != 1 {
		t.Fatalf("outside flap: scale %v", got)
	}
	if got := in.RateScale(2500 * time.Millisecond); got != 0.1 {
		t.Fatalf("inside flap: scale %v", got)
	}
	if got := in.RateScale(3500 * time.Millisecond); got != 1 {
		t.Fatalf("after flap: scale %v", got)
	}
}

func TestReorderAndDuplicateVerdicts(t *testing.T) {
	plan := &faults.Plan{
		Reorder:   &faults.Reorder{Prob: 1, Delay: faults.Duration(40 * time.Millisecond)},
		Duplicate: &faults.Duplicate{Prob: 1},
	}
	in := faults.MustNew(plan, 1)
	v := in.Ingress(time.Second, 1, 1500)
	if v.ExtraDelay != 40*time.Millisecond || !v.Duplicate || v.Drop {
		t.Fatalf("verdict %+v", v)
	}
}

// TestBlackoutDropsAtLink drives a real emulated path through a
// scheduled outage and checks the link-level accounting plus the
// fault.* telemetry stream.
func TestBlackoutDropsAtLink(t *testing.T) {
	plan := &faults.Plan{Blackouts: &faults.Blackouts{Scheduled: []faults.Window{
		{Start: sec(2), Dur: sec(1)}}}}
	var events bytes.Buffer
	rec := telemetry.NewRecorder(&events)
	n := netem.New(netem.Config{
		Capacity:    trace.Constant(trace.Mbps(12)),
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 150_000,
		Faults:      faults.MustNew(plan, 3),
		Seed:        3,
		Tracer:      rec,
	})
	n.AddFlow(&cc.FixedRate{R: trace.Mbps(6)}, 0, 0)
	n.Run(5 * time.Second)
	ds := n.Link().DropStats()
	if ds.Blackout == 0 {
		t.Fatalf("no blackout drops recorded: %+v", ds)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := telemetry.ReadAll(&events)
	if err != nil {
		t.Fatal(err)
	}
	var sawStart, sawEnd, sawDrop bool
	for _, e := range evs {
		switch {
		case e.Type == telemetry.TypeFault && e.Reason == telemetry.FaultBlackoutStart:
			sawStart = true
		case e.Type == telemetry.TypeFault && e.Reason == telemetry.FaultBlackoutEnd:
			sawEnd = true
		case e.Type == telemetry.TypeDrop && e.Reason == telemetry.ReasonBlackout:
			sawDrop = true
		}
	}
	if !sawStart || !sawEnd || !sawDrop {
		t.Fatalf("missing fault telemetry: start=%v end=%v drop=%v", sawStart, sawEnd, sawDrop)
	}
}

// TestDuplicationIsHarmless checks that injected duplicates reach the
// receiver without wedging the flow (the ACK path dedups).
func TestDuplicationIsHarmless(t *testing.T) {
	plan := &faults.Plan{Duplicate: &faults.Duplicate{Prob: 1}}
	n := netem.New(netem.Config{
		Capacity:    trace.Constant(trace.Mbps(24)),
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 150_000,
		Faults:      faults.MustNew(plan, 4),
		Seed:        4,
	})
	f := n.AddFlow(&cc.FixedRate{R: trace.Mbps(4)}, 0, 0)
	n.Run(5 * time.Second)
	if f.Stats.AckedBytes == 0 {
		t.Fatal("flow made no progress under duplication")
	}
	// Every packet is duplicated, so the link serialises ~2x the
	// goodput.
	if ratio := float64(n.Link().DeliveredBytes()) / float64(f.Stats.AckedBytes); ratio < 1.5 {
		t.Fatalf("expected ~2x link traffic under 100%% duplication, ratio %.2f", ratio)
	}
}

// TestCapFlapCutsThroughput checks the capacity multiplier reaches the
// serialisation path.
func TestCapFlapCutsThroughput(t *testing.T) {
	run := func(plan *faults.Plan) int64 {
		var inj netem.FaultInjector
		if plan != nil {
			inj = faults.MustNew(plan, 5)
		}
		n := netem.New(netem.Config{
			Capacity:    trace.Constant(trace.Mbps(24)),
			MinRTT:      40 * time.Millisecond,
			BufferBytes: 150_000,
			Faults:      inj,
			Seed:        5,
		})
		n.AddFlow(&cc.FixedRate{R: trace.Mbps(24)}, 0, 0)
		n.Run(10 * time.Second)
		return n.Link().DeliveredBytes()
	}
	flapped := run(&faults.Plan{CapFlaps: &faults.CapFlaps{
		Scheduled: []faults.Window{{Start: sec(1), Dur: sec(8)}}, Factor: 0.1}})
	clean := run(nil)
	if float64(flapped) > 0.6*float64(clean) {
		t.Fatalf("capacity flap had no bite: %d vs %d bytes", flapped, clean)
	}
}
