// Plan mutation/bounds API: the declared, bounded knob space the
// adversarial lab (internal/lab) searches over. A Plan projects into a
// fixed-length vector of bounded scalars (Vector), any vector decodes
// back into a valid Plan (PlanFromVector), and MutatePlan perturbs a
// plan inside the box. Every operation here is deterministic given its
// inputs: decode gates and clamps use fixed thresholds, and all
// randomness comes from the caller's rand source.
package faults

import (
	"math"
	"math/rand"
	"time"
)

// Knob declares one bounded, continuous search dimension of a Plan.
type Knob struct {
	Name     string
	Min, Max float64
}

// Clamp forces v into the knob's [Min, Max] box; NaN clamps to Min.
func (k Knob) Clamp(v float64) float64 {
	if math.IsNaN(v) || v < k.Min {
		return k.Min
	}
	if v > k.Max {
		return k.Max
	}
	return v
}

// planKnobs is the declared fault-plan knob space, in vector order.
// The bounds box the lab's adversarial search: loss burstiness
// (Gilbert-Elliott chain), blackout timing and length, jitter
// amplitude and freeze spikes, capacity-flap cadence and depth, and
// reordering. Dimensions a Plan can express but the box cannot
// (multiple scheduled windows, stochastic blackouts, duplication) are
// projected to their closest in-box equivalent by Vector.
var planKnobs = []Knob{
	{"ge.p_gb", 0, 0.05},
	{"ge.p_bg", 0.02, 1},
	{"ge.loss_bad", 0, 0.9},
	{"blackout.start_s", 0, 40},
	{"blackout.dur_s", 0, 5},
	{"jitter.max_ms", 0, 100},
	{"jitter.spike_prob", 0, 0.01},
	{"jitter.spike_dur_ms", 0, 500},
	{"flap.every_s", 2, 20},
	{"flap.dur_s", 0, 4},
	{"flap.factor", 0.05, 0.95},
	{"reorder.prob", 0, 0.1},
}

// Decode gates: a knob under its gate switches the section off, so
// every decoded plan passes Validate (which rejects empty or
// half-configured sections).
const (
	gateGEPGB     = 1e-4
	gateGELoss    = 1e-3
	gateBlackoutS = 0.01
	gateJitterMs  = 0.01
	gateSpikeProb = 1e-5
	gateSpikeMs   = 1
	gateFlapS     = 0.05
	gateReorder   = 1e-3
)

// reorderDelay is the fixed extra delay applied to reordered packets
// when decoding from knob space (the knob controls only the rate).
const reorderDelay = 40 * time.Millisecond

// PlanKnobs returns the declared knob space (a fresh copy, fixed
// order). len(PlanKnobs()) is the dimension of Vector/PlanFromVector.
func PlanKnobs() []Knob {
	return append([]Knob(nil), planKnobs...)
}

// Vector projects the plan into knob space: one bounded scalar per
// declared knob, clamped into its box. Absent sections encode as their
// knobs' gate-off values, so PlanFromVector(p.Vector()) reproduces any
// plan the box can express. Plans outside the box (stochastic
// blackouts, several scheduled windows) project to their first or mean
// window — a best-effort seed for the search, not a lossless encoding.
func (p *Plan) Vector() []float64 {
	v := make([]float64, len(planKnobs))
	if p != nil {
		if ge := p.GE; ge != nil {
			v[0], v[1], v[2] = ge.PGB, ge.PBG, ge.LossBad
		}
		if b := p.Blackouts; b != nil {
			switch {
			case len(b.Scheduled) > 0:
				v[3] = b.Scheduled[0].Start.D().Seconds()
				v[4] = b.Scheduled[0].Dur.D().Seconds()
			case b.MeanEvery > 0:
				v[3] = b.MeanEvery.D().Seconds()
				v[4] = b.MeanDur.D().Seconds()
			}
		}
		if j := p.Jitter; j != nil {
			v[5] = float64(j.Max.D()) / float64(time.Millisecond)
			v[6] = j.SpikeProb
			v[7] = float64(j.SpikeDur.D()) / float64(time.Millisecond)
		}
		if c := p.CapFlaps; c != nil {
			switch {
			case c.MeanEvery > 0:
				v[8] = c.MeanEvery.D().Seconds()
				v[9] = c.MeanDur.D().Seconds()
			case len(c.Scheduled) > 0:
				v[8] = c.Scheduled[0].Start.D().Seconds()
				v[9] = c.Scheduled[0].Dur.D().Seconds()
			}
			v[10] = c.Factor
		}
		if r := p.Reorder; r != nil {
			v[11] = r.Prob
		}
	}
	for i, k := range planKnobs {
		v[i] = k.Clamp(v[i])
	}
	return v
}

// PlanFromVector decodes a knob vector into a Plan that always passes
// Validate: values clamp into their declared bounds and sections whose
// controlling knob sits under its gate are omitted entirely. Vectors
// shorter than the knob space read as zero-padded; extra entries are
// ignored.
func PlanFromVector(v []float64) *Plan {
	at := func(i int) float64 {
		if i < len(v) {
			return planKnobs[i].Clamp(v[i])
		}
		return planKnobs[i].Clamp(0)
	}
	// Round (not truncate) float→Duration so decode∘encode is the
	// identity on decoded plans: integer nanoseconds survive the trip
	// through seconds/milliseconds exactly for any duration the box
	// allows.
	secs := func(s float64) Duration { return Duration(math.Round(s * float64(time.Second))) }
	millis := func(ms float64) Duration { return Duration(math.Round(ms * float64(time.Millisecond))) }
	p := &Plan{}
	if pgb, lossBad := at(0), at(2); pgb >= gateGEPGB && lossBad >= gateGELoss {
		p.GE = &GilbertElliott{PGB: pgb, PBG: at(1), LossBad: lossBad}
	}
	if dur := at(4); dur >= gateBlackoutS {
		p.Blackouts = &Blackouts{Scheduled: []Window{{
			Start: secs(at(3)),
			Dur:   secs(dur),
		}}}
	}
	maxMs, spikeProb, spikeMs := at(5), at(6), at(7)
	if spikeProb < gateSpikeProb || spikeMs < gateSpikeMs {
		spikeProb, spikeMs = 0, 0 // spikes are all-or-nothing (Validate's pairing rule)
	}
	if maxMs >= gateJitterMs || spikeProb > 0 {
		p.Jitter = &Jitter{
			Max:       millis(maxMs),
			SpikeProb: spikeProb,
			SpikeDur:  millis(spikeMs),
		}
	}
	if dur := at(9); dur >= gateFlapS {
		p.CapFlaps = &CapFlaps{
			MeanEvery: secs(at(8)),
			MeanDur:   secs(dur),
			Factor:    at(10),
		}
	}
	if prob := at(11); prob >= gateReorder {
		p.Reorder = &Reorder{Prob: prob, Delay: Duration(reorderDelay)}
	}
	return p
}

// MutateVector perturbs v in place inside the knob box: each knob
// steps by a uniform draw in ±scale×range with probability 1/2, and at
// least one knob always moves. Deterministic given rng.
func MutateVector(v []float64, knobs []Knob, rng *rand.Rand, scale float64) {
	if len(v) == 0 {
		return
	}
	mutated := false
	for i := range v {
		if i >= len(knobs) {
			break
		}
		if rng.Float64() < 0.5 {
			v[i] = knobs[i].Clamp(v[i] + (2*rng.Float64()-1)*scale*(knobs[i].Max-knobs[i].Min))
			mutated = true
		}
	}
	if !mutated {
		i := rng.Intn(len(v))
		if i < len(knobs) {
			v[i] = knobs[i].Clamp(v[i] + (2*rng.Float64()-1)*scale*(knobs[i].Max-knobs[i].Min))
		}
	}
}

// MutatePlan returns a bounded random perturbation of the plan: the
// plan projects into knob space, steps inside the box (MutateVector),
// and decodes back, so the result always validates and always stays
// within the declared bounds regardless of the input plan. scale is
// the step size as a fraction of each knob's range (0.25 explores a
// quarter of the box per step).
func MutatePlan(p *Plan, rng *rand.Rand, scale float64) *Plan {
	v := p.Vector()
	MutateVector(v, planKnobs, rng, scale)
	return PlanFromVector(v)
}
