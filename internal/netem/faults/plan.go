// Package faults implements the fault-injection subsystem for netem:
// a seeded, deterministic composition of adversarial link dynamics —
// Gilbert-Elliott bursty loss, link blackouts, packet reordering and
// duplication, delay jitter and spikes, and capacity flaps — described
// by a declarative Plan and realised by an Injector bound to a
// simulation. Identical (Plan, seed) pairs reproduce byte-identical
// fault schedules.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"
)

// Duration is a time.Duration that decodes from either a Go duration
// string ("250ms", "3s") or a bare JSON number of seconds.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON encodes as a Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "250ms"-style strings or numeric seconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		dd, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("faults: bad duration %q: %w", x, err)
		}
		*d = Duration(dd)
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("faults: non-finite duration %v", x)
		}
		*d = Duration(x * float64(time.Second))
	default:
		return fmt.Errorf("faults: duration must be a string or seconds, got %T", v)
	}
	return nil
}

// Window is one scheduled fault interval [Start, Start+Dur).
type Window struct {
	Start Duration `json:"start"`
	Dur   Duration `json:"dur"`
}

// GilbertElliott parameterises the classic 2-state bursty-loss chain:
// the channel flips between a Good and a Bad state with per-packet
// transition probabilities, and each state drops packets iid at its own
// rate. High LossBad with small PBG produces loss bursts whose mean
// length is 1/PBG packets.
type GilbertElliott struct {
	// PGB and PBG are the per-packet Good→Bad and Bad→Good transition
	// probabilities.
	PGB float64 `json:"p_gb"`
	PBG float64 `json:"p_bg"`
	// LossGood and LossBad are the per-packet drop probabilities inside
	// each state (typically LossGood ≈ 0, LossBad ≫ 0).
	LossGood float64 `json:"loss_good"`
	LossBad  float64 `json:"loss_bad"`
}

// Blackouts describes total link outages: every packet offered during
// an active window is dropped. Windows come from the explicit Scheduled
// list, from a stochastic renewal process (exponential gaps with mean
// MeanEvery, exponential durations with mean MeanDur), or both.
type Blackouts struct {
	Scheduled []Window `json:"scheduled,omitempty"`
	MeanEvery Duration `json:"mean_every,omitempty"`
	MeanDur   Duration `json:"mean_dur,omitempty"`
}

// Reorder delays a random subset of packets by a fixed extra Delay,
// letting later packets overtake them on the wire.
type Reorder struct {
	Prob  float64  `json:"prob"`
	Delay Duration `json:"delay"`
}

// Duplicate re-enqueues an independent copy of a random subset of
// packets behind the original.
type Duplicate struct {
	Prob float64 `json:"prob"`
}

// Jitter adds uniform random egress delay in [0, Max] to every packet,
// plus optional delay spikes: with probability SpikeProb a packet
// stalls the path for SpikeDur, and packets arriving during the stall
// are held until it ends (emulating a burst release after a freeze).
type Jitter struct {
	Max       Duration `json:"max"`
	SpikeProb float64  `json:"spike_prob,omitempty"`
	SpikeDur  Duration `json:"spike_dur,omitempty"`
}

// CapFlaps scales the bottleneck capacity by Factor during flap
// windows (scheduled and/or stochastic, like Blackouts).
type CapFlaps struct {
	Scheduled []Window `json:"scheduled,omitempty"`
	MeanEvery Duration `json:"mean_every,omitempty"`
	MeanDur   Duration `json:"mean_dur,omitempty"`
	// Factor multiplies the link capacity while a flap is active
	// (0.1 = the link decimates to 10% of nominal).
	Factor float64 `json:"factor"`
}

// Plan is a declarative fault-injection configuration. Every field is
// optional; nil sections inject nothing. A Plan plus a seed fully
// determines the fault schedule.
type Plan struct {
	GE        *GilbertElliott `json:"ge,omitempty"`
	Blackouts *Blackouts      `json:"blackouts,omitempty"`
	Reorder   *Reorder        `json:"reorder,omitempty"`
	Duplicate *Duplicate      `json:"duplicate,omitempty"`
	Jitter    *Jitter         `json:"jitter,omitempty"`
	CapFlaps  *CapFlaps       `json:"cap_flaps,omitempty"`
}

func probErr(name string, p float64) error {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("faults: %s must be in [0,1], got %v", name, p)
	}
	return nil
}

func durErr(name string, d Duration) error {
	if d < 0 {
		return fmt.Errorf("faults: %s must be non-negative, got %v", name, d.D())
	}
	return nil
}

func windowsErr(name string, ws []Window) error {
	for i, w := range ws {
		if w.Start < 0 || w.Dur <= 0 {
			return fmt.Errorf("faults: %s.scheduled[%d] needs start >= 0 and dur > 0", name, i)
		}
	}
	return nil
}

func stochasticErr(name string, every, dur Duration) error {
	if (every > 0) != (dur > 0) {
		return fmt.Errorf("faults: %s needs both mean_every and mean_dur set (or neither)", name)
	}
	if err := durErr(name+".mean_every", every); err != nil {
		return err
	}
	return durErr(name+".mean_dur", dur)
}

// Validate checks the plan's parameters; a nil or empty plan is valid.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if ge := p.GE; ge != nil {
		for _, c := range []struct {
			n string
			v float64
		}{{"ge.p_gb", ge.PGB}, {"ge.p_bg", ge.PBG}, {"ge.loss_good", ge.LossGood}, {"ge.loss_bad", ge.LossBad}} {
			if err := probErr(c.n, c.v); err != nil {
				return err
			}
		}
	}
	if b := p.Blackouts; b != nil {
		if err := windowsErr("blackouts", b.Scheduled); err != nil {
			return err
		}
		if err := stochasticErr("blackouts", b.MeanEvery, b.MeanDur); err != nil {
			return err
		}
		if len(b.Scheduled) == 0 && b.MeanEvery == 0 {
			return fmt.Errorf("faults: blackouts section is empty")
		}
	}
	if r := p.Reorder; r != nil {
		if err := probErr("reorder.prob", r.Prob); err != nil {
			return err
		}
		if err := durErr("reorder.delay", r.Delay); err != nil {
			return err
		}
	}
	if d := p.Duplicate; d != nil {
		if err := probErr("duplicate.prob", d.Prob); err != nil {
			return err
		}
	}
	if j := p.Jitter; j != nil {
		if err := durErr("jitter.max", j.Max); err != nil {
			return err
		}
		if err := probErr("jitter.spike_prob", j.SpikeProb); err != nil {
			return err
		}
		if err := durErr("jitter.spike_dur", j.SpikeDur); err != nil {
			return err
		}
		if (j.SpikeProb > 0) != (j.SpikeDur > 0) {
			return fmt.Errorf("faults: jitter needs both spike_prob and spike_dur set (or neither)")
		}
	}
	if c := p.CapFlaps; c != nil {
		if err := windowsErr("cap_flaps", c.Scheduled); err != nil {
			return err
		}
		if err := stochasticErr("cap_flaps", c.MeanEvery, c.MeanDur); err != nil {
			return err
		}
		if len(c.Scheduled) == 0 && c.MeanEvery == 0 {
			return fmt.Errorf("faults: cap_flaps section is empty")
		}
		if math.IsNaN(c.Factor) || c.Factor < 0 || c.Factor >= 1 {
			return fmt.Errorf("faults: cap_flaps.factor must be in [0,1), got %v", c.Factor)
		}
	}
	return nil
}

// Clone returns a deep copy of the plan; mutating the copy never
// touches the original. A nil plan clones to nil.
func (p *Plan) Clone() *Plan {
	if p == nil {
		return nil
	}
	q := &Plan{}
	if p.GE != nil {
		ge := *p.GE
		q.GE = &ge
	}
	if p.Blackouts != nil {
		b := *p.Blackouts
		b.Scheduled = append([]Window(nil), p.Blackouts.Scheduled...)
		q.Blackouts = &b
	}
	if p.Reorder != nil {
		r := *p.Reorder
		q.Reorder = &r
	}
	if p.Duplicate != nil {
		d := *p.Duplicate
		q.Duplicate = &d
	}
	if p.Jitter != nil {
		j := *p.Jitter
		q.Jitter = &j
	}
	if p.CapFlaps != nil {
		c := *p.CapFlaps
		c.Scheduled = append([]Window(nil), p.CapFlaps.Scheduled...)
		q.CapFlaps = &c
	}
	return q
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (p.GE == nil && p.Blackouts == nil && p.Reorder == nil &&
		p.Duplicate == nil && p.Jitter == nil && p.CapFlaps == nil)
}

// ParsePlan decodes a JSON plan from r, rejecting unknown fields, and
// validates it.
func ParsePlan(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: parse plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ParsePlanFile reads and parses a JSON plan file.
func ParsePlanFile(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := ParsePlan(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// presets are the named fault classes used by the CLIs and the
// adversarial sweep (figa1). Each returns a fresh Plan so callers can
// mutate their copy.
var presets = map[string]func() *Plan{
	// Bursty wireless-style loss: ~1% of packets start an 8-packet
	// (mean) burst dropping half the packets inside it.
	"bursty": func() *Plan {
		return &Plan{GE: &GilbertElliott{PGB: 0.01, PBG: 0.125, LossGood: 0.0001, LossBad: 0.5}}
	},
	// One hard 3-second outage mid-run (tunnel / handover failure).
	"blackout": func() *Plan {
		return &Plan{Blackouts: &Blackouts{Scheduled: []Window{
			{Start: Duration(8 * time.Second), Dur: Duration(3 * time.Second)}}}}
	},
	// Repeated stochastic outages: ~600 ms every ~10 s on average.
	"flaky": func() *Plan {
		return &Plan{Blackouts: &Blackouts{
			MeanEvery: Duration(10 * time.Second), MeanDur: Duration(600 * time.Millisecond)}}
	},
	// 5% of packets delayed an extra 40 ms, overtaken by later ones.
	"reorder": func() *Plan {
		return &Plan{Reorder: &Reorder{Prob: 0.05, Delay: Duration(40 * time.Millisecond)}}
	},
	// Uniform jitter up to 15 ms plus occasional 200 ms freeze-and-burst.
	"jitter": func() *Plan {
		return &Plan{Jitter: &Jitter{Max: Duration(15 * time.Millisecond),
			SpikeProb: 0.002, SpikeDur: Duration(200 * time.Millisecond)}}
	},
	// 2% packet duplication.
	"dup": func() *Plan {
		return &Plan{Duplicate: &Duplicate{Prob: 0.02}}
	},
	// Capacity decimates to 10% for ~2 s every ~6 s on average.
	"cap-flap": func() *Plan {
		return &Plan{CapFlaps: &CapFlaps{
			MeanEvery: Duration(6 * time.Second), MeanDur: Duration(2 * time.Second), Factor: 0.1}}
	},
	// Everything at once: the kitchen-sink adversary.
	"hostile": func() *Plan {
		return &Plan{
			GE:        &GilbertElliott{PGB: 0.005, PBG: 0.125, LossGood: 0.0001, LossBad: 0.5},
			Blackouts: &Blackouts{MeanEvery: Duration(15 * time.Second), MeanDur: Duration(800 * time.Millisecond)},
			Reorder:   &Reorder{Prob: 0.02, Delay: Duration(30 * time.Millisecond)},
			Duplicate: &Duplicate{Prob: 0.01},
			Jitter:    &Jitter{Max: Duration(10 * time.Millisecond), SpikeProb: 0.001, SpikeDur: Duration(150 * time.Millisecond)},
			CapFlaps:  &CapFlaps{MeanEvery: Duration(12 * time.Second), MeanDur: Duration(1500 * time.Millisecond), Factor: 0.2},
		}
	},
}

// Preset returns a fresh copy of a named fault plan.
func Preset(name string) (*Plan, bool) {
	f, ok := presets[name]
	if !ok {
		return nil, false
	}
	return f(), true
}

// PresetNames lists the registered presets, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load resolves spec as either a preset name or a path to a JSON plan
// file (anything containing a path separator or ending in .json). This
// is the CLI entry point behind the -fault flags.
func Load(spec string) (*Plan, error) {
	if spec == "" {
		return nil, nil
	}
	if p, ok := Preset(spec); ok {
		return p, nil
	}
	if strings.ContainsAny(spec, "/\\") || strings.HasSuffix(spec, ".json") {
		return ParsePlanFile(spec)
	}
	return nil, fmt.Errorf("faults: unknown preset %q (have %s; or pass a .json plan file)",
		spec, strings.Join(PresetNames(), ", "))
}
