package faults_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"libra/internal/netem/faults"
)

// marshalPlan renders a plan the way the lab serializes artifacts.
func marshalPlan(t *testing.T, p *faults.Plan) []byte {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestPlanJSONRoundTrip guards the lab's replay contract: every preset
// and every mutated plan must survive marshal → ParsePlan → marshal
// byte-for-byte, and must validate on both sides.
func TestPlanJSONRoundTrip(t *testing.T) {
	plans := map[string]*faults.Plan{}
	for _, name := range faults.PresetNames() {
		p, ok := faults.Preset(name)
		if !ok {
			t.Fatalf("preset %q vanished", name)
		}
		plans["preset:"+name] = p
	}
	rng := rand.New(rand.NewSource(7))
	base, _ := faults.Preset("hostile")
	for i := 0; i < 32; i++ {
		base = faults.MutatePlan(base, rng, 0.3)
		plans["mutant:"+string(rune('a'+i%26))+string(rune('0'+i/26))] = base
	}
	for name, p := range plans {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: invalid before round-trip: %v", name, err)
		}
		b1 := marshalPlan(t, p)
		back, err := faults.ParsePlan(bytes.NewReader(b1))
		if err != nil {
			t.Fatalf("%s: ParsePlan(%s): %v", name, b1, err)
		}
		b2 := marshalPlan(t, back)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: round-trip not byte-identical:\n  %s\n  %s", name, b1, b2)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("%s: round-trip changed the plan:\n  %+v\n  %+v", name, p, back)
		}
	}
}

func TestPlanClone(t *testing.T) {
	var nilPlan *faults.Plan
	if nilPlan.Clone() != nil {
		t.Fatal("nil plan must clone to nil")
	}
	for _, name := range faults.PresetNames() {
		p, _ := faults.Preset(name)
		q := p.Clone()
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("%s: clone differs", name)
		}
		// Mutating the clone must never reach the original.
		if q.GE != nil {
			q.GE.PGB = 0.99
		}
		if q.Blackouts != nil && len(q.Blackouts.Scheduled) > 0 {
			q.Blackouts.Scheduled[0].Start = 0
		}
		orig, _ := faults.Preset(name)
		if !reflect.DeepEqual(p, orig) {
			t.Fatalf("%s: mutating clone leaked into original", name)
		}
	}
}

func TestPlanKnobsDeclaration(t *testing.T) {
	knobs := faults.PlanKnobs()
	if len(knobs) == 0 {
		t.Fatal("no knobs declared")
	}
	seen := map[string]bool{}
	for _, k := range knobs {
		if k.Name == "" {
			t.Fatal("unnamed knob")
		}
		if seen[k.Name] {
			t.Fatalf("duplicate knob %q", k.Name)
		}
		seen[k.Name] = true
		if !(k.Min < k.Max) {
			t.Fatalf("knob %q: bad bounds [%v,%v]", k.Name, k.Min, k.Max)
		}
	}
	// The returned slice is a copy: mutating it must not poison the
	// package's declaration.
	knobs[0].Max = -1
	if faults.PlanKnobs()[0].Max == -1 {
		t.Fatal("PlanKnobs returned shared backing storage")
	}
}

// TestVectorRoundTrip checks the projection is a retraction: decoding a
// vector and re-encoding it is the identity on decoded plans.
func TestVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	knobs := faults.PlanKnobs()
	for trial := 0; trial < 200; trial++ {
		v := make([]float64, len(knobs))
		for i, k := range knobs {
			v[i] = k.Min + rng.Float64()*(k.Max-k.Min)
		}
		p := faults.PlanFromVector(v)
		if err := p.Validate(); err != nil && !p.Empty() {
			t.Fatalf("trial %d: decoded plan invalid: %v\nvector %v", trial, err, v)
		}
		w := p.Vector()
		q := faults.PlanFromVector(w)
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("trial %d: vector round-trip changed plan:\n  %+v\n  %+v", trial, p, q)
		}
	}
}

// TestVectorBounds: whatever plan goes in, the projection lands inside
// the declared box.
func TestVectorBounds(t *testing.T) {
	check := func(name string, p *faults.Plan) {
		t.Helper()
		v := p.Vector()
		knobs := faults.PlanKnobs()
		if len(v) != len(knobs) {
			t.Fatalf("%s: vector dim %d, want %d", name, len(v), len(knobs))
		}
		for i, k := range knobs {
			if v[i] < k.Min || v[i] > k.Max {
				t.Fatalf("%s: knob %s = %v outside [%v,%v]", name, k.Name, v[i], k.Min, k.Max)
			}
		}
	}
	check("nil", nil)
	check("empty", &faults.Plan{})
	for _, name := range faults.PresetNames() {
		p, _ := faults.Preset(name)
		check("preset:"+name, p)
	}
}

func TestMutatePlanDeterministicAndBounded(t *testing.T) {
	base, _ := faults.Preset("bursty")
	a := faults.MutatePlan(base, rand.New(rand.NewSource(42)), 0.25)
	b := faults.MutatePlan(base, rand.New(rand.NewSource(42)), 0.25)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different mutants")
	}
	c := faults.MutatePlan(base, rand.New(rand.NewSource(43)), 0.25)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical mutants (suspicious)")
	}
	// A long mutation chain must stay valid and inside the box.
	p := base
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p = faults.MutatePlan(p, rng, 0.5)
		if err := p.Validate(); err != nil && !p.Empty() {
			t.Fatalf("step %d: mutant invalid: %v", i, err)
		}
		v := p.Vector()
		for j, k := range faults.PlanKnobs() {
			if v[j] < k.Min || v[j] > k.Max {
				t.Fatalf("step %d: knob %s = %v escaped [%v,%v]", i, k.Name, v[j], k.Min, k.Max)
			}
		}
	}
}

// FuzzPlanMutate: mutation must keep any parseable plan inside the
// declared knob bounds, produce only valid (or empty) plans, and never
// panic the injector built from the mutant.
func FuzzPlanMutate(f *testing.F) {
	for _, name := range faults.PresetNames() {
		p, _ := faults.Preset(name)
		b, err := json.Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(b), int64(1), 0.25)
	}
	f.Add(`{}`, int64(0), 0.0)
	f.Add(`{"jitter":{"max":"15ms","spike_prob":0.002,"spike_dur":"200ms"}}`, int64(9), 1.5)
	f.Add(`{"blackouts":{"mean_every":"10s","mean_dur":"600ms"}}`, int64(-3), -0.5)
	f.Fuzz(func(t *testing.T, in string, seed int64, scale float64) {
		plan, err := faults.ParsePlan(strings.NewReader(in))
		if err != nil {
			return
		}
		mut := faults.MutatePlan(plan, rand.New(rand.NewSource(seed)), scale)
		if err := mut.Validate(); err != nil && !mut.Empty() {
			t.Fatalf("mutant invalid: %v", err)
		}
		v := mut.Vector()
		for i, k := range faults.PlanKnobs() {
			if v[i] < k.Min || v[i] > k.Max {
				t.Fatalf("knob %s = %v outside declared bounds [%v,%v]", k.Name, v[i], k.Min, k.Max)
			}
		}
		if mut.Empty() {
			return
		}
		inj, err := faults.New(mut, 1)
		if err != nil {
			t.Fatalf("valid mutant rejected by New: %v", err)
		}
		for i := 0; i < 10; i++ {
			inj.Ingress(time.Duration(i)*time.Millisecond, int64(i), 1500)
		}
		if s := inj.RateScale(0); s < 0 || s > 1 {
			t.Fatalf("rate scale out of range: %v", s)
		}
	})
}
