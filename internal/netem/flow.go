package netem

import (
	"time"

	"libra/internal/cc"
	"libra/internal/sim"
)

// reorderThreshold is the duplicate-ACK style gap (in packets) beyond
// which an outstanding packet is declared lost.
const reorderThreshold = 3

// rtoMin and rtoMax bound the retransmission-timeout estimate.
const (
	rtoMin = 200 * time.Millisecond
	rtoMax = 10 * time.Second
)

type pktState struct {
	size            int
	sentAt          time.Duration
	deliveredAtSend int64
	done            bool
}

// FlowStats aggregates the per-flow measurements the experiments consume.
type FlowStats struct {
	AckedBytes int64
	LostBytes  int64
	SentBytes  int64
	RTTSum     time.Duration
	RTTCount   int64
	MinRTT     time.Duration
	MaxRTT     time.Duration
	// Throughput buckets acknowledged bytes over time.
	Throughput *Series
	// Delay buckets RTT samples (milliseconds) over time.
	Delay *Series
	// ComputeNs is the wall-clock nanoseconds spent inside the
	// controller's decision code — the overhead metric of Fig. 2(c)/12.
	ComputeNs int64
	// Active is the duration the flow spent sending.
	Active time.Duration
}

// AvgRTT returns the mean RTT over the flow's lifetime.
func (s *FlowStats) AvgRTT() time.Duration {
	if s.RTTCount == 0 {
		return 0
	}
	return s.RTTSum / time.Duration(s.RTTCount)
}

// AvgThroughput returns acknowledged bytes/sec over the active period.
func (s *FlowStats) AvgThroughput() float64 {
	if s.Active <= 0 {
		return 0
	}
	return float64(s.AckedBytes) / s.Active.Seconds()
}

// LossRate returns lost/(lost+acked) bytes.
func (s *FlowStats) LossRate() float64 {
	tot := s.AckedBytes + s.LostBytes
	if tot == 0 {
		return 0
	}
	return float64(s.LostBytes) / float64(tot)
}

// Flow is one sender/receiver pair attached to a topology route; its
// packets traverse every link of the route in order and ACKs return
// after the route's ACK delay on an uncongested reverse path.
type Flow struct {
	ID    int
	topo  *Topology
	route *Route
	ctrl  cc.Controller
	mss   int

	startAt, stopAt time.Duration
	running         bool
	ticker          cc.Ticker // non-nil when ctrl is tick-driven

	// Application limiting: when appRate > 0 the source produces data
	// at that rate (token bucket with a small burst allowance) instead
	// of being an infinite backlog — a streaming-style workload.
	appRate   float64
	appTokens float64
	appLast   time.Duration

	nextSeq       int64
	headSeq       int64
	inflight      []pktState
	inflightBytes int

	delivered int64
	srtt      time.Duration
	rttvar    time.Duration
	minRTT    time.Duration

	nextSend   time.Duration
	paceTimer  sim.Timer
	paceArmed  bool
	rtoTimer   sim.Timer
	rtoArmed   bool
	rtoBackoff int

	ackBuf  cc.Ack
	lossBuf cc.Loss

	Stats FlowStats
}

// Controller returns the flow's congestion controller.
func (f *Flow) Controller() cc.Controller { return f.ctrl }

// Route returns the route the flow's packets traverse.
func (f *Flow) Route() *Route { return f.route }

// SRTT returns the current smoothed RTT estimate.
func (f *Flow) SRTT() time.Duration { return f.srtt }

// MinRTT returns the minimum RTT observed so far.
func (f *Flow) MinRTT() time.Duration { return f.minRTT }

// InFlight returns the bytes currently unacknowledged.
func (f *Flow) InFlight() int { return f.inflightBytes }

// SetAppRate makes the flow application-limited: the source produces
// bytes at rate (bytes/sec) rather than an infinite backlog. Zero
// restores bulk behaviour. Call before the flow starts.
func (f *Flow) SetAppRate(rate float64) {
	f.appRate = rate
	f.appTokens = float64(2 * f.mss)
}

// appAllows reports whether the application has produced enough data
// for one more packet, replenishing the token bucket.
func (f *Flow) appAllows(now time.Duration) bool {
	if f.appRate <= 0 {
		return true
	}
	if now > f.appLast {
		f.appTokens += f.appRate * (now - f.appLast).Seconds()
		// Cap the burst at 100 ms of data so idle periods do not turn
		// into line-rate bursts.
		if burst := f.appRate * 0.1; f.appTokens > burst {
			f.appTokens = burst
		}
		f.appLast = now
	}
	return f.appTokens >= float64(f.mss)
}

func (f *Flow) start() {
	f.running = true
	f.nextSend = f.topo.Eng.Now()
	if tk, ok := f.ctrl.(cc.Ticker); ok {
		f.ticker = tk
		f.runTicker()
	}
	f.trySend()
}

// tickCb drives per-MI controller ticks through the engine's pooled
// callback path: re-arming each tick allocates nothing.
func tickCb(arg any) { arg.(*Flow).runTicker() }

func (f *Flow) runTicker() {
	if !f.running {
		return
	}
	t0 := nanotime()
	d := f.ticker.OnTick(f.topo.Eng.Now())
	f.Stats.ComputeNs += nanotime() - t0
	f.trySend()
	if d > 0 {
		f.topo.Eng.AfterCall(d, tickCb, f)
	}
}

func (f *Flow) stop() {
	if !f.running {
		return
	}
	f.running = false
	f.Stats.Active = f.topo.Eng.Now() - f.startAt
	f.topo.Eng.Cancel(f.paceTimer)
	f.topo.Eng.Cancel(f.rtoTimer)
	if st, ok := f.ctrl.(cc.Stopper); ok {
		st.Stop(f.topo.Eng.Now())
	}
}

// trySend transmits as many packets as the pacing rate and congestion
// window currently allow and re-arms the pacing timer.
func (f *Flow) trySend() {
	if !f.running {
		return
	}
	now := f.topo.Eng.Now()
	for {
		cwnd := f.ctrl.Window()
		// Anti-deadlock: always allow one packet when nothing is in
		// flight, whatever the window says.
		if float64(f.inflightBytes+f.mss) > cwnd && f.inflightBytes > 0 {
			return // window-limited; ACKs will reopen
		}
		rate := f.ctrl.Rate()
		if rate > 0 && now < f.nextSend {
			f.armPacing(f.nextSend)
			return
		}
		if !f.appAllows(now) {
			// Application-limited: wake when enough data accumulated.
			deficit := float64(f.mss) - f.appTokens
			wait := time.Duration(deficit / f.appRate * float64(time.Second))
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			f.armPacing(now + wait)
			return
		}
		f.sendPacket(now)
		if f.appRate > 0 {
			f.appTokens -= float64(f.mss)
		}
		if rate > 0 {
			gap := time.Duration(float64(f.mss) / rate * float64(time.Second))
			if gap <= 0 || gap > time.Hour { // NaN/Inf/zero guard
				gap = time.Microsecond
			}
			if f.nextSend < now {
				f.nextSend = now
			}
			f.nextSend += gap
		}
	}
}

// paceCb fires the pacing timer; scheduled with the flow itself as the
// argument so re-arming is allocation-free.
func paceCb(arg any) {
	f := arg.(*Flow)
	f.paceArmed = false
	f.trySend()
}

func (f *Flow) armPacing(at time.Duration) {
	if f.paceArmed {
		return
	}
	f.paceArmed = true
	f.paceTimer = f.topo.Eng.AtCall(at, paceCb, f)
}

func (f *Flow) sendPacket(now time.Duration) {
	p := f.topo.pool.get()
	p.Flow = f
	p.Seq = f.nextSeq
	p.Size = f.mss
	p.SentAt = now
	p.DeliveredAtSend = f.delivered
	f.nextSeq++
	f.inflight = append(f.inflight, pktState{size: p.Size, sentAt: now, deliveredAtSend: p.DeliveredAtSend})
	f.inflightBytes += p.Size
	f.Stats.SentBytes += int64(p.Size)
	f.armRTO(now)
	f.route.links[0].Enqueue(p)
}

// onDelivered runs when a data packet reaches the receiver; the ACK
// returns after the reverse propagation delay. The packet itself rides
// the reverse path as the ACK carrier — no separate ACK struct, no
// boxing — and is returned to the pool when the sender processes it.
func (f *Flow) onDelivered(p *Packet) {
	f.topo.Eng.AfterCall(f.route.ackDelay, ackCb, p)
}

// ackCb delivers the returning ACK to its sender.
func ackCb(arg any) {
	p := arg.(*Packet)
	p.Flow.onAck(p)
}

func (f *Flow) onAck(p *Packet) {
	seq, size, sentAt, deliveredAtSend, ce := p.Seq, p.Size, p.SentAt, p.DeliveredAtSend, p.CE
	f.topo.pool.put(p)
	now := f.topo.Eng.Now()
	idx := int(seq - f.headSeq)
	if idx < 0 || idx >= len(f.inflight) || f.inflight[idx].done {
		return // duplicate or already resolved
	}
	f.inflight[idx].done = true
	f.inflightBytes -= size
	f.delivered += int64(size)
	f.rtoBackoff = 0

	rtt := now - sentAt
	f.updateRTT(rtt)
	f.Stats.AckedBytes += int64(size)
	f.Stats.RTTSum += rtt
	f.Stats.RTTCount++
	if f.Stats.MinRTT == 0 || rtt < f.Stats.MinRTT {
		f.Stats.MinRTT = rtt
	}
	if rtt > f.Stats.MaxRTT {
		f.Stats.MaxRTT = rtt
	}
	if f.Stats.Throughput != nil {
		f.Stats.Throughput.Add(now, float64(size))
	}
	if f.Stats.Delay != nil {
		f.Stats.Delay.Add(now, float64(rtt)/float64(time.Millisecond))
	}

	// Gap-based loss detection: outstanding packets more than
	// reorderThreshold behind the acknowledged one are lost.
	lost := 0
	var lostSentAt time.Duration
	for i := 0; i < idx-reorderThreshold; i++ {
		if !f.inflight[i].done {
			f.inflight[i].done = true
			f.inflightBytes -= f.inflight[i].size
			if lost == 0 {
				lostSentAt = f.inflight[i].sentAt
			}
			lost += f.inflight[i].size
		}
	}
	f.popResolved()

	var rateSample float64
	if el := (now - sentAt).Seconds(); el > 0 {
		rateSample = float64(f.delivered-deliveredAtSend) / el
	}
	f.ackBuf = cc.Ack{
		Now:          now,
		RTT:          rtt,
		SRTT:         f.srtt,
		MinRTT:       f.minRTT,
		Acked:        size,
		InFlight:     f.inflightBytes,
		Delivered:    f.delivered,
		DeliveryRate: rateSample,
		ECE:          ce,
	}
	t0 := nanotime()
	f.ctrl.OnAck(&f.ackBuf)
	if lost > 0 {
		f.Stats.LostBytes += int64(lost)
		f.lossBuf = cc.Loss{Now: now, SentAt: lostSentAt, Lost: lost, InFlight: f.inflightBytes}
		f.ctrl.OnLoss(&f.lossBuf)
	}
	f.Stats.ComputeNs += nanotime() - t0

	f.rearmRTO(now)
	f.trySend()
}

func (f *Flow) popResolved() {
	i := 0
	for i < len(f.inflight) && f.inflight[i].done {
		i++
	}
	if i > 0 {
		n := copy(f.inflight, f.inflight[i:])
		f.inflight = f.inflight[:n]
		f.headSeq += int64(i)
	}
}

func (f *Flow) updateRTT(rtt time.Duration) {
	if f.minRTT == 0 || rtt < f.minRTT {
		f.minRTT = rtt
	}
	if f.srtt == 0 {
		f.srtt = rtt
		f.rttvar = rtt / 2
		return
	}
	diff := f.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	f.rttvar = (3*f.rttvar + diff) / 4
	f.srtt = (7*f.srtt + rtt) / 8
}

func (f *Flow) rto() time.Duration {
	rto := f.srtt + 4*f.rttvar
	if rto < rtoMin {
		rto = rtoMin
	}
	for i := 0; i < f.rtoBackoff && rto < rtoMax; i++ {
		rto *= 2
	}
	if rto > rtoMax {
		rto = rtoMax
	}
	return rto
}

// rtoCb fires the retransmission timeout.
func rtoCb(arg any) { arg.(*Flow).onRTO() }

func (f *Flow) armRTO(now time.Duration) {
	if f.rtoArmed {
		return
	}
	f.rtoArmed = true
	f.rtoTimer = f.topo.Eng.AtCall(now+f.rto(), rtoCb, f)
}

func (f *Flow) rearmRTO(now time.Duration) {
	f.topo.Eng.Cancel(f.rtoTimer)
	f.rtoArmed = false
	if f.inflightBytes > 0 {
		f.armRTO(now)
	}
}

func (f *Flow) onRTO() {
	f.rtoArmed = false
	if !f.running && f.inflightBytes == 0 {
		return
	}
	now := f.topo.Eng.Now()
	lost := 0
	var lostSentAt time.Duration
	for i := range f.inflight {
		if !f.inflight[i].done {
			f.inflight[i].done = true
			if lost == 0 {
				lostSentAt = f.inflight[i].sentAt
			}
			lost += f.inflight[i].size
		}
	}
	f.inflight = f.inflight[:0]
	f.headSeq = f.nextSeq
	f.inflightBytes = 0
	if lost == 0 {
		return
	}
	f.Stats.LostBytes += int64(lost)
	f.rtoBackoff++
	f.lossBuf = cc.Loss{Now: now, SentAt: lostSentAt, Lost: lost, InFlight: 0, Timeout: true}
	t0 := nanotime()
	f.ctrl.OnLoss(&f.lossBuf)
	f.Stats.ComputeNs += nanotime() - t0
	f.trySend()
}

// nanotime reads the wall clock for compute-cost accounting.
func nanotime() int64 { return time.Now().UnixNano() }
