package netem

import (
	"testing"
	"time"
)

// The free list must stay bounded no matter how many packets a long
// multi-flow run cycles through.
func TestPacketPoolCapped(t *testing.T) {
	var pool packetPool
	live := make([]*Packet, 0, 2*poolCap)
	for i := 0; i < 2*poolCap; i++ {
		live = append(live, pool.get())
	}
	for _, pk := range live {
		pool.put(pk)
	}
	if len(pool.free) > poolCap {
		t.Fatalf("pool free list grew to %d, cap is %d", len(pool.free), poolCap)
	}
	// Further puts past the cap are dropped, not appended.
	pool.put(&Packet{})
	if len(pool.free) > poolCap {
		t.Fatalf("pool exceeded cap after extra put: %d", len(pool.free))
	}
}

// A recycled packet must come back fully zeroed: CE marks, fault-imposed
// ExtraDelay, and the injected flag from its previous life must not leak
// into the next packet's.
func TestPacketPoolRecycleClears(t *testing.T) {
	var pool packetPool
	pk := pool.get()
	pk.Seq = 42
	pk.Size = 1500
	pk.SentAt = time.Second
	pk.DeliveredAtSend = 99
	pk.CE = true
	pk.ExtraDelay = 30 * time.Millisecond
	pk.injected = true
	pool.put(pk)

	got := pool.get()
	if got != pk {
		t.Fatal("pool did not recycle the freed packet")
	}
	if *got != (Packet{}) {
		t.Fatalf("recycled packet not cleared: %+v", *got)
	}
}
