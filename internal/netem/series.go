package netem

import "time"

// Series accumulates a time-bucketed scalar, e.g. bytes acknowledged per
// 100 ms bucket, from which per-bucket rates or means are derived.
type Series struct {
	Bucket time.Duration
	sums   []float64
	counts []int
}

// NewSeries returns a series with the given bucket width.
func NewSeries(bucket time.Duration) *Series {
	if bucket <= 0 {
		bucket = 100 * time.Millisecond
	}
	return &Series{Bucket: bucket}
}

// Add folds v into the bucket containing at.
func (s *Series) Add(at time.Duration, v float64) {
	i := int(at / s.Bucket)
	if i < 0 {
		i = 0
	}
	for len(s.sums) <= i {
		s.sums = append(s.sums, 0)
		s.counts = append(s.counts, 0)
	}
	s.sums[i] += v
	s.counts[i]++
}

// Len returns the number of buckets.
func (s *Series) Len() int { return len(s.sums) }

// Sum returns the accumulated value of bucket i (zero out of range).
func (s *Series) Sum(i int) float64 {
	if i < 0 || i >= len(s.sums) {
		return 0
	}
	return s.sums[i]
}

// Rate returns bucket i's sum divided by the bucket width in seconds —
// e.g. bytes/sec when the series accumulates bytes.
func (s *Series) Rate(i int) float64 {
	return s.Sum(i) / s.Bucket.Seconds()
}

// Mean returns the average of the samples in bucket i, or zero when the
// bucket is empty.
func (s *Series) Mean(i int) float64 {
	if i < 0 || i >= len(s.sums) || s.counts[i] == 0 {
		return 0
	}
	return s.sums[i] / float64(s.counts[i])
}

// Rates returns the per-bucket rates for buckets [0, n). Buckets beyond
// the recorded range are zero.
func (s *Series) Rates(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Rate(i)
	}
	return out
}
