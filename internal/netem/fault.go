package netem

import (
	"time"

	"libra/internal/sim"
	"libra/internal/telemetry"
)

// Verdict is a fault injector's per-packet decision at link ingress.
// The zero value passes the packet through untouched.
type Verdict struct {
	// Drop discards the packet; Reason tags the drop event and selects
	// the DropStats counter (telemetry.ReasonBlackout or ReasonBurst).
	Drop   bool
	Reason string
	// Duplicate enqueues an independent copy of the packet behind the
	// original (the copy bypasses the injector).
	Duplicate bool
	// ExtraDelay is added to the packet's post-serialization delay,
	// producing jitter, delay spikes, and — when applied selectively —
	// reordering.
	ExtraDelay time.Duration
}

// FaultInjector composes adversarial link dynamics onto a Link. The
// implementation lives in netem/faults; the interface is defined here so
// the emulator stays free of any dependency on the fault subsystem.
//
// Implementations are single-goroutine, like everything else driven by
// the simulation engine.
type FaultInjector interface {
	// Bind attaches the injector to the simulation it runs in. The
	// tracer is never nil (a no-op tracer is substituted); Bind is
	// called once, before any packet is offered.
	Bind(eng *sim.Engine, tracer telemetry.Tracer)
	// Ingress rules on one packet arriving at the bottleneck.
	Ingress(now time.Duration, seq int64, size int) Verdict
	// RateScale returns the capacity multiplier in force at now
	// (1 = nominal; capacity flaps return their configured factor).
	RateScale(now time.Duration) float64
}
