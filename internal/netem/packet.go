// Package netem emulates a network path at packet granularity on top of
// the discrete-event engine in internal/sim.
//
// The topology every experiment in the paper needs is a single shared
// bottleneck: N senders feed one droptail FIFO link with (possibly
// trace-driven, time-varying) capacity, followed by a fixed one-way
// propagation delay; receivers acknowledge each packet and ACKs return
// after the reverse propagation delay on an uncongested path. This is the
// Mahimahi model re-expressed as a discrete-event simulation, and it is
// the substitution for the paper's Linux-kernel + Mahimahi + live
// Internet testbeds (see DESIGN.md).
package netem

import "time"

// Packet is one data segment traversing the emulated path. Packets are
// pooled by the Network to keep the per-packet hot path allocation-free.
type Packet struct {
	Flow   *Flow
	Seq    int64
	Size   int // bytes, including all headers
	SentAt time.Duration
	// DeliveredAtSend snapshots the sender's delivered-bytes counter at
	// transmission time, enabling BBR-style delivery-rate samples.
	DeliveredAtSend int64
	// CE is set when the bottleneck marked the packet (ECN congestion
	// experienced); the receiver echoes it on the ACK.
	CE bool
	// ExtraDelay is additional egress delay a fault injector imposed on
	// this packet (jitter, reordering, delay spikes); it is applied on
	// top of the propagation delay after serialization.
	ExtraDelay time.Duration
	// injected marks a duplicate created by a fault injector; injected
	// copies bypass the injector so duplication cannot cascade.
	injected bool
}

// poolCap bounds the free list. A long multi-flow run can momentarily
// have a huge packet population (deep buffers plus fault-injected delay
// spikes); once those packets drain, holding more than this many spares
// is dead weight, so the excess is released to the GC.
const poolCap = 4096

type packetPool struct {
	free []*Packet
}

func (p *packetPool) get() *Packet {
	if n := len(p.free); n > 0 {
		pk := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		// Full reset: recycled packets must not leak CE marks, fault
		// delays, or injected flags into their next life.
		*pk = Packet{}
		return pk
	}
	return &Packet{}
}

func (p *packetPool) put(pk *Packet) {
	if len(p.free) >= poolCap {
		return
	}
	pk.Flow = nil
	p.free = append(p.free, pk)
}
