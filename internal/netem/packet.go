// Package netem emulates a network topology at packet granularity on
// top of the discrete-event engine in internal/sim.
//
// The model is a graph: a Topology of named nodes joined by directed
// Links — each with its own (possibly trace-driven, time-varying)
// capacity, droptail buffer, propagation delay, loss process, AQM/ECN,
// fault injector, and telemetry identity — and per-flow Routes, ordered
// link lists packets traverse hop by hop with per-link serialization
// and queueing. Receivers acknowledge each packet and ACKs return after
// the route's ACK delay on an uncongested reverse path.
//
// The single shared bottleneck every original paper experiment needs —
// N senders feeding one droptail FIFO link, the Mahimahi model
// re-expressed as a discrete-event simulation — survives as the
// degenerate case: Network builds a two-node/one-link topology whose
// event stream and stochastic draws are identical to the pre-topology
// emulator (see DESIGN.md).
package netem

import "time"

// Packet is one data segment traversing a route. Packets are pooled by
// the Topology to keep the per-packet hot path allocation-free.
type Packet struct {
	Flow   *Flow
	Seq    int64
	Size   int // bytes, including all headers
	SentAt time.Duration
	// DeliveredAtSend snapshots the sender's delivered-bytes counter at
	// transmission time, enabling BBR-style delivery-rate samples.
	DeliveredAtSend int64
	// CE is set when any link on the route marked the packet (ECN
	// congestion experienced); the receiver echoes it on the ACK.
	CE bool
	// ExtraDelay is additional egress delay a fault injector imposed on
	// this packet (jitter, reordering, delay spikes); it is applied on
	// top of the propagation delay after serialization.
	ExtraDelay time.Duration
	// hop indexes the route link currently carrying the packet; the
	// topology advances it as each hop's serialization + propagation
	// completes.
	hop int32
	// injected marks a duplicate created by a fault injector; injected
	// copies bypass every injector on the route so duplication cannot
	// cascade.
	injected bool
}

// poolCap bounds the free list. A long multi-flow run can momentarily
// have a huge packet population (deep buffers plus fault-injected delay
// spikes); once those packets drain, holding more than this many spares
// is dead weight, so the excess is released to the GC.
const poolCap = 4096

type packetPool struct {
	free []*Packet
}

func (p *packetPool) get() *Packet {
	if n := len(p.free); n > 0 {
		pk := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		// Full reset: recycled packets must not leak CE marks, fault
		// delays, hop positions, or injected flags into their next life.
		*pk = Packet{}
		return pk
	}
	return &Packet{}
}

func (p *packetPool) put(pk *Packet) {
	if len(p.free) >= poolCap {
		return
	}
	pk.Flow = nil
	p.free = append(p.free, pk)
}
