package netem

import (
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cc/cubic"
	"libra/internal/trace"
)

func TestCoDelStateMachine(t *testing.T) {
	c := NewCoDel()
	// Below target: never drops.
	for i := 0; i < 100; i++ {
		if c.ShouldDrop(time.Millisecond, time.Duration(i)*10*time.Millisecond) {
			t.Fatal("dropped below target")
		}
	}
	// Above target but for less than one interval: no drop yet.
	now := 10 * time.Second
	if c.ShouldDrop(20*time.Millisecond, now) {
		t.Fatal("dropped before a full interval above target")
	}
	// Sustained above target for > interval: dropping begins.
	dropped := false
	for i := 0; i < 50; i++ {
		now += 10 * time.Millisecond
		if c.ShouldDrop(20*time.Millisecond, now) {
			dropped = true
		}
	}
	if !dropped {
		t.Fatal("CoDel never entered dropping state under sustained delay")
	}
	// Sojourn back under target: dropping stops.
	now += 10 * time.Millisecond
	if c.ShouldDrop(time.Millisecond, now) {
		t.Fatal("dropped after sojourn recovered")
	}
	if c.dropping {
		t.Fatal("dropping state not cleared")
	}
}

func TestCoDelDropRateAccelerates(t *testing.T) {
	c := NewCoDel()
	now := time.Duration(0)
	var drops []time.Duration
	for i := 0; i < 3000; i++ {
		now += time.Millisecond
		if c.ShouldDrop(30*time.Millisecond, now) {
			drops = append(drops, now)
		}
	}
	if len(drops) < 5 {
		t.Fatalf("only %d drops under persistent overload", len(drops))
	}
	// Inter-drop gaps should shrink (interval/sqrt(count)).
	first := drops[1] - drops[0]
	last := drops[len(drops)-1] - drops[len(drops)-2]
	if last >= first {
		t.Fatalf("drop rate did not accelerate: first gap %v, last %v", first, last)
	}
}

func TestCoDelTamesCubicBufferbloat(t *testing.T) {
	run := func(codel bool) time.Duration {
		n := New(Config{
			Capacity:    trace.Constant(trace.Mbps(24)),
			MinRTT:      40 * time.Millisecond,
			BufferBytes: 600_000, // deep buffer: 200 ms if filled
			CoDel:       codel,
			Seed:        5,
		})
		f := n.AddFlow(cubic.New(cc.Config{Seed: 1}), 0, 0)
		n.Run(20 * time.Second)
		if codel && n.Link().DropStats().AQM == 0 {
			t.Fatal("CoDel never dropped")
		}
		return f.Stats.AvgRTT()
	}
	tail := run(false)
	codel := run(true)
	if codel >= tail {
		t.Fatalf("CoDel delay %v not below droptail %v", codel, tail)
	}
	if codel > 70*time.Millisecond {
		t.Fatalf("CUBIC+CoDel delay %v; target is a short standing queue", codel)
	}
}
