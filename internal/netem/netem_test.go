package netem

import (
	"math"
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/trace"
)

func mbps(v float64) float64 { return trace.Mbps(v) }

// aimd is a minimal window-based AIMD controller used to exercise the
// emulator before the real algorithms exist.
type aimd struct {
	cwnd float64
	mss  float64
}

func newAIMD(mss int) *aimd { return &aimd{cwnd: 10 * float64(mss), mss: float64(mss)} }

func (a *aimd) Name() string { return "test-aimd" }
func (a *aimd) OnAck(ack *cc.Ack) {
	a.cwnd += a.mss * float64(ack.Acked) / a.cwnd
}
func (a *aimd) OnLoss(*cc.Loss) {
	a.cwnd = math.Max(2*a.mss, a.cwnd/2)
}
func (a *aimd) Rate() float64   { return 0 }
func (a *aimd) Window() float64 { return a.cwnd }

func TestCBRFlowDeliversAtConfiguredRate(t *testing.T) {
	n := New(Config{
		Capacity:    trace.Constant(mbps(10)),
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 150000,
		Seed:        1,
	})
	f := n.AddFlow(cc.FixedRate{R: mbps(4)}, 0, 0)
	n.Run(10 * time.Second)
	got := f.Stats.AvgThroughput()
	if math.Abs(got-mbps(4)) > mbps(0.2) {
		t.Fatalf("CBR throughput %.2f Mbps, want ~4", trace.ToMbps(got))
	}
	if f.Stats.LostBytes != 0 {
		t.Fatalf("unexpected losses under capacity: %d", f.Stats.LostBytes)
	}
	if rtt := f.Stats.MinRTT; rtt < 40*time.Millisecond || rtt > 45*time.Millisecond {
		t.Fatalf("min RTT %v, want ~40ms + serialization", rtt)
	}
}

func TestOverdrivenCBRSaturatesLinkAndDrops(t *testing.T) {
	n := New(Config{
		Capacity:    trace.Constant(mbps(5)),
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 30000,
		Seed:        1,
	})
	f := n.AddFlow(cc.FixedRate{R: mbps(10)}, 0, 0)
	n.Run(10 * time.Second)
	if u := n.Utilization(10 * time.Second); u < 0.95 || u > 1.05 {
		t.Fatalf("utilization %.3f, want ~1.0", u)
	}
	if f.Stats.LostBytes == 0 {
		t.Fatal("overdriven link should drop")
	}
	// Queue should sit full: RTT inflated by ~bufferBytes/capacity = 48ms.
	if f.Stats.MaxRTT < 60*time.Millisecond {
		t.Fatalf("max RTT %v, want bufferbloat >60ms", f.Stats.MaxRTT)
	}
}

func TestAIMDFillsLink(t *testing.T) {
	n := New(Config{
		Capacity:    trace.Constant(mbps(20)),
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 100000,
		Seed:        1,
	})
	f := n.AddFlow(newAIMD(1500), 0, 0)
	n.Run(20 * time.Second)
	if u := n.Utilization(20 * time.Second); u < 0.8 {
		t.Fatalf("AIMD utilization %.3f, want >0.8", u)
	}
	if f.Stats.LostBytes == 0 {
		t.Fatal("AIMD should periodically overflow the buffer")
	}
}

func TestStochasticLossRateApplied(t *testing.T) {
	n := New(Config{
		Capacity:    trace.Constant(mbps(10)),
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 150000,
		LossRate:    0.05,
		Seed:        7,
	})
	f := n.AddFlow(cc.FixedRate{R: mbps(5)}, 0, 0)
	n.Run(30 * time.Second)
	lr := f.Stats.LossRate()
	if lr < 0.03 || lr > 0.07 {
		t.Fatalf("observed loss rate %.4f, want ~0.05", lr)
	}
}

func TestTwoCBRFlowsShareFIFO(t *testing.T) {
	n := New(Config{
		Capacity:    trace.Constant(mbps(10)),
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 60000,
		Seed:        3,
	})
	f1 := n.AddFlow(cc.FixedRate{R: mbps(4)}, 0, 0)
	f2 := n.AddFlow(cc.FixedRate{R: mbps(4)}, 0, 0)
	n.Run(10 * time.Second)
	t1, t2 := f1.Stats.AvgThroughput(), f2.Stats.AvgThroughput()
	if math.Abs(t1-t2) > mbps(0.3) {
		t.Fatalf("equal-rate flows diverged: %.2f vs %.2f Mbps", trace.ToMbps(t1), trace.ToMbps(t2))
	}
	if tot := t1 + t2; math.Abs(tot-mbps(8)) > mbps(0.4) {
		t.Fatalf("aggregate %.2f Mbps, want ~8", trace.ToMbps(tot))
	}
}

func TestFlowStartStop(t *testing.T) {
	n := New(Config{
		Capacity:    trace.Constant(mbps(10)),
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 150000,
		Seed:        1,
	})
	f := n.AddFlow(cc.FixedRate{R: mbps(2)}, 2*time.Second, 6*time.Second)
	n.Run(10 * time.Second)
	if f.Stats.Active < 3900*time.Millisecond || f.Stats.Active > 4100*time.Millisecond {
		t.Fatalf("active %v, want ~4s", f.Stats.Active)
	}
	wantBytes := mbps(2) * 4
	if math.Abs(float64(f.Stats.AckedBytes)-wantBytes) > wantBytes*0.1 {
		t.Fatalf("acked %d bytes, want ~%.0f", f.Stats.AckedBytes, wantBytes)
	}
}

func TestStepTraceChangesDeliveryRate(t *testing.T) {
	n := New(Config{
		Capacity: &trace.Step{
			Period: 5 * time.Second,
			Levels: []float64{mbps(2), mbps(10)},
		},
		MinRTT:       40 * time.Millisecond,
		BufferBytes:  60000,
		Seed:         1,
		RecordSeries: true,
		SeriesBucket: time.Second,
	})
	f := n.AddFlow(cc.FixedRate{R: mbps(20)}, 0, 0)
	n.Run(10 * time.Second)
	low := f.Stats.Throughput.Rate(2)  // t=2..3s, 2 Mbps phase
	high := f.Stats.Throughput.Rate(7) // t=7..8s, 10 Mbps phase
	if low > mbps(3) || high < mbps(8) {
		t.Fatalf("step trace not followed: low=%.1f high=%.1f Mbps", trace.ToMbps(low), trace.ToMbps(high))
	}
}

func TestSeriesBucketing(t *testing.T) {
	s := NewSeries(time.Second)
	s.Add(500*time.Millisecond, 100)
	s.Add(700*time.Millisecond, 50)
	s.Add(1500*time.Millisecond, 30)
	if s.Sum(0) != 150 || s.Sum(1) != 30 {
		t.Fatalf("sums %v %v", s.Sum(0), s.Sum(1))
	}
	if s.Rate(0) != 150 {
		t.Fatalf("rate %v", s.Rate(0))
	}
	if s.Mean(0) != 75 {
		t.Fatalf("mean %v", s.Mean(0))
	}
	if s.Sum(5) != 0 || s.Mean(5) != 0 {
		t.Fatal("out-of-range buckets should be zero")
	}
	if got := s.Rates(3); len(got) != 3 || got[2] != 0 {
		t.Fatalf("rates %v", got)
	}
}

func TestRTOFiresWhenLinkBlackholes(t *testing.T) {
	// A trace that drops to (near) zero strands packets in the queue long
	// enough to trip the RTO.
	n := New(Config{
		Capacity: &trace.Step{
			Period: 2 * time.Second,
			Levels: []float64{mbps(5), 0.0000001},
		},
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 150000,
		LossRate:    0,
		Seed:        1,
	})
	ctl := newAIMD(1500)
	f := n.AddFlow(ctl, 0, 0)
	n.Run(6 * time.Second)
	if f.Stats.LostBytes == 0 {
		t.Fatal("expected RTO-declared losses during blackhole phase")
	}
}

func TestComputeAccounting(t *testing.T) {
	n := New(Config{
		Capacity:    trace.Constant(mbps(10)),
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 150000,
		Seed:        1,
	})
	f := n.AddFlow(newAIMD(1500), 0, 0)
	n.Run(5 * time.Second)
	if f.Stats.ComputeNs < 0 {
		t.Fatal("negative compute time")
	}
	if f.Stats.RTTCount == 0 {
		t.Fatal("no RTT samples recorded")
	}
}

func TestUtilizationNeverExceedsOneByMuch(t *testing.T) {
	n := New(Config{
		Capacity:    trace.Constant(mbps(8)),
		MinRTT:      30 * time.Millisecond,
		BufferBytes: 150000,
		Seed:        2,
	})
	n.AddFlow(cc.FixedRate{R: mbps(30)}, 0, 0)
	n.Run(10 * time.Second)
	if u := n.Utilization(10 * time.Second); u > 1.05 {
		t.Fatalf("utilization %.3f > 1", u)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, int64) {
		n := New(Config{
			Capacity:    trace.NewLTE(trace.LTEDriving, 10*time.Second, 4),
			MinRTT:      30 * time.Millisecond,
			BufferBytes: 150000,
			LossRate:    0.01,
			Seed:        11,
		})
		f := n.AddFlow(newAIMD(1500), 0, 0)
		n.Run(10 * time.Second)
		return f.Stats.AckedBytes, f.Stats.LostBytes
	}
	a1, l1 := run()
	a2, l2 := run()
	if a1 != a2 || l1 != l2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", a1, l1, a2, l2)
	}
}

func TestAppLimitedFlowSendsAtAppRate(t *testing.T) {
	n := New(Config{
		Capacity:    trace.Constant(mbps(50)),
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 150000,
		Seed:        6,
	})
	f := n.AddFlow(newAIMD(1500), 0, 0)
	f.SetAppRate(mbps(3)) // streaming-style 3 Mbps source
	n.Run(10 * time.Second)
	got := trace.ToMbps(f.Stats.AvgThroughput())
	if got < 2.5 || got > 3.5 {
		t.Fatalf("app-limited throughput %.2f Mbps, want ~3", got)
	}
	// The link has headroom, so the app-limited flow sees (almost) no
	// queueing.
	if f.Stats.AvgRTT() > 45*time.Millisecond {
		t.Fatalf("app-limited flow queued: avg RTT %v", f.Stats.AvgRTT())
	}
}

func TestAppLimitedZeroMeansBulk(t *testing.T) {
	n := New(Config{
		Capacity:    trace.Constant(mbps(10)),
		MinRTT:      40 * time.Millisecond,
		BufferBytes: 100000,
		Seed:        6,
	})
	f := n.AddFlow(newAIMD(1500), 0, 0)
	f.SetAppRate(0)
	n.Run(10 * time.Second)
	if n.Utilization(10*time.Second) < 0.8 {
		t.Fatal("bulk flow should fill the link")
	}
}

func TestECNMarkingAboveThreshold(t *testing.T) {
	n := New(Config{
		Capacity:     trace.Constant(mbps(10)),
		MinRTT:       20 * time.Millisecond,
		BufferBytes:  100000,
		ECNThreshold: 20000,
		Seed:         9,
	})
	n.AddFlow(cc.FixedRate{R: mbps(20)}, 0, 0) // overdrive to build queue
	n.Run(5 * time.Second)
	if n.Link().DropStats().Marked == 0 {
		t.Fatal("overdriven ECN link should mark packets")
	}
}
