package netem

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/trace"
)

// benchTopo builds the fixed multi-hop workload: a 3-hop chain of
// 96 Mbit/s links overdriven by four CBR senders, so every hop
// exercises enqueue, tail drop, serialization, and hand-off to the
// next link at full packet rate.
func benchTopo(seed int64) (*Topology, *Route) {
	tp, err := NewTopology(TopologyConfig{
		Nodes: []string{"n0", "n1", "n2", "n3"},
		Links: []LinkSpec{
			{Label: "h0", From: "n0", To: "n1", Capacity: trace.Constant(trace.Mbps(96)), PropDelay: 3 * time.Millisecond, BufferBytes: 300_000},
			{Label: "h1", From: "n1", To: "n2", Capacity: trace.Constant(trace.Mbps(96)), PropDelay: 3 * time.Millisecond, BufferBytes: 300_000},
			{Label: "h2", From: "n2", To: "n3", Capacity: trace.Constant(trace.Mbps(96)), PropDelay: 3 * time.Millisecond, BufferBytes: 300_000},
		},
		Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	r, err := tp.AddRoute("main", []string{"h0", "h1", "h2"}, -1)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 4; i++ {
		tp.AddFlowOn(r, cc.FixedRate{R: trace.Mbps(30)}, 0, 0)
	}
	return tp, r
}

// per-hop packets processed across the whole topology: every hop's
// deliveries plus its drops (one end-to-end packet on an H-hop route
// counts up to H times — the unit is hop traversals, the actual event
// load).
func (tp *Topology) benchPackets() int64 {
	var total int64
	for _, l := range tp.Links() {
		total += l.DeliveredBytes()/int64(tp.tcfg.MSS) + l.DropStats().Total()
	}
	return total
}

// TestBenchTopo records multi-hop emulation throughput as the "topo"
// block of BENCH_core.json (hop traversals per wall-clock second and
// allocs per traversal over a 3-hop chain), preserving every other
// recorded series. Only arms under TOPO_BENCH=1 (make bench-topo);
// with TOPO_BENCH_GUARD it additionally enforces a conservative
// absolute floor and the <1 alloc/packet bound, so a multi-hop
// hot-path regression fails CI instead of just drifting the number.
func TestBenchTopo(t *testing.T) {
	if os.Getenv("TOPO_BENCH") == "" {
		t.Skip("set TOPO_BENCH=1 (make bench-topo) to measure and record multi-hop throughput")
	}

	run := func() (int64, time.Duration) {
		tp, _ := benchTopo(7)
		start := time.Now()
		tp.Run(10 * time.Second)
		return tp.benchPackets(), time.Since(start)
	}
	run() // warm-up: page in code paths
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	pkts, wall := run()
	runtime.ReadMemStats(&m1)
	pktsPerSec := float64(pkts) / wall.Seconds()
	allocsPerPkt := float64(m1.Mallocs-m0.Mallocs) / float64(pkts)

	path := os.Getenv("TOPO_BENCH_OUT")
	if path == "" {
		path = "../../BENCH_core.json"
	}
	doc := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &doc); err != nil {
			t.Fatalf("existing %s is not a JSON object: %v", path, err)
		}
	}
	blk, err := json.Marshal(struct {
		Hops            int     `json:"hops"`
		PacketsPerSec   float64 `json:"topo_packets_per_sec"`
		AllocsPerPacket float64 `json:"topo_allocs_per_packet"`
	}{Hops: 3, PacketsPerSec: pktsPerSec, AllocsPerPacket: allocsPerPkt})
	if err != nil {
		t.Fatal(err)
	}
	doc["topo"] = blk
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("topo: %.0f hop-packets/sec (%.4f allocs/packet) over 3 hops -> %s",
		pktsPerSec, allocsPerPkt, path)

	if os.Getenv("TOPO_BENCH_GUARD") != "" {
		if allocsPerPkt >= 1 {
			t.Errorf("multi-hop steady path allocates %.2f allocs/packet, want < 1", allocsPerPkt)
		}
		// Conservative floor: a healthy chain moves hundreds of thousands
		// of hop traversals per second; 100K trips only on a real
		// regression (or a badly oversubscribed CI box).
		if pktsPerSec < 100_000 {
			t.Errorf("multi-hop throughput %.0f packets/sec under the 100K floor", pktsPerSec)
		}
	}
}
