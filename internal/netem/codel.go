package netem

import (
	"math"
	"time"
)

// CoDel implements the Controlled-Delay AQM (Nichols & Jacobson, CACM
// 2012). The paper's Sec. 2 motivates Libra with exactly this contrast:
// keeping CUBIC's queueing delay low requires an in-network scheme like
// CoDel ("which requires changes in the network devices and incurs
// extra costs"), whereas Libra reaches low delay end-to-end. The
// emulator supports CoDel so that contrast is measurable (see the
// "aqm" experiment).
//
// Algorithm: at dequeue time, a packet's sojourn time is compared with
// Target. Once sojourn has stayed above Target for a full Interval, the
// queue enters the dropping state and drops head packets at instants
// spaced Interval/sqrt(count) apart until sojourn falls below Target.
type CoDel struct {
	// Target is the acceptable standing queue delay (default 5 ms).
	Target time.Duration
	// Interval is the sliding window in which sojourn must dip below
	// Target at least once (default 100 ms).
	Interval time.Duration

	firstAboveTime time.Duration
	dropNext       time.Duration
	count          int
	lastCount      int
	dropping       bool
}

// NewCoDel returns a CoDel instance with the RFC 8289 defaults.
func NewCoDel() *CoDel {
	return &CoDel{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond}
}

// controlLaw computes the next drop instant.
func (c *CoDel) controlLaw(t time.Duration) time.Duration {
	return t + time.Duration(float64(c.Interval)/math.Sqrt(float64(c.count)))
}

// ShouldDrop decides the fate of the packet about to be dequeued, given
// its sojourn time and the current virtual time. It returns true when
// the packet must be dropped (the caller then consults ShouldDrop again
// for the next head packet).
func (c *CoDel) ShouldDrop(sojourn, now time.Duration) bool {
	okToDrop := c.updateState(sojourn, now)
	if c.dropping {
		if !okToDrop {
			c.dropping = false
			return false
		}
		if now >= c.dropNext {
			c.count++
			c.dropNext = c.controlLaw(c.dropNext)
			return true
		}
		return false
	}
	if okToDrop && (now-c.dropNext < c.Interval || now-c.firstAboveTime >= c.Interval) {
		c.dropping = true
		// Resume at a higher drop rate if we were dropping recently.
		if now-c.dropNext < c.Interval && c.lastCount > 2 {
			c.count = c.lastCount - 2
		} else {
			c.count = 1
		}
		c.lastCount = c.count
		c.dropNext = c.controlLaw(now)
		return true
	}
	return false
}

// updateState tracks whether sojourn has exceeded Target continuously
// for one Interval.
func (c *CoDel) updateState(sojourn, now time.Duration) bool {
	if sojourn < c.Target {
		c.firstAboveTime = 0
		return false
	}
	if c.firstAboveTime == 0 {
		c.firstAboveTime = now + c.Interval
		return false
	}
	return now >= c.firstAboveTime
}
