package netem

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"libra/internal/cc"
	"libra/internal/trace"
)

// Property: for any constant-rate overdriving sender, the link never
// delivers more than capacity x time (plus one in-service packet).
func TestQuickLinkNeverExceedsCapacity(t *testing.T) {
	f := func(capRaw, rateRaw uint8, bufRaw uint16) bool {
		capMbps := 1 + float64(capRaw%40)
		sendMbps := 1 + float64(rateRaw%80)
		buf := 10000 + int(bufRaw)%200000
		n := New(Config{
			Capacity:    trace.Constant(trace.Mbps(capMbps)),
			MinRTT:      20 * time.Millisecond,
			BufferBytes: buf,
			Seed:        int64(capRaw)*7 + int64(rateRaw),
		})
		n.AddFlow(cc.FixedRate{R: trace.Mbps(sendMbps)}, 0, 0)
		const d = 3 * time.Second
		n.Run(d)
		limit := trace.Mbps(capMbps)*d.Seconds() + 1500
		return float64(n.Link().DeliveredBytes()) <= limit
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: queue occupancy never exceeds the configured buffer.
func TestQuickQueueBounded(t *testing.T) {
	f := func(bufRaw uint16) bool {
		buf := 5000 + int(bufRaw)%100000
		n := New(Config{
			Capacity:    trace.Constant(trace.Mbps(5)),
			MinRTT:      20 * time.Millisecond,
			BufferBytes: buf,
			Seed:        int64(bufRaw),
		})
		n.AddFlow(cc.FixedRate{R: trace.Mbps(50)}, 0, 0)
		ok := true
		probe := func() {
			if n.Link().QueuedBytes() > buf {
				ok = false
			}
		}
		for i := 1; i <= 20; i++ {
			n.Eng.After(time.Duration(i)*100*time.Millisecond, probe)
		}
		n.Run(2100 * time.Millisecond)
		return ok
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
