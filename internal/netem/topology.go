package netem

import (
	"fmt"
	"time"

	"libra/internal/cc"
	"libra/internal/sim"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

// LinkSpec describes one directed link of a topology.
type LinkSpec struct {
	// Label is the link's telemetry identity: enqueue/drop/queue events
	// it emits carry this label, and per-link metrics/reports key on it.
	// NewTopology requires labels to be non-empty and unique; only the
	// degenerate single-bottleneck Network leaves its one link
	// unlabelled, which keeps its event stream byte-identical to the
	// pre-topology encoding.
	Label string
	// From and To name the link's endpoints; both must appear in
	// TopologyConfig.Nodes.
	From, To string
	// Capacity is the link's (possibly time-varying) rate trace.
	Capacity trace.Trace
	// PropDelay is the one-way propagation delay applied after
	// serialization.
	PropDelay time.Duration
	// BufferBytes is the droptail queue limit (default 150 KB).
	BufferBytes int
	// LossRate is the iid stochastic loss probability at ingress.
	LossRate float64
	// ECNThreshold, when positive, CE-marks packets enqueued while the
	// queue exceeds this many bytes.
	ECNThreshold int
	// CoDel enables Controlled-Delay AQM at this link's dequeue.
	CoDel bool
	// Faults, when non-nil, composes adversarial dynamics onto this
	// link only; each link owns its injector.
	Faults FaultInjector
}

// TopologyConfig parameterises a Topology.
type TopologyConfig struct {
	// Nodes lists the node names; link endpoints must come from here.
	Nodes []string
	// Links are the directed edges, in construction order. Per-link
	// stochastic streams sub-derive from Seed by link index, so adding a
	// link never perturbs the streams of the links before it.
	Links []LinkSpec
	// MSS is the packet size (default 1500).
	MSS int
	// Seed drives all stochastic behaviour.
	Seed int64
	// RecordSeries enables per-flow throughput/delay time series with
	// the given bucket (default 100 ms when unset).
	RecordSeries bool
	SeriesBucket time.Duration
	// Tracer receives per-link telemetry: enqueue/drop events and
	// periodic queue-occupancy samples, each labelled with the link.
	Tracer telemetry.Tracer
	// QueueSampleInterval is the spacing of queue-occupancy samples
	// (default 100 ms; only used when Tracer is enabled).
	QueueSampleInterval time.Duration
	// Health, when set, has the topology's engine registered for
	// runtime health sampling for the lifetime of Run.
	Health *telemetry.Health
}

// Route is an ordered list of links a flow's packets traverse, plus the
// ACK return delay. Routes are built by AddRoute and shared by any
// number of flows.
type Route struct {
	name     string
	links    []*Link
	ackDelay time.Duration
}

// Name returns the route's identifier.
func (r *Route) Name() string { return r.name }

// Links returns the route's links in traversal order. Callers must not
// mutate the returned slice.
func (r *Route) Links() []*Link { return r.links }

// AckDelay returns the ACK return-path delay.
func (r *Route) AckDelay() time.Duration { return r.ackDelay }

// Topology is a graph of named nodes joined by directed links, with
// per-flow routes threading packets across multiple hops. It owns the
// event engine, the packet pool, and the per-link queue sampler; the
// single-bottleneck Network is a two-node/one-link degenerate case.
type Topology struct {
	Eng   *sim.Engine
	tcfg  TopologyConfig
	links []*Link
	byLbl map[string]int
	nodes map[string]bool

	routes []*Route
	flows  []*Flow
	pool   packetPool

	qEvBuf telemetry.Event // reused queue-sample event buffer

	// Queue-sampler state; the sampler re-arms itself through the
	// engine's pooled callback path.
	sampleTracer telemetry.Tracer
	sampleEvery  time.Duration
}

// linkSeedStride separates per-link stochastic streams; link 0 keeps
// the topology seed itself so the degenerate single-link case draws
// exactly the pre-topology sequence.
const linkSeedStride = 0x61c88647

// NewTopology builds a multi-hop topology. Labels are mandatory and
// unique, endpoints must be declared nodes, and every link needs a
// capacity trace.
func NewTopology(cfg TopologyConfig) (*Topology, error) {
	for i, l := range cfg.Links {
		if l.Label == "" {
			return nil, fmt.Errorf("netem: link %d has no label", i)
		}
		if l.Capacity == nil {
			return nil, fmt.Errorf("netem: link %q has no capacity trace", l.Label)
		}
	}
	return newTopology(cfg)
}

// newTopology is the shared constructor; the Network wrapper reaches it
// directly so its single link may stay unlabelled.
func newTopology(cfg TopologyConfig) (*Topology, error) {
	if cfg.MSS == 0 {
		cfg.MSS = cc.DefaultMSS
	}
	if len(cfg.Links) == 0 {
		return nil, fmt.Errorf("netem: topology has no links")
	}
	tp := &Topology{
		Eng:   sim.New(cfg.Seed),
		tcfg:  cfg,
		byLbl: make(map[string]int, len(cfg.Links)),
		nodes: make(map[string]bool, len(cfg.Nodes)),
	}
	for _, n := range cfg.Nodes {
		if n == "" {
			return nil, fmt.Errorf("netem: empty node name")
		}
		if tp.nodes[n] {
			return nil, fmt.Errorf("netem: duplicate node %q", n)
		}
		tp.nodes[n] = true
	}
	tracer := cfg.Tracer
	traceOn := telemetry.Enabled(tracer)
	for i, ls := range cfg.Links {
		if !tp.nodes[ls.From] || !tp.nodes[ls.To] {
			return nil, fmt.Errorf("netem: link %q joins unknown node (%s -> %s)", ls.Label, ls.From, ls.To)
		}
		if ls.From == ls.To {
			return nil, fmt.Errorf("netem: link %q is a self-loop at %s", ls.Label, ls.From)
		}
		if ls.Label != "" {
			if _, dup := tp.byLbl[ls.Label]; dup {
				return nil, fmt.Errorf("netem: duplicate link label %q", ls.Label)
			}
		}
		buf := ls.BufferBytes
		if buf <= 0 {
			buf = 150 * 1000
		}
		var cd *CoDel
		if ls.CoDel {
			cd = NewCoDel()
		}
		if ls.Faults != nil {
			t := tracer
			if !telemetry.Enabled(t) {
				t = telemetry.Nop{}
			} else if ls.Label != "" {
				t = linkTracer{t: t, label: ls.Label}
			}
			ls.Faults.Bind(tp.Eng, t)
		}
		l := newLink(tp.Eng, LinkConfig{
			CoDel:        cd,
			Capacity:     ls.Capacity,
			PropDelay:    ls.PropDelay,
			BufferBytes:  buf,
			LossRate:     ls.LossRate,
			ECNThreshold: ls.ECNThreshold,
			Faults:       ls.Faults,
			Seed:         cfg.Seed + int64(i)*linkSeedStride,
			Label:        ls.Label,
		}, tp.forward, tp.dropped, tp.clonePacket)
		if traceOn {
			l.SetTracer(tracer)
		}
		tp.byLbl[ls.Label] = i
		tp.links = append(tp.links, l)
	}
	if traceOn {
		tp.sampleTracer = tracer
		tp.sampleEvery = cfg.QueueSampleInterval
		if tp.sampleEvery <= 0 {
			tp.sampleEvery = 100 * time.Millisecond
		}
		tp.sampleQueues()
	}
	return tp, nil
}

// Links returns the topology's links in construction order. Callers
// must not mutate the returned slice.
func (tp *Topology) Links() []*Link { return tp.links }

// LinkByLabel returns the labelled link, or nil when unknown.
func (tp *Topology) LinkByLabel(label string) *Link {
	if i, ok := tp.byLbl[label]; ok {
		return tp.links[i]
	}
	return nil
}

// Routes returns the routes in creation order.
func (tp *Topology) Routes() []*Route { return tp.routes }

// AddRoute threads a named route through the labelled links, in order.
// Consecutive links must connect head to tail, and a route may not
// revisit a link (that would be a forwarding loop). ackDelay is the ACK
// return-path delay; negative means symmetric (the sum of the forward
// links' propagation delays).
func (tp *Topology) AddRoute(name string, via []string, ackDelay time.Duration) (*Route, error) {
	if len(via) == 0 {
		return nil, fmt.Errorf("netem: route %q has no links", name)
	}
	r := &Route{name: name, links: make([]*Link, 0, len(via))}
	seen := make(map[string]bool, len(via))
	var prev *LinkSpec
	var symmetric time.Duration
	for _, lbl := range via {
		i, ok := tp.byLbl[lbl]
		if !ok {
			return nil, fmt.Errorf("netem: route %q uses unknown link %q", name, lbl)
		}
		if seen[lbl] {
			return nil, fmt.Errorf("netem: route %q revisits link %q (forwarding loop)", name, lbl)
		}
		seen[lbl] = true
		spec := &tp.tcfg.Links[i]
		if prev != nil && prev.To != spec.From {
			return nil, fmt.Errorf("netem: route %q breaks at %q -> %q (%s does not feed %s)",
				name, prev.Label, spec.Label, prev.To, spec.From)
		}
		prev = spec
		symmetric += spec.PropDelay
		r.links = append(r.links, tp.links[i])
	}
	if ackDelay < 0 {
		ackDelay = symmetric
	}
	r.ackDelay = ackDelay
	tp.routes = append(tp.routes, r)
	return r, nil
}

// forward advances a packet that finished one link: onto the next hop
// of its route, or into delivery at the receiver after the last one.
func (tp *Topology) forward(p *Packet) {
	r := p.Flow.route
	p.hop++
	if int(p.hop) < len(r.links) {
		r.links[p.hop].Enqueue(p)
		return
	}
	p.Flow.onDelivered(p)
}

func (tp *Topology) dropped(p *Packet, _ bool) {
	tp.pool.put(p)
}

// clonePacket duplicates a packet for fault-injected duplication; the
// copy is marked injected so it bypasses every injector on the route.
func (tp *Topology) clonePacket(p *Packet) *Packet {
	c := tp.pool.get()
	*c = *p
	c.injected = true
	return c
}

// topoSampleCb re-arms the periodic queue-occupancy sampler.
func topoSampleCb(arg any) { arg.(*Topology).sampleQueues() }

// sampleQueues emits one queue-occupancy event per link (in
// construction order, labelled) and reschedules itself; the engine
// stops dispatching past the run horizon.
func (tp *Topology) sampleQueues() {
	now := tp.Eng.Now()
	for _, l := range tp.links {
		rate := 0.0
		if l.cap != nil {
			rate = l.cap.RateAt(now)
		}
		tp.qEvBuf = telemetry.Event{T: int64(now), Type: telemetry.TypeQueue, Flow: -1,
			Link: l.label, Queue: int64(l.QueuedBytes()), Rate: rate}
		tp.sampleTracer.Emit(&tp.qEvBuf)
	}
	tp.Eng.AfterCall(tp.sampleEvery, topoSampleCb, tp)
}

// AddFlowOn attaches a sender driven by ctrl to the route, active on
// [start, stop). A zero stop means "until the end of the run".
func (tp *Topology) AddFlowOn(r *Route, ctrl cc.Controller, start, stop time.Duration) *Flow {
	f := &Flow{
		ID:      len(tp.flows),
		topo:    tp,
		route:   r,
		ctrl:    ctrl,
		mss:     tp.tcfg.MSS,
		startAt: start,
		stopAt:  stop,
	}
	if tp.tcfg.RecordSeries {
		b := tp.tcfg.SeriesBucket
		if b <= 0 {
			b = 100 * time.Millisecond
		}
		f.Stats.Throughput = NewSeries(b)
		f.Stats.Delay = NewSeries(b)
	}
	tp.flows = append(tp.flows, f)
	tp.Eng.AtCall(start, flowStartCb, f)
	if stop > 0 {
		tp.Eng.AtCall(stop, flowStopCb, f)
	}
	return f
}

func flowStartCb(arg any) { arg.(*Flow).start() }
func flowStopCb(arg any)  { arg.(*Flow).stop() }

// Flows returns the attached flows in creation order.
func (tp *Topology) Flows() []*Flow { return tp.flows }

// Run advances the simulation to time d and finalises flow statistics.
// When a Health sampler is configured, the engine is registered for the
// duration of the run so its progress counters feed the health gauges.
func (tp *Topology) Run(d time.Duration) {
	if tp.tcfg.Health != nil {
		tp.tcfg.Health.Register(tp.Eng)
		defer tp.tcfg.Health.Unregister(tp.Eng)
	}
	tp.Eng.Run(d)
	for _, f := range tp.flows {
		if f.running {
			f.stop()
		}
	}
}

// LinkUtilization returns the link's delivered bytes divided by its
// mean capacity over [0, d].
func (tp *Topology) LinkUtilization(l *Link, d time.Duration) float64 {
	mean := trace.MeanRate(l.cap, d, 10*time.Millisecond)
	if mean <= 0 || d <= 0 {
		return 0
	}
	return float64(l.DeliveredBytes()) / (mean * d.Seconds())
}

// RouteBottleneck returns the route's minimum-mean-capacity link over
// [0, d] — the hop whose utilization stands for the route's.
func (tp *Topology) RouteBottleneck(r *Route, d time.Duration) *Link {
	var bott *Link
	best := 0.0
	for _, l := range r.links {
		mean := trace.MeanRate(l.cap, d, 10*time.Millisecond)
		if bott == nil || mean < best {
			bott, best = l, mean
		}
	}
	return bott
}

// linkTracer stamps a link label onto events that pass through without
// one, giving per-link identity to emitters (fault injectors) that are
// unaware of which link they ride.
type linkTracer struct {
	t     telemetry.Tracer
	label string
}

func (lt linkTracer) Enabled() bool { return true }

func (lt linkTracer) Emit(e *telemetry.Event) {
	if e.Link == "" {
		e.Link = lt.label
	}
	lt.t.Emit(e)
}
