package netem

import (
	"math/rand"
	"time"

	"libra/internal/sim"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

// minLinkRate floors the instantaneous trace rate so that serialization
// times stay finite during deep fades (1 kbit/s).
const minLinkRate = 125.0

// Link is a droptail FIFO queue with time-varying capacity, an
// optional iid stochastic loss process at ingress, and a fixed one-way
// propagation delay applied after serialization. Links are the edges
// of a Topology; the telemetry events a link emits carry its label so
// multi-hop traces attribute drops and queueing to the hop that caused
// them.
type Link struct {
	eng    *sim.Engine
	label  string
	cap    trace.Trace
	prop   time.Duration
	buf    int // queue limit in bytes (excluding the packet in service)
	ecn    int
	codel  *CoDel
	loss   float64
	rng    *rand.Rand
	faults FaultInjector
	sink   func(*Packet)
	sinkCb sim.Callback        // fixed wrapper over sink; one alloc per link, zero per packet
	drop   func(*Packet, bool) // stochastic=true when channel loss, false when tail drop
	dup    func(*Packet) *Packet
	queue  []*Packet
	qhead  int
	qByte  int
	busy   bool

	// Statistics; read through DeliveredBytes()/DropStats().
	delivered   int64
	drops       DropStats
	qIntegral   float64 // byte-seconds, for mean queue occupancy
	lastQSample time.Duration

	tracer  telemetry.Tracer
	traceOn bool            // cached Enabled(); keeps the per-packet path branch-cheap
	evBuf   telemetry.Event // reused so enabled-path emits stay alloc-free
}

// DropStats is a point-in-time snapshot of the link's loss and marking
// counters, keyed by reason. Telemetry and tests consume this snapshot
// rather than reaching into individual counters.
type DropStats struct {
	// Tail/Channel/AQM count dropped packets by cause: buffer
	// overflow, the iid stochastic loss process, and CoDel head drops.
	Tail, Channel, AQM int64
	// Blackout and Burst count drops inflicted by the fault injector:
	// link outages and Gilbert-Elliott bursty loss respectively.
	Blackout, Burst int64
	// Bytes is the payload total across all dropped packets.
	Bytes int64
	// Marked counts packets CE-marked (delivered, not dropped).
	Marked int64
}

// Total returns the dropped-packet count across all reasons.
func (d DropStats) Total() int64 { return d.Tail + d.Channel + d.AQM + d.Blackout + d.Burst }

// DropStats returns the current drop/mark counters.
func (l *Link) DropStats() DropStats { return l.drops }

// Label returns the link's telemetry identity ("" for the degenerate
// single-bottleneck link).
func (l *Link) Label() string { return l.label }

// PropDelay returns the link's one-way propagation delay.
func (l *Link) PropDelay() time.Duration { return l.prop }

// Capacity returns the link's rate trace.
func (l *Link) Capacity() trace.Trace { return l.cap }

// DeliveredBytes returns the bytes serialized through the bottleneck.
func (l *Link) DeliveredBytes() int64 { return l.delivered }

// SetTracer wires the telemetry sink for enqueue/drop/queue events.
// Link-level events carry Flow = the owning flow's ID (or -1 for
// queue-occupancy samples emitted by the Network's sampler).
func (l *Link) SetTracer(t telemetry.Tracer) {
	l.tracer = t
	l.traceOn = telemetry.Enabled(t)
}

// emitDrop records a packet drop with its reason.
func (l *Link) emitDrop(p *Packet, reason string) {
	l.evBuf = telemetry.Event{T: int64(l.eng.Now()), Type: telemetry.TypeDrop, Link: l.label,
		Flow: p.Flow.ID, Seq: p.Seq, Bytes: int64(p.Size), Queue: int64(l.qByte), Reason: reason}
	l.tracer.Emit(&l.evBuf)
}

// LinkConfig parameterises a Link.
type LinkConfig struct {
	Capacity    trace.Trace
	PropDelay   time.Duration // one-way, applied after serialization
	BufferBytes int
	LossRate    float64 // iid drop probability at ingress
	// ECNThreshold, when positive, CE-marks packets that arrive while
	// the queue holds more than this many bytes.
	ECNThreshold int
	// CoDel, when non-nil, applies Controlled-Delay AQM at dequeue.
	CoDel *CoDel
	// Faults, when non-nil, is consulted at ingress (drop/duplicate/
	// extra delay) and at service time (capacity scaling).
	Faults FaultInjector
	Seed   int64
	// Label is the link's telemetry identity (see Link).
	Label string
}

// newLink wires a link into the engine. sink receives packets after
// serialization + propagation; drop is informed of every dropped packet;
// dup clones a packet for fault-injected duplication.
func newLink(eng *sim.Engine, cfg LinkConfig, sink func(*Packet), drop func(*Packet, bool), dup func(*Packet) *Packet) *Link {
	l := &Link{
		eng:    eng,
		label:  cfg.Label,
		cap:    cfg.Capacity,
		prop:   cfg.PropDelay,
		buf:    cfg.BufferBytes,
		ecn:    cfg.ECNThreshold,
		codel:  cfg.CoDel,
		loss:   cfg.LossRate,
		faults: cfg.Faults,
		rng:    rand.New(rand.NewSource(cfg.Seed ^ 0x5f3759df)),
		sink:   sink,
		drop:   drop,
		dup:    dup,
	}
	l.sinkCb = func(arg any) { l.sink(arg.(*Packet)) }
	return l
}

// QueuedBytes returns the current queue occupancy (excluding the packet
// in service).
func (l *Link) QueuedBytes() int { return l.qByte }

// MeanQueueBytes returns the time-averaged queue occupancy up to now.
func (l *Link) MeanQueueBytes(now time.Duration) float64 {
	l.sampleQueue(now)
	if now <= 0 {
		return 0
	}
	return l.qIntegral / now.Seconds()
}

func (l *Link) sampleQueue(now time.Duration) {
	dt := (now - l.lastQSample).Seconds()
	if dt > 0 {
		l.qIntegral += float64(l.qByte) * dt
		l.lastQSample = now
	}
}

// Enqueue offers a packet to the link at the current virtual time.
func (l *Link) Enqueue(p *Packet) {
	now := l.eng.Now()
	if l.faults != nil && !p.injected {
		v := l.faults.Ingress(now, p.Seq, p.Size)
		if v.Drop {
			l.drops.Bytes += int64(p.Size)
			if v.Reason == telemetry.ReasonBlackout {
				l.drops.Blackout++
			} else {
				l.drops.Burst++
			}
			if l.traceOn {
				l.emitDrop(p, v.Reason)
			}
			l.drop(p, true)
			return
		}
		p.ExtraDelay = v.ExtraDelay
		if v.Duplicate && l.dup != nil {
			// Enqueue an independent copy behind the original; the
			// injected flag stops it from re-entering the injector.
			defer l.Enqueue(l.dup(p))
		}
	}
	if l.loss > 0 && l.rng.Float64() < l.loss {
		l.drops.Bytes += int64(p.Size)
		l.drops.Channel++
		if l.traceOn {
			l.emitDrop(p, telemetry.ReasonChannel)
		}
		l.drop(p, true)
		return
	}
	if l.qByte+p.Size > l.buf {
		l.drops.Bytes += int64(p.Size)
		l.drops.Tail++
		if l.traceOn {
			l.emitDrop(p, telemetry.ReasonTail)
		}
		l.drop(p, false)
		return
	}
	l.sampleQueue(now)
	marked := false
	if l.ecn > 0 && l.qByte > l.ecn {
		p.CE = true
		l.drops.Marked++
		marked = true
	}
	l.qByte += p.Size
	if l.traceOn {
		l.evBuf = telemetry.Event{T: int64(now), Type: telemetry.TypeEnqueue, Link: l.label,
			Flow: p.Flow.ID, Seq: p.Seq, Bytes: int64(p.Size), Queue: int64(l.qByte)}
		if marked {
			// CE-marked admissions carry a reason so mark-rate series can
			// be rebuilt from the stream alone.
			l.evBuf.Reason = telemetry.ReasonCE
		}
		l.tracer.Emit(&l.evBuf)
	}
	if l.qhead > 0 && l.qhead*2 >= len(l.queue) {
		// Compact the deque.
		n := copy(l.queue, l.queue[l.qhead:])
		for i := n; i < len(l.queue); i++ {
			l.queue[i] = nil
		}
		l.queue = l.queue[:n]
		l.qhead = 0
	}
	l.queue = append(l.queue, p)
	if !l.busy {
		l.busy = true
		l.serveNext()
	}
}

// serveNext begins serialising the head-of-line packet.
func (l *Link) serveNext() {
	now := l.eng.Now()
	// CoDel head drop: discard packets whose sojourn exceeds the AQM's
	// control law before starting service.
	for l.codel != nil && l.qhead < len(l.queue) {
		p := l.queue[l.qhead]
		if !l.codel.ShouldDrop(now-p.SentAt, now) {
			break
		}
		l.sampleQueue(now)
		l.queue[l.qhead] = nil
		l.qhead++
		l.qByte -= p.Size
		l.drops.Bytes += int64(p.Size)
		l.drops.AQM++
		if l.traceOn {
			l.emitDrop(p, telemetry.ReasonAQM)
		}
		l.drop(p, false)
	}
	if l.qhead >= len(l.queue) {
		l.busy = false
		return
	}
	p := l.queue[l.qhead]
	rate := l.cap.RateAt(now)
	if l.faults != nil {
		rate *= l.faults.RateScale(now)
	}
	if rate < minLinkRate {
		rate = minLinkRate
	}
	tx := time.Duration(float64(p.Size) / rate * float64(time.Second))
	l.eng.AfterCall(tx, serveDone, l)
}

// serveDone completes serialization of the head-of-line packet: it leaves
// the queue, propagation (plus any fault-injected extra delay) starts,
// and the next packet enters service. The head cannot have changed since
// serveNext scheduled us — enqueues append at the tail and head drops
// only happen between services — so the packet is re-read rather than
// captured in a closure.
func serveDone(arg any) {
	l := arg.(*Link)
	p := l.queue[l.qhead]
	l.sampleQueue(l.eng.Now())
	l.queue[l.qhead] = nil
	l.qhead++
	l.qByte -= p.Size
	l.delivered += int64(p.Size)
	l.eng.AfterCall(l.prop+p.ExtraDelay, l.sinkCb, p)
	l.serveNext()
}
