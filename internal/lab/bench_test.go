package lab

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"libra/internal/exp"
	"libra/internal/netem/faults"
	"libra/internal/utility"
)

// TestBenchLab measures adversarial-lab evaluation throughput — how
// many 4-second fault scenarios the pool scores per wall-clock second —
// and records it into BENCH_lab.json. It only arms when LAB_BENCH is
// set (make bench-lab); with LAB_BENCH_GUARD it additionally enforces a
// conservative floor so a hot-path regression fails CI instead of just
// drifting the number.
func TestBenchLab(t *testing.T) {
	if os.Getenv("LAB_BENCH") == "" {
		t.Skip("set LAB_BENCH=1 (make bench-lab) to measure and record lab scenario throughput")
	}

	const scenarios = 64
	u := utility.Default()
	suite := func() time.Duration {
		rc := exp.NewRunContext(1)
		rc.Workers = runtime.GOMAXPROCS(0)
		base := DefaultSpec("cubic", 1, 4)
		names := faults.PresetNames()
		start := time.Now()
		exp.Sweep(rc, scenarios, func(jc *exp.RunContext, i int) Outcome {
			sp := base
			sp.Label = "bench"
			sp.Plan, _ = faults.Preset(names[i%len(names)])
			return Eval(jc, sp, u)
		})
		return time.Since(start)
	}

	suite() // warm-up: page in code, steady-state the heap
	elapsed := suite()
	perSec := scenarios / elapsed.Seconds()

	out := struct {
		Cores        int     `json:"cores"`
		Scenarios    int     `json:"scenarios"`
		SimSeconds   float64 `json:"sim_seconds_each"`
		WallS        float64 `json:"wall_s"`
		ScenariosSec float64 `json:"scenarios_per_sec"`
	}{
		Cores:        runtime.GOMAXPROCS(0),
		Scenarios:    scenarios,
		SimSeconds:   4,
		WallS:        elapsed.Seconds(),
		ScenariosSec: perSec,
	}

	path := os.Getenv("LAB_BENCH_OUT")
	if path == "" {
		path = "../../BENCH_lab.json"
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("cores=%d scenarios=%d wall=%.2fs -> %.1f scenarios/sec -> %s",
		out.Cores, scenarios, out.WallS, perSec, path)

	if os.Getenv("LAB_BENCH_GUARD") != "" && perSec < 2 {
		t.Fatalf("lab throughput %.2f scenarios/sec under the 2/sec floor", perSec)
	}
}
