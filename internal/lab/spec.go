// Package lab is the adversarial scenario laboratory: a deterministic
// search over network conditions (trace shape, RTT, cross traffic, and
// the full faults.Plan knob space) that minimizes a target controller's
// Eq. 1 utility, plus a round-robin tournament that pits every CCA
// against every CCA's discovered worst cases and emits a robustness
// leaderboard. Everything routes through the sweep engine, so results
// are byte-identical at any worker count, and every discovered worst
// case serializes as a replayable JSON Spec.
package lab

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"libra/internal/exp"
	"libra/internal/netem/faults"
	"libra/internal/trace"
)

// Spec is one fully-determined lab scenario: everything Eval needs to
// reproduce a run bit-for-bit — the target controller, the evaluation
// seed, the bottleneck shape, cross traffic, and the exact fault plan.
// Discovered worst cases are written to disk in this form.
type Spec struct {
	// Target names the controller under test (exp.MakerFor names).
	Target string `json:"target"`
	// Label tags the spec in reports ("preset:blackout", "worst:bbr").
	Label string `json:"label,omitempty"`
	// Seed is the evaluation seed: netem, fault streams, and controller
	// RNG all derive from it, so one (Spec, binary) pair is one result.
	Seed int64 `json:"seed"`
	// CapMbps / DipFrac / PeriodS shape the bottleneck trace: capacity
	// oscillates between CapMbps and CapMbps*DipFrac with the given
	// period (DipFrac 1 or PeriodS 0 means a constant-rate link).
	CapMbps float64 `json:"cap_mbps"`
	DipFrac float64 `json:"dip_frac"`
	PeriodS float64 `json:"period_s"`
	// RTTMs is the two-way propagation delay in milliseconds.
	RTTMs float64 `json:"rtt_ms"`
	// Cross adds that many competing CUBIC flows on the bottleneck.
	Cross int `json:"cross"`
	// DurS is the simulated run length in seconds.
	DurS float64 `json:"dur_s"`
	// Plan is the exact fault plan (nil = clean link).
	Plan *faults.Plan `json:"plan,omitempty"`
	// Topo names a topology preset (exp.TopoPresetNames); empty runs
	// the classic single bottleneck. With a topology, CapMbps/DipFrac/
	// PeriodS reshape the main route's bottleneck hop, RTTMs rescales
	// every propagation delay so the main route's two-way delay matches,
	// and the fault plan lands on the bottleneck hop.
	Topo string `json:"topo,omitempty"`
	// CrossAt places the Cross flows on the topology: a fraction mapped
	// over the preset's route list (0 = first route, 1 = last). Only
	// meaningful with Topo set.
	CrossAt float64 `json:"cross_at,omitempty"`
}

// labKnobs is the scenario-shape half of the search space; the plan
// half is faults.PlanKnobs(). Combined vectors are lab knobs first.
var labKnobs = []faults.Knob{
	{Name: "cap_mbps", Min: 16, Max: 96},
	{Name: "dip_frac", Min: 0.1, Max: 1},
	{Name: "period_s", Min: 2, Max: 10},
	{Name: "rtt_ms", Min: 10, Max: 120},
	{Name: "cross", Min: 0, Max: 3},
	// topo selects the fabric: 0 is the single bottleneck, i >= 1 is
	// exp.TopoPresetNames()[i-1]. cross_at places the cross flows on
	// the chosen topology's route list.
	{Name: "topo", Min: 0, Max: float64(len(exp.TopoPresetNames()))},
	{Name: "cross_at", Min: 0, Max: 1},
}

// Knobs returns the combined search space — scenario knobs followed by
// the fault-plan knobs — as a fresh copy in fixed order.
func Knobs() []faults.Knob {
	return append(append([]faults.Knob(nil), labKnobs...), faults.PlanKnobs()...)
}

// DefaultSpec is the clean starting point: a steady 48 Mbps wired link
// with 30 ms RTT, no cross traffic, no faults.
func DefaultSpec(target string, seed int64, durS float64) Spec {
	return Spec{
		Target:  target,
		Label:   "baseline",
		Seed:    seed,
		CapMbps: 48,
		DipFrac: 1,
		PeriodS: 5,
		RTTMs:   30,
		DurS:    durS,
	}
}

// Validate rejects specs Eval could not run deterministically.
func (sp *Spec) Validate() error {
	if sp.Target == "" {
		return fmt.Errorf("lab: spec has no target CCA")
	}
	if _, err := exp.MakerFor(sp.Target, nil, nil); err != nil {
		return fmt.Errorf("lab: %w", err)
	}
	bad := func(name string, v float64) error {
		return fmt.Errorf("lab: spec %s = %v is not a positive finite number", name, v)
	}
	if !(sp.CapMbps > 0) || math.IsInf(sp.CapMbps, 0) {
		return bad("cap_mbps", sp.CapMbps)
	}
	if !(sp.DipFrac > 0 && sp.DipFrac <= 1) {
		return fmt.Errorf("lab: spec dip_frac = %v outside (0,1]", sp.DipFrac)
	}
	if sp.DipFrac < 1 && !(sp.PeriodS > 0) {
		return bad("period_s", sp.PeriodS)
	}
	if !(sp.RTTMs > 0) || math.IsInf(sp.RTTMs, 0) {
		return bad("rtt_ms", sp.RTTMs)
	}
	if sp.Cross < 0 {
		return fmt.Errorf("lab: spec cross = %d is negative", sp.Cross)
	}
	if !(sp.DurS > 0) || math.IsInf(sp.DurS, 0) {
		return bad("dur_s", sp.DurS)
	}
	if sp.Topo != "" {
		if _, ok := exp.TopoPreset(sp.Topo); !ok {
			return fmt.Errorf("lab: spec topo %q is not a preset (have %v)", sp.Topo, exp.TopoPresetNames())
		}
	}
	if sp.CrossAt < 0 || sp.CrossAt > 1 || math.IsNaN(sp.CrossAt) {
		return fmt.Errorf("lab: spec cross_at = %v outside [0,1]", sp.CrossAt)
	}
	return sp.Plan.Validate()
}

// Name is the scenario label used in spans and reports.
func (sp Spec) Name() string {
	if sp.Label != "" {
		return sp.Label
	}
	return "lab:" + sp.Target
}

// Scenario materialises the spec as an experiment scenario.
func (sp Spec) Scenario() exp.Scenario {
	capBps := trace.Mbps(sp.CapMbps)
	var tr trace.Trace
	if sp.DipFrac >= 0.999 || sp.PeriodS <= 0 {
		tr = trace.Constant(capBps)
	} else {
		// Half the period at full capacity, half at the dip.
		tr = &trace.Step{
			Period: time.Duration(sp.PeriodS * float64(time.Second) / 2),
			Levels: []float64{capBps, capBps * sp.DipFrac},
		}
	}
	return exp.Scenario{
		Name:     sp.Name(),
		Capacity: tr,
		MinRTT:   time.Duration(sp.RTTMs * float64(time.Millisecond)),
		Buffer:   150_000,
		Duration: time.Duration(sp.DurS * float64(time.Second)),
		Faults:   sp.Plan,
		Topo:     sp.topoSpec(),
	}
}

// topoSpec materialises the topology half of the spec: the preset
// reshaped by the scenario knobs. The bottleneck hop takes the spec's
// trace shape, every propagation delay scales so the main route's
// two-way delay matches RTTMs, and the preset's cross traffic is
// replaced by the spec's own (Cross cubic flows on the CrossAt route).
// Nil when the spec runs the classic single bottleneck. The fault plan
// is NOT attached here — it flows through Scenario.Faults and lands on
// the bottleneck hop inside exp's topology builder.
func (sp Spec) topoSpec() *exp.TopoSpec {
	if sp.Topo == "" {
		return nil
	}
	ts, ok := exp.TopoPreset(sp.Topo)
	if !ok {
		return nil // Validate rejects this; defensive for raw specs
	}
	if bi := ts.MainBottleneck(); bi >= 0 {
		ts.Links[bi].CapMbps = sp.CapMbps
		if sp.DipFrac < 1 && sp.PeriodS > 0 {
			ts.Links[bi].DipFrac = sp.DipFrac
			ts.Links[bi].PeriodS = sp.PeriodS
		} else {
			ts.Links[bi].DipFrac = 0
			ts.Links[bi].PeriodS = 0
		}
	}
	// Scale delays so the main route's symmetric two-way propagation
	// matches the spec's RTT.
	if main := ts.RouteByName(ts.Main); main != nil {
		var oneWay float64
		for _, lbl := range main.Links {
			for i := range ts.Links {
				if ts.Links[i].Label == lbl {
					oneWay += ts.Links[i].DelayMs
					break
				}
			}
		}
		if oneWay > 0 {
			k := sp.RTTMs / (2 * oneWay)
			for i := range ts.Links {
				ts.Links[i].DelayMs *= k
			}
		}
	}
	ts.Cross = nil
	if sp.Cross > 0 && len(ts.Routes) > 0 {
		idx := int(math.Round(sp.CrossAt * float64(len(ts.Routes)-1)))
		ts.Cross = []exp.CrossFlow{{Route: ts.Routes[idx].Name, CCA: "cubic", Count: sp.Cross}}
	}
	return ts
}

// Vector projects the spec into the combined knob space (lab knobs,
// then plan knobs), clamped into the declared box.
func (sp Spec) Vector() []float64 {
	v := []float64{sp.CapMbps, sp.DipFrac, sp.PeriodS, sp.RTTMs, float64(sp.Cross),
		float64(topoIndex(sp.Topo)), sp.CrossAt}
	for i, k := range labKnobs {
		v[i] = k.Clamp(v[i])
	}
	return append(v, sp.Plan.Vector()...)
}

// topoIndex maps a preset name into the topo knob: 0 is the single
// bottleneck, i >= 1 is exp.TopoPresetNames()[i-1].
func topoIndex(name string) int {
	if name == "" {
		return 0
	}
	for i, n := range exp.TopoPresetNames() {
		if n == name {
			return i + 1
		}
	}
	return 0
}

// topoName inverts topoIndex.
func topoName(idx int) string {
	names := exp.TopoPresetNames()
	if idx < 1 || idx > len(names) {
		return ""
	}
	return names[idx-1]
}

// FromVector decodes a combined knob vector into a runnable spec,
// carrying over the identity fields (target, seed, duration, label)
// from the receiver. Decoded specs always validate: lab knobs clamp
// into their box, cross rounds to a whole flow count, and the plan
// decode gates sections exactly like faults.PlanFromVector.
func (sp Spec) FromVector(v []float64) Spec {
	at := func(i int) float64 {
		if i < len(v) {
			return labKnobs[i].Clamp(v[i])
		}
		return labKnobs[i].Clamp(0)
	}
	out := sp
	out.CapMbps = at(0)
	out.DipFrac = at(1)
	out.PeriodS = at(2)
	out.RTTMs = at(3)
	out.Cross = int(math.Round(at(4)))
	out.Topo = topoName(int(math.Round(at(5))))
	out.CrossAt = at(6)
	if len(v) > len(labKnobs) {
		out.Plan = faults.PlanFromVector(v[len(labKnobs):])
	} else {
		out.Plan = faults.PlanFromVector(nil)
	}
	if out.Plan.Empty() {
		out.Plan = nil
	}
	return out
}

// WriteFile serializes the spec as an indented, replayable artifact.
func (sp Spec) WriteFile(path string) error {
	b, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		return fmt.Errorf("lab: marshal spec: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadSpecFile loads and validates a spec artifact.
func ReadSpecFile(path string) (Spec, error) {
	var sp Spec
	b, err := os.ReadFile(path)
	if err != nil {
		return sp, fmt.Errorf("lab: %w", err)
	}
	if err := json.Unmarshal(b, &sp); err != nil {
		return sp, fmt.Errorf("lab: parse spec %s: %w", path, err)
	}
	if err := sp.Validate(); err != nil {
		return sp, fmt.Errorf("%w (in %s)", err, path)
	}
	return sp, nil
}
