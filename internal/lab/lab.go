package lab

import (
	"time"

	"libra/internal/analyze"
	"libra/internal/exp"
	"libra/internal/telemetry"
	"libra/internal/trace"
	"libra/internal/utility"
)

// FailScore is the finite sentinel a failed evaluation scores: bad
// enough that no healthy run loses to it, finite so artifacts stay
// JSON-encodable (the encoder rejects ±Inf).
const FailScore = -1e6

// Outcome is one evaluated scenario: the spec that produced it, its
// Eq. 1 score, summary stats for the target flow, and the anomaly
// counts the analyzer attributed to it.
type Outcome struct {
	Spec     Spec    `json:"spec"`
	Score    float64 `json:"score"`
	Failed   bool    `json:"failed,omitempty"`
	ThrMbps  float64 `json:"thr_mbps"`
	DelayMs  float64 `json:"delay_ms"`
	LossRate float64 `json:"loss_rate"`
	// Anomalies counts the target flow's collapses, utility
	// regressions, and no-ACK episodes flagged by the analyzer.
	Anomalies int64 `json:"anomalies"`

	// an is the evaluation's analyzer, kept for tournament merging.
	an *analyze.Analyzer
}

// Eval runs one scenario in the given (job) context and scores the
// target flow. The context is reseeded to the spec's own seed first,
// so a spec evaluates identically wherever it lands in a sweep batch —
// the objective depends on the scenario, never on the job index. The
// run feeds a private analyzer (tapped off the job tracer), and the
// score is the mean per-second Eq. 1 utility of the target flow, the
// same formula the fig. 18 experiment uses, so it is comparable across
// every CCA rather than only the Libra family.
func Eval(jc *exp.RunContext, sp Spec, u utility.Libra) Outcome {
	jc.Metrics.Counter("libra_lab_evals_total", "lab scenario evaluations").Inc()
	out := Outcome{Spec: sp, Score: FailScore}
	if err := sp.Validate(); err != nil {
		out.Failed = true
		return out
	}
	jc.Reseed(sp.Seed)

	an := analyze.New(analyze.Config{Util: u})
	saved := jc.Tracer
	jc.Tracer = telemetry.Multi(saved, an)
	defer func() { jc.Tracer = saved }()

	mks := make([]exp.Maker, 0, 1+sp.Cross)
	mks = append(mks, exp.CCAMaker(sp.Target, u)(jc))
	// With a topology, cross flows ride their own routes via the spec's
	// CrossAt placement; without one they share the single bottleneck.
	if sp.Topo == "" {
		for c := 0; c < sp.Cross; c++ {
			mks = append(mks, exp.CCAMaker("cubic", nil)(jc))
		}
	}
	ms := jc.RunFlows(sp.Scenario(), mks, nil, time.Second)

	an.Finalize()
	out.an = an
	m := ms[0]
	if m.Failed {
		out.Failed = true
		return out
	}
	out.Score = score(m, u, int(sp.DurS))
	out.ThrMbps = m.ThrMbps
	out.DelayMs = m.DelayMs
	out.LossRate = m.LossRate
	for _, fr := range an.Report().Flows {
		if fr.ID == 0 {
			out.Anomalies = fr.Collapses + fr.Regressions + fr.NoAckEpisodes
		}
	}
	return out
}

// score is the cross-CCA objective: mean per-second Eq. 1 utility of
// the target flow, from its recorded throughput/delay series (per-
// second latency gradient, run loss rate in every term).
func score(m exp.Metrics, u utility.Libra, seconds int) float64 {
	if seconds < 1 {
		seconds = 1
	}
	sum := 0.0
	for t := 0; t < seconds; t++ {
		thr := trace.ToMbps(m.Flow.Stats.Throughput.Rate(t))
		grad := 0.0
		if t > 0 {
			grad = (m.Flow.Stats.Delay.Mean(t) - m.Flow.Stats.Delay.Mean(t-1)) / 1000
		}
		sum += u.Value(thr, grad, m.LossRate)
	}
	return sum / float64(seconds)
}

// Replay re-runs a (discovered or loaded) spec on a top-level context
// with full telemetry attached and, when mark is set, emits a
// lab_worst_case anomaly at end-of-run so an attached flight recorder
// dumps the forensic ring for the scenario.
func Replay(rc *exp.RunContext, sp Spec, u utility.Libra, mark bool) Outcome {
	out := Eval(rc, sp, u)
	if mark {
		rc.EmitAnomaly(int64(sp.DurS*float64(time.Second)), 0, telemetry.AnomalyLabWorst)
	}
	return out
}
