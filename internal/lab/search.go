package lab

import (
	"fmt"
	"math/rand"

	"libra/internal/exp"
	"libra/internal/netem/faults"
	"libra/internal/sweep"
	"libra/internal/utility"
)

// Search tuning constants.
const (
	startStep    = 0.25 // initial coordinate step, as a fraction of knob range
	minStep      = 0.02 // halving below this ends the search
	mutantsRound = 8    // evolutionary fallback population per round
)

// SearchConfig parameterises one adversarial search.
type SearchConfig struct {
	// Target is the controller whose utility the search minimizes.
	Target string
	// Seed drives every random choice (candidate mutations) and the
	// evaluation seed, all via splitmix64 sub-seeds.
	Seed int64
	// Budget caps total scenario evaluations (clamped up so the preset
	// screening batch plus at least a slice of one round always fit).
	Budget int
	// DurS is the simulated length of each evaluation (default 4s).
	DurS float64
	// Util holds the Eq. 1 constants (zero value = paper default).
	Util utility.Libra
}

func (c SearchConfig) withDefaults() SearchConfig {
	if c.DurS <= 0 {
		c.DurS = 4
	}
	if c.Util == (utility.Libra{}) {
		c.Util = utility.Default()
	}
	if min := len(faults.PresetNames()) + 4; c.Budget < min {
		c.Budget = min
	}
	return c
}

// SearchResult is a completed adversarial search: the discovered worst
// case plus the screening outcomes it started from.
type SearchResult struct {
	Target string `json:"target"`
	// Best is the worst discovered scenario (lowest score).
	Best Outcome `json:"best"`
	// Baseline is the clean-link run; Presets the stock-preset screen,
	// in faults.PresetNames order; WorstPreset names the screen's loser.
	Baseline    Outcome   `json:"baseline"`
	Presets     []Outcome `json:"presets"`
	WorstPreset string    `json:"worst_preset"`
	Evals       int       `json:"evals"`
	Rounds      int       `json:"rounds"`
}

// Search runs the adversarial optimizer against one target CCA:
// screen the stock presets, start coordinate descent from the worst
// one's in-box projection, and fall back to a seeded evolutionary
// population whenever no single-coordinate move improves, halving the
// step until the budget runs out or the step floor is hit. Candidate
// batches evaluate on the sweep worker pool; every candidate carries
// the same evaluation seed (derived once from cfg.Seed), so the
// objective is a pure function of the scenario and the result is
// byte-identical at any rc.Workers count.
func Search(rc *exp.RunContext, cfg SearchConfig) (*SearchResult, error) {
	cfg = cfg.withDefaults()
	if _, err := exp.MakerFor(cfg.Target, nil, nil); err != nil {
		return nil, fmt.Errorf("lab: %w", err)
	}
	rc.Metrics.Counter("libra_lab_searches_total", "adversarial searches run").Inc()

	res := &SearchResult{Target: cfg.Target}
	evalSeed := sweep.SubSeed(cfg.Seed, 0)
	batch := func(specs []Spec) []Outcome {
		res.Evals += len(specs)
		return exp.Sweep(rc, len(specs), func(jc *exp.RunContext, i int) Outcome {
			return Eval(jc, specs[i], cfg.Util)
		})
	}

	// Screening batch: clean link plus every stock preset, in one sweep.
	base := DefaultSpec(cfg.Target, evalSeed, cfg.DurS)
	names := faults.PresetNames()
	specs := make([]Spec, 0, 1+len(names))
	specs = append(specs, base)
	for _, n := range names {
		p, _ := faults.Preset(n)
		sp := base
		sp.Label = "preset:" + n
		sp.Plan = p
		specs = append(specs, sp)
	}
	outs := batch(specs)
	res.Baseline = outs[0]
	res.Presets = outs[1:]
	worst := res.Presets[0]
	for _, o := range res.Presets[1:] {
		if o.Score < worst.Score {
			worst = o
		}
	}
	res.WorstPreset = worst.Spec.Label

	// Descend from the worst preset's projection into the knob box.
	start := worst.Spec.FromVector(worst.Spec.Vector())
	start.Label = "search:" + cfg.Target
	res.Best = batch([]Spec{start})[0]
	if worst.Score < res.Best.Score && !worst.Failed {
		// The projection lost whatever made the preset nasty (e.g. an
		// out-of-box parameter); keep the preset itself as incumbent.
		res.Best = worst
	}

	knobs := Knobs()
	cur := res.Best.Spec.Vector()
	step := startStep
	for res.Evals < cfg.Budget && step >= minStep {
		res.Rounds++
		remaining := func() int { return cfg.Budget - res.Evals }

		// Coordinate candidates: ±step along every knob, one batch.
		var cands []Spec
		for i, k := range knobs {
			for _, dir := range []float64{-1, 1} {
				w := append([]float64(nil), cur...)
				w[i] = k.Clamp(w[i] + dir*step*(k.Max-k.Min))
				if w[i] == cur[i] {
					continue
				}
				cands = append(cands, res.Best.Spec.FromVector(w))
			}
		}
		if len(cands) > remaining() {
			cands = cands[:remaining()]
		}
		if len(cands) == 0 {
			break
		}
		if best, ok := improve(batch(cands), res.Best.Score); ok {
			res.Best = best
			cur = best.Spec.Vector()
			continue
		}
		if remaining() == 0 {
			break
		}

		// Evolutionary fallback: a seeded mutant population around the
		// incumbent; if even that stalls, refine the step.
		var mutants []Spec
		for m := 0; m < mutantsRound; m++ {
			w := append([]float64(nil), cur...)
			rng := rand.New(rand.NewSource(sweep.SubSeed2(cfg.Seed, res.Rounds, m)))
			faults.MutateVector(w, knobs, rng, step)
			mutants = append(mutants, res.Best.Spec.FromVector(w))
		}
		if len(mutants) > remaining() {
			mutants = mutants[:remaining()]
		}
		if best, ok := improve(batch(mutants), res.Best.Score); ok {
			res.Best = best
			cur = best.Spec.Vector()
			continue
		}
		step /= 2
	}
	return res, nil
}

// improve returns the lowest-scoring outcome of the batch if it is
// strictly below the incumbent score (ties keep the earliest index, so
// selection is order-stable).
func improve(outs []Outcome, incumbent float64) (Outcome, bool) {
	best, ok := Outcome{}, false
	for _, o := range outs {
		if o.Score < incumbent && (!ok || o.Score < best.Score) {
			best, ok = o, true
		}
	}
	return best, ok
}
