package lab

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"

	"libra/internal/exp"
	"libra/internal/netem/faults"
	"libra/internal/utility"
)

func TestSpecFileRoundTrip(t *testing.T) {
	plan, _ := faults.Preset("blackout")
	sp := Spec{
		Target: "cubic", Label: "worst:cubic", Seed: 12345,
		CapMbps: 24, DipFrac: 0.5, PeriodS: 4, RTTMs: 40, Cross: 1, DurS: 4,
		Plan: plan,
	}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := sp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, back) {
		t.Fatalf("spec file round-trip changed the spec:\n  %+v\n  %+v", sp, back)
	}
	// The artifact itself must be byte-stable: writing what we read
	// back reproduces the file.
	b1, _ := json.MarshalIndent(sp, "", "  ")
	b2, _ := json.MarshalIndent(back, "", "  ")
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-marshalled spec differs")
	}
}

func TestSpecValidateRejects(t *testing.T) {
	good := DefaultSpec("cubic", 1, 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	for name, mut := range map[string]func(*Spec){
		"no target":      func(s *Spec) { s.Target = "" },
		"unknown target": func(s *Spec) { s.Target = "nope" },
		"zero capacity":  func(s *Spec) { s.CapMbps = 0 },
		"bad dip":        func(s *Spec) { s.DipFrac = 1.5 },
		"neg rtt":        func(s *Spec) { s.RTTMs = -1 },
		"neg cross":      func(s *Spec) { s.Cross = -1 },
		"zero duration":  func(s *Spec) { s.DurS = 0 },
		"bad plan":       func(s *Spec) { s.Plan = &faults.Plan{Blackouts: &faults.Blackouts{}} },
		"unknown topo":   func(s *Spec) { s.Topo = "moebius-strip" },
		"bad cross_at":   func(s *Spec) { s.CrossAt = 1.5 },
	} {
		sp := good
		mut(&sp)
		if sp.Validate() == nil {
			t.Errorf("%s: Validate accepted %+v", name, sp)
		}
	}
}

// TestSpecVectorRoundTrip: decoding a combined vector and re-encoding
// is the identity, so coordinate descent moves exactly the knob it
// perturbs.
func TestSpecVectorRoundTrip(t *testing.T) {
	base := DefaultSpec("cubic", 9, 4)
	knobs := Knobs()
	if want := 7 + len(faults.PlanKnobs()); len(knobs) != want {
		t.Fatalf("combined knob space has %d dims, want %d", len(knobs), want)
	}
	hostile, _ := faults.Preset("hostile")
	withPlan := base
	withPlan.Plan = hostile
	withTopo := base
	withTopo.Topo = "parking-lot"
	withTopo.Cross = 2
	withTopo.CrossAt = 0.5
	for _, sp := range []Spec{base, withPlan, withTopo} {
		dec := sp.FromVector(sp.Vector())
		if err := dec.Validate(); err != nil {
			t.Fatalf("decoded spec invalid: %v", err)
		}
		again := dec.FromVector(dec.Vector())
		if !reflect.DeepEqual(dec, again) {
			t.Fatalf("vector round-trip changed spec:\n  %+v\n  %+v", dec, again)
		}
	}
}

// TestEvalDeterministic: the same spec evaluated twice — and from
// different sweep job slots — produces the identical outcome.
func TestEvalDeterministic(t *testing.T) {
	sp := DefaultSpec("cubic", 777, 3)
	sp.Plan, _ = faults.Preset("bursty")
	u := utility.Default()
	rc := exp.NewRunContext(1)
	outs := exp.Sweep(rc, 3, func(jc *exp.RunContext, i int) Outcome {
		return Eval(jc, sp, u)
	})
	for i := 1; i < len(outs); i++ {
		if outs[i].Score != outs[0].Score || outs[i].ThrMbps != outs[0].ThrMbps {
			t.Fatalf("job %d diverged: %+v vs %+v", i, outs[i], outs[0])
		}
	}
	if outs[0].Failed || outs[0].Score == FailScore {
		t.Fatalf("healthy eval reported failure: %+v", outs[0])
	}
}

// TestEvalFaultsHurt: a mid-run blackout must score strictly below the
// clean link — the objective actually sees the injected faults.
func TestEvalFaultsHurt(t *testing.T) {
	u := utility.Default()
	rc := exp.NewRunContext(2)
	clean := DefaultSpec("cubic", 42, 4)
	dark := clean
	dark.Label = "dark"
	dark.Plan = &faults.Plan{Blackouts: &faults.Blackouts{
		Scheduled: []faults.Window{{Start: faults.Duration(500 * 1e6), Dur: faults.Duration(3 * 1e9)}},
	}}
	cOut := Eval(rc, clean, u)
	dOut := Eval(rc, dark, u)
	if !(dOut.Score < cOut.Score) {
		t.Fatalf("blackout did not hurt: clean %.3f vs dark %.3f", cOut.Score, dOut.Score)
	}
}

// TestEvalTopology: a spec with a topology preset evaluates cleanly,
// deterministically, and actually routes through the multi-hop engine
// (cross flows placed by cross_at, not as extra bottleneck makers).
func TestEvalTopology(t *testing.T) {
	sp := DefaultSpec("cubic", 99, 3)
	sp.Topo = "parking-lot"
	sp.Cross = 1
	sp.CrossAt = 1
	u := utility.Default()
	a := Eval(exp.NewRunContext(4), sp, u)
	b := Eval(exp.NewRunContext(4), sp, u)
	if a.Failed || a.Score == FailScore {
		t.Fatalf("topo eval failed: %+v", a)
	}
	if a.Score != b.Score || a.ThrMbps != b.ThrMbps {
		t.Fatalf("topo eval not deterministic: %+v vs %+v", a, b)
	}
	if a.ThrMbps <= 0 || a.ThrMbps > sp.CapMbps+1 {
		t.Fatalf("topo eval throughput %.2f Mbps out of range", a.ThrMbps)
	}
}

func TestEvalInvalidSpecFails(t *testing.T) {
	rc := exp.NewRunContext(3)
	out := Eval(rc, Spec{Target: "cubic"}, utility.Default())
	if !out.Failed || out.Score != FailScore {
		t.Fatalf("invalid spec evaluated: %+v", out)
	}
}

// TestSearchBeatsWorstPreset is the acceptance criterion: the search
// must discover a scenario scoring strictly below the worst stock
// preset for the target.
func TestSearchBeatsWorstPreset(t *testing.T) {
	rc := exp.NewRunContext(5)
	rc.Workers = 4
	sr, err := Search(rc, SearchConfig{Target: "cubic", Seed: 11, Budget: 60, DurS: 4})
	if err != nil {
		t.Fatal(err)
	}
	worst := sr.Presets[0].Score
	for _, o := range sr.Presets[1:] {
		if o.Score < worst {
			worst = o.Score
		}
	}
	if !(sr.Best.Score < worst) {
		t.Fatalf("search best %.4f did not beat worst preset %.4f (%s)",
			sr.Best.Score, worst, sr.WorstPreset)
	}
	if err := sr.Best.Spec.Validate(); err != nil {
		t.Fatalf("discovered worst case does not validate: %v", err)
	}
	if sr.Evals > 60 {
		t.Fatalf("search overspent its budget: %d evals", sr.Evals)
	}
	if n := rc.Metrics.Counter("libra_lab_evals_total", "").Value(); n != int64(sr.Evals) {
		t.Fatalf("libra_lab_evals_total = %d, want %d", n, sr.Evals)
	}
}

// TestSearchDeterministic: identical config → identical result,
// regardless of worker count.
func TestSearchDeterministic(t *testing.T) {
	run := func(workers int) *SearchResult {
		rc := exp.NewRunContext(5)
		rc.Workers = workers
		sr, err := Search(rc, SearchConfig{Target: "reno", Seed: 23, Budget: 16, DurS: 3})
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	a, b, c := run(1), run(4), run(4)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	cj, _ := json.Marshal(c)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("search differs at workers 1 vs 4:\n%s\n%s", aj, bj)
	}
	if !bytes.Equal(bj, cj) {
		t.Fatal("search differs across repeated runs at the same seed")
	}
}
