package lab

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"libra/internal/analyze"
	"libra/internal/exp"
	"libra/internal/netem/faults"
	"libra/internal/sweep"
	"libra/internal/utility"
)

// TournamentConfig parameterises a round-robin robustness tournament.
type TournamentConfig struct {
	// CCAs are the contestants; every one also donates its discovered
	// worst case to the shared scenario pool.
	CCAs []string
	// Seed drives the per-CCA searches and the shared scenario seeds.
	Seed int64
	// Budget is the per-CCA adversarial search budget (SearchConfig).
	Budget int
	// DurS is the simulated length of each evaluation (default 4s).
	DurS float64
	// Util holds the Eq. 1 constants (zero value = paper default).
	Util utility.Libra
}

// Entry is one CCA's leaderboard row.
type Entry struct {
	CCA string `json:"cca"`
	// MeanScore averages Eq. 1 utility across every scenario in the
	// pool; the leaderboard ranks by it.
	MeanScore float64 `json:"mean_score"`
	// WorstScore / WorstScenario locate the CCA's weakest cell.
	WorstScore    float64 `json:"worst_score"`
	WorstScenario string  `json:"worst_scenario"`
	// Baseline is the clean-link score; SLO is the fraction of
	// scenarios where the CCA kept at least half its baseline utility
	// (0 when the baseline itself is non-positive).
	Baseline float64 `json:"baseline"`
	SLO      float64 `json:"slo"`
	// Anomalies sums the analyzer's target-flow anomaly counters
	// (collapses, regressions, no-ACK episodes) across all scenarios,
	// via a merged analyze report. Failures counts aborted cells.
	Anomalies int64 `json:"anomalies"`
	Failures  int   `json:"failures"`
}

// Leaderboard is the tournament's result: a byte-stable robustness
// ranking plus the replayable worst-case specs the searches found.
type Leaderboard struct {
	Seed      int64    `json:"seed"`
	Scenarios []string `json:"scenarios"`
	Entries   []Entry  `json:"entries"`
	Worsts    []Spec   `json:"worst_cases"`
}

// Tournament searches a worst case per contestant, then runs every CCA
// against the shared scenario pool — clean baseline, every stock
// preset, and every contestant's discovered worst case — as one sweep
// of cells, aggregating per-CCA stats through merged analyze reports.
// All seeds sub-derive from cfg.Seed and all cell results come back in
// fixed row-major order, so the leaderboard is byte-identical at any
// rc.Workers count and across repeated runs.
func Tournament(rc *exp.RunContext, cfg TournamentConfig) (*Leaderboard, error) {
	if len(cfg.CCAs) == 0 {
		return nil, fmt.Errorf("lab: tournament needs at least one CCA")
	}
	for _, cca := range cfg.CCAs {
		if _, err := exp.MakerFor(cca, nil, nil); err != nil {
			return nil, fmt.Errorf("lab: %w", err)
		}
	}
	if cfg.DurS <= 0 {
		cfg.DurS = 4
	}
	if cfg.Util == (utility.Libra{}) {
		cfg.Util = utility.Default()
	}

	lb := &Leaderboard{Seed: cfg.Seed}

	// Phase 1: one adversarial search per contestant.
	for i, cca := range cfg.CCAs {
		sr, err := Search(rc, SearchConfig{
			Target: cca,
			Seed:   sweep.SubSeed2(cfg.Seed, 1, i),
			Budget: cfg.Budget,
			DurS:   cfg.DurS,
			Util:   cfg.Util,
		})
		if err != nil {
			return nil, err
		}
		worst := sr.Best.Spec
		worst.Label = "worst:" + cca
		lb.Worsts = append(lb.Worsts, worst)
	}

	// Phase 2: the shared scenario pool. Baseline and presets get their
	// own sub-derived seeds; each worst case keeps the seed it was
	// discovered at — that exact run is what it certifies.
	anyCCA := cfg.CCAs[0]
	scens := []Spec{DefaultSpec(anyCCA, sweep.SubSeed2(cfg.Seed, 0, 0), cfg.DurS)}
	scens = append(scens, presetSpecs(anyCCA, cfg.Seed, cfg.DurS)...)
	scens = append(scens, lb.Worsts...)
	for _, sp := range scens {
		lb.Scenarios = append(lb.Scenarios, sp.Label)
	}

	// Phase 3: every contestant × every scenario, one sweep, row-major.
	n := len(cfg.CCAs) * len(scens)
	rc.Metrics.Counter("libra_lab_tournament_cells_total", "tournament cells evaluated").Add(int64(n))
	cells := exp.Sweep(rc, n, func(jc *exp.RunContext, k int) Outcome {
		sp := scens[k%len(scens)]
		sp.Target = cfg.CCAs[k/len(scens)]
		return Eval(jc, sp, cfg.Util)
	})

	// Phase 4: per-CCA aggregation through a merged analyze report.
	for i, cca := range cfg.CCAs {
		row := cells[i*len(scens) : (i+1)*len(scens)]
		merged := analyze.New(analyze.Config{Util: cfg.Util})
		e := Entry{CCA: cca, Baseline: row[0].Score}
		sum := 0.0
		worst := row[0]
		kept := 0
		for _, o := range row {
			sum += o.Score
			if o.Score < worst.Score {
				worst = o
			}
			if o.Failed {
				e.Failures++
			}
			if e.Baseline > 0 && o.Score >= 0.5*e.Baseline {
				kept++
			}
			if o.an != nil {
				merged.Merge(o.an)
			}
		}
		e.MeanScore = sum / float64(len(row))
		e.WorstScore = worst.Score
		e.WorstScenario = worst.Spec.Label
		if e.Baseline > 0 {
			e.SLO = float64(kept) / float64(len(row))
		}
		for _, fr := range merged.Report().Flows {
			if fr.ID == 0 {
				e.Anomalies = fr.Collapses + fr.Regressions + fr.NoAckEpisodes
			}
		}
		lb.Entries = append(lb.Entries, e)
	}
	sort.SliceStable(lb.Entries, func(i, j int) bool {
		if lb.Entries[i].MeanScore != lb.Entries[j].MeanScore {
			return lb.Entries[i].MeanScore > lb.Entries[j].MeanScore
		}
		return lb.Entries[i].CCA < lb.Entries[j].CCA
	})
	return lb, nil
}

// presetSpecs builds the stock-preset slice of the scenario pool, in
// faults.PresetNames order with sub-derived seeds.
func presetSpecs(target string, seed int64, durS float64) []Spec {
	var out []Spec
	for j, name := range faults.PresetNames() {
		sp := DefaultSpec(target, sweep.SubSeed2(seed, 0, 1+j), durS)
		sp.Label = "preset:" + name
		sp.Plan, _ = faults.Preset(name)
		out = append(out, sp)
	}
	return out
}

// WriteText renders the leaderboard as a fixed-width table; the output
// is byte-stable for a given result.
func (lb *Leaderboard) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "robustness leaderboard (seed %d, %d scenarios)\n", lb.Seed, len(lb.Scenarios)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%4s  %-10s %10s %10s  %-18s %10s %6s %5s %5s\n",
		"rank", "cca", "mean", "worst", "worst-case", "baseline", "slo", "anom", "fail"); err != nil {
		return err
	}
	for i, e := range lb.Entries {
		if _, err := fmt.Fprintf(w, "%4d  %-10s %10.3f %10.3f  %-18s %10.3f %6.2f %5d %5d\n",
			i+1, e.CCA, e.MeanScore, e.WorstScore, e.WorstScenario, e.Baseline, e.SLO, e.Anomalies, e.Failures); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the leaderboard (including the replayable worst
// cases) as indented JSON, byte-stable for a given result.
func (lb *Leaderboard) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(lb, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
