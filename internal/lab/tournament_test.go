package lab

import (
	"bytes"
	"strings"
	"testing"

	"libra/internal/exp"
)

func runTournament(t *testing.T, workers int) (string, string) {
	t.Helper()
	rc := exp.NewRunContext(9)
	rc.Workers = workers
	lb, err := Tournament(rc, TournamentConfig{
		CCAs:   []string{"cubic", "reno"},
		Seed:   31,
		Budget: 14,
		DurS:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var text, js bytes.Buffer
	if err := lb.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if err := lb.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	return text.String(), js.String()
}

// The tentpole guarantee (and an acceptance criterion): the leaderboard
// is byte-identical at -parallel 1 vs 4 and across repeated runs at a
// fixed seed.
func TestTournamentDeterministic(t *testing.T) {
	t1, j1 := runTournament(t, 1)
	t4, j4 := runTournament(t, 4)
	t4b, j4b := runTournament(t, 4)
	if t1 != t4 {
		t.Fatalf("leaderboard text differs at workers 1 vs 4:\n%s\n---\n%s", t1, t4)
	}
	if j1 != j4 {
		t.Fatalf("leaderboard JSON differs at workers 1 vs 4:\n%s\n---\n%s", j1, j4)
	}
	if t4 != t4b || j4 != j4b {
		t.Fatal("leaderboard differs across repeated runs at the same seed")
	}
}

func TestTournamentShape(t *testing.T) {
	rc := exp.NewRunContext(9)
	rc.Workers = 4
	ccas := []string{"cubic", "reno"}
	lb, err := Tournament(rc, TournamentConfig{CCAs: ccas, Seed: 31, Budget: 14, DurS: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Scenario pool = baseline + 8 presets + one worst case per CCA.
	if want := 1 + 8 + len(ccas); len(lb.Scenarios) != want {
		t.Fatalf("scenario pool has %d entries, want %d: %v", len(lb.Scenarios), want, lb.Scenarios)
	}
	if lb.Scenarios[0] != "baseline" {
		t.Fatalf("pool must start with the baseline, got %v", lb.Scenarios)
	}
	if len(lb.Entries) != len(ccas) {
		t.Fatalf("leaderboard has %d entries, want %d", len(lb.Entries), len(ccas))
	}
	for i := 1; i < len(lb.Entries); i++ {
		if lb.Entries[i-1].MeanScore < lb.Entries[i].MeanScore {
			t.Fatalf("entries not ranked by mean score: %+v", lb.Entries)
		}
	}
	for _, e := range lb.Entries {
		if e.WorstScenario == "" || e.WorstScore > e.MeanScore {
			t.Fatalf("inconsistent entry: %+v", e)
		}
	}
	for _, w := range lb.Worsts {
		if err := w.Validate(); err != nil {
			t.Fatalf("worst case %q does not validate: %v", w.Label, err)
		}
		if !strings.HasPrefix(w.Label, "worst:") {
			t.Fatalf("worst case mislabelled: %q", w.Label)
		}
	}
	if n := rc.Metrics.Counter("libra_lab_tournament_cells_total", "").Value(); n != int64(len(ccas)*len(lb.Scenarios)) {
		t.Fatalf("cells counter = %d, want %d", n, len(ccas)*len(lb.Scenarios))
	}
}

func TestTournamentRejectsUnknownCCA(t *testing.T) {
	rc := exp.NewRunContext(1)
	if _, err := Tournament(rc, TournamentConfig{CCAs: []string{"nope"}, Seed: 1}); err == nil {
		t.Fatal("unknown CCA accepted")
	}
	if _, err := Tournament(rc, TournamentConfig{Seed: 1}); err == nil {
		t.Fatal("empty contestant list accepted")
	}
}
