package utility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultMatchesPaperConstants(t *testing.T) {
	u := Default()
	if u.T != 0.9 || u.Alpha != 1 || u.Beta != 900 || u.Gamma != 11.35 {
		t.Fatalf("defaults %+v", u)
	}
}

func TestMonotoneInThroughputWhenClean(t *testing.T) {
	u := Default()
	prev := math.Inf(-1)
	for x := 0.5; x < 200; x += 0.5 {
		v := u.Value(x, 0, 0)
		if v <= prev {
			t.Fatalf("utility not increasing at x=%v", x)
		}
		prev = v
	}
}

func TestPenaltiesReduceUtility(t *testing.T) {
	u := Default()
	clean := u.Value(50, 0, 0)
	if u.Value(50, 0.1, 0) >= clean {
		t.Fatal("latency gradient did not reduce utility")
	}
	if u.Value(50, 0, 0.05) >= clean {
		t.Fatal("loss did not reduce utility")
	}
}

func TestNegativeGradientIgnored(t *testing.T) {
	u := Default()
	if u.Value(50, -1, 0) != u.Value(50, 0, 0) {
		t.Fatal("Eq.1 uses max(0, dRTT/dt); negative gradients must not reward")
	}
}

func TestPreferenceVariants(t *testing.T) {
	// Throughput-weighted variants rank a fast/laggy option higher than
	// the default does relative to a slow/clean option; latency-weighted
	// variants do the opposite.
	fast := func(u Libra) float64 { return u.Value(50, 0.05, 0.01) }
	slow := func(u Libra) float64 { return u.Value(30, 0.001, 0) }

	if fast(Throughput2())-slow(Throughput2()) <= fast(Default())-slow(Default()) {
		t.Fatal("Th-2 did not shift preference towards throughput")
	}
	if fast(Latency2())-slow(Latency2()) >= fast(Default())-slow(Default()) {
		t.Fatal("La-2 did not shift preference towards latency")
	}
}

// Property (Theorem 4.1 precondition): u is strictly concave in x for
// any valid parameters — second difference negative everywhere.
func TestQuickStrictConcavity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := Libra{
			T:     0.1 + 0.8*rng.Float64(),
			Alpha: 0.1 + 5*rng.Float64(),
			Beta:  rng.Float64() * 2000,
			Gamma: rng.Float64() * 50,
		}
		grad := rng.Float64() * 0.2
		loss := rng.Float64() * 0.2
		h := 0.5
		for x := 1.0; x < 150; x += 2.5 {
			d2 := u.Value(x+h, grad, loss) - 2*u.Value(x, grad, loss) + u.Value(x-h, grad, loss)
			if d2 >= 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: with the droptail model of Appendix A (L = 1 - C/S,
// gradient = (S-C)/C for S >= C), the symmetric allocation is a Nash
// equilibrium — no sender can unilaterally improve by deviating.
func TestQuickNashEquilibriumSymmetric(t *testing.T) {
	u := Default()
	capacity := 100.0 // Mbps
	f := func(nRaw uint8, devRaw uint8) bool {
		n := 2 + int(nRaw)%8
		fair := capacity / float64(n)
		others := fair * float64(n-1)
		value := func(x float64) float64 {
			s := x + others
			grad, loss := 0.0, 0.0
			if s >= capacity {
				grad = (s - capacity) / capacity
				loss = 1 - capacity/s
			}
			return u.Value(x, grad, loss)
		}
		base := value(fair)
		// Any deviation in (0, 2*fair] must not beat the fair share.
		dev := (0.02 + float64(devRaw)/255.0*1.98) * fair
		if dev == fair {
			return true
		}
		return value(dev) <= base+1e-9
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestVivaceAndProteus(t *testing.T) {
	v := DefaultVivace()
	p := DefaultProteus()
	if v.Value(50, 0, 0) != p.Value(50, 0, 0) {
		t.Fatal("clean-path utilities should agree")
	}
	// Proteus additionally penalises negative gradients (deviation).
	if p.Value(50, -0.05, 0) >= v.Value(50, -0.05, 0) {
		t.Fatal("Proteus should penalise latency deviation")
	}
	if v.String() == "" || p.String() == "" || Default().String() == "" {
		t.Fatal("String() must describe the function")
	}
}

func TestNormalizer(t *testing.T) {
	var n Normalizer
	if n.Norm(5) != 0 {
		t.Fatal("unseen normalizer should return 0")
	}
	n.Observe(10)
	n.Observe(20)
	if n.Norm(15) != 0.5 || n.Norm(10) != 0 || n.Norm(20) != 1 {
		t.Fatal("linear scaling broken")
	}
	if n.Norm(0) != 0 || n.Norm(100) != 1 {
		t.Fatal("clamping broken")
	}
}
