// Package utility implements the utility functions Libra and the PCC
// family use to score sending-rate decisions.
//
// Libra's default utility (paper Eq. 1) is
//
//	u(x) = alpha * x^t - beta * x * max(0, dRTT/dt) - gamma * x * L
//
// with x the throughput in Mbit/s, dRTT/dt the dimensionless latency
// gradient, L the loss rate, and defaults t=0.9, alpha=1, beta=900,
// gamma=11.35 (the PCC Vivace constants the paper adopts). The strict
// concavity of x^t for 0<t<1 gives the unique Nash equilibrium of
// Theorem 4.1; the property tests in this package check exactly those
// conditions.
package utility

import (
	"fmt"
	"math"
)

// Func scores one monitor interval: throughput in Mbit/s, the latency
// gradient d(RTT)/dt (dimensionless), and the loss rate in [0,1].
type Func interface {
	// Value returns the utility of the observed behaviour.
	Value(throughputMbps, rttGradient, lossRate float64) float64
	// String describes the function for logs.
	String() string
}

// Libra is the paper's Eq. 1 utility.
type Libra struct {
	// T is the throughput exponent, 0 < T < 1.
	T float64
	// Alpha, Beta, Gamma weight throughput, latency inflation, and loss.
	Alpha, Beta, Gamma float64
}

// Default returns the paper's default parameters (t=0.9, alpha=1,
// beta=900, gamma=11.35).
func Default() Libra { return Libra{T: 0.9, Alpha: 1, Beta: 900, Gamma: 11.35} }

// Preference variants evaluated in Sec. 5.2 (Fig. 11).
func Throughput1() Libra { u := Default(); u.Alpha *= 2; return u }

// Throughput2 is the Th-2 variant (3x default alpha).
func Throughput2() Libra { u := Default(); u.Alpha *= 3; return u }

// Latency1 is the La-1 variant (2x default beta).
func Latency1() Libra { u := Default(); u.Beta *= 2; return u }

// Latency2 is the La-2 variant (3x default beta).
func Latency2() Libra { u := Default(); u.Beta *= 3; return u }

// Value implements Func.
func (u Libra) Value(x, grad, loss float64) float64 {
	if x < 0 {
		x = 0
	}
	if grad < 0 {
		grad = 0 // max(0, dRTT/dt): only penalise growing delay
	}
	return u.Alpha*math.Pow(x, u.T) - u.Beta*x*grad - u.Gamma*x*loss
}

// String implements Func.
func (u Libra) String() string {
	return fmt.Sprintf("libra(t=%.2f a=%.2f b=%.0f g=%.2f)", u.T, u.Alpha, u.Beta, u.Gamma)
}

// Vivace is the PCC Vivace utility — identical functional form to
// Libra's Eq. 1 with the original constants; kept as its own type so the
// PCC implementations are parameterised independently.
type Vivace struct {
	T, Beta, Gamma float64
}

// DefaultVivace returns PCC Vivace's published constants.
func DefaultVivace() Vivace { return Vivace{T: 0.9, Beta: 900, Gamma: 11.35} }

// Value implements Func.
func (u Vivace) Value(x, grad, loss float64) float64 {
	if x < 0 {
		x = 0
	}
	if grad < 0 {
		grad = 0
	}
	return math.Pow(x, u.T) - u.Beta*x*grad - u.Gamma*x*loss
}

// String implements Func.
func (u Vivace) String() string { return "vivace" }

// Proteus approximates PCC Proteus's primary utility: on top of the
// Vivace form it also penalises latency *deviation* in both directions,
// which yields the smoother, more cautious behaviour the paper observes
// for Proteus (documented approximation of the Proteus-P utility).
type Proteus struct {
	T, Beta, Gamma, Dev float64
}

// DefaultProteus returns the constants used in our experiments.
func DefaultProteus() Proteus { return Proteus{T: 0.9, Beta: 900, Gamma: 11.35, Dev: 300} }

// Value implements Func.
func (u Proteus) Value(x, grad, loss float64) float64 {
	if x < 0 {
		x = 0
	}
	pos := grad
	if pos < 0 {
		pos = 0
	}
	return math.Pow(x, u.T) - u.Beta*x*pos - u.Dev*x*math.Abs(grad) - u.Gamma*x*loss
}

// String implements Func.
func (u Proteus) String() string { return "proteus" }

// Normalizer rescales utilities into [0,1] given running min/max bounds;
// Fig. 18 reports normalised utilities.
type Normalizer struct {
	min, max float64
	seen     bool
}

// Observe folds a raw utility into the bounds.
func (n *Normalizer) Observe(v float64) {
	if !n.seen {
		n.min, n.max, n.seen = v, v, true
		return
	}
	if v < n.min {
		n.min = v
	}
	if v > n.max {
		n.max = v
	}
}

// Norm maps v into [0,1] under the observed bounds.
func (n *Normalizer) Norm(v float64) float64 {
	if !n.seen || n.max == n.min {
		return 0
	}
	x := (v - n.min) / (n.max - n.min)
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
