package exp

import (
	"time"

	"libra/internal/netem"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "aqm",
		Title: "Motivation contrast: CUBIC needs in-network CoDel for low delay; Libra is end-to-end",
		Paper: "Sec. 2: 'it is not feasible to maintain a low queuing delay for CUBIC without the involvement of AQM schemes (e.g., CoDel) which requires changes in the network devices'",
		Run:   runAQM,
	})
}

func runAQM(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 30 * time.Second
	if rc.Quick {
		dur = 12 * time.Second
	}
	cases := []struct {
		label string
		cca   string
		codel bool
	}{
		{"cubic / droptail", "cubic", false},
		{"cubic / CoDel", "cubic", true},
		{"bbr / droptail", "bbr", false},
		{"c-libra / droptail", "c-libra", false},
		{"b-libra / droptail", "b-libra", false},
	}

	type res struct {
		util, delay float64
		drops       int64
	}
	rs := Sweep(rc, len(cases), func(jc *RunContext, i int) res {
		c := cases[i]
		n := netem.New(netem.Config{
			Capacity:    trace.Constant(trace.Mbps(24)),
			MinRTT:      40 * time.Millisecond,
			BufferBytes: 600_000, // deep buffer: 200 ms when filled
			CoDel:       c.codel,
			Seed:        jc.Seed,
		})
		f := n.AddFlow(mustMaker(c.cca, jc.agents(), nil)(jc.Seed), 0, 0)
		n.Run(dur)
		jc.ObserveLink(n, dur)
		return res{
			util:  n.Utilization(dur),
			delay: float64(f.Stats.AvgRTT()) / float64(time.Millisecond),
			drops: n.Link().DropStats().AQM,
		}
	})

	tbl := Table{Name: "deep-buffered 24 Mbps / 40 ms path",
		Cols: []string{"setup", "util", "avg delay(ms)", "aqm drops"}}
	for i, c := range cases {
		r := rs[i]
		tbl.AddRow(c.label, fmtF(r.util, 3), fmtF(r.delay, 0), fmtF(float64(r.drops), 0))
	}
	return &Report{ID: "aqm", Title: "AQM contrast", Tables: []Table{tbl},
		Notes: []string{"the paper's flexibility argument: matching CoDel-grade delay without touching network devices"}}
}
