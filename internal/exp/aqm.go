package exp

import (
	"time"

	"libra/internal/netem"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "aqm",
		Title: "Motivation contrast: CUBIC needs in-network CoDel for low delay; Libra is end-to-end",
		Paper: "Sec. 2: 'it is not feasible to maintain a low queuing delay for CUBIC without the involvement of AQM schemes (e.g., CoDel) which requires changes in the network devices'",
		Run:   runAQM,
	})
}

func runAQM(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 30 * time.Second
	if cfg.Quick {
		dur = 12 * time.Second
	}
	ag := cfg.agents()

	run := func(name string, codel bool) (float64, float64, int64) {
		n := netem.New(netem.Config{
			Capacity:    trace.Constant(trace.Mbps(24)),
			MinRTT:      40 * time.Millisecond,
			BufferBytes: 600_000, // deep buffer: 200 ms when filled
			CoDel:       codel,
			Seed:        cfg.Seed,
		})
		f := n.AddFlow(mustMaker(name, ag, nil)(cfg.Seed), 0, 0)
		n.Run(dur)
		return n.Utilization(dur), float64(f.Stats.AvgRTT()) / float64(time.Millisecond), n.Link().DropStats().AQM
	}

	tbl := Table{Name: "deep-buffered 24 Mbps / 40 ms path",
		Cols: []string{"setup", "util", "avg delay(ms)", "aqm drops"}}
	for _, c := range []struct {
		label string
		cca   string
		codel bool
	}{
		{"cubic / droptail", "cubic", false},
		{"cubic / CoDel", "cubic", true},
		{"bbr / droptail", "bbr", false},
		{"c-libra / droptail", "c-libra", false},
		{"b-libra / droptail", "b-libra", false},
	} {
		u, d, drops := run(c.cca, c.codel)
		tbl.AddRow(c.label, fmtF(u, 3), fmtF(d, 0), fmtF(float64(drops), 0))
	}
	return &Report{ID: "aqm", Title: "AQM contrast", Tables: []Table{tbl},
		Notes: []string{"the paper's flexibility argument: matching CoDel-grade delay without touching network devices"}}
}
