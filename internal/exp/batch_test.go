package exp

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"libra/internal/rlcc"
	"libra/internal/telemetry"
)

// batchSuite sweeps a multi-flow learning grid — two aurora flows per
// run share one agent, so real inference cohorts form — and renders
// every simulation-derived output: the report, the merged metrics
// snapshot, and the telemetry event stream.
func batchSuite(t *testing.T, agents *AgentSet, workers int, noBatch bool) (string, telemetry.Snapshot, string, rlcc.BatchStats) {
	t.Helper()
	var buf bytes.Buffer
	rec := telemetry.NewRecorder(&buf)
	rc := NewRunContext(13)
	rc.Workers = workers
	rc.NoBatch = noBatch
	rc.Agents = agents
	rc.Tracer = rec
	s := WiredScenarios(3*time.Second, 24)[0]
	mss := Sweep(rc, 2, func(jc *RunContext, i int) []Metrics {
		ag := jc.agents()
		mks := []Maker{
			mustMaker("aurora", ag, nil),
			mustMaker("aurora", ag, nil),
			mustMaker("mod-rl", ag, nil),
			mustMaker("orca", ag, nil),
		}
		return jc.RunFlows(s, mks, nil, 0)
	})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	tbl := Table{Name: "batch-equiv", Cols: []string{"job", "flow", "util", "thr", "delay", "loss"}}
	for j, ms := range mss {
		for i, m := range ms {
			tbl.AddRow(fmtF(float64(j), 0), fmtF(float64(i), 0),
				fmtF(m.Util, 4), fmtF(m.ThrMbps, 3), fmtF(m.DelayMs, 2), fmtF(m.LossRate, 5))
		}
	}
	rep := Report{ID: "batch-equiv", Title: "batched vs unbatched", Tables: []Table{tbl}}
	return rep.String(), stripWallClock(rc.Metrics.Snapshot()), buf.String(), rc.Batch.Snapshot()
}

// The tentpole equivalence criterion: with the inference batcher on,
// reports, merged metrics, and the telemetry event stream are
// byte-identical to the unbatched run at any worker count — and the
// batcher really did serve multi-flow cohorts with single GEMMs.
func TestBatchedSweepEquivalence(t *testing.T) {
	agents := tinyAgents(t)
	refRep, refSnap, refTrace, refStats := batchSuite(t, agents, 1, true)
	if refStats != (rlcc.BatchStats{}) {
		t.Fatalf("NoBatch run recorded batcher work: %+v", refStats)
	}
	for _, workers := range []int{1, 4} {
		rep, snap, tr, stats := batchSuite(t, agents, workers, false)
		if rep != refRep {
			t.Errorf("workers=%d batched: report differs from unbatched run\n--- unbatched ---\n%s\n--- batched ---\n%s",
				workers, refRep, rep)
		}
		if !reflect.DeepEqual(snap, refSnap) {
			t.Errorf("workers=%d batched: merged metrics snapshot differs from unbatched run", workers)
		}
		if tr != refTrace {
			t.Errorf("workers=%d batched: telemetry event stream differs from unbatched run (%d vs %d bytes)",
				workers, len(tr), len(refTrace))
		}
		if stats.Batches == 0 || stats.MaxBatch < 2 {
			t.Errorf("workers=%d: no multi-flow cohorts were batched: %+v", workers, stats)
		}
	}
}
