// Package exp contains the experiment harness: one registered
// experiment per table and figure in the paper's evaluation (see the
// per-experiment index in DESIGN.md). Each experiment constructs its
// workload, runs the candidate CCAs on the netem substrate, and emits a
// Report whose tables mirror the rows/series the paper plots.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the registry key, e.g. "fig1", "tab5".
	ID string
	// Title is a one-line description.
	Title string
	// Paper summarises what the paper reports, for EXPERIMENTS.md
	// comparisons.
	Paper string
	// Run produces the report. The context supplies the seed, the
	// quick/full switch, the worker budget, and the telemetry sinks;
	// experiments fan their independent jobs out via Sweep.
	Run func(rc *RunContext) *Report
}

// Report is the output of one experiment.
type Report struct {
	ID, Title string
	Tables    []Table
	Notes     []string
}

// Table is one printable result block.
type Table struct {
	Name string
	Cols []string
	Rows [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the report as aligned text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// String renders one table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	if t.Name != "" {
		fmt.Fprintf(&b, "-- %s --\n", t.Name)
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Cols)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var (
	regMu    sync.Mutex
	registry []Experiment
)

// Register adds an experiment; duplicate IDs panic.
func Register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	for _, x := range registry {
		if x.ID == e.ID {
			panic("exp: duplicate experiment " + e.ID)
		}
	}
	registry = append(registry, e)
}

// All returns the experiments sorted by ID.
func All() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get finds an experiment by ID.
func Get(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
