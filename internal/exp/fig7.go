package exp

import (
	"time"
)

func init() {
	Register(Experiment{
		ID:    "fig7",
		Title: "Average throughput and delay across 4 wired + 4 cellular traces (full CCA sweep)",
		Paper: "C-Libra: ~0.97/0.95x CUBIC's throughput at 4.6/3.3x lower delay (wired/cellular); B-Libra cuts delay 30% vs BBR on cellular; both Pareto-dominate; Orca below Libra's throughput",
		Run:   runFig7,
	})
}

func runFig7(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 60 * time.Second
	if cfg.Quick {
		dur = 12 * time.Second
	}
	wired := WiredScenarios(dur)
	cellular := LTEScenarios(dur, cfg.Seed)
	ccas := []string{"cubic", "bbr", "copa", "sprout", "vivace", "proteus", "remy",
		"indigo", "aurora", "orca", "mod-rl", "cl-libra", "c-libra", "b-libra"}
	ag := cfg.agents()

	family := func(name string, ss []Scenario) Table {
		tbl := Table{Name: name, Cols: []string{"cca", "norm.thr", "avg delay(ms)", "loss"}}
		// First pass: find the best average throughput for normalisation.
		type agg struct{ thr, delay, loss float64 }
		res := map[string]agg{}
		best := 0.0
		for _, cca := range ccas {
			mk := mustMaker(cca, ag, nil)
			var a agg
			for si, s := range ss {
				m := RunFlow(s, mk, cfg.Seed+int64(si)*131, 0)
				a.thr += m.ThrMbps
				a.delay += m.DelayMs
				a.loss += m.LossRate
			}
			n := float64(len(ss))
			a.thr /= n
			a.delay /= n
			a.loss /= n
			res[cca] = a
			if a.thr > best {
				best = a.thr
			}
		}
		for _, cca := range ccas {
			a := res[cca]
			tbl.AddRow(cca, fmtF(a.thr/best, 3), fmtF(a.delay, 0), fmtF(a.loss, 4))
		}
		return tbl
	}

	return &Report{
		ID:    "fig7",
		Title: "Trace sweep (throughput vs delay scatter data)",
		Tables: []Table{
			family("wired traces (avg of 4)", wired),
			family("cellular traces (avg of 4)", cellular),
		},
	}
}
