package exp

import (
	"time"
)

func init() {
	Register(Experiment{
		ID:    "fig7",
		Title: "Average throughput and delay across 4 wired + 4 cellular traces (full CCA sweep)",
		Paper: "C-Libra: ~0.97/0.95x CUBIC's throughput at 4.6/3.3x lower delay (wired/cellular); B-Libra cuts delay 30% vs BBR on cellular; both Pareto-dominate; Orca below Libra's throughput",
		Run:   runFig7,
	})
}

func runFig7(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 60 * time.Second
	if rc.Quick {
		dur = 12 * time.Second
	}
	wired := WiredScenarios(dur)
	cellular := LTEScenarios(dur, rc.Seed)
	ccas := []string{"cubic", "bbr", "copa", "sprout", "vivace", "proteus", "remy",
		"indigo", "aurora", "orca", "mod-rl", "cl-libra", "c-libra", "b-libra"}

	family := func(name string, ss []Scenario) Table {
		tbl := Table{Name: name, Cols: []string{"cca", "norm.thr", "avg delay(ms)", "loss"}}
		// One job per (cca, scenario) flow; normalisation needs every
		// result, so it runs after the sweep.
		ms := Sweep(rc, len(ccas)*len(ss), func(jc *RunContext, i int) Metrics {
			return jc.RunFlow(ss[i%len(ss)], mustMaker(ccas[i/len(ss)], jc.agents(), nil), 0)
		})
		type agg struct{ thr, delay, loss float64 }
		aggs := make([]agg, len(ccas))
		best := 0.0
		for ci := range ccas {
			var a agg
			for si := range ss {
				m := ms[ci*len(ss)+si]
				a.thr += m.ThrMbps
				a.delay += m.DelayMs
				a.loss += m.LossRate
			}
			n := float64(len(ss))
			a.thr /= n
			a.delay /= n
			a.loss /= n
			aggs[ci] = a
			if a.thr > best {
				best = a.thr
			}
		}
		for ci, cca := range ccas {
			a := aggs[ci]
			tbl.AddRow(cca, fmtF(a.thr/best, 3), fmtF(a.delay, 0), fmtF(a.loss, 4))
		}
		return tbl
	}

	return &Report{
		ID:    "fig7",
		Title: "Trace sweep (throughput vs delay scatter data)",
		Tables: []Table{
			family("wired traces (avg of 4)", wired),
			family("cellular traces (avg of 4)", cellular),
		},
	}
}
