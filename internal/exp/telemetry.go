package exp

import (
	"fmt"
	"time"

	"libra/internal/core"
	"libra/internal/netem"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

// Every flow the runner drives is summarised into the RunContext's
// registry (histograms for RTT/throughput/utility/cycle length,
// counters for drops and cycle outcomes); the CLIs export it as JSON
// or Prometheus text and serve it at /metrics next to pprof. There is
// no harness-wide registry or tracer any more — each run owns its own
// via RunContext, and Sweep merges per-job registries deterministically.

// cpuFracBuckets spans controller compute overhead from negligible to
// pathological (fraction of simulated time).
func cpuFracBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1}
}

// Observe computes one flow's run metrics and records them in the
// context's registry. It is the single summarisation path shared by
// the runner and the CLIs.
func (rc *RunContext) Observe(n *netem.Network, f *netem.Flow, d time.Duration) Metrics {
	rc.WithDefaults()
	m := Metrics{
		Util:     n.Utilization(d),
		ThrMbps:  trace.ToMbps(f.Stats.AvgThroughput()),
		DelayMs:  float64(f.Stats.AvgRTT()) / float64(time.Millisecond),
		LossRate: f.Stats.LossRate(),
		CPUFrac:  float64(f.Stats.ComputeNs) / float64(d.Nanoseconds()),
		Flow:     f,
		Net:      n,
		Ctrl:     f.Controller(),
	}
	rc.recordFlow(f, m)
	return m
}

// recordFlow pushes one flow's summary into the registry.
func (rc *RunContext) recordFlow(f *netem.Flow, m Metrics) {
	reg := rc.Metrics
	name := m.Ctrl.Name()
	reg.Counter("libra_flows_total", "flows driven by the experiment harness").Inc()
	reg.Histogram("libra_flow_rtt_ms", "per-flow mean RTT", telemetry.RTTBucketsMs()).
		Observe(m.DelayMs)
	reg.Histogram("libra_flow_throughput_mbps", "per-flow mean throughput", telemetry.ThroughputBucketsMbps()).
		Observe(m.ThrMbps)
	reg.Histogram("libra_flow_cpu_frac", "controller compute time / simulated time", cpuFracBuckets()).
		Observe(m.CPUFrac)
	reg.Counter(fmt.Sprintf("libra_flow_acked_bytes_total{cca=%q}", name), "acknowledged bytes by controller").
		Add(f.Stats.AckedBytes)
	reg.Counter(fmt.Sprintf("libra_flow_lost_bytes_total{cca=%q}", name), "lost bytes by controller").
		Add(f.Stats.LostBytes)

	lb, ok := m.Ctrl.(*core.Libra)
	if !ok {
		return
	}
	tel := lb.Telemetry()
	reg.Counter("libra_cycles_total", "completed control cycles").Add(int64(tel.Cycles))
	reg.Counter("libra_cycles_skipped_total", "cycles repeated for lack of feedback").Add(int64(tel.Skipped))
	for c := core.CandPrev; c <= core.CandRL; c++ {
		reg.Counter(fmt.Sprintf("libra_cycle_wins_total{cand=%q}", c.String()),
			"cycles won per candidate (Fig. 17)").Add(int64(tel.Wins[c]))
	}
	cycleLen := reg.Histogram("libra_cycle_len_ms", "control-cycle length", telemetry.CycleLenBucketsMs())
	utility := reg.Histogram("libra_cycle_utility", "winning candidate utility per cycle", telemetry.UtilityBuckets())
	for _, rec := range lb.CycleLog() {
		cycleLen.Observe(float64(rec.End-rec.Start) / float64(time.Millisecond))
		if rec.Skipped {
			continue
		}
		switch rec.Winner {
		case core.CandClassic:
			utility.Observe(rec.UCl)
		case core.CandRL:
			utility.Observe(rec.URl)
		default:
			if rec.HavePrev {
				utility.Observe(rec.UPrev)
			}
		}
	}
}

// ObserveLink records one network's bottleneck summary into the
// context's registry; call once per completed run (the link's drop
// counters are cumulative).
func (rc *RunContext) ObserveLink(n *netem.Network, d time.Duration) {
	rc.WithDefaults()
	rc.recordLink(n, d)
}

// recordLink pushes one network's bottleneck summary into the
// registry; call once per run (drop counters are cumulative per link).
// Reasons are walked in a fixed order so metric registration — and
// therefore help-text attribution — never depends on map iteration.
func (rc *RunContext) recordLink(n *netem.Network, d time.Duration) {
	reg := rc.Metrics
	ds := n.Link().DropStats()
	for _, rv := range []struct {
		reason string
		v      int64
	}{
		{telemetry.ReasonTail, ds.Tail},
		{telemetry.ReasonChannel, ds.Channel},
		{telemetry.ReasonAQM, ds.AQM},
		{telemetry.ReasonBlackout, ds.Blackout},
		{telemetry.ReasonBurst, ds.Burst},
	} {
		reg.Counter(fmt.Sprintf("libra_link_drops_total{reason=%q}", rv.reason),
			"bottleneck drops by reason").Add(rv.v)
	}
	reg.Counter("libra_link_dropped_bytes_total", "bytes dropped at the bottleneck").Add(ds.Bytes)
	reg.Counter("libra_link_marked_total", "packets CE-marked at the bottleneck").Add(ds.Marked)
	reg.Counter("libra_link_delivered_bytes_total", "bytes serialized through the bottleneck").
		Add(n.Link().DeliveredBytes())
	reg.Gauge("libra_link_utilization", "delivered bytes / mean capacity of the last recorded run").
		Set(n.Utilization(d))
	reg.Gauge("libra_link_mean_queue_bytes", "time-averaged bottleneck occupancy of the last recorded run").
		Set(n.Link().MeanQueueBytes(n.Eng.Now()))
}

// EmitSpan emits a harness-level causal-span boundary (scenario, flow,
// experiment) on the context's tracer. t is virtual time in
// nanoseconds; flow -1 marks run-scoped spans. The spans package folds
// these into the Chrome-trace hierarchy above the core's cycle/stage
// spans. No-op when tracing is off.
func (rc *RunContext) EmitSpan(t int64, flow int, name string, begin bool) {
	if !telemetry.Enabled(rc.Tracer) {
		return
	}
	reason := telemetry.SpanEnd
	if begin {
		reason = telemetry.SpanBegin
	}
	e := telemetry.Event{T: t, Type: telemetry.TypeSpan, Flow: flow, Reason: reason, Name: name}
	rc.Tracer.Emit(&e)
}

// EmitProfile binds a flow to a utility-profile label in the event
// stream (TypeProfile). Emit once per flow, before its first control
// event, so the time-series collector and the analyzer aggregate the
// whole flow under the profile. No-op when tracing is off.
func (rc *RunContext) EmitProfile(t int64, flow int, profile string) {
	if profile == "" || !telemetry.Enabled(rc.Tracer) {
		return
	}
	e := telemetry.Event{T: t, Type: telemetry.TypeProfile, Flow: flow, Name: profile}
	rc.Tracer.Emit(&e)
}

// EmitAnomaly emits an anomaly marker (reason per the telemetry
// Anomaly* constants) into the event stream, where the flight recorder
// picks it up as a dump trigger. No-op when tracing is off.
func (rc *RunContext) EmitAnomaly(t int64, flow int, reason string) {
	if !telemetry.Enabled(rc.Tracer) {
		return
	}
	e := telemetry.Event{T: t, Type: telemetry.TypeAnomaly, Flow: flow, Reason: reason}
	rc.Tracer.Emit(&e)
}

// AttachTracer wires the context's tracer into a freshly built
// controller, when one is configured and the controller supports it,
// and registers the flow id with the live observer.
func (rc *RunContext) AttachTracer(ctrl any, flowID int) {
	if rc.Live != nil {
		if nm, ok := ctrl.(interface{ Name() string }); ok {
			rc.Live.RegisterFlow(flowID, nm.Name())
		}
	}
	if !telemetry.Enabled(rc.Tracer) {
		return
	}
	if tb, ok := ctrl.(telemetry.Traceable); ok {
		tb.SetTracer(rc.Tracer, flowID)
	}
}
