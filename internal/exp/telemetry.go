package exp

import (
	"fmt"
	"time"

	"libra/internal/core"
	"libra/internal/netem"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

// The harness-wide metrics registry. Every flow the runner drives is
// summarised here (histograms for RTT/throughput/utility/cycle length,
// counters for drops and cycle outcomes), replacing the hand-rolled
// per-experiment accumulators; the CLIs export it as JSON or
// Prometheus text and serve it at /metrics next to pprof.
var (
	metricsReg = telemetry.NewRegistry()
	runTracer  telemetry.Tracer
)

// MetricsRegistry returns the harness registry.
func MetricsRegistry() *telemetry.Registry { return metricsReg }

// SetMetricsRegistry swaps the harness registry (tests use a fresh one
// to make assertions hermetic) and returns the previous registry.
func SetMetricsRegistry(r *telemetry.Registry) *telemetry.Registry {
	old := metricsReg
	metricsReg = r
	return old
}

// SetTracer wires a tracer into every network and traceable controller
// the runner subsequently builds (libra-bench -trace-out). Nil disables.
func SetTracer(t telemetry.Tracer) { runTracer = t }

// cpuFracBuckets spans controller compute overhead from negligible to
// pathological (fraction of simulated time).
func cpuFracBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1}
}

// Observe computes one flow's run metrics and records them in the
// harness registry. It is the single summarisation path shared by the
// runner and the CLIs.
func Observe(n *netem.Network, f *netem.Flow, d time.Duration) Metrics {
	m := Metrics{
		Util:     n.Utilization(d),
		ThrMbps:  trace.ToMbps(f.Stats.AvgThroughput()),
		DelayMs:  float64(f.Stats.AvgRTT()) / float64(time.Millisecond),
		LossRate: f.Stats.LossRate(),
		CPUFrac:  float64(f.Stats.ComputeNs) / float64(d.Nanoseconds()),
		Flow:     f,
		Net:      n,
		Ctrl:     f.Controller(),
	}
	recordFlow(f, m)
	return m
}

// recordFlow pushes one flow's summary into the registry.
func recordFlow(f *netem.Flow, m Metrics) {
	name := m.Ctrl.Name()
	metricsReg.Counter("libra_flows_total", "flows driven by the experiment harness").Inc()
	metricsReg.Histogram("libra_flow_rtt_ms", "per-flow mean RTT", telemetry.RTTBucketsMs()).
		Observe(m.DelayMs)
	metricsReg.Histogram("libra_flow_throughput_mbps", "per-flow mean throughput", telemetry.ThroughputBucketsMbps()).
		Observe(m.ThrMbps)
	metricsReg.Histogram("libra_flow_cpu_frac", "controller compute time / simulated time", cpuFracBuckets()).
		Observe(m.CPUFrac)
	metricsReg.Counter(fmt.Sprintf("libra_flow_acked_bytes_total{cca=%q}", name), "acknowledged bytes by controller").
		Add(f.Stats.AckedBytes)
	metricsReg.Counter(fmt.Sprintf("libra_flow_lost_bytes_total{cca=%q}", name), "lost bytes by controller").
		Add(f.Stats.LostBytes)

	lb, ok := m.Ctrl.(*core.Libra)
	if !ok {
		return
	}
	tel := lb.Telemetry()
	metricsReg.Counter("libra_cycles_total", "completed control cycles").Add(int64(tel.Cycles))
	metricsReg.Counter("libra_cycles_skipped_total", "cycles repeated for lack of feedback").Add(int64(tel.Skipped))
	for c := core.CandPrev; c <= core.CandRL; c++ {
		metricsReg.Counter(fmt.Sprintf("libra_cycle_wins_total{cand=%q}", c.String()),
			"cycles won per candidate (Fig. 17)").Add(int64(tel.Wins[c]))
	}
	cycleLen := metricsReg.Histogram("libra_cycle_len_ms", "control-cycle length", telemetry.CycleLenBucketsMs())
	utility := metricsReg.Histogram("libra_cycle_utility", "winning candidate utility per cycle", telemetry.UtilityBuckets())
	for _, rec := range lb.CycleLog() {
		cycleLen.Observe(float64(rec.End-rec.Start) / float64(time.Millisecond))
		if rec.Skipped {
			continue
		}
		switch rec.Winner {
		case core.CandClassic:
			utility.Observe(rec.UCl)
		case core.CandRL:
			utility.Observe(rec.URl)
		default:
			if rec.HavePrev {
				utility.Observe(rec.UPrev)
			}
		}
	}
}

// ObserveLink records one network's bottleneck summary into the
// harness registry; call once per completed run (the link's drop
// counters are cumulative).
func ObserveLink(n *netem.Network, d time.Duration) { recordLink(n, d) }

// recordLink pushes one network's bottleneck summary into the registry;
// call once per run (drop counters are cumulative per link).
func recordLink(n *netem.Network, d time.Duration) {
	ds := n.Link().DropStats()
	for reason, v := range map[string]int64{
		telemetry.ReasonTail:     ds.Tail,
		telemetry.ReasonChannel:  ds.Channel,
		telemetry.ReasonAQM:      ds.AQM,
		telemetry.ReasonBlackout: ds.Blackout,
		telemetry.ReasonBurst:    ds.Burst,
	} {
		metricsReg.Counter(fmt.Sprintf("libra_link_drops_total{reason=%q}", reason),
			"bottleneck drops by reason").Add(v)
	}
	metricsReg.Counter("libra_link_dropped_bytes_total", "bytes dropped at the bottleneck").Add(ds.Bytes)
	metricsReg.Counter("libra_link_marked_total", "packets CE-marked at the bottleneck").Add(ds.Marked)
	metricsReg.Counter("libra_link_delivered_bytes_total", "bytes serialized through the bottleneck").
		Add(n.Link().DeliveredBytes())
	metricsReg.Gauge("libra_link_utilization", "delivered bytes / mean capacity of the last recorded run").
		Set(n.Utilization(d))
	metricsReg.Gauge("libra_link_mean_queue_bytes", "time-averaged bottleneck occupancy of the last recorded run").
		Set(n.Link().MeanQueueBytes(n.Eng.Now()))
}

// attachTracer wires the harness tracer into a freshly built
// controller, when one is configured and the controller supports it.
func attachTracer(ctrl any, flowID int) {
	if !telemetry.Enabled(runTracer) {
		return
	}
	if tb, ok := ctrl.(telemetry.Traceable); ok {
		tb.SetTracer(runTracer, flowID)
	}
}
