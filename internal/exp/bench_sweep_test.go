package exp

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestBenchSweep measures the wall-clock of a fixed classic-CCA sweep
// serially (workers=1) and in parallel (workers=GOMAXPROCS) and
// records both into BENCH_sweep.json for the perf trajectory. It only
// arms when BENCH_SWEEP is set (make bench-sweep), because timing
// under a parallel `go test ./...` run measures contention, not the
// sweep engine. On a single-core machine the speedup is honestly ~1.0;
// the cores field says so.
func TestBenchSweep(t *testing.T) {
	if os.Getenv("BENCH_SWEEP") == "" {
		t.Skip("set BENCH_SWEEP=1 (make bench-sweep) to measure and record sweep wall-clock")
	}

	suite := func(workers int) time.Duration {
		start := time.Now()
		rc := NewRunContext(1)
		rc.Workers = workers
		ccas := []string{"cubic", "bbr", "reno", "vegas", "copa", "westwood", "illinois", "proteus"}
		s := WiredScenarios(4*time.Second, 24)[0]
		const reps = 2
		Sweep(rc, len(ccas)*reps, func(jc *RunContext, i int) Metrics {
			return jc.RunFlow(s, mustMaker(ccas[i/reps], nil, nil), 0)
		})
		return time.Since(start)
	}

	suite(runtime.GOMAXPROCS(0)) // warm-up: page in code, steady-state the heap
	serial := suite(1)
	parallel := suite(runtime.GOMAXPROCS(0))

	out := struct {
		Cores     int     `json:"cores"`
		Jobs      int     `json:"jobs"`
		SerialS   float64 `json:"serial_s"`
		ParallelS float64 `json:"parallel_s"`
		Speedup   float64 `json:"speedup"`
	}{
		Cores:     runtime.GOMAXPROCS(0),
		Jobs:      16,
		SerialS:   serial.Seconds(),
		ParallelS: parallel.Seconds(),
		Speedup:   serial.Seconds() / parallel.Seconds(),
	}

	path := os.Getenv("BENCH_SWEEP_OUT")
	if path == "" {
		path = "../../BENCH_sweep.json"
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("cores=%d serial=%.2fs parallel=%.2fs speedup=%.2fx -> %s",
		out.Cores, out.SerialS, out.ParallelS, out.Speedup, path)
}
