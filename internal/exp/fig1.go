package exp

import (
	"time"
)

func init() {
	Register(Experiment{
		ID:    "fig1",
		Title: "Adaptability: link utilisation and average delay over wired/LTE traces",
		Paper: "CUBIC/BBR bufferbloat on LTE (delay up to ~220ms); Orca/Proteus cut delay ~60% vs CUBIC at 8.4-13.5% lower utilisation; Libra keeps high utilisation at low delay",
		Run:   runFig1,
	})
}

func runFig1(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 60 * time.Second
	reps := 3
	if rc.Quick {
		dur = 15 * time.Second
		reps = 1
	}
	scenarios := append(WiredScenarios(dur, 24, 48, 96), LTEScenarios(dur, rc.Seed)[:3]...)
	ccas := []string{"cubic", "bbr", "orca", "proteus", "c-libra"}

	// One sweep job per (cca, scenario, repetition) flow.
	ms := Sweep(rc, len(ccas)*len(scenarios)*reps, func(jc *RunContext, i int) Metrics {
		ci := i / (len(scenarios) * reps)
		si := i / reps % len(scenarios)
		return jc.RunFlow(scenarios[si], mustMaker(ccas[ci], jc.agents(), nil), 0)
	})

	tbl := Table{
		Name: "link utilisation / avg delay (ms) per scenario",
		Cols: append([]string{"cca"}, scenarioNames(scenarios)...),
	}
	for ci, name := range ccas {
		row := []string{name}
		for si := range scenarios {
			var u, d float64
			for r := 0; r < reps; r++ {
				m := ms[(ci*len(scenarios)+si)*reps+r]
				u += m.Util
				d += m.DelayMs
			}
			u /= float64(reps)
			d /= float64(reps)
			row = append(row, fmtF(u, 2)+" / "+fmtF(d, 0))
		}
		tbl.AddRow(row...)
	}
	return &Report{ID: "fig1", Title: "Adaptability under wired / cellular networks", Tables: []Table{tbl}}
}

func scenarioNames(ss []Scenario) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}
