package exp

import (
	"time"
)

func init() {
	Register(Experiment{
		ID:    "fig1",
		Title: "Adaptability: link utilisation and average delay over wired/LTE traces",
		Paper: "CUBIC/BBR bufferbloat on LTE (delay up to ~220ms); Orca/Proteus cut delay ~60% vs CUBIC at 8.4-13.5% lower utilisation; Libra keeps high utilisation at low delay",
		Run:   runFig1,
	})
}

func runFig1(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 60 * time.Second
	reps := 3
	if cfg.Quick {
		dur = 15 * time.Second
		reps = 1
	}
	scenarios := append(WiredScenarios(dur, 24, 48, 96), LTEScenarios(dur, cfg.Seed)[:3]...)
	ccas := []string{"cubic", "bbr", "orca", "proteus", "c-libra"}

	tbl := Table{
		Name: "link utilisation / avg delay (ms) per scenario",
		Cols: append([]string{"cca"}, scenarioNames(scenarios)...),
	}
	ag := cfg.agents()
	for _, name := range ccas {
		mk := mustMaker(name, ag, nil)
		row := []string{name}
		for si, s := range scenarios {
			ms := Repeat(s, mk, reps, cfg.Seed+int64(si)*7919)
			var u, d float64
			for _, m := range ms {
				u += m.Util
				d += m.DelayMs
			}
			u /= float64(len(ms))
			d /= float64(len(ms))
			row = append(row, fmtF(u, 2)+" / "+fmtF(d, 0))
		}
		tbl.AddRow(row...)
	}
	return &Report{ID: "fig1", Title: "Adaptability under wired / cellular networks", Tables: []Table{tbl}}
}

func scenarioNames(ss []Scenario) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}
