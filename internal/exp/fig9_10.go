package exp

import (
	"time"

	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "fig9",
		Title: "Impact of buffer size (10KB-1MB) on utilisation and delay",
		Paper: "CUBIC's delay grows with buffer (fills it); BBR slightly; Libra and Proteus reach >80% utilisation with a 30KB buffer and stay delay-flat as buffers deepen",
		Run:   runFig9,
	})
	Register(Experiment{
		ID:    "fig10",
		Title: "Impact of stochastic loss (0-10%) on link utilisation",
		Paper: "B-Libra holds 81.9% utilisation at 10% loss; C-Libra beats CUBIC and Orca throughout; CUBIC collapses early",
		Run:   runFig10,
	})
}

func runFig9(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 40 * time.Second
	if cfg.Quick {
		dur = 12 * time.Second
	}
	buffers := []int{10_000, 30_000, 100_000, 300_000, 1_000_000}
	ccas := []string{"proteus", "bbr", "copa", "cubic", "orca", "c-libra", "b-libra"}
	ag := cfg.agents()

	util := Table{Name: "link utilisation vs buffer", Cols: append([]string{"cca"}, bufNames(buffers)...)}
	delay := Table{Name: "avg delay (ms) vs buffer", Cols: append([]string{"cca"}, bufNames(buffers)...)}
	for _, name := range ccas {
		mk := mustMaker(name, ag, nil)
		ru := []string{name}
		rd := []string{name}
		for bi, b := range buffers {
			s := Scenario{
				Name:     "buffer-sweep",
				Capacity: trace.Constant(trace.Mbps(60)),
				MinRTT:   100 * time.Millisecond,
				Buffer:   b,
				Duration: dur,
			}
			m := RunFlow(s, mk, cfg.Seed+int64(bi)*17, 0)
			ru = append(ru, fmtF(m.Util, 2))
			rd = append(rd, fmtF(m.DelayMs, 0))
		}
		util.AddRow(ru...)
		delay.AddRow(rd...)
	}
	return &Report{ID: "fig9", Title: "Buffer-size sensitivity", Tables: []Table{util, delay}}
}

func bufNames(bs []int) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = fmtF(float64(b)/1000, 0) + "KB"
	}
	return out
}

func runFig10(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 40 * time.Second
	if cfg.Quick {
		dur = 12 * time.Second
	}
	losses := []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10}
	ccas := []string{"proteus", "bbr", "copa", "cubic", "orca", "c-libra", "b-libra"}
	ag := cfg.agents()

	tbl := Table{Name: "link utilisation vs stochastic loss", Cols: append([]string{"cca"}, lossNames(losses)...)}
	for _, name := range ccas {
		mk := mustMaker(name, ag, nil)
		row := []string{name}
		for li, l := range losses {
			s := Scenario{
				Name:     "loss-sweep",
				Capacity: trace.Constant(trace.Mbps(48)),
				MinRTT:   40 * time.Millisecond,
				Buffer:   240_000,
				Loss:     l,
				Duration: dur,
			}
			m := RunFlow(s, mk, cfg.Seed+int64(li)*23, 0)
			row = append(row, fmtF(m.Util, 2))
		}
		tbl.AddRow(row...)
	}
	return &Report{ID: "fig10", Title: "Stochastic-loss sensitivity", Tables: []Table{tbl}}
}

func lossNames(ls []float64) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = fmtF(l*100, 0) + "%"
	}
	return out
}
