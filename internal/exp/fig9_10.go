package exp

import (
	"time"

	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "fig9",
		Title: "Impact of buffer size (10KB-1MB) on utilisation and delay",
		Paper: "CUBIC's delay grows with buffer (fills it); BBR slightly; Libra and Proteus reach >80% utilisation with a 30KB buffer and stay delay-flat as buffers deepen",
		Run:   runFig9,
	})
	Register(Experiment{
		ID:    "fig10",
		Title: "Impact of stochastic loss (0-10%) on link utilisation",
		Paper: "B-Libra holds 81.9% utilisation at 10% loss; C-Libra beats CUBIC and Orca throughout; CUBIC collapses early",
		Run:   runFig10,
	})
}

func runFig9(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 40 * time.Second
	if rc.Quick {
		dur = 12 * time.Second
	}
	buffers := []int{10_000, 30_000, 100_000, 300_000, 1_000_000}
	ccas := []string{"proteus", "bbr", "copa", "cubic", "orca", "c-libra", "b-libra"}

	ms := Sweep(rc, len(ccas)*len(buffers), func(jc *RunContext, i int) Metrics {
		s := Scenario{
			Name:     "buffer-sweep",
			Capacity: trace.Constant(trace.Mbps(60)),
			MinRTT:   100 * time.Millisecond,
			Buffer:   buffers[i%len(buffers)],
			Duration: dur,
		}
		return jc.RunFlow(s, mustMaker(ccas[i/len(buffers)], jc.agents(), nil), 0)
	})

	util := Table{Name: "link utilisation vs buffer", Cols: append([]string{"cca"}, bufNames(buffers)...)}
	delay := Table{Name: "avg delay (ms) vs buffer", Cols: append([]string{"cca"}, bufNames(buffers)...)}
	for ci, name := range ccas {
		ru := []string{name}
		rd := []string{name}
		for bi := range buffers {
			m := ms[ci*len(buffers)+bi]
			ru = append(ru, fmtF(m.Util, 2))
			rd = append(rd, fmtF(m.DelayMs, 0))
		}
		util.AddRow(ru...)
		delay.AddRow(rd...)
	}
	return &Report{ID: "fig9", Title: "Buffer-size sensitivity", Tables: []Table{util, delay}}
}

func bufNames(bs []int) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = fmtF(float64(b)/1000, 0) + "KB"
	}
	return out
}

func runFig10(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 40 * time.Second
	if rc.Quick {
		dur = 12 * time.Second
	}
	losses := []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10}
	ccas := []string{"proteus", "bbr", "copa", "cubic", "orca", "c-libra", "b-libra"}

	ms := Sweep(rc, len(ccas)*len(losses), func(jc *RunContext, i int) Metrics {
		s := Scenario{
			Name:     "loss-sweep",
			Capacity: trace.Constant(trace.Mbps(48)),
			MinRTT:   40 * time.Millisecond,
			Buffer:   240_000,
			Loss:     losses[i%len(losses)],
			Duration: dur,
		}
		return jc.RunFlow(s, mustMaker(ccas[i/len(losses)], jc.agents(), nil), 0)
	})

	tbl := Table{Name: "link utilisation vs stochastic loss", Cols: append([]string{"cca"}, lossNames(losses)...)}
	for ci, name := range ccas {
		row := []string{name}
		for li := range losses {
			row = append(row, fmtF(ms[ci*len(losses)+li].Util, 2))
		}
		tbl.AddRow(row...)
	}
	return &Report{ID: "fig10", Title: "Stochastic-loss sensitivity", Tables: []Table{tbl}}
}

func lossNames(ls []float64) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = fmtF(l*100, 0) + "%"
	}
	return out
}
