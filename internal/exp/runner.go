package exp

import (
	"fmt"
	"time"

	"libra/internal/cc"
	"libra/internal/cc/bbr"
	"libra/internal/cc/copa"
	"libra/internal/cc/cubic"
	"libra/internal/cc/indigo"
	"libra/internal/cc/orca"
	"libra/internal/cc/remy"
	"libra/internal/cc/reno"
	"libra/internal/cc/sprout"
	"libra/internal/cc/vegas"
	"libra/internal/cc/vivace"
	"libra/internal/core"
	"libra/internal/netem"
	"libra/internal/rlcc"
	"libra/internal/trace"
	"libra/internal/utility"
)

// Scenario is one emulated-network workload.
type Scenario struct {
	Name     string
	Capacity trace.Trace
	MinRTT   time.Duration
	Buffer   int
	Loss     float64
	Duration time.Duration
}

// WiredScenarios returns the paper's wired trace set (Fig. 1 uses
// 24/48/96 Mbps; Fig. 7 adds 12 Mbps), with 30 ms RTT and 150 KB buffer.
func WiredScenarios(d time.Duration, mbps ...float64) []Scenario {
	if len(mbps) == 0 {
		mbps = []float64{12, 24, 48, 96}
	}
	out := make([]Scenario, 0, len(mbps))
	for _, m := range mbps {
		out = append(out, Scenario{
			Name:     fmt.Sprintf("Wired-%gMbps", m),
			Capacity: trace.Constant(trace.Mbps(m)),
			MinRTT:   30 * time.Millisecond,
			Buffer:   150_000,
			Duration: d,
		})
	}
	return out
}

// LTEScenarios returns the synthetic cellular trace set (LTE#1..#3 plus
// the driving tour), 30 ms RTT, 150 KB buffer.
func LTEScenarios(d time.Duration, seed int64) []Scenario {
	mk := func(name string, tr trace.Trace) Scenario {
		return Scenario{Name: name, Capacity: tr, MinRTT: 30 * time.Millisecond,
			Buffer: 150_000, Duration: d}
	}
	return []Scenario{
		mk("LTE-stationary", trace.NewLTE(trace.LTEStationary, d, seed+1)),
		mk("LTE-walking", trace.NewLTE(trace.LTEWalking, d, seed+2)),
		mk("LTE-driving", trace.NewLTE(trace.LTEDriving, d, seed+3)),
		mk("LTE-tour", trace.NewDrivingTour(d, seed+4)),
	}
}

// Metrics summarises one flow's run.
type Metrics struct {
	Util     float64
	ThrMbps  float64
	DelayMs  float64
	LossRate float64
	// CPUFrac is controller compute-time divided by simulated time —
	// the overhead metric (Fig. 2c / Fig. 12).
	CPUFrac float64
	Flow    *netem.Flow
	Net     *netem.Network
	Ctrl    cc.Controller
}

// Maker constructs a fresh controller per flow.
type Maker func(seed int64) cc.Controller

// CCASet lists the controller names the harness can build.
var CCASet = []string{
	"cubic", "bbr", "reno", "vegas", "copa", "sprout", "vivace", "proteus",
	"remy", "indigo", "aurora", "orca", "mod-rl", "westwood", "illinois",
	"dctcp", "c-libra", "b-libra", "cl-libra", "w-libra", "i-libra", "d-libra",
}

// MakerFor builds a controller factory for name, wiring in the trained
// agents where the algorithm has a learning component. Libra variants
// accept a utility override via util (nil = paper default).
func MakerFor(name string, ag *AgentSet, util utility.Func) Maker {
	libra := func(seed int64, classic func(cc.Config) core.Classic, noClassic bool, nm string) cc.Controller {
		base := cc.Config{Seed: seed}.WithDefaults()
		rlCfg := rlcc.LibraRLConfig(base)
		if ag != nil {
			rlCfg.Agent = ag.LibraRL
			rlCfg.Norm = ag.LibraNorm
		}
		cfg := core.Config{
			CC:           base,
			RL:           rlcc.New("libra-rl", rlCfg),
			Util:         util,
			NoClassic:    noClassic,
			Name:         nm,
			RecordCycles: true,
		}
		if classic != nil {
			cfg.Classic = classic(base)
		}
		return core.New(cfg)
	}
	switch name {
	case "cubic":
		return func(seed int64) cc.Controller { return cubic.New(cc.Config{Seed: seed}) }
	case "bbr":
		return func(seed int64) cc.Controller { return bbr.New(cc.Config{Seed: seed}) }
	case "reno":
		return func(seed int64) cc.Controller { return reno.New(cc.Config{Seed: seed}) }
	case "vegas":
		return func(seed int64) cc.Controller { return vegas.New(cc.Config{Seed: seed}) }
	case "copa":
		return func(seed int64) cc.Controller { return copa.New(cc.Config{Seed: seed}) }
	case "sprout":
		return func(seed int64) cc.Controller { return sprout.New(cc.Config{Seed: seed}) }
	case "vivace":
		return func(seed int64) cc.Controller { return vivace.New(cc.Config{Seed: seed}) }
	case "proteus":
		return func(seed int64) cc.Controller { return vivace.NewProteus(cc.Config{Seed: seed}) }
	case "remy":
		return func(seed int64) cc.Controller { return remy.New(cc.Config{Seed: seed}) }
	case "indigo":
		return func(seed int64) cc.Controller { return indigo.New(cc.Config{Seed: seed}) }
	case "aurora":
		return func(seed int64) cc.Controller {
			cfg := rlcc.AuroraConfig(cc.Config{Seed: seed})
			if ag != nil {
				cfg.Agent = ag.Aurora
				cfg.Norm = ag.AuroraNorm
			}
			return rlcc.New("aurora", cfg)
		}
	case "orca":
		return func(seed int64) cc.Controller {
			cfg := rlcc.OrcaRLConfig(cc.Config{Seed: seed})
			if ag != nil {
				cfg.Agent = ag.Orca
				cfg.Norm = ag.OrcaNorm
			}
			return orca.New(cfg)
		}
	case "mod-rl":
		return func(seed int64) cc.Controller {
			base := cc.Config{Seed: seed}
			cfg := rlcc.LibraRLConfig(base)
			u := utility.Default()
			cfg.RewardFunc = u.Value
			if ag != nil {
				cfg.Agent = ag.ModRL
				cfg.Norm = ag.ModRLNorm
			}
			return rlcc.New("mod-rl", cfg)
		}
	case "c-libra":
		return func(seed int64) cc.Controller {
			return libra(seed, func(b cc.Config) core.Classic { return core.NewCubicAdapter(b) }, false, "c-libra")
		}
	case "b-libra":
		return func(seed int64) cc.Controller {
			return libra(seed, func(b cc.Config) core.Classic { return core.NewBBRAdapter(b) }, false, "b-libra")
		}
	case "cl-libra":
		return func(seed int64) cc.Controller { return libra(seed, nil, true, "cl-libra") }
	default:
		return func(seed int64) cc.Controller {
			ctrl, err := cc.New(name, cc.Config{Seed: seed})
			if err != nil {
				panic(err)
			}
			return ctrl
		}
	}
}

// RunFlow drives one controller over a scenario and returns its
// metrics. When bucket > 0 the flow records time series at that width.
// Results are also summarised into MetricsRegistry, and a tracer set
// via SetTracer is wired through the network and controller.
func RunFlow(s Scenario, mk Maker, seed int64, bucket time.Duration) Metrics {
	n := netem.New(netem.Config{
		Capacity:     s.Capacity,
		MinRTT:       s.MinRTT,
		BufferBytes:  s.Buffer,
		LossRate:     s.Loss,
		Seed:         seed,
		RecordSeries: bucket > 0,
		SeriesBucket: bucket,
		Tracer:       runTracer,
	})
	ctrl := mk(seed)
	attachTracer(ctrl, 0)
	f := n.AddFlow(ctrl, 0, 0)
	n.Run(s.Duration)
	recordLink(n, s.Duration)
	return Observe(n, f, s.Duration)
}

// RunFlows drives several controllers sharing one bottleneck; starts[i]
// delays flow i. Returns per-flow metrics.
func RunFlows(s Scenario, mks []Maker, starts []time.Duration, seed int64, bucket time.Duration) []Metrics {
	n := netem.New(netem.Config{
		Capacity:     s.Capacity,
		MinRTT:       s.MinRTT,
		BufferBytes:  s.Buffer,
		LossRate:     s.Loss,
		Seed:         seed,
		RecordSeries: bucket > 0,
		SeriesBucket: bucket,
		Tracer:       runTracer,
	})
	flows := make([]*netem.Flow, len(mks))
	for i, mk := range mks {
		var start time.Duration
		if i < len(starts) {
			start = starts[i]
		}
		ctrl := mk(seed + int64(i)*101)
		attachTracer(ctrl, i)
		flows[i] = n.AddFlow(ctrl, start, 0)
	}
	n.Run(s.Duration)
	recordLink(n, s.Duration)
	out := make([]Metrics, len(flows))
	for i, f := range flows {
		out[i] = Observe(n, f, s.Duration)
	}
	return out
}

// Repeat runs the scenario rep times with distinct seeds and returns
// the per-run metrics.
func Repeat(s Scenario, mk Maker, reps int, seed int64) []Metrics {
	out := make([]Metrics, reps)
	for i := 0; i < reps; i++ {
		out[i] = RunFlow(s, mk, seed+int64(i)*977, 0)
	}
	return out
}

// fmtF formats a float with the given precision.
func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
