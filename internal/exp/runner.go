package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"libra/internal/cc"
	"libra/internal/cc/bbr"
	"libra/internal/cc/copa"
	"libra/internal/cc/cubic"
	"libra/internal/cc/indigo"
	"libra/internal/cc/orca"
	"libra/internal/cc/remy"
	"libra/internal/cc/reno"
	"libra/internal/cc/sprout"
	"libra/internal/cc/vegas"
	"libra/internal/cc/vivace"
	"libra/internal/core"
	"libra/internal/netem"
	"libra/internal/netem/faults"
	"libra/internal/rlcc"
	"libra/internal/sweep"
	"libra/internal/telemetry"
	"libra/internal/trace"
	"libra/internal/utility"
)

// Scenario is one emulated-network workload.
type Scenario struct {
	Name     string
	Capacity trace.Trace
	MinRTT   time.Duration
	Buffer   int
	Loss     float64
	Duration time.Duration
	// Faults composes adversarial link dynamics onto the bottleneck.
	// Nil falls back to the RunContext's plan (itself nil by default:
	// no faults).
	Faults *faults.Plan
	// Topo, when set, runs the scenario over a multi-hop topology
	// instead of the single bottleneck: the flows under test ride the
	// spec's main route, cross traffic is placed per the spec, and
	// Capacity/MinRTT/Buffer/Loss are ignored in favour of the per-link
	// parameters. Nil falls back to the RunContext's spec (itself nil
	// by default: single bottleneck).
	Topo *TopoSpec
	// Profiles labels flows with utility-profile names, index-aligned
	// with the makers passed to RunFlows ("" = unlabelled). Labelled
	// flows are stamped with a TypeProfile event at start, keying
	// per-profile time series and SLO attainment.
	Profiles []string
}

// WiredScenarios returns the paper's wired trace set (Fig. 1 uses
// 24/48/96 Mbps; Fig. 7 adds 12 Mbps), with 30 ms RTT and 150 KB buffer.
func WiredScenarios(d time.Duration, mbps ...float64) []Scenario {
	if len(mbps) == 0 {
		mbps = []float64{12, 24, 48, 96}
	}
	out := make([]Scenario, 0, len(mbps))
	for _, m := range mbps {
		out = append(out, Scenario{
			Name:     fmt.Sprintf("Wired-%gMbps", m),
			Capacity: trace.Constant(trace.Mbps(m)),
			MinRTT:   30 * time.Millisecond,
			Buffer:   150_000,
			Duration: d,
		})
	}
	return out
}

// LTEScenarios returns the synthetic cellular trace set (LTE#1..#3 plus
// the driving tour), 30 ms RTT, 150 KB buffer.
func LTEScenarios(d time.Duration, seed int64) []Scenario {
	mk := func(name string, tr trace.Trace) Scenario {
		return Scenario{Name: name, Capacity: tr, MinRTT: 30 * time.Millisecond,
			Buffer: 150_000, Duration: d}
	}
	return []Scenario{
		mk("LTE-stationary", trace.NewLTE(trace.LTEStationary, d, seed+1)),
		mk("LTE-walking", trace.NewLTE(trace.LTEWalking, d, seed+2)),
		mk("LTE-driving", trace.NewLTE(trace.LTEDriving, d, seed+3)),
		mk("LTE-tour", trace.NewDrivingTour(d, seed+4)),
	}
}

// Metrics summarises one flow's run.
type Metrics struct {
	Util     float64
	ThrMbps  float64
	DelayMs  float64
	LossRate float64
	// CPUFrac is controller compute-time divided by simulated time —
	// the overhead metric (Fig. 2c / Fig. 12).
	CPUFrac float64
	Flow    *netem.Flow
	// Net is the single-bottleneck network (nil for topology runs);
	// Topo is the multi-hop topology (nil for single-bottleneck runs).
	Net  *netem.Network
	Topo *netem.Topology
	Ctrl cc.Controller
	// Failed marks a run aborted by a controller panic or an invalid
	// configuration; Err carries the cause and every other field is
	// zero. The harness records the failure and keeps going instead of
	// taking the whole experiment down.
	Failed bool
	Err    error
}

// Maker constructs a fresh controller per flow.
type Maker func(seed int64) cc.Controller

// CCASet lists the controller names the harness can build.
var CCASet = []string{
	"cubic", "bbr", "reno", "vegas", "copa", "sprout", "vivace", "proteus",
	"remy", "indigo", "aurora", "orca", "mod-rl", "westwood", "illinois",
	"dctcp", "c-libra", "b-libra", "cl-libra", "w-libra", "i-libra", "d-libra",
}

// KnownCCAs returns every controller name MakerFor accepts: the
// harness set plus everything registered with the cc package, sorted
// and deduplicated.
func KnownCCAs() []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range append(append([]string{}, CCASet...), cc.Names()...) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// MakerFor builds a controller factory for name, wiring in the trained
// agents where the algorithm has a learning component. Libra variants
// accept a utility override via util (nil = paper default). Unknown
// names return an error listing every registered controller.
func MakerFor(name string, ag *AgentSet, util utility.Func) (Maker, error) {
	libra := func(seed int64, classic func(cc.Config) core.Classic, noClassic bool, nm string) cc.Controller {
		base := cc.Config{Seed: seed}.WithDefaults()
		rlCfg := rlcc.LibraRLConfig(base)
		if ag != nil {
			rlCfg.Agent = ag.LibraRL
			rlCfg.Norm = ag.LibraNorm
		}
		cfg := core.Config{
			CC:           base,
			RL:           rlcc.New("libra-rl", rlCfg),
			Util:         util,
			NoClassic:    noClassic,
			Name:         nm,
			RecordCycles: true,
		}
		if classic != nil {
			cfg.Classic = classic(base)
		}
		return core.New(cfg)
	}
	switch name {
	case "cubic":
		return func(seed int64) cc.Controller { return cubic.New(cc.Config{Seed: seed}) }, nil
	case "bbr":
		return func(seed int64) cc.Controller { return bbr.New(cc.Config{Seed: seed}) }, nil
	case "reno":
		return func(seed int64) cc.Controller { return reno.New(cc.Config{Seed: seed}) }, nil
	case "vegas":
		return func(seed int64) cc.Controller { return vegas.New(cc.Config{Seed: seed}) }, nil
	case "copa":
		return func(seed int64) cc.Controller { return copa.New(cc.Config{Seed: seed}) }, nil
	case "sprout":
		return func(seed int64) cc.Controller { return sprout.New(cc.Config{Seed: seed}) }, nil
	case "vivace":
		return func(seed int64) cc.Controller { return vivace.New(cc.Config{Seed: seed}) }, nil
	case "proteus":
		return func(seed int64) cc.Controller { return vivace.NewProteus(cc.Config{Seed: seed}) }, nil
	case "remy":
		return func(seed int64) cc.Controller { return remy.New(cc.Config{Seed: seed}) }, nil
	case "indigo":
		return func(seed int64) cc.Controller { return indigo.New(cc.Config{Seed: seed}) }, nil
	case "aurora":
		return func(seed int64) cc.Controller {
			cfg := rlcc.AuroraConfig(cc.Config{Seed: seed})
			if ag != nil {
				cfg.Agent = ag.Aurora
				cfg.Norm = ag.AuroraNorm
			}
			return rlcc.New("aurora", cfg)
		}, nil
	case "orca":
		return func(seed int64) cc.Controller {
			cfg := rlcc.OrcaRLConfig(cc.Config{Seed: seed})
			if ag != nil {
				cfg.Agent = ag.Orca
				cfg.Norm = ag.OrcaNorm
			}
			return orca.New(cfg)
		}, nil
	case "mod-rl":
		return func(seed int64) cc.Controller {
			base := cc.Config{Seed: seed}
			cfg := rlcc.LibraRLConfig(base)
			u := utility.Default()
			cfg.RewardFunc = u.Value
			if ag != nil {
				cfg.Agent = ag.ModRL
				cfg.Norm = ag.ModRLNorm
			}
			return rlcc.New("mod-rl", cfg)
		}, nil
	case "c-libra":
		return func(seed int64) cc.Controller {
			return libra(seed, func(b cc.Config) core.Classic { return core.NewCubicAdapter(b) }, false, "c-libra")
		}, nil
	case "b-libra":
		return func(seed int64) cc.Controller {
			return libra(seed, func(b cc.Config) core.Classic { return core.NewBBRAdapter(b) }, false, "b-libra")
		}, nil
	case "cl-libra":
		return func(seed int64) cc.Controller { return libra(seed, nil, true, "cl-libra") }, nil
	default:
		registered := false
		for _, n := range cc.Names() {
			if n == name {
				registered = true
				break
			}
		}
		if !registered {
			return nil, fmt.Errorf("exp: unknown controller %q (known: %s)",
				name, strings.Join(KnownCCAs(), ", "))
		}
		return func(seed int64) cc.Controller {
			ctrl, err := cc.New(name, cc.Config{Seed: seed})
			if err != nil {
				panic(err) // unreachable: name validated against the registry above
			}
			return ctrl
		}, nil
	}
}

// ccaUsesAgents reports whether the named controller consults the
// trained agent set; for anything else, resolving agents (and possibly
// triggering lazy training) would be pure waste.
func ccaUsesAgents(name string) bool {
	switch name {
	case "aurora", "orca", "mod-rl", "c-libra", "b-libra", "cl-libra":
		return true
	}
	return false
}

// mustMaker is MakerFor for statically known controller names (the
// experiment definitions); it panics on a name the registry rejects.
func mustMaker(name string, ag *AgentSet, util utility.Func) Maker {
	mk, err := MakerFor(name, ag, util)
	if err != nil {
		panic(err)
	}
	return mk
}

// faultsFor resolves the scenario's fault plan (falling back to the
// context's plan) into a bound-ready injector; nil means no faults.
func (rc *RunContext) faultsFor(s Scenario, seed int64) (netem.FaultInjector, error) {
	plan := s.Faults
	if plan == nil {
		plan = rc.FaultPlan
	}
	if plan.Empty() {
		return nil, nil
	}
	return faults.New(plan, seed)
}

// failedRun records one aborted flow run and returns its marker
// metrics.
func (rc *RunContext) failedRun(s Scenario, err error) Metrics {
	rc.Metrics.Counter("libra_flow_failures_total",
		"flow runs aborted by a controller panic or invalid configuration").Inc()
	return Metrics{Failed: true, Err: fmt.Errorf("scenario %s: %w", s.Name, err)}
}

// RunFlow drives one controller over a scenario, seeded by the
// context, and returns its metrics. When bucket > 0 the flow records
// time series at that width. Results are also summarised into
// rc.Metrics, and rc.Tracer is wired through the network and
// controller. A panic out of the controller (or an invalid fault
// plan) is contained: the run is recorded as failed
// (Metrics.Failed/Err) instead of unwinding the whole experiment.
func (rc *RunContext) RunFlow(s Scenario, mk Maker, bucket time.Duration) (m Metrics) {
	rc.WithDefaults()
	if ts := rc.topoFor(s); ts != nil {
		return rc.runTopoFlows(s, ts, []Maker{mk}, nil, bucket, []int64{rc.Seed})[0]
	}
	var n *netem.Network
	defer func() {
		if r := recover(); r != nil {
			// The anomaly marker reaches the flight recorder through the
			// ordinary (ordered) event stream, so the ring contents at
			// the moment of the crash are dumped deterministically.
			var t int64
			if n != nil {
				t = int64(n.Eng.Now())
			}
			rc.EmitAnomaly(t, 0, telemetry.AnomalyPanic)
			m = rc.failedRun(s, fmt.Errorf("panic: %v", r))
		}
	}()
	inj, err := rc.faultsFor(s, rc.Seed)
	if err != nil {
		return rc.failedRun(s, err)
	}
	n = netem.New(netem.Config{
		Capacity:     s.Capacity,
		MinRTT:       s.MinRTT,
		BufferBytes:  s.Buffer,
		LossRate:     s.Loss,
		Faults:       inj,
		Seed:         rc.Seed,
		RecordSeries: bucket > 0,
		SeriesBucket: bucket,
		Tracer:       rc.Tracer,
		Health:       rc.Health,
	})
	batcher := rc.newBatcher()
	ctrl := mk(rc.Seed)
	rc.EmitSpan(0, -1, "scenario:"+s.Name, true)
	rc.EmitSpan(0, 0, "flow:"+ctrl.Name(), true)
	rc.AttachTracer(ctrl, 0)
	rc.attachBatcher(batcher, ctrl, 0)
	if len(s.Profiles) > 0 {
		rc.EmitProfile(0, 0, s.Profiles[0])
	}
	f := n.AddFlow(ctrl, 0, 0)
	n.Run(s.Duration)
	rc.recordBatch(batcher)
	rc.EmitSpan(s.Duration.Nanoseconds(), 0, "flow:"+ctrl.Name(), false)
	rc.EmitSpan(s.Duration.Nanoseconds(), -1, "scenario:"+s.Name, false)
	rc.recordLink(n, s.Duration)
	return rc.Observe(n, f, s.Duration)
}

// RunFlows drives several controllers sharing one bottleneck;
// starts[i] delays flow i. Per-flow seeds are sub-derived from the
// context seed. Returns per-flow metrics. Like RunFlow, a panic marks
// every flow of the run failed rather than escaping.
func (rc *RunContext) RunFlows(s Scenario, mks []Maker, starts []time.Duration, bucket time.Duration) (out []Metrics) {
	rc.WithDefaults()
	if ts := rc.topoFor(s); ts != nil {
		return rc.runTopoFlows(s, ts, mks, starts, bucket, nil)
	}
	var n *netem.Network
	flows := make([]*netem.Flow, 0, len(mks))
	defer func() {
		if r := recover(); r != nil {
			var t int64
			if n != nil {
				t = int64(n.Eng.Now())
			}
			// Every flow of the shared bottleneck died with the panic;
			// trigger a flight dump for each ring that was being fed.
			for i := range flows {
				rc.EmitAnomaly(t, i, telemetry.AnomalyPanic)
			}
			if len(flows) == 0 {
				rc.EmitAnomaly(t, -1, telemetry.AnomalyPanic)
			}
			m := rc.failedRun(s, fmt.Errorf("panic: %v", r))
			out = make([]Metrics, len(mks))
			for i := range out {
				out[i] = m
			}
		}
	}()
	inj, err := rc.faultsFor(s, rc.Seed)
	if err != nil {
		m := rc.failedRun(s, err)
		out = make([]Metrics, len(mks))
		for i := range out {
			out[i] = m
		}
		return out
	}
	n = netem.New(netem.Config{
		Capacity:     s.Capacity,
		MinRTT:       s.MinRTT,
		BufferBytes:  s.Buffer,
		LossRate:     s.Loss,
		Faults:       inj,
		Seed:         rc.Seed,
		RecordSeries: bucket > 0,
		SeriesBucket: bucket,
		Tracer:       rc.Tracer,
		Health:       rc.Health,
	})
	rc.EmitSpan(0, -1, "scenario:"+s.Name, true)
	batcher := rc.newBatcher()
	names := make([]string, len(mks))
	for i, mk := range mks {
		var start time.Duration
		if i < len(starts) {
			start = starts[i]
		}
		ctrl := mk(sweep.SubSeed(rc.Seed, i))
		names[i] = ctrl.Name()
		rc.EmitSpan(0, i, "flow:"+names[i], true)
		rc.AttachTracer(ctrl, i)
		rc.attachBatcher(batcher, ctrl, i)
		if i < len(s.Profiles) {
			rc.EmitProfile(0, i, s.Profiles[i])
		}
		flows = append(flows, n.AddFlow(ctrl, start, 0))
	}
	n.Run(s.Duration)
	rc.recordBatch(batcher)
	for i := range flows {
		rc.EmitSpan(s.Duration.Nanoseconds(), i, "flow:"+names[i], false)
	}
	rc.EmitSpan(s.Duration.Nanoseconds(), -1, "scenario:"+s.Name, false)
	rc.recordLink(n, s.Duration)
	out = make([]Metrics, len(flows))
	for i, f := range flows {
		out[i] = rc.Observe(n, f, s.Duration)
	}
	return out
}

// Repeat runs the scenario reps times with sub-derived seeds — one
// Sweep job per repetition, so repetitions parallelise across
// rc.Workers — and returns the per-run metrics in repetition order. mk
// is invoked once per job with the job's context so agent-backed
// makers bind the job's private clone (see CCAMaker).
func (rc *RunContext) Repeat(s Scenario, mk func(*RunContext) Maker, reps int) []Metrics {
	return Sweep(rc, reps, func(jc *RunContext, _ int) Metrics {
		return jc.RunFlow(s, mk(jc), 0)
	})
}

// fmtF formats a float with the given precision.
func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
