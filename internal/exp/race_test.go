//go:build race

package exp

// raceEnabled reports whether the race detector is compiled in; the
// minutes-long whole-harness smoke skips under it (10x slowdown blows
// the default go test timeout) while every targeted test still runs.
const raceEnabled = true
