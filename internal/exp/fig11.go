package exp

import (
	"time"

	"libra/internal/trace"
	"libra/internal/utility"
)

func init() {
	Register(Experiment{
		ID:    "fig11",
		Title: "Flexibility: utility-weight variants tune the throughput/latency trade-off",
		Paper: "Th/La variants move Libra along the frontier; vs one CUBIC flow, C-Libra takes 48.4-74.1% and B-Libra 35.5-49.6% of bandwidth depending on weights",
		Run:   runFig11,
	})
}

// utilityVariants returns the Sec. 5.2 preference set.
func utilityVariants() []struct {
	Name string
	U    utility.Func
} {
	return []struct {
		Name string
		U    utility.Func
	}{
		{"Th-2", utility.Throughput2()},
		{"Th-1", utility.Throughput1()},
		{"Default", utility.Default()},
		{"La-1", utility.Latency1()},
		{"La-2", utility.Latency2()},
	}
}

func runFig11(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 40 * time.Second
	if rc.Quick {
		dur = 12 * time.Second
	}
	variants := utilityVariants()
	libras := []string{"c-libra", "b-libra"}

	single := func(name string, ss []Scenario) Table {
		tbl := Table{Name: name, Cols: []string{"variant", "util", "avg delay(ms)"}}
		// One job per (libra variant, utility, scenario) flow.
		ms := Sweep(rc, len(libras)*len(variants)*len(ss), func(jc *RunContext, i int) Metrics {
			li := i / (len(variants) * len(ss))
			vi := i / len(ss) % len(variants)
			return jc.RunFlow(ss[i%len(ss)], mustMaker(libras[li], jc.agents(), variants[vi].U), 0)
		})
		for li, lname := range libras {
			for vi, v := range variants {
				var u, d float64
				for si := range ss {
					m := ms[(li*len(variants)+vi)*len(ss)+si]
					u += m.Util
					d += m.DelayMs
				}
				n := float64(len(ss))
				tbl.AddRow(lname+"-"+v.Name, fmtF(u/n, 3), fmtF(d/n, 0))
			}
		}
		return tbl
	}

	wired := WiredScenarios(dur, 24, 48)
	cell := LTEScenarios(dur, rc.Seed)[:2]
	t1 := single("(a) single flow, wired", wired)
	t2 := single("(b) single flow, cellular", cell)

	// (c)/(d): one Libra flow vs one CUBIC flow — throughput share.
	compete := func(name string, s Scenario) Table {
		tbl := Table{Name: name, Cols: []string{"variant", "libra share", "avg delay(ms)"}}
		type res struct{ share, delay float64 }
		rs := Sweep(rc, len(libras)*len(variants), func(jc *RunContext, i int) res {
			li, vi := i/len(variants), i%len(variants)
			ms := jc.RunFlows(s,
				[]Maker{mustMaker(libras[li], jc.agents(), variants[vi].U), mustMaker("cubic", jc.agents(), nil)},
				[]time.Duration{0, 0}, 0)
			return res{share: ms[0].ThrMbps / (ms[0].ThrMbps + ms[1].ThrMbps), delay: ms[0].DelayMs}
		})
		for li, lname := range libras {
			for vi, v := range variants {
				r := rs[li*len(variants)+vi]
				tbl.AddRow(lname+"-"+v.Name, fmtF(r.share, 3), fmtF(r.delay, 0))
			}
		}
		return tbl
	}
	t3 := compete("(c) vs CUBIC, wired 48Mbps", Scenario{
		Capacity: trace.Constant(trace.Mbps(48)), MinRTT: 40 * time.Millisecond,
		Buffer: 240_000, Duration: dur,
	})
	t4 := compete("(d) vs CUBIC, cellular", Scenario{
		Capacity: trace.NewLTE(trace.LTEStationary, dur, rc.Seed+5),
		MinRTT:   30 * time.Millisecond, Buffer: 150_000, Duration: dur,
	})

	return &Report{ID: "fig11", Title: "Flexibility via utility weights",
		Tables: []Table{t1, t2, t3, t4},
		Notes:  []string{"0.5 share = fair split vs CUBIC; Th variants should sit above La variants"}}
}
