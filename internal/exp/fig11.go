package exp

import (
	"time"

	"libra/internal/trace"
	"libra/internal/utility"
)

func init() {
	Register(Experiment{
		ID:    "fig11",
		Title: "Flexibility: utility-weight variants tune the throughput/latency trade-off",
		Paper: "Th/La variants move Libra along the frontier; vs one CUBIC flow, C-Libra takes 48.4-74.1% and B-Libra 35.5-49.6% of bandwidth depending on weights",
		Run:   runFig11,
	})
}

// utilityVariants returns the Sec. 5.2 preference set.
func utilityVariants() []struct {
	Name string
	U    utility.Func
} {
	return []struct {
		Name string
		U    utility.Func
	}{
		{"Th-2", utility.Throughput2()},
		{"Th-1", utility.Throughput1()},
		{"Default", utility.Default()},
		{"La-1", utility.Latency1()},
		{"La-2", utility.Latency2()},
	}
}

func runFig11(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 40 * time.Second
	if cfg.Quick {
		dur = 12 * time.Second
	}
	ag := cfg.agents()
	variants := utilityVariants()

	single := func(name string, libras []string, ss []Scenario) Table {
		tbl := Table{Name: name, Cols: []string{"variant", "util", "avg delay(ms)"}}
		for _, lname := range libras {
			for _, v := range variants {
				mk := mustMaker(lname, ag, v.U)
				var u, d float64
				for si, s := range ss {
					m := RunFlow(s, mk, cfg.Seed+int64(si)*41, 0)
					u += m.Util
					d += m.DelayMs
				}
				n := float64(len(ss))
				tbl.AddRow(lname+"-"+v.Name, fmtF(u/n, 3), fmtF(d/n, 0))
			}
		}
		return tbl
	}

	wired := WiredScenarios(dur, 24, 48)
	cell := LTEScenarios(dur, cfg.Seed)[:2]
	t1 := single("(a) single flow, wired", []string{"c-libra", "b-libra"}, wired)
	t2 := single("(b) single flow, cellular", []string{"c-libra", "b-libra"}, cell)

	// (c)/(d): one Libra flow vs one CUBIC flow — throughput share.
	compete := func(name string, s Scenario) Table {
		tbl := Table{Name: name, Cols: []string{"variant", "libra share", "avg delay(ms)"}}
		for _, lname := range []string{"c-libra", "b-libra"} {
			for _, v := range variants {
				ms := RunFlows(s, []Maker{mustMaker(lname, ag, v.U), mustMaker("cubic", ag, nil)},
					[]time.Duration{0, 0}, cfg.Seed, 0)
				share := ms[0].ThrMbps / (ms[0].ThrMbps + ms[1].ThrMbps)
				tbl.AddRow(lname+"-"+v.Name, fmtF(share, 3), fmtF(ms[0].DelayMs, 0))
			}
		}
		return tbl
	}
	t3 := compete("(c) vs CUBIC, wired 48Mbps", Scenario{
		Capacity: trace.Constant(trace.Mbps(48)), MinRTT: 40 * time.Millisecond,
		Buffer: 240_000, Duration: dur,
	})
	t4 := compete("(d) vs CUBIC, cellular", Scenario{
		Capacity: trace.NewLTE(trace.LTEStationary, dur, cfg.Seed+5),
		MinRTT:   30 * time.Millisecond, Buffer: 150_000, Duration: dur,
	})

	return &Report{ID: "fig11", Title: "Flexibility via utility weights",
		Tables: []Table{t1, t2, t3, t4},
		Notes:  []string{"0.5 share = fair split vs CUBIC; Th variants should sit above La variants"}}
}
