package exp

import (
	"time"

	"libra/internal/stats"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "fig12",
		Title: "CPU overhead across sending rates (10-200 Mbps)",
		Paper: "Libra's overhead tracks its kernel classics; avg reductions of 47%/54%/59%/79%/84%/92% vs Orca/CL-Libra/Mod-RL/Indigo/Copa/Proteus",
		Run:   runFig12,
	})
	Register(Experiment{
		ID:    "fig13",
		Title: "Inter-protocol fairness: CCA under test vs one CUBIC flow",
		Paper: "C/B-Libra reach >98% Jain index vs CUBIC; Aurora/Proteus/Mod-RL starve or are starved",
		Run:   runFig13,
	})
	Register(Experiment{
		ID:    "fig14",
		Title: "Intra-protocol fairness: two same-CCA flows",
		Paper: "Libra ~99% Jain index; pure learning-based CCAs split unevenly",
		Run:   runFig14,
	})
}

func runFig12(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 30 * time.Second
	if rc.Quick {
		dur = 8 * time.Second
	}
	rates := []float64{10, 20, 30, 50, 100, 200}
	ccas := []string{"cubic", "bbr", "c-libra", "b-libra", "orca", "indigo", "copa", "proteus", "cl-libra", "mod-rl"}

	fracs := Sweep(rc, len(ccas)*len(rates), func(jc *RunContext, i int) float64 {
		r := rates[i%len(rates)]
		s := Scenario{
			Capacity: trace.Constant(trace.Mbps(r)),
			MinRTT:   40 * time.Millisecond,
			Buffer:   int(trace.Mbps(r) * 0.04),
			Duration: dur,
		}
		return jc.RunFlow(s, mustMaker(ccas[i/len(rates)], jc.agents(), nil), 0).CPUFrac
	})

	tbl := Table{Name: "controller compute fraction (x1e-6 of sim time)",
		Cols: append([]string{"cca"}, rateNames(rates)...)}
	avg := Table{Name: "average compute fraction and reduction vs worst",
		Cols: []string{"cca", "avg(x1e-6)", "vs max"}}
	sums := make([]float64, len(ccas))
	var worst float64
	for ci, name := range ccas {
		row := []string{name}
		for ri := range rates {
			f := fracs[ci*len(rates)+ri]
			row = append(row, fmtF(f*1e6, 1))
			sums[ci] += f
		}
		tbl.Rows = append(tbl.Rows, row)
		if sums[ci] > worst {
			worst = sums[ci]
		}
	}
	for ci, name := range ccas {
		mean := sums[ci] / float64(len(rates))
		avg.AddRow(name, fmtF(mean*1e6, 1), fmtF(1-sums[ci]/worst, 2))
	}
	return &Report{ID: "fig12", Title: "Overhead vs sending rate", Tables: []Table{tbl, avg}}
}

func rateNames(rs []float64) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = fmtF(r, 0) + "Mbps"
	}
	return out
}

// fairnessScenario is the Sec. 5.3 setup: 48 Mbps, 100 ms RTT, 1 BDP.
func fairnessScenario(d time.Duration) Scenario {
	capacity := trace.Mbps(48)
	return Scenario{
		Capacity: trace.Constant(capacity),
		MinRTT:   100 * time.Millisecond,
		Buffer:   int(capacity * 0.1),
		Duration: d,
	}
}

func runFig13(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 60 * time.Second
	if rc.Quick {
		dur = 20 * time.Second
	}
	ccas := []string{"cubic", "bbr", "copa", "aurora", "proteus", "orca", "mod-rl", "c-libra", "b-libra"}
	s := fairnessScenario(dur)

	pairs := Sweep(rc, len(ccas), func(jc *RunContext, i int) []Metrics {
		return jc.RunFlows(s, []Maker{mustMaker(ccas[i], jc.agents(), nil), mustMaker("cubic", jc.agents(), nil)},
			[]time.Duration{0, 0}, 0)
	})
	tbl := Table{Name: "CCA-under-test vs CUBIC", Cols: []string{"cca", "test share", "cubic share", "jain"}}
	for i, name := range ccas {
		ms := pairs[i]
		tot := ms[0].ThrMbps + ms[1].ThrMbps
		j := stats.JainIndex([]float64{ms[0].ThrMbps, ms[1].ThrMbps})
		tbl.AddRow(name, fmtF(ms[0].ThrMbps/tot, 3), fmtF(ms[1].ThrMbps/tot, 3), fmtF(j, 3))
	}
	return &Report{ID: "fig13", Title: "Inter-protocol fairness", Tables: []Table{tbl}}
}

func runFig14(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 60 * time.Second
	if rc.Quick {
		dur = 20 * time.Second
	}
	ccas := []string{"cubic", "bbr", "copa", "aurora", "proteus", "orca", "mod-rl", "c-libra", "b-libra"}
	s := fairnessScenario(dur)

	pairs := Sweep(rc, len(ccas), func(jc *RunContext, i int) []Metrics {
		return jc.RunFlows(s, []Maker{mustMaker(ccas[i], jc.agents(), nil), mustMaker(ccas[i], jc.agents(), nil)},
			[]time.Duration{0, 0}, 0)
	})
	tbl := Table{Name: "two same-CCA flows", Cols: []string{"cca", "flow1 share", "flow2 share", "jain"}}
	for i, name := range ccas {
		ms := pairs[i]
		tot := ms[0].ThrMbps + ms[1].ThrMbps
		j := stats.JainIndex([]float64{ms[0].ThrMbps, ms[1].ThrMbps})
		tbl.AddRow(name, fmtF(ms[0].ThrMbps/tot, 3), fmtF(ms[1].ThrMbps/tot, 3), fmtF(j, 3))
	}
	return &Report{ID: "fig14", Title: "Intra-protocol fairness", Tables: []Table{tbl}}
}
