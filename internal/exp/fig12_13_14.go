package exp

import (
	"time"

	"libra/internal/stats"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "fig12",
		Title: "CPU overhead across sending rates (10-200 Mbps)",
		Paper: "Libra's overhead tracks its kernel classics; avg reductions of 47%/54%/59%/79%/84%/92% vs Orca/CL-Libra/Mod-RL/Indigo/Copa/Proteus",
		Run:   runFig12,
	})
	Register(Experiment{
		ID:    "fig13",
		Title: "Inter-protocol fairness: CCA under test vs one CUBIC flow",
		Paper: "C/B-Libra reach >98% Jain index vs CUBIC; Aurora/Proteus/Mod-RL starve or are starved",
		Run:   runFig13,
	})
	Register(Experiment{
		ID:    "fig14",
		Title: "Intra-protocol fairness: two same-CCA flows",
		Paper: "Libra ~99% Jain index; pure learning-based CCAs split unevenly",
		Run:   runFig14,
	})
}

func runFig12(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 30 * time.Second
	if cfg.Quick {
		dur = 8 * time.Second
	}
	rates := []float64{10, 20, 30, 50, 100, 200}
	ccas := []string{"cubic", "bbr", "c-libra", "b-libra", "orca", "indigo", "copa", "proteus", "cl-libra", "mod-rl"}
	ag := cfg.agents()

	tbl := Table{Name: "controller compute fraction (x1e-6 of sim time)",
		Cols: append([]string{"cca"}, rateNames(rates)...)}
	avg := Table{Name: "average compute fraction and reduction vs worst",
		Cols: []string{"cca", "avg(x1e-6)", "vs max"}}
	sums := map[string]float64{}
	var worst float64
	rows := map[string][]string{}
	for _, name := range ccas {
		mk := mustMaker(name, ag, nil)
		row := []string{name}
		for ri, r := range rates {
			s := Scenario{
				Capacity: trace.Constant(trace.Mbps(r)),
				MinRTT:   40 * time.Millisecond,
				Buffer:   int(trace.Mbps(r) * 0.04),
				Duration: dur,
			}
			m := RunFlow(s, mk, cfg.Seed+int64(ri)*3, 0)
			row = append(row, fmtF(m.CPUFrac*1e6, 1))
			sums[name] += m.CPUFrac
		}
		rows[name] = row
		if sums[name] > worst {
			worst = sums[name]
		}
	}
	for _, name := range ccas {
		tbl.Rows = append(tbl.Rows, rows[name])
		mean := sums[name] / float64(len(rates))
		avg.AddRow(name, fmtF(mean*1e6, 1), fmtF(1-sums[name]/worst, 2))
	}
	return &Report{ID: "fig12", Title: "Overhead vs sending rate", Tables: []Table{tbl, avg}}
}

func rateNames(rs []float64) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = fmtF(r, 0) + "Mbps"
	}
	return out
}

// fairnessScenario is the Sec. 5.3 setup: 48 Mbps, 100 ms RTT, 1 BDP.
func fairnessScenario(d time.Duration) Scenario {
	capacity := trace.Mbps(48)
	return Scenario{
		Capacity: trace.Constant(capacity),
		MinRTT:   100 * time.Millisecond,
		Buffer:   int(capacity * 0.1),
		Duration: d,
	}
}

func runFig13(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 60 * time.Second
	if cfg.Quick {
		dur = 20 * time.Second
	}
	ccas := []string{"cubic", "bbr", "copa", "aurora", "proteus", "orca", "mod-rl", "c-libra", "b-libra"}
	ag := cfg.agents()
	s := fairnessScenario(dur)

	tbl := Table{Name: "CCA-under-test vs CUBIC", Cols: []string{"cca", "test share", "cubic share", "jain"}}
	for _, name := range ccas {
		ms := RunFlows(s, []Maker{mustMaker(name, ag, nil), mustMaker("cubic", ag, nil)},
			[]time.Duration{0, 0}, cfg.Seed, 0)
		tot := ms[0].ThrMbps + ms[1].ThrMbps
		j := stats.JainIndex([]float64{ms[0].ThrMbps, ms[1].ThrMbps})
		tbl.AddRow(name, fmtF(ms[0].ThrMbps/tot, 3), fmtF(ms[1].ThrMbps/tot, 3), fmtF(j, 3))
	}
	return &Report{ID: "fig13", Title: "Inter-protocol fairness", Tables: []Table{tbl}}
}

func runFig14(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 60 * time.Second
	if cfg.Quick {
		dur = 20 * time.Second
	}
	ccas := []string{"cubic", "bbr", "copa", "aurora", "proteus", "orca", "mod-rl", "c-libra", "b-libra"}
	ag := cfg.agents()
	s := fairnessScenario(dur)

	tbl := Table{Name: "two same-CCA flows", Cols: []string{"cca", "flow1 share", "flow2 share", "jain"}}
	for _, name := range ccas {
		ms := RunFlows(s, []Maker{mustMaker(name, ag, nil), mustMaker(name, ag, nil)},
			[]time.Duration{0, 0}, cfg.Seed, 0)
		tot := ms[0].ThrMbps + ms[1].ThrMbps
		j := stats.JainIndex([]float64{ms[0].ThrMbps, ms[1].ThrMbps})
		tbl.AddRow(name, fmtF(ms[0].ThrMbps/tot, 3), fmtF(ms[1].ThrMbps/tot, 3), fmtF(j, 3))
	}
	return &Report{ID: "fig14", Title: "Intra-protocol fairness", Tables: []Table{tbl}}
}
