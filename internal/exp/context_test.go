package exp

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"libra/internal/rlcc"
	"libra/internal/telemetry"
)

// fakeTrain installs a counting train seam that returns distinct empty
// agent sets, so cache behaviour is observable without real training.
func fakeTrain(calls *[]int64) func(int64) *AgentSet {
	return func(seed int64) *AgentSet {
		*calls = append(*calls, seed)
		return &AgentSet{}
	}
}

// Regression for the old sync.Once lazy-agent bug: the first caller's
// seed trained the one shared set and every later run silently reused
// it. Lazy sets are now cached per seed.
func TestLazyAgentsCachedPerSeed(t *testing.T) {
	var calls []int64
	rc5 := &RunContext{Seed: 5, train: fakeTrain(&calls)}
	rc5.WithDefaults()
	a5 := rc5.agents()

	// A second context with a different seed but the shared cache (as
	// Sweep children and repeated harness entries have) must train its
	// own set, not reuse seed 5's.
	rc9 := &RunContext{Seed: 9, cache: rc5.cache, train: rc5.train}
	a9 := rc9.agents()
	if a5 == a9 {
		t.Fatal("different seeds shared one lazily-trained agent set")
	}
	if len(calls) != 2 || calls[0] != 5 || calls[1] != 9 {
		t.Fatalf("train calls = %v, want [5 9]", calls)
	}

	// Same seed again: cache hit, no retraining.
	rc5b := &RunContext{Seed: 5, cache: rc5.cache, train: rc5.train}
	if rc5b.agents() != a5 {
		t.Fatal("seed-5 cache miss on second lookup")
	}
	if rc5.agents() != a5 {
		t.Fatal("agents() not stable on one context")
	}
	if len(calls) != 2 {
		t.Fatalf("train ran %d times, want 2", len(calls))
	}
}

func tinyAgents(t *testing.T) *AgentSet {
	t.Helper()
	return TrainAgentSet(TrainSpec{Seed: 1, Episodes: 2, EpisodeLen: 2 * time.Second,
		Env: rlcc.LaptopEnvRange()})
}

// Sweep jobs must work on private agent clones: learning CCAs mutate
// normaliser statistics and draw from the policy RNG at inference, so
// sharing the parent's set across concurrent jobs would race.
func TestSweepJobsCloneAgents(t *testing.T) {
	base := tinyAgents(t)
	rc := NewRunContext(1)
	rc.Agents = base

	sets := Sweep(rc, 3, func(jc *RunContext, i int) *AgentSet {
		a := jc.agents()
		if a2 := jc.agents(); a2 != a {
			t.Error("job agent set not cached within the job")
		}
		return a
	})
	seen := map[*AgentSet]bool{base: true}
	for i, a := range sets {
		if a == nil || a.LibraRL == nil || a.LibraNorm == nil {
			t.Fatalf("job %d: clone lost agents: %+v", i, a)
		}
		if seen[a] {
			t.Fatalf("job %d shares an agent set with another job or the parent", i)
		}
		seen[a] = true
		if a.LibraRL == base.LibraRL || a.LibraNorm == base.LibraNorm {
			t.Fatalf("job %d: clone aliases parent policy state", i)
		}
		// The clone must still compute the same policy outputs.
		obs := make([]float64, 20)
		if got, want := a.LibraRL.Policy.Mean(obs)[0], base.LibraRL.Policy.Mean(obs)[0]; got != want {
			t.Fatalf("job %d: cloned policy diverges: %v vs %v", i, got, want)
		}
	}
}

// Reseed repoints a context at an explicit seed and must drop the
// cached per-job agent clone (it was cloned for the old seed). The lab
// leans on this: every candidate in a sweep batch evaluates at its own
// recorded seed, so results depend on the scenario, not the job index.
func TestReseedDropsJobAgentClone(t *testing.T) {
	base := tinyAgents(t)
	rc := NewRunContext(1)
	rc.Agents = base

	Sweep(rc, 1, func(jc *RunContext, i int) struct{} {
		a := jc.agents()
		jc.Reseed(77)
		if jc.Seed != 77 {
			t.Errorf("Reseed left Seed = %d", jc.Seed)
		}
		if b := jc.agents(); b == a {
			t.Error("Reseed kept the old seed's agent clone")
		}
		return struct{}{}
	})

	// Jobs reseeded to one shared seed must produce identical runs
	// regardless of their position in the batch.
	s := WiredScenarios(2*time.Second, 12)[0]
	ms := Sweep(rc, 3, func(jc *RunContext, i int) Metrics {
		jc.Reseed(77)
		return jc.RunFlow(s, mustMaker("cubic", nil, nil), 0)
	})
	for i := 1; i < len(ms); i++ {
		if ms[i].Util != ms[0].Util || ms[i].ThrMbps != ms[0].ThrMbps {
			t.Fatalf("job %d diverged from job 0 at shared seed: %+v vs %+v", i, ms[i], ms[0])
		}
	}
}

// miniSuite is a small classic-CCA grid used by the determinism tests:
// every output is simulation-derived (no wall-clock CPU numbers).
func miniSuite(workers int, seed int64, tracer telemetry.Tracer) (string, telemetry.Snapshot) {
	rc := NewRunContext(seed)
	rc.Workers = workers
	rc.Tracer = tracer
	ccas := []string{"cubic", "bbr", "reno", "vegas"}
	s := WiredScenarios(2*time.Second, 12)[0]
	const reps = 2
	ms := Sweep(rc, len(ccas)*reps, func(jc *RunContext, i int) Metrics {
		return jc.RunFlow(s, mustMaker(ccas[i/reps], nil, nil), 0)
	})
	tbl := Table{Name: "mini", Cols: []string{"cca", "rep", "util", "thr", "delay", "loss"}}
	for i, m := range ms {
		tbl.AddRow(ccas[i/reps], fmtF(float64(i%reps), 0),
			fmtF(m.Util, 4), fmtF(m.ThrMbps, 3), fmtF(m.DelayMs, 2), fmtF(m.LossRate, 5))
	}
	rep := Report{ID: "mini", Title: "determinism suite", Tables: []Table{tbl}}
	return rep.String(), rc.Metrics.Snapshot()
}

// stripWallClock removes the one inherently wall-clock-derived metric
// (controller compute time) from a snapshot before comparison.
func stripWallClock(s telemetry.Snapshot) telemetry.Snapshot {
	delete(s.Histograms, "libra_flow_cpu_frac")
	return s
}

// The tentpole guarantee: identical rendered report, merged metrics
// snapshot, and telemetry event stream at any worker count.
func TestSweepEquivalentAcrossWorkerCounts(t *testing.T) {
	var refTrace bytes.Buffer
	refRec := telemetry.NewRecorder(&refTrace)
	refRep, refSnap := miniSuite(1, 7, refRec)
	if err := refRec.Close(); err != nil {
		t.Fatal(err)
	}
	refSnap = stripWallClock(refSnap)
	if refSnap.Counters["libra_flows_total"] != 8 {
		t.Fatalf("suite recorded %d flows, want 8", refSnap.Counters["libra_flows_total"])
	}

	for _, workers := range []int{4, 8} {
		var tr bytes.Buffer
		rec := telemetry.NewRecorder(&tr)
		rep, snap := miniSuite(workers, 7, rec)
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		if rep != refRep {
			t.Errorf("workers=%d: rendered report differs from serial run\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, refRep, rep)
		}
		if !reflect.DeepEqual(stripWallClock(snap), refSnap) {
			t.Errorf("workers=%d: merged metrics snapshot differs from serial run", workers)
		}
		if tr.String() != refTrace.String() {
			t.Errorf("workers=%d: telemetry event stream differs from serial run (%d vs %d bytes)",
				workers, tr.Len(), refTrace.Len())
		}
	}
}

// Two identical invocations must render byte-identical reports (no map
// iteration order leaking into tables).
func TestReportByteDeterminismAcrossRuns(t *testing.T) {
	a, _ := miniSuite(4, 3, nil)
	b, _ := miniSuite(4, 3, nil)
	if a != b {
		t.Fatalf("two identical runs rendered different reports:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// The learning path stays deterministic too: cloned agents are reseeded
// from the job seed, so RL-backed runs give the same results at any
// worker count.
func TestSweepRLPathEquivalence(t *testing.T) {
	agents := tinyAgents(t)
	run := func(workers int) []float64 {
		rc := NewRunContext(11)
		rc.Workers = workers
		rc.Agents = agents
		s := WiredScenarios(2*time.Second, 12)[0]
		return Sweep(rc, 4, func(jc *RunContext, i int) float64 {
			return jc.RunFlow(s, mustMaker("c-libra", jc.agents(), nil), 0).ThrMbps
		})
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("RL-backed sweep differs: serial %v vs parallel %v", serial, parallel)
	}
}

// Repeat is Sweep-backed: per-rep results must be independent of worker
// count and reps must not all collapse onto one seed.
func TestRepeatParallelEquivalence(t *testing.T) {
	s := WiredScenarios(2*time.Second, 12)[0]
	run := func(workers int) []Metrics {
		rc := NewRunContext(2)
		rc.Workers = workers
		return rc.Repeat(s, CCAMaker("cubic", nil), 3)
	}
	a, b := run(1), run(4)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("rep counts %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].ThrMbps != b[i].ThrMbps || a[i].Util != b[i].Util {
			t.Fatalf("rep %d differs across worker counts: %+v vs %+v", i, a[i], b[i])
		}
	}
}
