package exp

import (
	"testing"

	"libra/internal/cc"
	"libra/internal/cc/cubic"
	"libra/internal/rl"
	"libra/internal/rlcc"
)

// AgentSet.MemBytes counts each distinct agent and normaliser exactly
// once, however many slots alias it; nil sets and slots cost nothing.
func TestAgentSetMemBytesDedup(t *testing.T) {
	p := rl.NewPPO(1, 20, 1, rl.Config{})
	q := rl.NewPPO(2, 20, 1, rl.Config{})
	n := rl.NewRunningNorm(4)
	a := &AgentSet{LibraRL: p, Orca: p, Aurora: q, LibraNorm: n, OrcaNorm: n}
	want := p.MemBytes() + q.MemBytes() + n.MemBytes()
	if got := a.MemBytes(); got != want {
		t.Fatalf("MemBytes = %d, want %d (shared slots double-counted?)", got, want)
	}
	var nilSet *AgentSet
	if nilSet.MemBytes() != 0 {
		t.Fatal("nil set must report 0 bytes")
	}
	if (&AgentSet{}).MemBytes() != 0 {
		t.Fatal("empty set must report 0 bytes")
	}
}

// Two controllers on one shared agent: summing their MemBytes counts
// the model twice, while the AgentSet-level total plus per-flow
// residuals counts it once. The difference must be exactly one agent.
func TestSharedAgentMemAccounting(t *testing.T) {
	base := rlcc.AuroraConfig(cc.Config{Seed: 1}).WithDefaults()
	shared := rl.NewPPO(9, base.ObsDim(), 1, base.PPO)
	mk := func(seed int64) *rlcc.Controller {
		cfg := base
		cfg.Seed = seed
		cfg.Agent = shared
		return rlcc.New("aurora", cfg)
	}
	c1, c2 := mk(1), mk(2)
	naive := controllerMemBytes(c1) + controllerMemBytes(c2)
	honest := shared.MemBytes() + ControllerOwnMemBytes(c1) + ControllerOwnMemBytes(c2)
	if naive != honest+shared.MemBytes() {
		t.Fatalf("naive sum %d, honest %d: difference should be exactly one agent (%d)",
			naive, honest, shared.MemBytes())
	}
	if ControllerOwnMemBytes(c1) >= controllerMemBytes(c1) {
		t.Fatal("residual should be smaller than the full estimate")
	}

	// A controller that owns its agent outright reports its full
	// estimate either way, and classic CCAs fall back to the name table.
	solo := rlcc.New("aurora", rlcc.AuroraConfig(cc.Config{Seed: 3}).WithDefaults())
	if ControllerOwnMemBytes(solo) != controllerMemBytes(solo) {
		t.Fatal("owned agent must not be stripped from the estimate")
	}
	cu := cubic.New(cc.Config{Seed: 4})
	if ControllerOwnMemBytes(cu) != controllerMemBytes(cu) {
		t.Fatal("classic CCA accounting changed")
	}
}
