package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"libra/internal/telemetry"
	"libra/internal/trace"
)

// TestRunFlowRecordsMetrics: driving one flow through the runner must
// populate the context's registry with flow histograms, link counters,
// and — for Libra — cycle telemetry, and the snapshot must export as
// both JSON and Prometheus text.
func TestRunFlowRecordsMetrics(t *testing.T) {
	rc := NewRunContext(1)

	s := Scenario{
		Name:     "reg-smoke",
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   30 * time.Millisecond,
		Buffer:   150_000,
		Duration: 5 * time.Second,
	}
	m := rc.RunFlow(s, mustMaker("c-libra", nil, nil), 0)
	if m.ThrMbps <= 0 {
		t.Fatalf("run produced no throughput: %+v", m)
	}

	reg := rc.Metrics
	snap := reg.Snapshot()
	if got := snap.Counters["libra_flows_total"]; got != 1 {
		t.Errorf("libra_flows_total = %d, want 1", got)
	}
	if snap.Counters["libra_cycles_total"] == 0 {
		t.Error("libra_cycles_total not recorded for a c-libra run")
	}
	if snap.Counters["libra_link_delivered_bytes_total"] == 0 {
		t.Error("libra_link_delivered_bytes_total not recorded")
	}
	rtt, ok := snap.Histograms["libra_flow_rtt_ms"]
	if !ok || rtt.Count != 1 {
		t.Errorf("libra_flow_rtt_ms histogram missing or wrong count: %+v", rtt)
	}
	if _, ok := snap.Gauges["libra_link_utilization"]; !ok {
		t.Error("libra_link_utilization gauge missing")
	}

	var js, prom bytes.Buffer
	if err := reg.WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, want := range []string{"libra_flows_total 1", "libra_cycle_wins_total{cand="} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestRunnerWiresTracer: a tracer installed on the RunContext must see
// both controller-side and link-side events from a runner-driven flow.
func TestRunnerWiresTracer(t *testing.T) {
	var buf bytes.Buffer
	rec := telemetry.NewRecorder(&buf)
	rc := NewRunContext(1)
	rc.Tracer = rec

	s := Scenario{
		Name:     "trace-smoke",
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   30 * time.Millisecond,
		Buffer:   150_000,
		Duration: 3 * time.Second,
	}
	rc.RunFlow(s, mustMaker("c-libra", nil, nil), 0)
	if err := rec.Close(); err != nil {
		t.Fatalf("recorder close: %v", err)
	}
	evs, err := telemetry.ReadAll(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	kinds := map[telemetry.Type]bool{}
	for i := range evs {
		kinds[evs[i].Type] = true
	}
	for _, want := range []telemetry.Type{telemetry.TypeStage, telemetry.TypeEnqueue, telemetry.TypeQueue} {
		if !kinds[want] {
			t.Errorf("runner trace missing %q events", want)
		}
	}
}
