package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"libra/internal/netem"
	"libra/internal/netem/faults"
	"libra/internal/sweep"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

// TopoLink is one directed edge of a TopoSpec. CapMbps/DipFrac/PeriodS
// shape the capacity trace exactly like a lab Spec's bottleneck:
// capacity oscillates between CapMbps and CapMbps*DipFrac with the
// given period (DipFrac 1 or PeriodS 0 means constant rate).
type TopoLink struct {
	Label   string  `json:"label"`
	From    string  `json:"from"`
	To      string  `json:"to"`
	CapMbps float64 `json:"cap_mbps"`
	DipFrac float64 `json:"dip_frac,omitempty"`
	PeriodS float64 `json:"period_s,omitempty"`
	// DelayMs is the one-way propagation delay in milliseconds.
	DelayMs float64 `json:"delay_ms,omitempty"`
	// Buffer is the droptail queue limit in bytes (default 150 KB).
	Buffer int `json:"buffer,omitempty"`
	// Loss is the iid stochastic drop probability at ingress.
	Loss float64 `json:"loss,omitempty"`
	// ECN, when positive, CE-marks packets enqueued over this many
	// queued bytes; CoDel enables the AQM at dequeue.
	ECN   int  `json:"ecn,omitempty"`
	CoDel bool `json:"codel,omitempty"`
	// Faults composes adversarial dynamics onto this link only; each
	// link binds its own injector with a label-derived seed.
	Faults *faults.Plan `json:"faults,omitempty"`
}

// TopoRoute is an ordered walk over link labels, shared by any number
// of flows. AckDelayMs 0 means symmetric: the sum of the forward
// links' propagation delays.
type TopoRoute struct {
	Name       string   `json:"name"`
	Links      []string `json:"links"`
	AckDelayMs float64  `json:"ack_delay_ms,omitempty"`
}

// CrossFlow places competing traffic on a route of the topology.
type CrossFlow struct {
	Route string `json:"route"`
	// CCA names the controller (default cubic).
	CCA string `json:"cca,omitempty"`
	// Count is the number of identical flows (default 1).
	Count int `json:"count,omitempty"`
	// StartS delays the flows' start (seconds).
	StartS float64 `json:"start_s,omitempty"`
	// RateMbps, when positive, makes the flows application-limited at
	// that offered load instead of backlogged.
	RateMbps float64 `json:"rate_mbps,omitempty"`
}

// TopoSpec is a serializable multi-hop topology: nodes, links, routes,
// the main route the flows under test ride, and cross-traffic
// placement. It is the experiment-layer mirror of
// netem.TopologyConfig, loadable from presets or JSON files
// (libra-sim/-bench -topo).
type TopoSpec struct {
	Name   string      `json:"name,omitempty"`
	Nodes  []string    `json:"nodes"`
	Links  []TopoLink  `json:"links"`
	Routes []TopoRoute `json:"routes"`
	// Main names the route the controllers under test are placed on.
	Main  string      `json:"main"`
	Cross []CrossFlow `json:"cross,omitempty"`
}

// Validate rejects specs Build could not materialise: unknown or
// duplicate nodes, links with no/zero capacity or undeclared
// endpoints, routes over unknown/disconnected/revisited links, a Main
// that names no route, and cross flows on unknown routes or with
// unknown controllers.
func (ts *TopoSpec) Validate() error {
	if len(ts.Nodes) == 0 {
		return fmt.Errorf("topo: no nodes")
	}
	nodes := make(map[string]bool, len(ts.Nodes))
	for _, n := range ts.Nodes {
		if n == "" {
			return fmt.Errorf("topo: empty node name")
		}
		if nodes[n] {
			return fmt.Errorf("topo: duplicate node %q", n)
		}
		nodes[n] = true
	}
	if len(ts.Links) == 0 {
		return fmt.Errorf("topo: no links")
	}
	links := make(map[string]*TopoLink, len(ts.Links))
	for i := range ts.Links {
		l := &ts.Links[i]
		if l.Label == "" {
			return fmt.Errorf("topo: link %d has no label", i)
		}
		if links[l.Label] != nil {
			return fmt.Errorf("topo: duplicate link label %q", l.Label)
		}
		if !nodes[l.From] || !nodes[l.To] {
			return fmt.Errorf("topo: link %q joins unknown node (%s -> %s)", l.Label, l.From, l.To)
		}
		if l.From == l.To {
			return fmt.Errorf("topo: link %q is a self-loop at %s", l.Label, l.From)
		}
		if !(l.CapMbps > 0) {
			return fmt.Errorf("topo: link %q has zero capacity", l.Label)
		}
		if l.DipFrac != 0 && !(l.DipFrac > 0 && l.DipFrac <= 1) {
			return fmt.Errorf("topo: link %q dip_frac = %v outside (0,1]", l.Label, l.DipFrac)
		}
		if l.DelayMs < 0 || l.Loss < 0 || l.Loss >= 1 || l.Buffer < 0 || l.ECN < 0 || l.PeriodS < 0 {
			return fmt.Errorf("topo: link %q has a negative or out-of-range parameter", l.Label)
		}
		if err := l.Faults.Validate(); err != nil {
			return fmt.Errorf("topo: link %q: %w", l.Label, err)
		}
		links[l.Label] = l
	}
	if len(ts.Routes) == 0 {
		return fmt.Errorf("topo: no routes")
	}
	routes := make(map[string]bool, len(ts.Routes))
	for _, r := range ts.Routes {
		if r.Name == "" {
			return fmt.Errorf("topo: route with no name")
		}
		if routes[r.Name] {
			return fmt.Errorf("topo: duplicate route %q", r.Name)
		}
		routes[r.Name] = true
		if len(r.Links) == 0 {
			return fmt.Errorf("topo: route %q has no links", r.Name)
		}
		if r.AckDelayMs < 0 {
			return fmt.Errorf("topo: route %q has negative ack delay", r.Name)
		}
		seen := make(map[string]bool, len(r.Links))
		var prev *TopoLink
		for _, lbl := range r.Links {
			l := links[lbl]
			if l == nil {
				return fmt.Errorf("topo: route %q uses unknown link %q", r.Name, lbl)
			}
			if seen[lbl] {
				return fmt.Errorf("topo: route %q revisits link %q (cycle)", r.Name, lbl)
			}
			seen[lbl] = true
			if prev != nil && prev.To != l.From {
				return fmt.Errorf("topo: route %q breaks at %q -> %q (%s does not feed %s)",
					r.Name, prev.Label, l.Label, prev.To, l.From)
			}
			prev = l
		}
	}
	if ts.Main == "" {
		return fmt.Errorf("topo: no main route")
	}
	if !routes[ts.Main] {
		return fmt.Errorf("topo: main route %q not declared", ts.Main)
	}
	for i, cf := range ts.Cross {
		if !routes[cf.Route] {
			return fmt.Errorf("topo: cross flow %d rides unknown route %q", i, cf.Route)
		}
		if cf.Count < 0 || cf.StartS < 0 || cf.RateMbps < 0 {
			return fmt.Errorf("topo: cross flow %d has a negative parameter", i)
		}
		if cf.CCA != "" {
			if _, err := MakerFor(cf.CCA, nil, nil); err != nil {
				return fmt.Errorf("topo: cross flow %d: %w", i, err)
			}
		}
	}
	return nil
}

// Clone returns an independent deep copy, so callers (the lab's
// mutation search) can reshape links without aliasing the original.
func (ts *TopoSpec) Clone() *TopoSpec {
	if ts == nil {
		return nil
	}
	out := *ts
	out.Nodes = append([]string(nil), ts.Nodes...)
	out.Links = append([]TopoLink(nil), ts.Links...)
	for i := range out.Links {
		out.Links[i].Faults = ts.Links[i].Faults.Clone()
	}
	out.Routes = make([]TopoRoute, len(ts.Routes))
	for i, r := range ts.Routes {
		out.Routes[i] = r
		out.Routes[i].Links = append([]string(nil), r.Links...)
	}
	out.Cross = append([]CrossFlow(nil), ts.Cross...)
	return &out
}

// meanMbps is the link's time-averaged capacity implied by its shape.
func (l *TopoLink) meanMbps() float64 {
	if l.DipFrac == 0 || l.DipFrac >= 0.999 || l.PeriodS <= 0 {
		return l.CapMbps
	}
	return l.CapMbps * (1 + l.DipFrac) / 2
}

// trace materialises the link's capacity shape.
func (l *TopoLink) trace() trace.Trace {
	capBps := trace.Mbps(l.CapMbps)
	if l.DipFrac == 0 || l.DipFrac >= 0.999 || l.PeriodS <= 0 {
		return trace.Constant(capBps)
	}
	return &trace.Step{
		Period: time.Duration(l.PeriodS * float64(time.Second) / 2),
		Levels: []float64{capBps, capBps * l.DipFrac},
	}
}

// RouteByName returns the named route spec, or nil. The pointer
// aliases the spec; callers wanting to mutate should Clone first.
func (ts *TopoSpec) RouteByName(name string) *TopoRoute {
	for i := range ts.Routes {
		if ts.Routes[i].Name == name {
			return &ts.Routes[i]
		}
	}
	return nil
}

// MainBottleneck returns the index (into Links) of the main route's
// lowest-mean-capacity hop — where scenario-level fault plans and the
// lab's trace-shape knobs land — or -1 when the spec is invalid.
func (ts *TopoSpec) MainBottleneck() int {
	r := ts.RouteByName(ts.Main)
	if r == nil {
		return -1
	}
	best, bi := 0.0, -1
	for _, lbl := range r.Links {
		for i := range ts.Links {
			if ts.Links[i].Label == lbl {
				if m := ts.Links[i].meanMbps(); bi < 0 || m < best {
					best, bi = m, i
				}
				break
			}
		}
	}
	return bi
}

// TopoBuild carries the runtime wiring Build needs beyond the spec.
type TopoBuild struct {
	Seed         int64
	MSS          int
	Tracer       telemetry.Tracer
	Health       *telemetry.Health
	RecordSeries bool
	SeriesBucket time.Duration
	// ExtraFaults, when non-empty, lands on the main route's bottleneck
	// hop — unless that link already carries its own plan. This is how
	// a scenario-level plan (libra-bench -fault) composes with -topo.
	ExtraFaults *faults.Plan
}

// Build materialises the spec as a running-ready topology plus its
// routes by name. Per-link injectors bind with seeds sub-derived from
// the build seed by link index, so adding a link never perturbs the
// fault streams of the links before it.
func (ts *TopoSpec) Build(b TopoBuild) (*netem.Topology, map[string]*netem.Route, error) {
	if err := ts.Validate(); err != nil {
		return nil, nil, err
	}
	extraAt := -1
	if !b.ExtraFaults.Empty() {
		if i := ts.MainBottleneck(); i >= 0 && ts.Links[i].Faults.Empty() {
			extraAt = i
		}
	}
	specs := make([]netem.LinkSpec, len(ts.Links))
	for i := range ts.Links {
		l := &ts.Links[i]
		plan := l.Faults
		if i == extraAt {
			plan = b.ExtraFaults
		}
		var inj netem.FaultInjector
		if !plan.Empty() {
			var err error
			inj, err = faults.New(plan, sweep.SubSeed(b.Seed, i))
			if err != nil {
				return nil, nil, fmt.Errorf("topo: link %q: %w", l.Label, err)
			}
		}
		specs[i] = netem.LinkSpec{
			Label:        l.Label,
			From:         l.From,
			To:           l.To,
			Capacity:     l.trace(),
			PropDelay:    time.Duration(l.DelayMs * float64(time.Millisecond)),
			BufferBytes:  l.Buffer,
			LossRate:     l.Loss,
			ECNThreshold: l.ECN,
			CoDel:        l.CoDel,
			Faults:       inj,
		}
	}
	tp, err := netem.NewTopology(netem.TopologyConfig{
		Nodes:        ts.Nodes,
		Links:        specs,
		MSS:          b.MSS,
		Seed:         b.Seed,
		RecordSeries: b.RecordSeries,
		SeriesBucket: b.SeriesBucket,
		Tracer:       b.Tracer,
		Health:       b.Health,
	})
	if err != nil {
		return nil, nil, err
	}
	routes := make(map[string]*netem.Route, len(ts.Routes))
	for _, rs := range ts.Routes {
		ack := time.Duration(rs.AckDelayMs * float64(time.Millisecond))
		if rs.AckDelayMs == 0 {
			ack = -1 // symmetric
		}
		r, err := tp.AddRoute(rs.Name, rs.Links, ack)
		if err != nil {
			return nil, nil, err
		}
		routes[rs.Name] = r
	}
	return tp, routes, nil
}

// topoPresets are the named topologies behind the -topo CLI flags and
// the lab's topology knob. Each returns a fresh spec.
var topoPresets = map[string]func() *TopoSpec{
	// Classic dumbbell: fat access links into one 48 Mbps bottleneck,
	// one CUBIC cross flow entering and leaving at the routers.
	"dumbbell": func() *TopoSpec {
		return &TopoSpec{
			Name:  "dumbbell",
			Nodes: []string{"src", "xsrc", "r0", "r1", "dst", "xdst"},
			Links: []TopoLink{
				{Label: "a0", From: "src", To: "r0", CapMbps: 960, DelayMs: 2},
				{Label: "a1", From: "xsrc", To: "r0", CapMbps: 960, DelayMs: 2},
				{Label: "bn", From: "r0", To: "r1", CapMbps: 48, DelayMs: 10},
				{Label: "b0", From: "r1", To: "dst", CapMbps: 960, DelayMs: 2},
				{Label: "b1", From: "r1", To: "xdst", CapMbps: 960, DelayMs: 2},
			},
			Routes: []TopoRoute{
				{Name: "main", Links: []string{"a0", "bn", "b0"}},
				{Name: "x", Links: []string{"a1", "bn", "b1"}},
			},
			Main:  "main",
			Cross: []CrossFlow{{Route: "x", CCA: "cubic", Count: 1}},
		}
	},
	// Parking lot: a 3-hop 48 Mbps path where the main flows cross
	// every hop and one-hop cross flows load each hop individually —
	// the canonical multi-bottleneck fairness fabric.
	"parking-lot": func() *TopoSpec {
		ts := &TopoSpec{
			Name:  "parking-lot",
			Nodes: []string{"n0", "n1", "n2", "n3"},
			Links: []TopoLink{
				{Label: "h0", From: "n0", To: "n1", CapMbps: 48, DelayMs: 5},
				{Label: "h1", From: "n1", To: "n2", CapMbps: 48, DelayMs: 5},
				{Label: "h2", From: "n2", To: "n3", CapMbps: 48, DelayMs: 5},
			},
			Routes: []TopoRoute{{Name: "main", Links: []string{"h0", "h1", "h2"}}},
			Main:   "main",
		}
		for k := 0; k < 3; k++ {
			in, out := fmt.Sprintf("c%d", k), fmt.Sprintf("d%d", k)
			ts.Nodes = append(ts.Nodes, in, out)
			ts.Links = append(ts.Links,
				TopoLink{Label: fmt.Sprintf("x%d_in", k), From: in, To: fmt.Sprintf("n%d", k), CapMbps: 960, DelayMs: 1},
				TopoLink{Label: fmt.Sprintf("x%d_out", k), From: fmt.Sprintf("n%d", k+1), To: out, CapMbps: 960, DelayMs: 1},
			)
			name := fmt.Sprintf("x%d", k)
			ts.Routes = append(ts.Routes, TopoRoute{Name: name,
				Links: []string{fmt.Sprintf("x%d_in", k), fmt.Sprintf("h%d", k), fmt.Sprintf("x%d_out", k)}})
			ts.Cross = append(ts.Cross, CrossFlow{Route: name, CCA: "cubic", Count: 1})
		}
		return ts
	},
	// Two-tier datacenter pod: shallow-buffered ECN fabric links with
	// DCTCP cross traffic sharing both fabric hops.
	"datacenter-ecn": func() *TopoSpec {
		return &TopoSpec{
			Name:  "datacenter-ecn",
			Nodes: []string{"h0", "c0", "t0", "a0", "t1", "h1", "c1"},
			Links: []TopoLink{
				{Label: "e0", From: "h0", To: "t0", CapMbps: 192, DelayMs: 0.05},
				{Label: "ce0", From: "c0", To: "t0", CapMbps: 192, DelayMs: 0.05},
				{Label: "f0", From: "t0", To: "a0", CapMbps: 96, DelayMs: 0.05, Buffer: 60_000, ECN: 30_000},
				{Label: "f1", From: "a0", To: "t1", CapMbps: 96, DelayMs: 0.05, Buffer: 60_000, ECN: 30_000},
				{Label: "e1", From: "t1", To: "h1", CapMbps: 192, DelayMs: 0.05},
				{Label: "ce1", From: "t1", To: "c1", CapMbps: 192, DelayMs: 0.05},
			},
			Routes: []TopoRoute{
				{Name: "main", Links: []string{"e0", "f0", "f1", "e1"}},
				{Name: "x", Links: []string{"ce0", "f0", "f1", "ce1"}},
			},
			Main:  "main",
			Cross: []CrossFlow{{Route: "x", CCA: "dctcp", Count: 2}},
		}
	},
}

// TopoPreset returns a fresh copy of a named topology.
func TopoPreset(name string) (*TopoSpec, bool) {
	f, ok := topoPresets[name]
	if !ok {
		return nil, false
	}
	return f(), true
}

// TopoPresetNames lists the registered topology presets, sorted.
func TopoPresetNames() []string {
	names := make([]string, 0, len(topoPresets))
	for n := range topoPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseTopo decodes a JSON topology spec, rejecting unknown fields,
// and validates it.
func ParseTopo(b []byte) (*TopoSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var ts TopoSpec
	if err := dec.Decode(&ts); err != nil {
		return nil, fmt.Errorf("topo: parse spec: %w", err)
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return &ts, nil
}

// LoadTopo resolves spec as either a preset name or a path to a JSON
// topology file (anything containing a path separator or ending in
// .json). Empty means no topology (the single-bottleneck path). This
// is the CLI entry point behind the -topo flags.
func LoadTopo(spec string) (*TopoSpec, error) {
	if spec == "" {
		return nil, nil
	}
	if ts, ok := TopoPreset(spec); ok {
		return ts, nil
	}
	if strings.ContainsAny(spec, "/\\") || strings.HasSuffix(spec, ".json") {
		b, err := os.ReadFile(spec)
		if err != nil {
			return nil, err
		}
		ts, err := ParseTopo(b)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec, err)
		}
		return ts, nil
	}
	return nil, fmt.Errorf("topo: unknown preset %q (have %s; or pass a .json topology file)",
		spec, strings.Join(TopoPresetNames(), ", "))
}
