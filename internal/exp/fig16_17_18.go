package exp

import (
	"math"
	"time"

	"libra/internal/cc"
	"libra/internal/core"
	"libra/internal/trace"
	"libra/internal/utility"
)

func init() {
	Register(Experiment{
		ID:    "fig16",
		Title: "Live-Internet-like WAN scenarios (inter/intra-continental)",
		Paper: "Inter-continental: Orca and CUBIC drop throughput sharply (stochastic loss, unknown shaping); C-Libra +6% thr (Th) or -14.4% delay (La) vs BBR; intra-continental all closer",
		Run:   runFig16,
	})
	Register(Experiment{
		ID:    "fig17",
		Title: "Fraction of control cycles won by x_prev / x_rl / x_cl",
		Paper: "C-Libra averages 32%/26%/42% (prev/rl/cl); B-Libra 23%/27%/50%; x_cl wins least on wired for CUBIC",
		Run:   runFig17,
	})
	Register(Experiment{
		ID:    "fig18",
		Title: "Libra vs offline ideal combination (normalised utility over time)",
		Paper: "C/B-Libra approach and sometimes surpass the per-interval max of their components run alone",
		Run:   runFig18,
	})
}

// wanScenario models the EC2 paths: long RTT, background stochastic
// loss, and unresponsive cross traffic (the shaping/competition the
// endpoints cannot see).
func wanScenario(kind string, d time.Duration, seed int64) (Scenario, float64) {
	switch kind {
	case "inter":
		return Scenario{
			Name:     "inter-continental",
			Capacity: trace.Constant(trace.Mbps(50)),
			MinRTT:   180 * time.Millisecond,
			Buffer:   600_000,
			Loss:     0.01,
			Duration: d,
		}, trace.Mbps(10) // cross traffic
	default:
		return Scenario{
			Name:     "intra-continental",
			Capacity: trace.Constant(trace.Mbps(50)),
			MinRTT:   40 * time.Millisecond,
			Buffer:   300_000,
			Loss:     0.001,
			Duration: d,
		}, trace.Mbps(5)
	}
}

func runFig16(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 40 * time.Second
	if cfg.Quick {
		dur = 12 * time.Second
	}
	ag := cfg.agents()
	ccas := []string{"c-libra", "b-libra", "proteus", "bbr", "cubic", "orca"}

	run := func(kind string) Table {
		s, cross := wanScenario(kind, dur, cfg.Seed)
		tbl := Table{Name: kind + "-continental", Cols: []string{"cca", "norm.thr", "norm.delay", "loss"}}
		type r struct{ thr, delay, loss float64 }
		res := map[string]r{}
		var bestThr, minDelay float64
		minDelay = math.Inf(1)
		for _, name := range ccas {
			ms := RunFlows(s, []Maker{mustMaker(name, ag, nil), func(seed int64) cc.Controller {
				return cc.FixedRate{R: cross}
			}}, []time.Duration{0, 0}, cfg.Seed, 0)
			res[name] = r{ms[0].ThrMbps, ms[0].DelayMs, ms[0].LossRate}
			if ms[0].ThrMbps > bestThr {
				bestThr = ms[0].ThrMbps
			}
			if ms[0].DelayMs < minDelay {
				minDelay = ms[0].DelayMs
			}
		}
		for _, name := range ccas {
			v := res[name]
			tbl.AddRow(name, fmtF(v.thr/bestThr, 3), fmtF(v.delay/minDelay, 3), fmtF(v.loss, 4))
		}
		return tbl
	}
	return &Report{ID: "fig16", Title: "WAN performance",
		Tables: []Table{run("inter"), run("intra")},
		Notes:  []string{"cross traffic: unresponsive CBR flow sharing the bottleneck (substitute for unknown WAN competition)"}}
}

func runFig17(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 40 * time.Second
	reps := 10
	if cfg.Quick {
		dur = 15 * time.Second
		reps = 3
	}
	ag := cfg.agents()

	scens := map[string]func(seed int64) Scenario{
		"step": func(seed int64) Scenario { return stepScenario(dur) },
		"cellular": func(seed int64) Scenario {
			return Scenario{Capacity: trace.NewLTE(trace.LTEWalking, dur, seed),
				MinRTT: 30 * time.Millisecond, Buffer: 150_000, Duration: dur}
		},
		"wired": func(seed int64) Scenario {
			return Scenario{Capacity: trace.Constant(trace.Mbps(48)),
				MinRTT: 30 * time.Millisecond, Buffer: 150_000, Duration: dur}
		},
	}
	order := []string{"step", "cellular", "wired"}

	tbl := Table{Name: "fraction of applied decisions",
		Cols: []string{"libra", "scenario", "x_prev", "x_rl", "x_cl"}}
	for _, lname := range []string{"c-libra", "b-libra"} {
		for _, sn := range order {
			var frac [3]float64
			for rp := 0; rp < reps; rp++ {
				seed := cfg.Seed + int64(rp)*67
				m := RunFlow(scens[sn](seed), mustMaker(lname, ag, nil), seed, 0)
				lb := m.Ctrl.(*core.Libra)
				tel := lb.Telemetry()
				for c := core.CandPrev; c <= core.CandRL; c++ {
					frac[c] += tel.Fraction(c)
				}
			}
			tbl.AddRow(lname, sn,
				fmtF(frac[core.CandPrev]/float64(reps), 2),
				fmtF(frac[core.CandRL]/float64(reps), 2),
				fmtF(frac[core.CandClassic]/float64(reps), 2))
		}
	}
	return &Report{ID: "fig17", Title: "Decision-source fractions", Tables: []Table{tbl}}
}

func runFig18(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 50 * time.Second
	if cfg.Quick {
		dur = 20 * time.Second
	}
	ag := cfg.agents()
	u := utility.Default()

	// Per-second utility of a standalone run.
	utilSeries := func(name string) []float64 {
		s := Scenario{Capacity: trace.NewLTE(trace.LTEWalking, dur, cfg.Seed+7),
			MinRTT: 30 * time.Millisecond, Buffer: 150_000, Duration: dur}
		m := RunFlow(s, mustMaker(name, ag, nil), cfg.Seed, time.Second)
		n := int(dur / time.Second)
		out := make([]float64, n)
		for t := 0; t < n; t++ {
			thr := trace.ToMbps(m.Flow.Stats.Throughput.Rate(t))
			// Per-second latency gradient from the delay series.
			grad := 0.0
			if t > 0 {
				grad = (m.Flow.Stats.Delay.Mean(t) - m.Flow.Stats.Delay.Mean(t-1)) / 1000
			}
			out[t] = u.Value(thr, grad, 0)
		}
		return out
	}

	mkTable := func(tag, libraName, classicName string) Table {
		libra := utilSeries(libraName)
		classic := utilSeries(classicName)
		clean := utilSeries("cl-libra")
		// Normalise all three jointly.
		var norm utility.Normalizer
		for _, s := range [][]float64{libra, classic, clean} {
			for _, v := range s {
				norm.Observe(v)
			}
		}
		tbl := Table{Name: tag, Cols: []string{"t(s)", libraName, tag + "-ideal(max of components)"}}
		var libraWins int
		for t := range libra {
			ideal := math.Max(classic[t], clean[t])
			if libra[t] >= ideal {
				libraWins++
			}
			tbl.AddRow(fmtF(float64(t), 0), fmtF(norm.Norm(libra[t]), 2), fmtF(norm.Norm(ideal), 2))
		}
		return tbl
	}

	return &Report{ID: "fig18", Title: "Libra vs offline ideal combination",
		Tables: []Table{mkTable("C", "c-libra", "cubic"), mkTable("B", "b-libra", "bbr")},
		Notes:  []string{"ideal = per-second max utility of the classic CCA and Clean-Slate Libra run individually (offline combination, no interaction)"}}
}
