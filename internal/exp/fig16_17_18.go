package exp

import (
	"math"
	"time"

	"libra/internal/cc"
	"libra/internal/core"
	"libra/internal/trace"
	"libra/internal/utility"
)

func init() {
	Register(Experiment{
		ID:    "fig16",
		Title: "Live-Internet-like WAN scenarios (inter/intra-continental)",
		Paper: "Inter-continental: Orca and CUBIC drop throughput sharply (stochastic loss, unknown shaping); C-Libra +6% thr (Th) or -14.4% delay (La) vs BBR; intra-continental all closer",
		Run:   runFig16,
	})
	Register(Experiment{
		ID:    "fig17",
		Title: "Fraction of control cycles won by x_prev / x_rl / x_cl",
		Paper: "C-Libra averages 32%/26%/42% (prev/rl/cl); B-Libra 23%/27%/50%; x_cl wins least on wired for CUBIC",
		Run:   runFig17,
	})
	Register(Experiment{
		ID:    "fig18",
		Title: "Libra vs offline ideal combination (normalised utility over time)",
		Paper: "C/B-Libra approach and sometimes surpass the per-interval max of their components run alone",
		Run:   runFig18,
	})
}

// wanScenario models the EC2 paths: long RTT, background stochastic
// loss, and unresponsive cross traffic (the shaping/competition the
// endpoints cannot see).
func wanScenario(kind string, d time.Duration, seed int64) (Scenario, float64) {
	switch kind {
	case "inter":
		return Scenario{
			Name:     "inter-continental",
			Capacity: trace.Constant(trace.Mbps(50)),
			MinRTT:   180 * time.Millisecond,
			Buffer:   600_000,
			Loss:     0.01,
			Duration: d,
		}, trace.Mbps(10) // cross traffic
	default:
		return Scenario{
			Name:     "intra-continental",
			Capacity: trace.Constant(trace.Mbps(50)),
			MinRTT:   40 * time.Millisecond,
			Buffer:   300_000,
			Loss:     0.001,
			Duration: d,
		}, trace.Mbps(5)
	}
}

func runFig16(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 40 * time.Second
	if rc.Quick {
		dur = 12 * time.Second
	}
	ccas := []string{"c-libra", "b-libra", "proteus", "bbr", "cubic", "orca"}

	run := func(kind string) Table {
		s, cross := wanScenario(kind, dur, rc.Seed)
		type r struct{ thr, delay, loss float64 }
		// Normalisation needs the whole CCA set, so it follows the sweep.
		res := Sweep(rc, len(ccas), func(jc *RunContext, i int) r {
			ms := jc.RunFlows(s, []Maker{mustMaker(ccas[i], jc.agents(), nil), func(seed int64) cc.Controller {
				return cc.FixedRate{R: cross}
			}}, []time.Duration{0, 0}, 0)
			return r{ms[0].ThrMbps, ms[0].DelayMs, ms[0].LossRate}
		})
		tbl := Table{Name: kind + "-continental", Cols: []string{"cca", "norm.thr", "norm.delay", "loss"}}
		var bestThr, minDelay float64
		minDelay = math.Inf(1)
		for _, v := range res {
			if v.thr > bestThr {
				bestThr = v.thr
			}
			if v.delay < minDelay {
				minDelay = v.delay
			}
		}
		for i, name := range ccas {
			v := res[i]
			tbl.AddRow(name, fmtF(v.thr/bestThr, 3), fmtF(v.delay/minDelay, 3), fmtF(v.loss, 4))
		}
		return tbl
	}
	return &Report{ID: "fig16", Title: "WAN performance",
		Tables: []Table{run("inter"), run("intra")},
		Notes:  []string{"cross traffic: unresponsive CBR flow sharing the bottleneck (substitute for unknown WAN competition)"}}
}

func runFig17(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 40 * time.Second
	reps := 10
	if rc.Quick {
		dur = 15 * time.Second
		reps = 3
	}

	scens := map[string]func(seed int64) Scenario{
		"step": func(seed int64) Scenario { return stepScenario(dur) },
		"cellular": func(seed int64) Scenario {
			return Scenario{Capacity: trace.NewLTE(trace.LTEWalking, dur, seed),
				MinRTT: 30 * time.Millisecond, Buffer: 150_000, Duration: dur}
		},
		"wired": func(seed int64) Scenario {
			return Scenario{Capacity: trace.Constant(trace.Mbps(48)),
				MinRTT: 30 * time.Millisecond, Buffer: 150_000, Duration: dur}
		},
	}
	order := []string{"step", "cellular", "wired"}
	libras := []string{"c-libra", "b-libra"}

	fracs := Sweep(rc, len(libras)*len(order)*reps, func(jc *RunContext, i int) [3]float64 {
		li := i / (len(order) * reps)
		si := i / reps % len(order)
		m := jc.RunFlow(scens[order[si]](jc.Seed), mustMaker(libras[li], jc.agents(), nil), 0)
		lb := m.Ctrl.(*core.Libra)
		tel := lb.Telemetry()
		var f [3]float64
		for c := core.CandPrev; c <= core.CandRL; c++ {
			f[c] = tel.Fraction(c)
		}
		return f
	})

	tbl := Table{Name: "fraction of applied decisions",
		Cols: []string{"libra", "scenario", "x_prev", "x_rl", "x_cl"}}
	for li, lname := range libras {
		for si, sn := range order {
			var frac [3]float64
			for rp := 0; rp < reps; rp++ {
				f := fracs[(li*len(order)+si)*reps+rp]
				for c := range frac {
					frac[c] += f[c]
				}
			}
			tbl.AddRow(lname, sn,
				fmtF(frac[core.CandPrev]/float64(reps), 2),
				fmtF(frac[core.CandRL]/float64(reps), 2),
				fmtF(frac[core.CandClassic]/float64(reps), 2))
		}
	}
	return &Report{ID: "fig17", Title: "Decision-source fractions", Tables: []Table{tbl}}
}

func runFig18(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 50 * time.Second
	if rc.Quick {
		dur = 20 * time.Second
	}
	u := utility.Default()

	// Per-second utility of a standalone run (one sweep job per CCA).
	names := []string{"c-libra", "cubic", "b-libra", "bbr", "cl-libra"}
	series := Sweep(rc, len(names), func(jc *RunContext, i int) []float64 {
		s := Scenario{Capacity: trace.NewLTE(trace.LTEWalking, dur, rc.Seed+7),
			MinRTT: 30 * time.Millisecond, Buffer: 150_000, Duration: dur}
		m := jc.RunFlow(s, mustMaker(names[i], jc.agents(), nil), time.Second)
		n := int(dur / time.Second)
		out := make([]float64, n)
		for t := 0; t < n; t++ {
			thr := trace.ToMbps(m.Flow.Stats.Throughput.Rate(t))
			// Per-second latency gradient from the delay series.
			grad := 0.0
			if t > 0 {
				grad = (m.Flow.Stats.Delay.Mean(t) - m.Flow.Stats.Delay.Mean(t-1)) / 1000
			}
			out[t] = u.Value(thr, grad, 0)
		}
		return out
	})
	bySeries := map[string][]float64{}
	for i, n := range names {
		bySeries[n] = series[i]
	}

	mkTable := func(tag, libraName, classicName string) Table {
		libra := bySeries[libraName]
		classic := bySeries[classicName]
		clean := bySeries["cl-libra"]
		// Normalise all three jointly.
		var norm utility.Normalizer
		for _, s := range [][]float64{libra, classic, clean} {
			for _, v := range s {
				norm.Observe(v)
			}
		}
		tbl := Table{Name: tag, Cols: []string{"t(s)", libraName, tag + "-ideal(max of components)"}}
		var libraWins int
		for t := range libra {
			ideal := math.Max(classic[t], clean[t])
			if libra[t] >= ideal {
				libraWins++
			}
			tbl.AddRow(fmtF(float64(t), 0), fmtF(norm.Norm(libra[t]), 2), fmtF(norm.Norm(ideal), 2))
		}
		return tbl
	}

	return &Report{ID: "fig18", Title: "Libra vs offline ideal combination",
		Tables: []Table{mkTable("C", "c-libra", "cubic"), mkTable("B", "b-libra", "bbr")},
		Notes:  []string{"ideal = per-second max utility of the classic CCA and Clean-Slate Libra run individually (offline combination, no interaction)"}}
}
