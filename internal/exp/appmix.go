package exp

import (
	"time"

	"libra/internal/netem"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "app-mix",
		Title: "Mixed application classes: bulk CCA sharing with a delay-sensitive stream",
		Paper: "Intro motivation: throughput-oriented (storage replication) and delay-sensitive (VR/cloud gaming) traffic coexist; a modern CCA should serve both",
		Run:   runAppMix,
	})
}

// runAppMix shares a bottleneck between one bulk flow (CCA under test)
// and one 4 Mbps application-limited stream (a latency-sensitive
// client running a plain conservative controller). It reports the
// stream's delay and loss under each bulk neighbour: a delay-aware bulk
// CCA leaves the stream usable, a buffer-filler does not.
func runAppMix(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 30 * time.Second
	if cfg.Quick {
		dur = 10 * time.Second
	}
	ag := cfg.agents()
	bulkCCAs := []string{"c-libra", "b-libra", "cubic", "bbr", "copa", "proteus"}

	tbl := Table{Name: "bulk neighbour's effect on a 4 Mbps stream (24 Mbps / 40 ms / 300 KB buffer)",
		Cols: []string{"bulk cca", "bulk thr(Mbps)", "stream thr(Mbps)", "stream delay(ms)", "stream loss"}}
	for _, name := range bulkCCAs {
		n := netem.New(netem.Config{
			Capacity:    trace.Constant(trace.Mbps(24)),
			MinRTT:      40 * time.Millisecond,
			BufferBytes: 300_000,
			Seed:        cfg.Seed,
		})
		bulk := n.AddFlow(mustMaker(name, ag, nil)(cfg.Seed), 0, 0)
		stream := n.AddFlow(mustMaker("vegas", ag, nil)(cfg.Seed+1), 0, 0)
		stream.SetAppRate(trace.Mbps(4))
		n.Run(dur)
		tbl.AddRow(name,
			fmtF(trace.ToMbps(bulk.Stats.AvgThroughput()), 1),
			fmtF(trace.ToMbps(stream.Stats.AvgThroughput()), 2),
			fmtF(float64(stream.Stats.AvgRTT())/float64(time.Millisecond), 0),
			fmtF(stream.Stats.LossRate(), 4))
	}
	return &Report{ID: "app-mix", Title: "Application-mix coexistence", Tables: []Table{tbl},
		Notes: []string{"the stream is a 4 Mbps app-limited Vegas client; its delay is set by the queue the bulk flow maintains"}}
}
