package exp

import (
	"time"

	"libra/internal/netem"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "app-mix",
		Title: "Mixed application classes: bulk CCA sharing with a delay-sensitive stream",
		Paper: "Intro motivation: throughput-oriented (storage replication) and delay-sensitive (VR/cloud gaming) traffic coexist; a modern CCA should serve both",
		Run:   runAppMix,
	})
}

// runAppMix shares a bottleneck between one bulk flow (CCA under test)
// and one 4 Mbps application-limited stream (a latency-sensitive
// client running a plain conservative controller). It reports the
// stream's delay and loss under each bulk neighbour: a delay-aware bulk
// CCA leaves the stream usable, a buffer-filler does not.
func runAppMix(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 30 * time.Second
	if rc.Quick {
		dur = 10 * time.Second
	}
	bulkCCAs := []string{"c-libra", "b-libra", "cubic", "bbr", "copa", "proteus"}

	type res struct{ bulkThr, streamThr, streamDelay, streamLoss float64 }
	rs := Sweep(rc, len(bulkCCAs), func(jc *RunContext, i int) res {
		ag := jc.agents()
		n := netem.New(netem.Config{
			Capacity:    trace.Constant(trace.Mbps(24)),
			MinRTT:      40 * time.Millisecond,
			BufferBytes: 300_000,
			Seed:        jc.Seed,
		})
		bulk := n.AddFlow(mustMaker(bulkCCAs[i], ag, nil)(jc.Seed), 0, 0)
		stream := n.AddFlow(mustMaker("vegas", ag, nil)(jc.Seed+1), 0, 0)
		stream.SetAppRate(trace.Mbps(4))
		n.Run(dur)
		jc.ObserveLink(n, dur)
		return res{
			bulkThr:     trace.ToMbps(bulk.Stats.AvgThroughput()),
			streamThr:   trace.ToMbps(stream.Stats.AvgThroughput()),
			streamDelay: float64(stream.Stats.AvgRTT()) / float64(time.Millisecond),
			streamLoss:  stream.Stats.LossRate(),
		}
	})

	tbl := Table{Name: "bulk neighbour's effect on a 4 Mbps stream (24 Mbps / 40 ms / 300 KB buffer)",
		Cols: []string{"bulk cca", "bulk thr(Mbps)", "stream thr(Mbps)", "stream delay(ms)", "stream loss"}}
	for i, name := range bulkCCAs {
		r := rs[i]
		tbl.AddRow(name, fmtF(r.bulkThr, 1), fmtF(r.streamThr, 2), fmtF(r.streamDelay, 0), fmtF(r.streamLoss, 4))
	}
	return &Report{ID: "app-mix", Title: "Application-mix coexistence", Tables: []Table{tbl},
		Notes: []string{"the stream is a 4 Mbps app-limited Vegas client; its delay is set by the queue the bulk flow maintains"}}
}
