package exp

import (
	"time"

	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "fig8",
		Title: "Capacity tracking over a driving LTE trace",
		Paper: "Libra follows the changing capacity; CUBIC over-/under-shoots at 20-30s, Orca at 20-25s, BBR at 10-15s; Proteus cannot follow",
		Run:   runFig8,
	})
}

func runFig8(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 35 * time.Second
	if rc.Quick {
		dur = 20 * time.Second
	}
	tour := trace.NewDrivingTour(dur, rc.Seed+99)
	s := Scenario{Name: "driving-tour", Capacity: tour, MinRTT: 30 * time.Millisecond,
		Buffer: 150_000, Duration: dur}
	ccas := []string{"c-libra", "b-libra", "proteus", "cubic", "bbr", "orca"}

	tbl := Table{Name: "throughput (Mbps) per second vs capacity",
		Cols: append([]string{"t(s)", "capacity"}, ccas...)}
	series := Sweep(rc, len(ccas), func(jc *RunContext, i int) []float64 {
		m := jc.RunFlow(s, mustMaker(ccas[i], jc.agents(), nil), time.Second)
		return m.Flow.Stats.Throughput.Rates(int(dur / time.Second))
	})
	for t := 0; t < int(dur/time.Second); t++ {
		capMbps := trace.ToMbps(trace.MeanRate(offsetTrace{tour, time.Duration(t) * time.Second}, time.Second, 100*time.Millisecond))
		row := []string{fmtF(float64(t), 0), fmtF(capMbps, 1)}
		for i := range ccas {
			row = append(row, fmtF(trace.ToMbps(series[i][t]), 1))
		}
		tbl.AddRow(row...)
	}
	// Tracking error summary: mean |thr - capacity| per CCA.
	sum := Table{Name: "mean absolute tracking error (Mbps)", Cols: []string{"cca", "error"}}
	for i, name := range ccas {
		var e float64
		n := 0
		for t := 2; t < int(dur/time.Second); t++ { // skip startup
			capR := trace.MeanRate(offsetTrace{tour, time.Duration(t) * time.Second}, time.Second, 100*time.Millisecond)
			d := trace.ToMbps(series[i][t]) - trace.ToMbps(capR)
			if d < 0 {
				d = -d
			}
			e += d
			n++
		}
		sum.AddRow(name, fmtF(e/float64(n), 2))
	}
	return &Report{ID: "fig8", Title: "Following the changing LTE capacity", Tables: []Table{tbl, sum}}
}

// offsetTrace shifts a trace in time so MeanRate can average one
// second starting at the offset.
type offsetTrace struct {
	tr  trace.Trace
	off time.Duration
}

func (o offsetTrace) RateAt(t time.Duration) float64 { return o.tr.RateAt(t + o.off) }
func (o offsetTrace) Duration() time.Duration        { return o.tr.Duration() }
