package exp

import (
	"time"

	"libra/internal/stats"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "fig2a",
		Title: "Step-scenario convergence: throughput vs time",
		Paper: "Proteus and Orca fail to converge to capacity in the 30-50s window; Libra tracks every step",
		Run:   runFig2a,
	})
	Register(Experiment{
		ID:    "fig2b",
		Title: "CDF of link utilisation over repeated cellular runs (safety)",
		Paper: "Orca/Proteus highly variable across 100 runs; Libra's CDF is tight near full utilisation",
		Run:   runFig2b,
	})
	Register(Experiment{
		ID:    "fig2c",
		Title: "Normalized CPU and memory overhead per CCA",
		Paper: "Pure learning-based CCAs dominate: Proteus 88.7% CPU / 10.1% mem, Indigo 18.3% / 7.2%; kernel CCAs and Libra negligible",
		Run:   runFig2c,
	})
}

// stepScenario is the Fig. 2(a) workload: capacity changing every 10 s,
// 80 ms RTT, 1 BDP buffer.
func stepScenario(d time.Duration) Scenario {
	levels := []float64{trace.Mbps(20), trace.Mbps(5), trace.Mbps(15), trace.Mbps(10), trace.Mbps(25)}
	return Scenario{
		Name:     "step",
		Capacity: &trace.Step{Period: 10 * time.Second, Levels: levels},
		MinRTT:   80 * time.Millisecond,
		Buffer:   int(trace.Mbps(15) * 0.08), // ~1 BDP at the mean level
		Duration: d,
	}
}

func runFig2a(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 50 * time.Second
	if rc.Quick {
		dur = 20 * time.Second
	}
	s := stepScenario(dur)
	ccas := []string{"proteus", "cl-libra", "c-libra", "orca"}

	series := Sweep(rc, len(ccas), func(jc *RunContext, i int) []float64 {
		m := jc.RunFlow(s, mustMaker(ccas[i], jc.agents(), nil), time.Second)
		return m.Flow.Stats.Throughput.Rates(int(dur / time.Second))
	})

	tbl := Table{Name: "throughput (Mbps) per second", Cols: append([]string{"t(s)", "capacity"}, ccas...)}
	for t := 0; t < int(dur/time.Second); t++ {
		row := []string{fmtF(float64(t), 0), fmtF(trace.ToMbps(s.Capacity.RateAt(time.Duration(t)*time.Second)), 1)}
		for i := range ccas {
			row = append(row, fmtF(trace.ToMbps(series[i][t]), 1))
		}
		tbl.AddRow(row...)
	}
	return &Report{ID: "fig2a", Title: "Throughput over the step scenario", Tables: []Table{tbl}}
}

func runFig2b(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 30 * time.Second
	reps := 30
	if rc.Quick {
		dur = 10 * time.Second
		reps = 8
	}
	ccas := []string{"proteus", "cubic", "bbr", "c-libra", "orca"}

	// One job per (cca, repetition): the LTE trace is drawn from the
	// job's seed, so every repetition sees a different channel.
	utils := Sweep(rc, len(ccas)*reps, func(jc *RunContext, i int) float64 {
		s := Scenario{
			Name:     "lte",
			Capacity: trace.NewLTE(trace.LTEWalking, dur, jc.Seed),
			MinRTT:   30 * time.Millisecond,
			Buffer:   150_000,
			Duration: dur,
		}
		return jc.RunFlow(s, mustMaker(ccas[i/reps], jc.agents(), nil), 0).Util
	})

	points := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}
	tbl := Table{Name: "CDF of link utilisation (TMobile-like LTE, repeated runs)",
		Cols: append([]string{"cca"}, fmtPoints(points)...)}
	summary := Table{Name: "utilisation summary", Cols: []string{"cca", "mean", "range", "stddev"}}
	for ci, name := range ccas {
		us := utils[ci*reps : (ci+1)*reps]
		cdf := stats.CDF(us, points)
		row := []string{name}
		for _, v := range cdf {
			row = append(row, fmtF(v, 2))
		}
		tbl.AddRow(row...)
		summary.AddRow(name, fmtF(stats.Mean(us), 3), fmtF(stats.Range(us), 3), fmtF(stats.StdDev(us), 3))
	}
	return &Report{ID: "fig2b", Title: "Utilisation CDF over repeated cellular runs", Tables: []Table{tbl, summary}}
}

func fmtPoints(ps []float64) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = "<=" + fmtF(p, 2)
	}
	return out
}

func runFig2c(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 60 * time.Second
	if rc.Quick {
		dur = 10 * time.Second
	}
	ccas := []string{"cubic", "bbr", "c-libra", "orca", "indigo", "copa", "proteus"}
	s := Scenario{
		Name:     "lte",
		Capacity: trace.NewLTE(trace.LTEWalking, dur, rc.Seed),
		MinRTT:   30 * time.Millisecond,
		Buffer:   150_000,
		Duration: dur,
	}

	type res struct {
		cpu float64
		mem float64
		own float64
	}
	rs := Sweep(rc, len(ccas), func(jc *RunContext, i int) res {
		m := jc.RunFlow(s, mustMaker(ccas[i], jc.agents(), nil), 0)
		return res{cpu: m.CPUFrac, mem: float64(controllerMemBytes(m.Ctrl)),
			own: float64(ControllerOwnMemBytes(m.Ctrl))}
	})
	var maxCPU, maxMem float64
	for _, r := range rs {
		if r.cpu > maxCPU {
			maxCPU = r.cpu
		}
		if r.mem > maxMem {
			maxMem = r.mem
		}
	}
	tbl := Table{Name: "normalized overhead (max = 1.0)",
		Cols: []string{"cca", "cpu(norm)", "mem(norm)", "mem-own(B)", "cpu(frac of sim time)"}}
	for i, name := range ccas {
		tbl.AddRow(name, fmtF(rs[i].cpu/maxCPU, 3), fmtF(rs[i].mem/maxMem, 3),
			fmtF(rs[i].own, 0), fmtF(rs[i].cpu, 6))
	}
	return &Report{
		ID: "fig2c", Title: "Overhead comparison", Tables: []Table{tbl},
		Notes: []string{
			"cpu = controller compute time / simulated time; mem = controller-resident model+buffer bytes assuming the agent is owned outright (substitution for process-level CPU/RSS, see DESIGN.md)",
			"mem-own = per-flow residual beyond a shared agent: in shared deployments model bytes count once (AgentSet.MemBytes) plus mem-own per flow",
		},
	}
}
