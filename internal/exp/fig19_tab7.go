package exp

import (
	"time"

	"libra/internal/cc"
	"libra/internal/core"
	"libra/internal/rlcc"
)

func init() {
	Register(Experiment{
		ID:    "fig19",
		Title: "Sensitivity to stage durations [explore, EI, exploit] (Appendix B)",
		Paper: "Longer stages cost ~4.4% utilisation on cellular; EI of 1 RTT (vs 0.5) hurts utilisation; wired tolerates longer stages",
		Run:   runFig19,
	})
	Register(Experiment{
		ID:    "tab7",
		Title: "Sensitivity to the switching threshold th1 (Appendix B)",
		Paper: "0.1-0.4x base rate all within ~1.3pp utilisation; default 0.3 a good middle",
		Run:   runTab7,
	})
}

// libraWithParams builds a C-Libra maker with explicit stage parameters.
func libraWithParams(ag *AgentSet, exploreRTTs, exploitRTTs int, eiRTTs, th float64) Maker {
	return func(seed int64) cc.Controller {
		base := cc.Config{Seed: seed}.WithDefaults()
		rlCfg := rlcc.LibraRLConfig(base)
		if ag != nil {
			rlCfg.Agent = ag.LibraRL
			rlCfg.Norm = ag.LibraNorm
		}
		return core.New(core.Config{
			CC:            base,
			Classic:       core.NewCubicAdapter(base),
			RL:            rlcc.New("libra-rl", rlCfg),
			ExploreRTTs:   exploreRTTs,
			ExploitRTTs:   exploitRTTs,
			EIRTTs:        eiRTTs,
			ThresholdFrac: th,
			Name:          "c-libra",
		})
	}
}

func runFig19(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 40 * time.Second
	if cfg.Quick {
		dur = 12 * time.Second
	}
	ag := cfg.agents()
	durations := []struct {
		name             string
		explore, exploit int
		ei               float64
	}{
		{"[1,0.5,1]", 1, 1, 0.5},
		{"[1,1,1]", 1, 1, 1},
		{"[2,0.5,2]", 2, 2, 0.5},
		{"[2,1,2]", 2, 2, 1},
		{"[3,0.5,3]", 3, 3, 0.5},
		{"[3,1,3]", 3, 3, 1},
	}
	wired := WiredScenarios(dur, 24, 48)
	cell := LTEScenarios(dur, cfg.Seed)[:2]

	tbl := Table{Name: "C-Libra under different stage durations",
		Cols: []string{"[explore,EI,exploit]", "wired util", "wired delay(ms)", "cell util", "cell delay(ms)"}}
	for _, d := range durations {
		mk := libraWithParams(ag, d.explore, d.exploit, d.ei, 0.3)
		avg := func(ss []Scenario) (float64, float64) {
			var u, dl float64
			for si, s := range ss {
				m := RunFlow(s, mk, cfg.Seed+int64(si)*19, 0)
				u += m.Util
				dl += m.DelayMs
			}
			return u / float64(len(ss)), dl / float64(len(ss))
		}
		wu, wd := avg(wired)
		cu, cd := avg(cell)
		tbl.AddRow(d.name, fmtF(wu, 3), fmtF(wd, 0), fmtF(cu, 3), fmtF(cd, 0))
	}
	return &Report{ID: "fig19", Title: "Stage-duration sensitivity", Tables: []Table{tbl}}
}

func runTab7(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 40 * time.Second
	if cfg.Quick {
		dur = 12 * time.Second
	}
	ag := cfg.agents()
	ths := []float64{0.1, 0.2, 0.3, 0.4}
	wired := WiredScenarios(dur, 24, 48)
	cell := LTEScenarios(dur, cfg.Seed)[:2]

	tbl := Table{Name: "C-Libra under different switching thresholds",
		Cols: []string{"config", "util", "avg delay(ms)"}}
	for _, fam := range []struct {
		name string
		ss   []Scenario
	}{{"Wired", wired}, {"Cellular", cell}} {
		for _, th := range ths {
			mk := libraWithParams(ag, 1, 1, 0.5, th)
			var u, d float64
			for si, s := range fam.ss {
				m := RunFlow(s, mk, cfg.Seed+int64(si)*29, 0)
				u += m.Util
				d += m.DelayMs
			}
			n := float64(len(fam.ss))
			tbl.AddRow(fam.name+"-"+fmtF(th, 1)+"x", fmtF(u/n, 3), fmtF(d/n, 0))
		}
	}
	return &Report{ID: "tab7", Title: "Threshold sensitivity", Tables: []Table{tbl}}
}
