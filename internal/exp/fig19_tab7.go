package exp

import (
	"time"

	"libra/internal/cc"
	"libra/internal/core"
	"libra/internal/rlcc"
)

func init() {
	Register(Experiment{
		ID:    "fig19",
		Title: "Sensitivity to stage durations [explore, EI, exploit] (Appendix B)",
		Paper: "Longer stages cost ~4.4% utilisation on cellular; EI of 1 RTT (vs 0.5) hurts utilisation; wired tolerates longer stages",
		Run:   runFig19,
	})
	Register(Experiment{
		ID:    "tab7",
		Title: "Sensitivity to the switching threshold th1 (Appendix B)",
		Paper: "0.1-0.4x base rate all within ~1.3pp utilisation; default 0.3 a good middle",
		Run:   runTab7,
	})
}

// libraWithParams builds a C-Libra maker with explicit stage parameters.
func libraWithParams(ag *AgentSet, exploreRTTs, exploitRTTs int, eiRTTs, th float64) Maker {
	return func(seed int64) cc.Controller {
		base := cc.Config{Seed: seed}.WithDefaults()
		rlCfg := rlcc.LibraRLConfig(base)
		if ag != nil {
			rlCfg.Agent = ag.LibraRL
			rlCfg.Norm = ag.LibraNorm
		}
		return core.New(core.Config{
			CC:            base,
			Classic:       core.NewCubicAdapter(base),
			RL:            rlcc.New("libra-rl", rlCfg),
			ExploreRTTs:   exploreRTTs,
			ExploitRTTs:   exploitRTTs,
			EIRTTs:        eiRTTs,
			ThresholdFrac: th,
			Name:          "c-libra",
		})
	}
}

func runFig19(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 40 * time.Second
	if rc.Quick {
		dur = 12 * time.Second
	}
	durations := []struct {
		name             string
		explore, exploit int
		ei               float64
	}{
		{"[1,0.5,1]", 1, 1, 0.5},
		{"[1,1,1]", 1, 1, 1},
		{"[2,0.5,2]", 2, 2, 0.5},
		{"[2,1,2]", 2, 2, 1},
		{"[3,0.5,3]", 3, 3, 0.5},
		{"[3,1,3]", 3, 3, 1},
	}
	wired := WiredScenarios(dur, 24, 48)
	cell := LTEScenarios(dur, rc.Seed)[:2]
	scens := append(append([]Scenario{}, wired...), cell...)

	ms := Sweep(rc, len(durations)*len(scens), func(jc *RunContext, i int) Metrics {
		d := durations[i/len(scens)]
		mk := libraWithParams(jc.agents(), d.explore, d.exploit, d.ei, 0.3)
		return jc.RunFlow(scens[i%len(scens)], mk, 0)
	})

	tbl := Table{Name: "C-Libra under different stage durations",
		Cols: []string{"[explore,EI,exploit]", "wired util", "wired delay(ms)", "cell util", "cell delay(ms)"}}
	for di, d := range durations {
		avg := func(lo, n int) (float64, float64) {
			var u, dl float64
			for k := 0; k < n; k++ {
				m := ms[di*len(scens)+lo+k]
				u += m.Util
				dl += m.DelayMs
			}
			return u / float64(n), dl / float64(n)
		}
		wu, wd := avg(0, len(wired))
		cu, cd := avg(len(wired), len(cell))
		tbl.AddRow(d.name, fmtF(wu, 3), fmtF(wd, 0), fmtF(cu, 3), fmtF(cd, 0))
	}
	return &Report{ID: "fig19", Title: "Stage-duration sensitivity", Tables: []Table{tbl}}
}

func runTab7(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 40 * time.Second
	if rc.Quick {
		dur = 12 * time.Second
	}
	ths := []float64{0.1, 0.2, 0.3, 0.4}
	wired := WiredScenarios(dur, 24, 48)
	cell := LTEScenarios(dur, rc.Seed)[:2]
	fams := []struct {
		name string
		ss   []Scenario
	}{{"Wired", wired}, {"Cellular", cell}}

	// Flatten (family, threshold, scenario): families have equal sizes.
	per := len(wired)
	ms := Sweep(rc, len(fams)*len(ths)*per, func(jc *RunContext, i int) Metrics {
		fi := i / (len(ths) * per)
		ti := i / per % len(ths)
		mk := libraWithParams(jc.agents(), 1, 1, 0.5, ths[ti])
		return jc.RunFlow(fams[fi].ss[i%per], mk, 0)
	})

	tbl := Table{Name: "C-Libra under different switching thresholds",
		Cols: []string{"config", "util", "avg delay(ms)"}}
	for fi, fam := range fams {
		for ti, th := range ths {
			var u, d float64
			for k := 0; k < per; k++ {
				m := ms[(fi*len(ths)+ti)*per+k]
				u += m.Util
				d += m.DelayMs
			}
			n := float64(per)
			tbl.AddRow(fam.name+"-"+fmtF(th, 1)+"x", fmtF(u/n, 3), fmtF(d/n, 0))
		}
	}
	return &Report{ID: "tab7", Title: "Threshold sensitivity", Tables: []Table{tbl}}
}
