package exp

import (
	"libra/internal/rlcc"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2a", "fig2b", "fig2c", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "tab2", "tab3", "tab4",
		"tab6", "tab7",
		"abl-order", "abl-classics", "sec7-networks", "sec7-datacenter",
		"app-mix", "aqm", "figa1",
	}
	for _, id := range want {
		e, ok := Get(id)
		if !ok {
			t.Errorf("experiment %s not registered", id)
			continue
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete: %+v", id, e)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := Get("fig99"); ok {
		t.Fatal("unknown experiment found")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register(Experiment{ID: "fig1"})
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Name: "x", Cols: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	out := tbl.String()
	if !strings.Contains(out, "-- x --") || !strings.Contains(out, "333") {
		t.Fatalf("render: %q", out)
	}
	r := Report{ID: "id", Title: "t", Tables: []Table{tbl}, Notes: []string{"n"}}
	if !strings.Contains(r.String(), "note: n") {
		t.Fatal("notes missing")
	}
}

func TestScenarioBuilders(t *testing.T) {
	ws := WiredScenarios(10*time.Second, 24, 48)
	if len(ws) != 2 || ws[0].Name != "Wired-24Mbps" {
		t.Fatalf("wired scenarios %+v", ws)
	}
	if len(WiredScenarios(time.Second)) != 4 {
		t.Fatal("default wired set should have 4 entries")
	}
	ls := LTEScenarios(10*time.Second, 1)
	if len(ls) != 4 {
		t.Fatalf("LTE scenarios %d", len(ls))
	}
}

func TestMakerForAllCCAs(t *testing.T) {
	for _, name := range CCASet {
		mk, err := MakerFor(name, nil, nil)
		if err != nil {
			t.Fatalf("maker for %s: %v", name, err)
		}
		c := mk(1)
		if c == nil {
			t.Fatalf("maker for %s returned nil", name)
		}
	}
}

func TestMakerForUnknownName(t *testing.T) {
	mk, err := MakerFor("no-such-cca", nil, nil)
	if mk != nil || err == nil {
		t.Fatalf("want nil maker + error, got %v, %v", mk, err)
	}
	for _, name := range []string{"cubic", "c-libra", "bbr"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %s", err, name)
		}
	}
}

func TestRunFlowAndRepeat(t *testing.T) {
	s := WiredScenarios(3*time.Second, 12)[0]
	rc := NewRunContext(1)
	m := rc.RunFlow(s, mustMaker("cubic", nil, nil), 0)
	if m.ThrMbps <= 0 || m.Util <= 0 {
		t.Fatalf("metrics %+v", m)
	}
	ms := rc.Repeat(s, func(*RunContext) Maker { return mustMaker("cubic", nil, nil) }, 2)
	if len(ms) != 2 {
		t.Fatal("repeat count")
	}
}

func TestAgentSetSaveLoad(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "models")
	set := TrainAgentSet(TrainSpec{Seed: 1, Episodes: 2, EpisodeLen: 2 * time.Second,
		Env: rlcc.LaptopEnvRange()})
	if err := set.Save(dir); err != nil {
		t.Fatal(err)
	}
	files, _ := os.ReadDir(dir)
	if len(files) != 8 { // 4 actor models + 4 normalisers
		t.Fatalf("saved %d files, want 8", len(files))
	}
	loaded, err := LoadAgentSet(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Loaded actor must reproduce the trained actor's outputs.
	obs := make([]float64, 20)
	a := set.LibraRL.Policy.Mean(obs)[0]
	b := loaded.LibraRL.Policy.Mean(obs)[0]
	if a != b {
		t.Fatalf("loaded policy diverges: %v vs %v", a, b)
	}
}
