package exp

import (
	"sync"

	"libra/internal/cc"
	"libra/internal/rlcc"
)

// The runner gives every engine run a private rlcc.Batcher, so flows
// that share a PPO agent are served by one batched forward pass (a
// GEMM) per simulated instant instead of one vector pass per flow.
// Only top-level rlcc controllers register: their MI ticks are driven
// directly by the engine, which is what lets the batcher predict a
// whole cohort's instants. Everything else — classic CCAs, Orca's
// hybrid, and core.Libra (whose inner RL component is ticked at the
// core's discretion, not the engine's) — stays on the sequential
// path, which is bit-identical anyway.

// BatchCounters aggregates rlcc.BatchStats across engine runs. Safe
// for concurrent use: parallel Sweep jobs fold into their parent's
// accumulator (see RunContext.Batch).
type BatchCounters struct {
	mu sync.Mutex
	s  rlcc.BatchStats
}

func (b *BatchCounters) add(s rlcc.BatchStats) {
	if s == (rlcc.BatchStats{}) {
		return
	}
	b.mu.Lock()
	b.s.Instants += s.Instants
	b.s.Batches += s.Batches
	b.s.Rows += s.Rows
	if s.MaxBatch > b.s.MaxBatch {
		b.s.MaxBatch = s.MaxBatch
	}
	b.mu.Unlock()
}

// Snapshot returns the counters accumulated so far.
func (b *BatchCounters) Snapshot() rlcc.BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.s
}

// newBatcher returns the inference batcher for one engine run, or nil
// when the context disables batching.
func (rc *RunContext) newBatcher() *rlcc.Batcher {
	if rc.NoBatch {
		return nil
	}
	return rlcc.NewBatcher()
}

// attachBatcher registers a freshly built controller with the run's
// batcher when it qualifies (see the package comment above).
func (rc *RunContext) attachBatcher(b *rlcc.Batcher, ctrl cc.Controller, flowID int) {
	if b == nil {
		return
	}
	if c, ok := ctrl.(*rlcc.Controller); ok {
		c.AttachBatcher(b, flowID)
	}
}

// recordBatch folds one finished run's batcher counters into the
// context's accumulator. They live beside — never inside — the metrics
// registry: a snapshot must not depend on whether batching was on.
func (rc *RunContext) recordBatch(b *rlcc.Batcher) {
	if b == nil {
		return
	}
	rc.Batch.add(b.Stats())
}
