package exp

import (
	"time"

	"libra/internal/stats"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "fig15",
		Title: "Convergence of three staggered flows (includes Tab. 5 metrics)",
		Paper: "Tab. 5: conv time BBR 6.2s, CUBIC 14.8s, Indigo 5.4s, Proteus 17.2s, Orca 7.8s, C-Libra 3.6s, B-Libra 4.1s; Mod-RL never converges; Indigo equilibrium under-utilises (8.2 vs ~16 Mbps)",
		Run:   runFig15,
	})
	Register(Experiment{
		ID:    "tab6",
		Title: "Safety assurance: utilisation statistics over repeated trials",
		Paper: "Libra's range 3.2-11.7% vs Orca's 13.1-28.8%; Libra stddev 0.17-0.52x Orca's",
		Run:   runTab6,
	})
}

func runFig15(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 50 * time.Second
	if rc.Quick {
		dur = 30 * time.Second
	}
	ccas := []string{"bbr", "cubic", "mod-rl", "indigo", "proteus", "orca", "c-libra", "b-libra"}
	s := fairnessScenario(dur) // 48 Mbps, 100 ms, 1 BDP

	runs := Sweep(rc, len(ccas), func(jc *RunContext, i int) []Metrics {
		mk := mustMaker(ccas[i], jc.agents(), nil)
		return jc.RunFlows(s, []Maker{mk, mk, mk},
			[]time.Duration{0, 5 * time.Second, 10 * time.Second}, time.Second)
	})

	metrics := Table{Name: "Tab.5 metrics for the third flow (enters at 10s)",
		Cols: []string{"cca", "conv time(s)", "thr stddev(Mbps)", "avg thr(Mbps)", "jain(all 3)"}}
	var seriesTables []Table
	for i, name := range ccas {
		ms := runs[i]
		third := ms[2].Flow
		// Rate series of the third flow from its entry.
		nsec := int(dur / time.Second)
		rates := third.Stats.Throughput.Rates(nsec)[10:]
		mbps := make([]float64, len(rates))
		for ri, r := range rates {
			mbps[ri] = trace.ToMbps(r)
		}
		conv := stats.Convergence(mbps, time.Second, 0.25, 5*time.Second)
		convCell := "-"
		stdCell, meanCell := "-", "-"
		if conv.Converged {
			convCell = fmtF(conv.Time.Seconds(), 1)
			stdCell = fmtF(conv.StdDev, 2)
			meanCell = fmtF(conv.Mean, 1)
		}
		j := stats.JainIndex([]float64{ms[0].ThrMbps, ms[1].ThrMbps, ms[2].ThrMbps})
		metrics.AddRow(name, convCell, stdCell, meanCell, fmtF(j, 3))

		if !rc.Quick {
			st := Table{Name: "per-second throughput (Mbps) — " + name,
				Cols: []string{"t(s)", "flow1", "flow2", "flow3"}}
			for t := 0; t < nsec; t += 2 {
				st.AddRow(fmtF(float64(t), 0),
					fmtF(trace.ToMbps(ms[0].Flow.Stats.Throughput.Rate(t)), 1),
					fmtF(trace.ToMbps(ms[1].Flow.Stats.Throughput.Rate(t)), 1),
					fmtF(trace.ToMbps(ms[2].Flow.Stats.Throughput.Rate(t)), 1))
			}
			seriesTables = append(seriesTables, st)
		}
	}
	return &Report{ID: "fig15", Title: "Convergence dynamics",
		Tables: append([]Table{metrics}, seriesTables...)}
}

func runTab6(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 30 * time.Second
	trials := 20
	if rc.Quick {
		dur = 10 * time.Second
		trials = 6
	}
	ccas := []string{"orca", "c-libra", "b-libra"}

	type scen struct {
		name string
		mk   func(seed int64) Scenario
	}
	scens := []scen{
		{"Wired#1(24Mbps)", func(seed int64) Scenario {
			return Scenario{Capacity: trace.Constant(trace.Mbps(24)), MinRTT: 30 * time.Millisecond, Buffer: 150_000, Duration: dur}
		}},
		{"Wired#2(48Mbps)", func(seed int64) Scenario {
			return Scenario{Capacity: trace.Constant(trace.Mbps(48)), MinRTT: 30 * time.Millisecond, Buffer: 150_000, Duration: dur}
		}},
		{"LTE#1(stationary)", func(seed int64) Scenario {
			return Scenario{Capacity: trace.NewLTE(trace.LTEStationary, dur, seed), MinRTT: 30 * time.Millisecond, Buffer: 150_000, Duration: dur}
		}},
		{"LTE#2(moving)", func(seed int64) Scenario {
			return Scenario{Capacity: trace.NewLTE(trace.LTEWalking, dur, seed), MinRTT: 30 * time.Millisecond, Buffer: 150_000, Duration: dur}
		}},
	}

	// One job per (scenario, cca, trial); the trial's scenario is built
	// from the job seed so LTE channels differ across trials.
	utils := Sweep(rc, len(scens)*len(ccas)*trials, func(jc *RunContext, i int) float64 {
		sci := i / (len(ccas) * trials)
		ci := i / trials % len(ccas)
		return jc.RunFlow(scens[sci].mk(jc.Seed), mustMaker(ccas[ci], jc.agents(), nil), 0).Util
	})

	tbl := Table{Name: "link utilisation over repeated trials",
		Cols: []string{"scenario", "cca", "mean", "range", "stddev"}}
	for sci, sc := range scens {
		for ci, name := range ccas {
			lo := (sci*len(ccas) + ci) * trials
			us := utils[lo : lo+trials]
			tbl.AddRow(sc.name, name, fmtF(stats.Mean(us), 3),
				fmtF(stats.Range(us), 3), fmtF(stats.StdDev(us), 3))
		}
	}
	return &Report{ID: "tab6", Title: "Safety assurance", Tables: []Table{tbl}}
}
