package exp

import (
	"fmt"
	"time"

	"libra/internal/core"
	"libra/internal/netem/faults"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "figa1",
		Title: "Adversarial sweep: fault classes vs controllers",
		Paper: "Robustness extension (not in the paper): Libra variants degrade gracefully and recover from blackouts without stalling, where a pure RL agent has no fallback",
		Run:   runFigA1,
	})
}

// runFigA1 drives each controller through every fault class on a fixed
// wired path and reports throughput/delay/loss plus Libra's skipped
// (no-feedback) cycle count — the visible footprint of the no-ACK
// watchdog.
func runFigA1(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 60 * time.Second
	classes := []string{"none", "bursty", "blackout", "reorder", "jitter", "dup", "cap-flap", "hostile"}
	if rc.Quick {
		dur = 12 * time.Second
		classes = []string{"none", "bursty", "blackout", "cap-flap"}
	}
	ccas := []string{"cubic", "bbr", "mod-rl", "c-libra", "b-libra"}

	scens := make([]Scenario, len(classes))
	for i, class := range classes {
		var plan *faults.Plan
		if class != "none" {
			p, ok := faults.Preset(class)
			if !ok {
				panic("figa1: missing preset " + class)
			}
			plan = p
		}
		scens[i] = Scenario{
			Name:     "adversarial-" + class,
			Capacity: trace.Constant(trace.Mbps(24)),
			MinRTT:   40 * time.Millisecond,
			Buffer:   150_000,
			Duration: dur,
			Faults:   plan,
		}
	}

	ms := Sweep(rc, len(classes)*len(ccas), func(jc *RunContext, i int) Metrics {
		return jc.RunFlow(scens[i/len(ccas)], mustMaker(ccas[i%len(ccas)], jc.agents(), nil), 0)
	})

	tbl := Table{Name: "per fault class: throughput (Mbps), delay (ms), loss (%), skipped cycles",
		Cols: []string{"fault", "cca", "thr", "delay", "loss%", "skipped"}}
	for si, class := range classes {
		for ci, name := range ccas {
			m := ms[si*len(ccas)+ci]
			if m.Failed {
				tbl.AddRow(class, name, "failed", "-", "-", "-")
				continue
			}
			skipped := "-"
			if lb, ok := m.Ctrl.(*core.Libra); ok {
				skipped = fmt.Sprintf("%d", lb.Telemetry().Skipped)
			}
			tbl.AddRow(class, name, fmtF(m.ThrMbps, 2), fmtF(m.DelayMs, 0), fmtF(m.LossRate*100, 2), skipped)
		}
	}
	return &Report{ID: "figa1", Title: "Behaviour under injected faults", Tables: []Table{tbl}}
}
