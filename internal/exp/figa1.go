package exp

import (
	"fmt"
	"time"

	"libra/internal/core"
	"libra/internal/netem/faults"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "figa1",
		Title: "Adversarial sweep: fault classes vs controllers",
		Paper: "Robustness extension (not in the paper): Libra variants degrade gracefully and recover from blackouts without stalling, where a pure RL agent has no fallback",
		Run:   runFigA1,
	})
}

// runFigA1 drives each controller through every fault class on a fixed
// wired path and reports throughput/delay/loss plus Libra's skipped
// (no-feedback) cycle count — the visible footprint of the no-ACK
// watchdog.
func runFigA1(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 60 * time.Second
	classes := []string{"none", "bursty", "blackout", "reorder", "jitter", "dup", "cap-flap", "hostile"}
	if cfg.Quick {
		dur = 12 * time.Second
		classes = []string{"none", "bursty", "blackout", "cap-flap"}
	}
	ccas := []string{"cubic", "bbr", "mod-rl", "c-libra", "b-libra"}
	ag := cfg.agents()

	tbl := Table{Name: "per fault class: throughput (Mbps), delay (ms), loss (%), skipped cycles",
		Cols: []string{"fault", "cca", "thr", "delay", "loss%", "skipped"}}
	for _, class := range classes {
		var plan *faults.Plan
		if class != "none" {
			p, ok := faults.Preset(class)
			if !ok {
				panic("figa1: missing preset " + class)
			}
			plan = p
		}
		s := Scenario{
			Name:     "adversarial-" + class,
			Capacity: trace.Constant(trace.Mbps(24)),
			MinRTT:   40 * time.Millisecond,
			Buffer:   150_000,
			Duration: dur,
			Faults:   plan,
		}
		for _, name := range ccas {
			m := RunFlow(s, mustMaker(name, ag, nil), cfg.Seed, 0)
			if m.Failed {
				tbl.AddRow(class, name, "failed", "-", "-", "-")
				continue
			}
			skipped := "-"
			if lb, ok := m.Ctrl.(*core.Libra); ok {
				skipped = fmt.Sprintf("%d", lb.Telemetry().Skipped)
			}
			tbl.AddRow(class, name, fmtF(m.ThrMbps, 2), fmtF(m.DelayMs, 0), fmtF(m.LossRate*100, 2), skipped)
		}
	}
	return &Report{ID: "figa1", Title: "Behaviour under injected faults", Tables: []Table{tbl}}
}
