package exp

import (
	"sync"

	"libra/internal/netem/faults"
	"libra/internal/sweep"
	"libra/internal/telemetry"
	"libra/internal/utility"
)

// RunContext carries everything one experiment run owns: the seed, the
// quick/full switch, the worker budget, the metrics registry, the
// tracer, the fault plan, and the trained agent set. It replaces the
// package-level harness globals (metrics registry, tracer, fault plan,
// lazily-trained agents) so concurrent runs cannot observe each other
// and a sweep can give every job a private context.
//
// Contexts form a two-level tree: experiments receive a top-level
// context and fan independent jobs out via Sweep, which hands each job
// a derived child context (sub-derived seed, fresh registry, buffered
// tracer, cloned agents). All fields are set before the run starts and
// never mutated during one, so concurrent jobs may read their parent
// freely.
type RunContext struct {
	// Quick reduces durations and repeat counts so the whole suite runs
	// in benchmark/CI budgets; the full version matches the paper's
	// setup more closely.
	Quick bool
	// Seed drives all stochastic choices. Jobs spawned via Sweep get
	// sweep.SubSeed-derived seeds, so results are independent of worker
	// count and of how many jobs ran before.
	Seed int64
	// Workers bounds Sweep's concurrency; 0 means GOMAXPROCS.
	Workers int
	// Tracer receives telemetry events from every network and traceable
	// controller the runner builds. Sweep jobs record into private
	// buffers that replay into this sink in job order, so the event
	// stream is byte-identical at any worker count. Nil disables.
	Tracer telemetry.Tracer
	// Metrics is the run's registry. Sweep jobs record into private
	// registries merged here in job order.
	Metrics *telemetry.Registry
	// FaultPlan applies to scenarios that don't carry their own
	// (libra-bench -fault). Nil means no faults.
	FaultPlan *faults.Plan
	// Topo applies to scenarios that don't carry their own topology
	// (libra-bench -topo). Nil means the single-bottleneck path.
	Topo *TopoSpec
	// Agents supplies pre-trained policies; a small quick-trained set is
	// built lazily (cached per seed) when nil and an experiment needs
	// one. Sweep jobs always work on a private clone, because the
	// learning CCAs mutate their normaliser and sample from the policy
	// RNG at inference time.
	Agents *AgentSet
	// Live receives flow-id → controller-name registrations as the
	// runner builds flows; the live dashboard implements it. Nil
	// disables. Implementations must be safe for concurrent use —
	// Sweep jobs share their parent's registrar.
	Live FlowRegistrar
	// Health, when set, has every network engine the runner builds
	// registered for the duration of its run, feeding the runtime
	// health gauges. Health is goroutine-safe and shared by Sweep jobs;
	// its wall-clock-derived gauges are deliberately outside the
	// determinism guarantees that cover Metrics and Tracer.
	Health *telemetry.Health
	// NoBatch disables the shared-agent inference batcher, forcing
	// every learning flow onto the sequential per-flow forward-pass
	// path. The batched and unbatched paths are bit-identical by
	// construction; the knob exists for A/B benchmarking and for the
	// equivalence tests that prove it.
	NoBatch bool
	// Batch accumulates inference-batcher work counters across every
	// engine run the context records; Sweep jobs fold into their
	// parent's accumulator. Deliberately kept outside Metrics so
	// batched and unbatched runs snapshot identical registries.
	Batch *BatchCounters

	// parent links a Sweep job back to the context that spawned it.
	parent *RunContext
	// jobAgents caches this job's private agent clone.
	jobAgents *AgentSet
	// cache shares lazily-trained agent sets (per seed) across the
	// whole context tree.
	cache *agentCache
	// train builds the lazy agent set for a seed; a seam for tests that
	// must observe training calls without paying for real training.
	train func(seed int64) *AgentSet
}

// FlowRegistrar labels flow ids for live observers (see
// RunContext.Live). Defined here rather than in the analyzer so exp
// does not depend on the analytics engine.
type FlowRegistrar interface {
	RegisterFlow(id int, name string)
}

// NewRunContext returns a ready-to-use context for the given seed with
// every other knob at its default.
func NewRunContext(seed int64) *RunContext {
	rc := &RunContext{Seed: seed}
	return rc.WithDefaults()
}

// WithDefaults fills zero fields in place (idempotent) and returns rc
// for chaining. Every harness entry point calls it, so a literal
// &RunContext{Quick: true} is a valid argument anywhere.
func (rc *RunContext) WithDefaults() *RunContext {
	if rc.Seed == 0 {
		rc.Seed = 1
	}
	if rc.Metrics == nil {
		rc.Metrics = telemetry.NewRegistry()
	}
	if rc.Batch == nil {
		rc.Batch = &BatchCounters{}
	}
	if rc.cache == nil {
		rc.cache = &agentCache{bySeed: map[int64]*AgentSet{}}
	}
	if rc.train == nil {
		rc.train = func(seed int64) *AgentSet {
			spec := QuickTrainSpec(seed)
			spec.Workers = rc.Workers
			return TrainAgentSet(spec)
		}
	}
	return rc
}

// agentCache shares lazily-trained agent sets keyed by seed, fixing
// the old sync.Once bug where the first caller's seed trained the set
// every later run silently reused.
type agentCache struct {
	mu     sync.Mutex
	bySeed map[int64]*AgentSet
}

func (c *agentCache) get(seed int64, train func(int64) *AgentSet) *AgentSet {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a, ok := c.bySeed[seed]; ok {
		return a
	}
	a := train(seed)
	c.bySeed[seed] = a
	return a
}

// agents returns the agent set this context should run with. A
// top-level context uses its explicit set or trains one lazily per
// seed; a Sweep job clones its parent's set, because inference mutates
// normaliser statistics and policy RNG state and a shared set across
// concurrent jobs would race (and order results by scheduling).
func (rc *RunContext) agents() *AgentSet {
	rc.WithDefaults()
	if rc.parent != nil {
		if rc.jobAgents == nil {
			rc.jobAgents = rc.parent.agents().Clone(rc.Seed)
		}
		return rc.jobAgents
	}
	if rc.Agents != nil {
		return rc.Agents
	}
	return rc.cache.get(rc.Seed, rc.train)
}

// Reseed points the context at a different seed and drops the cached
// per-job agent clone, which was trained/cloned for the old seed. Lab
// evaluations use this so every candidate scenario in a sweep batch
// runs at its own recorded seed instead of the job-index seed the
// sweep assigned — the objective must depend on the scenario, not on
// where it landed in the batch.
func (rc *RunContext) Reseed(seed int64) *RunContext {
	rc.Seed = seed
	rc.jobAgents = nil
	return rc
}

// child builds the context for Sweep job i: sub-derived seed, private
// registry, buffered tracer (when the parent traces), shared fault
// plan and agent cache, serial workers (nested Sweeps inside a job run
// inline rather than oversubscribing the pool).
func (rc *RunContext) child(i int) *RunContext {
	jc := &RunContext{
		Quick:     rc.Quick,
		Seed:      sweep.SubSeed(rc.Seed, i),
		Workers:   1,
		Metrics:   telemetry.NewRegistry(),
		FaultPlan: rc.FaultPlan,
		Topo:      rc.Topo,
		Live:      rc.Live,
		Health:    rc.Health,
		NoBatch:   rc.NoBatch,
		Batch:     rc.Batch,
		parent:    rc,
		cache:     rc.cache,
		train:     rc.train,
	}
	if telemetry.Enabled(rc.Tracer) {
		jc.Tracer = &telemetry.Buffer{}
	}
	return jc
}

// Sweep runs n independent jobs on rc.Workers workers and returns
// their results in job order. Each job gets a child context (see
// child); job registries merge into rc.Metrics and trace buffers
// replay into rc.Tracer strictly in job order — streamed as each
// ordered prefix of jobs completes, so live observers (the flow
// dashboard tapping rc.Tracer) see progress during the sweep rather
// than one burst at the end. The merged stream is identical at every
// worker count — including 1 — so a sweep's report, metrics snapshot,
// and event stream are byte-identical regardless of parallelism.
func Sweep[T any](rc *RunContext, n int, job func(jc *RunContext, i int) T) []T {
	rc.WithDefaults()
	var (
		mu      sync.Mutex
		kids    = make([]*RunContext, n)
		flushed int
	)
	// flush merges every completed job in the contiguous prefix beyond
	// the high-water mark. Callers hold mu, which also serialises access
	// to rc.Metrics and rc.Tracer (single-goroutine sinks).
	flush := func() {
		for flushed < n && kids[flushed] != nil {
			jc := kids[flushed]
			rc.Metrics.Merge(jc.Metrics)
			if b, ok := jc.Tracer.(*telemetry.Buffer); ok {
				b.ReplayTo(rc.Tracer)
			}
			flushed++
		}
	}
	out := sweep.Map(rc.Workers, n, func(i int) T {
		jc := rc.child(i)
		res := job(jc, i)
		mu.Lock()
		kids[i] = jc
		flush()
		mu.Unlock()
		return res
	})
	// The pool has drained, so every job is recorded; flush whatever
	// tail the last completion left behind.
	mu.Lock()
	flush()
	mu.Unlock()
	return out
}

// CCAMaker returns a job-scoped controller factory for the named CCA:
// called with a job context, it resolves the job's (cloned) agent set
// and builds the maker there, keeping agent state private to the job.
// It is the standard argument to Repeat and the common body of Sweep
// jobs; the name must be known (it panics like mustMaker otherwise).
func CCAMaker(name string, util utility.Func) func(*RunContext) Maker {
	return func(jc *RunContext) Maker {
		var ag *AgentSet
		if ccaUsesAgents(name) {
			ag = jc.agents()
		}
		return mustMaker(name, ag, util)
	}
}
