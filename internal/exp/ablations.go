package exp

import (
	"time"

	"libra/internal/cc"
	"libra/internal/cc/illinois"
	"libra/internal/cc/westwood"
	"libra/internal/core"
	"libra/internal/rlcc"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "abl-order",
		Title: "Ablation: lower-rate-first vs higher-rate-first evaluation ordering (Fig. 4)",
		Paper: "Fig. 4 argues trying the higher rate first inflates the lower candidate's delay/loss and flips decisions; lower-first minimises the self-inflicted side effect",
		Run:   runAblOrder,
	})
	Register(Experiment{
		ID:    "abl-classics",
		Title: "Ablation: Libra over CUBIC vs Westwood vs Illinois (Sec. 7 generality)",
		Paper: "Sec. 7: the CUBIC/BBR parameter settings extend to a wide range of classic CCAs (e.g. Westwood, Illinois)",
		Run:   runAblClassics,
	})
	Register(Experiment{
		ID:    "sec7-networks",
		Title: "Discussion scenarios: satellite (long RTT, high loss) and 5G (abrupt capacity swings)",
		Paper: "Sec. 7: Libra should handle satellite's long RTT + stochastic loss and 5G's abrupt capacity fluctuation via its adaptability",
		Run:   runSec7,
	})
}

// libraVariant builds a Libra maker with full structural control.
func libraVariant(ag *AgentSet, mutate func(*core.Config)) Maker {
	return func(seed int64) cc.Controller {
		base := cc.Config{Seed: seed}.WithDefaults()
		rlCfg := rlcc.LibraRLConfig(base)
		if ag != nil {
			rlCfg.Agent = ag.LibraRL
			rlCfg.Norm = ag.LibraNorm
		}
		cfg := core.Config{
			CC:      base,
			Classic: core.NewCubicAdapter(base),
			RL:      rlcc.New("libra-rl", rlCfg),
			Name:    "c-libra",
		}
		if mutate != nil {
			mutate(&cfg)
		}
		return core.New(cfg)
	}
}

func runAblOrder(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 40 * time.Second
	reps := 3
	if rc.Quick {
		dur = 12 * time.Second
		reps = 1
	}
	scens := append(WiredScenarios(dur, 24, 48), LTEScenarios(dur, rc.Seed)[:2]...)
	orders := []struct {
		name   string
		higher bool
	}{{"lower-rate-first (paper)", false}, {"higher-rate-first (ablated)", true}}

	ms := Sweep(rc, len(orders)*len(scens)*reps, func(jc *RunContext, i int) Metrics {
		oi := i / (len(scens) * reps)
		si := i / reps % len(scens)
		mk := libraVariant(jc.agents(), func(c *core.Config) { c.HigherRateFirst = orders[oi].higher })
		return jc.RunFlow(scens[si], mk, 0)
	})

	tbl := Table{Name: "evaluation ordering", Cols: []string{"order", "avg util", "avg delay(ms)", "avg loss"}}
	for oi, ord := range orders {
		var u, d, lo float64
		n := len(scens) * reps
		for k := 0; k < n; k++ {
			m := ms[oi*n+k]
			u += m.Util
			d += m.DelayMs
			lo += m.LossRate
		}
		tbl.AddRow(ord.name, fmtF(u/float64(n), 3), fmtF(d/float64(n), 0), fmtF(lo/float64(n), 4))
	}
	return &Report{ID: "abl-order", Title: "Evaluation-order ablation", Tables: []Table{tbl}}
}

func runAblClassics(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 40 * time.Second
	if rc.Quick {
		dur = 12 * time.Second
	}
	scens := append(WiredScenarios(dur, 24, 48), LTEScenarios(dur, rc.Seed)[:2]...)

	// Makers are built inside jobs, so each variant is a factory over the
	// job's agent set.
	variants := []struct {
		name string
		mk   func(ag *AgentSet) Maker
	}{
		{"c-libra (CUBIC)", func(ag *AgentSet) Maker { return mustMaker("c-libra", ag, nil) }},
		{"w-libra (Westwood)", func(ag *AgentSet) Maker {
			return libraVariant(ag, func(c *core.Config) {
				c.Classic = core.NewWindowAdapter(westwood.New(c.CC))
				c.Name = "w-libra"
			})
		}},
		{"i-libra (Illinois)", func(ag *AgentSet) Maker {
			return libraVariant(ag, func(c *core.Config) {
				c.Classic = core.NewWindowAdapter(illinois.New(c.CC))
				c.Name = "i-libra"
			})
		}},
		{"cubic alone", func(ag *AgentSet) Maker { return mustMaker("cubic", ag, nil) }},
		{"westwood alone", func(ag *AgentSet) Maker {
			return func(seed int64) cc.Controller { return westwood.New(cc.Config{Seed: seed}) }
		}},
		{"illinois alone", func(ag *AgentSet) Maker {
			return func(seed int64) cc.Controller { return illinois.New(cc.Config{Seed: seed}) }
		}},
	}

	ms := Sweep(rc, len(variants)*len(scens), func(jc *RunContext, i int) Metrics {
		return jc.RunFlow(scens[i%len(scens)], variants[i/len(scens)].mk(jc.agents()), 0)
	})

	tbl := Table{Name: "Libra over different classic CCAs (avg of 4 scenarios)",
		Cols: []string{"variant", "util", "avg delay(ms)", "loss"}}
	for vi, v := range variants {
		var u, d, lo float64
		for si := range scens {
			m := ms[vi*len(scens)+si]
			u += m.Util
			d += m.DelayMs
			lo += m.LossRate
		}
		n := float64(len(scens))
		tbl.AddRow(v.name, fmtF(u/n, 3), fmtF(d/n, 0), fmtF(lo/n, 4))
	}
	return &Report{ID: "abl-classics", Title: "Classic-CCA generality", Tables: []Table{tbl}}
}

func runSec7(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 40 * time.Second
	if rc.Quick {
		dur = 15 * time.Second
	}
	ccas := []string{"c-libra", "b-libra", "cubic", "bbr", "proteus", "orca"}

	// Satellite: geostationary-class RTT with stochastic loss.
	sat := Scenario{
		Name:     "satellite",
		Capacity: trace.Constant(trace.Mbps(20)),
		MinRTT:   600 * time.Millisecond,
		Buffer:   1_500_000,
		Loss:     0.02,
		Duration: dur,
	}
	// 5G mmWave-like: abrupt swings between very high and low capacity.
	fiveG := Scenario{
		Name: "5g",
		Capacity: &trace.Step{Period: 2 * time.Second,
			Levels: []float64{trace.Mbps(400), trace.Mbps(50), trace.Mbps(300), trace.Mbps(20)}},
		MinRTT:   20 * time.Millisecond,
		Buffer:   2_000_000,
		Duration: dur,
	}
	scens := []Scenario{sat, fiveG}

	ms := Sweep(rc, len(scens)*len(ccas), func(jc *RunContext, i int) Metrics {
		return jc.RunFlow(scens[i/len(ccas)], mustMaker(ccas[i%len(ccas)], jc.agents(), nil), 0)
	})

	var tables []Table
	for si, s := range scens {
		tbl := Table{Name: s.Name, Cols: []string{"cca", "util", "avg delay(ms)", "loss"}}
		for ci, name := range ccas {
			m := ms[si*len(ccas)+ci]
			tbl.AddRow(name, fmtF(m.Util, 3), fmtF(m.DelayMs, 0), fmtF(m.LossRate, 4))
		}
		tables = append(tables, tbl)
	}
	return &Report{ID: "sec7-networks", Title: "Satellite and 5G scenarios", Tables: tables}
}
