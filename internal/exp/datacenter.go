package exp

import (
	"time"

	"libra/internal/netem"
	"libra/internal/stats"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "sec7-datacenter",
		Title: "Discussion scenario: ECN datacenter fabric — DCTCP vs D-Libra vs CUBIC",
		Paper: "Sec. 7: Libra can replace its classic counterpart with CCAs designed for specific networks to leverage new properties (e.g., ECN marking) in datacenters",
		Run:   runSec7DC,
	})
}

func runSec7DC(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	dur := 5 * time.Second
	if cfg.Quick {
		dur = 2 * time.Second
	}
	ag := cfg.agents()
	const nFlows = 4

	run := func(name string) (util, delayMs, jain float64) {
		n := netem.New(netem.Config{
			Capacity:     trace.Constant(trace.Mbps(100)),
			MinRTT:       time.Millisecond,
			BufferBytes:  500_000,
			ECNThreshold: 32_000,
			Seed:         cfg.Seed,
		})
		mk := mustMaker(name, ag, nil)
		flows := make([]*netem.Flow, nFlows)
		for i := range flows {
			flows[i] = n.AddFlow(mk(cfg.Seed+int64(i)*13), 0, 0)
		}
		n.Run(dur)
		thr := make([]float64, nFlows)
		var dsum float64
		for i, f := range flows {
			thr[i] = f.Stats.AvgThroughput()
			dsum += float64(f.Stats.AvgRTT()) / float64(time.Millisecond)
		}
		return n.Utilization(dur), dsum / nFlows, stats.JainIndex(thr)
	}

	tbl := Table{Name: "4 flows, 100 Mbps / 1 ms RTT fabric, ECN mark at 32 KB",
		Cols: []string{"cca", "util", "avg delay(ms)", "jain"}}
	for _, name := range []string{"dctcp", "d-libra", "c-libra", "cubic", "reno"} {
		u, d, j := run(name)
		tbl.AddRow(name, fmtF(u, 3), fmtF(d, 2), fmtF(j, 3))
	}
	return &Report{ID: "sec7-datacenter", Title: "Datacenter ECN scenario",
		Tables: []Table{tbl},
		Notes:  []string{"DCTCP and D-Libra should hold delay near the marking threshold; loss-based CCAs fill the 500KB buffer (40ms)"}}
}
