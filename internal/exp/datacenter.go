package exp

import (
	"time"

	"libra/internal/netem"
	"libra/internal/stats"
	"libra/internal/sweep"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "sec7-datacenter",
		Title: "Discussion scenario: ECN datacenter fabric — DCTCP vs D-Libra vs CUBIC",
		Paper: "Sec. 7: Libra can replace its classic counterpart with CCAs designed for specific networks to leverage new properties (e.g., ECN marking) in datacenters",
		Run:   runSec7DC,
	})
}

func runSec7DC(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 5 * time.Second
	if rc.Quick {
		dur = 2 * time.Second
	}
	const nFlows = 4
	ccas := []string{"dctcp", "d-libra", "c-libra", "cubic", "reno"}

	type res struct{ util, delayMs, jain float64 }
	rs := Sweep(rc, len(ccas), func(jc *RunContext, i int) res {
		n := netem.New(netem.Config{
			Capacity:     trace.Constant(trace.Mbps(100)),
			MinRTT:       time.Millisecond,
			BufferBytes:  500_000,
			ECNThreshold: 32_000,
			Seed:         jc.Seed,
		})
		mk := mustMaker(ccas[i], jc.agents(), nil)
		flows := make([]*netem.Flow, nFlows)
		for fi := range flows {
			flows[fi] = n.AddFlow(mk(sweep.SubSeed(jc.Seed, fi)), 0, 0)
		}
		n.Run(dur)
		jc.ObserveLink(n, dur)
		thr := make([]float64, nFlows)
		var dsum float64
		for fi, f := range flows {
			thr[fi] = f.Stats.AvgThroughput()
			dsum += float64(f.Stats.AvgRTT()) / float64(time.Millisecond)
		}
		return res{util: n.Utilization(dur), delayMs: dsum / nFlows, jain: stats.JainIndex(thr)}
	})

	tbl := Table{Name: "4 flows, 100 Mbps / 1 ms RTT fabric, ECN mark at 32 KB",
		Cols: []string{"cca", "util", "avg delay(ms)", "jain"}}
	for i, name := range ccas {
		tbl.AddRow(name, fmtF(rs[i].util, 3), fmtF(rs[i].delayMs, 2), fmtF(rs[i].jain, 3))
	}
	return &Report{ID: "sec7-datacenter", Title: "Datacenter ECN scenario",
		Tables: []Table{tbl},
		Notes:  []string{"DCTCP and D-Libra should hold delay near the marking threshold; loss-based CCAs fill the 500KB buffer (40ms)"}}
}
