package exp

import "libra/internal/cc"

// memSizer is implemented by controllers that can estimate their
// resident memory (model weights plus buffers).
type memSizer interface {
	MemBytes() int
}

// ownSizer is implemented by learning controllers that can separate
// their per-flow residual (state history, feature scratch, private
// normaliser) from an agent that may be shared with other flows.
type ownSizer interface {
	OwnMemBytes() int
	SharesAgent() bool
}

// controllerMemBytes estimates a controller's resident memory for the
// Fig. 2(c) overhead comparison. Learning-based controllers report
// their model sizes; classic algorithms are a few hundred bytes of
// scalar state.
func controllerMemBytes(c cc.Controller) int {
	if m, ok := c.(memSizer); ok {
		return m.MemBytes()
	}
	switch c.Name() {
	case "vivace", "proteus":
		// DeferredMonitor intervals + learning scalars.
		return 4096
	case "remy":
		return 2048 // rule table
	case "indigo":
		return 3072 // policy weights / oracle state
	default:
		return 512 // classic scalar state
	}
}

// ControllerOwnMemBytes is controllerMemBytes minus any agent supplied
// from outside the controller. Per-controller MemBytes assumes the
// agent is owned outright, so a sum over N flows sharing one agent
// counts the weights N times; deployments that account a shared set
// once (AgentSet.MemBytes) add this residual per flow instead.
// Controllers that own their agent — or cannot tell — report their
// full estimate.
func ControllerOwnMemBytes(c cc.Controller) int {
	if o, ok := c.(ownSizer); ok && o.SharesAgent() {
		return o.OwnMemBytes()
	}
	return controllerMemBytes(c)
}
