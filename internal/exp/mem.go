package exp

import "libra/internal/cc"

// memSizer is implemented by controllers that can estimate their
// resident memory (model weights plus buffers).
type memSizer interface {
	MemBytes() int
}

// controllerMemBytes estimates a controller's resident memory for the
// Fig. 2(c) overhead comparison. Learning-based controllers report
// their model sizes; classic algorithms are a few hundred bytes of
// scalar state.
func controllerMemBytes(c cc.Controller) int {
	if m, ok := c.(memSizer); ok {
		return m.MemBytes()
	}
	switch c.Name() {
	case "vivace", "proteus":
		// DeferredMonitor intervals + learning scalars.
		return 4096
	case "remy":
		return 2048 // rule table
	case "indigo":
		return 3072 // policy weights / oracle state
	default:
		return 512 // classic scalar state
	}
}
