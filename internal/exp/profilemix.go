package exp

import (
	"fmt"
	"time"

	"libra/internal/analyze"
	"libra/internal/telemetry"
)

func init() {
	Register(Experiment{
		ID:    "profiles",
		Title: "Mixed utility profiles on the parking-lot topology: per-profile SLO attainment",
		Paper: "Sec. 2 preference diversity — one framework serving bulk, low-latency, video-call, and background flows at once, each meeting its own objective",
		Run:   runProfileMix,
	})
}

// runProfileMix drives one flow per preset profile over the shared
// parking-lot path and evaluates the per-profile SLOs with a live
// analyzer tap. A single mixed run (no sweep): the analyzer must see
// the interleaved event stream to window SLO attainment, so the tap
// rides the context's tracer via a copied context rather than the
// sweep machinery (whose job tracers must stay raw Buffers for
// deterministic replay).
func runProfileMix(rc *RunContext) *Report {
	rc.WithDefaults()
	dur := 30 * time.Second
	if rc.Quick {
		dur = 8 * time.Second
	}

	profiles := []string{"bulk", "low-latency", "video-call", "background"}
	mks := make([]Maker, len(profiles))
	for i, name := range profiles {
		p, err := ProfileByName(name)
		if err != nil {
			panic(err) // static names
		}
		mk, err := p.Maker(rc.Agents)
		if err != nil {
			panic(err)
		}
		mks[i] = mk
	}

	a := analyze.New(analyze.Config{})
	sub := *rc
	sub.Tracer = telemetry.Multi(rc.Tracer, a)

	ts, _ := TopoPreset("parking-lot")
	s := Scenario{Name: "profile-mix", Duration: dur, Topo: ts, Profiles: profiles}
	ms := sub.RunFlows(s, mks, nil, time.Second)
	a.Finalize()
	ar := a.Report()
	ar.ExportMetrics(rc.Metrics)

	rep := &Report{ID: "profiles", Title: "Per-profile SLO attainment (parking-lot, one flow per profile)"}
	tb := Table{
		Name: fmt.Sprintf("profile mix over %s", dur),
		Cols: []string{"profile", "cca", "thr Mbps", "rtt p95 ms", "utility", "SLO", "attainment", "first viol"},
	}
	// Index the analyzer's per-profile and SLO views by profile name.
	slos := map[string]analyze.SLOReport{}
	for _, sr := range ar.SLOs {
		slos[sr.Spec.Profile] = sr
	}
	prs := map[string]analyze.ProfileReport{}
	for _, pr := range ar.Profiles {
		prs[pr.Profile] = pr
	}
	for i, name := range profiles {
		thr, util := 0.0, 0.0
		cca := "?"
		if i < len(ms) && !ms[i].Failed {
			thr = ms[i].ThrMbps
			cca = ms[i].Ctrl.Name()
		}
		for _, fr := range ar.Flows {
			if fr.ID == i {
				util = fr.Decomp.MeanUtility
				break
			}
		}
		p95 := prs[name].RTTMs.P95
		spec, att, first := "-", "-", "-"
		if sr, ok := slos[name]; ok {
			spec = sr.Spec.String()
			att = fmtF(100*sr.Attainment, 1) + "%"
			if sr.FirstViolationMs >= 0 {
				first = fmtF(sr.FirstViolationMs/1000, 1) + "s"
			} else {
				first = "never"
			}
		}
		tb.AddRow(name, cca, fmtF(thr, 2), fmtF(p95, 1), fmtF(util, 3), spec, att, first)
	}
	rep.Tables = append(rep.Tables, tb)
	if ar.ProfileFairness != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"cross-profile Jain fairness over mean throughput: %.4f (%d profiles); flow-level Jain mean %.4f",
			ar.ProfileFairness.Jain, ar.ProfileFairness.Profiles, ar.Fairness.Mean))
	}
	rep.Notes = append(rep.Notes,
		"attainment = fraction of 1 s windows meeting the profile's SLO (see analyze.DefaultSLOs)")
	return rep
}
