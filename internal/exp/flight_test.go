package exp

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"libra/internal/netem/faults"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

// runFlightSweep drives a 3-job blackout sweep with a flight recorder
// tapped on the parent context and returns the dump directory contents.
func runFlightSweep(t *testing.T, workers int) map[string][]byte {
	t.Helper()
	plan, err := faults.Load("blackout")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fl := telemetry.NewFlightRecorder(telemetry.FlightConfig{Dir: dir})
	rc := NewRunContext(11)
	rc.Workers = workers
	// The flight recorder sits at the parent level: it sees the sweep's
	// ordered replay, never the live worker goroutines.
	rc.Tracer = fl

	s := Scenario{
		Name:     "blackout-det",
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   30 * time.Millisecond,
		Buffer:   150_000,
		Duration: 12 * time.Second,
		Faults:   plan,
	}
	Sweep(rc, 3, func(jc *RunContext, i int) Metrics {
		return jc.RunFlow(s, mustMaker("c-libra", nil, nil), 0)
	})
	if err := fl.Err(); err != nil {
		t.Fatalf("flight recorder error: %v", err)
	}
	if fl.Dumps() == 0 {
		t.Fatal("blackout sweep triggered no flight dumps")
	}

	out := map[string][]byte{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = b
	}
	return out
}

// TestFlightDumpsDeterministicAcrossWorkers is the flight-recorder
// determinism contract: a faulted sweep must produce byte-identical
// dump files at any worker count, because the recorder consumes the
// ordered replay rather than the racy live streams.
func TestFlightDumpsDeterministicAcrossWorkers(t *testing.T) {
	serial := runFlightSweep(t, 1)
	parallel := runFlightSweep(t, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("dump counts differ: %d files at workers=1, %d at workers=4", len(serial), len(parallel))
	}
	for name, want := range serial {
		got, ok := parallel[name]
		if !ok {
			t.Errorf("workers=4 run missing dump %s", name)
			continue
		}
		if string(got) != string(want) {
			t.Errorf("dump %s differs between workers=1 and workers=4", name)
		}
	}
}

// TestFlightDumpsCarryOutageForensics opens one dump from a faulted
// run and checks it holds the story an operator needs: events leading
// up to the incident, the fault window, and a self-describing trigger.
func TestFlightDumpsCarryOutageForensics(t *testing.T) {
	dumps := runFlightSweep(t, 2)
	var checked bool
	for name, raw := range dumps {
		f, err := os.CreateTemp(t.TempDir(), "dump")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(raw); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Seek(0, 0); err != nil {
			t.Fatal(err)
		}
		evs, err := telemetry.ReadAll(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: not a decodable event stream: %v", name, err)
		}
		if len(evs) < 2 {
			t.Fatalf("%s: only %d events retained", name, len(evs))
		}
		kinds := map[telemetry.Type]bool{}
		for i := range evs {
			kinds[evs[i].Type] = true
			if evs[i].V != telemetry.SchemaVersion {
				t.Fatalf("%s: event %d carries schema v%d, want v%d", name, i, evs[i].V, telemetry.SchemaVersion)
			}
		}
		if kinds[telemetry.TypeNoAck] || kinds[telemetry.TypeAnomaly] {
			checked = true
		}
	}
	if !checked {
		t.Fatal("no dump contains a no_ack or anomaly event")
	}
}
