package exp

import (
	"sort"
	"time"

	"libra/internal/cc"
	"libra/internal/rlcc"
	"libra/internal/stats"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "fig5",
		Title: "Reward curves of different CCAs' state-space combinations",
		Paper: "Libra's state set (iv,vii,viii,ix) trains to the highest reward; DRL-CC and PCC next; Remy/RL-TCP lowest",
		Run:   runFig5,
	})
	Register(Experiment{
		ID:    "tab2",
		Title: "State ablation around the baseline {iv,vi,vii,viii,ix}",
		Paper: "-(vi): +5.1% reward (best); +(i)(ii): +3.7%; adding (i)/(ii)/(iii) alone hurts (-9.5..-12.4%); -(ix): -14.4%",
		Run:   runTab2,
	})
	Register(Experiment{
		ID:    "fig6",
		Title: "Reward curves of AIAD vs MIMD action spaces at scales 1/5/10",
		Paper: "MIMD learns faster and converges; AIAD needs more episodes, scale=1 slowest; all plateau near the same reward",
		Run:   runFig6,
	})
	Register(Experiment{
		ID:    "tab3",
		Title: "Reward with vs without the loss-rate term",
		Paper: "with loss: 97.2Mbps/115ms/0.72% loss; without: 98.9Mbps/197ms/37.5% loss",
		Run:   runTab3,
	})
	Register(Experiment{
		ID:    "tab4",
		Title: "Absolute reward r vs delta-r",
		Paper: "r: 99.4Mbps/173ms/14.7%/0.741 fairness; delta-r: 98.1Mbps/121ms/0.91%/0.780",
		Run:   runTab4,
	})
}

// trainCurve trains a formulation and returns bucketed episode rewards.
func trainCurve(ctrl rlcc.Config, episodes int, epLen time.Duration, seed int64) []float64 {
	env := rlcc.LaptopEnvRange()
	env.CapacityMbps = [2]float64{60, 140} // around the Sec. 4.2 default of 100 Mbps
	env.RTT = [2]time.Duration{80 * time.Millisecond, 120 * time.Millisecond}
	env.CellularFraction = 0
	res := rlcc.Train(rlcc.TrainConfig{
		Episodes:   episodes,
		EpisodeLen: epLen,
		Env:        &env,
		Ctrl:       ctrl,
		Seed:       seed,
	})
	return res.Rewards
}

// bucketMeans reduces a reward series to nBuckets means.
func bucketMeans(rs []float64, nBuckets int) []float64 {
	if nBuckets <= 0 || len(rs) == 0 {
		return nil
	}
	out := make([]float64, nBuckets)
	per := (len(rs) + nBuckets - 1) / nBuckets
	for b := 0; b < nBuckets; b++ {
		lo := b * per
		hi := lo + per
		if hi > len(rs) {
			hi = len(rs)
		}
		if lo >= hi {
			out[b] = out[b-1]
			continue
		}
		out[b] = stats.Mean(rs[lo:hi])
	}
	return out
}

func trainingScale(quick bool) (episodes int, epLen time.Duration) {
	if quick {
		return 30, 5 * time.Second
	}
	// ~200+ episodes with randomised starting rates is where the PPO
	// policies become competent at laptop scale (see EXPERIMENTS.md).
	return 150, 10 * time.Second
}

func runFig5(rc *RunContext) *Report {
	rc.WithDefaults()
	episodes, epLen := trainingScale(rc.Quick)
	spaces := rlcc.NamedStateSpaces()
	names := make([]string, 0, len(spaces))
	for n := range spaces {
		names = append(names, n)
	}
	sort.Strings(names)

	const nBuckets = 10
	curves := Sweep(rc, len(names), func(jc *RunContext, i int) []float64 {
		ctrl := rlcc.Config{CC: cc.Config{}, Features: spaces[names[i]], Action: rlcc.MIMDAurora, UseDelta: true}
		return bucketMeans(trainCurve(ctrl, episodes, epLen, jc.Seed), nBuckets)
	})

	tbl := Table{Name: "mean episode reward per training decile",
		Cols: append([]string{"state space"}, deciles(nBuckets)...)}
	for i, n := range names {
		row := []string{n}
		for _, v := range curves[i] {
			row = append(row, fmtF(v, 1))
		}
		tbl.AddRow(row...)
	}
	return &Report{ID: "fig5", Title: "State-space reward comparison", Tables: []Table{tbl}}
}

func deciles(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmtF(float64(i+1)*100/float64(n), 0) + "%"
	}
	return out
}

// evalFormulation trains a formulation briefly and then measures it on
// the Sec. 4.2 default network (100 Mbps, 100 ms RTT, 1 BDP), all
// seeded from the given (job) context.
func evalFormulation(ctrl rlcc.Config, jc *RunContext) (reward, thrMbps, delayMs, loss float64) {
	episodes, epLen := trainingScale(jc.Quick)
	env := rlcc.LaptopEnvRange()
	env.CapacityMbps = [2]float64{60, 140}
	env.RTT = [2]time.Duration{80 * time.Millisecond, 120 * time.Millisecond}
	env.CellularFraction = 0
	res := rlcc.Train(rlcc.TrainConfig{
		Episodes: episodes, EpisodeLen: epLen, Env: &env, Ctrl: ctrl, Seed: jc.Seed,
	})
	evalCfg := ctrl.WithDefaults()
	evalCfg.Agent = res.Agent
	evalCfg.Norm = res.Norm
	evalCfg.Train = false
	dur := 30 * time.Second
	if jc.Quick {
		dur = 10 * time.Second
	}
	s := Scenario{
		Capacity: trace.Constant(trace.Mbps(100)),
		MinRTT:   100 * time.Millisecond,
		Buffer:   int(trace.Mbps(100) * 0.1),
		Duration: dur,
	}
	m := jc.RunFlow(s, func(seed int64) cc.Controller {
		c := evalCfg
		c.CC.Seed = seed
		return rlcc.New("eval", c)
	}, 0)
	rew := m.Ctrl.(*rlcc.Controller).EpisodeReward() / float64(max1(m.Ctrl.(*rlcc.Controller).Decisions()))
	return rew, m.ThrMbps, m.DelayMs, m.LossRate * 100
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

func runTab2(rc *RunContext) *Report {
	rc.WithDefaults()
	F := struct{ i, ii, iii, iv, v, vi, vii, viii, ix rlcc.Feature }{
		rlcc.FeatAckGapEWMA, rlcc.FeatSendGapEWMA, rlcc.FeatRTTRatio, rlcc.FeatSendRate,
		rlcc.FeatSentAckedRatio, rlcc.FeatRTTAndMin, rlcc.FeatLossRate, rlcc.FeatRTTGradient,
		rlcc.FeatDeliveryRate,
	}
	variants := []struct {
		name string
		fs   []rlcc.Feature
	}{
		{"baseline {iv,vi,vii,viii,ix}", rlcc.BaselineStateSpace()},
		{"-(vi)", rlcc.LibraStateSpace()},
		{"+(i)(ii)", []rlcc.Feature{F.i, F.ii, F.iv, F.vi, F.vii, F.viii, F.ix}},
		{"+(i)(ii)(iii)", []rlcc.Feature{F.i, F.ii, F.iii, F.iv, F.vi, F.vii, F.viii, F.ix}},
		{"+(ii)(iii)(v)-(iv)", []rlcc.Feature{F.ii, F.iii, F.v, F.vi, F.vii, F.viii, F.ix}},
		{"+(iii)", []rlcc.Feature{F.iii, F.iv, F.vi, F.vii, F.viii, F.ix}},
		{"-(ix)", []rlcc.Feature{F.iv, F.vi, F.vii, F.viii}},
	}
	evals := Sweep(rc, len(variants), func(jc *RunContext, i int) [4]float64 {
		ctrl := rlcc.Config{Features: variants[i].fs, Action: rlcc.MIMDAurora, UseDelta: true}
		rew, thr, del, loss := evalFormulation(ctrl, jc)
		return [4]float64{rew, thr, del, loss}
	})
	tbl := Table{Name: "vs baseline (positive reward delta = better)",
		Cols: []string{"state set", "d-reward", "d-thr(Mbps)", "d-latency(ms)", "d-loss(pp)"}}
	base := evals[0]
	for i, v := range variants {
		if i == 0 {
			tbl.AddRow(v.name, "0 (ref)", "0 (ref)", "0 (ref)", "0 (ref)")
			continue
		}
		e := evals[i]
		tbl.AddRow(v.name, fmtF(e[0]-base[0], 3), fmtF(e[1]-base[1], 1),
			fmtF(e[2]-base[2], 0), fmtF(e[3]-base[3], 2))
	}
	return &Report{ID: "tab2", Title: "State-space ablation", Tables: []Table{tbl}}
}

func runFig6(rc *RunContext) *Report {
	rc.WithDefaults()
	episodes, epLen := trainingScale(rc.Quick)
	const nBuckets = 10
	cases := []struct {
		name  string
		mode  rlcc.ActionMode
		scale float64
	}{
		{"AIAD scale=1", rlcc.AIAD, 1},
		{"AIAD scale=5", rlcc.AIAD, 5},
		{"AIAD scale=10", rlcc.AIAD, 10},
		{"MIMD scale=1", rlcc.MIMDAurora, 1},
		{"MIMD scale=5", rlcc.MIMDAurora, 5},
		{"MIMD scale=10", rlcc.MIMDAurora, 10},
	}
	curves := Sweep(rc, len(cases), func(jc *RunContext, i int) []float64 {
		ctrl := rlcc.Config{Action: cases[i].mode, Scale: cases[i].scale, UseDelta: true}
		return bucketMeans(trainCurve(ctrl, episodes, epLen, jc.Seed), nBuckets)
	})
	tbl := Table{Name: "mean episode reward per training decile",
		Cols: append([]string{"action space"}, deciles(nBuckets)...)}
	for i, cse := range cases {
		row := []string{cse.name}
		for _, v := range curves[i] {
			row = append(row, fmtF(v, 1))
		}
		tbl.AddRow(row...)
	}
	return &Report{ID: "fig6", Title: "Action-space comparison", Tables: []Table{tbl}}
}

func runTab3(rc *RunContext) *Report {
	rc.WithDefaults()
	with := rlcc.Config{Action: rlcc.MIMDAurora, UseDelta: true}
	without := with
	without.DisableLossTerm = true
	cases := []struct {
		name string
		ctrl rlcc.Config
	}{{"with loss rate", with}, {"w/o loss rate", without}}
	evals := Sweep(rc, len(cases), func(jc *RunContext, i int) [4]float64 {
		rew, thr, del, loss := evalFormulation(cases[i].ctrl, jc)
		return [4]float64{rew, thr, del, loss}
	})
	tbl := Table{Name: "100Mbps / 100ms / 1BDP", Cols: []string{"setting", "thr(Mbps)", "latency(ms)", "loss(%)"}}
	for i, cse := range cases {
		tbl.AddRow(cse.name, fmtF(evals[i][1], 1), fmtF(evals[i][2], 0), fmtF(evals[i][3], 2))
	}
	return &Report{ID: "tab3", Title: "Loss term in the reward", Tables: []Table{tbl}}
}

func runTab4(rc *RunContext) *Report {
	rc.WithDefaults()
	cases := []struct {
		name     string
		useDelta bool
	}{{"r", false}, {"dr", true}}
	type res struct {
		thr, del, loss, fair float64
	}
	evals := Sweep(rc, len(cases), func(jc *RunContext, i int) res {
		ctrl := rlcc.Config{Action: rlcc.MIMDAurora, UseDelta: cases[i].useDelta}
		_, thr, del, loss := evalFormulation(ctrl, jc)
		// Fairness: two flows with the same trained formulation.
		episodes, epLen := trainingScale(jc.Quick)
		env := rlcc.LaptopEnvRange()
		env.CellularFraction = 0
		tr := rlcc.Train(rlcc.TrainConfig{Episodes: episodes, EpisodeLen: epLen, Env: &env,
			Ctrl: ctrl, Seed: jc.Seed + 7})
		mk := func(seed int64) cc.Controller {
			c := ctrl.WithDefaults()
			c.Agent = tr.Agent
			c.Norm = tr.Norm
			c.CC.Seed = seed
			return rlcc.New("tab4", c)
		}
		dur := 30 * time.Second
		if jc.Quick {
			dur = 10 * time.Second
		}
		ms := jc.RunFlows(Scenario{
			Capacity: trace.Constant(trace.Mbps(100)),
			MinRTT:   100 * time.Millisecond,
			Buffer:   int(trace.Mbps(100) * 0.1),
			Duration: dur,
		}, []Maker{mk, mk}, []time.Duration{0, 0}, 0)
		return res{thr: thr, del: del, loss: loss,
			fair: stats.JainIndex([]float64{ms[0].ThrMbps, ms[1].ThrMbps})}
	})
	tbl := Table{Name: "100Mbps / 100ms / 1BDP", Cols: []string{"setting", "thr(Mbps)", "latency(ms)", "loss(%)", "fairness"}}
	for i, cse := range cases {
		e := evals[i]
		tbl.AddRow(cse.name, fmtF(e.thr, 1), fmtF(e.del, 0), fmtF(e.loss, 2), fmtF(e.fair, 3))
	}
	return &Report{ID: "tab4", Title: "r vs delta-r reward", Tables: []Table{tbl}}
}
