package exp

import (
	"sort"
	"time"

	"libra/internal/cc"
	"libra/internal/rlcc"
	"libra/internal/stats"
	"libra/internal/trace"
)

func init() {
	Register(Experiment{
		ID:    "fig5",
		Title: "Reward curves of different CCAs' state-space combinations",
		Paper: "Libra's state set (iv,vii,viii,ix) trains to the highest reward; DRL-CC and PCC next; Remy/RL-TCP lowest",
		Run:   runFig5,
	})
	Register(Experiment{
		ID:    "tab2",
		Title: "State ablation around the baseline {iv,vi,vii,viii,ix}",
		Paper: "-(vi): +5.1% reward (best); +(i)(ii): +3.7%; adding (i)/(ii)/(iii) alone hurts (-9.5..-12.4%); -(ix): -14.4%",
		Run:   runTab2,
	})
	Register(Experiment{
		ID:    "fig6",
		Title: "Reward curves of AIAD vs MIMD action spaces at scales 1/5/10",
		Paper: "MIMD learns faster and converges; AIAD needs more episodes, scale=1 slowest; all plateau near the same reward",
		Run:   runFig6,
	})
	Register(Experiment{
		ID:    "tab3",
		Title: "Reward with vs without the loss-rate term",
		Paper: "with loss: 97.2Mbps/115ms/0.72% loss; without: 98.9Mbps/197ms/37.5% loss",
		Run:   runTab3,
	})
	Register(Experiment{
		ID:    "tab4",
		Title: "Absolute reward r vs delta-r",
		Paper: "r: 99.4Mbps/173ms/14.7%/0.741 fairness; delta-r: 98.1Mbps/121ms/0.91%/0.780",
		Run:   runTab4,
	})
}

// trainCurve trains a formulation and returns bucketed episode rewards.
func trainCurve(ctrl rlcc.Config, episodes int, epLen time.Duration, seed int64) []float64 {
	env := rlcc.LaptopEnvRange()
	env.CapacityMbps = [2]float64{60, 140} // around the Sec. 4.2 default of 100 Mbps
	env.RTT = [2]time.Duration{80 * time.Millisecond, 120 * time.Millisecond}
	env.CellularFraction = 0
	res := rlcc.Train(rlcc.TrainConfig{
		Episodes:   episodes,
		EpisodeLen: epLen,
		Env:        &env,
		Ctrl:       ctrl,
		Seed:       seed,
	})
	return res.Rewards
}

// bucketMeans reduces a reward series to nBuckets means.
func bucketMeans(rs []float64, nBuckets int) []float64 {
	if nBuckets <= 0 || len(rs) == 0 {
		return nil
	}
	out := make([]float64, nBuckets)
	per := (len(rs) + nBuckets - 1) / nBuckets
	for b := 0; b < nBuckets; b++ {
		lo := b * per
		hi := lo + per
		if hi > len(rs) {
			hi = len(rs)
		}
		if lo >= hi {
			out[b] = out[b-1]
			continue
		}
		out[b] = stats.Mean(rs[lo:hi])
	}
	return out
}

func trainingScale(quick bool) (episodes int, epLen time.Duration) {
	if quick {
		return 30, 5 * time.Second
	}
	// ~200+ episodes with randomised starting rates is where the PPO
	// policies become competent at laptop scale (see EXPERIMENTS.md).
	return 150, 10 * time.Second
}

func runFig5(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	episodes, epLen := trainingScale(cfg.Quick)
	spaces := rlcc.NamedStateSpaces()
	names := make([]string, 0, len(spaces))
	for n := range spaces {
		names = append(names, n)
	}
	sort.Strings(names)

	const nBuckets = 10
	tbl := Table{Name: "mean episode reward per training decile",
		Cols: append([]string{"state space"}, deciles(nBuckets)...)}
	for _, n := range names {
		ctrl := rlcc.Config{CC: cc.Config{}, Features: spaces[n], Action: rlcc.MIMDAurora, UseDelta: true}
		curve := bucketMeans(trainCurve(ctrl, episodes, epLen, cfg.Seed+int64(len(n))), nBuckets)
		row := []string{n}
		for _, v := range curve {
			row = append(row, fmtF(v, 1))
		}
		tbl.AddRow(row...)
	}
	return &Report{ID: "fig5", Title: "State-space reward comparison", Tables: []Table{tbl}}
}

func deciles(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmtF(float64(i+1)*100/float64(n), 0) + "%"
	}
	return out
}

// evalFormulation trains a formulation briefly and then measures it on
// the Sec. 4.2 default network (100 Mbps, 100 ms RTT, 1 BDP).
func evalFormulation(ctrl rlcc.Config, cfg RunConfig, seedOff int64) (reward, thrMbps, delayMs, loss float64) {
	episodes, epLen := trainingScale(cfg.Quick)
	env := rlcc.LaptopEnvRange()
	env.CapacityMbps = [2]float64{60, 140}
	env.RTT = [2]time.Duration{80 * time.Millisecond, 120 * time.Millisecond}
	env.CellularFraction = 0
	res := rlcc.Train(rlcc.TrainConfig{
		Episodes: episodes, EpisodeLen: epLen, Env: &env, Ctrl: ctrl, Seed: cfg.Seed + seedOff,
	})
	evalCfg := ctrl.WithDefaults()
	evalCfg.Agent = res.Agent
	evalCfg.Norm = res.Norm
	evalCfg.Train = false
	dur := 30 * time.Second
	if cfg.Quick {
		dur = 10 * time.Second
	}
	s := Scenario{
		Capacity: trace.Constant(trace.Mbps(100)),
		MinRTT:   100 * time.Millisecond,
		Buffer:   int(trace.Mbps(100) * 0.1),
		Duration: dur,
	}
	m := RunFlow(s, func(seed int64) cc.Controller {
		c := evalCfg
		c.CC.Seed = seed
		return rlcc.New("eval", c)
	}, cfg.Seed+seedOff, 0)
	rew := m.Ctrl.(*rlcc.Controller).EpisodeReward() / float64(max1(m.Ctrl.(*rlcc.Controller).Decisions()))
	return rew, m.ThrMbps, m.DelayMs, m.LossRate * 100
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

func runTab2(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	F := struct{ i, ii, iii, iv, v, vi, vii, viii, ix rlcc.Feature }{
		rlcc.FeatAckGapEWMA, rlcc.FeatSendGapEWMA, rlcc.FeatRTTRatio, rlcc.FeatSendRate,
		rlcc.FeatSentAckedRatio, rlcc.FeatRTTAndMin, rlcc.FeatLossRate, rlcc.FeatRTTGradient,
		rlcc.FeatDeliveryRate,
	}
	variants := []struct {
		name string
		fs   []rlcc.Feature
	}{
		{"baseline {iv,vi,vii,viii,ix}", rlcc.BaselineStateSpace()},
		{"-(vi)", rlcc.LibraStateSpace()},
		{"+(i)(ii)", []rlcc.Feature{F.i, F.ii, F.iv, F.vi, F.vii, F.viii, F.ix}},
		{"+(i)(ii)(iii)", []rlcc.Feature{F.i, F.ii, F.iii, F.iv, F.vi, F.vii, F.viii, F.ix}},
		{"+(ii)(iii)(v)-(iv)", []rlcc.Feature{F.ii, F.iii, F.v, F.vi, F.vii, F.viii, F.ix}},
		{"+(iii)", []rlcc.Feature{F.iii, F.iv, F.vi, F.vii, F.viii, F.ix}},
		{"-(ix)", []rlcc.Feature{F.iv, F.vi, F.vii, F.viii}},
	}
	tbl := Table{Name: "vs baseline (positive reward delta = better)",
		Cols: []string{"state set", "d-reward", "d-thr(Mbps)", "d-latency(ms)", "d-loss(pp)"}}
	var base [4]float64
	for i, v := range variants {
		ctrl := rlcc.Config{Features: v.fs, Action: rlcc.MIMDAurora, UseDelta: true}
		rew, thr, del, loss := evalFormulation(ctrl, cfg, int64(i+1)*211)
		if i == 0 {
			base = [4]float64{rew, thr, del, loss}
			tbl.AddRow(v.name, "0 (ref)", "0 (ref)", "0 (ref)", "0 (ref)")
			continue
		}
		tbl.AddRow(v.name, fmtF(rew-base[0], 3), fmtF(thr-base[1], 1),
			fmtF(del-base[2], 0), fmtF(loss-base[3], 2))
	}
	return &Report{ID: "tab2", Title: "State-space ablation", Tables: []Table{tbl}}
}

func runFig6(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	episodes, epLen := trainingScale(cfg.Quick)
	const nBuckets = 10
	tbl := Table{Name: "mean episode reward per training decile",
		Cols: append([]string{"action space"}, deciles(nBuckets)...)}
	cases := []struct {
		name  string
		mode  rlcc.ActionMode
		scale float64
	}{
		{"AIAD scale=1", rlcc.AIAD, 1},
		{"AIAD scale=5", rlcc.AIAD, 5},
		{"AIAD scale=10", rlcc.AIAD, 10},
		{"MIMD scale=1", rlcc.MIMDAurora, 1},
		{"MIMD scale=5", rlcc.MIMDAurora, 5},
		{"MIMD scale=10", rlcc.MIMDAurora, 10},
	}
	for i, cse := range cases {
		ctrl := rlcc.Config{Action: cse.mode, Scale: cse.scale, UseDelta: true}
		curve := bucketMeans(trainCurve(ctrl, episodes, epLen, cfg.Seed+int64(i)*307), nBuckets)
		row := []string{cse.name}
		for _, v := range curve {
			row = append(row, fmtF(v, 1))
		}
		tbl.AddRow(row...)
	}
	return &Report{ID: "fig6", Title: "Action-space comparison", Tables: []Table{tbl}}
}

func runTab3(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	tbl := Table{Name: "100Mbps / 100ms / 1BDP", Cols: []string{"setting", "thr(Mbps)", "latency(ms)", "loss(%)"}}
	with := rlcc.Config{Action: rlcc.MIMDAurora, UseDelta: true}
	without := with
	without.DisableLossTerm = true
	_, thr, del, loss := evalFormulation(with, cfg, 401)
	tbl.AddRow("with loss rate", fmtF(thr, 1), fmtF(del, 0), fmtF(loss, 2))
	_, thr, del, loss = evalFormulation(without, cfg, 402)
	tbl.AddRow("w/o loss rate", fmtF(thr, 1), fmtF(del, 0), fmtF(loss, 2))
	return &Report{ID: "tab3", Title: "Loss term in the reward", Tables: []Table{tbl}}
}

func runTab4(cfg RunConfig) *Report {
	cfg = cfg.WithDefaults()
	tbl := Table{Name: "100Mbps / 100ms / 1BDP", Cols: []string{"setting", "thr(Mbps)", "latency(ms)", "loss(%)", "fairness"}}
	for _, cse := range []struct {
		name     string
		useDelta bool
		off      int64
	}{{"r", false, 501}, {"dr", true, 502}} {
		ctrl := rlcc.Config{Action: rlcc.MIMDAurora, UseDelta: cse.useDelta}
		_, thr, del, loss := evalFormulation(ctrl, cfg, cse.off)
		// Fairness: two flows with the same trained formulation.
		episodes, epLen := trainingScale(cfg.Quick)
		env := rlcc.LaptopEnvRange()
		env.CellularFraction = 0
		res := rlcc.Train(rlcc.TrainConfig{Episodes: episodes, EpisodeLen: epLen, Env: &env,
			Ctrl: ctrl, Seed: cfg.Seed + cse.off + 7})
		mk := func(seed int64) cc.Controller {
			c := ctrl.WithDefaults()
			c.Agent = res.Agent
			c.Norm = res.Norm
			c.CC.Seed = seed
			return rlcc.New("tab4", c)
		}
		dur := 30 * time.Second
		if cfg.Quick {
			dur = 10 * time.Second
		}
		ms := RunFlows(Scenario{
			Capacity: trace.Constant(trace.Mbps(100)),
			MinRTT:   100 * time.Millisecond,
			Buffer:   int(trace.Mbps(100) * 0.1),
			Duration: dur,
		}, []Maker{mk, mk}, []time.Duration{0, 0}, cfg.Seed+cse.off, 0)
		j := stats.JainIndex([]float64{ms[0].ThrMbps, ms[1].ThrMbps})
		tbl.AddRow(cse.name, fmtF(thr, 1), fmtF(del, 0), fmtF(loss, 2), fmtF(j, 3))
	}
	return &Report{ID: "tab4", Title: "r vs delta-r reward", Tables: []Table{tbl}}
}
