package exp

import (
	"libra/internal/rlcc"
	"strings"
	"testing"
	"time"
)

// TestSmokeAllExperiments runs every registered experiment in quick mode
// with a shared (tiny) trained agent set and sanity-checks the reports.
// It is the integration test of the whole harness; skip with -short.
func TestSmokeAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take minutes; skipped with -short")
	}
	if raceEnabled {
		t.Skip("whole-harness smoke exceeds the test timeout under -race; targeted tests keep race coverage")
	}
	agents := TrainAgentSet(TrainSpec{Seed: 1, Episodes: 6, EpisodeLen: 4 * time.Second,
		Env: smokeEnv()})
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			start := time.Now()
			rc := NewRunContext(1)
			rc.Quick = true
			rc.Agents = agents
			rep := e.Run(rc)
			if rep == nil || len(rep.Tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			out := rep.String()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("report does not mention its ID:\n%s", out)
			}
			for _, tbl := range rep.Tables {
				if len(tbl.Rows) == 0 {
					t.Fatalf("%s table %q empty", e.ID, tbl.Name)
				}
				for _, row := range tbl.Rows {
					for _, cell := range row {
						if strings.Contains(cell, "NaN") || strings.Contains(cell, "Inf") {
							t.Fatalf("%s produced non-finite cell %q in %q", e.ID, cell, tbl.Name)
						}
					}
				}
			}
			t.Logf("%s: %d tables in %.1fs", e.ID, len(rep.Tables), time.Since(start).Seconds())
		})
	}
}

func smokeEnv() rlcc.EnvRange {
	e := rlcc.LaptopEnvRange()
	e.CapacityMbps = [2]float64{20, 60}
	return e
}
