package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"libra/internal/analyze"
	"libra/internal/telemetry"
)

func TestTopoPresetsBuildAndRun(t *testing.T) {
	for _, name := range TopoPresetNames() {
		ts, ok := TopoPreset(name)
		if !ok {
			t.Fatalf("preset %s vanished", name)
		}
		if err := ts.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
		tp, routes, err := ts.Build(TopoBuild{Seed: 3})
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if routes[ts.Main] == nil {
			t.Fatalf("preset %s: main route %q missing after build", name, ts.Main)
		}
		if len(tp.Links()) != len(ts.Links) {
			t.Fatalf("preset %s: built %d links, spec has %d", name, len(tp.Links()), len(ts.Links))
		}
		if i := ts.MainBottleneck(); i < 0 {
			t.Fatalf("preset %s: no main bottleneck", name)
		}
	}
}

func TestParseTopoRejects(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"unknown node",
			`{"nodes":["a"],"links":[{"label":"l","from":"a","to":"zz","cap_mbps":10}],"routes":[{"name":"m","links":["l"]}],"main":"m"}`,
			"unknown node"},
		{"zero capacity",
			`{"nodes":["a","b"],"links":[{"label":"l","from":"a","to":"b"}],"routes":[{"name":"m","links":["l"]}],"main":"m"}`,
			"zero capacity"},
		{"route cycle",
			`{"nodes":["a","b"],"links":[{"label":"l","from":"a","to":"b","cap_mbps":10},{"label":"r","from":"b","to":"a","cap_mbps":10}],"routes":[{"name":"m","links":["l","r","l"]}],"main":"m"}`,
			"revisits"},
		{"disconnected route",
			`{"nodes":["a","b","c"],"links":[{"label":"l","from":"a","to":"b","cap_mbps":10},{"label":"r","from":"a","to":"c","cap_mbps":10}],"routes":[{"name":"m","links":["l","r"]}],"main":"m"}`,
			"breaks"},
		{"missing main",
			`{"nodes":["a","b"],"links":[{"label":"l","from":"a","to":"b","cap_mbps":10}],"routes":[{"name":"m","links":["l"]}],"main":"zz"}`,
			"not declared"},
		{"unknown field",
			`{"nodes":["a","b"],"wat":1}`,
			"parse"},
		{"cross on unknown route",
			`{"nodes":["a","b"],"links":[{"label":"l","from":"a","to":"b","cap_mbps":10}],"routes":[{"name":"m","links":["l"]}],"main":"m","cross":[{"route":"zz"}]}`,
			"unknown route"},
	}
	for _, tc := range cases {
		if _, err := ParseTopo([]byte(tc.body)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if _, err := LoadTopo("no-such-preset"); err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Errorf("LoadTopo(bogus) = %v", err)
	}
	if ts, err := LoadTopo(""); ts != nil || err != nil {
		t.Errorf("LoadTopo(\"\") = %v, %v; want nil, nil", ts, err)
	}
}

// topoScenario is the shared quick parking-lot workload.
func topoScenario(d time.Duration) Scenario {
	ts, _ := TopoPreset("parking-lot")
	return Scenario{Name: "parking-lot", Duration: d, Topo: ts}
}

func TestRunFlowOverTopology(t *testing.T) {
	rc := NewRunContext(7)
	m := rc.RunFlow(topoScenario(3*time.Second), mustMaker("cubic", nil, nil), 0)
	if m.Failed {
		t.Fatalf("topo run failed: %v", m.Err)
	}
	if m.Net != nil || m.Topo == nil {
		t.Fatalf("topo run: Net = %v, Topo = %v; want nil/non-nil", m.Net, m.Topo)
	}
	if m.ThrMbps <= 0 || m.Util <= 0 {
		t.Fatalf("topo run produced no throughput: thr %.2f util %.3f", m.ThrMbps, m.Util)
	}
	// Main flow shares each 48 Mbps hop with one cubic cross flow; it
	// cannot beat the bottleneck rate.
	if m.ThrMbps > 49 {
		t.Errorf("main flow throughput %.1f Mbps exceeds the hop capacity", m.ThrMbps)
	}
	// Per-hop metrics registered with link labels.
	text := registryText(t, rc)
	for _, want := range []string{
		`libra_link_delivered_bytes_total{link="h0"}`,
		`libra_link_drops_total{link="h1",reason="tail"}`,
		`libra_link_utilization{link="h2"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("registry missing %s", want)
		}
	}
}

func registryText(t *testing.T, rc *RunContext) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rc.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// The tentpole determinism criterion: a parking-lot sweep records a
// byte-identical event stream at any worker count, and the analyzer
// attributes drops/queueing to individual hops.
func TestTopoSweepDeterministicAcrossWorkers(t *testing.T) {
	runAt := func(workers int) []byte {
		var jsonl bytes.Buffer
		rec := telemetry.NewRecorder(&jsonl)
		rc := NewRunContext(11)
		rc.Workers = workers
		rc.Tracer = rec
		Sweep(rc, 3, func(jc *RunContext, i int) int {
			ms := jc.RunFlows(topoScenario(2*time.Second),
				[]Maker{mustMaker("cubic", nil, nil), mustMaker("bbr", nil, nil)},
				[]time.Duration{0, 500 * time.Millisecond}, 0)
			for _, m := range ms {
				if m.Failed {
					t.Errorf("job %d failed: %v", i, m.Err)
				}
			}
			return i
		})
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		return jsonl.Bytes()
	}
	serial := runAt(1)
	parallel := runAt(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("parking-lot sweep event stream differs between 1 and 4 workers")
	}
	if len(serial) == 0 {
		t.Fatal("sweep recorded no events")
	}

	an, err := analyze.ReadStream(bytes.NewReader(serial), analyze.Config{})
	if err != nil {
		t.Fatal(err)
	}
	an.Finalize()
	r := an.Report()
	if len(r.Links) == 0 {
		t.Fatal("analyzer found no per-link attribution in a multi-hop trace")
	}
	byLabel := map[string]analyze.LinkReport{}
	for _, l := range r.Links {
		byLabel[l.Label] = l
	}
	for _, lbl := range []string{"h0", "h1", "h2"} {
		lr, ok := byLabel[lbl]
		if !ok {
			t.Fatalf("no link report for hop %s (have %v)", lbl, labelsOf(r.Links))
		}
		if lr.QueueBytes.N == 0 {
			t.Errorf("hop %s has no queue samples", lbl)
		}
	}
	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "per-link attribution:") {
		t.Error("text report missing per-link section")
	}
}

func labelsOf(ls []analyze.LinkReport) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = l.Label
	}
	return out
}

func FuzzParseTopo(f *testing.F) {
	f.Add(`{"nodes":["a","b"],"links":[{"label":"l","from":"a","to":"b","cap_mbps":10}],"routes":[{"name":"m","links":["l"]}],"main":"m"}`)
	f.Add(`{"nodes":["a"],"links":[{"label":"l","from":"a","to":"zz","cap_mbps":10}],"routes":[{"name":"m","links":["l"]}],"main":"m"}`)
	f.Add(`{"nodes":["a","b"],"links":[{"label":"l","from":"a","to":"b"}],"routes":[{"name":"m","links":["l"]}],"main":"m"}`)
	f.Add(`{"nodes":["a","b"],"links":[{"label":"l","from":"a","to":"b","cap_mbps":10},{"label":"r","from":"b","to":"a","cap_mbps":10}],"routes":[{"name":"m","links":["l","r","l"]}],"main":"m"}`)
	f.Add(`{"nodes":[],"links":[],"routes":[],"main":""}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, body string) {
		ts, err := ParseTopo([]byte(body))
		if err != nil {
			return
		}
		// Anything the parser accepts must validate and build.
		if err := ts.Validate(); err != nil {
			t.Fatalf("parsed spec fails validation: %v", err)
		}
		if _, _, err := ts.Build(TopoBuild{Seed: 1}); err != nil {
			t.Fatalf("validated spec fails to build: %v\nspec: %s", err, body)
		}
	})
}
