package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"libra/internal/cc"
	"libra/internal/nn"
	"libra/internal/rl"
	"libra/internal/rlcc"
)

// AgentSet bundles the trained PPO policies the learning-based CCAs
// share across an experiment run.
type AgentSet struct {
	// LibraRL drives C-Libra / B-Libra / CL-Libra's learning component.
	LibraRL *rl.PPO
	// Orca drives the Orca baseline's cwnd-rescaling agent.
	Orca *rl.PPO
	// Aurora drives the pure-RL Aurora baseline.
	Aurora *rl.PPO
	// ModRL drives the Modified-RL baseline (Eq. 1 as reward).
	ModRL *rl.PPO

	// The observation normalisers each policy was trained with; a
	// policy deployed without its normaliser sees garbage inputs.
	LibraNorm, OrcaNorm, AuroraNorm, ModRLNorm *rl.RunningNorm
}

// TrainSpec parameterises TrainAgentSet.
type TrainSpec struct {
	Seed       int64
	Episodes   int
	EpisodeLen time.Duration
	Env        rlcc.EnvRange
}

// QuickTrainSpec is the laptop-scale spec used when experiments train
// lazily: enough episodes for coarse competence, small enough for CI.
func QuickTrainSpec(seed int64) TrainSpec {
	return TrainSpec{Seed: seed, Episodes: 60, EpisodeLen: 8 * time.Second, Env: rlcc.LaptopEnvRange()}
}

// FullTrainSpec mirrors the paper's training scale more closely.
func FullTrainSpec(seed int64) TrainSpec {
	return TrainSpec{Seed: seed, Episodes: 400, EpisodeLen: 15 * time.Second, Env: rlcc.PaperEnvRange()}
}

// TrainAgentSet trains all four policies with the given spec.
func TrainAgentSet(spec TrainSpec) *AgentSet {
	train := func(ctrl rlcc.Config, seedOff int64) (*rl.PPO, *rl.RunningNorm) {
		res := rlcc.Train(rlcc.TrainConfig{
			Episodes:   spec.Episodes,
			EpisodeLen: spec.EpisodeLen,
			Env:        &spec.Env,
			Ctrl:       ctrl,
			Seed:       spec.Seed + seedOff,
		})
		return res.Agent, res.Norm
	}
	base := cc.Config{Seed: spec.Seed}
	set := &AgentSet{}
	set.LibraRL, set.LibraNorm = train(rlcc.LibraRLConfig(base), 1)
	set.Orca, set.OrcaNorm = train(rlcc.OrcaRLConfig(base), 2)
	set.Aurora, set.AuroraNorm = train(rlcc.AuroraConfig(base), 3)
	set.ModRL, set.ModRLNorm = train(rlcc.LibraRLConfig(base), 4)
	return set
}

// agentFiles maps file stems to the agent and normaliser slots they
// persist.
type agentSlot struct {
	agent func(*AgentSet) **rl.PPO
	norm  func(*AgentSet) **rl.RunningNorm
}

var agentFiles = map[string]agentSlot{
	"libra-rl": {func(a *AgentSet) **rl.PPO { return &a.LibraRL }, func(a *AgentSet) **rl.RunningNorm { return &a.LibraNorm }},
	"orca":     {func(a *AgentSet) **rl.PPO { return &a.Orca }, func(a *AgentSet) **rl.RunningNorm { return &a.OrcaNorm }},
	"aurora":   {func(a *AgentSet) **rl.PPO { return &a.Aurora }, func(a *AgentSet) **rl.RunningNorm { return &a.AuroraNorm }},
	"mod-rl":   {func(a *AgentSet) **rl.PPO { return &a.ModRL }, func(a *AgentSet) **rl.RunningNorm { return &a.ModRLNorm }},
}

// Save writes the actor networks to dir (one file per agent). Critic
// weights are not persisted: saved agents are for inference.
func (a *AgentSet) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, save func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		err = save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("save %s: %w", name, err)
		}
		return nil
	}
	for stem, slot := range agentFiles {
		agent := *slot.agent(a)
		if agent == nil {
			continue
		}
		if err := write(stem+".model", agent.Policy.Actor.Save); err != nil {
			return err
		}
		if norm := *slot.norm(a); norm != nil {
			if err := write(stem+".norm", norm.Save); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadAgentSet reads actor networks saved by Save, constructing
// inference-ready agents with the matching preset configurations.
// Missing files leave the corresponding agent untrained-fresh.
func LoadAgentSet(dir string, seed int64) (*AgentSet, error) {
	base := cc.Config{Seed: seed}
	mk := func(cfg rlcc.Config) *rl.PPO {
		c := cfg.WithDefaults()
		return rl.NewPPO(seed, c.ObsDim(), 1, c.PPO)
	}
	set := &AgentSet{
		LibraRL: mk(rlcc.LibraRLConfig(base)),
		Orca:    mk(rlcc.OrcaRLConfig(base)),
		Aurora:  mk(rlcc.AuroraConfig(base)),
		ModRL:   mk(rlcc.LibraRLConfig(base)),
	}
	for stem, slot := range agentFiles {
		f, err := os.Open(filepath.Join(dir, stem+".model"))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		m, err := nn.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", stem, err)
		}
		// The saved actor must fit the observation space the preset
		// configuration implies; a stale or foreign model would
		// otherwise panic at first inference.
		agent := *slot.agent(set)
		want := agent.Policy.Actor.Sizes
		if m.Sizes[0] != want[0] || m.Sizes[len(m.Sizes)-1] != want[len(want)-1] {
			return nil, fmt.Errorf("load %s: model shape %v does not fit expected %v->%v",
				stem, m.Sizes, want[0], want[len(want)-1])
		}
		agent.Policy.Actor = m
		nf, err := os.Open(filepath.Join(dir, stem+".norm"))
		if err == nil {
			norm, nerr := rl.LoadNorm(nf)
			nf.Close()
			if nerr != nil {
				return nil, fmt.Errorf("load %s norm: %w", stem, nerr)
			}
			*slot.norm(set) = norm
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	return set, nil
}
