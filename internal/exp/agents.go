package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"libra/internal/cc"
	"libra/internal/nn"
	"libra/internal/rl"
	"libra/internal/rlcc"
	"libra/internal/sweep"
)

// AgentSet bundles the trained PPO policies the learning-based CCAs
// share across an experiment run.
type AgentSet struct {
	// LibraRL drives C-Libra / B-Libra / CL-Libra's learning component.
	LibraRL *rl.PPO
	// Orca drives the Orca baseline's cwnd-rescaling agent.
	Orca *rl.PPO
	// Aurora drives the pure-RL Aurora baseline.
	Aurora *rl.PPO
	// ModRL drives the Modified-RL baseline (Eq. 1 as reward).
	ModRL *rl.PPO

	// The observation normalisers each policy was trained with; a
	// policy deployed without its normaliser sees garbage inputs.
	LibraNorm, OrcaNorm, AuroraNorm, ModRLNorm *rl.RunningNorm
}

// Clone deep-copies the set for concurrent use: policy/critic weights
// and normaliser statistics are copied, and each agent's sampling RNG
// is reseeded from a sub-seed of seed. Learning CCAs mutate their
// normaliser and draw from the policy RNG at inference time, so sweep
// jobs must never share one set; a nil set clones to nil.
func (a *AgentSet) Clone(seed int64) *AgentSet {
	if a == nil {
		return nil
	}
	cp := func(p *rl.PPO, off int) *rl.PPO {
		if p == nil {
			return nil
		}
		return p.Clone(sweep.SubSeed(seed, off))
	}
	cn := func(n *rl.RunningNorm) *rl.RunningNorm {
		if n == nil {
			return nil
		}
		return n.Clone()
	}
	return &AgentSet{
		LibraRL:    cp(a.LibraRL, 1),
		Orca:       cp(a.Orca, 2),
		Aurora:     cp(a.Aurora, 3),
		ModRL:      cp(a.ModRL, 4),
		LibraNorm:  cn(a.LibraNorm),
		OrcaNorm:   cn(a.OrcaNorm),
		AuroraNorm: cn(a.AuroraNorm),
		ModRLNorm:  cn(a.ModRLNorm),
	}
}

// MemBytes reports the resident bytes of the set's models and
// normaliser statistics, counting each distinct object exactly once.
// Controllers deployed on a shared set each claim the full agent in
// their own MemBytes, so summing per-controller estimates over N flows
// counts the weights N times; the honest total for a shared deployment
// is this once plus each flow's OwnMemBytes residual.
func (a *AgentSet) MemBytes() int {
	if a == nil {
		return 0
	}
	total := 0
	seenAgent := map[*rl.PPO]bool{}
	for _, p := range []*rl.PPO{a.LibraRL, a.Orca, a.Aurora, a.ModRL} {
		if p != nil && !seenAgent[p] {
			seenAgent[p] = true
			total += p.MemBytes()
		}
	}
	seenNorm := map[*rl.RunningNorm]bool{}
	for _, n := range []*rl.RunningNorm{a.LibraNorm, a.OrcaNorm, a.AuroraNorm, a.ModRLNorm} {
		if n != nil && !seenNorm[n] {
			seenNorm[n] = true
			total += n.MemBytes()
		}
	}
	return total
}

// TrainSpec parameterises TrainAgentSet.
type TrainSpec struct {
	Seed       int64
	Episodes   int
	EpisodeLen time.Duration
	Env        rlcc.EnvRange
	// Workers bounds how many of the four policies train concurrently;
	// 0 means GOMAXPROCS. Each policy trains from its own sub-seed, so
	// the trained set is identical at any worker count.
	Workers int
}

// QuickTrainSpec is the laptop-scale spec used when experiments train
// lazily: enough episodes for coarse competence, small enough for CI.
func QuickTrainSpec(seed int64) TrainSpec {
	return TrainSpec{Seed: seed, Episodes: 60, EpisodeLen: 8 * time.Second, Env: rlcc.LaptopEnvRange()}
}

// FullTrainSpec mirrors the paper's training scale more closely.
func FullTrainSpec(seed int64) TrainSpec {
	return TrainSpec{Seed: seed, Episodes: 400, EpisodeLen: 15 * time.Second, Env: rlcc.PaperEnvRange()}
}

// TrainAgentSet trains all four policies with the given spec. The
// policies are independent and individually seeded, so they train in
// parallel (bounded by spec.Workers) with results identical to a
// serial run.
func TrainAgentSet(spec TrainSpec) *AgentSet {
	base := cc.Config{Seed: spec.Seed}
	jobs := []struct {
		ctrl    rlcc.Config
		seedOff int64
	}{
		{rlcc.LibraRLConfig(base), 1},
		{rlcc.OrcaRLConfig(base), 2},
		{rlcc.AuroraConfig(base), 3},
		{rlcc.LibraRLConfig(base), 4},
	}
	type trained struct {
		agent *rl.PPO
		norm  *rl.RunningNorm
	}
	res := sweep.Map(spec.Workers, len(jobs), func(i int) trained {
		env := spec.Env // private copy per concurrent trainer
		r := rlcc.Train(rlcc.TrainConfig{
			Episodes:   spec.Episodes,
			EpisodeLen: spec.EpisodeLen,
			Env:        &env,
			Ctrl:       jobs[i].ctrl,
			Seed:       spec.Seed + jobs[i].seedOff,
		})
		return trained{agent: r.Agent, norm: r.Norm}
	})
	return &AgentSet{
		LibraRL: res[0].agent, LibraNorm: res[0].norm,
		Orca: res[1].agent, OrcaNorm: res[1].norm,
		Aurora: res[2].agent, AuroraNorm: res[2].norm,
		ModRL: res[3].agent, ModRLNorm: res[3].norm,
	}
}

// agentFiles maps file stems to the agent and normaliser slots they
// persist.
type agentSlot struct {
	agent func(*AgentSet) **rl.PPO
	norm  func(*AgentSet) **rl.RunningNorm
}

var agentFiles = map[string]agentSlot{
	"libra-rl": {func(a *AgentSet) **rl.PPO { return &a.LibraRL }, func(a *AgentSet) **rl.RunningNorm { return &a.LibraNorm }},
	"orca":     {func(a *AgentSet) **rl.PPO { return &a.Orca }, func(a *AgentSet) **rl.RunningNorm { return &a.OrcaNorm }},
	"aurora":   {func(a *AgentSet) **rl.PPO { return &a.Aurora }, func(a *AgentSet) **rl.RunningNorm { return &a.AuroraNorm }},
	"mod-rl":   {func(a *AgentSet) **rl.PPO { return &a.ModRL }, func(a *AgentSet) **rl.RunningNorm { return &a.ModRLNorm }},
}

// Save writes the actor networks to dir (one file per agent). Critic
// weights are not persisted: saved agents are for inference.
func (a *AgentSet) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, save func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		err = save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("save %s: %w", name, err)
		}
		return nil
	}
	for stem, slot := range agentFiles {
		agent := *slot.agent(a)
		if agent == nil {
			continue
		}
		if err := write(stem+".model", agent.Policy.Actor.Save); err != nil {
			return err
		}
		if norm := *slot.norm(a); norm != nil {
			if err := write(stem+".norm", norm.Save); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadAgentSet reads actor networks saved by Save, constructing
// inference-ready agents with the matching preset configurations.
// Missing files leave the corresponding agent untrained-fresh.
func LoadAgentSet(dir string, seed int64) (*AgentSet, error) {
	base := cc.Config{Seed: seed}
	mk := func(cfg rlcc.Config) *rl.PPO {
		c := cfg.WithDefaults()
		return rl.NewPPO(seed, c.ObsDim(), 1, c.PPO)
	}
	set := &AgentSet{
		LibraRL: mk(rlcc.LibraRLConfig(base)),
		Orca:    mk(rlcc.OrcaRLConfig(base)),
		Aurora:  mk(rlcc.AuroraConfig(base)),
		ModRL:   mk(rlcc.LibraRLConfig(base)),
	}
	for stem, slot := range agentFiles {
		f, err := os.Open(filepath.Join(dir, stem+".model"))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		m, err := nn.Load(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", stem, err)
		}
		// The saved actor must fit the observation space the preset
		// configuration implies; a stale or foreign model would
		// otherwise panic at first inference.
		agent := *slot.agent(set)
		want := agent.Policy.Actor.Sizes
		if m.Sizes[0] != want[0] || m.Sizes[len(m.Sizes)-1] != want[len(want)-1] {
			return nil, fmt.Errorf("load %s: model shape %v does not fit expected %v->%v",
				stem, m.Sizes, want[0], want[len(want)-1])
		}
		agent.Policy.Actor = m
		nf, err := os.Open(filepath.Join(dir, stem+".norm"))
		if err == nil {
			norm, nerr := rl.LoadNorm(nf)
			nf.Close()
			if nerr != nil {
				return nil, fmt.Errorf("load %s norm: %w", stem, nerr)
			}
			*slot.norm(set) = norm
		} else if !os.IsNotExist(err) {
			return nil, err
		}
	}
	return set, nil
}
