package exp

import (
	"fmt"
	"time"

	"libra/internal/netem"
	"libra/internal/sweep"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

// topoFor resolves the scenario's topology spec, falling back to the
// context's (libra-bench -topo); nil means the single-bottleneck path.
func (rc *RunContext) topoFor(s Scenario) *TopoSpec {
	if s.Topo != nil {
		return s.Topo
	}
	return rc.Topo
}

// runTopoFlows drives the makers' controllers down the spec's main
// route, places the spec's cross traffic, runs for the scenario
// duration, and returns metrics for the main flows (in maker order).
// seeds[i] overrides the i-th controller's seed; a nil slice
// sub-derives per flow index like RunFlows. Panics are contained the
// same way as the single-bottleneck runners.
func (rc *RunContext) runTopoFlows(s Scenario, ts *TopoSpec, mks []Maker, starts []time.Duration, bucket time.Duration, seeds []int64) (out []Metrics) {
	rc.WithDefaults()
	var tp *netem.Topology
	nMain := 0
	defer func() {
		if r := recover(); r != nil {
			var t int64
			if tp != nil {
				t = int64(tp.Eng.Now())
			}
			for i := 0; i < nMain; i++ {
				rc.EmitAnomaly(t, i, telemetry.AnomalyPanic)
			}
			if nMain == 0 {
				rc.EmitAnomaly(t, -1, telemetry.AnomalyPanic)
			}
			m := rc.failedRun(s, fmt.Errorf("panic: %v", r))
			out = make([]Metrics, len(mks))
			for i := range out {
				out[i] = m
			}
		}
	}()
	fail := func(err error) []Metrics {
		m := rc.failedRun(s, err)
		out := make([]Metrics, len(mks))
		for i := range out {
			out[i] = m
		}
		return out
	}
	plan := s.Faults
	if plan == nil {
		plan = rc.FaultPlan
	}
	tp, routes, err := ts.Build(TopoBuild{
		Seed:         rc.Seed,
		Tracer:       rc.Tracer,
		Health:       rc.Health,
		RecordSeries: bucket > 0,
		SeriesBucket: bucket,
		ExtraFaults:  plan,
	})
	if err != nil {
		return fail(err)
	}
	main := routes[ts.Main]

	rc.EmitSpan(0, -1, "scenario:"+s.Name, true)
	batcher := rc.newBatcher()
	names := make([]string, len(mks))
	flows := make([]*netem.Flow, 0, len(mks))
	for i, mk := range mks {
		seed := sweep.SubSeed(rc.Seed, i)
		if i < len(seeds) {
			seed = seeds[i]
		}
		var start time.Duration
		if i < len(starts) {
			start = starts[i]
		}
		ctrl := mk(seed)
		names[i] = ctrl.Name()
		rc.EmitSpan(0, i, "flow:"+names[i], true)
		rc.AttachTracer(ctrl, i)
		rc.attachBatcher(batcher, ctrl, i)
		if i < len(s.Profiles) {
			rc.EmitProfile(0, i, s.Profiles[i])
		}
		flows = append(flows, tp.AddFlowOn(main, ctrl, start, 0))
		nMain++
	}
	// Cross traffic after the main flows, so main flow IDs are stable
	// 0..len(mks)-1 regardless of placement.
	idx := len(mks)
	for _, cf := range ts.Cross {
		cca := cf.CCA
		if cca == "" {
			cca = "cubic"
		}
		mk, err := MakerFor(cca, nil, nil)
		if err != nil {
			return fail(err) // unreachable after Validate; defensive
		}
		count := cf.Count
		if count == 0 {
			count = 1
		}
		start := time.Duration(cf.StartS * float64(time.Second))
		for k := 0; k < count; k++ {
			ctrl := mk(sweep.SubSeed(rc.Seed, idx))
			rc.AttachTracer(ctrl, idx)
			rc.attachBatcher(batcher, ctrl, idx)
			f := tp.AddFlowOn(routes[cf.Route], ctrl, start, 0)
			if cf.RateMbps > 0 {
				f.SetAppRate(trace.Mbps(cf.RateMbps))
			}
			idx++
		}
	}

	tp.Run(s.Duration)
	rc.recordBatch(batcher)
	for i := range flows {
		rc.EmitSpan(s.Duration.Nanoseconds(), i, "flow:"+names[i], false)
	}
	rc.EmitSpan(s.Duration.Nanoseconds(), -1, "scenario:"+s.Name, false)
	rc.recordTopoLinks(tp, main, s.Duration)

	out = make([]Metrics, len(flows))
	for i, f := range flows {
		out[i] = rc.observeTopo(tp, main, f, s.Duration)
	}
	return out
}

// observeTopo is Observe for topology runs: utilization comes from the
// main route's bottleneck hop, and Metrics.Topo is set instead of Net.
func (rc *RunContext) observeTopo(tp *netem.Topology, main *netem.Route, f *netem.Flow, d time.Duration) Metrics {
	m := Metrics{
		Util:     tp.LinkUtilization(tp.RouteBottleneck(main, d), d),
		ThrMbps:  trace.ToMbps(f.Stats.AvgThroughput()),
		DelayMs:  float64(f.Stats.AvgRTT()) / float64(time.Millisecond),
		LossRate: f.Stats.LossRate(),
		CPUFrac:  float64(f.Stats.ComputeNs) / float64(d.Nanoseconds()),
		Flow:     f,
		Topo:     tp,
		Ctrl:     f.Controller(),
	}
	rc.recordFlow(f, m)
	return m
}

// recordTopoLinks pushes every hop's summary into the registry with
// link-labelled series, in construction order with reasons in a fixed
// order, so metric registration never depends on map iteration.
func (rc *RunContext) recordTopoLinks(tp *netem.Topology, main *netem.Route, d time.Duration) {
	reg := rc.Metrics
	for _, l := range tp.Links() {
		ds := l.DropStats()
		for _, rv := range []struct {
			reason string
			v      int64
		}{
			{telemetry.ReasonTail, ds.Tail},
			{telemetry.ReasonChannel, ds.Channel},
			{telemetry.ReasonAQM, ds.AQM},
			{telemetry.ReasonBlackout, ds.Blackout},
			{telemetry.ReasonBurst, ds.Burst},
		} {
			reg.Counter(fmt.Sprintf("libra_link_drops_total{link=%q,reason=%q}", l.Label(), rv.reason),
				"per-hop drops by reason").Add(rv.v)
		}
		reg.Counter(fmt.Sprintf("libra_link_dropped_bytes_total{link=%q}", l.Label()),
			"bytes dropped per hop").Add(ds.Bytes)
		reg.Counter(fmt.Sprintf("libra_link_marked_total{link=%q}", l.Label()),
			"packets CE-marked per hop").Add(ds.Marked)
		reg.Counter(fmt.Sprintf("libra_link_delivered_bytes_total{link=%q}", l.Label()),
			"bytes serialized per hop").Add(l.DeliveredBytes())
		reg.Gauge(fmt.Sprintf("libra_link_utilization{link=%q}", l.Label()),
			"per-hop delivered bytes / mean capacity of the last recorded run").
			Set(tp.LinkUtilization(l, d))
	}
	if b := tp.RouteBottleneck(main, d); b != nil {
		reg.Gauge("libra_link_utilization", "delivered bytes / mean capacity of the last recorded run").
			Set(tp.LinkUtilization(b, d))
		reg.Gauge("libra_link_mean_queue_bytes", "time-averaged bottleneck occupancy of the last recorded run").
			Set(b.MeanQueueBytes(tp.Eng.Now()))
	}
}
