package exp

import (
	"fmt"
	"sort"
	"strings"

	"libra/internal/utility"
)

// Profile is a first-class utility profile: a named application
// preference that binds a controller and an Eq. 1 utility
// parameterisation. Scenarios label flows with profile names
// (Scenario.Profiles), the runner stamps each labelled flow with a
// TypeProfile event, and the analyzer/time-series layers key
// per-profile aggregates and SLO attainment on the label.
type Profile struct {
	Name string
	CCA  string
	// Util parameterises Eq. 1 for the profile's flows (Libra-family
	// controllers only; classic CCAs ignore it).
	Util utility.Libra
}

// Maker builds the profile's controller factory.
func (p Profile) Maker(ag *AgentSet) (Maker, error) {
	return MakerFor(p.CCA, ag, p.Util)
}

// profilePresets maps the paper's application-preference archetypes
// onto Eq. 1 parameterisations: bulk transfer weighs throughput up
// (2x alpha), low-latency weighs the delay penalty up 3x, video-call
// 2x, and background halves the throughput reward so it yields to
// everyone else.
func profilePresets() []Profile {
	bg := utility.Default()
	bg.Alpha *= 0.5
	return []Profile{
		{Name: "bulk", CCA: "c-libra", Util: utility.Throughput1()},
		{Name: "low-latency", CCA: "c-libra", Util: utility.Latency2()},
		{Name: "video-call", CCA: "c-libra", Util: utility.Latency1()},
		{Name: "background", CCA: "c-libra", Util: bg},
	}
}

// ProfileNames lists the preset profile names, sorted.
func ProfileNames() []string {
	ps := profilePresets()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	sort.Strings(out)
	return out
}

// ProfileByName resolves a preset profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range profilePresets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("exp: unknown profile %q (known: %s)",
		name, strings.Join(ProfileNames(), ", "))
}

// ParseProfiles resolves a comma-separated profile list (the CLI
// -profiles flag). Empty input returns nil.
func ParseProfiles(spec string) ([]Profile, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []Profile
	for _, name := range strings.Split(spec, ",") {
		p, err := ProfileByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
