// Package stats implements the evaluation metrics of Sec. 5: Jain's
// fairness index, link utilisation summaries, CDFs, and the
// convergence-time / stability definitions of Tab. 5.
package stats

import (
	"math"
	"sort"
	"time"
)

// JainIndex computes Jain's fairness index of the allocations:
// (sum x)^2 / (n * sum x^2). It is 1 for a perfectly fair allocation
// and 1/n when one flow takes everything.
func JainIndex(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum, sq float64
	for _, v := range x {
		sum += v
		sq += v * v
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(x)) * sq)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation.
func StdDev(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var ss float64
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(x)))
}

// Range returns max - min (0 for empty input).
func Range(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	lo, hi := x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// Percentile returns the p-th percentile (0..100) by linear
// interpolation on the sorted copy of x.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// CDF returns the empirical CDF of x evaluated at the given points: for
// each point, the fraction of samples <= point.
func CDF(x, points []float64) []float64 {
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = float64(sort.SearchFloat64s(s, math.Nextafter(p, math.Inf(1)))) / float64(len(s))
	}
	return out
}

// ConvergenceResult reports the Tab. 5 metrics for one flow.
type ConvergenceResult struct {
	// Converged reports whether a stable window was found.
	Converged bool
	// Time is measured from the flow's entry to the start of the first
	// window in which the rate stays within ±Tolerance of its mean for
	// Hold seconds.
	Time time.Duration
	// StdDev is the rate standard deviation after convergence.
	StdDev float64
	// Mean is the average rate after convergence.
	Mean float64
}

// Convergence applies the paper's Tab. 5 definition to a rate series
// sampled at interval dt starting at the flow's entry: convergence time
// is "the time from the flow's entry to the earliest time after which
// it maintains a stable sending rate (within ±25%) for 5 seconds".
func Convergence(series []float64, dt time.Duration, tolerance float64, hold time.Duration) ConvergenceResult {
	if tolerance == 0 {
		tolerance = 0.25
	}
	if hold == 0 {
		hold = 5 * time.Second
	}
	win := int(hold / dt)
	if win < 1 {
		win = 1
	}
	for start := 0; start+win <= len(series); start++ {
		window := series[start : start+win]
		m := Mean(window)
		if m <= 0 {
			continue
		}
		ok := true
		for _, v := range window {
			if math.Abs(v-m) > tolerance*m {
				ok = false
				break
			}
		}
		if ok {
			rest := series[start:]
			return ConvergenceResult{
				Converged: true,
				Time:      time.Duration(start) * dt,
				StdDev:    StdDev(rest),
				Mean:      Mean(rest),
			}
		}
	}
	return ConvergenceResult{}
}
