package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: %v", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("total unfairness: %v", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs")
	}
}

// Property: Jain's index is always in [1/n, 1] for non-negative input
// with at least one positive value.
func TestQuickJainBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		any := false
		for i, v := range raw {
			x[i] = float64(v)
			if v > 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		j := JainIndex(x)
		n := float64(len(x))
		return j >= 1/n-1e-12 && j <= 1+1e-12
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMeanStdRange(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(x) != 5 {
		t.Fatalf("mean %v", Mean(x))
	}
	if got := StdDev(x); math.Abs(got-2) > 1e-12 {
		t.Fatalf("std %v", got)
	}
	if Range(x) != 7 {
		t.Fatalf("range %v", Range(x))
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 || Range(nil) != 0 {
		t.Fatal("degenerate inputs")
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(x, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestCDF(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	got := CDF(x, []float64{0, 1, 2.5, 4, 10})
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF %v, want %v", got, want)
		}
	}
}

// Property: CDF is monotone non-decreasing in the evaluation points.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(samples []uint8, probes []uint8) bool {
		if len(samples) == 0 || len(probes) == 0 {
			return true
		}
		x := make([]float64, len(samples))
		for i, v := range samples {
			x[i] = float64(v)
		}
		p := make([]float64, len(probes))
		for i, v := range probes {
			p[i] = float64(v)
		}
		sorted := append([]float64(nil), p...)
		sort.Float64s(sorted)
		got := CDF(x, sorted)
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return got[len(got)-1] <= 1 && got[0] >= 0
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConvergenceDetectsStableTail(t *testing.T) {
	// 10 s of ramp then 10 s stable at 16, sampled at 1 s.
	series := make([]float64, 20)
	for i := 0; i < 10; i++ {
		series[i] = float64(i * 3) // ramp with >25% jumps
	}
	for i := 10; i < 20; i++ {
		series[i] = 16
	}
	res := Convergence(series, time.Second, 0.25, 5*time.Second)
	if !res.Converged {
		t.Fatal("failed to converge on stable tail")
	}
	if res.Time > 10*time.Second {
		t.Fatalf("convergence time %v, want <=10s", res.Time)
	}
	if math.Abs(res.Mean-16) > 3 {
		t.Fatalf("converged mean %v", res.Mean)
	}
}

func TestConvergenceRejectsOscillation(t *testing.T) {
	series := make([]float64, 30)
	for i := range series {
		if i%2 == 0 {
			series[i] = 10
		} else {
			series[i] = 30
		}
	}
	if res := Convergence(series, time.Second, 0.25, 5*time.Second); res.Converged {
		t.Fatal("oscillating series should not converge")
	}
}

func TestConvergenceEmptyAndShort(t *testing.T) {
	if Convergence(nil, time.Second, 0.25, 5*time.Second).Converged {
		t.Fatal("empty series converged")
	}
	if !Convergence([]float64{5, 5, 5, 5, 5, 5}, time.Second, 0.25, 5*time.Second).Converged {
		t.Fatal("constant series should converge immediately")
	}
}
