package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestSketchRelativeError checks every reported quantile of a lognormal
// sample is within the promised relative error of the exact one.
func TestSketchRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSketch(0.01)
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64()*2 + 3) // spans several decades
		vals = append(vals, v)
		s.Add(v)
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		got := s.Quantile(q)
		want := Percentile(vals, q*100)
		if math.Abs(got-want) > 0.03*want {
			t.Errorf("q=%.2f: sketch %.4f vs exact %.4f (>3%% off)", q, got, want)
		}
	}
	if s.Count() != 20000 {
		t.Fatalf("count %d", s.Count())
	}
	if s.Quantile(0) != s.Min() || s.Quantile(1) != s.Max() {
		t.Fatal("extreme quantiles must be exact min/max")
	}
}

// TestSketchMergeEquivalence checks sharding the stream and merging
// gives identical state to one sequential sketch, however it is split.
func TestSketchMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = rng.Float64() * 1000
	}
	whole := NewSketch(0.01)
	for _, v := range vals {
		whole.Add(v)
	}
	for _, parts := range []int{2, 3, 7} {
		shards := make([]*Sketch, parts)
		for i := range shards {
			shards[i] = NewSketch(0.01)
		}
		for i, v := range vals {
			shards[i%parts].Add(v)
		}
		merged := NewSketch(0.01)
		for _, sh := range shards {
			merged.Merge(sh)
		}
		if merged.Count() != whole.Count() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("parts=%d: merged count/min/max diverge", parts)
		}
		for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
			if merged.Quantile(q) != whole.Quantile(q) {
				t.Fatalf("parts=%d q=%g: merged %.6f vs whole %.6f",
					parts, q, merged.Quantile(q), whole.Quantile(q))
			}
		}
	}
}

// TestSketchEdgeCases covers zero/negative/NaN/Inf inputs and the
// empty sketch.
func TestSketchEdgeCases(t *testing.T) {
	s := NewSketch(0)
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
	s.Add(math.NaN())
	if s.Count() != 0 {
		t.Fatal("NaN must be dropped")
	}
	s.Add(0)
	s.Add(-5)
	s.Add(math.Inf(1))
	if s.Count() != 3 {
		t.Fatalf("count %d, want 3", s.Count())
	}
	if s.Min() != -5 {
		t.Fatalf("min %g", s.Min())
	}
	// The +Inf sample clamps to the max trackable value.
	if s.Max() != sketchMaxValue {
		t.Fatalf("max %g", s.Max())
	}
	if q := s.Quantile(0.5); q != s.Min() {
		// two of three samples are in the zero bucket; the median is
		// reported as the exact minimum
		t.Fatalf("median %g, want min", q)
	}
	// Values beyond the trackable range clamp instead of growing memory.
	s2 := NewSketch(0.01)
	s2.Add(1e30)
	s2.Add(1e-30)
	if s2.Count() != 2 {
		t.Fatal("clamped values must still count")
	}
}

// TestSketchAddNoAlloc pins the steady-state Add path to zero
// allocations — the analyzer feeds one Add per event on its hot path.
func TestSketchAddNoAlloc(t *testing.T) {
	s := NewSketch(0.01)
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	n := testing.AllocsPerRun(1000, func() { s.Add(512.3) })
	if n != 0 {
		t.Fatalf("Add allocates %.1f times per call in steady state", n)
	}
}
