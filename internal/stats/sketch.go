package stats

import (
	"math"
)

// Sketch is a mergeable streaming quantile sketch in the DDSketch
// family: values land in logarithmically spaced buckets, so any
// reported quantile is within a fixed *relative* error of the true
// one (alpha, default 1%). Memory is bounded by the clamped index
// range — a few KB regardless of how many samples stream through —
// and Add performs no allocation once a value's bucket range exists.
//
// Determinism is part of the contract: bucket indices are pure
// arithmetic on the value, bucket counts merge by addition, and the
// running sum accumulates in call order, so analyses that merge
// per-shard sketches in a fixed shard order produce byte-identical
// reports at any worker count (the sweep engine's convention).
type Sketch struct {
	gamma   float64 // bucket base: (1+alpha)/(1-alpha)
	lgGamma float64 // math.Log(gamma), cached
	alpha   float64

	// buckets[i] counts values whose log-gamma index is offset+i.
	// Indices are clamped to [minIndex, maxIndex] so the array can
	// never outgrow the supported value range.
	offset  int
	buckets []uint64

	zeros uint64 // values <= minTrackable (incl. zero and negatives)
	count uint64
	sum   float64
	min   float64
	max   float64
}

// Trackable value range: ~1e-9 .. 1e12 covers every quantity the
// framework sketches (Mbps rates, millisecond RTTs, byte queue
// depths) with headroom on both sides. Values outside clamp to the
// range edges rather than growing the index space.
const (
	sketchMinValue = 1e-9
	sketchMaxValue = 1e12
)

// NewSketch returns a sketch with relative accuracy alpha (0 means
// the 1% default). Sketches merge only with equal-alpha peers.
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.01
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		gamma:   gamma,
		lgGamma: math.Log(gamma),
		alpha:   alpha,
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// index maps a positive value onto its log-gamma bucket index.
func (s *Sketch) index(v float64) int {
	i := int(math.Ceil(math.Log(v) / s.lgGamma))
	lo := s.indexOf(sketchMinValue)
	hi := s.indexOf(sketchMaxValue)
	if i < lo {
		i = lo
	}
	if i > hi {
		i = hi
	}
	return i
}

// indexOf is index without the clamp (used to compute the clamp).
func (s *Sketch) indexOf(v float64) int {
	return int(math.Ceil(math.Log(v) / s.lgGamma))
}

// Add folds one sample in. NaN is dropped; values at or below the
// minimum trackable magnitude (including zero and negatives — every
// sketched quantity is nonnegative) count in a dedicated zero bucket.
func (s *Sketch) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if math.IsInf(v, 1) {
		v = sketchMaxValue
	}
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if v <= sketchMinValue {
		s.zeros++
		return
	}
	s.bump(s.index(v), 1)
}

// bump adds n to the bucket at absolute index i, growing the dense
// array as needed. Growth is bounded by the clamped index range.
func (s *Sketch) bump(i int, n uint64) {
	if len(s.buckets) == 0 {
		s.offset = i
		s.buckets = append(s.buckets, n)
		return
	}
	switch {
	case i < s.offset:
		grown := make([]uint64, len(s.buckets)+(s.offset-i))
		copy(grown[s.offset-i:], s.buckets)
		s.buckets = grown
		s.offset = i
	case i >= s.offset+len(s.buckets):
		grown := make([]uint64, i-s.offset+1)
		copy(grown, s.buckets)
		s.buckets = grown
	}
	s.buckets[i-s.offset] += n
}

// Merge folds o into s. Sketches must share an accuracy (they do when
// both come from NewSketch with the same alpha); a nil or empty o is
// a no-op. Bucket counts add, so merging is insensitive to how the
// stream was sharded — only the (fixed) merge order of the float sum
// matters for bit-equality.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	s.count += o.count
	s.sum += o.sum
	s.zeros += o.zeros
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	for j, n := range o.buckets {
		if n != 0 {
			s.bump(o.offset+j, n)
		}
	}
}

// Count returns the number of samples folded in.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the exact running sum of samples.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the exact sample mean (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the exact minimum (0 when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Quantile returns the q-th quantile (q in [0,1]) to within the
// sketch's relative accuracy: the returned value is the geometric
// midpoint of the bucket holding the q*count-th sample. Exact min and
// max are returned at the extremes, 0 when the sketch is empty.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min()
	}
	if q >= 1 {
		return s.Max()
	}
	// rank is the 1-based position of the wanted sample.
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank <= s.zeros {
		return s.Min()
	}
	cum := s.zeros
	for j, n := range s.buckets {
		cum += n
		if cum >= rank {
			// Geometric bucket midpoint: 2*gamma^i/(gamma+1) lies within
			// alpha of every value the bucket can hold.
			i := float64(s.offset + j)
			return 2 * math.Exp(i*s.lgGamma) / (s.gamma + 1)
		}
	}
	return s.Max()
}
