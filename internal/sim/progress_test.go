package sim

import (
	"testing"
	"time"
)

// TestProgressExactAfterRun: once Run hands control back, the published
// counters must be exact — every dispatched event, the final clock, and
// the surviving timers — not a stride-rounded approximation.
func TestProgressExactAfterRun(t *testing.T) {
	e := New(1)
	const n = 3000 // spans several progressStride batches
	for i := 0; i < n; i++ {
		e.At(time.Duration(i)*time.Microsecond, func() {})
	}
	e.At(time.Hour, func() {}) // stays pending past the horizon
	const until = 10 * time.Millisecond
	e.Run(until)

	simNs, events, pending := e.Progress()
	if events != n {
		t.Errorf("Progress events = %d, want %d", events, n)
	}
	if simNs != int64(until) {
		t.Errorf("Progress simNs = %d, want %d (the Run horizon)", simNs, int64(until))
	}
	if pending != 1 {
		t.Errorf("Progress pending = %d, want the one timer past the horizon", pending)
	}
}

// TestProgressPublishedMidRun: a reader polling from another vantage
// point mid-dispatch must see counters that lag the true dispatch count
// by at most one stride — the amortized-publication contract.
func TestProgressPublishedMidRun(t *testing.T) {
	e := New(1)
	const n = progressStride*3 + 17
	var observed []int64
	for i := 0; i < n; i++ {
		i := i
		e.At(time.Duration(i)*time.Microsecond, func() {
			if i%progressStride == 0 {
				_, events, _ := e.Progress()
				observed = append(observed, events)
			}
		})
	}
	e.Run(time.Second)
	if len(observed) == 0 {
		t.Fatal("no mid-run observations")
	}
	for k, ev := range observed {
		dispatchedSoFar := int64(k*progressStride + 1)
		if lag := dispatchedSoFar - ev; lag < 0 || lag > progressStride {
			t.Errorf("observation %d: published %d events with %d dispatched (lag %d, want 0..%d)",
				k, ev, dispatchedSoFar, lag, progressStride)
		}
	}
}
