// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, which,
// together with a seeded random source, makes every simulation run exactly
// reproducible for a given seed.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Clock is a point in virtual time, measured from the start of the
// simulation. It is a time.Duration so that the full arithmetic and
// formatting toolbox of the standard library applies.
type Clock = time.Duration

// Event is a closure scheduled to run at a virtual instant.
type event struct {
	at  Clock
	seq uint64 // tie-breaker: FIFO among same-instant events
	fn  func()
	idx int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with New.
type Engine struct {
	now    Clock
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	halted bool
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Clock { return e.now }

// Rand returns the engine's deterministic random source. All stochastic
// components of a simulation should draw from this source (or from sources
// derived from it) so that runs are reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Timer identifies a scheduled event so that it can be cancelled.
type Timer struct{ ev *event }

// At schedules fn to run at virtual time t. Scheduling in the past (t less
// than Now) runs the event at the current instant instead; this keeps
// callers simple when computing delays that may round to zero or below.
func (e *Engine) At(t Clock, fn func()) Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return Timer{ev: ev}
}

// After schedules fn to run d from now.
func (e *Engine) After(d Clock, fn func()) Timer {
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (e *Engine) Cancel(t Timer) {
	if t.ev == nil || t.ev.fn == nil {
		return
	}
	t.ev.fn = nil // mark dead; popped lazily
}

// Halt stops Run before the next event is dispatched.
func (e *Engine) Halt() { e.halted = true }

// Run dispatches events in order until the queue is empty or virtual time
// would pass until. The clock is left at the time of the last dispatched
// event, or at until if the queue drained earlier.
func (e *Engine) Run(until Clock) {
	e.halted = false
	for len(e.events) > 0 && !e.halted {
		ev := e.events[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.events)
		if ev.fn == nil { // cancelled
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
	}
	if e.now < until {
		e.now = until
	}
}

// Step dispatches the single next pending event and reports whether one
// was dispatched.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.fn == nil {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Pending returns the number of scheduled (non-cancelled) events. It is
// linear in queue size and intended for tests.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if ev.fn != nil {
			n++
		}
	}
	return n
}
