// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, which,
// together with a seeded random source, makes every simulation run exactly
// reproducible for a given seed.
//
// # Hot path
//
// The queue is an inlined, value-typed 4-ary min-heap of small (24-byte)
// entries — no per-event pointer, no interface boxing, no container/heap
// dispatch. Event payloads (the function to run) live in a generation-
// counted slot table recycled through a free list, so steady-state
// scheduling and dispatch allocate nothing. Two scheduling APIs share
// this machinery:
//
//   - At/After take a closure. Convenient, but the closure itself is an
//     allocation at the call site — use on setup and other cold paths.
//   - AtCall/AfterCall take a fixed Callback plus an argument. When the
//     callback is a package-level function and the argument is a pointer,
//     scheduling is allocation-free — this is the per-packet path.
package sim

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// Clock is a point in virtual time, measured from the start of the
// simulation. It is a time.Duration so that the full arithmetic and
// formatting toolbox of the standard library applies.
type Clock = time.Duration

// Callback is a fixed function scheduled with AtCall/AfterCall. The
// argument it was scheduled with is passed back at dispatch. Storing a
// pointer in arg does not allocate; package-level Callback values do not
// allocate either, which is what keeps the per-packet paths alloc-free.
type Callback func(arg any)

// heapEntry is one queue position: ordering key plus a handle into the
// slot table. Entries are moved by value during sifts; the payload never
// moves.
type heapEntry struct {
	at   Clock
	seq  uint64 // tie-breaker: FIFO among same-instant events
	slot int32
	gen  uint32
}

// slotRec holds one scheduled event's payload. gen increments every time
// the slot changes state (armed, fired, cancelled), so stale heap entries
// and stale Timer handles are recognised in O(1) even after slot reuse.
type slotRec struct {
	gen uint32
	fn  func()
	cb  Callback
	arg any
}

// Engine is a single-threaded discrete-event simulator. The zero value is
// not usable; construct with New.
type Engine struct {
	now        Clock
	seq        uint64
	heap       []heapEntry
	slots      []slotRec
	free       []int32 // recycled slot indices
	live       int     // scheduled and not yet cancelled/dispatched
	rng        *rand.Rand
	halted     bool
	dispatched int64 // total events fired, counted on the hot path

	// progress mirrors now/dispatched/live through atomics for
	// cross-goroutine health sampling. The hot path refreshes it every
	// progressStride dispatches (amortized: three atomic stores per
	// stride), so readers see values at most one stride stale rather
	// than racing the single-threaded dispatch loop.
	progress struct {
		simNs   atomic.Int64
		events  atomic.Int64
		pending atomic.Int64
	}
}

// progressStride is the dispatch-count interval between atomic
// progress publications. A power of two keeps the hot-path check a
// mask; 1024 dispatches is well under a millisecond of wall time, so
// health samples taken every second lose nothing to the amortization.
const progressStride = 1024

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Clock { return e.now }

// Rand returns the engine's deterministic random source. All stochastic
// components of a simulation should draw from this source (or from sources
// derived from it) so that runs are reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Timer identifies a scheduled event so that it can be cancelled. The
// zero Timer is valid and refers to nothing; generation counting makes a
// stale Timer (fired, cancelled, or slot since reused) a safe no-op.
type Timer struct {
	slot int32 // slot index + 1; 0 means "no timer"
	gen  uint32
}

// less orders entries by time, then FIFO by scheduling sequence.
func less(a, b *heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores heap order from leaf i towards the root.
func (e *Engine) siftUp(i int) {
	h := e.heap
	ent := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !less(&ent, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ent
}

// siftDown restores heap order from the root (or an arbitrary hole) down.
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ent := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&h[j], &h[m]) {
				m = j
			}
		}
		if !less(&h[m], &ent) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = ent
}

// popTop removes the minimum entry.
func (e *Engine) popTop() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		e.siftDown(0)
	}
}

// allocSlot returns a free slot index, recycling before growing.
func (e *Engine) allocSlot() int32 {
	if n := len(e.free); n > 0 {
		s := e.free[n-1]
		e.free = e.free[:n-1]
		return s
	}
	e.slots = append(e.slots, slotRec{})
	return int32(len(e.slots) - 1)
}

// schedule arms one event. Exactly one of fn/cb is non-nil.
func (e *Engine) schedule(t Clock, fn func(), cb Callback, arg any) Timer {
	if t < e.now {
		t = e.now
	}
	s := e.allocSlot()
	rec := &e.slots[s]
	rec.gen++ // distinguishes this arming from every previous use of the slot
	rec.fn, rec.cb, rec.arg = fn, cb, arg
	e.heap = append(e.heap, heapEntry{at: t, seq: e.seq, slot: s, gen: rec.gen})
	e.seq++
	e.siftUp(len(e.heap) - 1)
	e.live++
	return Timer{slot: s + 1, gen: rec.gen}
}

// At schedules fn to run at virtual time t. Scheduling in the past (t less
// than Now) runs the event at the current instant instead; this keeps
// callers simple when computing delays that may round to zero or below.
// The closure is a call-site allocation — hot paths use AtCall.
func (e *Engine) At(t Clock, fn func()) Timer {
	return e.schedule(t, fn, nil, nil)
}

// After schedules fn to run d from now.
func (e *Engine) After(d Clock, fn func()) Timer {
	return e.schedule(e.now+d, fn, nil, nil)
}

// AtCall schedules cb(arg) at virtual time t (clamped to now like At).
// With a package-level cb and a pointer arg this allocates nothing.
func (e *Engine) AtCall(t Clock, cb Callback, arg any) Timer {
	return e.schedule(t, nil, cb, arg)
}

// AfterCall schedules cb(arg) to run d from now.
func (e *Engine) AfterCall(d Clock, cb Callback, arg any) Timer {
	return e.schedule(e.now+d, nil, cb, arg)
}

// Cancel removes a scheduled event in O(1). Cancelling the zero Timer, an
// already-fired timer, an already-cancelled timer, or a timer whose slot
// has since been reused is a no-op (the generation check catches all
// four). The heap entry stays behind and is discarded lazily at pop.
func (e *Engine) Cancel(t Timer) {
	if t.slot == 0 {
		return
	}
	rec := &e.slots[t.slot-1]
	if rec.gen != t.gen {
		return
	}
	rec.gen++ // kill the heap entry and any duplicate handles
	rec.fn, rec.cb, rec.arg = nil, nil, nil
	e.free = append(e.free, t.slot-1)
	e.live--
}

// Halt stops Run before the next event is dispatched.
func (e *Engine) Halt() { e.halted = true }

// dispatchTop fires the (live) minimum entry. The slot is released before
// the payload runs, so a callback may re-arm freely; its own Timer handle
// is already stale by then.
func (e *Engine) dispatchTop(ent heapEntry, rec *slotRec) {
	e.popTop()
	e.now = ent.at
	fn, cb, arg := rec.fn, rec.cb, rec.arg
	rec.gen++
	rec.fn, rec.cb, rec.arg = nil, nil, nil
	e.free = append(e.free, ent.slot)
	e.live--
	e.dispatched++
	if e.dispatched&(progressStride-1) == 0 {
		e.publishProgress()
	}
	if cb != nil {
		cb(arg)
	} else {
		fn()
	}
}

// publishProgress refreshes the atomic mirror of the progress counters.
func (e *Engine) publishProgress() {
	e.progress.simNs.Store(int64(e.now))
	e.progress.events.Store(e.dispatched)
	e.progress.pending.Store(int64(e.live))
}

// Progress returns virtual time (ns), total dispatched events, and
// pending timers from the atomic mirror. Unlike Now/Pending it is safe
// to call from other goroutines while the engine runs; values lag the
// dispatch loop by at most progressStride events. It implements
// telemetry.ProgressSource.
func (e *Engine) Progress() (simNs, events, pending int64) {
	return e.progress.simNs.Load(), e.progress.events.Load(), e.progress.pending.Load()
}

// Run dispatches events in order until the queue is empty or virtual time
// would pass until. The clock is left at the time of the last dispatched
// event, or at until if the queue drained earlier.
func (e *Engine) Run(until Clock) {
	e.halted = false
	for len(e.heap) > 0 && !e.halted {
		ent := e.heap[0]
		rec := &e.slots[ent.slot]
		if rec.gen != ent.gen { // cancelled; discard lazily
			e.popTop()
			continue
		}
		if ent.at > until {
			break
		}
		e.dispatchTop(ent, rec)
	}
	if e.now < until {
		e.now = until
	}
	e.publishProgress() // exact totals once the loop hands control back
}

// Step dispatches the single next pending event and reports whether one
// was dispatched.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ent := e.heap[0]
		rec := &e.slots[ent.slot]
		if rec.gen != ent.gen {
			e.popTop()
			continue
		}
		e.dispatchTop(ent, rec)
		return true
	}
	return false
}

// Pending returns the number of scheduled (non-cancelled) events in O(1),
// maintained as a live counter across schedule/cancel/dispatch.
func (e *Engine) Pending() int { return e.live }

// pendingLinear recounts live events by scanning the heap — the O(n)
// definition Pending used to implement. Tests assert the counter against
// it.
func (e *Engine) pendingLinear() int {
	n := 0
	for i := range e.heap {
		if e.slots[e.heap[i].slot].gen == e.heap[i].gen {
			n++
		}
	}
	return n
}
