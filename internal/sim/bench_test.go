package sim

import (
	"os"
	"testing"
	"time"
)

// chain is the benchmark workload: a self-rescheduling event, the shape
// of every steady-state netem path (pacing timers, link service, ACK
// return, controller ticks).
type chain struct {
	e    *Engine
	n    int
	stop int
}

func chainCb(arg any) {
	c := arg.(*chain)
	c.n++
	if c.n < c.stop {
		c.e.AfterCall(time.Microsecond, chainCb, c)
	}
}

// BenchmarkSteadyCallback measures the zero-alloc hot path: one AfterCall
// schedule + one dispatch per op, on a warm engine with a small queue.
func BenchmarkSteadyCallback(b *testing.B) {
	e := New(1)
	c := &chain{e: e, stop: b.N}
	// Background population so the heap has realistic depth.
	for i := 0; i < 64; i++ {
		e.At(time.Hour+time.Duration(i), func() {})
	}
	e.AfterCall(time.Microsecond, chainCb, c)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run(time.Hour - time.Minute)
	if c.n < b.N {
		b.Fatalf("dispatched %d of %d events", c.n, b.N)
	}
}

// BenchmarkClosureSchedule measures the legacy At path (closure per
// event) for comparison; this is the cold-path API.
func BenchmarkClosureSchedule(b *testing.B) {
	e := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(time.Duration(i)*time.Microsecond, fn)
	}
	e.Run(time.Duration(b.N) * time.Microsecond)
}

// BenchmarkHeapChurn stresses sift depth: schedule b.N events with
// spread timestamps up front, then drain.
func BenchmarkHeapChurn(b *testing.B) {
	e := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(time.Duration((i*2654435761)%1000000)*time.Microsecond, fn)
	}
	e.Run(time.Hour)
}

// steadyBudgetNs bounds the per-event cost (schedule + dispatch) of the
// pooled-callback hot path. The measured figure on the recording machine
// is ~40-80 ns; 250 ns absorbs slower CI hardware while still catching
// an accidental reintroduction of boxing or container/heap dispatch.
const steadyBudgetNs = 250

// TestEngineBudget is the regression guard for the allocation-free hot
// path: steady-state scheduling/dispatch must stay at exactly 0
// allocs/event, and under steadyBudgetNs ns/event. The nanosecond
// assertion only arms when CORE_BENCH_GUARD is set (make bench-core /
// scripts/check.sh), because it needs this package run in isolation; the
// allocation assertion is unconditional — allocations do not depend on
// machine load.
func TestEngineBudget(t *testing.T) {
	r := testing.Benchmark(BenchmarkSteadyCallback)
	if r.N == 0 {
		t.Skip("benchmark did not run")
	}
	t.Logf("steady callback path: %d ns/event, %d allocs/event (N=%d)",
		r.NsPerOp(), r.AllocsPerOp(), r.N)
	if a := r.AllocsPerOp(); a != 0 {
		t.Errorf("steady-state event path allocates: %d allocs/event, want 0", a)
	}
	if os.Getenv("CORE_BENCH_GUARD") == "" {
		t.Log("set CORE_BENCH_GUARD=1 (make bench-core) to arm the ns/event assertion")
		return
	}
	if ns := r.NsPerOp(); ns > steadyBudgetNs {
		t.Errorf("steady-state event path costs %d ns/event, budget %d", ns, steadyBudgetNs)
	}
}
