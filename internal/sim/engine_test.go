package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRunDispatchesInTimeOrder(t *testing.T) {
	e := New(1)
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 5, 25} {
		d := d * time.Millisecond
		e.At(d, func() { got = append(got, d) })
	}
	e.Run(time.Second)
	want := []time.Duration{5, 10, 20, 25, 30}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(want))
	}
	for i, d := range want {
		if got[i] != d*time.Millisecond {
			t.Errorf("event %d at %v, want %v", i, got[i], d*time.Millisecond)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.At(10*time.Millisecond, func() {
		e.After(5*time.Millisecond, func() { at = e.Now() })
	})
	e.Run(time.Second)
	if at != 15*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 15ms", at)
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.At(10*time.Millisecond, func() { fired = true })
	e.Cancel(tm)
	e.Run(time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancel-after-fire must not panic.
	e.Cancel(tm)
	tm2 := e.At(e.Now()+time.Millisecond, func() {})
	e.Run(e.Now() + time.Second)
	e.Cancel(tm2)
}

func TestRunStopsAtUntil(t *testing.T) {
	e := New(1)
	fired := 0
	e.At(10*time.Millisecond, func() { fired++ })
	e.At(30*time.Millisecond, func() { fired++ })
	e.Run(20 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired %d events before until, want 1", fired)
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("clock at %v, want 20ms", e.Now())
	}
	e.Run(time.Second)
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.At(10*time.Millisecond, func() {
		e.At(time.Millisecond, func() { at = e.Now() })
	})
	e.Run(time.Second)
	if at != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamp to 10ms", at)
	}
}

func TestHalt(t *testing.T) {
	e := New(1)
	fired := 0
	e.At(time.Millisecond, func() { fired++; e.Halt() })
	e.At(2*time.Millisecond, func() { fired++ })
	e.Run(time.Second)
	if fired != 1 {
		t.Fatalf("halt did not stop dispatch: fired=%d", fired)
	}
	e.Run(time.Second)
	if fired != 2 {
		t.Fatalf("resume after halt failed: fired=%d", fired)
	}
}

func TestStep(t *testing.T) {
	e := New(1)
	n := 0
	e.At(time.Millisecond, func() { n++ })
	e.At(2*time.Millisecond, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("step on empty queue reported an event")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := New(seed)
		var out []time.Duration
		var schedule func()
		schedule = func() {
			if e.Now() > 100*time.Millisecond {
				return
			}
			out = append(out, e.Now())
			e.After(time.Duration(1+e.Rand().Intn(5))*time.Millisecond, schedule)
		}
		e.After(0, schedule)
		e.Run(200 * time.Millisecond)
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic timestamps at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of events with arbitrary times, dispatch order is
// the sorted order of times (stable by insertion for ties).
func TestQuickDispatchOrderSorted(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := New(7)
		var got []time.Duration
		for _, o := range offsets {
			d := time.Duration(o) * time.Microsecond
			e.At(d, func() { got = append(got, d) })
		}
		e.Run(time.Hour)
		if len(got) != len(offsets) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: AtCall events interleave with At events in strict
// same-instant FIFO order — the heap swap must not reorder ties.
func TestSameInstantFIFOMixedAPIs(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		if i%2 == 0 {
			e.At(time.Millisecond, func() { order = append(order, i) })
		} else {
			e.AtCall(time.Millisecond, func(arg any) { order = append(order, arg.(int)) }, i)
		}
	}
	e.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed-API same-instant events fired out of order: %v", order)
		}
	}
}

// Pending's O(1) live counter must always agree with the O(n) scan it
// replaced, across an adversarial schedule/cancel/dispatch mix.
func TestPendingMatchesLinearCount(t *testing.T) {
	e := New(3)
	check := func(ctx string) {
		t.Helper()
		if got, want := e.Pending(), e.pendingLinear(); got != want {
			t.Fatalf("%s: Pending() = %d, linear recount = %d", ctx, got, want)
		}
	}
	var timers []Timer
	for i := 0; i < 100; i++ {
		timers = append(timers, e.At(time.Duration(i%17)*time.Millisecond, func() {}))
	}
	check("after scheduling")
	for i := 0; i < len(timers); i += 3 {
		e.Cancel(timers[i])
	}
	check("after cancels")
	for i := 0; i < len(timers); i += 3 {
		e.Cancel(timers[i]) // double-cancel must not double-decrement
	}
	check("after double-cancels")
	for e.Step() {
		check("mid-dispatch")
	}
	if e.Pending() != 0 {
		t.Fatalf("drained engine reports %d pending", e.Pending())
	}
	// Events cancelled from inside a callback.
	var a, b Timer
	a = e.After(time.Millisecond, func() {})
	b = e.After(time.Millisecond, func() {})
	e.After(0, func() { e.Cancel(a); e.Cancel(b) })
	check("before cancel-inside-callback run")
	e.Run(e.Now() + time.Second)
	check("after cancel-inside-callback run")
}

// A Timer handle must go stale the moment its event fires, even when the
// underlying slot is immediately reused by a new event: cancelling the
// old handle must not kill the new tenant.
func TestCancelStaleHandleAfterSlotReuse(t *testing.T) {
	e := New(1)
	fired := 0
	old := e.At(time.Millisecond, func() { fired++ })
	e.Run(time.Second) // fires; slot returns to the free list
	// The next event recycles the same slot.
	e.At(e.Now()+time.Millisecond, func() { fired++ })
	e.Cancel(old) // stale: must be a no-op against the reused slot
	e.Run(e.Now() + time.Second)
	if fired != 2 {
		t.Fatalf("stale Cancel killed a reused slot's event: fired=%d, want 2", fired)
	}
}

// Re-arming from inside a firing callback must work: the firing event's
// slot is released before the callback runs, and the fresh timer must be
// independently cancellable.
func TestRearmFromInsideCallback(t *testing.T) {
	e := New(1)
	fired := 0
	var tm Timer
	tm = e.After(time.Millisecond, func() {
		fired++
		e.Cancel(tm) // self-cancel after fire: stale, must not disturb anything
		tm = e.After(time.Millisecond, func() { fired++ })
	})
	e.Run(time.Second)
	if fired != 2 {
		t.Fatalf("re-armed callback chain fired %d times, want 2", fired)
	}
	// Re-arm again, then cancel the fresh timer before it fires.
	tm = e.After(time.Millisecond, func() { fired++ })
	e.Cancel(tm)
	e.Run(e.Now() + time.Second)
	if fired != 2 {
		t.Fatalf("cancelled re-armed timer fired anyway: fired=%d", fired)
	}
}

// Property (mirrors link_prop_test.go style): for any batch of events
// with arbitrary times, dispatch order equals the stable sort of the
// batch by time — i.e. FIFO among equal instants, sorted across them.
func TestQuickSameInstantFIFOPreserved(t *testing.T) {
	f := func(offsets []uint8) bool {
		e := New(11)
		type fired struct {
			at time.Duration
			id int
		}
		var got []fired
		for i, o := range offsets {
			id := i
			// Coarse buckets force many same-instant collisions.
			d := time.Duration(o%8) * time.Millisecond
			e.AtCall(d, func(arg any) { got = append(got, fired{e.Now(), arg.(int)}) }, id)
		}
		e.Run(time.Hour)
		if len(got) != len(offsets) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false // time order violated
			}
			if got[i].at == got[i-1].at && got[i].id < got[i-1].id {
				return false // FIFO among ties violated
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New(1)
		for j := 0; j < 1000; j++ {
			e.At(time.Duration(j)*time.Microsecond, func() {})
		}
		e.Run(time.Second)
	}
}
