package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestRunDispatchesInTimeOrder(t *testing.T) {
	e := New(1)
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 5, 25} {
		d := d * time.Millisecond
		e.At(d, func() { got = append(got, d) })
	}
	e.Run(time.Second)
	want := []time.Duration{5, 10, 20, 25, 30}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(want))
	}
	for i, d := range want {
		if got[i] != d*time.Millisecond {
			t.Errorf("event %d at %v, want %v", i, got[i], d*time.Millisecond)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.At(10*time.Millisecond, func() {
		e.After(5*time.Millisecond, func() { at = e.Now() })
	})
	e.Run(time.Second)
	if at != 15*time.Millisecond {
		t.Fatalf("nested After fired at %v, want 15ms", at)
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.At(10*time.Millisecond, func() { fired = true })
	e.Cancel(tm)
	e.Run(time.Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and cancel-after-fire must not panic.
	e.Cancel(tm)
	tm2 := e.At(e.Now()+time.Millisecond, func() {})
	e.Run(e.Now() + time.Second)
	e.Cancel(tm2)
}

func TestRunStopsAtUntil(t *testing.T) {
	e := New(1)
	fired := 0
	e.At(10*time.Millisecond, func() { fired++ })
	e.At(30*time.Millisecond, func() { fired++ })
	e.Run(20 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired %d events before until, want 1", fired)
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("clock at %v, want 20ms", e.Now())
	}
	e.Run(time.Second)
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.At(10*time.Millisecond, func() {
		e.At(time.Millisecond, func() { at = e.Now() })
	})
	e.Run(time.Second)
	if at != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamp to 10ms", at)
	}
}

func TestHalt(t *testing.T) {
	e := New(1)
	fired := 0
	e.At(time.Millisecond, func() { fired++; e.Halt() })
	e.At(2*time.Millisecond, func() { fired++ })
	e.Run(time.Second)
	if fired != 1 {
		t.Fatalf("halt did not stop dispatch: fired=%d", fired)
	}
	e.Run(time.Second)
	if fired != 2 {
		t.Fatalf("resume after halt failed: fired=%d", fired)
	}
}

func TestStep(t *testing.T) {
	e := New(1)
	n := 0
	e.At(time.Millisecond, func() { n++ })
	e.At(2*time.Millisecond, func() { n++ })
	if !e.Step() || n != 1 {
		t.Fatalf("first step: n=%d", n)
	}
	if !e.Step() || n != 2 {
		t.Fatalf("second step: n=%d", n)
	}
	if e.Step() {
		t.Fatal("step on empty queue reported an event")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := New(seed)
		var out []time.Duration
		var schedule func()
		schedule = func() {
			if e.Now() > 100*time.Millisecond {
				return
			}
			out = append(out, e.Now())
			e.After(time.Duration(1+e.Rand().Intn(5))*time.Millisecond, schedule)
		}
		e.After(0, schedule)
		e.Run(200 * time.Millisecond)
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic timestamps at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of events with arbitrary times, dispatch order is
// the sorted order of times (stable by insertion for ties).
func TestQuickDispatchOrderSorted(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := New(7)
		var got []time.Duration
		for _, o := range offsets {
			d := time.Duration(o) * time.Microsecond
			e.At(d, func() { got = append(got, d) })
		}
		e.Run(time.Hour)
		if len(got) != len(offsets) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New(1)
		for j := 0; j < 1000; j++ {
			e.At(time.Duration(j)*time.Microsecond, func() {})
		}
		e.Run(time.Second)
	}
}
