// Package spans folds the flat telemetry event stream into the causal
// span hierarchy the events imply — run → experiment → scenario →
// flow → control cycle → stage, with decisions, faults, drops, and
// anomalies as instants and queue samples as counter tracks — and
// exports it as Chrome trace-event JSON (the "JSON Array Format"), so
// any recorded run opens directly in Perfetto or chrome://tracing.
//
// Mapping:
//
//   - Each simulation run becomes one process (pid). Runs are detected
//     by virtual time moving backwards: a sweep's ordered replay
//     concatenates jobs whose clocks each start at zero, so a
//     timestamp regression is a job boundary.
//   - Within a run, tid 0 is the harness track (scenario spans), tid 1
//     the bottleneck link, and tid n+2 flow n.
//   - Span events (begin/end) become ph "B"/"E" pairs; stage events
//     open a stage span closed by the next stage or the enclosing
//     cycle's end, so the B/E nesting is always well formed.
//   - Experiment spans surround whole sweeps (many runs), which a
//     single pid cannot represent; they become global instants that
//     bracket the runs and label the process names in between.
//   - decision/early_exit/no_ack/action/drop/fault/anomaly events
//     become thread instants with their interesting fields as args;
//     queue samples become "queue bytes" / "capacity Mbps" counters.
//   - Per-packet enqueue events are deliberately omitted: at one
//     instant per packet they swamp the UI without adding structure
//     the queue counter does not already show.
//
// Virtual-time nanoseconds map to trace microseconds (the format's
// unit) as fractional ts values, preserving nanosecond resolution.
package spans

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"libra/internal/telemetry"
)

// traceEvent is one Chrome trace-event record.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`    // instant scope
	Args map[string]any `json:"args,omitempty"` // sorted keys via encoding/json
}

// Reserved thread ids within each run's process.
const (
	tidHarness = 0
	tidLink    = 1
	tidFlow0   = 2
)

// stack-entry kinds: explicit spans close by name, stage spans close
// implicitly on the next stage.
const (
	kindSpan = iota
	kindStage
)

type openSpan struct {
	name string
	kind int
}

// Builder consumes telemetry events in stream order and accumulates
// trace events. Feed with Add, seal with Finish, serialize with
// WriteTo.
type Builder struct {
	out []traceEvent

	pid     int
	started bool
	lastT   int64

	experiment string // active experiment label, spans runs
	scenario   string // current run's scenario label

	threads map[int]bool       // tids named in the current run
	stacks  map[int][]openSpan // per-tid open spans in the current run
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{}
}

// Events returns the number of trace events accumulated so far.
func (b *Builder) Events() int { return len(b.out) }

// Runs returns the number of simulation runs (pids) detected so far.
func (b *Builder) Runs() int { return b.pid }

// us converts virtual nanoseconds to trace microseconds.
func us(t int64) float64 { return float64(t) / 1e3 }

// tidFor maps an event to its thread track.
func tidFor(e *telemetry.Event) int {
	if e.Flow >= 0 {
		return e.Flow + tidFlow0
	}
	if e.Type == telemetry.TypeSpan {
		return tidHarness
	}
	return tidLink
}

// Add folds one event in, in stream order.
func (b *Builder) Add(e *telemetry.Event) {
	if e.Type == telemetry.TypeSpan && strings.HasPrefix(e.Name, "experiment:") {
		b.addExperimentMarker(e)
		return
	}
	if !b.started || e.T < b.lastT {
		b.newRun()
	}
	b.lastT = e.T
	tid := tidFor(e)
	b.nameThread(tid)

	switch e.Type {
	case telemetry.TypeSpan:
		if e.Reason == telemetry.SpanBegin {
			if strings.HasPrefix(e.Name, "scenario:") {
				b.scenario = strings.TrimPrefix(e.Name, "scenario:")
				b.nameProcess()
			}
			args := map[string]any{}
			if e.XPrev != 0 {
				args["x_prev"] = e.XPrev
			}
			b.open(tid, e.Name, kindSpan, e.T, args)
		} else {
			b.closeNamed(tid, e.Name, e.T)
		}
	case telemetry.TypeStage:
		// A stage event is entry into a stage: it closes the previous
		// stage span (if one is open on this track) and opens the next.
		b.closeTopStage(tid, e.T)
		b.open(tid, e.Stage, kindStage, e.T, map[string]any{
			"rate_mbps": mbps(e.Rate), "x_prev_mbps": mbps(e.XPrev),
		})
	case telemetry.TypeQueue:
		b.counter("queue bytes", e.T, map[string]any{"bytes": e.Queue})
		if e.Rate > 0 {
			b.counter("capacity Mbps", e.T, map[string]any{"mbps": mbps(e.Rate)})
		}
	case telemetry.TypeEnqueue:
		// omitted by design: per-packet instants add volume, not shape
	case telemetry.TypeDecision:
		b.instant(tid, "decision "+e.Winner, e.T, map[string]any{
			"winner": e.Winner, "x_prev_mbps": mbps(e.XPrev),
			"u_prev": e.UPrev, "u_cl": e.UCl, "u_rl": e.URl,
			"rtt_ms": float64(e.RTT) / 1e6,
		})
	case telemetry.TypeEarlyExit:
		b.instant(tid, "early_exit", e.T, map[string]any{
			"x_cl_mbps": mbps(e.XCl), "x_rl_mbps": mbps(e.XRl),
		})
	case telemetry.TypeNoAck:
		name := "no_ack"
		if e.Reason != "" {
			name += " " + e.Reason
		}
		b.instant(tid, name, e.T, map[string]any{"x_prev_mbps": mbps(e.XPrev)})
	case telemetry.TypeAction:
		b.instant(tid, "rl_action", e.T, map[string]any{
			"action": e.Action, "rate_mbps": mbps(e.Rate), "reward": e.Reward,
		})
	case telemetry.TypeDrop:
		b.instant(tid, "drop "+e.Reason, e.T, map[string]any{
			"bytes": e.Bytes, "queue": e.Queue,
		})
	case telemetry.TypeFault:
		b.instant(tid, "fault "+e.Reason, e.T, nil)
	case telemetry.TypeAnomaly:
		b.instant(tid, "anomaly "+e.Reason, e.T, nil)
	}
}

// mbps converts bytes/sec to Mbit/s for arg readability.
func mbps(rate float64) float64 { return rate * 8 / 1e6 }

// addExperimentMarker handles the run-spanning experiment boundaries.
func (b *Builder) addExperimentMarker(e *telemetry.Event) {
	name := strings.TrimPrefix(e.Name, "experiment:")
	if e.Reason == telemetry.SpanBegin {
		b.experiment = name
	} else {
		b.experiment = ""
	}
	boundary := "begin"
	if e.Reason == telemetry.SpanEnd {
		boundary = "end"
	}
	pid := b.pid
	if pid == 0 {
		pid = 1 // marker before the first run: attribute to it
	}
	b.out = append(b.out, traceEvent{
		Name: "experiment:" + name + " " + boundary,
		Ph:   "i", S: "g",
		Ts: us(b.lastT), Pid: pid, Tid: tidHarness,
	})
}

// newRun closes the previous run's open spans and starts a fresh pid.
func (b *Builder) newRun() {
	b.closeRun()
	b.started = true
	b.pid++
	b.scenario = ""
	b.threads = map[int]bool{}
	b.stacks = map[int][]openSpan{}
	b.nameProcess()
}

// closeRun seals every open span of the current run at the last seen
// timestamp, keeping B/E pairs balanced across run boundaries and at
// end of stream (Perfetto tolerates unclosed B events, chrome://tracing
// renders them unbounded — closing explicitly is unambiguous).
func (b *Builder) closeRun() {
	if !b.started {
		return
	}
	for _, tid := range sortedTids(b.stacks) {
		st := b.stacks[tid]
		for i := len(st) - 1; i >= 0; i-- {
			b.out = append(b.out, traceEvent{
				Name: st[i].name, Ph: "E", Ts: us(b.lastT), Pid: b.pid, Tid: tid,
			})
		}
		delete(b.stacks, tid)
	}
}

// sortedTids returns the stack keys in ascending order so run-closing
// emission order is deterministic.
func sortedTids(m map[int][]openSpan) []int {
	out := make([]int, 0, len(m))
	for tid := range m {
		out = append(out, tid)
	}
	for i := 1; i < len(out); i++ { // tiny n: insertion sort
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// nameProcess (re-)labels the current pid from what is known so far.
func (b *Builder) nameProcess() {
	name := fmt.Sprintf("run %d", b.pid)
	if b.scenario != "" {
		name += " · " + b.scenario
	}
	if b.experiment != "" {
		name += " · " + b.experiment
	}
	b.out = append(b.out, traceEvent{
		Name: "process_name", Ph: "M", Pid: b.pid, Tid: tidHarness,
		Args: map[string]any{"name": name},
	})
}

// nameThread emits thread_name metadata on a tid's first use in a run.
func (b *Builder) nameThread(tid int) {
	if b.threads[tid] {
		return
	}
	b.threads[tid] = true
	var name string
	switch tid {
	case tidHarness:
		name = "harness"
	case tidLink:
		name = "link"
	default:
		name = fmt.Sprintf("flow %d", tid-tidFlow0)
	}
	b.out = append(b.out, traceEvent{
		Name: "thread_name", Ph: "M", Pid: b.pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// open pushes a span and emits its B event.
func (b *Builder) open(tid int, name string, kind int, t int64, args map[string]any) {
	b.stacks[tid] = append(b.stacks[tid], openSpan{name: name, kind: kind})
	if len(args) == 0 {
		args = nil
	}
	b.out = append(b.out, traceEvent{
		Name: name, Ph: "B", Ts: us(t), Pid: b.pid, Tid: tid, Args: args,
	})
}

// closeNamed closes the named span, first sealing anything stacked
// above it (an abandoned cycle or stage) so nesting stays LIFO. An end
// with no matching begin — a dump file that starts mid-cycle — is
// dropped.
func (b *Builder) closeNamed(tid int, name string, t int64) {
	st := b.stacks[tid]
	at := -1
	for i := len(st) - 1; i >= 0; i-- {
		if st[i].name == name && st[i].kind == kindSpan {
			at = i
			break
		}
	}
	if at < 0 {
		return
	}
	for i := len(st) - 1; i >= at; i-- {
		b.out = append(b.out, traceEvent{
			Name: st[i].name, Ph: "E", Ts: us(t), Pid: b.pid, Tid: tid,
		})
	}
	b.stacks[tid] = st[:at]
}

// closeTopStage ends the open stage span on tid, if one is on top.
func (b *Builder) closeTopStage(tid int, t int64) {
	st := b.stacks[tid]
	if n := len(st); n > 0 && st[n-1].kind == kindStage {
		b.out = append(b.out, traceEvent{
			Name: st[n-1].name, Ph: "E", Ts: us(t), Pid: b.pid, Tid: tid,
		})
		b.stacks[tid] = st[:n-1]
	}
}

// instant emits a thread-scoped instant event.
func (b *Builder) instant(tid int, name string, t int64, args map[string]any) {
	if len(args) == 0 {
		args = nil
	}
	b.out = append(b.out, traceEvent{
		Name: name, Ph: "i", S: "t", Ts: us(t), Pid: b.pid, Tid: tid, Args: args,
	})
}

// counter emits a counter sample (its own track per name in the UI).
func (b *Builder) counter(name string, t int64, args map[string]any) {
	b.out = append(b.out, traceEvent{
		Name: name, Ph: "C", Ts: us(t), Pid: b.pid, Tid: tidLink, Args: args,
	})
}

// Finish seals open spans at end of stream. The builder must not be
// fed after Finish.
func (b *Builder) Finish() { b.closeRun() }

// WriteTo serializes the accumulated trace as a JSON object with a
// traceEvents array — the envelope both Perfetto and chrome://tracing
// accept — streaming one event per line. Output is deterministic:
// encoding/json sorts the args maps.
func (b *Builder) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	if _, err := io.WriteString(cw, "{\"traceEvents\":[\n"); err != nil {
		return cw.n, err
	}
	for i := range b.out {
		line, err := json.Marshal(&b.out[i])
		if err != nil {
			return cw.n, err
		}
		if i > 0 {
			if _, err := io.WriteString(cw, ",\n"); err != nil {
				return cw.n, err
			}
		}
		if _, err := cw.Write(line); err != nil {
			return cw.n, err
		}
	}
	_, err := io.WriteString(cw, "\n]}\n")
	return cw.n, err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Convert is the one-shot path: decode a JSONL event stream, build,
// and write the Chrome trace JSON.
func Convert(r io.Reader, w io.Writer) error {
	b := NewBuilder()
	d := telemetry.NewDecoder(r)
	for {
		e, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		b.Add(&e)
	}
	b.Finish()
	_, err := b.WriteTo(w)
	return err
}
