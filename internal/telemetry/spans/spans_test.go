package spans

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"libra/internal/telemetry"
)

// decode parses the builder's output back into generic trace events.
func decode(t *testing.T, b *Builder) []map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteTo output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	return doc.TraceEvents
}

// checkBalanced walks the events asserting per-(pid,tid) LIFO B/E
// nesting with monotonic timestamps, and that nothing stays open.
func checkBalanced(t *testing.T, evs []map[string]any) {
	t.Helper()
	type key struct{ pid, tid float64 }
	stacks := map[key][]map[string]any{}
	for i, e := range evs {
		k := key{e["pid"].(float64), e["tid"].(float64)}
		switch e["ph"] {
		case "B":
			stacks[k] = append(stacks[k], e)
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				t.Fatalf("event %d: E %q with empty stack on %v", i, e["name"], k)
			}
			top := st[len(st)-1]
			if top["name"] != e["name"] {
				t.Fatalf("event %d: E %q does not match open span %q (non-LIFO nesting)",
					i, e["name"], top["name"])
			}
			if e["ts"].(float64) < top["ts"].(float64) {
				t.Fatalf("event %d: span %q ends at %v before it begins at %v",
					i, e["name"], e["ts"], top["ts"])
			}
			stacks[k] = st[:len(st)-1]
		}
	}
	for k, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("%v: %d span(s) left open (first: %q)", k, len(st), st[0]["name"])
		}
	}
}

// feed pushes a minimal but structurally complete run into the builder:
// scenario > flow > cycle > stages, with a decision and an anomaly.
func feed(b *Builder, base int64) {
	evs := []telemetry.Event{
		{T: base, Type: telemetry.TypeSpan, Flow: -1, Reason: telemetry.SpanBegin, Name: "scenario:step"},
		{T: base, Type: telemetry.TypeSpan, Flow: 0, Reason: telemetry.SpanBegin, Name: "flow:c-libra"},
		{T: base + 10, Type: telemetry.TypeSpan, Flow: 0, Reason: telemetry.SpanBegin, Name: "cycle", XPrev: 1e6},
		{T: base + 10, Type: telemetry.TypeStage, Flow: 0, Stage: "explore", Rate: 1e6},
		{T: base + 20, Type: telemetry.TypeStage, Flow: 0, Stage: "eval-1", Rate: 1.2e6},
		{T: base + 30, Type: telemetry.TypeDecision, Flow: 0, Winner: "x_cl", UPrev: 1, UCl: 2},
		{T: base + 30, Type: telemetry.TypeSpan, Flow: 0, Reason: telemetry.SpanEnd, Name: "cycle"},
		{T: base + 35, Type: telemetry.TypeQueue, Flow: -1, Queue: 3000, Rate: 12e6},
		{T: base + 40, Type: telemetry.TypeAnomaly, Flow: 0, Reason: telemetry.AnomalyOutage},
		{T: base + 50, Type: telemetry.TypeSpan, Flow: 0, Reason: telemetry.SpanEnd, Name: "flow:c-libra"},
		{T: base + 50, Type: telemetry.TypeSpan, Flow: -1, Reason: telemetry.SpanEnd, Name: "scenario:step"},
	}
	for i := range evs {
		b.Add(&evs[i])
	}
}

func TestBuilderBalancedNesting(t *testing.T) {
	b := NewBuilder()
	feed(b, 0)
	b.Finish()
	evs := decode(t, b)
	checkBalanced(t, evs)
	if b.Runs() != 1 {
		t.Fatalf("Runs() = %d, want 1", b.Runs())
	}
	// The open stage (eval-1) must have been sealed by the cycle end,
	// and the cycle by its own E: count B/E pairs.
	var bCnt, eCnt int
	for _, e := range evs {
		switch e["ph"] {
		case "B":
			bCnt++
		case "E":
			eCnt++
		}
	}
	if bCnt == 0 || bCnt != eCnt {
		t.Fatalf("B/E counts %d/%d, want equal and nonzero", bCnt, eCnt)
	}
}

func TestBuilderRunSplitOnTimeRegression(t *testing.T) {
	b := NewBuilder()
	feed(b, 0)
	feed(b, 0) // clock restarts: a sweep job boundary
	b.Finish()
	evs := decode(t, b)
	checkBalanced(t, evs)
	if b.Runs() != 2 {
		t.Fatalf("Runs() = %d, want 2 after a timestamp regression", b.Runs())
	}
	pids := map[float64]bool{}
	for _, e := range evs {
		pids[e["pid"].(float64)] = true
	}
	if len(pids) != 2 {
		t.Fatalf("distinct pids = %d, want 2", len(pids))
	}
}

// TestBuilderAbandonedSpansSealedAtRunBoundary leaves a cycle and a
// stage open when the run ends; the boundary must close them so the
// next run starts clean.
func TestBuilderAbandonedSpansSealedAtRunBoundary(t *testing.T) {
	b := NewBuilder()
	evs := []telemetry.Event{
		{T: 5, Type: telemetry.TypeSpan, Flow: 0, Reason: telemetry.SpanBegin, Name: "cycle"},
		{T: 6, Type: telemetry.TypeStage, Flow: 0, Stage: "explore"},
		{T: 2, Type: telemetry.TypeStage, Flow: 1, Stage: "exploit"}, // T regressed: new run
	}
	for i := range evs {
		b.Add(&evs[i])
	}
	b.Finish()
	checkBalanced(t, decode(t, b))
	if b.Runs() != 2 {
		t.Fatalf("Runs() = %d, want 2", b.Runs())
	}
}

// TestBuilderMidStreamDumpTolerated feeds a stream that starts with
// dangling ends and stages — the shape of a flight-recorder dump cut
// mid-cycle — and expects valid, balanced output.
func TestBuilderMidStreamDumpTolerated(t *testing.T) {
	b := NewBuilder()
	evs := []telemetry.Event{
		{T: 100, Type: telemetry.TypeStage, Flow: 0, Stage: "eval-2"},
		{T: 110, Type: telemetry.TypeSpan, Flow: 0, Reason: telemetry.SpanEnd, Name: "cycle"},
		{T: 115, Type: telemetry.TypeSpan, Flow: 0, Reason: telemetry.SpanEnd, Name: "flow:c-libra"},
		{T: 120, Type: telemetry.TypeSpan, Flow: 0, Reason: telemetry.SpanBegin, Name: "cycle"},
		{T: 130, Type: telemetry.TypeAnomaly, Flow: 0, Reason: telemetry.AnomalyCollapse},
	}
	for i := range evs {
		b.Add(&evs[i])
	}
	b.Finish()
	checkBalanced(t, decode(t, b))
}

func TestExperimentMarkersAreGlobalInstants(t *testing.T) {
	b := NewBuilder()
	begin := telemetry.Event{T: 0, Type: telemetry.TypeSpan, Flow: -1, Reason: telemetry.SpanBegin, Name: "experiment:fig7"}
	b.Add(&begin)
	feed(b, 0)
	feed(b, 0)
	end := telemetry.Event{T: 0, Type: telemetry.TypeSpan, Flow: -1, Reason: telemetry.SpanEnd, Name: "experiment:fig7"}
	b.Add(&end)
	b.Finish()
	evs := decode(t, b)
	checkBalanced(t, evs)

	var markers, labeled int
	for _, e := range evs {
		name, _ := e["name"].(string)
		if strings.HasPrefix(name, "experiment:fig7") {
			markers++
			if e["ph"] != "i" || e["s"] != "g" {
				t.Fatalf("experiment marker %q is ph=%v s=%v, want a global instant", name, e["ph"], e["s"])
			}
		}
		if e["ph"] == "M" && name == "process_name" {
			if pn, _ := e["args"].(map[string]any)["name"].(string); strings.Contains(pn, "fig7") {
				labeled++
			}
		}
	}
	if markers != 2 {
		t.Fatalf("experiment markers = %d, want begin+end", markers)
	}
	if labeled == 0 {
		t.Fatal("no process name carries the active experiment label")
	}
	// The experiment never becomes a B/E span: it brackets several runs
	// and a span cannot cross pids.
	for _, e := range evs {
		if name, _ := e["name"].(string); strings.HasPrefix(name, "experiment:") && (e["ph"] == "B" || e["ph"] == "E") {
			t.Fatalf("experiment emitted as %v span", e["ph"])
		}
	}
}

func TestConvertRoundTrip(t *testing.T) {
	var jsonl bytes.Buffer
	rec := telemetry.NewRecorder(&jsonl)
	for _, e := range []telemetry.Event{
		{T: 0, Type: telemetry.TypeSpan, Flow: -1, Reason: telemetry.SpanBegin, Name: "scenario:wired"},
		{T: 10, Type: telemetry.TypeStage, Flow: 0, Stage: "explore", Rate: 2e6},
		{T: 20, Type: telemetry.TypeDrop, Flow: -1, Reason: "tail", Bytes: 1500},
		{T: 30, Type: telemetry.TypeSpan, Flow: -1, Reason: telemetry.SpanEnd, Name: "scenario:wired"},
	} {
		rec.Emit(&e)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := Convert(&jsonl, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("Convert output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("Convert produced no trace events")
	}
	checkBalanced(t, doc.TraceEvents)
}
