package telemetry

import (
	"bytes"
	"testing"
)

// Merging N per-part registries must be indistinguishable from having
// recorded everything into one registry directly.
func TestMergeMatchesDirectRecording(t *testing.T) {
	record := func(reg *Registry, part int) {
		reg.Counter("c_total", "a counter").Add(int64(part + 1))
		reg.Counter("c_zero", "never incremented").Add(0)
		reg.Gauge("g_last", "a gauge").Set(float64(part))
		reg.Histogram("h", "a histogram", []float64{1, 10, 100}).Observe(float64(part * 7))
	}

	direct := NewRegistry()
	merged := NewRegistry()
	for part := 0; part < 3; part++ {
		record(direct, part)
		sub := NewRegistry()
		record(sub, part)
		merged.Merge(sub)
	}

	var a, b bytes.Buffer
	if err := direct.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("merged exposition differs from direct:\n--- direct ---\n%s\n--- merged ---\n%s", a.String(), b.String())
	}

	snap := merged.Snapshot()
	if got := snap.Counters["c_total"]; got != 6 {
		t.Errorf("c_total = %d, want 6", got)
	}
	if _, ok := snap.Counters["c_zero"]; !ok {
		t.Error("zero-valued counter not registered by merge")
	}
	if got := snap.Gauges["g_last"]; got != 2 {
		t.Errorf("g_last = %v, want 2 (last merge wins)", got)
	}
	h := snap.Histograms["h"]
	if h.Count != 3 || h.Sum != 0+7+14 {
		t.Errorf("histogram count/sum = %d/%v, want 3/21", h.Count, h.Sum)
	}
}

func TestMergeNilAndSelf(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", "").Add(2)
	reg.Merge(nil)
	reg.Merge(reg)
	if got := reg.Snapshot().Counters["c"]; got != 2 {
		t.Fatalf("c = %d after nil/self merge, want 2", got)
	}
}

// Mismatched bucket layouts cannot be aligned; sum and count still
// accumulate so means stay right, and the degradation is counted in
// telemetry_merge_lossy_total.
func TestMergeHistogramBoundsMismatch(t *testing.T) {
	dst := NewRegistry()
	dst.Histogram("h", "", []float64{1, 2, 3}).Observe(2)
	src := NewRegistry()
	src.Histogram("h", "", []float64{10, 20}).Observe(15)
	dst.Merge(src)
	h := dst.Snapshot().Histograms["h"]
	if h.Count != 2 || h.Sum != 17 {
		t.Fatalf("count/sum = %d/%v, want 2/17", h.Count, h.Sum)
	}
	var buckets uint64
	for _, c := range h.Counts {
		buckets += c
	}
	if buckets != 1 {
		t.Fatalf("bucketed samples = %d, want 1 (mismatched sample lands in no bucket)", buckets)
	}
	if got := dst.Snapshot().Counters["telemetry_merge_lossy_total"]; got != 1 {
		t.Fatalf("telemetry_merge_lossy_total = %d, want 1", got)
	}

	// A second lossy merge keeps counting; a clean merge does not.
	src2 := NewRegistry()
	src2.Histogram("h", "", []float64{10, 20}).Observe(11)
	dst.Merge(src2)
	clean := NewRegistry()
	clean.Histogram("h", "", []float64{1, 2, 3}).Observe(1)
	dst.Merge(clean)
	if got := dst.Snapshot().Counters["telemetry_merge_lossy_total"]; got != 2 {
		t.Fatalf("telemetry_merge_lossy_total = %d after second lossy + clean merge, want 2", got)
	}
}

// A clean merge must not register the lossy counter at all — merged
// registries stay indistinguishable from direct recording.
func TestMergeCleanRegistersNoLossyCounter(t *testing.T) {
	dst := NewRegistry()
	src := NewRegistry()
	src.Histogram("h", "", []float64{1, 2}).Observe(1)
	dst.Merge(src)
	if _, ok := dst.Snapshot().Counters["telemetry_merge_lossy_total"]; ok {
		t.Fatal("clean merge registered telemetry_merge_lossy_total")
	}
}

// Multi fans events out to every enabled sink and collapses trivial
// cases (no live sinks → nil, one live sink → unwrapped).
func TestMultiTracer(t *testing.T) {
	if Multi() != nil || Multi(nil, Nop{}) != nil {
		t.Fatal("Multi with no live sinks must be nil")
	}
	b1 := &Buffer{}
	if got := Multi(nil, b1, Nop{}); got != Tracer(b1) {
		t.Fatal("Multi with one live sink must return it unwrapped")
	}
	b2 := &Buffer{}
	m := Multi(b1, b2)
	ev := Event{T: 5, Type: TypeQueue, Flow: -1, Queue: 9}
	m.Emit(&ev)
	if b1.Len() != 1 || b2.Len() != 1 {
		t.Fatalf("fan-out reached %d/%d sinks, want 1/1", b1.Len(), b2.Len())
	}
	if !m.Enabled() {
		t.Fatal("multi tracer must report enabled")
	}
}

// A buffered event stream replayed into a recorder must be identical to
// recording the events directly.
func TestBufferReplayByteIdentical(t *testing.T) {
	evs := []Event{
		{Type: TypeStage, Flow: 1, T: 10, Stage: "explore"},
		{Type: TypeQueue, Flow: 2, T: 20, Queue: 35},
		{Type: TypeStage, Flow: 1, T: 30, Stage: "exploit"},
	}

	var direct bytes.Buffer
	rec := NewRecorder(&direct)
	for i := range evs {
		rec.Emit(&evs[i])
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	buf := &Buffer{}
	for i := range evs {
		buf.Emit(&evs[i])
	}
	if buf.Len() != len(evs) {
		t.Fatalf("buffered %d events, want %d", buf.Len(), len(evs))
	}
	var replayed bytes.Buffer
	rec2 := NewRecorder(&replayed)
	buf.ReplayTo(rec2)
	if err := rec2.Close(); err != nil {
		t.Fatal(err)
	}

	if direct.String() != replayed.String() {
		t.Fatalf("replayed stream differs:\n--- direct ---\n%s\n--- replayed ---\n%s", direct.String(), replayed.String())
	}

	// Nil buffer and nil sink are no-ops, not crashes.
	var nilBuf *Buffer
	nilBuf.ReplayTo(rec2)
	buf.ReplayTo(nil)
}
