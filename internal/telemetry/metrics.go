package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Metric names follow Prometheus
// conventions and may carry a literal label suffix, e.g.
//
//	libra_link_drops_total{reason="tail"}
//
// The label block is emitted verbatim in the Prometheus exposition (and
// merged with the "le" label for histogram buckets); the JSON snapshot
// keys metrics by the full name. Lookup methods are idempotent: the
// first call registers, later calls return the same metric. Registry is
// goroutine-safe; metric updates are lock-free (counters, gauges) or
// take a per-metric mutex (histograms).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string // base name -> help text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that may go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: bounds are ascending upper
// bounds, with an implicit final +Inf bucket. Counts are cumulative at
// export time (Prometheus semantics) but stored per-bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // per-bucket, last is +Inf
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
}

// Mean returns the running mean of observed samples (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.setHelp(name, help)
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.setHelp(name, help)
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with
// the given ascending upper bounds. Bounds are fixed at registration;
// later calls ignore the argument.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
		r.hists[name] = h
		r.setHelp(name, help)
	}
	return h
}

// setHelp records help for the metric's base name; first writer wins.
// Callers hold r.mu.
func (r *Registry) setHelp(name, help string) {
	base := baseName(name)
	if _, ok := r.help[base]; !ok && help != "" {
		r.help[base] = help
	}
}

// baseName strips a {label} suffix.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labels returns the inner label block of name, without braces ("" when
// unlabelled).
func labels(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	return strings.TrimSuffix(name[i+1:], "}")
}

// sanitizeName maps arbitrary strings onto the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeName(s string) string {
	var b []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			if b == nil {
				b = []byte(s)
			}
			b[i] = '_'
		}
	}
	if b != nil {
		return string(b)
	}
	return s
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies the registry state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE block per base metric name,
// buckets as cumulative counts with an le label merged into any
// existing label block.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	var b strings.Builder
	header := func(seen map[string]bool, name, typ string) string {
		base := sanitizeName(baseName(name))
		if !seen[base] {
			seen[base] = true
			if h := help[baseName(name)]; h != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", base, strings.ReplaceAll(h, "\n", " "))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
		}
		return base
	}
	withLabels := func(base, lbl, extra string) string {
		switch {
		case lbl == "" && extra == "":
			return base
		case lbl == "":
			return base + "{" + extra + "}"
		case extra == "":
			return base + "{" + lbl + "}"
		default:
			return base + "{" + lbl + "," + extra + "}"
		}
	}

	seen := map[string]bool{}
	for _, name := range sortedKeys(s.Counters) {
		base := header(seen, name, "counter")
		fmt.Fprintf(&b, "%s %d\n", withLabels(base, labels(name), ""), s.Counters[name])
	}
	seen = map[string]bool{}
	for _, name := range sortedKeys(s.Gauges) {
		base := header(seen, name, "gauge")
		fmt.Fprintf(&b, "%s %s\n", withLabels(base, labels(name), ""), formatFloat(s.Gauges[name]))
	}
	seen = map[string]bool{}
	for _, name := range sortedKeys(s.Histograms) {
		base := header(seen, name, "histogram")
		h := s.Histograms[name]
		lbl := labels(name)
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := fmt.Sprintf(`le="%s"`, formatFloat(bound))
			fmt.Fprintf(&b, "%s %d\n", withLabels(base+"_bucket", lbl, le), cum)
		}
		fmt.Fprintf(&b, "%s %d\n", withLabels(base+"_bucket", lbl, `le="+Inf"`), h.Count)
		fmt.Fprintf(&b, "%s %s\n", withLabels(base+"_sum", lbl, ""), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s %d\n", withLabels(base+"_count", lbl, ""), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a float the way Prometheus expects (Inf/NaN
// spelled out, shortest round-trip otherwise).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Handler returns an http.Handler serving the Prometheus exposition —
// mount it at /metrics next to net/http/pprof.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Default bucket layouts for the quantities the framework measures.

// RTTBucketsMs spans sub-millisecond LAN RTTs to multi-second bufferbloat.
func RTTBucketsMs() []float64 {
	return []float64{1, 2, 5, 10, 20, 30, 50, 75, 100, 150, 200, 300, 500, 750, 1000, 2000, 5000}
}

// ThroughputBucketsMbps spans the paper's 0.1–200 Mbps operating range
// with headroom for faster links.
func ThroughputBucketsMbps() []float64 {
	return []float64{0.1, 0.5, 1, 2, 5, 10, 20, 30, 50, 75, 100, 150, 200, 500, 1000}
}

// UtilityBuckets covers Eq. 1 utilities, which go sharply negative
// under loss and latency growth.
func UtilityBuckets() []float64 {
	return []float64{-100, -50, -20, -10, -5, -2, -1, -0.5, 0, 0.5, 1, 2, 5, 10, 20, 50, 100}
}

// CycleLenBucketsMs covers control-cycle lengths from a few ms to the
// multi-second cycles of long-RTT paths.
func CycleLenBucketsMs() []float64 {
	return []float64{5, 10, 20, 50, 100, 200, 350, 500, 750, 1000, 1500, 2000, 3000, 5000, 10000}
}
