package telemetry

// Merge folds a snapshot of src into r: counters add, gauges take
// src's value (src wins — a merge replays src's recording "after"
// r's), histograms add per-bucket counts when the bounds match and
// fall back to sum/count-only accumulation otherwise. Every lossy
// histogram merge (mismatched bucket layouts — the samples land in no
// bucket) is counted in r's telemetry_merge_lossy_total counter, so a
// sweep whose jobs disagree on bucket bounds is visible in the merged
// snapshot instead of silently under-bucketed. Metrics absent from r
// are registered first, including zero-valued ones, so a registry
// merged from N parts is indistinguishable from one that recorded the
// same runs directly. Merging in a fixed order is the caller's
// responsibility; the sweep engine merges per-job registries in job
// order so the result is identical at any worker count.
func (r *Registry) Merge(src *Registry) {
	if src == nil || src == r {
		return
	}
	snap := src.Snapshot()
	src.mu.Lock()
	help := make(map[string]string, len(src.help))
	for k, v := range src.help {
		help[k] = v
	}
	src.mu.Unlock()

	for _, name := range sortedKeys(snap.Counters) {
		r.Counter(name, help[baseName(name)]).Add(snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		r.Gauge(name, help[baseName(name)]).Set(snap.Gauges[name])
	}
	var lossy int64
	for _, name := range sortedKeys(snap.Histograms) {
		hs := snap.Histograms[name]
		if !r.Histogram(name, help[baseName(name)], hs.Bounds).merge(hs) {
			lossy++
		}
	}
	if lossy > 0 {
		// Registered only on the first lossy merge: a clean merge must
		// stay indistinguishable from direct recording.
		r.Counter("telemetry_merge_lossy_total",
			"histogram merges that degraded to sum/count because bucket bounds mismatched").Add(lossy)
	}
}

// merge folds a snapshot into the histogram and reports whether the
// merge was lossless. When the bucket layouts differ (the destination
// was registered earlier with other bounds) the per-bucket counts
// cannot be aligned, so only sum and count accumulate, the samples
// land in no bucket, and merge returns false; Registry.Merge counts
// these degradations in telemetry_merge_lossy_total. An empty source
// snapshot merges losslessly by definition.
func (h *Histogram) merge(s HistSnapshot) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.bounds) == len(s.Bounds) && len(h.counts) == len(s.Counts) {
		same := true
		for i := range h.bounds {
			if h.bounds[i] != s.Bounds[i] {
				same = false
				break
			}
		}
		if same {
			for i := range h.counts {
				h.counts[i] += s.Counts[i]
			}
			h.sum += s.Sum
			h.count += s.Count
			return true
		}
	}
	h.sum += s.Sum
	h.count += s.Count
	return s.Count == 0
}
