package telemetry

// multi fans every event out to a fixed set of enabled tracers — the
// plumbing that lets a CLI stream events to a JSONL recorder and a
// live analyzer tap at once.
type multi struct{ ts []Tracer }

// Enabled implements Tracer.
func (m *multi) Enabled() bool { return true }

// Emit implements Tracer.
func (m *multi) Emit(e *Event) {
	for _, t := range m.ts {
		t.Emit(e)
	}
}

// Multi combines tracers into one sink. Nil and disabled entries are
// dropped; zero live entries yield nil (emitters treat nil as
// disabled) and a single live entry is returned unwrapped, so the
// fan-out indirection is only paid when there genuinely are several
// destinations.
func Multi(ts ...Tracer) Tracer {
	live := make([]Tracer, 0, len(ts))
	for _, t := range ts {
		if Enabled(t) {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multi{ts: live}
}
