package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"
)

// BenchmarkTSCollectorEmit measures the collector's steady-state hot
// path: one enqueue plus one decision event per iteration against warm
// (already-registered) series, with virtual time advancing so bucket
// rollover and the occasional 2x fold are part of the measurement.
func BenchmarkTSCollectorEmit(b *testing.B) {
	c := NewTSCollector(0, 0)
	enq := Event{T: 1, Type: TypeEnqueue, Flow: 0, Seq: 42, Bytes: 1500, Queue: 30000}
	dec := Event{T: 1, Type: TypeDecision, Flow: 0, RTT: 40e6, Winner: "x_prev", XPrev: 6e6, UPrev: 1.2}
	c.Emit(&enq)
	c.Emit(&dec)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := int64(i) * int64(time.Millisecond)
		enq.T = t
		c.Emit(&enq)
		dec.T = t
		c.Emit(&dec)
	}
}

// TestTimeSeriesBudget pins the collector's feed path: zero
// allocations per event in steady state (always enforced — series and
// flow slots may only allocate on first sight), and ≤ 50 ns/event when
// TIMESERIES_BENCH_GUARD arms the wall-clock bound (make bench-core /
// scripts/check.sh run this package in isolation). Guarded runs also
// record the measurement as the "timeseries" block of BENCH_core.json,
// preserving every other recorded series.
func TestTimeSeriesBudget(t *testing.T) {
	c := NewTSCollector(0, 0)
	enq := Event{T: 1, Type: TypeEnqueue, Flow: 0, Seq: 42, Bytes: 1500, Queue: 30000}
	dec := Event{T: 1, Type: TypeDecision, Flow: 0, RTT: 40e6, Winner: "x_prev", XPrev: 6e6, UPrev: 1.2}
	c.Emit(&enq) // register the link/flow series up front
	c.Emit(&dec)
	var vt int64
	allocs := testing.AllocsPerRun(1000, func() {
		vt += int64(time.Millisecond)
		enq.T = vt
		c.Emit(&enq)
		dec.T = vt
		c.Emit(&dec)
	})
	if allocs > 0 {
		t.Fatalf("TSCollector.Emit allocates %.2f allocs/op in steady state, want 0", allocs)
	}

	if os.Getenv("TIMESERIES_BENCH_GUARD") == "" {
		t.Log("TIMESERIES_BENCH_GUARD unset; skipping ns/event budget (use make bench-core)")
		return
	}
	if raceEnabled {
		t.Log("race detector active; skipping ns/event budget")
		return
	}
	res := testing.Benchmark(BenchmarkTSCollectorEmit)
	ns := float64(res.T.Nanoseconds()) / float64(res.N) / 2 // two events per iteration
	t.Logf("time-series collector feed path: %.2f ns/event", ns)
	if ns > 50 {
		t.Fatalf("time-series collector costs %.2f ns/event, budget is <= 50 ns/event", ns)
	}
	recordTimeSeriesBench(t, ns)
}

// recordTimeSeriesBench merges the time-series measurement into
// BENCH_core.json without disturbing the other recorded blocks.
func recordTimeSeriesBench(t *testing.T, nsPerEvent float64) {
	path := os.Getenv("TIMESERIES_BENCH_OUT")
	if path == "" {
		path = "../../BENCH_core.json"
	}
	doc := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(path); err == nil && len(bytes.TrimSpace(prev)) > 0 {
		if err := json.Unmarshal(prev, &doc); err != nil {
			t.Fatalf("existing %s is not a JSON object: %v", path, err)
		}
	}
	blk, err := json.Marshal(struct {
		NsPerEvent     float64 `json:"ts_ns_per_event"`
		AllocsPerEvent float64 `json:"ts_allocs_per_event"`
		BucketMs       float64 `json:"base_bucket_ms"`
		Capacity       int     `json:"bucket_capacity"`
	}{
		NsPerEvent: nsPerEvent,
		BucketMs:   float64(DefaultTSBucket) / 1e6,
		Capacity:   DefaultTSCapacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	doc["timeseries"] = blk
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded timeseries block -> %s", path)
}
