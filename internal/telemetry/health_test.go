package telemetry

import (
	"testing"
	"time"
)

// fakeEngine is a scriptable ProgressSource.
type fakeEngine struct{ sim, events, pending int64 }

func (f *fakeEngine) Progress() (int64, int64, int64) { return f.sim, f.events, f.pending }

func TestHealthSampleTotalsAndRetirement(t *testing.T) {
	reg := NewRegistry()
	h := NewHealth(reg)

	a := &fakeEngine{sim: 2e9, events: 1000, pending: 7}
	b := &fakeEngine{sim: 3e9, events: 500, pending: 3}
	h.Register(a)
	h.Register(b)
	h.Sample()
	snap := reg.Snapshot()
	if got := snap.Gauges["libra_health_sim_time_seconds"]; got != 5 {
		t.Errorf("sim_time_seconds = %v, want 5 (2s + 3s)", got)
	}
	if got := snap.Gauges["libra_health_pending_timers"]; got != 10 {
		t.Errorf("pending_timers = %v, want 10", got)
	}
	if got := snap.Gauges["libra_health_goroutines"]; got < 1 {
		t.Errorf("goroutines = %v, want >= 1", got)
	}

	// Retiring an engine folds its totals in; sim time must not regress
	// even though the source is gone and the live set shrinks.
	h.Unregister(a)
	a.sim = 0 // mutate after retirement: the folded totals must hold
	b.sim = 4e9
	h.Sample()
	snap = reg.Snapshot()
	if got := snap.Gauges["libra_health_sim_time_seconds"]; got != 6 {
		t.Errorf("after retirement: sim_time_seconds = %v, want 6 (2s retired + 4s live)", got)
	}
	if got := snap.Gauges["libra_health_pending_timers"]; got != 3 {
		t.Errorf("after retirement: pending_timers = %v, want 3 (live engines only)", got)
	}

	// Double-unregister and nil handling are no-ops.
	h.Unregister(a)
	h.Unregister(nil)
	(*Health)(nil).Register(b)
	(*Health)(nil).Unregister(b)
}

func TestHealthRates(t *testing.T) {
	reg := NewRegistry()
	h := NewHealth(reg)
	e := &fakeEngine{}
	h.Register(e)
	h.Sample() // establish the wall-clock baseline
	e.sim, e.events = 10e9, 5000
	time.Sleep(10 * time.Millisecond) // a real wall interval for the divisor
	h.Sample()
	snap := reg.Snapshot()
	if got := snap.Gauges["libra_health_sim_wall_ratio"]; got <= 0 {
		t.Errorf("sim_wall_ratio = %v, want > 0 after virtual time advanced", got)
	}
	if got := snap.Gauges["libra_health_events_per_second"]; got <= 0 {
		t.Errorf("events_per_second = %v, want > 0 after dispatches", got)
	}
}

func TestHealthStartStop(t *testing.T) {
	reg := NewRegistry()
	h := NewHealth(reg)
	e := &fakeEngine{sim: 1e9, events: 10, pending: 1}
	h.Register(e)
	stop := h.Start(time.Hour) // ticker never fires; stop's final sample must
	e.sim = 9e9
	stop()
	stop() // idempotent
	if got := reg.Snapshot().Gauges["libra_health_sim_time_seconds"]; got != 9 {
		t.Errorf("final sample on stop: sim_time_seconds = %v, want 9", got)
	}
}
