package telemetry

// Buffer is an in-memory Tracer that copies every emitted event for
// later replay. Tracer implementations are not required to be
// goroutine-safe, so concurrent sweep jobs cannot share one sink;
// instead each job records into its own Buffer and the sweep engine
// replays the buffers in job order into the shared sink. The recorded
// event stream is therefore byte-identical at any worker count.
type Buffer struct {
	evs []Event
}

// Enabled implements Tracer.
func (b *Buffer) Enabled() bool { return true }

// Emit implements Tracer by copying the event (Event is a flat value
// struct, so the copy is deep).
func (b *Buffer) Emit(e *Event) { b.evs = append(b.evs, *e) }

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.evs) }

// ReplayTo re-emits the buffered events, in order, into t. A nil or
// disabled sink is a no-op.
func (b *Buffer) ReplayTo(t Tracer) {
	if b == nil || !Enabled(t) {
		return
	}
	for i := range b.evs {
		t.Emit(&b.evs[i])
	}
}
