package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenRegistry builds the fixture registry: a plain counter, a
// labelled counter pair, a gauge, and a labelled histogram — one of
// every exposition shape the exporter emits.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("libra_flows_total", "flows driven by the experiment harness").Add(4)
	reg.Counter(`libra_link_drops_total{reason="tail"}`, "bottleneck drops by reason").Add(17)
	reg.Counter(`libra_link_drops_total{reason="aqm"}`, "bottleneck drops by reason").Add(3)
	reg.Gauge("libra_link_utilization", "delivered bytes / mean capacity of the last recorded run").Set(0.875)
	h := reg.Histogram(`libra_flow_rtt_ms{cca="c-libra"}`, "per-flow mean RTT", []float64{10, 50, 100})
	h.Observe(8)
	h.Observe(42)
	h.Observe(43)
	h.Observe(250)
	return reg
}

// TestPrometheusGolden pins the text exposition format byte-for-byte
// against testdata/registry.prom, so any change to HELP/TYPE
// rendering, label merging, cumulative bucket math, or float
// formatting shows up as a reviewable diff. Regenerate with
// GOLDEN_UPDATE=1 go test ./internal/telemetry/ -run TestPrometheusGolden.
func TestPrometheusGolden(t *testing.T) {
	var got bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "registry.prom")
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, got.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("Prometheus exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got.Bytes(), want)
	}
}
