package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// goldenRegistry builds the fixture registry: a plain counter, a
// labelled counter pair, a gauge, and a labelled histogram — one of
// every exposition shape the exporter emits — plus the observability
// families the flight recorder and health sampler register, so their
// metric names and rendering are pinned too.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("libra_flows_total", "flows driven by the experiment harness").Add(4)
	reg.Counter(`libra_link_drops_total{reason="tail"}`, "bottleneck drops by reason").Add(17)
	reg.Counter(`libra_link_drops_total{reason="aqm"}`, "bottleneck drops by reason").Add(3)
	reg.Gauge("libra_link_utilization", "delivered bytes / mean capacity of the last recorded run").Set(0.875)
	h := reg.Histogram(`libra_flow_rtt_ms{cca="c-libra"}`, "per-flow mean RTT", []float64{10, 50, 100})
	h.Observe(8)
	h.Observe(42)
	h.Observe(43)
	h.Observe(250)

	// Flight-recorder counters, with some traffic so both families render.
	fl := NewFlightRecorder(FlightConfig{PerFlow: 2, Metrics: reg})
	for i := 0; i < 3; i++ {
		fl.Emit(&Event{T: int64(i), Type: TypeStage, Flow: 0})
	}
	fl.Emit(&Event{T: 4, Type: TypeAnomaly, Flow: 0, Reason: AnomalyOutage})

	// Health gauges, sampled from a deterministic source. Wall-clock
	// rates and runtime stats are overwritten with fixed values after
	// the sample so the fixture stays byte-stable.
	hs := NewHealth(reg)
	hs.Register(progressConst{simNs: 5e9, events: 1200, pending: 3})
	hs.Sample()
	reg.Gauge("libra_health_sim_wall_ratio", "").Set(250)
	reg.Gauge("libra_health_events_per_second", "").Set(1.5e6)
	reg.Gauge("libra_health_heap_bytes", "").Set(16_777_216)
	reg.Gauge("libra_health_gc_total", "").Set(7)
	reg.Gauge("libra_health_goroutines", "").Set(9)

	// Time-series export: a deterministic collector feed, mirrored into
	// the registry as libra_ts_* gauges — every per-link family carries
	// a link label (the unlabelled bottleneck renders as link="bn").
	ts := NewTSCollector(0, 0)
	for _, e := range []Event{
		{T: 2e6, Type: TypeProfile, Flow: 0, Name: "bulk"},
		{T: 3e6, Type: TypeEnqueue, Flow: 0, Seq: 1, Bytes: 1500, Queue: 1500},
		{T: 4e6, Type: TypeQueue, Flow: -1, Queue: 1500, Rate: 6e6},
		{T: 5e6, Type: TypeDecision, Flow: 0, Winner: "x_prev", XPrev: 6e6, UPrev: 1.25, RTT: 40e6},
	} {
		ev := e
		ts.Emit(&ev)
	}
	ts.ExportProm(reg)

	// SLO / profile gauges, named exactly as analyze's Report.ExportMetrics
	// emits them (set directly here: analyze cannot be imported from
	// telemetry's tests without a cycle).
	reg.Gauge(`libra_slo_attainment{profile="bulk",metric="mean_thr_mbps"}`,
		"fraction of windows meeting the SLO").Set(0.97)
	reg.Gauge(`libra_slo_first_violation_ms{profile="bulk",metric="mean_thr_mbps"}`,
		"start of the earliest violating window (-1 = never)").Set(4000)
	reg.Gauge(`libra_profile_mean_thr_mbps{profile="bulk"}`,
		"per-flow mean throughput of the profile").Set(18.4)
	reg.Gauge("libra_profile_jain",
		"cross-profile Jain fairness over mean throughput").Set(0.9812)
	return reg
}

// progressConst is a fixed-value ProgressSource for fixtures.
type progressConst struct{ simNs, events, pending int64 }

func (p progressConst) Progress() (int64, int64, int64) { return p.simNs, p.events, p.pending }

// TestPrometheusGolden pins the text exposition format byte-for-byte
// against testdata/registry.prom, so any change to HELP/TYPE
// rendering, label merging, cumulative bucket math, or float
// formatting shows up as a reviewable diff. Regenerate with
// GOLDEN_UPDATE=1 go test ./internal/telemetry/ -run TestPrometheusGolden.
func TestPrometheusGolden(t *testing.T) {
	var got bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "registry.prom")
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, got.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (regenerate with GOLDEN_UPDATE=1): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("Prometheus exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got.Bytes(), want)
	}
}

// TestPrometheusHistogramSumCountConsistent checks the structural
// invariants scrapers rely on, independent of exact formatting: every
// histogram family exposes _sum and _count, the +Inf bucket equals
// _count, and the mean implied by _sum/_count lies within the observed
// range.
func TestPrometheusHistogramSumCountConsistent(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	vals := map[string]float64{}
	for _, ln := range lines {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		i := strings.LastIndexByte(ln, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", ln)
		}
		v, err := strconv.ParseFloat(ln[i+1:], 64)
		if err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		vals[ln[:i]] = v
	}

	count, okC := vals[`libra_flow_rtt_ms_count{cca="c-libra"}`]
	sum, okS := vals[`libra_flow_rtt_ms_sum{cca="c-libra"}`]
	inf, okI := vals[`libra_flow_rtt_ms_bucket{cca="c-libra",le="+Inf"}`]
	if !okC || !okS || !okI {
		t.Fatalf("histogram family incomplete: count=%v sum=%v +Inf=%v\n%s", okC, okS, okI, buf.String())
	}
	if count != 4 {
		t.Errorf("_count = %v, want 4", count)
	}
	if want := 8.0 + 42 + 43 + 250; sum != want {
		t.Errorf("_sum = %v, want %v", sum, want)
	}
	if inf != count {
		t.Errorf("+Inf bucket %v != _count %v", inf, count)
	}

	// The new observability families must be present with their traffic.
	for name, want := range map[string]float64{
		"libra_flight_dumps_total":      1,
		"libra_flight_evictions_total":  2,
		"libra_health_sim_time_seconds": 5,
		"libra_health_pending_timers":   3,
		"libra_health_sim_wall_ratio":   250,
		// Time-series and SLO families: per-link series must carry the
		// link label, per-flow the flow label, per-profile the profile
		// label — the naming contract the dashboards scrape against.
		`libra_ts_link_queue_bytes{link="bn"}`:                        1500,
		`libra_ts_flow_rtt_ms{flow="0"}`:                              40,
		`libra_ts_flow_utility{flow="0"}`:                             1.25,
		`libra_ts_profile_utility{profile="bulk"}`:                    1.25,
		`libra_slo_attainment{profile="bulk",metric="mean_thr_mbps"}`: 0.97,
		`libra_profile_mean_thr_mbps{profile="bulk"}`:                 18.4,
		"libra_profile_jain":                                          0.9812,
	} {
		if got, ok := vals[name]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
}
