package telemetry

import "io"

// Tracer receives telemetry events. Implementations are not required
// to be goroutine-safe: the discrete-event simulator is single-threaded
// and emits from one goroutine.
//
// Hot-path convention: emitters cache Enabled() in a bool at
// construction (or SetTracer) time and guard every event build with
// that bool, so the disabled path is a single predictable branch — no
// interface call, no event construction. BenchmarkNopTracer enforces
// the budget.
type Tracer interface {
	// Enabled reports whether Emit does anything; emitters may skip
	// building events entirely when false.
	Enabled() bool
	// Emit records one event. The pointee is only read during the call,
	// so callers may reuse a single Event buffer across emissions.
	Emit(e *Event)
}

// Nop is the default tracer: disabled, emits nothing.
type Nop struct{}

// Enabled implements Tracer.
func (Nop) Enabled() bool { return false }

// Emit implements Tracer.
func (Nop) Emit(*Event) {}

// Enabled reports whether t is a live tracer (non-nil and enabled).
func Enabled(t Tracer) bool { return t != nil && t.Enabled() }

// Traceable is implemented by controllers that can be wired to a
// tracer after construction; id becomes the Flow field of emitted
// events. Controllers embedding other traceable components forward the
// call.
type Traceable interface {
	SetTracer(t Tracer, id int)
}

// flushThreshold is the buffered-byte level at which Recorder writes
// through to the underlying writer.
const flushThreshold = 64 * 1024

// Recorder is a buffered JSONL event sink. It encodes each event into
// an internal buffer with no per-event allocation and flushes to the
// underlying writer in flushThreshold chunks. Close (or Flush) must be
// called to drain the tail.
type Recorder struct {
	w      io.Writer
	buf    []byte
	events int64
	err    error
}

// NewRecorder returns a Recorder writing JSONL to w.
func NewRecorder(w io.Writer) *Recorder {
	return &Recorder{w: w, buf: make([]byte, 0, flushThreshold+4096)}
}

// Enabled implements Tracer.
func (r *Recorder) Enabled() bool { return true }

// Emit implements Tracer. Events with no schema version are stamped
// with SchemaVersion via a local copy (the pointee is never written),
// so every persisted line self-describes its schema.
func (r *Recorder) Emit(e *Event) {
	if r.err != nil {
		return
	}
	if e.V == 0 {
		stamped := *e
		stamped.V = SchemaVersion
		e = &stamped
	}
	r.buf = e.AppendJSON(r.buf)
	r.buf = append(r.buf, '\n')
	r.events++
	if len(r.buf) >= flushThreshold {
		r.flush()
	}
}

func (r *Recorder) flush() {
	if len(r.buf) == 0 || r.err != nil {
		return
	}
	_, r.err = r.w.Write(r.buf)
	r.buf = r.buf[:0]
}

// Events returns the number of events emitted so far.
func (r *Recorder) Events() int64 { return r.events }

// Flush writes buffered events through and returns the first write
// error encountered, if any.
func (r *Recorder) Flush() error {
	r.flush()
	return r.err
}

// Close flushes and, when the underlying writer is an io.Closer,
// closes it.
func (r *Recorder) Close() error {
	r.flush()
	if c, ok := r.w.(io.Closer); ok {
		if err := c.Close(); err != nil && r.err == nil {
			r.err = err
		}
	}
	return r.err
}
