package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// ProgressSource exposes a running engine's progress counters for
// cross-goroutine health sampling. Implementations must make Progress
// safe to call while the engine runs (the sim engine publishes its
// counters through atomics on an amortized schedule, so readings may
// lag the hot path by a dispatch batch).
type ProgressSource interface {
	// Progress returns virtual time in nanoseconds, total dispatched
	// events, and currently pending timers.
	Progress() (simNs, events, pending int64)
}

// Health samples runtime self-health — how fast virtual time advances
// against wall time, engine event throughput, pending timer load, and
// Go runtime heap/GC/goroutine stats — into gauges on a metrics
// registry, for the live dashboard and Prometheus export.
//
// Engines register while running and unregister when done; totals from
// retired engines are accumulated so ratios stay monotonic across a
// sweep's worker churn. Health gauges are wall-clock derived and are
// deliberately excluded from the framework's determinism guarantees.
type Health struct {
	mu      sync.Mutex
	srcs    map[ProgressSource]struct{}
	retired struct{ sim, events int64 }
	lastSim, lastEvents int64
	lastWall            time.Time

	simSeconds *Gauge
	ratio      *Gauge
	eventsSec  *Gauge
	pending    *Gauge
	heapBytes  *Gauge
	gcTotal    *Gauge
	goroutines *Gauge
}

// NewHealth returns a sampler writing into reg.
func NewHealth(reg *Registry) *Health {
	return &Health{
		srcs: map[ProgressSource]struct{}{},
		simSeconds: reg.Gauge("libra_health_sim_time_seconds",
			"Total virtual time simulated across all engines."),
		ratio: reg.Gauge("libra_health_sim_wall_ratio",
			"Virtual seconds simulated per wall second since the last sample."),
		eventsSec: reg.Gauge("libra_health_events_per_second",
			"Engine events dispatched per wall second since the last sample."),
		pending: reg.Gauge("libra_health_pending_timers",
			"Timers currently pending across all registered engines."),
		heapBytes: reg.Gauge("libra_health_heap_bytes",
			"Go heap in use (runtime.MemStats.HeapAlloc)."),
		gcTotal: reg.Gauge("libra_health_gc_total",
			"Completed garbage-collection cycles."),
		goroutines: reg.Gauge("libra_health_goroutines",
			"Live goroutines."),
	}
}

// Register adds a running engine to the sampled set.
func (h *Health) Register(s ProgressSource) {
	if h == nil || s == nil {
		return
	}
	h.mu.Lock()
	h.srcs[s] = struct{}{}
	h.mu.Unlock()
}

// Unregister removes an engine, folding its final totals into the
// retired accumulators so sim-time and event totals never regress.
func (h *Health) Unregister(s ProgressSource) {
	if h == nil || s == nil {
		return
	}
	sim, events, _ := s.Progress()
	h.mu.Lock()
	if _, ok := h.srcs[s]; ok {
		delete(h.srcs, s)
		h.retired.sim += sim
		h.retired.events += events
	}
	h.mu.Unlock()
}

// Sample takes one reading: per-interval rates against the previous
// Sample call, absolute totals, and runtime stats.
func (h *Health) Sample() {
	now := time.Now()
	h.mu.Lock()
	sim, events, pending := h.retired.sim, h.retired.events, int64(0)
	for s := range h.srcs {
		sn, en, pn := s.Progress()
		sim += sn
		events += en
		pending += pn
	}
	if !h.lastWall.IsZero() {
		if wall := now.Sub(h.lastWall).Seconds(); wall > 0 {
			h.ratio.Set(float64(sim-h.lastSim) / 1e9 / wall)
			h.eventsSec.Set(float64(events-h.lastEvents) / wall)
		}
	}
	h.lastSim, h.lastEvents, h.lastWall = sim, events, now
	h.mu.Unlock()

	h.simSeconds.Set(float64(sim) / 1e9)
	h.pending.Set(float64(pending))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h.heapBytes.Set(float64(ms.HeapAlloc))
	h.gcTotal.Set(float64(ms.NumGC))
	h.goroutines.Set(float64(runtime.NumGoroutine()))
}

// Start samples every interval on a background goroutine until the
// returned stop function is called; stop takes a final sample before
// returning so short runs still publish totals.
func (h *Health) Start(every time.Duration) (stop func()) {
	if every <= 0 {
		every = time.Second
	}
	h.Sample()
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.Sample()
			case <-quit:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-done
			h.Sample()
		})
	}
}
