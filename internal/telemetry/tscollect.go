package telemetry

import (
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TSCollector is a Tracer that folds the event stream into a TSDB:
// per-link queue depth / capacity / throughput / drop rate / CE-mark
// rate, per-flow rate / RTT / Eq. 1 utility, and per-profile
// aggregates for flows bound to a utility profile (TypeProfile
// events). All bucketing is keyed on virtual event time, so a live
// collector and an offline replay of the same recorded stream produce
// byte-identical snapshots.
//
// The steady-state Emit path (known link, known flow) performs no
// allocation (TestTimeSeriesBudget); series and per-flow slots
// allocate only on first sight.
type TSCollector struct {
	mu    sync.Mutex
	db    *TSDB
	links map[string]*linkTS
	profs map[string]*profTS
	flows []*flowTS // indexed by flow ID
	// Single-entry label cache: netem emits long runs of events on the
	// same link, so this skips the map lookup on the hot path.
	lastLabel string
	lastLink  *linkTS
	maxT      int64
}

type linkTS struct {
	queue *TSeries // bytes queued, gauge
	cap   *TSeries // capacity Mbit/s, gauge
	thr   *TSeries // enqueued bytes -> Mbit/s, rate
	drops *TSeries // drops/s, rate
	marks *TSeries // CE marks/s, rate
}

type flowTS struct {
	rate *TSeries // applied rate Mbit/s, gauge
	rtt  *TSeries // smoothed RTT ms, gauge
	util *TSeries // Eq. 1 utility of the chosen candidate, gauge
	send *TSeries // enqueued bytes -> Mbit/s, rate
	prof *profTS  // nil until a TypeProfile event binds the flow
	// firstLink pins the flow's ingress hop so multi-hop streams,
	// which re-enqueue each packet at every hop, count flow/profile
	// bytes once (per-link series still see every hop).
	firstLink     string
	haveFirstLink bool
}

type profTS struct {
	rate *TSeries
	rtt  *TSeries
	util *TSeries
	thr  *TSeries
}

// bnLabel stands in for the unlabelled single-bottleneck link so every
// per-link series (and exported metric) carries a link label.
const bnLabel = "bn"

const bytesToMbit = 8e-6

// NewTSCollector returns a collector with the given base bucket width
// and per-series capacity (zeros select the TSDB defaults).
func NewTSCollector(bucket time.Duration, capacity int) *TSCollector {
	return &TSCollector{
		db:    NewTSDB(bucket, capacity),
		links: make(map[string]*linkTS, 8),
		profs: make(map[string]*profTS, 8),
	}
}

// Enabled implements Tracer: the collector consumes every event.
func (c *TSCollector) Enabled() bool { return true }

// link returns (registering on first sight) the series set for a link
// label; "" maps to the single-bottleneck pseudo-label.
func (c *TSCollector) link(label string) *linkTS {
	if label == "" {
		label = bnLabel
	}
	if label == c.lastLabel && c.lastLink != nil {
		return c.lastLink
	}
	l, ok := c.links[label]
	if !ok {
		l = &linkTS{
			queue: c.db.Series(tsName("link_queue_bytes", "link", label), TSGauge, 1),
			cap:   c.db.Series(tsName("link_capacity_mbps", "link", label), TSGauge, 1),
			thr:   c.db.Series(tsName("link_throughput_mbps", "link", label), TSRate, bytesToMbit),
			drops: c.db.Series(tsName("link_drops_per_s", "link", label), TSRate, 1),
			marks: c.db.Series(tsName("link_marks_per_s", "link", label), TSRate, 1),
		}
		c.links[label] = l
	}
	c.lastLabel, c.lastLink = label, l
	return l
}

// flow returns (registering on first sight) the series set for a flow
// ID, nil for the sampler's pseudo-flow (-1).
func (c *TSCollector) flow(id int) *flowTS {
	if id < 0 {
		return nil
	}
	for id >= len(c.flows) {
		c.flows = append(c.flows, nil)
	}
	f := c.flows[id]
	if f == nil {
		fv := strconv.Itoa(id)
		f = &flowTS{
			rate: c.db.Series(tsName("flow_rate_mbps", "flow", fv), TSGauge, 1),
			rtt:  c.db.Series(tsName("flow_rtt_ms", "flow", fv), TSGauge, 1),
			util: c.db.Series(tsName("flow_utility", "flow", fv), TSGauge, 1),
			send: c.db.Series(tsName("flow_send_mbps", "flow", fv), TSRate, bytesToMbit),
		}
		c.flows[id] = f
	}
	return f
}

// profile returns (registering on first sight) the aggregate series
// set for a utility-profile name.
func (c *TSCollector) profile(name string) *profTS {
	p, ok := c.profs[name]
	if !ok {
		p = &profTS{
			rate: c.db.Series(tsName("profile_rate_mbps", "profile", name), TSGauge, 1),
			rtt:  c.db.Series(tsName("profile_rtt_ms", "profile", name), TSGauge, 1),
			util: c.db.Series(tsName("profile_utility", "profile", name), TSGauge, 1),
			thr:  c.db.Series(tsName("profile_throughput_mbps", "profile", name), TSRate, bytesToMbit),
		}
		c.profs[name] = p
	}
	return p
}

// Emit implements Tracer.
func (c *TSCollector) Emit(e *Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.T > c.maxT {
		c.maxT = e.T
	}
	switch e.Type {
	case TypeQueue:
		l := c.link(e.Link)
		l.queue.Add(e.T, float64(e.Queue))
		if e.Rate > 0 {
			l.cap.Add(e.T, e.Rate*bytesToMbit)
		}
	case TypeEnqueue:
		l := c.link(e.Link)
		l.queue.Add(e.T, float64(e.Queue))
		l.thr.Add(e.T, float64(e.Bytes))
		if e.Reason == ReasonCE {
			l.marks.Add(e.T, 1)
		}
		if f := c.flow(e.Flow); f != nil {
			if !f.haveFirstLink {
				f.firstLink, f.haveFirstLink = e.Link, true
			}
			if e.Link == f.firstLink {
				f.send.Add(e.T, float64(e.Bytes))
				if f.prof != nil {
					f.prof.thr.Add(e.T, float64(e.Bytes))
				}
			}
		}
	case TypeDrop:
		l := c.link(e.Link)
		l.drops.Add(e.T, 1)
		l.queue.Add(e.T, float64(e.Queue))
	case TypeDecision:
		f := c.flow(e.Flow)
		if f == nil {
			return
		}
		if e.RTT > 0 {
			f.rtt.Add(e.T, float64(e.RTT)/1e6)
			if f.prof != nil {
				f.prof.rtt.Add(e.T, float64(e.RTT)/1e6)
			}
		}
		// The chosen candidate's rate and Eq. 1 utility.
		x, u := e.XPrev, e.UPrev
		switch e.Winner {
		case "x_cl":
			x, u = e.XCl, e.UCl
		case "x_rl":
			x, u = e.XRl, e.URl
		}
		f.rate.Add(e.T, x*bytesToMbit)
		f.util.Add(e.T, u)
		if f.prof != nil {
			f.prof.rate.Add(e.T, x*bytesToMbit)
			f.prof.util.Add(e.T, u)
		}
	case TypeNoAck:
		f := c.flow(e.Flow)
		if f == nil || e.RTT <= 0 {
			return
		}
		f.rtt.Add(e.T, float64(e.RTT)/1e6)
		if f.prof != nil {
			f.prof.rtt.Add(e.T, float64(e.RTT)/1e6)
		}
	case TypeStage, TypeAction:
		f := c.flow(e.Flow)
		if f == nil || e.Rate <= 0 {
			return
		}
		f.rate.Add(e.T, e.Rate*bytesToMbit)
		if f.prof != nil {
			f.prof.rate.Add(e.T, e.Rate*bytesToMbit)
		}
	case TypeProfile:
		if f := c.flow(e.Flow); f != nil && e.Name != "" {
			f.prof = c.profile(e.Name)
		}
	}
}

// Merge folds src into c in caller order (the sweep engine flushes
// jobs in job order, so merged snapshots are byte-identical at any
// worker count). src is left untouched.
func (c *TSCollector) Merge(src *TSCollector) {
	if src == nil || src == c {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	src.mu.Lock()
	defer src.mu.Unlock()
	c.db.Merge(src.db)
	if src.maxT > c.maxT {
		c.maxT = src.maxT
	}
}

// BaseBucket returns the collector's base bucket width.
func (c *TSCollector) BaseBucket() time.Duration { return c.db.BaseBucket() }

// Snapshot returns a point-in-time copy of every series.
func (c *TSCollector) Snapshot() TSSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.db.Snapshot()
}

// WriteJSON writes the deterministic snapshot JSON (see TSDB.WriteJSON).
func (c *TSCollector) WriteJSON(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.db.WriteJSON(w)
}

// ExportProm mirrors the latest bucket of every series into reg as
// libra_ts_* gauges.
func (c *TSCollector) ExportProm(reg *Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.db.ExportProm(reg)
}

// LinkLive is the current state of one link, for the /topo API and the
// dashboard weathermap.
type LinkLive struct {
	Label          string  `json:"label"`
	QueueBytes     float64 `json:"queue_bytes"`
	CapacityMbps   float64 `json:"capacity_mbps"`
	ThroughputMbps float64 `json:"throughput_mbps"`
	Utilization    float64 `json:"utilization"`
	DropsPerS      float64 `json:"drops_per_s"`
	MarksPerS      float64 `json:"marks_per_s"`
}

// LinksLive summarises every link's most recent buckets, sorted by
// label. Rates read the last *completed* bucket so a half-filled
// current bucket doesn't understate throughput.
func (c *TSCollector) LinksLive() []LinkLive {
	c.mu.Lock()
	defer c.mu.Unlock()
	labels := make([]string, 0, len(c.links))
	for label := range c.links {
		labels = append(labels, label)
	}
	out := make([]LinkLive, 0, len(labels))
	sort.Strings(labels)
	for _, label := range labels {
		l := c.links[label]
		ll := LinkLive{Label: label}
		if b, ok := l.queue.lastBucket(l.queue.used - 1); ok {
			ll.QueueBytes = b.sum / float64(b.n)
		}
		if b, ok := l.cap.lastBucket(l.cap.used - 1); ok {
			ll.CapacityMbps = b.sum / float64(b.n)
		}
		ll.ThroughputMbps = c.lastRate(l.thr)
		ll.DropsPerS = c.lastRate(l.drops)
		ll.MarksPerS = c.lastRate(l.marks)
		if ll.CapacityMbps > 0 {
			ll.Utilization = ll.ThroughputMbps / ll.CapacityMbps
			if ll.Utilization > 1 {
				ll.Utilization = 1
			}
		}
		out = append(out, ll)
	}
	return out
}

// lastRate reads a rate series' last completed bucket (the one before
// the bucket holding maxT), falling back to the latest non-empty one.
func (c *TSCollector) lastRate(s *TSeries) float64 {
	limit := int(c.maxT/s.width) - 1
	b, ok := s.lastBucket(limit)
	if !ok {
		if b, ok = s.lastBucket(s.used - 1); !ok {
			return 0
		}
	}
	return b.sum * s.scale / (float64(s.width) / 1e9)
}
