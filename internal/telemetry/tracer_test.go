package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randomEvent builds an arbitrary event; each optional field is present
// with probability ~1/2 so omitempty paths get exercised.
func randomEvent(rng *rand.Rand) Event {
	types := []Type{TypeStage, TypeEarlyExit, TypeDecision, TypeNoAck,
		TypeEnqueue, TypeDrop, TypeQueue, TypeAction, TypeSpan, TypeAnomaly}
	strs := []string{"", "explore", "eval-1", "tail", "channel", "aqm", "x_prev", "x_cl", "x_rl"}
	names := []string{"", "cycle", "flow:c-libra", "scenario:blackout", "experiment:figa1"}
	f := func() float64 {
		if rng.Intn(2) == 0 {
			return 0
		}
		// Mix magnitudes, signs and non-round values.
		return (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)-3))
	}
	n := func() int64 {
		if rng.Intn(2) == 0 {
			return 0
		}
		return rng.Int63n(1 << 40)
	}
	return Event{
		T:      rng.Int63n(300e9),
		Type:   types[rng.Intn(len(types))],
		Flow:   rng.Intn(5) - 1,
		Stage:  strs[rng.Intn(len(strs))],
		Reason: strs[rng.Intn(len(strs))],
		Winner: strs[rng.Intn(len(strs))],
		Seq:    n(),
		Bytes:  n(),
		Queue:  n(),
		Rate:   f(), XPrev: f(), XCl: f(), XRl: f(),
		UPrev: f(), UCl: f(), URl: f(),
		Action: f(), Reward: f(), FMin: f(), FMean: f(), FMax: f(),
		RTT: n(), Thr: f(), Grad: f(), Loss: f(),
		Name: names[rng.Intn(len(names))],
		V:    rng.Intn(SchemaVersion + 1),
	}
}

// TestEventRoundTrip is the encode→decode→equal property test over the
// recorder's JSONL stream: whatever the emitters write, the decoder
// must read back exactly.
func TestEventRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	events := make([]Event, n)
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	for i := range events {
		events[i] = randomEvent(rng)
		rec.Emit(&events[i])
	}
	if err := rec.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if rec.Events() != n {
		t.Fatalf("recorder counted %d events, want %d", rec.Events(), n)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != n {
		t.Fatalf("decoded %d events, want %d", len(got), n)
	}
	for i := range events {
		// Recorder stamps SchemaVersion on version-less events; the
		// round-trip expectation must account for that.
		if events[i].V == 0 {
			events[i].V = SchemaVersion
		}
		if !reflect.DeepEqual(events[i], got[i]) {
			t.Fatalf("event %d did not round-trip:\nsent %+v\ngot  %+v", i, events[i], got[i])
		}
	}
}

// TestEventJSONMatchesStdlib pins the hand-rolled encoder to the
// encoding/json view of the struct tags.
func TestEventJSONMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		e := randomEvent(rng)
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		got := e.AppendJSON(nil)
		if string(got) != string(want) {
			t.Fatalf("encoding mismatch:\nhand %s\nstd  %s", got, want)
		}
	}
}

// TestEventNonFinite checks NaN/Inf degrade to null, not invalid JSON.
func TestEventNonFinite(t *testing.T) {
	e := Event{T: 1, Type: TypeDecision, UPrev: math.NaN(), UCl: math.Inf(1), URl: math.Inf(-1)}
	line := e.AppendJSON(nil)
	var back Event
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatalf("non-finite event produced invalid JSON %s: %v", line, err)
	}
	if back.UPrev != 0 || back.UCl != 0 || back.URl != 0 {
		t.Fatalf("non-finite fields decoded as %+v, want zeros", back)
	}
}

// TestEventEscaping exercises the slow string path.
func TestEventEscaping(t *testing.T) {
	e := Event{T: 2, Type: TypeDrop, Reason: "we\"ird\nreason\\π"}
	var back Event
	if err := json.Unmarshal(e.AppendJSON(nil), &back); err != nil {
		t.Fatalf("escaped event invalid: %v", err)
	}
	if back.Reason != e.Reason {
		t.Fatalf("reason round-trip: got %q want %q", back.Reason, e.Reason)
	}
}

// TestDecoderSkipsBlanksAndReportsLine checks decoder ergonomics.
func TestDecoderSkipsBlanksAndReportsLine(t *testing.T) {
	in := "{\"t\":1,\"type\":\"queue\",\"flow\":-1}\n\n{\"t\":2,\"type\":\"queue\",\"flow\":-1}\n"
	evs, err := ReadAll(strings.NewReader(in))
	if err != nil || len(evs) != 2 {
		t.Fatalf("got %d events, err %v", len(evs), err)
	}
	_, err = ReadAll(strings.NewReader("{\"t\":1,\"type\":\"queue\",\"flow\":-1}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-numbered decode error, got %v", err)
	}
}

// failWriter fails after the first write.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

// TestRecorderPropagatesWriteError checks the first write error is
// sticky and surfaced by Flush/Close.
func TestRecorderPropagatesWriteError(t *testing.T) {
	rec := NewRecorder(&failWriter{})
	big := Event{T: 1, Type: TypeStage, Stage: strings.Repeat("x", 4000)}
	for i := 0; i < 64; i++ { // cross the flush threshold at least twice
		rec.Emit(&big)
	}
	if err := rec.Flush(); err == nil {
		// first flush succeeded; force another
		for i := 0; i < 64; i++ {
			rec.Emit(&big)
		}
		if err := rec.Close(); err == nil {
			t.Fatal("write error was swallowed")
		}
	}
}

// TestNopTracer checks the disabled default does nothing and the
// Enabled helper handles nil.
func TestNopTracer(t *testing.T) {
	if Enabled(nil) || Enabled(Nop{}) {
		t.Fatal("nil/Nop tracers must report disabled")
	}
	Nop{}.Emit(&Event{}) // must not panic
	var rec *Recorder
	_ = rec // Recorder must be constructed via NewRecorder; zero value unused
}
