package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// knownTypes is the set of event types the current schema defines.
var knownTypes = map[Type]bool{
	TypeStage:     true,
	TypeEarlyExit: true,
	TypeDecision:  true,
	TypeNoAck:     true,
	TypeEnqueue:   true,
	TypeDrop:      true,
	TypeQueue:     true,
	TypeAction:    true,
	TypeFault:     true,
	TypeSpan:      true,
	TypeAnomaly:   true,
	TypeProfile:   true,
}

// ValidateStream checks a JSONL event stream against the current
// schema: every line must be a JSON object with no unknown fields, a
// known "type", and a version no newer than SchemaVersion. name labels
// the stream in error messages (typically the file path); the first
// violation is returned as "<name>:<line>: <problem>". A nil return
// means the whole stream validated; n reports how many events were
// checked either way.
func ValidateStream(r io.Reader, name string) (n int64, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Event
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return n, fmt.Errorf("%s:%d: %w", name, line, err)
		}
		// The encoder writes t/type/flow unconditionally; a line missing
		// one was truncated or hand-edited. JSON zero values are
		// indistinguishable from absent fields through the struct, so
		// check key presence directly.
		var keys map[string]json.RawMessage
		if err := json.Unmarshal(raw, &keys); err != nil {
			return n, fmt.Errorf("%s:%d: %w", name, line, err)
		}
		for _, req := range []string{"t", "type", "flow"} {
			if _, ok := keys[req]; !ok {
				return n, fmt.Errorf("%s:%d: missing required field %q", name, line, req)
			}
		}
		if !knownTypes[e.Type] {
			return n, fmt.Errorf("%s:%d: unknown event type %q", name, line, e.Type)
		}
		if e.V > SchemaVersion {
			return n, fmt.Errorf("%s:%d: schema version %d is newer than this build understands (max %d)",
				name, line, e.V, SchemaVersion)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("%s: %w", name, err)
	}
	return n, nil
}
