// Package telemetry is the framework's zero-dependency observability
// layer: a Tracer emitting typed control-plane events as JSONL, and a
// metrics Registry (counters, gauges, fixed-bucket histograms) whose
// snapshots export as JSON or Prometheus text exposition format.
//
// The package is allocation-conscious by construction: the disabled
// path is a cached-bool branch at every call site (see Nop and the
// Traceable convention), and the enabled path encodes events into a
// reusable buffer with no per-event allocation.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// SchemaVersion is the current event-schema version. Recorder stamps
// it into the V field of every event it writes (unless the emitter set
// one already), so a JSONL file self-describes which schema produced
// it and `libra-trace -validate` can reject streams from the future.
// History: 1 = PR 1 flat event set; 2 = adds v/name fields and the
// span/anomaly event types; 3 = adds the profile event type and the
// "ce" enqueue reason for ECN-marked packets.
const SchemaVersion = 3

// Type discriminates the payload of an Event.
type Type string

// Event types emitted across the stack.
const (
	// TypeStage marks a control-cycle stage transition in core.Libra
	// (Stage carries the stage entered, Rate the applied rate).
	TypeStage Type = "stage"
	// TypeEarlyExit marks the th1 divergence early exit out of the
	// exploration stage (XCl/XRl carry the diverged candidates).
	TypeEarlyExit Type = "early_exit"
	// TypeDecision is the end-of-cycle argmax over candidate utilities
	// (UPrev/UCl/URl, Winner, and the adopted XPrev).
	TypeDecision Type = "decision"
	// TypeNoAck is the no-feedback fallback: a cycle ended without any
	// usable interval, so the base rate was repeated (Sec. 3).
	TypeNoAck Type = "no_ack"
	// TypeEnqueue is a packet accepted into the bottleneck queue
	// (Seq, Bytes = packet size, Queue = occupancy after enqueue).
	TypeEnqueue Type = "enqueue"
	// TypeDrop is a packet dropped at the bottleneck; Reason is one of
	// "tail", "channel", "aqm".
	TypeDrop Type = "drop"
	// TypeQueue is a periodic bottleneck sample (Queue = occupancy in
	// bytes, Rate = instantaneous link capacity in bytes/sec).
	TypeQueue Type = "queue"
	// TypeAction is one RL monitor-interval decision (Action, the new
	// Rate, the per-MI Reward, and a min/mean/max feature summary).
	TypeAction Type = "action"
	// TypeFault is a fault-injection event at the bottleneck: window
	// boundaries (Reason "blackout_start"/"blackout_end",
	// "flap_start"/"flap_end", with Rate carrying the flap's capacity
	// factor) and per-packet mutations (Reason "reorder", "dup",
	// "spike", with Queue carrying the extra delay in nanoseconds).
	TypeFault Type = "fault"
	// TypeSpan is a causal-span boundary: Reason is SpanBegin or
	// SpanEnd and Name identifies the span ("cycle", "flow:<cca>",
	// "scenario:<name>", "experiment:<id>"). The spans package folds
	// these, together with the implicit stage structure, into Chrome
	// trace-event JSON for Perfetto.
	TypeSpan Type = "span"
	// TypeAnomaly marks a detected incident: Reason is one of
	// "panic", "outage", "rate_collapse", "no_ack_streak",
	// "utility_regression". The flight recorder dumps its ring when one
	// passes through, so the seconds leading up to the incident are
	// preserved even when full tracing is off.
	TypeAnomaly Type = "anomaly"
	// TypeProfile binds a flow to a utility profile for the rest of the
	// stream (Flow, Name = profile name, e.g. "bulk" or "low-latency").
	// Emitted once per flow at scenario setup; the time-series collector
	// and the analyzer key per-profile aggregates and SLO attainment on
	// it.
	TypeProfile Type = "profile"
)

// Span boundary reasons carried by TypeSpan events.
const (
	SpanBegin = "begin"
	SpanEnd   = "end"
)

// Anomaly reasons carried by TypeAnomaly events.
const (
	AnomalyPanic       = "panic"
	AnomalyOutage      = "outage"
	AnomalyCollapse    = "rate_collapse"
	AnomalyNoAckStreak = "no_ack_streak"
	AnomalyRegression  = "utility_regression"
	// AnomalyLabWorst marks the replay of a lab-discovered worst case:
	// emitted at the end of the final evaluation so the flight recorder
	// dumps the full forensic ring for the scenario.
	AnomalyLabWorst = "lab_worst_case"
)

// Drop reasons carried by TypeDrop events.
const (
	ReasonTail    = "tail"
	ReasonChannel = "channel"
	ReasonAQM     = "aqm"
	// ReasonBlackout tags drops inflicted by an injected link outage;
	// ReasonBurst tags drops from the Gilbert-Elliott bursty-loss chain.
	ReasonBlackout = "blackout"
	ReasonBurst    = "burst"
	// ReasonCE tags *enqueue* events (not drops) whose packet was
	// ECN CE-marked by the AQM on admission — the basis of per-link
	// mark-rate series.
	ReasonCE = "ce"
)

// Fault-window reasons carried by TypeFault events.
const (
	FaultBlackoutStart = "blackout_start"
	FaultBlackoutEnd   = "blackout_end"
	FaultFlapStart     = "flap_start"
	FaultFlapEnd       = "flap_end"
	FaultReorder       = "reorder"
	FaultDup           = "dup"
	FaultSpike         = "spike"
)

// Event is one timestamped telemetry record. It is a flat union: every
// type fills T/Type/Flow plus the fields its documentation names;
// unused fields stay zero and are omitted from the JSONL encoding.
type Event struct {
	// T is virtual time in nanoseconds since simulation start.
	T int64 `json:"t"`
	// Type discriminates the payload.
	Type Type `json:"type"`
	// Flow is the emitting flow ID; -1 for link-level events.
	Flow int `json:"flow"`
	// Link labels link-level events (enqueue/drop/queue/fault) with the
	// emitting link's topology identity. Empty on the degenerate
	// single-bottleneck path, whose encoding predates topologies.
	Link string `json:"link,omitempty"`

	Stage  string `json:"stage,omitempty"`
	Reason string `json:"reason,omitempty"`
	Winner string `json:"winner,omitempty"`

	Seq   int64 `json:"seq,omitempty"`
	Bytes int64 `json:"bytes,omitempty"`
	Queue int64 `json:"queue,omitempty"`

	// Rates are bytes/sec, matching the cc package convention.
	Rate  float64 `json:"rate,omitempty"`
	XPrev float64 `json:"x_prev,omitempty"`
	XCl   float64 `json:"x_cl,omitempty"`
	XRl   float64 `json:"x_rl,omitempty"`

	UPrev float64 `json:"u_prev,omitempty"`
	UCl   float64 `json:"u_cl,omitempty"`
	URl   float64 `json:"u_rl,omitempty"`

	Action float64 `json:"action,omitempty"`
	Reward float64 `json:"reward,omitempty"`
	FMin   float64 `json:"f_min,omitempty"`
	FMean  float64 `json:"f_mean,omitempty"`
	FMax   float64 `json:"f_max,omitempty"`

	// RTT is the emitter's smoothed RTT in nanoseconds at emit time
	// (decision / no_ack events).
	RTT int64 `json:"rtt,omitempty"`
	// Thr/Grad/Loss decompose the winning candidate's scored interval
	// on decision events: throughput in Mbit/s, differential latency
	// gradient, and differential loss rate — the three inputs of the
	// Eq. 1 utility, letting analyzers split the winner's utility into
	// its throughput, delay-penalty, and loss-penalty terms.
	Thr  float64 `json:"thr,omitempty"`
	Grad float64 `json:"grad,omitempty"`
	Loss float64 `json:"loss,omitempty"`

	// Name labels span events (TypeSpan) with the span identity.
	Name string `json:"name,omitempty"`
	// V is the event-schema version. Emitters leave it zero; Recorder
	// stamps SchemaVersion on the way out so persisted streams carry it.
	V int `json:"v,omitempty"`
}

// Time returns the event timestamp as a duration from simulation start.
func (e *Event) Time() time.Duration { return time.Duration(e.T) }

// AppendJSON appends the event's single-line JSON encoding (no trailing
// newline) to b and returns the extended slice. Zero-valued optional
// fields are omitted, mirroring the struct tags, so the output decodes
// back to an equal Event. Non-finite floats encode as null (JSON has no
// NaN/Inf), which decodes as zero.
func (e *Event) AppendJSON(b []byte) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, e.T, 10)
	b = append(b, `,"type":"`...)
	b = append(b, e.Type...)
	b = append(b, `","flow":`...)
	b = strconv.AppendInt(b, int64(e.Flow), 10)
	b = appendStr(b, "link", e.Link)
	b = appendStr(b, "stage", e.Stage)
	b = appendStr(b, "reason", e.Reason)
	b = appendStr(b, "winner", e.Winner)
	b = appendInt(b, "seq", e.Seq)
	b = appendInt(b, "bytes", e.Bytes)
	b = appendInt(b, "queue", e.Queue)
	b = appendFloat(b, "rate", e.Rate)
	b = appendFloat(b, "x_prev", e.XPrev)
	b = appendFloat(b, "x_cl", e.XCl)
	b = appendFloat(b, "x_rl", e.XRl)
	b = appendFloat(b, "u_prev", e.UPrev)
	b = appendFloat(b, "u_cl", e.UCl)
	b = appendFloat(b, "u_rl", e.URl)
	b = appendFloat(b, "action", e.Action)
	b = appendFloat(b, "reward", e.Reward)
	b = appendFloat(b, "f_min", e.FMin)
	b = appendFloat(b, "f_mean", e.FMean)
	b = appendFloat(b, "f_max", e.FMax)
	b = appendInt(b, "rtt", e.RTT)
	b = appendFloat(b, "thr", e.Thr)
	b = appendFloat(b, "grad", e.Grad)
	b = appendFloat(b, "loss", e.Loss)
	b = appendStr(b, "name", e.Name)
	b = appendInt(b, "v", int64(e.V))
	return append(b, '}')
}

// appendStr appends a ,"key":"val" pair unless val is empty. The
// emitters only produce identifier-like strings (stage names, reasons,
// candidates), so characters needing JSON escaping are escaped via the
// slow path only when present.
func appendStr(b []byte, key, val string) []byte {
	if val == "" {
		return b
	}
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	if jsonSafe(val) {
		b = append(b, '"')
		b = append(b, val...)
		return append(b, '"')
	}
	q, _ := json.Marshal(val) // rare: non-identifier string
	return append(b, q...)
}

// jsonSafe reports whether s needs no escaping under encoding/json's
// default (HTML-escaping) encoder, which the slow path defers to.
func jsonSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' || c >= 0x80 {
			return false
		}
	}
	return true
}

func appendInt(b []byte, key string, v int64) []byte {
	if v == 0 {
		return b
	}
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	return strconv.AppendInt(b, v, 10)
}

func appendFloat(b []byte, key string, v float64) []byte {
	if v == 0 {
		return b
	}
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, "null"...)
	}
	// Mirror encoding/json's float rendering so hand-encoded lines are
	// byte-identical to the stdlib view of the struct (pinned by test).
	f := byte('f')
	if abs := math.Abs(v); abs < 1e-6 || abs >= 1e21 {
		f = 'e'
	}
	b = strconv.AppendFloat(b, v, f, -1, 64)
	if f == 'e' {
		// clean up e-09 to e-9, as encoding/json does
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// Decoder reads a JSONL event stream produced by Recorder.
type Decoder struct {
	sc   *bufio.Scanner
	line int
}

// NewDecoder wraps r. Lines up to 1 MiB are accepted.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	return &Decoder{sc: sc}
}

// Next returns the next event, or io.EOF when the stream is exhausted.
// Blank lines are skipped.
func (d *Decoder) Next() (Event, error) {
	for d.sc.Scan() {
		d.line++
		raw := d.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return Event{}, fmt.Errorf("telemetry: line %d: %w", d.line, err)
		}
		return e, nil
	}
	if err := d.sc.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.EOF
}

// ReadAll decodes every event in r.
func ReadAll(r io.Reader) ([]Event, error) {
	d := NewDecoder(r)
	var out []Event
	for {
		e, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}
