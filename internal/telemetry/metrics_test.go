package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("libra_cycles_total", "control cycles completed")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if r.Counter("libra_cycles_total", "") != c {
		t.Fatal("counter lookup is not idempotent")
	}

	g := r.Gauge("libra_rate_bps", "current rate")
	g.Set(10)
	g.Add(-2.5)
	if g.Value() != 7.5 {
		t.Fatalf("gauge = %g, want 7.5", g.Value())
	}

	h := r.Histogram("libra_rtt_ms", "rtt", []float64{10, 100})
	for _, v := range []float64{5, 50, 500, 50, math.NaN()} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Counts[0] != 1 || s.Counts[1] != 2 || s.Counts[2] != 1 {
		t.Fatalf("histogram snapshot %+v wrong", s)
	}
	if got := h.Mean(); math.Abs(got-(5+50+500+50)/4.0) > 1e-9 {
		t.Fatalf("mean = %g", got)
	}
	// Boundary value lands in the bucket whose upper bound it equals.
	h2 := r.Histogram("b", "", []float64{10})
	h2.Observe(10)
	if s2 := h2.Snapshot(); s2.Counts[0] != 1 {
		t.Fatalf("boundary sample fell into %+v", s2)
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter(`drops_total{reason="tail"}`, "drops").Add(2)
	r.Gauge("util", "").Set(0.93)
	r.Histogram("rtt_ms", "", RTTBucketsMs()).Observe(42)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if snap.Counters[`drops_total{reason="tail"}`] != 2 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	if snap.Histograms["rtt_ms"].Count != 1 {
		t.Fatalf("histograms: %+v", snap.Histograms)
	}
}

// promLine matches a valid sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// TestPrometheusExposition validates the exposition text: comment
// syntax, sample-line syntax, cumulative buckets, a +Inf bucket, and
// label merging for labelled histograms.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`libra_link_drops_total{reason="tail"}`, "drops by reason").Add(5)
	r.Counter(`libra_link_drops_total{reason="aqm"}`, "drops by reason").Add(1)
	r.Gauge("libra_link_utilization", "fraction of capacity used").Set(0.875)
	h := r.Histogram(`libra_flow_rtt_ms{flow="0"}`, "per-flow RTT", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasSuffix(text, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	var bucketCounts []int
	types := map[string]string{}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			if _, dup := types[f[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", f[2])
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment %q", line)
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid sample line %q", line)
		}
		if strings.HasPrefix(line, "libra_flow_rtt_ms_bucket") {
			if !strings.Contains(line, `flow="0"`) || !strings.Contains(line, `le="`) {
				t.Fatalf("bucket line lost labels: %q", line)
			}
			v, _ := strconv.Atoi(line[strings.LastIndexByte(line, ' ')+1:])
			bucketCounts = append(bucketCounts, v)
		}
	}
	if types["libra_link_drops_total"] != "counter" || types["libra_link_utilization"] != "gauge" ||
		types["libra_flow_rtt_ms"] != "histogram" {
		t.Fatalf("TYPE map wrong: %v", types)
	}
	if len(bucketCounts) != 3 {
		t.Fatalf("want 3 bucket lines (2 bounds + +Inf), got %d", len(bucketCounts))
	}
	for i := 1; i < len(bucketCounts); i++ {
		if bucketCounts[i] < bucketCounts[i-1] {
			t.Fatalf("bucket counts not cumulative: %v", bucketCounts)
		}
	}
	if bucketCounts[len(bucketCounts)-1] != 3 {
		t.Fatalf("+Inf bucket = %d, want total 3", bucketCounts[len(bucketCounts)-1])
	}
	if !strings.Contains(text, `libra_flow_rtt_ms_bucket{flow="0",le="+Inf"} 3`) {
		t.Fatalf("missing +Inf bucket:\n%s", text)
	}
	if !strings.Contains(text, `libra_flow_rtt_ms_sum{flow="0"} 5055`) {
		t.Fatalf("missing _sum:\n%s", text)
	}
	if !strings.Contains(text, `libra_flow_rtt_ms_count{flow="0"} 3`) {
		t.Fatalf("missing _count:\n%s", text)
	}
}

func TestPrometheusHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(buf.String(), "x_total 1") {
		t.Fatalf("handler output:\n%s", buf.String())
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"good_name":  "good_name",
		"bad-name.x": "bad_name_x",
		"0starts":    "_starts",
	} {
		if got := sanitizeName(in); got != want {
			t.Fatalf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDefaultBucketsAscending(t *testing.T) {
	for name, bs := range map[string][]float64{
		"rtt": RTTBucketsMs(), "thr": ThroughputBucketsMbps(),
		"util": UtilityBuckets(), "cycle": CycleLenBucketsMs(),
	} {
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Fatalf("%s buckets not strictly ascending at %d: %v", name, i, bs)
			}
		}
	}
}
