package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readDump decodes one dump file into events.
func readDump(t *testing.T, path string) []Event {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := ReadAll(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return evs
}

func dumpNames(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestFlightWraparound fills a 4-deep ring past capacity and checks the
// dump holds exactly the newest 4 events, oldest first, with the
// eviction counter accounting for the aged-out remainder.
func TestFlightWraparound(t *testing.T) {
	dir := t.TempDir()
	fl := NewFlightRecorder(FlightConfig{PerFlow: 4, Dir: dir})
	for i := 0; i < 10; i++ {
		fl.Emit(&Event{T: int64(i), Type: TypeStage, Flow: 0, Seq: int64(i)})
	}
	if got := fl.Evictions(); got != 6 {
		t.Fatalf("Evictions() = %d, want 6", got)
	}
	fl.TriggerDump(0, 10, "")
	evs := readDump(t, filepath.Join(dir, "flight-0-10.jsonl"))
	if len(evs) != 4 {
		t.Fatalf("dump holds %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.Seq != want {
			t.Errorf("dump[%d].Seq = %d, want %d (oldest-first window)", i, e.Seq, want)
		}
	}
}

// TestFlightDumpMergesLinkRing interleaves flow-0 and link (flow -1)
// events and checks a flow dump replays both rings in emission order.
func TestFlightDumpMergesLinkRing(t *testing.T) {
	dir := t.TempDir()
	fl := NewFlightRecorder(FlightConfig{Dir: dir})
	for i := 0; i < 6; i++ {
		flow := 0
		if i%2 == 1 {
			flow = -1
		}
		fl.Emit(&Event{T: int64(i), Type: TypeQueue, Flow: flow, Seq: int64(i)})
	}
	fl.TriggerDump(0, 6, "")
	evs := readDump(t, filepath.Join(dir, "flight-0-6.jsonl"))
	if len(evs) != 6 {
		t.Fatalf("merged dump holds %d events, want 6", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i) {
			t.Fatalf("dump[%d].Seq = %d: link ring not interleaved in emission order", i, e.Seq)
		}
	}
}

// TestFlightOutageLatch checks the no-ACK trigger fires once per outage
// episode: repeated decay cycles inside one blackout produce one dump,
// and a recover event re-arms the latch for the next outage.
func TestFlightOutageLatch(t *testing.T) {
	dir := t.TempDir()
	fl := NewFlightRecorder(FlightConfig{Dir: dir})
	for i := 0; i < 3; i++ {
		fl.Emit(&Event{T: int64(100 + i), Type: TypeNoAck, Flow: 0, Reason: "decay"})
	}
	if got := fl.Dumps(); got != 1 {
		t.Fatalf("after 3 decay cycles: %d dumps, want 1 (latched)", got)
	}
	fl.Emit(&Event{T: 200, Type: TypeNoAck, Flow: 0, Reason: "recover"})
	fl.Emit(&Event{T: 300, Type: TypeNoAck, Flow: 0, Reason: "decay"})
	if got := fl.Dumps(); got != 2 {
		t.Fatalf("after recover + new decay: %d dumps, want 2", got)
	}
	// The latched dump carries the synthesized outage reason.
	evs := readDump(t, filepath.Join(dir, "flight-0-100.jsonl"))
	last := evs[len(evs)-1]
	if last.Type != TypeAnomaly || last.Reason != AnomalyOutage {
		t.Fatalf("dump tail = %s/%s, want anomaly/%s", last.Type, last.Reason, AnomalyOutage)
	}
}

// TestFlightAnomalySelfTrigger checks an in-stream anomaly event cuts a
// dump whose tail is that event itself, with no duplicate appended.
func TestFlightAnomalySelfTrigger(t *testing.T) {
	dir := t.TempDir()
	fl := NewFlightRecorder(FlightConfig{Dir: dir})
	fl.Emit(&Event{T: 1, Type: TypeStage, Flow: 2})
	fl.Emit(&Event{T: 5, Type: TypeAnomaly, Flow: 2, Reason: AnomalyCollapse})
	if got := fl.Dumps(); got != 1 {
		t.Fatalf("Dumps() = %d, want 1", got)
	}
	evs := readDump(t, filepath.Join(dir, "flight-2-5.jsonl"))
	if len(evs) != 2 {
		t.Fatalf("dump holds %d events, want 2 (no duplicated trigger)", len(evs))
	}
	if last := evs[1]; last.Type != TypeAnomaly || last.Reason != AnomalyCollapse {
		t.Fatalf("dump tail = %s/%s, want the triggering anomaly", last.Type, last.Reason)
	}
}

// TestFlightExternalTriggerAppendsReason checks an out-of-stream
// trigger (the analyzer callback path) appends a self-describing
// anomaly event.
func TestFlightExternalTriggerAppendsReason(t *testing.T) {
	dir := t.TempDir()
	fl := NewFlightRecorder(FlightConfig{Dir: dir})
	fl.Emit(&Event{T: 7, Type: TypeDecision, Flow: 0, Winner: "x_prev"})
	fl.TriggerDump(0, 9, AnomalyRegression)
	evs := readDump(t, filepath.Join(dir, "flight-0-9.jsonl"))
	last := evs[len(evs)-1]
	if last.Type != TypeAnomaly || last.Reason != AnomalyRegression || last.T != 9 {
		t.Fatalf("dump tail = %+v, want appended %s anomaly at t=9", last, AnomalyRegression)
	}
}

// TestFlightFilenameDedupe checks repeated triggers at the same flow
// and sim-time get deterministic -<k> suffixes instead of overwriting.
func TestFlightFilenameDedupe(t *testing.T) {
	dir := t.TempDir()
	fl := NewFlightRecorder(FlightConfig{Dir: dir})
	fl.Emit(&Event{T: 1, Type: TypeStage, Flow: 0})
	fl.TriggerDump(0, 5, "")
	fl.TriggerDump(0, 5, "")
	fl.TriggerDump(0, 5, "")
	want := []string{"flight-0-5-1.jsonl", "flight-0-5-2.jsonl", "flight-0-5.jsonl"}
	got := dumpNames(t, dir)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("dump files = %v, want %v", got, want)
	}
}

// TestFlightEmptyRingSkips checks a trigger for a flow with no retained
// events writes nothing and counts nothing.
func TestFlightEmptyRingSkips(t *testing.T) {
	dir := t.TempDir()
	fl := NewFlightRecorder(FlightConfig{Dir: dir})
	fl.TriggerDump(3, 1, AnomalyCollapse)
	if got := fl.Dumps(); got != 0 {
		t.Fatalf("Dumps() = %d, want 0 for an empty ring", got)
	}
	if names := dumpNames(t, dir); len(names) != 0 {
		t.Fatalf("empty-ring trigger wrote %v", names)
	}
}

// TestFlightCountersRegister checks the dump/eviction counters land in
// a provided registry.
func TestFlightCountersRegister(t *testing.T) {
	reg := NewRegistry()
	fl := NewFlightRecorder(FlightConfig{PerFlow: 2, Metrics: reg})
	for i := 0; i < 3; i++ {
		fl.Emit(&Event{T: int64(i), Type: TypeStage, Flow: 0})
	}
	fl.Emit(&Event{T: 4, Type: TypeAnomaly, Flow: 0, Reason: AnomalyOutage})
	snap := reg.Snapshot()
	if got := snap.Counters["libra_flight_evictions_total"]; got != 2 {
		t.Errorf("libra_flight_evictions_total = %d, want 2", got)
	}
	if got := snap.Counters["libra_flight_dumps_total"]; got != 1 {
		t.Errorf("libra_flight_dumps_total = %d, want 1 (dir-less trigger still counts)", got)
	}
}

// BenchmarkFlightEmit measures the enabled flight-recorder hot path:
// one steady-state ring append (no trigger, warm ring).
func BenchmarkFlightEmit(b *testing.B) {
	fl := NewFlightRecorder(FlightConfig{})
	ev := Event{T: 1, Type: TypeEnqueue, Flow: 0, Seq: 42, Bytes: 1500, Queue: 30000}
	fl.Emit(&ev) // allocate the ring up front
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.T = int64(i)
		fl.Emit(&ev)
	}
}

// TestFlightEmitBudget pins the enabled flight-recorder path: zero
// allocations per event in steady state (always enforced), and
// ≤ 50 ns/event when FLIGHT_BENCH_GUARD arms the wall-clock bound
// (make bench-core / scripts/check.sh run this package in isolation).
// Guarded runs also record the measurement as the "flight" block of
// BENCH_core.json, preserving every other recorded series.
func TestFlightEmitBudget(t *testing.T) {
	fl := NewFlightRecorder(FlightConfig{})
	ev := Event{T: 1, Type: TypeEnqueue, Flow: 0, Seq: 42, Bytes: 1500, Queue: 30000}
	fl.Emit(&ev) // warm the ring
	allocs := testing.AllocsPerRun(1000, func() {
		fl.Emit(&ev)
	})
	if allocs > 0 {
		t.Fatalf("FlightRecorder.Emit allocates %.1f allocs/op in steady state, want 0", allocs)
	}

	if os.Getenv("FLIGHT_BENCH_GUARD") == "" {
		t.Log("FLIGHT_BENCH_GUARD unset; skipping ns/event budget (use make bench-core)")
		return
	}
	if raceEnabled {
		t.Log("race detector active; skipping ns/event budget")
		return
	}
	res := testing.Benchmark(BenchmarkFlightEmit)
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	t.Logf("flight recorder enabled path: %.2f ns/event", ns)
	if ns > 50 {
		t.Fatalf("flight recorder costs %.2f ns/event, budget is <= 50 ns/event", ns)
	}
	recordFlightBench(t, ns)
}

// recordFlightBench merges the flight measurement into BENCH_core.json
// without disturbing the engine/netem blocks recorded by TestBenchCore.
func recordFlightBench(t *testing.T, nsPerEvent float64) {
	path := os.Getenv("FLIGHT_BENCH_OUT")
	if path == "" {
		path = "../../BENCH_core.json"
	}
	doc := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &doc); err != nil {
			t.Fatalf("existing %s is not a JSON object: %v", path, err)
		}
	}
	blk, err := json.Marshal(struct {
		NsPerEvent     float64 `json:"flight_ns_per_event"`
		AllocsPerEvent float64 `json:"flight_allocs_per_event"`
		Depth          int     `json:"ring_depth"`
	}{NsPerEvent: nsPerEvent, Depth: DefaultFlightDepth})
	if err != nil {
		t.Fatal(err)
	}
	doc["flight"] = blk
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded flight block -> %s", path)
}
