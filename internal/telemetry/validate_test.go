package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// validStream renders a few events through the real encoder, so the
// happy path is tested against exactly what Recorder writes.
func validStream(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	for _, e := range []Event{
		{T: 1, Type: TypeStage, Flow: 0, Stage: "explore", Rate: 1e6},
		{T: 2, Type: TypeDecision, Flow: 1, Winner: "x_cl", UPrev: 1.5},
		{T: 3, Type: TypeSpan, Flow: -1, Reason: SpanBegin, Name: "scenario:test"},
		{T: 4, Type: TypeAnomaly, Flow: 0, Reason: AnomalyOutage},
	} {
		rec.Emit(&e)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestValidateStreamAcceptsRecorderOutput(t *testing.T) {
	n, err := ValidateStream(bytes.NewReader(validStream(t)), "good.jsonl")
	if err != nil {
		t.Fatalf("recorder output failed validation: %v", err)
	}
	if n != 4 {
		t.Fatalf("validated %d events, want 4", n)
	}
}

func TestValidateStreamSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"t":1,"type":"stage","flow":0}` + "\n\n"
	n, err := ValidateStream(strings.NewReader(in), "s")
	if err != nil || n != 1 {
		t.Fatalf("got n=%d err=%v, want 1 event and no error", n, err)
	}
}

func TestValidateStreamRejections(t *testing.T) {
	cases := []struct {
		name, line, wantErr string
	}{
		{"unknown field", `{"t":1,"type":"stage","flow":0,"bogus":3}`, `unknown field "bogus"`},
		{"unknown type", `{"t":1,"type":"warp","flow":0}`, `unknown event type "warp"`},
		{"missing t", `{"type":"stage","flow":0}`, `missing required field "t"`},
		{"missing type", `{"t":1,"flow":0}`, `missing required field "type"`},
		{"missing flow", `{"t":1,"type":"stage"}`, `missing required field "flow"`},
		{"future version", fmt.Sprintf(`{"t":1,"type":"stage","flow":0,"v":%d}`, SchemaVersion+1), "newer than this build"},
		{"not json", `garbage`, "invalid character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A valid first line pins the error's line number to 2.
			in := `{"t":0,"type":"stage","flow":0}` + "\n" + tc.line + "\n"
			n, err := ValidateStream(strings.NewReader(in), "bad.jsonl")
			if err == nil {
				t.Fatalf("line %q validated, want error", tc.line)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if !strings.HasPrefix(err.Error(), "bad.jsonl:2:") {
				t.Fatalf("error %q does not name bad.jsonl line 2", err)
			}
			if n != 1 {
				t.Fatalf("n = %d, want 1 (the valid line before the failure)", n)
			}
		})
	}
}

// TestValidateStreamCurrentVersionOK pins that a stream stamped with
// the current SchemaVersion — what Recorder writes — passes, and that
// legacy version-less streams stay readable.
func TestValidateStreamVersions(t *testing.T) {
	in := fmt.Sprintf(`{"t":1,"type":"stage","flow":0,"v":%d}`, SchemaVersion) + "\n" +
		`{"t":2,"type":"stage","flow":0}` + "\n" // pre-versioning line
	n, err := ValidateStream(strings.NewReader(in), "s")
	if err != nil || n != 2 {
		t.Fatalf("got n=%d err=%v, want both versions accepted", n, err)
	}
}
