package telemetry

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func TestTSeriesGaugeBucketing(t *testing.T) {
	db := NewTSDB(100*time.Millisecond, 16)
	s := db.Series("q", TSGauge, 1)
	ms := int64(time.Millisecond)
	s.Add(10*ms, 5)
	s.Add(90*ms, 15) // same bucket
	s.Add(150*ms, 8) // next bucket
	s.Add(-5, 1)     // clamps to bucket 0

	snap := s.snapshot()
	if len(snap.Points) != 2 {
		t.Fatalf("points = %d, want 2:\n%+v", len(snap.Points), snap.Points)
	}
	p0 := snap.Points[0]
	if p0.TMs != 0 || p0.N != 3 || p0.Min != 1 || p0.Max != 15 || p0.Mean != 7 {
		t.Errorf("bucket 0 = %+v, want t=0 n=3 min=1 mean=7 max=15", p0)
	}
	p1 := snap.Points[1]
	if p1.TMs != 100 || p1.N != 1 || p1.Mean != 8 {
		t.Errorf("bucket 1 = %+v, want t=100ms n=1 mean=8", p1)
	}
	if p0.Rate != 0 {
		t.Errorf("gauge bucket carries rate %v, want 0 (omitted)", p0.Rate)
	}
}

func TestTSeriesRateScaling(t *testing.T) {
	db := NewTSDB(100*time.Millisecond, 16)
	s := db.Series("thr", TSRate, 8e-6) // bytes → Mbit
	s.Add(0, 1500)
	s.Add(50*int64(time.Millisecond), 1500)
	p := s.snapshot().Points[0]
	// 3000 bytes in a 0.1 s bucket = 30 KB/s = 0.24 Mbit/s.
	if want := 3000 * 8e-6 / 0.1; math.Abs(p.Rate-want) > 1e-12 {
		t.Errorf("rate = %v, want %v", p.Rate, want)
	}
}

// A sample past the ring's extent must fold the series (width doubles)
// rather than grow or drop, preserving every prior sample.
func TestTSeriesFold(t *testing.T) {
	db := NewTSDB(100*time.Millisecond, 8) // covers 800 ms before folding
	s := db.Series("q", TSGauge, 1)
	ms := int64(time.Millisecond)
	for i := int64(0); i < 8; i++ {
		s.Add(i*100*ms, float64(i))
	}
	s.Add(900*ms, 100) // one past the end → fold to 200 ms buckets

	if got := s.Width(); got != 200*time.Millisecond {
		t.Fatalf("width after fold = %v, want 200ms", got)
	}
	snap := s.snapshot()
	var n int64
	for _, p := range snap.Points {
		n += p.N
	}
	if n != 9 {
		t.Errorf("sample count after fold = %d, want 9 (no samples lost)", n)
	}
	// Old buckets 0 and 1 merged: min 0, max 1, mean 0.5.
	p0 := snap.Points[0]
	if p0.N != 2 || p0.Min != 0 || p0.Max != 1 || p0.Mean != 0.5 {
		t.Errorf("folded bucket 0 = %+v, want n=2 min=0 max=1 mean=0.5", p0)
	}
	last := snap.Points[len(snap.Points)-1]
	if last.TMs != 800 || last.Max != 100 {
		t.Errorf("new sample landed at %+v, want t=800ms max=100", last)
	}
}

// Merging shards of a stream (in shard order) must reproduce the
// single-pass snapshot byte-for-byte, including when the shards folded
// to different widths.
func TestTSDBMergeMatchesSinglePass(t *testing.T) {
	feed := func(s *TSeries, lo, hi int64) {
		for i := lo; i < hi; i++ {
			s.Add(i*50*int64(time.Millisecond), float64(i%17))
		}
	}
	single := NewTSDB(100*time.Millisecond, 8)
	feed(single.Series("g", TSGauge, 1), 0, 64)
	feed(single.Series("r", TSRate, 2), 0, 64)

	// Shard 1 covers a short prefix (stays at base width); shard 2 the
	// long tail (folds several times).
	s1 := NewTSDB(100*time.Millisecond, 8)
	feed(s1.Series("g", TSGauge, 1), 0, 8)
	feed(s1.Series("r", TSRate, 2), 0, 8)
	s2 := NewTSDB(100*time.Millisecond, 8)
	feed(s2.Series("g", TSGauge, 1), 8, 64)
	feed(s2.Series("r", TSRate, 2), 8, 64)

	merged := NewTSDB(100*time.Millisecond, 8)
	merged.Merge(s1)
	merged.Merge(s2)

	var a, b bytes.Buffer
	if err := single.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("merged snapshot differs from single-pass:\n--- single ---\n%s\n--- merged ---\n%s", a.String(), b.String())
	}
}

// tsEvents is a deterministic mixed stream: two links, two flows (one
// profiled), queue samples, CE marks, drops, decisions.
func tsEvents() []Event {
	ms := func(n int64) int64 { return n * int64(time.Millisecond) }
	var evs []Event
	evs = append(evs, Event{T: ms(1), Type: TypeProfile, Flow: 1, Name: "bulk"})
	for i := int64(0); i < 400; i++ {
		link := "a"
		if i%3 == 0 {
			link = "b"
		}
		fl := int(i % 2)
		evs = append(evs,
			Event{T: ms(i * 10), Type: TypeEnqueue, Flow: fl, Link: link, Seq: i, Bytes: 1500, Queue: 1500 * (i%8 + 1)},
			Event{T: ms(i*10 + 2), Type: TypeQueue, Flow: -1, Link: link, Queue: 1500 * (i % 8), Rate: 3e6},
		)
		if i%7 == 0 {
			evs = append(evs, Event{T: ms(i*10 + 3), Type: TypeEnqueue, Flow: fl, Link: link, Seq: i, Bytes: 1500, Queue: 1500, Reason: ReasonCE})
		}
		if i%13 == 0 {
			evs = append(evs, Event{T: ms(i*10 + 4), Type: TypeDrop, Flow: fl, Link: link, Reason: "tail", Bytes: 1500, Queue: 12000})
		}
		if i%5 == 0 {
			evs = append(evs, Event{
				T: ms(i*10 + 5), Type: TypeDecision, Flow: fl, Winner: "x_cl",
				XPrev: 2e6, XCl: 2.5e6, XRl: 1.5e6, UPrev: 1, UCl: 1.2, URl: 0.8,
				RTT: ms(40 + i%9),
			})
		}
	}
	return evs
}

// The collector's merge contract: sharding a stream across collectors
// by flow (each shard sees its flows' events in stream order, the way
// sweep jobs and timeline's per-file collectors do) and merging in
// shard order reproduces the single-pass snapshot byte-for-byte, and a
// replay of the same events (the offline timeline path) matches too.
func TestTSCollectorMergeAndReplay(t *testing.T) {
	evs := tsEvents()
	single := NewTSCollector(0, 0)
	for i := range evs {
		single.Emit(&evs[i])
	}

	shards := []*TSCollector{NewTSCollector(0, 0), NewTSCollector(0, 0), NewTSCollector(0, 0)}
	route := func(e *Event) int {
		if e.Flow < 0 {
			return 2
		}
		return e.Flow % 2
	}
	for i := range evs {
		shards[route(&evs[i])].Emit(&evs[i])
	}
	merged := NewTSCollector(0, 0)
	for _, s := range shards {
		merged.Merge(s)
	}

	var a, b bytes.Buffer
	if err := single.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("sharded+merged collector snapshot differs from single-pass")
	}

	replay := NewTSCollector(0, 0)
	for i := range evs {
		replay.Emit(&evs[i])
	}
	var c bytes.Buffer
	if err := replay.WriteJSON(&c); err != nil {
		t.Fatal(err)
	}
	if a.String() != c.String() {
		t.Fatal("replayed collector snapshot differs from live capture")
	}
}

func TestTSCollectorLinksLive(t *testing.T) {
	c := NewTSCollector(0, 0)
	for _, e := range tsEvents() {
		ev := e
		c.Emit(&ev)
	}
	links := c.LinksLive()
	if len(links) != 2 || links[0].Label != "a" || links[1].Label != "b" {
		t.Fatalf("links = %+v, want labels [a b]", links)
	}
	for _, l := range links {
		if l.CapacityMbps != 3e6*8e-6 {
			t.Errorf("link %s capacity = %v, want 24", l.Label, l.CapacityMbps)
		}
		if l.ThroughputMbps <= 0 {
			t.Errorf("link %s throughput = %v, want > 0", l.Label, l.ThroughputMbps)
		}
		if l.Utilization < 0 || l.Utilization > 1 {
			t.Errorf("link %s utilization = %v, want within [0,1]", l.Label, l.Utilization)
		}
		if l.QueueBytes <= 0 {
			t.Errorf("link %s queue = %v, want > 0", l.Label, l.QueueBytes)
		}
	}
}

// The single-bottleneck pseudo-label and the label extractor.
func TestTSNameAndLabels(t *testing.T) {
	if got := tsName("link_queue_bytes", "link", "wan-1"); got != `link_queue_bytes{link="wan-1"}` {
		t.Errorf("tsName = %q", got)
	}
	if got := tsLabelValue(`link_queue_bytes{link="wan-1"}`); got != "wan-1" {
		t.Errorf("tsLabelValue = %q, want wan-1", got)
	}
	if got := tsLabelValue("plain"); got != "" {
		t.Errorf("tsLabelValue(plain) = %q, want empty", got)
	}

	c := NewTSCollector(0, 0)
	ev := Event{T: 1, Type: TypeEnqueue, Flow: 0, Bytes: 1500, Queue: 1500}
	c.Emit(&ev)
	links := c.LinksLive()
	if len(links) != 1 || links[0].Label != "bn" {
		t.Fatalf("unlabelled bottleneck = %+v, want one link labelled bn", links)
	}
}
