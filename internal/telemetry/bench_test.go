package telemetry

import (
	"io"
	"os"
	"testing"
)

// emitter mirrors the call-site convention every instrumented component
// uses: the tracer interface plus a bool cached at SetTracer time, and
// a reusable Event buffer.
type emitter struct {
	tracer Tracer
	on     bool
	ev     Event
}

func (m *emitter) setTracer(t Tracer) {
	m.tracer = t
	m.on = Enabled(t)
}

// onAck is a stand-in for the per-ACK hot path of core.Libra.
//
//go:noinline
func (m *emitter) onAck(now int64, rate float64) {
	if m.on {
		m.ev = Event{T: now, Type: TypeStage, Flow: 0, Rate: rate}
		m.tracer.Emit(&m.ev)
	}
}

// BenchmarkNopTracer is the disabled-telemetry hot-path budget guard:
// the guarded emit must cost < 2 ns/op and 0 allocs/op, so leaving
// tracing compiled into the per-ACK path is free in production.
// TestNopTracerBudget enforces the numbers in CI.
func BenchmarkNopTracer(b *testing.B) {
	var m emitter
	m.setTracer(Nop{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.onAck(int64(i), 1e6)
	}
}

// BenchmarkRecorderEmit measures the enabled path: JSONL-encode one
// typical decision event into the recorder's buffer.
func BenchmarkRecorderEmit(b *testing.B) {
	rec := NewRecorder(io.Discard)
	var m emitter
	m.setTracer(rec)
	ev := Event{
		T: 123456789, Type: TypeDecision, Flow: 2, Winner: "x_cl",
		UPrev: 1.25, UCl: 2.5, URl: -0.75, XPrev: 6e6,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.T = int64(i)
		m.tracer.Emit(&ev)
	}
}

// TestNopTracerBudget runs BenchmarkNopTracer and asserts the
// disabled-path budget: < 2 ns/op, 0 allocs/op. The allocation bound
// always holds; the nanosecond bound is only enforced when
// TELEMETRY_BENCH_GUARD is set (make bench-guard / scripts/check.sh run
// this package in isolation), because under a parallel `go test ./...`
// sweep or the race detector the wall clock measures CPU contention,
// not the emit path.
func TestNopTracerBudget(t *testing.T) {
	res := testing.Benchmark(BenchmarkNopTracer)
	if res.AllocsPerOp() != 0 {
		t.Fatalf("disabled tracer path allocates: %d allocs/op", res.AllocsPerOp())
	}
	if os.Getenv("TELEMETRY_BENCH_GUARD") == "" {
		t.Log("TELEMETRY_BENCH_GUARD unset; skipping ns/op budget (use make bench-guard)")
		return
	}
	if raceEnabled {
		t.Log("race detector active; skipping ns/op budget")
		return
	}
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	t.Logf("disabled tracer path: %.2f ns/op", ns)
	if ns >= 2 {
		t.Fatalf("disabled tracer path costs %.2f ns/op, budget is < 2 ns/op", ns)
	}
}

// TestRecorderEmitAllocs pins the enabled path to zero allocations per
// event once the buffer has warmed up.
func TestRecorderEmitAllocs(t *testing.T) {
	rec := NewRecorder(io.Discard)
	ev := Event{T: 1, Type: TypeEnqueue, Flow: 1, Seq: 42, Bytes: 1500, Queue: 30000}
	rec.Emit(&ev) // warm the buffer
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Emit(&ev)
	})
	if allocs > 0 {
		t.Fatalf("Recorder.Emit allocates %.1f allocs/op, want 0", allocs)
	}
}
