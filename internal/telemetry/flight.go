package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
)

// DefaultFlightDepth is the per-flow ring capacity when FlightConfig
// leaves PerFlow zero: enough to hold several control cycles' worth of
// decision/stage/no_ack events — the seconds leading up to an incident.
const DefaultFlightDepth = 256

// FlightConfig parameterizes a FlightRecorder.
type FlightConfig struct {
	// PerFlow is the ring capacity per flow (DefaultFlightDepth if 0).
	PerFlow int
	// Dir is the directory dump files are written into. Dumps are
	// skipped (but still counted as triggers suppressed) when empty.
	Dir string
	// Metrics, when set, receives libra_flight_dumps_total and
	// libra_flight_evictions_total counters.
	Metrics *Registry
}

// stampedEvent pairs an event with its global arrival index, so a dump
// can interleave a flow's ring with the link ring in emission order.
type stampedEvent struct {
	seq uint64
	ev  Event
}

// flightRing is one flow's fixed-capacity event window.
type flightRing struct {
	buf  []stampedEvent
	head int // next write slot
	n    int // live entries (== len(buf) once wrapped)
	// outage latches one dump per no-ACK outage episode: set on the
	// first decay event, cleared by recovery, so a long blackout does
	// not write a file per silent cycle.
	outage bool
}

// FlightRecorder is an always-on, bounded tracer: it retains the last
// PerFlow events per flow (plus the link's own ring under flow -1) in
// fixed-size ring buffers and writes a merged JSONL snapshot —
// flight-<flow>-<simtime>.jsonl — whenever an anomaly passes through
// the stream or TriggerDump is called. Steady state is allocation-free
// after each flow's first event; rings never grow.
//
// FlightRecorder composes via Multi like any Tracer and shares the
// single-emitter contract: it must only see one goroutine's stream. In
// sweeps that is the parent context's ordered replay, which is what
// makes dump files byte-identical at any worker count.
type FlightRecorder struct {
	perFlow   int
	dir       string
	seq       uint64
	rings     map[int]*flightRing
	dumps     *Counter
	evictions *Counter
	fileSeq   map[string]int // filename -> next dedupe suffix
	err       error          // first dump-write error, sticky
}

// NewFlightRecorder returns a recorder with empty rings.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.PerFlow <= 0 {
		cfg.PerFlow = DefaultFlightDepth
	}
	f := &FlightRecorder{
		perFlow: cfg.PerFlow,
		dir:     cfg.Dir,
		rings:   map[int]*flightRing{},
		fileSeq: map[string]int{},
	}
	if cfg.Metrics != nil {
		f.dumps = cfg.Metrics.Counter("libra_flight_dumps_total",
			"Flight-recorder dump files written on anomaly triggers.")
		f.evictions = cfg.Metrics.Counter("libra_flight_evictions_total",
			"Events evicted from full flight-recorder rings.")
	} else {
		f.dumps = &Counter{}
		f.evictions = &Counter{}
	}
	return f
}

// Enabled implements Tracer.
func (f *FlightRecorder) Enabled() bool { return true }

// Emit implements Tracer: append to the flow's ring (evicting the
// oldest entry once full) and self-trigger a dump when the event is an
// anomaly or the first decay cycle of a no-ACK outage.
func (f *FlightRecorder) Emit(e *Event) {
	f.seq++
	r := f.rings[e.Flow]
	if r == nil {
		r = &flightRing{buf: make([]stampedEvent, f.perFlow)}
		f.rings[e.Flow] = r
	}
	if r.n == len(r.buf) {
		f.evictions.Inc()
	} else {
		r.n++
	}
	r.buf[r.head] = stampedEvent{seq: f.seq, ev: *e}
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}

	switch e.Type {
	case TypeAnomaly:
		f.TriggerDump(e.Flow, e.T, e.Reason)
	case TypeNoAck:
		switch e.Reason {
		case "decay":
			if !r.outage {
				r.outage = true
				f.TriggerDump(e.Flow, e.T, AnomalyOutage)
			}
		case "recover":
			r.outage = false
		}
	}
}

// snapshot returns the ring's live entries, oldest first. Callers own
// the returned slice.
func (r *flightRing) snapshot() []stampedEvent {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]stampedEvent, 0, r.n)
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		j := start + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		out = append(out, r.buf[j])
	}
	return out
}

// TriggerDump writes the flow's retained window — its own ring merged
// with the link ring (flow -1) in emission order — to
// <dir>/flight-<flow>-<simtime>.jsonl. reason is recorded in a
// trailing anomaly event when the trigger came from outside the stream
// (analyzer callbacks), so the dump is self-describing. Repeated
// triggers for the same flow and sim-time get a deterministic -<k>
// filename suffix instead of overwriting.
func (f *FlightRecorder) TriggerDump(flow int, simTime int64, reason string) {
	evs := f.rings[flow].snapshot()
	if flow != -1 {
		link := f.rings[-1].snapshot()
		evs = mergeBySeq(evs, link)
	}
	if len(evs) == 0 {
		return
	}
	if f.dir == "" {
		f.dumps.Inc() // trigger observed, nowhere to write
		return
	}
	name := fmt.Sprintf("flight-%d-%d.jsonl", flow, simTime)
	if k := f.fileSeq[name]; k > 0 {
		f.fileSeq[name] = k + 1
		name = fmt.Sprintf("flight-%d-%d-%d.jsonl", flow, simTime, k)
	} else {
		f.fileSeq[name] = 1
	}
	w, err := os.Create(filepath.Join(f.dir, name))
	if err != nil {
		f.setErr(err)
		return
	}
	rec := NewRecorder(w)
	for i := range evs {
		rec.Emit(&evs[i].ev)
	}
	if last := evs[len(evs)-1].ev; reason != "" &&
		!(last.Type == TypeAnomaly && last.Reason == reason) {
		// External trigger (analyzer callback): append the cause so the
		// dump explains itself.
		rec.Emit(&Event{T: simTime, Type: TypeAnomaly, Flow: flow, Reason: reason})
	}
	f.setErr(rec.Close())
	f.dumps.Inc()
}

// mergeBySeq interleaves two seq-ascending slices.
func mergeBySeq(a, b []stampedEvent) []stampedEvent {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]stampedEvent, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].seq < b[j].seq {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func (f *FlightRecorder) setErr(err error) {
	if f.err == nil && err != nil {
		f.err = err
	}
}

// Dumps returns the number of dump triggers fired so far.
func (f *FlightRecorder) Dumps() int64 { return f.dumps.Value() }

// Evictions returns the number of events aged out of full rings.
func (f *FlightRecorder) Evictions() int64 { return f.evictions.Value() }

// Err returns the first dump-write error encountered, if any.
func (f *FlightRecorder) Err() error { return f.err }

// Depth returns the configured per-flow ring capacity.
func (f *FlightRecorder) Depth() int { return f.perFlow }
