package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// This file implements the time-series layer: fixed-capacity
// downsampling ring series with min/mean/max per bucket. Bucket
// boundaries are keyed on virtual (simulation) time only — bucket i of
// a series with width w covers [i*w, (i+1)*w) — so two captures of the
// same event stream produce identical series regardless of wall clock,
// worker count, or whether the stream was live or replayed from a
// JSONL file. When a sample lands past the last bucket, the series
// halves its resolution in place (adjacent buckets fold pairwise and
// the width doubles), so a series covers [0, now) forever in O(cap)
// memory. The Add path performs no allocation (TestTimeSeriesBudget).

// TSKind discriminates how a series' buckets are summarised.
type TSKind uint8

const (
	// TSGauge series report the min/mean/max of the samples that landed
	// in each bucket (queue depth, RTT, rates sampled at decisions).
	TSGauge TSKind = iota
	// TSRate series report the per-second rate of the summed samples in
	// each bucket (bytes enqueued, drops, CE marks), scaled by the
	// series' unit factor.
	TSRate
)

func (k TSKind) String() string {
	if k == TSRate {
		return "rate"
	}
	return "gauge"
}

// tsBucket is one downsampling bucket.
type tsBucket struct {
	min, max, sum float64
	n             int64
}

// merge folds o into b.
func (b *tsBucket) merge(o tsBucket) {
	if o.n == 0 {
		return
	}
	if b.n == 0 {
		*b = o
		return
	}
	if o.min < b.min {
		b.min = o.min
	}
	if o.max > b.max {
		b.max = o.max
	}
	b.sum += o.sum
	b.n += o.n
}

// TSeries is one named fixed-capacity downsampling series. Not
// goroutine-safe on its own: the owning TSDB/TSCollector serialises
// access.
type TSeries struct {
	name  string
	kind  TSKind
	scale float64 // unit factor applied to rate values at snapshot time
	width int64   // ns per bucket; doubles on fold
	used  int     // highest occupied bucket index + 1
	bk    []tsBucket
}

// Name returns the series name (with any {label} block).
func (s *TSeries) Name() string { return s.name }

// Width returns the current bucket width.
func (s *TSeries) Width() time.Duration { return time.Duration(s.width) }

// Add folds one sample at virtual time t (ns) into the series.
// Negative times clamp to bucket zero. Zero allocation.
func (s *TSeries) Add(t int64, v float64) {
	if t < 0 {
		t = 0
	}
	i := int(t / s.width)
	for i >= len(s.bk) {
		s.fold()
		i = int(t / s.width)
	}
	b := &s.bk[i]
	if b.n == 0 {
		b.min, b.max = v, v
	} else {
		if v < b.min {
			b.min = v
		}
		if v > b.max {
			b.max = v
		}
	}
	b.sum += v
	b.n++
	if i >= s.used {
		s.used = i + 1
	}
}

// fold halves the series resolution in place: bucket pairs (2k, 2k+1)
// merge into bucket k and the width doubles. Deterministic — folding
// depends only on the samples already present.
func (s *TSeries) fold() {
	half := (s.used + 1) / 2
	for k := 0; k < half; k++ {
		b := s.bk[2*k]
		if 2*k+1 < s.used {
			b.merge(s.bk[2*k+1])
		}
		s.bk[k] = b
	}
	for k := half; k < s.used; k++ {
		s.bk[k] = tsBucket{}
	}
	s.used = half
	s.width *= 2
}

// mergeSeries folds src into s. Widths align by folding the finer side
// down to the coarser one (both are the base width times a power of
// two); buckets then combine additively. src is left untouched.
func (s *TSeries) mergeSeries(src *TSeries) {
	for s.width < src.width {
		s.fold()
	}
	if src.used == 0 {
		return
	}
	// Ensure the coarser grid can hold src's extent.
	for int(int64(src.used-1)*src.width/s.width) >= len(s.bk) {
		s.fold()
	}
	for j := 0; j < src.used; j++ {
		if src.bk[j].n == 0 {
			continue
		}
		i := int(int64(j) * src.width / s.width)
		s.bk[i].merge(src.bk[j])
		if i >= s.used {
			s.used = i + 1
		}
	}
}

// TSPoint is one non-empty bucket in a series snapshot. Min/Mean/Max
// summarise the raw samples; Rate is the scaled per-second rate of the
// bucket's sum (meaningful for TSRate series, zero otherwise).
type TSPoint struct {
	TMs  float64 `json:"t_ms"`
	N    int64   `json:"n"`
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
	Rate float64 `json:"rate,omitempty"`
}

// TSSeriesSnapshot is the exportable view of one series.
type TSSeriesSnapshot struct {
	Name     string    `json:"name"`
	Kind     string    `json:"kind"`
	BucketMs float64   `json:"bucket_ms"`
	Points   []TSPoint `json:"points"`
}

// snapshot materialises the series' non-empty buckets.
func (s *TSeries) snapshot() TSSeriesSnapshot {
	out := TSSeriesSnapshot{
		Name:     s.name,
		Kind:     s.kind.String(),
		BucketMs: float64(s.width) / 1e6,
		Points:   []TSPoint{},
	}
	sec := float64(s.width) / 1e9
	for i := 0; i < s.used; i++ {
		b := s.bk[i]
		if b.n == 0 {
			continue
		}
		p := TSPoint{
			TMs:  float64(int64(i)*s.width) / 1e6,
			N:    b.n,
			Min:  b.min,
			Mean: b.sum / float64(b.n),
			Max:  b.max,
		}
		if s.kind == TSRate {
			p.Rate = b.sum * s.scale / sec
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// lastBucket returns the most recent non-empty bucket at or before
// index limit (inclusive; pass used-1 for "latest"). ok is false when
// the series is empty.
func (s *TSeries) lastBucket(limit int) (tsBucket, bool) {
	if limit >= s.used {
		limit = s.used - 1
	}
	for i := limit; i >= 0; i-- {
		if s.bk[i].n > 0 {
			return s.bk[i], true
		}
	}
	return tsBucket{}, false
}

// TSDB is a set of named series sharing one base bucket width. Series
// registration is idempotent. TSDB methods are not goroutine-safe;
// TSCollector wraps one with a lock for live use.
type TSDB struct {
	width  int64
	cap    int
	series map[string]*TSeries
}

// Defaults for NewTSDB.
const (
	DefaultTSBucket   = 100 * time.Millisecond
	DefaultTSCapacity = 512
)

// NewTSDB returns an empty series database. bucket <= 0 and capacity
// <= 0 fall back to the defaults (100 ms x 512 buckets, covering 51.2 s
// before the first resolution fold).
func NewTSDB(bucket time.Duration, capacity int) *TSDB {
	if bucket <= 0 {
		bucket = DefaultTSBucket
	}
	if capacity <= 0 {
		capacity = DefaultTSCapacity
	}
	return &TSDB{
		width:  bucket.Nanoseconds(),
		cap:    capacity,
		series: make(map[string]*TSeries, 32),
	}
}

// BaseBucket returns the database's base bucket width.
func (db *TSDB) BaseBucket() time.Duration { return time.Duration(db.width) }

// Series returns (registering on first use) the named series. scale is
// the unit factor rate buckets multiply by at snapshot time (ignored
// for gauges; pass 1 when the summed unit is already per-second-ready).
func (db *TSDB) Series(name string, kind TSKind, scale float64) *TSeries {
	if s, ok := db.series[name]; ok {
		return s
	}
	if scale == 0 {
		scale = 1
	}
	s := &TSeries{
		name:  name,
		kind:  kind,
		scale: scale,
		width: db.width,
		bk:    make([]tsBucket, db.cap),
	}
	db.series[name] = s
	return s
}

// Merge folds src into db (src is left untouched). Same-named series
// combine bucket-wise after width alignment; unseen series are deep-
// copied. Merging shards in a fixed order yields byte-identical
// snapshots at any worker count, matching the sweep engine's contract.
func (db *TSDB) Merge(src *TSDB) {
	if src == nil || src == db {
		return
	}
	names := make([]string, 0, len(src.series))
	for name := range src.series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := src.series[name]
		ds := db.Series(name, ss.kind, ss.scale)
		ds.mergeSeries(ss)
	}
}

// TSSnapshot is the exportable view of a whole database, series sorted
// by name.
type TSSnapshot struct {
	BaseBucketMs float64            `json:"base_bucket_ms"`
	Series       []TSSeriesSnapshot `json:"series"`
}

// Snapshot materialises every series, sorted by name.
func (db *TSDB) Snapshot() TSSnapshot {
	names := make([]string, 0, len(db.series))
	for name := range db.series {
		names = append(names, name)
	}
	sort.Strings(names)
	out := TSSnapshot{BaseBucketMs: float64(db.width) / 1e6, Series: []TSSeriesSnapshot{}}
	for _, name := range names {
		out.Series = append(out.Series, db.series[name].snapshot())
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON. Field order is fixed
// by the snapshot structs and series sort by name, so identical state
// renders byte-identically.
func (db *TSDB) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(db.Snapshot())
}

// ExportProm publishes every series' latest bucket into reg as a
// libra_ts_* gauge carrying the series' own label block: gauges export
// the bucket mean, rates the scaled per-second rate. Call before
// writing a metrics snapshot (or on each /metrics request) — the
// gauges are a point-in-time mirror, not a live feed.
func (db *TSDB) ExportProm(reg *Registry) {
	if reg == nil {
		return
	}
	names := make([]string, 0, len(db.series))
	for name := range db.series {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := db.series[name]
		b, ok := s.lastBucket(s.used - 1)
		if !ok {
			continue
		}
		v := b.sum / float64(b.n)
		if s.kind == TSRate {
			v = b.sum * s.scale / (float64(s.width) / 1e9)
		}
		reg.Gauge("libra_ts_"+name, "latest time-series bucket ("+s.kind.String()+")").Set(v)
	}
}

// tsName builds a labelled series name; label values go through %q so
// arbitrary topology labels stay parseable.
func tsName(base, label, value string) string {
	if value == "" {
		return base
	}
	return fmt.Sprintf("%s{%s=%q}", base, label, value)
}

// tsLabelValue extracts the value of the (single) label on a collector
// series name, "" when unlabelled.
func tsLabelValue(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	var v string
	inner := strings.TrimSuffix(name[i+1:], "}")
	if j := strings.IndexByte(inner, '"'); j >= 0 {
		_ = json.Unmarshal([]byte(inner[j:]), &v)
	}
	return v
}
