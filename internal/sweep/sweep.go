// Package sweep is the deterministic parallel execution engine for the
// experiment harness: a fixed-size worker pool that runs independent
// jobs and returns their results in submission order, so callers see
// exactly the same output at any worker count.
//
// Determinism is a contract between this package and its callers. The
// pool guarantees order-stable results and panic propagation; callers
// must make each job self-contained (own seed, own accumulators, no
// shared mutable state) — the exp package's RunContext/Sweep layer
// enforces that discipline for flow jobs.
//
// Observability rides the same contract: exp.Sweep buffers each job's
// telemetry and replays it into the parent tracer in submission order,
// so downstream consumers that derive state from the stream — the
// flight recorder's anomaly dumps, the span builder's run boundaries —
// produce byte-identical output at any worker count.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: positive values are taken
// as-is, anything else means GOMAXPROCS (use every core).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0..n-1) on up to workers goroutines (see Workers for the
// default) and returns the results indexed by job, regardless of the
// order in which jobs were scheduled or finished. A panic in any job is
// re-raised on the calling goroutine after the pool drains, so a
// crashing job cannot take down the process from a worker goroutine.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Single-worker runs stay on the calling goroutine: same code
		// path per job, no scheduling. Panics carry the same job-tagged
		// payload as the pooled path so callers see one failure shape.
		for i := range out {
			func() {
				defer func() {
					if r := recover(); r != nil {
						panic(fmt.Errorf("sweep: job %d panicked: %v", i, r))
					}
				}()
				out[i] = fn(i)
			}()
		}
		return out
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicOne sync.Once
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOne.Do(func() { panicked = fmt.Errorf("sweep: job %d panicked: %v", i, r) })
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// SubSeed derives the seed for job i from a base seed via a splitmix64
// finalising mix: statistically independent per job, stable across
// worker counts, and collision-free for any realistic job count
// (unlike the base+i*smallPrime arithmetic it replaces, whose streams
// overlap between jobs).
func SubSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// SubSeed2 derives a seed from a two-dimensional index (round, member),
// for callers whose job space is a grid rather than a line — the lab's
// search rounds and tournament cells. Composing two SubSeed mixes keeps
// streams independent across both axes without the (i,j)→k flattening
// errors that invite collisions.
func SubSeed2(base int64, i, j int) int64 {
	return SubSeed(SubSeed(base, i), j)
}
