package sweep

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
}

// Results land at their job's index regardless of worker count or
// scheduling order.
func TestMapResultsIndexOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		out := Map(workers, 100, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// With one worker the jobs run inline on the calling goroutine, in
// strictly ascending index order.
func TestMapSerialOrder(t *testing.T) {
	var order []int // appended without a lock: single worker runs inline
	Map(1, 10, func(i int) int {
		order = append(order, i)
		return i
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("expected empty result, got %v", out)
	}
}

// Every job runs exactly once even when jobs far outnumber workers.
func TestMapRunsEachJobOnce(t *testing.T) {
	var counts [257]atomic.Int32
	Map(4, len(counts), func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("job %d ran %d times", i, n)
		}
	}
}

// A panicking job propagates to the Map caller (with the job index)
// instead of killing a worker goroutine.
func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: expected panic", workers)
				}
				msg, ok := r.(error)
				if !ok || !strings.Contains(msg.Error(), "job 7 panicked: boom") {
					t.Fatalf("workers=%d: unexpected panic payload %v", workers, r)
				}
			}()
			Map(workers, 20, func(i int) int {
				if i == 7 {
					panic("boom")
				}
				return i
			})
		}()
	}
}

func TestSubSeedDistinctAndStable(t *testing.T) {
	seen := map[int64]bool{}
	for _, base := range []int64{0, 1, 2, 42, -9, 1 << 40} {
		for i := 0; i < 1000; i++ {
			s := SubSeed(base, i)
			if seen[s] {
				t.Fatalf("collision at base=%d i=%d (seed %d)", base, i, s)
			}
			seen[s] = true
			if s != SubSeed(base, i) {
				t.Fatalf("SubSeed not deterministic at base=%d i=%d", base, i)
			}
		}
	}
	if SubSeed(1, 0) == 1 {
		t.Fatal("SubSeed(1, 0) should not echo its base")
	}
}

func TestSubSeed2DistinctAndStable(t *testing.T) {
	seen := map[int64]bool{}
	for _, base := range []int64{0, 7, -13} {
		for i := 0; i < 40; i++ {
			for j := 0; j < 40; j++ {
				s := SubSeed2(base, i, j)
				if seen[s] {
					t.Fatalf("collision at base=%d i=%d j=%d (seed %d)", base, i, j, s)
				}
				seen[s] = true
				if s != SubSeed2(base, i, j) {
					t.Fatalf("SubSeed2 not deterministic at base=%d i=%d j=%d", base, i, j)
				}
			}
		}
	}
	// The grid must not collapse onto the 1-D stream: (i,j) and the
	// flattened index must generally disagree.
	if SubSeed2(1, 0, 3) == SubSeed(1, 3) {
		t.Fatal("SubSeed2(1,0,j) must not alias SubSeed(1,j)")
	}
}
