package rlcc

import (
	"math/rand"
	"time"

	"libra/internal/netem"
	"libra/internal/rl"
	"libra/internal/telemetry"
	"libra/internal/trace"
)

// EnvRange describes the randomised training environment of Sec. 5
// ("Implementation"): link capacity 10-200 Mbps, min RTT 10-200 ms,
// buffer 10 KB - 5 MB, stochastic loss 0-10%. Each episode draws one
// network uniformly from these ranges.
type EnvRange struct {
	CapacityMbps [2]float64
	RTT          [2]time.Duration
	BufferBytes  [2]int
	LossRate     [2]float64
	// CellularFraction is the fraction of episodes run over a synthetic
	// LTE trace instead of a constant link.
	CellularFraction float64
}

// PaperEnvRange returns the paper's training ranges.
func PaperEnvRange() EnvRange {
	return EnvRange{
		CapacityMbps:     [2]float64{10, 200},
		RTT:              [2]time.Duration{10 * time.Millisecond, 200 * time.Millisecond},
		BufferBytes:      [2]int{10_000, 5_000_000},
		LossRate:         [2]float64{0, 0.1},
		CellularFraction: 0.25,
	}
}

// LaptopEnvRange returns a narrower, faster-converging range for
// laptop-scale training runs (documented substitution: same code path,
// smaller sweep).
func LaptopEnvRange() EnvRange {
	return EnvRange{
		CapacityMbps: [2]float64{10, 100},
		RTT:          [2]time.Duration{20 * time.Millisecond, 120 * time.Millisecond},
		BufferBytes:  [2]int{30_000, 1_000_000},
		// The full 0-10%% stochastic-loss range (as the paper trains)
		// matters: policies that never saw heavy random loss learn
		// "loss means back off", which is exactly the wrong response
		// to channel loss (Remark 3).
		LossRate:         [2]float64{0, 0.08},
		CellularFraction: 0.25,
	}
}

// TrainConfig drives Train.
type TrainConfig struct {
	// Episodes to run (default 100).
	Episodes int
	// EpisodeLen is the simulated duration per episode (default 15 s).
	EpisodeLen time.Duration
	// Env is the environment distribution (default LaptopEnvRange).
	Env *EnvRange
	// Ctrl is the controller formulation to train (Train is forced on).
	Ctrl Config
	// Seed drives environment sampling and agent init.
	Seed int64
	// OnEpisode, when non-nil, is invoked after each episode with its
	// index and total reward.
	OnEpisode func(i int, reward float64)
	// Tracer, when non-nil, taps every episode's event stream (link and
	// controller events). Each episode's clock restarts at zero, so
	// consumers see one run boundary per episode — the flight recorder
	// rides here during libra-train -flight-out.
	Tracer telemetry.Tracer
	// Health, when non-nil, tracks each episode's engine progress for
	// the runtime health sampler.
	Health *telemetry.Health
}

// TrainResult reports the learning curve.
type TrainResult struct {
	// Rewards holds one total episode reward per episode — the series
	// plotted in Fig. 5 / Fig. 6.
	Rewards []float64
	// Agent is the trained PPO agent.
	Agent *rl.PPO
	// Norm is the observation normaliser the agent was trained with;
	// deploy the agent together with it.
	Norm *rl.RunningNorm
}

// Train runs the PPO training loop: one flow per episode on a freshly
// sampled network, with a policy update after every episode.
func Train(cfg TrainConfig) TrainResult {
	if cfg.Episodes == 0 {
		cfg.Episodes = 100
	}
	if cfg.EpisodeLen == 0 {
		cfg.EpisodeLen = 15 * time.Second
	}
	env := cfg.Env
	if env == nil {
		e := LaptopEnvRange()
		env = &e
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	ctrlCfg := cfg.Ctrl.WithDefaults()
	ctrlCfg.Train = true
	agent := ctrlCfg.Agent
	if agent == nil {
		agent = rl.NewPPO(cfg.Seed, ctrlCfg.ObsDim(), 1, ctrlCfg.PPO)
		ctrlCfg.Agent = agent
	}
	if ctrlCfg.Norm == nil {
		ctrlCfg.Norm = rl.NewRunningNorm(StateWidth(ctrlCfg.Features))
	}

	res := TrainResult{Agent: agent, Norm: ctrlCfg.Norm}
	for ep := 0; ep < cfg.Episodes; ep++ {
		capMbps := env.CapacityMbps[0] + rng.Float64()*(env.CapacityMbps[1]-env.CapacityMbps[0])
		rtt := env.RTT[0] + time.Duration(rng.Int63n(int64(env.RTT[1]-env.RTT[0]+1)))
		buf := env.BufferBytes[0] + rng.Intn(env.BufferBytes[1]-env.BufferBytes[0]+1)
		loss := env.LossRate[0] + rng.Float64()*(env.LossRate[1]-env.LossRate[0])

		var capTrace trace.Trace = trace.Constant(trace.Mbps(capMbps))
		if rng.Float64() < env.CellularFraction {
			sc := trace.LTEScenario(rng.Intn(3))
			capTrace = trace.NewLTE(sc, cfg.EpisodeLen, rng.Int63())
		}

		n := netem.New(netem.Config{
			Capacity:    capTrace,
			MinRTT:      rtt,
			BufferBytes: buf,
			LossRate:    loss,
			Seed:        rng.Int63(),
			Tracer:      cfg.Tracer,
			Health:      cfg.Health,
		})
		epCfg := ctrlCfg
		epCfg.CC.Seed = rng.Int63()
		// Randomise the starting rate across the capacity range so the
		// policy visits under- and over-utilised states every episode;
		// the MIMD action space alone cannot traverse two decades of
		// rate within one episode (Aurora's gym does the same).
		mean := trace.MeanRate(capTrace, cfg.EpisodeLen, 100*time.Millisecond)
		epCfg.CC.InitialRate = (0.05 + 1.3*rng.Float64()) * mean
		ctrl := New("rl-train", epCfg)
		if cfg.Tracer != nil {
			ctrl.SetTracer(cfg.Tracer, 0)
		}
		n.AddFlow(ctrl, 0, 0)
		n.Run(cfg.EpisodeLen)

		agent.Update(0)
		res.Rewards = append(res.Rewards, ctrl.EpisodeRawReward())
		if cfg.OnEpisode != nil {
			cfg.OnEpisode(ep, ctrl.EpisodeRawReward())
		}
	}
	return res
}
