package rlcc

import (
	"math"
	"time"

	"libra/internal/cc"
	"libra/internal/rl"
	"libra/internal/telemetry"
)

// ActionMode selects how the agent's scalar action maps to a rate
// change (Sec. 4.2, "Action space").
type ActionMode int

// Action modes evaluated in Fig. 6.
const (
	// AIAD: x_{t+1} = x_t + a_t (a in Mbps).
	AIAD ActionMode = iota
	// MIMDAurora: x*(1+delta*a) for a>=0, x/(1-delta*a) otherwise.
	MIMDAurora
	// MIMDOrca: x * 2^a.
	MIMDOrca
)

// auroraDelta is the Aurora scaling factor the paper sets to 0.025.
const auroraDelta = 0.025

// Config parameterises the RL-based CCA.
type Config struct {
	CC cc.Config
	// Features is the state space; defaults to LibraStateSpace().
	Features []Feature
	// History is h, the number of stacked feature vectors (default 5).
	History int
	// Action selects the rate-update rule (default MIMDAurora).
	Action ActionMode
	// Scale bounds the raw action to [-Scale, Scale] (default 5; Orca
	// mode conventionally uses 2).
	Scale float64
	// Reward weights (defaults w1=1, w2=0.5, w3=10 as in Sec. 5).
	W1, W2, W3 float64
	// RewardXMax fixes the throughput normaliser x_max (bytes/sec) to a
	// known reference — the top of the training environment's capacity
	// range, as Orca normalises by the environment's max bandwidth.
	// Left at zero, x_max is the flow's own observed maximum, which is
	// degenerate: any stable rate then scores w1 exactly, removing the
	// incentive to grow. Default: 200 Mbps (the paper's training
	// ceiling).
	RewardXMax float64
	// UseDelta selects the delta-r reward (default true for Libra).
	UseDelta bool
	// DisableLossTerm drops the loss component (Tab. 3 ablation).
	DisableLossTerm bool
	// RewardFunc, when non-nil, replaces the Alg. 2 reward entirely —
	// the Modified-RL baseline plugs the Eq. 1 utility in here.
	RewardFunc func(throughputMbps, rttGradient, lossRate float64) float64
	// Agent is the shared PPO agent; one is created when nil.
	Agent *rl.PPO
	// Norm is the shared observation normaliser. The policy's inputs
	// are only meaningful under the statistics it was trained with, so
	// the normaliser must travel with the agent; one is created when
	// nil (fresh-training case).
	Norm *rl.RunningNorm
	// PPO configures the agent when it is created here.
	PPO rl.Config
	// Train enables transition recording into the agent's buffer.
	Train bool
	// Deterministic uses the policy mean instead of sampling (inference
	// without exploration noise).
	Deterministic bool
	// Seed drives agent construction when Agent is nil.
	Seed int64
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	c.CC = c.CC.WithDefaults()
	if c.Features == nil {
		c.Features = LibraStateSpace()
	}
	if c.History == 0 {
		c.History = 5
	}
	if c.Scale == 0 {
		if c.Action == MIMDOrca {
			c.Scale = 2
		} else {
			c.Scale = 5
		}
	}
	if c.W1 == 0 {
		c.W1 = 1
	}
	if c.W2 == 0 {
		c.W2 = 0.5
	}
	if c.W3 == 0 {
		c.W3 = 10
	}
	if c.RewardXMax == 0 {
		c.RewardXMax = 200e6 / 8
	}
	return c
}

// ObsDim returns the observation dimension for the config.
func (c Config) ObsDim() int {
	cc := c.WithDefaults()
	return StateWidth(cc.Features) * cc.History
}

// Controller is the RL-based CCA (Alg. 2). It implements cc.Controller
// and cc.Ticker; one decision is made per monitor interval.
type Controller struct {
	cfg   Config
	name  string
	agent *rl.PPO
	ext   *Extractor
	norm  *rl.RunningNorm
	mon   cc.Monitor

	srtt    time.Duration
	rate    float64
	started bool

	stateBuf []float64 // h stacked normalised feature vectors
	featBuf  []float64
	actBuf   []float64 // reused inference action buffer
	width    int

	// Solo-inference results staged between infer and finishTick
	// (training path only; eval writes actBuf directly).
	inferLogp float64
	inferVal  float64

	// Batched-inference plumbing (see batcher.go). noiseBase seeds the
	// per-decision exploration noise; flowID is the deterministic batch
	// ordering key; nextDue is the predicted next OnTick instant the
	// batcher gathers on (-1 until the first tick returns).
	flowID    int
	batcher   *Batcher
	noiseBase uint64
	nextDue   time.Duration

	// One prepped-but-unconsumed tick: the batcher closes the MI and
	// computes the action when the first co-instant flow ticks; this
	// controller's own OnTick then consumes it, so every side effect
	// (rate change, telemetry, pacing) still happens in the flow's own
	// engine callback and event order matches the unbatched run.
	pendingOK      bool
	pendingAt      time.Duration
	pendingNeedAct bool
	pendingRew     float64

	// Pending transition (action taken, awaiting reward).
	haveAction bool
	prevObs    []float64
	prevAct    []float64
	prevLogp   float64
	prevVal    float64

	// Reward normalisation trackers (Alg. 2 line 6).
	xMax float64 // max throughput seen, bytes/sec
	dMin float64 // min delay seen, seconds

	sanitized int64 // non-finite features/actions replaced (see Sanitized)

	prevReward    float64
	haveReward    bool
	lastReward    float64 // exported for telemetry
	episodeReward float64
	episodeRaw    float64 // sum of unshaped per-MI rewards
	decisions     int

	tracer  telemetry.Tracer
	traceID int
	traceOn bool            // cached Enabled(); keeps the hot path branch-cheap
	evBuf   telemetry.Event // reused so enabled-path emits stay alloc-free
}

// New constructs the controller.
func New(name string, cfg Config) *Controller {
	cfg = cfg.WithDefaults()
	width := StateWidth(cfg.Features)
	agent := cfg.Agent
	if agent == nil {
		agent = rl.NewPPO(cfg.Seed, width*cfg.History, 1, cfg.PPO)
	}
	norm := cfg.Norm
	if norm == nil {
		norm = rl.NewRunningNorm(width)
	} else if !cfg.Train {
		// Evaluation flows observe into the normaliser but must not
		// leak those updates to other flows sharing the trained
		// statistics: with a shared mutating normaliser, a flow's
		// inputs would depend on which other flows happened to tick
		// first, making results order- and batch-composition-dependent.
		// Each eval controller works on a private copy; training keeps
		// the shared object because the trainer harvests it afterwards.
		norm = norm.Clone()
	}
	return &Controller{
		cfg:       cfg,
		name:      name,
		agent:     agent,
		ext:       NewExtractor(cfg.Features),
		norm:      norm,
		rate:      cfg.CC.InitialRate,
		stateBuf:  make([]float64, width*cfg.History),
		width:     width,
		noiseBase: rl.Mix(uint64(cfg.Seed)),
		nextDue:   -1,
	}
}

func init() {
	cc.Register("aurora", func(cfg cc.Config) cc.Controller {
		return New("aurora", AuroraConfig(cfg))
	})
	cc.Register("rl", func(cfg cc.Config) cc.Controller {
		return New("rl", Config{CC: cfg, Seed: cfg.Seed})
	})
}

// Name implements cc.Controller.
func (r *Controller) Name() string { return r.name }

// SetTracer wires the telemetry sink; id becomes the Flow field of
// emitted action events. Implements telemetry.Traceable.
func (r *Controller) SetTracer(t telemetry.Tracer, id int) {
	r.tracer = t
	r.traceID = id
	r.traceOn = telemetry.Enabled(t)
}

// Agent returns the underlying PPO agent (for training and persistence).
func (r *Controller) Agent() *rl.PPO { return r.agent }

// OnAck implements cc.Controller.
func (r *Controller) OnAck(a *cc.Ack) {
	r.srtt = a.SRTT
	r.ext.OnAck(a)
	r.mon.OnAck(a)
}

// OnLoss implements cc.Controller.
func (r *Controller) OnLoss(l *cc.Loss) { r.mon.OnLoss(l) }

// miLen returns the decision interval (one smoothed RTT, floored).
func (r *Controller) miLen() time.Duration {
	if r.srtt <= 0 {
		return 100 * time.Millisecond
	}
	mi := r.srtt
	if mi < 20*time.Millisecond {
		mi = 20 * time.Millisecond
	}
	if mi > 500*time.Millisecond {
		mi = 500 * time.Millisecond
	}
	return mi
}

// reward computes the Alg. 2 reward for a closed MI.
func (r *Controller) reward(iv *cc.IntervalStats) float64 {
	if r.cfg.RewardFunc != nil {
		return r.cfg.RewardFunc(iv.Throughput()*8/1e6, iv.RTTGradient(), iv.LossRate())
	}
	thr := iv.Throughput()
	delay := iv.AvgRTT().Seconds()
	loss := iv.LossRate()
	if thr > r.xMax {
		r.xMax = thr
	}
	if delay > 0 && (r.dMin == 0 || delay < r.dMin) {
		r.dMin = delay
	}
	xm := math.Max(r.xMax, 1)
	if r.cfg.RewardXMax > 0 {
		xm = r.cfg.RewardXMax
	}
	dm := math.Max(r.dMin, 1e-4)
	w3 := r.cfg.W3
	if r.cfg.DisableLossTerm {
		w3 = 0
	}
	return r.cfg.W1*thr/xm - r.cfg.W2*delay/dm - w3*loss
}

// OnTick implements cc.Ticker: close the MI, credit the previous action
// with its reward, and emit the next rate decision. With a batcher
// attached (evaluation only), the MI close and the inference may have
// been prepped by the batcher when the first co-instant flow ticked;
// this call then just consumes the staged decision.
func (r *Controller) OnTick(now time.Duration) time.Duration {
	if r.batcher == nil || r.cfg.Train {
		return r.soloTick(now)
	}
	d := r.batchedTick(now)
	r.nextDue = now + d
	return d
}

// soloTick is the sequential path: prep, infer, finish in one call.
func (r *Controller) soloTick(now time.Duration) time.Duration {
	if r.prepTick(now) {
		r.infer()
		r.finishTick(now)
	}
	return r.miLen()
}

// batchedTick consumes the decision the batcher staged for this
// instant, running the gather itself if this flow is the first of its
// cohort to tick. A tick at an instant the batcher did not predict
// (defensive; engine-driven ticks are exactly predictable) falls back
// to the sequential path, which is bit-identical.
func (r *Controller) batchedTick(now time.Duration) time.Duration {
	if !r.pendingOK && r.nextDue == now {
		r.batcher.runInstant(now)
	}
	if r.pendingOK && r.pendingAt == now {
		r.pendingOK = false
		if r.pendingNeedAct {
			r.finishTick(now)
		}
		return r.miLen()
	}
	r.pendingOK = false
	return r.soloTick(now)
}

// prepTick closes the MI at now: reward bookkeeping, crediting the
// previous transition, and building the next normalised state. It
// returns true when an inference (and then finishTick) must follow,
// false when the tick holds the current rate (first tick, or an MI
// without feedback). The shaped reward is staged in pendingRew for
// finishTick's telemetry.
func (r *Controller) prepTick(now time.Duration) bool {
	iv := r.mon.Roll(now)
	if !r.started {
		r.started = true
		return false
	}
	// Paper (Sec. 3): with no ACKs during the interval, keep the same
	// rate decision.
	if !iv.HasFeedback() {
		return false
	}

	raw := r.reward(iv)
	var rew float64
	if r.cfg.UseDelta {
		if r.haveReward {
			rew = raw - r.prevReward
		}
		r.prevReward = raw
		r.haveReward = true
	} else {
		rew = raw
	}
	r.lastReward = rew
	r.episodeReward += rew
	r.episodeRaw += raw
	r.pendingRew = rew

	// Credit the pending transition.
	if r.haveAction && r.cfg.Train {
		r.agent.Store(r.prevObs, r.prevAct, r.prevLogp, rew, r.prevVal, false)
	}

	// Build the next state: shift history, append normalised features.
	// Non-finite features are zeroed before they can poison the running
	// normaliser or the policy (degenerate intervals under injected
	// faults can produce them).
	r.featBuf = r.ext.Extract(iv, r.rate, r.cfg.CC.MSS, r.featBuf[:0])
	r.sanitized += int64(sanitize(r.featBuf))
	r.norm.Observe(r.featBuf)
	copy(r.stateBuf, r.stateBuf[r.width:])
	tail := r.stateBuf[len(r.stateBuf)-r.width:]
	r.norm.Normalize(r.featBuf, tail)
	r.sanitized += int64(sanitize(tail))
	return true
}

// infer runs the policy on the prepped state, leaving the action in
// actBuf (and logp/value staged for training). Training keeps the
// shared-RNG Act path the trainer's rollouts were built on; evaluation
// runs the actor only — the critic's value and the log-probability are
// consumed exclusively by Store, so skipping them is behaviour-neutral
// — with per-decision seeded noise via applyMean.
func (r *Controller) infer() {
	if r.cfg.Train {
		if r.cfg.Deterministic {
			r.actBuf = append(r.actBuf[:0], r.agent.Policy.Mean(r.stateBuf)...)
			r.inferLogp, r.inferVal = 0, 0
		} else {
			act, logp, val := r.agent.Act(r.stateBuf)
			r.actBuf = append(r.actBuf[:0], act...)
			r.inferLogp, r.inferVal = logp, val
		}
		return
	}
	r.applyMean(r.agent.Policy.Mean(r.stateBuf))
}

// applyMean turns a policy mean into this controller's action:
// verbatim when deterministic, otherwise perturbed with exploration
// noise that is a pure function of (flow seed, decision index) — so
// the same decision gets the same noise whether it was evaluated solo
// or in any batch. The batcher scatters batched GEMM rows back
// through this.
func (r *Controller) applyMean(mean []float64) {
	if r.cfg.Deterministic {
		r.actBuf = append(r.actBuf[:0], mean...)
		return
	}
	seed := rl.Mix(r.noiseBase + uint64(r.decisions))
	r.actBuf = r.agent.Policy.SampleFrom(mean, seed, r.actBuf)
}

// finishTick applies the inferred action (actBuf) at now: rate update,
// decision accounting, telemetry, and the training snapshot. It runs
// in the flow's own engine callback even when the inference was
// batched, so event ordering is identical to the sequential path.
func (r *Controller) finishTick(now time.Duration) {
	// A non-finite action holds the current rate instead of corrupting
	// it through applyAction's multiplicative update.
	a := 0.0
	if len(r.actBuf) > 0 && !math.IsNaN(r.actBuf[0]) && !math.IsInf(r.actBuf[0], 0) {
		a = clamp(r.actBuf[0], -1, 1) * r.cfg.Scale
	} else {
		r.sanitized++
	}
	r.applyAction(a)
	r.decisions++
	if r.traceOn {
		r.emitAction(now, a, r.pendingRew)
	}

	if r.cfg.Train {
		r.prevObs = append(r.prevObs[:0], r.stateBuf...)
		r.prevAct = append(r.prevAct[:0], r.actBuf...)
		r.prevLogp = r.inferLogp
		r.prevVal = r.inferVal
		r.haveAction = true
	}
}

// emitAction records one MI decision: the bounded action, the applied
// rate, the shaped reward, and a min/mean/max summary of the raw
// feature vector driving the policy.
func (r *Controller) emitAction(now time.Duration, a, rew float64) {
	fmin, fmax, fsum := math.Inf(1), math.Inf(-1), 0.0
	for _, v := range r.featBuf {
		fmin = math.Min(fmin, v)
		fmax = math.Max(fmax, v)
		fsum += v
	}
	fmean := 0.0
	if len(r.featBuf) > 0 {
		fmean = fsum / float64(len(r.featBuf))
	} else {
		fmin, fmax = 0, 0
	}
	r.evBuf = telemetry.Event{T: int64(now), Type: telemetry.TypeAction, Flow: r.traceID,
		Action: a, Rate: r.rate, Reward: rew, FMin: fmin, FMean: fmean, FMax: fmax}
	r.tracer.Emit(&r.evBuf)
}

// sanitize zeroes non-finite entries in buf and returns how many were
// replaced.
func sanitize(buf []float64) int {
	n := 0
	for i, v := range buf {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			buf[i] = 0
			n++
		}
	}
	return n
}

// Sanitized returns how many non-finite features and actions the
// inference guards have replaced so far (0 in healthy operation).
func (r *Controller) Sanitized() int64 { return r.sanitized }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// applyAction maps the bounded action onto the new rate.
func (r *Controller) applyAction(a float64) {
	switch r.cfg.Action {
	case AIAD:
		r.rate += a * 1e6 / 8 // a is in Mbps
	case MIMDOrca:
		r.rate *= math.Pow(2, a)
	default: // MIMDAurora
		if a >= 0 {
			r.rate *= 1 + auroraDelta*a
		} else {
			r.rate /= 1 - auroraDelta*a
		}
	}
	r.rate = r.cfg.CC.ClampRate(r.rate)
}

// Rate implements cc.Controller.
func (r *Controller) Rate() float64 { return r.rate }

// SetRate overrides the operating rate (Libra seeds the RL component
// from the winning base rate each control cycle).
func (r *Controller) SetRate(rate float64) {
	r.rate = r.cfg.CC.ClampRate(rate)
}

// Window implements cc.Controller: rate-based.
func (r *Controller) Window() float64 { return math.Max(2*r.rate, 4*float64(r.cfg.CC.MSS)) }

// Stop implements cc.Stopper: finalize the last pending transition and
// leave the batcher's cohort.
func (r *Controller) Stop(now time.Duration) {
	if r.haveAction && r.cfg.Train {
		r.agent.Store(r.prevObs, r.prevAct, r.prevLogp, 0, r.prevVal, true)
		r.haveAction = false
	}
	if r.batcher != nil {
		r.batcher.remove(r)
		r.batcher = nil
	}
}

// EpisodeReward returns the accumulated (shaped) reward since
// construction.
func (r *Controller) EpisodeReward() float64 { return r.episodeReward }

// EpisodeRawReward returns the accumulated unshaped per-MI reward r_t.
// Learning curves plot this sum: in delta-r mode the shaped rewards
// telescope to ~0 per episode and carry no curve information.
func (r *Controller) EpisodeRawReward() float64 { return r.episodeRaw }

// LastReward returns the most recent per-MI reward.
func (r *Controller) LastReward() float64 { return r.lastReward }

// Decisions returns the number of rate decisions taken.
func (r *Controller) Decisions() int { return r.decisions }

// MemBytes estimates controller-resident memory assuming the
// controller owns its agent outright: the agent's models plus the
// per-flow buffers. When the agent is shared across flows this
// overstates the real footprint — summing MemBytes over N flows counts
// the shared weights N times. Shared deployments should account the
// agent once (exp.AgentSet.MemBytes) and add OwnMemBytes per flow.
func (r *Controller) MemBytes() int {
	return r.agent.MemBytes() + r.OwnMemBytes()
}

// OwnMemBytes estimates the memory this flow contributes beyond the
// (possibly shared) agent: state history, feature scratch, and its
// private normaliser statistics.
func (r *Controller) OwnMemBytes() int {
	return 8 * (len(r.stateBuf) + len(r.featBuf) + 4*r.width)
}

// SharesAgent reports whether the controller runs on an agent supplied
// from outside (and therefore possibly shared with other flows).
func (r *Controller) SharesAgent() bool { return r.cfg.Agent != nil }
