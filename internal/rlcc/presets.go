package rlcc

import "libra/internal/cc"

// State-space presets compared in Fig. 5. Each returns the feature set a
// published learning-based CCA observes (Tab. 1 mapping).

// LibraStateSpace is the paper's optimised combination: (iv), (vii),
// (viii), (ix) — the Tab. 2 winner (baseline minus (vi)).
func LibraStateSpace() []Feature {
	return []Feature{FeatSendRate, FeatLossRate, FeatRTTGradient, FeatDeliveryRate}
}

// BaselineStateSpace is the Tab. 2 baseline: the union of the PCC and
// DRL-CC state spaces — (iv), (vi), (vii), (viii), (ix).
func BaselineStateSpace() []Feature {
	return []Feature{FeatSendRate, FeatRTTAndMin, FeatLossRate, FeatRTTGradient, FeatDeliveryRate}
}

// AuroraStateSpace: Aurora observes latency gradient, latency ratio and
// send ratio — (iii), (v), (viii).
func AuroraStateSpace() []Feature {
	return []Feature{FeatRTTRatio, FeatSentAckedRatio, FeatRTTGradient}
}

// RLTCPStateSpace: RL-TCP observes the EWMA inter-ACK/inter-send gaps
// and the RTT ratio — (i), (ii), (iii).
func RLTCPStateSpace() []Feature {
	return []Feature{FeatAckGapEWMA, FeatSendGapEWMA, FeatRTTRatio}
}

// PCCStateSpace: the PCC(-RL) formulation — (iv), (vii), (viii).
func PCCStateSpace() []Feature {
	return []Feature{FeatSendRate, FeatLossRate, FeatRTTGradient}
}

// RemyStateSpace: Remy's rule-table inputs — (i), (ii), (iii).
func RemyStateSpace() []Feature {
	return []Feature{FeatAckGapEWMA, FeatSendGapEWMA, FeatRTTRatio}
}

// DRLCCStateSpace: DRL-CC observes sending rate, RTT/min, delivery —
// (ii), (iv), (vi), (ix).
func DRLCCStateSpace() []Feature {
	return []Feature{FeatSendGapEWMA, FeatSendRate, FeatRTTAndMin, FeatDeliveryRate}
}

// OrcaStateSpace: Orca's agent observes (ii), (iv), (vi), (vii), (ix).
func OrcaStateSpace() []Feature {
	return []Feature{FeatSendGapEWMA, FeatSendRate, FeatRTTAndMin, FeatLossRate, FeatDeliveryRate}
}

// NamedStateSpaces returns the Fig. 5 comparison set keyed by CCA name.
func NamedStateSpaces() map[string][]Feature {
	return map[string][]Feature{
		"aurora": AuroraStateSpace(),
		"rl-tcp": RLTCPStateSpace(),
		"pcc":    PCCStateSpace(),
		"remy":   RemyStateSpace(),
		"drl-cc": DRLCCStateSpace(),
		"libra":  LibraStateSpace(),
		"orca":   OrcaStateSpace(),
	}
}

// AuroraConfig returns the configuration reproducing Aurora: its state
// space, MIMD action rule with the 0.025 scaling, absolute reward r
// (not delta), loss term included.
func AuroraConfig(base cc.Config) Config {
	return Config{
		CC:       base,
		Features: AuroraStateSpace(),
		History:  5,
		Action:   MIMDAurora,
		Scale:    5,
		UseDelta: false,
		Seed:     base.Seed,
	}
}

// LibraRLConfig returns the configuration of Libra's optimised RL
// component: Libra state space, MIMD action mode, delta-r reward.
func LibraRLConfig(base cc.Config) Config {
	return Config{
		CC:       base,
		Features: LibraStateSpace(),
		History:  5,
		Action:   MIMDAurora,
		Scale:    5,
		UseDelta: true,
		Seed:     base.Seed,
	}
}

// OrcaRLConfig returns the configuration of Orca's DRL agent: Orca
// state space, the 2^a MIMD rule with a in [-2, 2], absolute reward.
func OrcaRLConfig(base cc.Config) Config {
	return Config{
		CC:       base,
		Features: OrcaStateSpace(),
		History:  5,
		Action:   MIMDOrca,
		Scale:    2,
		UseDelta: false,
		Seed:     base.Seed,
	}
}
