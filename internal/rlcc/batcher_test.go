package rlcc

import (
	"reflect"
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/rl"
)

// driveCohort runs three evaluation controllers sharing one agent over
// lockstep 100 ms MIs (identical SRTT keeps every flow's decision
// instants aligned, so cohorts of 3 form), with or without a batcher,
// and returns each flow's rate-decision sequence.
func driveCohort(attach bool) ([][]float64, BatchStats) {
	base := AuroraConfig(cc.Config{}).WithDefaults()
	shared := rl.NewPPO(9, base.ObsDim(), 1, base.PPO)
	norm := rl.NewRunningNorm(StateWidth(base.Features))
	var b *Batcher
	if attach {
		b = NewBatcher()
	}
	ctrls := make([]*Controller, 3)
	for i := range ctrls {
		cfg := base
		cfg.Seed = int64(i + 1)
		cfg.Agent = shared
		cfg.Norm = norm
		ctrls[i] = New("aurora", cfg)
		if attach {
			ctrls[i].AttachBatcher(b, i)
		}
	}
	now := time.Duration(0)
	for _, c := range ctrls {
		c.OnTick(now) // start tick: opens the first MI
	}
	rates := make([][]float64, len(ctrls))
	for step := 0; step < 6; step++ {
		now += 100 * time.Millisecond
		for i, c := range ctrls {
			// Distinct throughput per flow keeps the observation rows
			// different, so the batch is not degenerate.
			c.OnAck(&cc.Ack{Now: now, RTT: 100 * time.Millisecond,
				SRTT: 100 * time.Millisecond, MinRTT: 100 * time.Millisecond,
				Acked: 20000 * (i + 1)})
		}
		for i, c := range ctrls {
			c.OnTick(now)
			rates[i] = append(rates[i], c.Rate())
		}
	}
	var st BatchStats
	if attach {
		st = b.Stats()
	}
	return rates, st
}

// The batched path must reproduce the sequential path bit for bit, and
// it must actually batch: every decision instant serves the full
// 3-flow cohort with one GEMM.
func TestBatcherMatchesSolo(t *testing.T) {
	solo, _ := driveCohort(false)
	batched, st := driveCohort(true)
	if !reflect.DeepEqual(solo, batched) {
		t.Fatalf("batched decisions diverge from solo:\nsolo    %v\nbatched %v", solo, batched)
	}
	if st.Batches == 0 || st.MaxBatch != 3 {
		t.Fatalf("batcher did no multi-row work: %+v", st)
	}
	if st.Rows != st.Batches*3 {
		t.Fatalf("rows %d for %d full-cohort batches", st.Rows, st.Batches)
	}
}

// Stop must unregister from the cohort, and training controllers (and
// nil batchers) must never register.
func TestBatcherMembership(t *testing.T) {
	b := NewBatcher()
	base := AuroraConfig(cc.Config{Seed: 1}).WithDefaults()
	c := New("aurora", base)
	c.AttachBatcher(b, 0)
	if len(b.ctrls) != 1 {
		t.Fatalf("cohort size %d after attach", len(b.ctrls))
	}
	c.Stop(0)
	if len(b.ctrls) != 0 || c.batcher != nil {
		t.Fatal("Stop must leave the cohort")
	}

	tcfg := base
	tcfg.Train = true
	tc := New("aurora", tcfg)
	tc.AttachBatcher(b, 1)
	if len(b.ctrls) != 0 {
		t.Fatal("training controllers must not register")
	}
	c2 := New("aurora", base)
	c2.AttachBatcher(nil, 2)
	if c2.batcher != nil {
		t.Fatal("nil batcher must be ignored")
	}

	// Insertion keeps the cohort sorted by flow ID regardless of attach
	// order, so per-instant due lists are deterministic.
	var ids []int
	for _, id := range []int{5, 1, 3} {
		cc := New("aurora", base)
		cc.AttachBatcher(b, id)
		_ = cc
	}
	for _, cc := range b.ctrls {
		ids = append(ids, cc.flowID)
	}
	if !reflect.DeepEqual(ids, []int{1, 3, 5}) {
		t.Fatalf("cohort order %v, want sorted by flow ID", ids)
	}
}
