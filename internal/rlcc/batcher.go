package rlcc

import (
	"sort"
	"time"

	"libra/internal/nn"
	"libra/internal/rl"
)

// Batcher is the inference batching engine: it coalesces the MI-tick
// inferences of evaluation-mode controllers that share a PPO agent
// into one batched forward pass (a GEMM) per agent per simulated
// instant, instead of one vector forward pass per flow.
//
// It is a lazy gatherer, not a scheduler. Controllers report the
// instant of their next tick (Controller.nextDue); when the first
// controller due at instant T actually ticks, the batcher preps EVERY
// registered controller due at T — closing their MIs in flow-ID order,
// packing their state vectors per shared agent, dispatching one
// MeanBatch per agent, and scattering actions back into each
// controller's staged decision. Each remaining controller's own engine
// callback then merely consumes its staged action, so every externally
// visible side effect (rate change, telemetry event, packet pacing)
// still happens in that flow's own callback: the engine's event order,
// the trace stream, and all reports are byte-identical to the
// unbatched run. Determinism does not depend on arrival order — the
// cohort is sorted by flow ID, and exploration noise is a pure
// function of (flow seed, decision index), never of batch composition.
//
// Only evaluation controllers whose ticks are driven directly by the
// engine may register: their next tick instant is exactly the duration
// OnTick returns. Controllers ticked at a parent's discretion (the RL
// component inside core.Libra) must stay on the sequential path, which
// is bit-identical anyway.
//
// A Batcher belongs to one engine run and is not goroutine-safe;
// parallel sweep jobs each own a private one.
type Batcher struct {
	ctrls   []*Controller // registered cohort, sorted by flowID
	scratch []*Controller // per-instant due list, reused
	groups  map[*rl.PPO]*batchGroup

	stats BatchStats
}

// BatchStats counts the batcher's work for benchmarks and tests.
type BatchStats struct {
	// Instants is the number of simulated instants the batcher gathered.
	Instants int64
	// Batches counts multi-row GEMM dispatches (cohorts of >= 2 flows
	// sharing one agent at one instant).
	Batches int64
	// Rows is the total number of flow-decisions served by those
	// batched dispatches.
	Rows int64
	// MaxBatch is the largest batch dispatched.
	MaxBatch int64
}

// batchGroup accumulates the co-instant controllers of one shared
// agent and owns the reused observation matrix packed for its GEMM.
type batchGroup struct {
	ctrls []*Controller
	x     nn.Matrix
}

func (g *batchGroup) ensure(rows, cols int) *nn.Matrix {
	if cap(g.x.Data) < rows*cols {
		g.x.Data = make([]float64, rows*cols)
	}
	g.x.Rows, g.x.Cols, g.x.Data = rows, cols, g.x.Data[:rows*cols]
	return &g.x
}

// NewBatcher returns an empty batcher for one engine run.
func NewBatcher() *Batcher {
	return &Batcher{groups: make(map[*rl.PPO]*batchGroup)}
}

// Stats returns the work counters so far.
func (b *Batcher) Stats() BatchStats { return b.stats }

// add inserts c keeping the cohort sorted by flow ID, so per-instant
// due lists come out in deterministic order with no per-tick sort.
func (b *Batcher) add(c *Controller) {
	i := sort.Search(len(b.ctrls), func(i int) bool { return b.ctrls[i].flowID >= c.flowID })
	b.ctrls = append(b.ctrls, nil)
	copy(b.ctrls[i+1:], b.ctrls[i:])
	b.ctrls[i] = c
}

// remove drops c from the cohort (flow stop).
func (b *Batcher) remove(c *Controller) {
	for i, v := range b.ctrls {
		if v == c {
			b.ctrls = append(b.ctrls[:i], b.ctrls[i+1:]...)
			return
		}
	}
}

// runInstant preps every registered controller due at now: MI close in
// flow-ID order, then one batched inference per shared agent. Staged
// decisions are consumed by each controller's own OnTick. Idempotent
// within an instant: prepped controllers carry pendingOK and are
// skipped, and consuming moves nextDue past now.
func (b *Batcher) runInstant(now time.Duration) {
	due := b.scratch[:0]
	for _, c := range b.ctrls {
		if c.nextDue == now && !c.pendingOK {
			due = append(due, c)
		}
	}
	b.scratch = due
	if len(due) == 0 {
		return
	}
	b.stats.Instants++

	// Stage 1: close MIs in flow-ID order. All mutated state is private
	// to each controller (monitor, extractor, cloned normaliser), so
	// hoisting this ahead of the flows' own callbacks cannot change any
	// other flow's observations.
	for _, c := range due {
		c.pendingNeedAct = c.prepTick(now)
		c.pendingOK = true
		c.pendingAt = now
	}

	// Stage 2: group the act-needing controllers by shared agent.
	for _, c := range due {
		if !c.pendingNeedAct {
			continue
		}
		g := b.groups[c.agent]
		if g == nil {
			g = &batchGroup{}
			b.groups[c.agent] = g
		}
		g.ctrls = append(g.ctrls, c)
	}

	// Stage 3: one inference per agent. Group iteration order is
	// irrelevant: groups touch disjoint controllers and read frozen
	// weights. Rows within a group follow the flow-ID order stage 1
	// established.
	for _, g := range b.groups {
		n := len(g.ctrls)
		if n == 0 {
			continue
		}
		if n == 1 {
			c := g.ctrls[0]
			c.applyMean(c.agent.Policy.Mean(c.stateBuf))
		} else {
			obsDim := len(g.ctrls[0].stateBuf)
			x := g.ensure(n, obsDim)
			for i, c := range g.ctrls {
				copy(x.Data[i*obsDim:(i+1)*obsDim], c.stateBuf)
			}
			means := g.ctrls[0].agent.MeanBatch(x)
			ad := means.Cols
			for i, c := range g.ctrls {
				c.applyMean(means.Data[i*ad : (i+1)*ad])
			}
			b.stats.Batches++
			b.stats.Rows += int64(n)
			if int64(n) > b.stats.MaxBatch {
				b.stats.MaxBatch = int64(n)
			}
		}
		g.ctrls = g.ctrls[:0]
	}
}

// AttachBatcher registers the controller with a batcher under the
// given flow ID. Training controllers and nil batchers are ignored:
// batching is an evaluation-only optimisation. Must be called before
// the flow starts.
func (r *Controller) AttachBatcher(b *Batcher, flowID int) {
	if b == nil || r.cfg.Train {
		return
	}
	r.flowID = flowID
	r.batcher = b
	r.nextDue = -1
	b.add(r)
}
