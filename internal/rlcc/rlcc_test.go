package rlcc

import (
	"math"
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cctest"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	for _, n := range []string{"aurora", "rl"} {
		if _, err := cc.New(n, cc.Config{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFeatureWidths(t *testing.T) {
	if FeatRTTAndMin.Width() != 2 || FeatSendRate.Width() != 1 {
		t.Fatal("feature widths wrong")
	}
	if StateWidth(BaselineStateSpace()) != 6 {
		t.Fatalf("baseline width %d, want 6", StateWidth(BaselineStateSpace()))
	}
	if StateWidth(LibraStateSpace()) != 4 {
		t.Fatalf("libra width %d, want 4", StateWidth(LibraStateSpace()))
	}
	for f := FeatAckGapEWMA; f <= FeatDeliveryRate; f++ {
		if f.String() == "unknown" {
			t.Fatalf("feature %d unnamed", f)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.History != 5 || c.Scale != 5 || c.W1 != 1 || c.W2 != 0.5 || c.W3 != 10 {
		t.Fatalf("defaults %+v", c)
	}
	if (Config{Action: MIMDOrca}).WithDefaults().Scale != 2 {
		t.Fatal("Orca mode should default to scale 2")
	}
	if c.ObsDim() != 4*5 {
		t.Fatalf("obs dim %d", c.ObsDim())
	}
}

func TestActionModes(t *testing.T) {
	mk := func(mode ActionMode, scale float64) *Controller {
		return New("t", Config{Action: mode, Scale: scale, Seed: 1}.WithDefaults())
	}
	// AIAD: +a Mbps.
	r := mk(AIAD, 5)
	r.rate = 1e6
	r.applyAction(2)
	if math.Abs(r.rate-(1e6+2e6/8)) > 1 {
		t.Fatalf("AIAD rate %v", r.rate)
	}
	// MIMD Aurora.
	r = mk(MIMDAurora, 5)
	r.rate = 1e6
	r.applyAction(4)
	if math.Abs(r.rate-1e6*1.1) > 1 {
		t.Fatalf("Aurora up rate %v", r.rate)
	}
	r.rate = 1e6
	r.applyAction(-4)
	if math.Abs(r.rate-1e6/1.1) > 1 {
		t.Fatalf("Aurora down rate %v", r.rate)
	}
	// MIMD Orca: 2^a.
	r = mk(MIMDOrca, 2)
	r.rate = 1e6
	r.applyAction(2)
	if math.Abs(r.rate-4e6) > 1 {
		t.Fatalf("Orca rate %v", r.rate)
	}
}

func TestRewardComponents(t *testing.T) {
	r := New("t", Config{Seed: 1})
	var iv cc.IntervalStats
	iv.Reset(0)
	iv.AddAck(&cc.Ack{Now: 50 * time.Millisecond, RTT: 50 * time.Millisecond, Acked: 125000})
	iv.Close(time.Second) // 125kB/s throughput
	base := r.reward(&iv)
	// First interval: thr normalised by the fixed RewardXMax reference
	// (25 MB/s), dMin = delay so the w2 term is 0.5, no loss.
	want := 125000.0/25e6 - 0.5
	if math.Abs(base-want) > 1e-9 {
		t.Fatalf("reward %v, want %v", base, want)
	}
	// Loss reduces reward by w3 * lossRate.
	var iv2 cc.IntervalStats
	iv2.Reset(0)
	iv2.AddAck(&cc.Ack{Now: 50 * time.Millisecond, RTT: 50 * time.Millisecond, Acked: 75000})
	iv2.AddLoss(&cc.Loss{Lost: 25000})
	iv2.Close(time.Second)
	withLoss := r.reward(&iv2)
	if withLoss >= base {
		t.Fatal("lossy interval should score lower")
	}
	// Ablation: disabling the loss term removes the penalty.
	r2 := New("t", Config{Seed: 1, DisableLossTerm: true})
	r2.xMax, r2.dMin = r.xMax, r.dMin
	if r2.reward(&iv2) <= withLoss {
		t.Fatal("DisableLossTerm should raise the lossy reward")
	}
}

func TestDeltaRewardShaping(t *testing.T) {
	mk := func(useDelta bool) *Controller {
		return New("t", Config{Seed: 3, UseDelta: useDelta}.WithDefaults())
	}
	feed := func(r *Controller, thrBytes int) float64 {
		now := time.Duration(r.decisions+1) * 100 * time.Millisecond
		r.OnAck(&cc.Ack{Now: now, RTT: 50 * time.Millisecond, SRTT: 50 * time.Millisecond,
			MinRTT: 50 * time.Millisecond, Acked: thrBytes})
		r.OnTick(now + 50*time.Millisecond)
		return r.LastReward()
	}
	d := mk(true)
	d.OnTick(0)
	feed(d, 10000)
	r2 := feed(d, 10000)
	// Identical consecutive MIs: delta reward ~ 0.
	if math.Abs(r2) > 0.2 {
		t.Fatalf("delta reward for unchanged behaviour %v, want ~0", r2)
	}
	a := mk(false)
	a.OnTick(0)
	feed(a, 10000)
	ra := feed(a, 10000)
	if ra == 0 {
		t.Fatal("absolute reward should be non-zero for steady throughput")
	}
}

func TestNoFeedbackKeepsRate(t *testing.T) {
	r := New("t", Config{Seed: 4}.WithDefaults())
	r.OnTick(0)
	rate0 := r.Rate()
	r.OnTick(100 * time.Millisecond) // no acks arrived
	if r.Rate() != rate0 {
		t.Fatal("empty MI must keep the previous rate decision")
	}
	if r.Decisions() != 0 {
		t.Fatal("empty MI should not count as a decision")
	}
}

func TestSetRateClamps(t *testing.T) {
	r := New("t", Config{Seed: 5}.WithDefaults())
	r.SetRate(1e18)
	if r.Rate() > r.cfg.CC.MaxRate {
		t.Fatal("SetRate must clamp")
	}
}

func TestHistoryStacking(t *testing.T) {
	r := New("t", Config{Seed: 6, History: 3}.WithDefaults())
	r.OnTick(0)
	now := time.Duration(0)
	for i := 0; i < 5; i++ {
		now += 100 * time.Millisecond
		r.OnAck(&cc.Ack{Now: now, RTT: 50 * time.Millisecond, SRTT: 50 * time.Millisecond,
			MinRTT: 50 * time.Millisecond, Acked: 10000 * (i + 1)})
		r.OnTick(now)
	}
	if len(r.stateBuf) != 3*StateWidth(r.cfg.Features) {
		t.Fatalf("state length %d", len(r.stateBuf))
	}
	// Oldest slot should differ from newest (features changed).
	w := r.width
	same := true
	for i := 0; i < w; i++ {
		if r.stateBuf[i] != r.stateBuf[len(r.stateBuf)-w+i] {
			same = false
		}
	}
	if same {
		t.Fatal("history slots identical; shifting broken")
	}
}

func TestTrainingPopulatesBufferAndStopsClean(t *testing.T) {
	cfg := Config{Seed: 7, Train: true}.WithDefaults()
	r := New("t", cfg)
	r.OnTick(0)
	now := time.Duration(0)
	for i := 0; i < 10; i++ {
		now += 100 * time.Millisecond
		r.OnAck(&cc.Ack{Now: now, RTT: 50 * time.Millisecond, SRTT: 50 * time.Millisecond,
			MinRTT: 50 * time.Millisecond, Acked: 10000})
		r.OnTick(now)
	}
	r.Stop(now)
	if r.Agent().BufLen() < 5 {
		t.Fatalf("agent buffer %d transitions", r.Agent().BufLen())
	}
	st := r.Agent().Update(0)
	if st.Samples == 0 {
		t.Fatal("update consumed nothing")
	}
}

func TestTrainLoopRuns(t *testing.T) {
	env := LaptopEnvRange()
	env.CellularFraction = 0.5
	res := Train(TrainConfig{
		Episodes:   4,
		EpisodeLen: 3 * time.Second,
		Env:        &env,
		Ctrl:       LibraRLConfig(cc.Config{}),
		Seed:       11,
	})
	if len(res.Rewards) != 4 {
		t.Fatalf("reward series %d entries", len(res.Rewards))
	}
	for i, rw := range res.Rewards {
		if math.IsNaN(rw) || math.IsInf(rw, 0) {
			t.Fatalf("episode %d reward %v", i, rw)
		}
	}
	if res.Agent == nil {
		t.Fatal("no agent returned")
	}
}

func TestTrainDeterministicBySeed(t *testing.T) {
	run := func() []float64 {
		return Train(TrainConfig{
			Episodes:   3,
			EpisodeLen: 2 * time.Second,
			Ctrl:       LibraRLConfig(cc.Config{}),
			Seed:       13,
		}).Rewards
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("episode %d rewards differ: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestUntrainedAgentStillControlsSafely(t *testing.T) {
	// Even an untrained policy must keep the flow alive and bounded.
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   150000,
		Duration: 10 * time.Second,
	}, New("rl", Config{Seed: 17}.WithDefaults()))
	if res.Throughput <= 0 {
		t.Fatal("flow starved")
	}
	if res.Utilization > 1.05 {
		t.Fatal("impossible utilization")
	}
}

func TestPresetsDistinct(t *testing.T) {
	spaces := NamedStateSpaces()
	if len(spaces) != 7 {
		t.Fatalf("expected 7 named state spaces, got %d", len(spaces))
	}
	for name, fs := range spaces {
		if len(fs) == 0 {
			t.Fatalf("%s empty", name)
		}
	}
	if AuroraConfig(cc.Config{}).UseDelta {
		t.Fatal("Aurora uses absolute reward")
	}
	if !LibraRLConfig(cc.Config{}).UseDelta {
		t.Fatal("Libra RL uses delta reward")
	}
	if OrcaRLConfig(cc.Config{}).Action != MIMDOrca {
		t.Fatal("Orca RL action mode wrong")
	}
}
