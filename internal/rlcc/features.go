// Package rlcc implements the RL-based congestion controller of the
// paper's Alg. 2, with every formulation knob Sec. 4.2 studies:
// configurable state spaces (the Tab. 1 candidates (i)-(ix)), AIAD and
// MIMD action modes at different scales, reward with or without the
// loss term, and r vs delta-r reward shaping. The same machinery
// instantiates Aurora, the DRL part of Orca, and the RL component
// inside Libra.
package rlcc

import (
	"time"

	"libra/internal/cc"
)

// Feature identifies one state candidate from Tab. 1.
type Feature int

// Tab. 1 state candidates.
const (
	// FeatAckGapEWMA (i): EWMA of the time gap between sequential ACKs.
	FeatAckGapEWMA Feature = iota + 1
	// FeatSendGapEWMA (ii): EWMA of the timestamp difference between
	// sequential packets (derived from the pacing rate).
	FeatSendGapEWMA
	// FeatRTTRatio (iii): ratio between the most recent and minimum RTT.
	FeatRTTRatio
	// FeatSendRate (iv): current sending rate.
	FeatSendRate
	// FeatSentAckedRatio (v): ratio between packets sent and acknowledged.
	FeatSentAckedRatio
	// FeatRTTAndMin (vi): current RTT and the minimum RTT (two values).
	FeatRTTAndMin
	// FeatLossRate (vii): average loss rate of packets.
	FeatLossRate
	// FeatRTTGradient (viii): derivative of latency with respect to time.
	FeatRTTGradient
	// FeatDeliveryRate (ix): average delivery rate.
	FeatDeliveryRate
)

// Width returns how many scalars the feature contributes.
func (f Feature) Width() int {
	if f == FeatRTTAndMin {
		return 2
	}
	return 1
}

// String names the feature with its Tab. 1 index.
func (f Feature) String() string {
	switch f {
	case FeatAckGapEWMA:
		return "(i)ack-gap"
	case FeatSendGapEWMA:
		return "(ii)send-gap"
	case FeatRTTRatio:
		return "(iii)rtt-ratio"
	case FeatSendRate:
		return "(iv)send-rate"
	case FeatSentAckedRatio:
		return "(v)sent/acked"
	case FeatRTTAndMin:
		return "(vi)rtt+min"
	case FeatLossRate:
		return "(vii)loss"
	case FeatRTTGradient:
		return "(viii)rtt-grad"
	case FeatDeliveryRate:
		return "(ix)delivery"
	}
	return "unknown"
}

// StateWidth returns the per-MI feature width of a feature set.
func StateWidth(fs []Feature) int {
	w := 0
	for _, f := range fs {
		w += f.Width()
	}
	return w
}

// Extractor turns per-ACK feedback and MI statistics into a raw feature
// vector. It is exported so that Orca (internal/cc/orca) can reuse the
// same state construction as the in-package controller.
type Extractor struct {
	features []Feature

	ackGapEWMA  float64 // seconds
	lastAckAt   time.Duration
	lastRTT     time.Duration
	minRTT      time.Duration
	deliveryEst float64
}

// NewExtractor builds an extractor over the given feature set.
func NewExtractor(fs []Feature) *Extractor {
	return &Extractor{features: fs}
}

// OnAck updates the per-ACK running signals.
func (e *Extractor) OnAck(a *cc.Ack) {
	if e.lastAckAt > 0 {
		gap := (a.Now - e.lastAckAt).Seconds()
		const alpha = 0.1
		if e.ackGapEWMA == 0 {
			e.ackGapEWMA = gap
		} else {
			e.ackGapEWMA += alpha * (gap - e.ackGapEWMA)
		}
	}
	e.lastAckAt = a.Now
	e.lastRTT = a.RTT
	if e.minRTT == 0 || a.RTT < e.minRTT {
		e.minRTT = a.RTT
	}
	if a.DeliveryRate > 0 {
		const alpha = 0.2
		if e.deliveryEst == 0 {
			e.deliveryEst = a.DeliveryRate
		} else {
			e.deliveryEst += alpha * (a.DeliveryRate - e.deliveryEst)
		}
	}
}

// Extract appends the raw feature values for one closed MI to dst.
// rate is the pacing rate in force (bytes/sec); mss the segment size.
func (e *Extractor) Extract(iv *cc.IntervalStats, rate float64, mss int, dst []float64) []float64 {
	for _, f := range e.features {
		switch f {
		case FeatAckGapEWMA:
			dst = append(dst, e.ackGapEWMA*1000) // ms
		case FeatSendGapEWMA:
			gap := 0.0
			if rate > 0 {
				gap = float64(mss) / rate * 1000 // ms between packets
			}
			dst = append(dst, gap)
		case FeatRTTRatio:
			ratio := 1.0
			if e.minRTT > 0 && e.lastRTT > 0 {
				ratio = float64(e.lastRTT) / float64(e.minRTT)
			}
			dst = append(dst, ratio)
		case FeatSendRate:
			dst = append(dst, rate*8/1e6) // Mbps
		case FeatSentAckedRatio:
			r := 1.0
			if iv.Acked > 0 {
				r = float64(iv.Acked+iv.Lost) / float64(iv.Acked)
			}
			dst = append(dst, r)
		case FeatRTTAndMin:
			dst = append(dst, iv.AvgRTT().Seconds()*1000, e.minRTT.Seconds()*1000)
		case FeatLossRate:
			dst = append(dst, iv.LossRate())
		case FeatRTTGradient:
			dst = append(dst, iv.RTTGradient())
		case FeatDeliveryRate:
			dst = append(dst, e.deliveryEst*8/1e6) // Mbps
		}
	}
	return dst
}
