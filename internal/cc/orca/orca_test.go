package orca

import (
	"math"
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cctest"
	"libra/internal/rlcc"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	if _, err := cc.New("orca", cc.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestCubicDrivesBetweenDecisions(t *testing.T) {
	o := New(rlcc.OrcaRLConfig(cc.Config{Seed: 1}))
	w0 := o.Window()
	// ACKs without a tick: pure CUBIC slow-start growth.
	now := time.Duration(0)
	for i := 0; i < 10; i++ {
		now += time.Millisecond
		o.OnAck(&cc.Ack{Now: now, RTT: 40 * time.Millisecond, SRTT: 40 * time.Millisecond,
			MinRTT: 40 * time.Millisecond, Acked: 1500})
	}
	if o.Window() <= w0 {
		t.Fatal("CUBIC did not grow between agent decisions")
	}
	if o.Decisions() != 0 {
		t.Fatal("no decisions expected without ticks")
	}
}

func TestAgentRescalesWindow(t *testing.T) {
	o := New(rlcc.OrcaRLConfig(cc.Config{Seed: 2}))
	now := time.Duration(0)
	o.OnTick(now)
	for i := 0; i < 20; i++ {
		now += 10 * time.Millisecond
		o.OnAck(&cc.Ack{Now: now, RTT: 40 * time.Millisecond, SRTT: 40 * time.Millisecond,
			MinRTT: 40 * time.Millisecond, Acked: 1500})
	}
	before := o.Window()
	o.OnTick(now)
	if o.Decisions() != 1 {
		t.Fatalf("decisions %d", o.Decisions())
	}
	after := o.Window()
	// 2^a with a in [-2,2]: rescale bounded by 4x either way.
	if after > before*4+1 || after < before/4-1 {
		t.Fatalf("rescale out of bounds: %v -> %v", before, after)
	}
}

func TestEmptyMTPKeepsWindow(t *testing.T) {
	o := New(rlcc.OrcaRLConfig(cc.Config{Seed: 3}))
	o.OnTick(0)
	w := o.Window()
	o.OnTick(200 * time.Millisecond)
	if o.Window() != w {
		t.Fatal("no-feedback MTP should not rescale")
	}
}

func TestRunsOnEmulatedLink(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   150000,
		Duration: 20 * time.Second,
	}, New(rlcc.OrcaRLConfig(cc.Config{Seed: 4})))
	if res.Throughput <= 0 {
		t.Fatal("Orca starved")
	}
	if res.Utilization > 1.05 || math.IsNaN(res.Utilization) {
		t.Fatalf("utilization %v", res.Utilization)
	}
}

func TestTrainingStoresTransitions(t *testing.T) {
	cfg := rlcc.OrcaRLConfig(cc.Config{Seed: 5})
	cfg.Train = true
	o := New(cfg)
	now := time.Duration(0)
	o.OnTick(now)
	for tick := 0; tick < 6; tick++ {
		for i := 0; i < 10; i++ {
			now += 10 * time.Millisecond
			o.OnAck(&cc.Ack{Now: now, RTT: 40 * time.Millisecond, SRTT: 40 * time.Millisecond,
				MinRTT: 40 * time.Millisecond, Acked: 1500})
		}
		o.OnTick(now)
	}
	o.Stop(now)
	if o.Agent().BufLen() < 3 {
		t.Fatalf("agent stored %d transitions", o.Agent().BufLen())
	}
}
