// Package orca implements Orca (Abbasloo, Yen, Chao — SIGCOMM 2020):
// "classic meets modern" congestion control where a DRL agent
// periodically rescales the congestion window of an underlying CUBIC
// (cwnd' = cwnd * 2^a, a in [-2, 2]) while CUBIC continues its per-ACK
// evolution between agent decisions. Orca is the paper's closest prior
// work and its main comparison baseline.
package orca

import (
	"math"
	"time"

	"libra/internal/cc"
	"libra/internal/cc/cubic"
	"libra/internal/rl"
	"libra/internal/rlcc"
)

// Orca is the combined controller. Construct with New.
type Orca struct {
	cfg   rlcc.Config
	cubic *cubic.Cubic
	agent *rl.PPO
	ext   *rlcc.Extractor
	norm  *rl.RunningNorm
	mon   cc.Monitor

	srtt     time.Duration
	started  bool
	stateBuf []float64
	featBuf  []float64
	actBuf   []float64 // reused inference action buffer
	width    int
	// noiseBase seeds per-decision exploration noise at evaluation time
	// (see rlcc: actions must not depend on other flows' RNG draws).
	noiseBase uint64

	haveAction bool
	prevObs    []float64
	prevAct    []float64
	prevLogp   float64
	prevVal    float64

	xMax float64
	dMin float64

	episodeReward float64
	decisions     int
}

// New returns an Orca controller. cfg.Agent may carry a shared/trained
// PPO agent; otherwise a fresh one is created.
func New(cfg rlcc.Config) *Orca {
	if cfg.Features == nil {
		cfg = rlcc.OrcaRLConfig(cfg.CC)
	}
	cfg = cfg.WithDefaults()
	cfg.Action = rlcc.MIMDOrca
	width := rlcc.StateWidth(cfg.Features)
	agent := cfg.Agent
	if agent == nil {
		agent = rl.NewPPO(cfg.Seed, width*cfg.History, 1, cfg.PPO)
	}
	norm := cfg.Norm
	if norm == nil {
		norm = rl.NewRunningNorm(width)
	} else if !cfg.Train {
		// Evaluation flows must not mutate shared trained statistics:
		// see rlcc.New. Each flow observes into a private copy.
		norm = norm.Clone()
	}
	return &Orca{
		cfg:       cfg,
		cubic:     cubic.New(cfg.CC),
		agent:     agent,
		ext:       rlcc.NewExtractor(cfg.Features),
		norm:      norm,
		stateBuf:  make([]float64, width*cfg.History),
		width:     width,
		noiseBase: rl.Mix(uint64(cfg.Seed)),
	}
}

func init() {
	cc.Register("orca", func(base cc.Config) cc.Controller {
		return New(rlcc.OrcaRLConfig(base))
	})
}

// Name implements cc.Controller.
func (o *Orca) Name() string { return "orca" }

// Agent returns the PPO agent for training/persistence.
func (o *Orca) Agent() *rl.PPO { return o.agent }

// Cubic exposes the underlying classic component (tests).
func (o *Orca) Cubic() *cubic.Cubic { return o.cubic }

// OnAck implements cc.Controller: CUBIC handles every ACK; the agent's
// state tracker observes alongside.
func (o *Orca) OnAck(a *cc.Ack) {
	o.srtt = a.SRTT
	o.ext.OnAck(a)
	o.mon.OnAck(a)
	o.cubic.OnAck(a)
}

// OnLoss implements cc.Controller.
func (o *Orca) OnLoss(l *cc.Loss) {
	o.mon.OnLoss(l)
	o.cubic.OnLoss(l)
}

// mtp returns Orca's monitoring period (2 smoothed RTTs, bounded).
func (o *Orca) mtp() time.Duration {
	if o.srtt <= 0 {
		return 200 * time.Millisecond
	}
	mtp := 2 * o.srtt
	if mtp < 40*time.Millisecond {
		mtp = 40 * time.Millisecond
	}
	if mtp > time.Second {
		mtp = time.Second
	}
	return mtp
}

// reward is Orca's absolute reward with the standard weights.
func (o *Orca) reward(iv *cc.IntervalStats) float64 {
	thr := iv.Throughput()
	delay := iv.AvgRTT().Seconds()
	if thr > o.xMax {
		o.xMax = thr
	}
	if delay > 0 && (o.dMin == 0 || delay < o.dMin) {
		o.dMin = delay
	}
	xm := math.Max(o.xMax, 1)
	if o.cfg.RewardXMax > 0 {
		xm = o.cfg.RewardXMax
	}
	dm := math.Max(o.dMin, 1e-4)
	return o.cfg.W1*thr/xm - o.cfg.W2*delay/dm - o.cfg.W3*iv.LossRate()
}

// OnTick implements cc.Ticker: once per monitoring period the agent
// rescales CUBIC's window by 2^a.
func (o *Orca) OnTick(now time.Duration) time.Duration {
	iv := o.mon.Roll(now)
	if !o.started {
		o.started = true
		return o.mtp()
	}
	if !iv.HasFeedback() {
		return o.mtp()
	}
	rew := o.reward(iv)
	o.episodeReward += rew
	if o.haveAction && o.cfg.Train {
		o.agent.Store(o.prevObs, o.prevAct, o.prevLogp, rew, o.prevVal, false)
	}

	rate := o.cubic.Window() / math.Max(o.srtt.Seconds(), 1e-3)
	o.featBuf = o.ext.Extract(iv, rate, o.cfg.CC.MSS, o.featBuf[:0])
	o.norm.Observe(o.featBuf)
	copy(o.stateBuf, o.stateBuf[o.width:])
	o.norm.Normalize(o.featBuf, o.stateBuf[len(o.stateBuf)-o.width:])

	// Training keeps the shared-RNG Act path its rollouts were built
	// on; evaluation runs the actor only (logp/value feed nothing but
	// Store) with per-decision seeded noise, so an action is a pure
	// function of (flow seed, decision index) regardless of which other
	// flows share the agent.
	var act []float64
	var logp, val float64
	switch {
	case o.cfg.Deterministic:
		o.actBuf = append(o.actBuf[:0], o.agent.Policy.Mean(o.stateBuf)...)
		act = o.actBuf
	case o.cfg.Train:
		act, logp, val = o.agent.Act(o.stateBuf)
	default:
		mean := o.agent.Policy.Mean(o.stateBuf)
		o.actBuf = o.agent.Policy.SampleFrom(mean, rl.Mix(o.noiseBase+uint64(o.decisions)), o.actBuf)
		act = o.actBuf
	}
	a := act[0]
	if a > 1 {
		a = 1
	} else if a < -1 {
		a = -1
	}
	a *= o.cfg.Scale
	next := o.cubic.Window() * math.Pow(2, a)
	// Cap the rescaled window: the agent's multiplicative action would
	// otherwise compound without bound (real Orca clamps cwnd). Allow
	// up to 8x the highest observed delivery over a 2-SRTT horizon,
	// bounded below so startup can still probe.
	horizon := 2 * o.srtt
	if horizon < 200*time.Millisecond {
		horizon = 200 * time.Millisecond
	}
	maxW := 8 * math.Max(o.xMax, 12500) * horizon.Seconds()
	if next > maxW {
		next = maxW
	}
	o.cubic.SetWindow(next)
	o.decisions++

	if o.cfg.Train {
		o.prevObs = append(o.prevObs[:0], o.stateBuf...)
		o.prevAct = append(o.prevAct[:0], act...)
		o.prevLogp = logp
		o.prevVal = val
		o.haveAction = true
	}
	return o.mtp()
}

// Stop implements cc.Stopper.
func (o *Orca) Stop(now time.Duration) {
	if o.haveAction && o.cfg.Train {
		o.agent.Store(o.prevObs, o.prevAct, o.prevLogp, 0, o.prevVal, true)
		o.haveAction = false
	}
}

// Rate implements cc.Controller: Orca is window-driven like CUBIC.
func (o *Orca) Rate() float64 { return 0 }

// Window implements cc.Controller.
func (o *Orca) Window() float64 { return o.cubic.Window() }

// EpisodeReward returns the accumulated reward (training telemetry).
func (o *Orca) EpisodeReward() float64 { return o.episodeReward }

// Decisions returns the number of DRL interventions taken.
func (o *Orca) Decisions() int { return o.decisions }

// MemBytes estimates controller-resident memory assuming the agent is
// owned outright; see rlcc.Controller.MemBytes for the shared-agent
// caveat.
func (o *Orca) MemBytes() int {
	return o.agent.MemBytes() + o.OwnMemBytes()
}

// OwnMemBytes estimates the per-flow residual beyond the (possibly
// shared) agent; CUBIC's contribution is a few scalars.
func (o *Orca) OwnMemBytes() int {
	return 8*(len(o.stateBuf)+len(o.featBuf)) + 256
}

// SharesAgent reports whether the controller runs on an agent supplied
// from outside (and therefore possibly shared with other flows).
func (o *Orca) SharesAgent() bool { return o.cfg.Agent != nil }
