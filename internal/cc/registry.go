package cc

import (
	"fmt"
	"sort"
	"sync"
)

// Factory constructs a controller from a configuration.
type Factory func(cfg Config) Controller

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register records a controller factory under name. It panics on
// duplicate registration, which indicates a programming error.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("cc: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New constructs the named controller.
func New(name string, cfg Config) (Controller, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cc: unknown controller %q (known: %v)", name, Names())
	}
	return f(cfg), nil
}

// Names returns the registered controller names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
