// Package cc defines the congestion-controller interface shared by every
// algorithm in this repository, plus the monitor-interval aggregation and
// registry machinery the experiment harness builds on.
//
// A Controller consumes per-ACK and per-loss feedback and exposes a pacing
// rate and a congestion window; the network emulation (internal/netem)
// enforces both. Monitor-interval algorithms (PCC, Aurora, the Libra RL
// component) additionally implement Ticker to receive periodic callbacks.
package cc

import (
	"math"
	"time"
)

// Ack is the per-ACK feedback delivered to a controller. The same Ack
// value is reused across calls on the hot path; controllers must not
// retain a pointer to it beyond the call.
type Ack struct {
	// Now is the virtual time the ACK arrived at the sender.
	Now time.Duration
	// RTT is the sample measured by this ACK.
	RTT time.Duration
	// SRTT is the smoothed RTT (EWMA, alpha 1/8) after this sample.
	SRTT time.Duration
	// MinRTT is the minimum RTT observed on the connection so far.
	MinRTT time.Duration
	// Acked is the number of freshly acknowledged bytes.
	Acked int
	// InFlight is the number of unacknowledged bytes after this ACK.
	InFlight int
	// Delivered is the cumulative count of delivered bytes.
	Delivered int64
	// DeliveryRate is a BBR-style delivery-rate sample in bytes/sec
	// (delivered bytes over the interval since the acked packet was sent).
	DeliveryRate float64
	// ECE reports that the acknowledged packet was CE-marked by an
	// ECN-enabled bottleneck (echoed congestion experienced).
	ECE bool
}

// Loss is the per-loss-event feedback delivered to a controller.
type Loss struct {
	// Now is the virtual time the loss was detected.
	Now time.Duration
	// SentAt is the transmission time of the earliest lost packet, used
	// for send-time attribution by DeferredMonitor.
	SentAt time.Duration
	// Lost is the number of bytes declared lost by this event.
	Lost int
	// InFlight is the number of unacknowledged bytes after the loss.
	InFlight int
	// Timeout reports whether the loss was detected by retransmission
	// timeout rather than by duplicate-ACK gap detection.
	Timeout bool
}

// Controller is a congestion-control algorithm. Implementations are
// single-goroutine: the emulator serialises all calls.
type Controller interface {
	// Name identifies the algorithm, e.g. "cubic".
	Name() string
	// OnAck processes acknowledgement feedback.
	OnAck(a *Ack)
	// OnLoss processes a loss event.
	OnLoss(l *Loss)
	// Rate returns the pacing rate in bytes/sec. A zero return means the
	// controller is purely window-limited and the sender may transmit as
	// fast as the window allows.
	Rate() float64
	// Window returns the congestion window in bytes. Rate-based
	// controllers should return a generous cap (e.g. 2x their
	// rate-delay product) so that pacing, not the window, governs.
	Window() float64
}

// Ticker is implemented by controllers that need periodic callbacks in
// addition to ACK clocking (monitor-interval algorithms). The emulator
// calls OnTick at flow start with the start time and thereafter at the
// instants the controller requests; each call returns the delay until the
// next tick. Returning zero or a negative delay stops the timer.
type Ticker interface {
	OnTick(now time.Duration) time.Duration
}

// Stopper is implemented by controllers that hold resources or want a
// final notification when their flow ends.
type Stopper interface {
	Stop(now time.Duration)
}

// Config carries the environment parameters a controller needs at
// construction time.
type Config struct {
	// MSS is the maximum segment size in bytes (default 1500 when zero).
	MSS int
	// Seed seeds any stochastic behaviour of the controller.
	Seed int64
	// InitialRate is the pacing rate before any feedback, bytes/sec
	// (default: 10 MSS per 100 ms).
	InitialRate float64
	// MinRate and MaxRate clamp the controller's rate decisions in
	// bytes/sec. Zero values select defaults (0.02 Mbps and 2000 Mbps).
	MinRate, MaxRate float64
}

// Defaults for Config fields.
const (
	DefaultMSS = 1500
)

// WithDefaults returns cfg with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.MSS == 0 {
		c.MSS = DefaultMSS
	}
	if c.InitialRate == 0 {
		c.InitialRate = float64(10*c.MSS) / 0.1
	}
	if c.MinRate == 0 {
		c.MinRate = 0.02e6 / 8
	}
	if c.MaxRate == 0 {
		c.MaxRate = 2000e6 / 8
	}
	return c
}

// ClampRate bounds r to the configured [MinRate, MaxRate]. A NaN rate
// (from any upstream division such as 0/0) clamps to MinRate: NaN fails
// every comparison, and an unclamped NaN pacing rate would disable both
// pacing and the congestion window downstream.
func (c Config) ClampRate(r float64) float64 {
	if math.IsNaN(r) {
		return c.MinRate
	}
	if r < c.MinRate {
		return c.MinRate
	}
	if r > c.MaxRate {
		return c.MaxRate
	}
	return r
}
