// Package illinois implements TCP Illinois (Liu, Başar, Srikant, 2006):
// loss-based AIMD whose additive-increase alpha and multiplicative-
// decrease beta adapt to the measured queueing delay — aggressive when
// the queue is empty, gentle as delay approaches its maximum. The
// paper's Sec. 7 names Illinois among the classics its Libra parameter
// guidance extends to; internal/core integrates it via the generic
// window adapter (I-Libra).
package illinois

import (
	"math"
	"time"

	"libra/internal/cc"
)

// Illinois curve parameters (from the original paper's defaults).
const (
	alphaMax = 10.0
	alphaMin = 0.3
	betaMin  = 0.125
	betaMax  = 0.5
	// Delay thresholds as fractions of the maximum observed queueing
	// delay: below d1 use alphaMax; beta ramps between d2 and d3.
	d1 = 0.01
	d2 = 0.1
	d3 = 0.8
)

// Illinois is the controller. Construct with New.
type Illinois struct {
	cfg cc.Config
	mss float64

	cwnd     float64
	ssthresh float64

	minRTT   time.Duration
	maxDelay float64 // max observed queueing delay, seconds
	avgDelay float64 // EWMA queueing delay, seconds

	recoverUntil time.Duration
}

// New returns an Illinois controller.
func New(cfg cc.Config) *Illinois {
	cfg = cfg.WithDefaults()
	return &Illinois{
		cfg:      cfg,
		mss:      float64(cfg.MSS),
		cwnd:     10 * float64(cfg.MSS),
		ssthresh: math.Inf(1),
	}
}

func init() {
	cc.Register("illinois", func(cfg cc.Config) cc.Controller { return New(cfg) })
}

// Name implements cc.Controller.
func (il *Illinois) Name() string { return "illinois" }

// Alpha returns the current additive-increase step (MSS per RTT).
func (il *Illinois) Alpha() float64 {
	if il.maxDelay <= 0 {
		return alphaMax
	}
	frac := il.avgDelay / il.maxDelay
	if frac <= d1 {
		return alphaMax
	}
	// Inverse relationship: alpha = k1 / (k2 + d), fit through
	// (d1, alphaMax) and (1, alphaMin).
	k2 := (d1*alphaMax - alphaMin) / (alphaMin - alphaMax)
	k1 := alphaMax * (k2 + d1)
	a := k1 / (k2 + frac)
	return math.Max(alphaMin, math.Min(alphaMax, a))
}

// Beta returns the current multiplicative-decrease factor.
func (il *Illinois) Beta() float64 {
	if il.maxDelay <= 0 {
		return betaMin
	}
	frac := il.avgDelay / il.maxDelay
	switch {
	case frac <= d2:
		return betaMin
	case frac >= d3:
		return betaMax
	default:
		return betaMin + (betaMax-betaMin)*(frac-d2)/(d3-d2)
	}
}

// OnAck implements cc.Controller.
func (il *Illinois) OnAck(a *cc.Ack) {
	il.minRTT = a.MinRTT
	qd := (a.RTT - a.MinRTT).Seconds()
	if qd < 0 {
		qd = 0
	}
	const ew = 0.1
	il.avgDelay = (1-ew)*il.avgDelay + ew*qd
	if qd > il.maxDelay {
		il.maxDelay = qd
	}

	if il.cwnd < il.ssthresh {
		il.cwnd += float64(a.Acked)
		if il.cwnd > il.ssthresh {
			il.cwnd = il.ssthresh
		}
		return
	}
	il.cwnd += il.Alpha() * il.mss * float64(a.Acked) / il.cwnd
}

// OnLoss implements cc.Controller.
func (il *Illinois) OnLoss(l *cc.Loss) {
	if l.Timeout {
		il.ssthresh = math.Max(il.cwnd/2, 2*il.mss)
		il.cwnd = 2 * il.mss
		return
	}
	if l.Now < il.recoverUntil {
		return
	}
	il.recoverUntil = l.Now + 200*time.Millisecond
	il.cwnd = math.Max(il.cwnd*(1-il.Beta()), 2*il.mss)
	il.ssthresh = il.cwnd
}

// Rate implements cc.Controller; Illinois is window-based.
func (il *Illinois) Rate() float64 { return 0 }

// Window implements cc.Controller.
func (il *Illinois) Window() float64 { return il.cwnd }

// SetWindow overrides the congestion window (bytes); Libra integration.
func (il *Illinois) SetWindow(bytes float64) {
	il.cwnd = math.Max(bytes, 2*il.mss)
	if il.ssthresh < il.cwnd {
		il.ssthresh = il.cwnd
	}
}
