package illinois

import (
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cctest"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	if _, err := cc.New("illinois", cc.Config{}); err != nil {
		t.Fatal(err)
	}
}

func feed(il *Illinois, n int, rtt, min time.Duration) {
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		now += 10 * time.Millisecond
		il.OnAck(&cc.Ack{Now: now, RTT: rtt, SRTT: rtt, MinRTT: min, Acked: 1500})
	}
}

func TestAlphaHighWhenQueueEmpty(t *testing.T) {
	il := New(cc.Config{})
	il.ssthresh = 0
	base := 40 * time.Millisecond
	// Build a delay history that includes congestion, then return to
	// empty queue.
	feed(il, 50, 4*base, base)
	feed(il, 200, base, base)
	if a := il.Alpha(); a < alphaMax/2 {
		t.Fatalf("alpha %v with empty queue, want near %v", a, alphaMax)
	}
}

func TestAlphaDropsUnderQueueing(t *testing.T) {
	il := New(cc.Config{})
	il.ssthresh = 0
	base := 40 * time.Millisecond
	feed(il, 50, 4*base, base) // near max delay
	if a := il.Alpha(); a > 2 {
		t.Fatalf("alpha %v near max delay, want small", a)
	}
}

func TestBetaRampsWithDelay(t *testing.T) {
	il := New(cc.Config{})
	base := 40 * time.Millisecond
	feed(il, 50, 4*base, base)
	highBeta := il.Beta()
	feed(il, 300, base, base)
	lowBeta := il.Beta()
	if !(lowBeta < highBeta) {
		t.Fatalf("beta should shrink as delay empties: %v -> %v", highBeta, lowBeta)
	}
	if highBeta > betaMax+1e-9 || lowBeta < betaMin-1e-9 {
		t.Fatalf("beta out of [%v, %v]: %v %v", betaMin, betaMax, lowBeta, highBeta)
	}
}

func TestLossAppliesAdaptiveBeta(t *testing.T) {
	il := New(cc.Config{})
	il.ssthresh = 0
	base := 40 * time.Millisecond
	feed(il, 200, base, base) // low delay -> beta near betaMin
	il.cwnd = 100 * 1500
	il.OnLoss(&cc.Loss{Now: 10 * time.Second, Lost: 1500})
	// With beta ~ 1/8 the window should stay near 87.5 MSS, far above
	// the Reno half.
	if il.Window() < 75*1500 {
		t.Fatalf("low-delay loss cut window to %v; expected gentle decrease", il.Window())
	}
}

func TestFillsLink(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   120000,
		Duration: 30 * time.Second,
	}, New(cc.Config{}))
	if res.Utilization < 0.8 {
		t.Fatalf("Illinois utilization %.3f", res.Utilization)
	}
}

func TestTimeoutCollapse(t *testing.T) {
	il := New(cc.Config{})
	il.cwnd = 100 * 1500
	il.OnLoss(&cc.Loss{Timeout: true, Lost: 1500})
	if il.Window() != 2*1500 {
		t.Fatalf("timeout window %v", il.Window())
	}
}
