// Package bbr implements BBR v1 congestion control (Cardwell et al.,
// "BBR: Congestion-Based Congestion Control"). It is the rate-based
// classic component of B-Libra.
package bbr

import (
	"math"
	"time"

	"libra/internal/cc"
)

// Gains and timing constants from the BBR v1 paper/Linux implementation.
const (
	highGain     = 2.0 / 0.6931471805599453 // 2/ln2 ≈ 2.885
	drainGain    = 1 / highGain
	cwndGain     = 2.0
	probeRTTSecs = 0.2
	minRTTWindow = 10 * time.Second
	bwWindowRTTs = 10
)

// probeGains is the PROBE_BW pacing-gain cycle.
var probeGains = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

type state int

const (
	stStartup state = iota
	stDrain
	stProbeBW
	stProbeRTT
)

func (s state) String() string {
	switch s {
	case stStartup:
		return "STARTUP"
	case stDrain:
		return "DRAIN"
	case stProbeBW:
		return "PROBE_BW"
	default:
		return "PROBE_RTT"
	}
}

// bwSample is one delivery-rate observation for the windowed-max filter.
type bwSample struct {
	at time.Duration
	bw float64
}

// BBR is a BBR v1 controller. Construct with New.
type BBR struct {
	cfg cc.Config
	mss float64

	st          state
	bwFilter    []bwSample
	maxBW       float64
	minRTT      time.Duration
	minRTTAt    time.Duration
	probeIdx    int
	phaseAt     time.Duration
	probeRTTEnd time.Duration

	// Startup full-pipe detection.
	fullBW       float64
	fullBWCount  int
	nextRoundDel int64
	roundStart   bool

	pacingRate float64
	cwnd       float64
}

// New returns a BBR controller.
func New(cfg cc.Config) *BBR {
	cfg = cfg.WithDefaults()
	b := &BBR{
		cfg:        cfg,
		mss:        float64(cfg.MSS),
		st:         stStartup,
		pacingRate: cfg.InitialRate * highGain,
		cwnd:       10 * float64(cfg.MSS),
	}
	return b
}

func init() {
	cc.Register("bbr", func(cfg cc.Config) cc.Controller { return New(cfg) })
}

// Name implements cc.Controller.
func (b *BBR) Name() string { return "bbr" }

// State returns the current state name (for tests and telemetry).
func (b *BBR) State() string { return b.st.String() }

// BW returns the current bottleneck-bandwidth estimate in bytes/sec.
func (b *BBR) BW() float64 { return b.maxBW }

// RTprop returns the current propagation-RTT estimate.
func (b *BBR) RTprop() time.Duration { return b.minRTT }

// OnAck implements cc.Controller and drives the whole state machine.
func (b *BBR) OnAck(a *cc.Ack) {
	// Round accounting for full-pipe detection.
	b.roundStart = false
	if a.Delivered >= b.nextRoundDel {
		b.roundStart = true
		b.nextRoundDel = a.Delivered + int64(a.InFlight)
	}

	// Update filters.
	if a.DeliveryRate > 0 {
		b.updateBW(a.Now, a.DeliveryRate)
	}
	if b.minRTT == 0 || a.RTT <= b.minRTT {
		b.minRTT = a.RTT
		b.minRTTAt = a.Now
	}

	switch b.st {
	case stStartup:
		b.checkFullPipe()
		if b.st == stDrain {
			break
		}
	case stDrain:
		if float64(a.InFlight) <= b.bdp(1) {
			b.enterProbeBW(a.Now)
		}
	case stProbeBW:
		b.advanceCycle(a)
	case stProbeRTT:
		if a.Now >= b.probeRTTEnd {
			b.exitProbeRTT(a.Now)
		}
	}

	// ProbeRTT entry: minRTT stale.
	if b.st != stProbeRTT && b.minRTTAt > 0 && a.Now-b.minRTTAt > minRTTWindow {
		b.enterProbeRTT(a.Now)
	}

	b.updateControls()
}

func (b *BBR) updateBW(now time.Duration, sample float64) {
	window := time.Duration(bwWindowRTTs) * b.rtpropOr(100*time.Millisecond)
	b.bwFilter = append(b.bwFilter, bwSample{at: now, bw: sample})
	// Evict expired samples from the front.
	cut := 0
	for cut < len(b.bwFilter) && now-b.bwFilter[cut].at > window {
		cut++
	}
	if cut > 0 {
		b.bwFilter = b.bwFilter[cut:]
	}
	mx := 0.0
	for _, s := range b.bwFilter {
		if s.bw > mx {
			mx = s.bw
		}
	}
	b.maxBW = mx
}

func (b *BBR) rtpropOr(def time.Duration) time.Duration {
	if b.minRTT > 0 {
		return b.minRTT
	}
	return def
}

func (b *BBR) bdp(gain float64) float64 {
	return gain * b.maxBW * b.rtpropOr(100*time.Millisecond).Seconds()
}

func (b *BBR) checkFullPipe() {
	if !b.roundStart {
		return
	}
	if b.maxBW > b.fullBW*1.25 {
		b.fullBW = b.maxBW
		b.fullBWCount = 0
		return
	}
	b.fullBWCount++
	if b.fullBWCount >= 3 {
		b.st = stDrain
	}
}

func (b *BBR) enterProbeBW(now time.Duration) {
	b.st = stProbeBW
	// Start in a neutral phase, as Linux does (random phase except 0.75).
	b.probeIdx = 2
	b.phaseAt = now
}

func (b *BBR) advanceCycle(a *cc.Ack) {
	rtprop := b.rtpropOr(100 * time.Millisecond)
	elapsed := a.Now - b.phaseAt
	switch probeGains[b.probeIdx] {
	case 1.25:
		// Stay until an RTT passed and we either filled the pipe or lost.
		if elapsed > rtprop {
			b.nextPhase(a.Now)
		}
	case 0.75:
		// Leave as soon as the surplus queue drained or an RTT passed.
		if elapsed > rtprop || float64(a.InFlight) <= b.bdp(1) {
			b.nextPhase(a.Now)
		}
	default:
		if elapsed > rtprop {
			b.nextPhase(a.Now)
		}
	}
}

func (b *BBR) nextPhase(now time.Duration) {
	b.probeIdx = (b.probeIdx + 1) % len(probeGains)
	b.phaseAt = now
}

func (b *BBR) enterProbeRTT(now time.Duration) {
	b.st = stProbeRTT
	b.probeRTTEnd = now + time.Duration(probeRTTSecs*float64(time.Second))
	b.minRTTAt = now // avoid immediate re-entry
}

func (b *BBR) exitProbeRTT(now time.Duration) {
	if b.fullBWCount >= 3 {
		b.enterProbeBW(now)
	} else {
		b.st = stStartup
	}
}

func (b *BBR) updateControls() {
	var gain float64
	switch b.st {
	case stStartup:
		gain = highGain
	case stDrain:
		gain = drainGain
	case stProbeBW:
		gain = probeGains[b.probeIdx]
	case stProbeRTT:
		gain = 1
	}
	bw := b.maxBW
	if bw <= 0 {
		bw = b.cfg.InitialRate
	}
	b.pacingRate = b.cfg.ClampRate(gain * bw)
	if b.st == stProbeRTT {
		b.cwnd = 4 * b.mss
		return
	}
	g := cwndGain
	if b.st == stStartup {
		g = highGain
	}
	b.cwnd = math.Max(b.bdp(g), 4*b.mss)
}

// OnLoss implements cc.Controller. BBR v1 mostly ignores individual
// losses; a timeout resets to a conservative window.
func (b *BBR) OnLoss(l *cc.Loss) {
	if l.Timeout {
		b.cwnd = 4 * b.mss
	}
}

// Rate implements cc.Controller.
func (b *BBR) Rate() float64 { return b.pacingRate }

// Window implements cc.Controller.
func (b *BBR) Window() float64 { return b.cwnd }

// SeedRate re-centres BBR's bandwidth model on rate (bytes/sec); Libra
// uses this when handing the exploration stage to BBR from a base rate.
func (b *BBR) SeedRate(rate float64, now time.Duration) {
	if rate <= 0 {
		return
	}
	b.bwFilter = append(b.bwFilter[:0], bwSample{at: now, bw: rate})
	b.maxBW = rate
	if b.st == stStartup || b.st == stDrain {
		b.st = stProbeBW
		b.fullBWCount = 3
	}
	b.probeIdx = 0 // restart the probe cycle: 1.25, 0.75, 1 ...
	b.phaseAt = now
	b.updateControls()
}
