package bbr

import (
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cctest"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	if _, err := cc.New("bbr", cc.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestStartupExitsAfterPlateau(t *testing.T) {
	b := New(cc.Config{})
	now := time.Duration(0)
	delivered := int64(0)
	// Feed a constant delivery rate: bandwidth stops growing, so BBR
	// should leave STARTUP within a few rounds.
	for i := 0; i < 200 && b.State() == "STARTUP"; i++ {
		now += 10 * time.Millisecond
		delivered += 15000
		b.OnAck(&cc.Ack{
			Now: now, RTT: 50 * time.Millisecond, SRTT: 50 * time.Millisecond,
			MinRTT: 50 * time.Millisecond, Acked: 1500, InFlight: 30000,
			Delivered: delivered, DeliveryRate: 1.5e6,
		})
	}
	if b.State() == "STARTUP" {
		t.Fatal("BBR never exited STARTUP on a plateaued link")
	}
}

func TestUtilizationAndLowQueueOnWiredLink(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(48)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   480000, // deep buffer: BBR should not fill it
		Duration: 30 * time.Second,
	}, New(cc.Config{}))
	if res.Utilization < 0.8 {
		t.Fatalf("BBR utilization %.3f, want >0.8", res.Utilization)
	}
	// Deep buffer would add up to 80ms of queue if filled; BBR should
	// keep the standing queue well below that.
	if res.AvgRTT > 90*time.Millisecond {
		t.Fatalf("BBR avg RTT %v: standing queue too large", res.AvgRTT)
	}
}

func TestResilientToStochasticLoss(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   240000,
		Loss:     0.05,
		Duration: 30 * time.Second,
	}, New(cc.Config{}))
	if res.Utilization < 0.6 {
		t.Fatalf("BBR with 5%% loss achieved only %.3f utilization", res.Utilization)
	}
}

func TestBWEstimateTracksLink(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(24)),
		MinRTT:   40 * time.Millisecond,
		Duration: 20 * time.Second,
	}, New(cc.Config{}))
	b := res.Flow.Controller().(*BBR)
	bw := trace.ToMbps(b.BW())
	if bw < 20 || bw > 31 {
		t.Fatalf("BW estimate %.1f Mbps, want ~24", bw)
	}
	if rt := b.RTprop(); rt < 40*time.Millisecond || rt > 50*time.Millisecond {
		t.Fatalf("RTprop %v, want ~40ms", rt)
	}
}

func TestSeedRateRestartsProbeCycle(t *testing.T) {
	b := New(cc.Config{})
	b.SeedRate(trace.Mbps(10), time.Second)
	if b.State() != "PROBE_BW" {
		t.Fatalf("state %s after seed, want PROBE_BW", b.State())
	}
	if b.BW() != trace.Mbps(10) {
		t.Fatalf("BW %v after seed", trace.ToMbps(b.BW()))
	}
	// First phase must be the 1.25 probe.
	if r := b.Rate(); r < trace.Mbps(12) || r > trace.Mbps(13) {
		t.Fatalf("seeded rate %.2f Mbps, want 12.5 (1.25 gain)", trace.ToMbps(r))
	}
}

func TestSeedRateIgnoresNonPositive(t *testing.T) {
	b := New(cc.Config{})
	b.SeedRate(0, time.Second)
	if b.State() != "STARTUP" {
		t.Fatal("zero seed should be ignored")
	}
}

func TestTracksCapacityIncrease(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: &trace.Step{Period: 10 * time.Second, Levels: []float64{trace.Mbps(10), trace.Mbps(40)}},
		MinRTT:   40 * time.Millisecond,
		Buffer:   300000,
		Duration: 20 * time.Second,
	}, New(cc.Config{}))
	// Mean of the two phases is 25 Mbps; BBR should use most of both.
	if res.Utilization < 0.7 {
		t.Fatalf("BBR step utilization %.3f", res.Utilization)
	}
}
