// Package reno implements TCP NewReno congestion control (RFC 5681 /
// RFC 6582 semantics adapted to the byte-counting feedback model of
// internal/cc). It is the simplest loss-based baseline in the suite.
package reno

import (
	"math"

	"libra/internal/cc"
)

// Reno is a NewReno controller. Construct with New.
type Reno struct {
	cfg      cc.Config
	mss      float64
	cwnd     float64 // bytes
	ssthresh float64 // bytes
	// recoverUntil guards against reacting to multiple loss signals from
	// the same window: losses before this delivered mark are ignored.
	recoverUntil int64
}

// New returns a NewReno controller.
func New(cfg cc.Config) *Reno {
	cfg = cfg.WithDefaults()
	mss := float64(cfg.MSS)
	return &Reno{
		cfg:      cfg,
		mss:      mss,
		cwnd:     10 * mss,
		ssthresh: math.Inf(1),
	}
}

func init() {
	cc.Register("reno", func(cfg cc.Config) cc.Controller { return New(cfg) })
}

// Name implements cc.Controller.
func (r *Reno) Name() string { return "reno" }

// OnAck grows the window: exponentially in slow start, linearly (one MSS
// per RTT) in congestion avoidance.
func (r *Reno) OnAck(a *cc.Ack) {
	if r.cwnd < r.ssthresh {
		r.cwnd += float64(a.Acked)
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
		return
	}
	r.cwnd += r.mss * float64(a.Acked) / r.cwnd
}

// OnLoss halves the window (fast recovery) or collapses it (timeout),
// at most once per window of data.
func (r *Reno) OnLoss(l *cc.Loss) {
	if l.Timeout {
		r.ssthresh = math.Max(r.cwnd/2, 2*r.mss)
		r.cwnd = 2 * r.mss
		r.recoverUntil = 0
		return
	}
	// Ignore further losses from the same window.
	if int64(r.cwnd) > 0 && r.recoverUntil > 0 && l.Now.Nanoseconds() < r.recoverUntil {
		return
	}
	r.ssthresh = math.Max(r.cwnd/2, 2*r.mss)
	r.cwnd = r.ssthresh
	// One SRTT-ish guard window: approximate with 100ms floor handled by
	// caller cadence; use the loss timestamp plus a conservative bound.
	r.recoverUntil = l.Now.Nanoseconds() + int64(200e6)
}

// Rate implements cc.Controller; Reno is purely window-based.
func (r *Reno) Rate() float64 { return 0 }

// Window implements cc.Controller.
func (r *Reno) Window() float64 { return r.cwnd }
