package reno

import (
	"math"
	"testing"
	"time"

	"libra/internal/cc"
	"libra/internal/cctest"
	"libra/internal/trace"
)

func TestRegistered(t *testing.T) {
	if _, err := cc.New("reno", cc.Config{}); err != nil {
		t.Fatal(err)
	}
}

func TestSlowStartExponential(t *testing.T) {
	r := New(cc.Config{})
	w0 := r.Window()
	for i := 0; i < 10; i++ {
		r.OnAck(&cc.Ack{Acked: 1500})
	}
	if got := r.Window(); got != w0+10*1500 {
		t.Fatalf("slow start grew to %v, want %v", got, w0+10*1500)
	}
}

func TestCongestionAvoidanceLinear(t *testing.T) {
	r := New(cc.Config{})
	r.ssthresh = r.cwnd // enter CA at current window
	w0 := r.Window()
	// One full window of acks should add ~1 MSS.
	acks := int(w0) / 1500
	for i := 0; i < acks; i++ {
		r.OnAck(&cc.Ack{Acked: 1500})
	}
	if got := r.Window(); math.Abs(got-(w0+1500)) > 200 {
		t.Fatalf("CA grew by %v per RTT, want ~1 MSS", got-w0)
	}
}

func TestFastRecoveryHalves(t *testing.T) {
	r := New(cc.Config{})
	r.cwnd = 100 * 1500
	r.OnLoss(&cc.Loss{Now: time.Second, Lost: 1500})
	if got := r.Window(); got != 50*1500 {
		t.Fatalf("post-loss window %v, want half", got)
	}
	// Guarded against double reaction.
	r.OnLoss(&cc.Loss{Now: time.Second + 50*time.Millisecond, Lost: 1500})
	if got := r.Window(); got != 50*1500 {
		t.Fatalf("second loss in window halved again: %v", got)
	}
}

func TestTimeoutCollapse(t *testing.T) {
	r := New(cc.Config{})
	r.cwnd = 100 * 1500
	r.OnLoss(&cc.Loss{Now: time.Second, Timeout: true, Lost: 1500})
	if got := r.Window(); got != 2*1500 {
		t.Fatalf("timeout window %v", got)
	}
}

func TestSawtoothFillsMostOfLink(t *testing.T) {
	res := cctest.RunSingle(cctest.Scenario{
		Capacity: trace.Constant(trace.Mbps(12)),
		MinRTT:   40 * time.Millisecond,
		Buffer:   60000,
		Duration: 30 * time.Second,
	}, New(cc.Config{}))
	if res.Utilization < 0.75 {
		t.Fatalf("Reno utilization %.3f", res.Utilization)
	}
	if res.LossRate == 0 {
		t.Fatal("Reno should experience periodic losses")
	}
}
